// Package resilex is a resilient data-extraction library for semistructured
// sources, implementing the theory of Davulcu, Yang, Kifer and Ramakrishnan,
// "Computational Aspects of Resilient Data Extraction from Semistructured
// Sources" (PODS 2000).
//
// # The model
//
// A web page is abstracted as a string of tokens over a finite alphabet Σ —
// HTML tag symbols such as FORM, INPUT, /FORM. An extraction expression
// E1⟨p⟩E2 is a regular expression with one marked occurrence of a symbol p:
// it extracts the occurrence of p in a page ρ = α·p·β with α ∈ L(E1) and
// β ∈ L(E2). Expressions must be unambiguous — every page admits at most one
// such split — and the more pages an unambiguous expression parses, the more
// resilient it is to page redesigns. Resilience is formalized by a partial
// order (E1⟨p⟩E2 ⪯ F1⟨p⟩F2 iff L(E1) ⊆ L(F1) and L(E2) ⊆ L(F2)), and the
// library synthesizes maximal elements of that order: expressions that
// cannot be generalized any further without becoming ambiguous.
//
// # What the library provides
//
//   - Parsing and compiling extraction expressions over token alphabets
//     (ParseExpr), with decision procedures for unambiguity (polynomial,
//     two independent algorithms) and maximality (PSPACE-complete in
//     general, budgeted here).
//   - The maximization algorithms of the paper: left-filtering maximization
//     (Algorithm 6.2, LeftFilter), its mirror image (RightFilter), and the
//     pivot framework (Pivot); Maximize dispatches among them.
//   - An HTML front end: Train induces a wrapper from sample pages with a
//     marked target (learning-stage merge heuristic + maximization) and
//     Extract maps results back to byte regions of the live page.
//   - A self-healing runtime: a Supervisor over a Fleet of wrappers runs a
//     degradation ladder (wrapper → refresh → probe → structured miss) with
//     per-site circuit breakers, bounded by deadlines and state budgets.
//
// # Error taxonomy
//
// Every error returned by the facade wraps exactly one typed sentinel, so
// callers branch with errors.Is and never parse messages:
//
//   - ErrNoMatch (= ErrNotExtracted): the wrapper's expression does not
//     parse the page — the page-drift signal that drives refresh.
//   - ErrAmbiguous: an expression or new sample admits two extractions.
//   - ErrBudgetExceeded (= ErrBudget): an automaton construction hit its
//     MaxStates budget (the PSPACE-hard paths are budgeted, not hidden).
//   - ErrDeadlineExceeded: the context bounding a construction or
//     extraction expired; work is abandoned promptly at the next poll.
//   - ErrMalformedInput: corrupt persisted wrapper/fleet JSON, or a page
//     with no recognizable structure at all.
//   - ErrUnknownKey, ErrQuarantined: fleet dispatch failures — no wrapper
//     for the site, or its circuit breaker is open.
//   - ErrInternal: a recovered invariant failure; the facade's recover()
//     backstop guarantees internal panics surface as this error instead of
//     crashing the caller.
//
// # Quick start
//
//	w, err := resilex.Train([]resilex.Sample{
//	    {HTML: page1, Target: resilex.TargetMarker()},
//	    {HTML: page2, Target: resilex.TargetMarker()},
//	}, resilex.Config{})
//	if err != nil { ... }
//	region, err := w.Extract(livePage)
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// reproduction of the paper's formal claims.
package resilex
