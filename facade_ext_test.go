package resilex_test

import (
	"testing"

	"resilex"
)

func TestFacadeTuple(t *testing.T) {
	tab := resilex.NewTable()
	tags, err := resilex.ParseTokens("P FORM /FORM INPUT", tab)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := resilex.ParseTuple("[^ FORM]* FORM [^ INPUT]* <INPUT> [^ INPUT]* <INPUT> .*",
		tab, resilex.NewAlphabet(tags...), resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	unamb, err := tp.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("unambiguous = %v, %v", unamb, err)
	}
	doc, err := resilex.ParseTokens("P FORM INPUT INPUT INPUT /FORM", tab)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := tp.Extract(doc)
	if err != nil || !ok {
		t.Fatalf("extract: %v %v", ok, err)
	}
	if v[0] != 2 || v[1] != 3 {
		t.Errorf("vector = %v, want [2 3]", v)
	}
	maxed, err := resilex.MaximizeTuple(tp)
	if err != nil {
		t.Fatal(err)
	}
	if v2, ok, err := maxed.Extract(doc); err != nil || !ok || v2[0] != v[0] || v2[1] != v[1] {
		t.Errorf("maximized vector = %v (%v, %v)", v2, ok, err)
	}
}

func TestFacadeDisambiguate(t *testing.T) {
	tab := resilex.NewTable()
	x, err := resilex.ParseExpr("p* <p> p*", tab, resilex.Alphabet{}, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := resilex.ParseTokens("p p", tab)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := resilex.Disambiguate(x, [][]resilex.Symbol{w}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if unamb, _ := fixed.Unambiguous(); !unamb {
		t.Error("still ambiguous")
	}
}

func TestFacadeSimplify(t *testing.T) {
	tab := resilex.NewTable()
	n, err := resilex.ParseRegex("p p* | #eps", tab, resilex.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	s := resilex.SimplifyRegex(n)
	if s.Size() >= n.Size() {
		t.Errorf("no simplification: %d -> %d nodes", n.Size(), s.Size())
	}
}

func TestFacadeMaximizationAlgorithms(t *testing.T) {
	tab := resilex.NewTable()
	sigma3src, _ := resilex.ParseTokens("p q r", tab)
	sigma := resilex.NewAlphabet(sigma3src...)

	// LeftFilter on the Example 4.7 input.
	x, err := resilex.ParseExpr("q p <p> .*", tab, sigma, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lf, err := resilex.LeftFilter(x)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := lf.Maximal(); !m {
		t.Error("LeftFilter output not maximal")
	}
	// RightFilter on the mirror case.
	y, err := resilex.ParseExpr("(p | p p) <p> q", tab, sigma, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := resilex.RightFilter(y)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := rf.Maximal(); !m {
		t.Error("RightFilter output not maximal")
	}
	// Pivot + decomposition inspection.
	z, err := resilex.ParseExpr("(p q)* r q <p> .*", tab, sigma, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := resilex.PivotDecomposition(z)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Pivots) == 0 {
		t.Error("no pivots discovered")
	}
	pv, err := resilex.Pivot(z)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := pv.Maximal(); !m {
		t.Error("Pivot output not maximal")
	}
	// Compose two maximal pieces.
	a, _ := resilex.ParseExpr("[^ q]* <q> .*", tab, sigma, resilex.Options{})
	b, _ := resilex.ParseExpr("[^ p]* <p> .*", tab, sigma, resilex.Options{})
	c, err := resilex.Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := c.Maximal(); !m {
		t.Error("Compose output not maximal")
	}
	// Streaming through the facade-compiled matcher.
	mtr, err := lf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mtr.Stream(); !ok {
		t.Error("maximized expression should stream")
	}
}

func TestFacadeTuplePersistence(t *testing.T) {
	w, err := resilex.TrainTuple([]resilex.Sample{
		{HTML: `<table><tr><td data-target>a</td><td data-target>b</td></tr></table>`},
	}, resilex.Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !resilex.IsTuplePayload(data) {
		t.Error("tuple payload not detected")
	}
	w2, err := resilex.LoadTupleWrapper(data, resilex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Arity() != 2 {
		t.Errorf("arity after reload = %d", w2.Arity())
	}
}

// DTD-guided training: the declared vocabulary becomes Σ, so redesigns
// using not-yet-seen elements stay parseable (§8's DTD suggestion).
func TestFacadeDTDGuidedTraining(t *testing.T) {
	dtd, err := resilex.ParseDTD(`
<!ELEMENT page (header, nav?, form)>
<!ELEMENT header (h1 | img)+>
<!ELEMENT nav (a*)>
<!ELEMENT form (input+)>
<!ELEMENT input EMPTY>
<!ELEMENT img EMPTY>
<!ELEMENT h1 (#PCDATA)>
<!ELEMENT a (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	// Two samples with different headers, so the merge anchors on the
	// FORM/INPUT structure rather than header specifics.
	w, err := resilex.Train([]resilex.Sample{
		{HTML: `<page><header><h1>Shop</h1></header><form><input><input data-target></form></page>`,
			Target: resilex.TargetMarker()},
		{HTML: `<page><header><img></header><form><input><input data-target></form></page>`,
			Target: resilex.TargetMarker()},
	}, resilex.Config{ExtraTags: dtd.Vocabulary()})
	if err != nil {
		t.Fatal(err)
	}
	// The redesign introduces NAV and A — declared in the DTD but absent
	// from both training samples. Without the DTD vocabulary these tags
	// would fall outside Σ and make the page unparseable by construction.
	novel := `<page><header><img></header><nav><a>deals</a></nav>` +
		`<form><input><input></form></page>`
	r, err := w.Extract(novel)
	if err != nil {
		t.Fatalf("DTD-covered redesign unparseable: %v", err)
	}
	if r.TokenIndex == 0 {
		t.Error("suspicious extraction at token 0")
	}
}
