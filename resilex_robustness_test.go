package resilex

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

const (
	robustPageA = `<h1>Shop</h1><form><input type="image"><input type="text" data-target></form>`
	robustPageB = `<div><h1>Shop</h1><p>deal!</p><form><input type="image"><input type="text" data-target></form></div>`
)

func robustWrapper(t *testing.T) *Wrapper {
	t.Helper()
	w, err := Train([]Sample{
		{HTML: robustPageA, Target: TargetMarker()},
		{HTML: robustPageB, Target: TargetMarker()},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestGuardConvertsPanics pins the facade backstop: any panic that escapes
// the internal packages surfaces as an error wrapping ErrInternal.
func TestGuardConvertsPanics(t *testing.T) {
	err := func() (err error) {
		defer guard(&err)
		panic("invariant violated")
	}()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "invariant violated") {
		t.Errorf("panic value lost: %v", err)
	}
}

// TestFacadeErrorTaxonomy walks each failure class through the public API
// and checks the canonical sentinel is detectable with errors.Is.
func TestFacadeErrorTaxonomy(t *testing.T) {
	// Malformed persisted input.
	if _, err := LoadWrapper([]byte(`{`), Options{}); !errors.Is(err, ErrMalformedInput) {
		t.Errorf("LoadWrapper: %v", err)
	}
	if _, err := LoadFleet([]byte(`[]`), Options{}); !errors.Is(err, ErrMalformedInput) {
		t.Errorf("LoadFleet: %v", err)
	}

	w := robustWrapper(t)

	// No-match (drift signal): both sentinel names detect it.
	_, err := w.Extract(`<i>junk</i>`)
	if !errors.Is(err, ErrNoMatch) || !errors.Is(err, ErrNotExtracted) {
		t.Errorf("no-match: %v", err)
	}

	// Deadline: an expired context fails fast through the facade helper.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := ExtractWithin(ctx, w, robustPageA); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("expired extract: %v", err)
	}
	if _, err := RefreshWithin(ctx, w, Sample{HTML: robustPageA, Target: TargetMarker()}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("expired refresh: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("expired-context calls took %v, want < 100ms", elapsed)
	}

	// Budget: training under a starvation budget surfaces ErrBudgetExceeded.
	_, err = Train([]Sample{
		{HTML: robustPageA, Target: TargetMarker()},
		{HTML: robustPageB, Target: TargetMarker()},
	}, Config{Options: Options{MaxStates: 2}})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("starved train: %v", err)
	}

	// Fleet dispatch failures.
	f := NewFleet()
	f.Add("shop", w)
	if _, err := f.ExtractFrom("ghost", robustPageA); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown key: %v", err)
	}
}

// TestFacadeSupervisor runs the re-exported supervisor end to end: ladder
// rungs, breaker quarantine, and the typed miss report.
func TestFacadeSupervisor(t *testing.T) {
	f := NewFleet()
	f.Add("shop", robustWrapper(t))
	sup := NewSupervisor(f, SupervisorConfig{
		BreakerThreshold: 2,
		Sleep:            func(time.Duration) {},
	})
	ctx := context.Background()

	out, err := sup.Extract(ctx, "shop", robustPageB)
	if err != nil || out.Rung != RungWrapper {
		t.Fatalf("healthy extract: %+v, %v", out, err)
	}

	for i := 0; i < 2; i++ {
		sup.Extract(ctx, "shop", `<i>junk</i>`)
	}
	if h := sup.Health("shop"); h.Breaker != BreakerOpen {
		t.Fatalf("breaker = %v, want open", h.Breaker)
	}
	_, err = sup.Extract(ctx, "shop", `<i>junk</i>`)
	var miss *MissReport
	if !errors.As(err, &miss) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined: %v", err)
	}
}
