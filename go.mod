module resilex

go 1.22
