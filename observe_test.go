package resilex_test

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"resilex"
)

// TestObserverFacade covers the public observability surface: context
// threading, phase recording during training, the snapshot writer, and the
// slog-backed event logger.
func TestObserverFacade(t *testing.T) {
	o := resilex.NewObserver()
	ctx := resilex.WithObserver(context.Background(), o)
	if resilex.ObserverFromContext(ctx) != o {
		t.Fatal("observer did not round-trip through the context")
	}
	if resilex.ObserverFromContext(context.Background()) != nil {
		t.Fatal("empty context yielded an observer")
	}

	// Training under the observer-carrying context records every machine
	// construction phase into the registry and the span ring.
	w, err := resilex.Train([]resilex.Sample{
		{HTML: page1, Target: resilex.TargetMarker()},
		{HTML: page2, Target: resilex.TargetMarker()},
	}, resilex.Config{Options: resilex.Options{Ctx: ctx}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Extract(page1); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["machine_subset_states_total"] == 0 {
		t.Errorf("no subset states recorded: %v", snap.Counters)
	}
	if snap.Histograms["machine_determinize_duration_us"].Count == 0 {
		t.Errorf("no determinize durations recorded: %v", snap.Histograms)
	}
	if o.Trace.Total() == 0 {
		t.Error("no spans recorded")
	}

	var out bytes.Buffer
	if err := resilex.WriteObserverSnapshot(&out, o); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"metrics"`, `"spans"`, "machine_subset_states_total"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("snapshot JSON missing %s", want)
		}
	}

	// The slog adapter forwards events with their key/value attributes.
	var logBuf bytes.Buffer
	o.Log = resilex.SlogLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	o.Event("facade.test", "answer", 42)
	if got := logBuf.String(); !strings.Contains(got, "facade.test") || !strings.Contains(got, "answer=42") {
		t.Errorf("slog event = %q", got)
	}

	// A nil slog logger falls back to the default logger without panicking.
	resilex.SlogLogger(nil).Event("noop")
}
