package htmltok

import (
	"math/rand"
	"reflect"
	"testing"

	"resilex/internal/symtab"
)

// collectStream runs src through a Streamer in the given chunk sizes and
// returns the emitted tokens with Name/Bytes materialized (they alias
// streamer buffers during emit).
func collectStream(src string, chunks []int, parseAttrs bool) []Token {
	var out []Token
	s := NewStreamer(func(t RawToken) {
		out = append(out, Token{
			Kind:  t.Kind,
			Name:  string(t.Name),
			Attrs: t.Attrs,
			Start: t.Start,
			End:   t.End,
		})
	})
	s.ParseAttrs = parseAttrs
	rest := []byte(src)
	for _, n := range chunks {
		if n > len(rest) {
			n = len(rest)
		}
		s.Feed(rest[:n])
		rest = rest[n:]
	}
	s.Feed(rest)
	s.Close()
	return out
}

// scanTokens adapts Scan's output for comparison: Text/Comment/Doctype
// carry no Name, and attrs are dropped unless requested.
func scanTokens(src string, withAttrs bool) []Token {
	toks := Scan(src)
	out := make([]Token, len(toks))
	for i, t := range toks {
		out[i] = Token{Kind: t.Kind, Name: t.Name, Start: t.Start, End: t.End}
		if withAttrs {
			out[i].Attrs = t.Attrs
		}
	}
	return out
}

// streamerDocs are documents chosen so that chunk splits land inside every
// construct kind: tags with quoted '>' characters, comments, doctype,
// raw-text elements (terminated and not), stray '<', multi-byte UTF-8 in
// text and attribute values, and the PR 7 invalid-UTF-8 raw-text crasher.
var streamerDocs = []string{
	"",
	"plain text only",
	"<p>x</p>",
	"<FORM action=\"/a?x=1&y=2\"><INPUT type=\"text\" name='q' checked></FORM>",
	"<!-- a comment with <tags> inside --><!DOCTYPE html><html></html>",
	"<script>if (a<b) { f(\"</div>\") }</script><p>after</p>",
	"<style>p > a { color: red }</style>",
	"<textarea>free < text</textarea>",
	"<p>héllo wörld — 漢字テスト</p>",
	"<a href=\"x>y\" title='quoted > close'>link</a>",
	"< p stray",
	"<<>>",
	"</",
	"<p>x</p/",
	"<sCript>\xfd\xd4\xec\xb0\xe8</sCript>",
	"<sCript>\xfd\xd4\xec\xb0\xe8</sCript",
	"a<b>c</b",
	"<input type=\">",
	"text <!-- unterminated comment",
	"<!DOCTYPE unterminated",
	"<div class=x data-y=1/>tail</div>",
	"\x00<\xff>",
	"<TITLE>page — ünïcode</TITLE><BODY>rest</BODY>",
}

// TestStreamerMatchesScanAllSplits is the boundary-straddling regression
// suite: for every document, every 2-chunk split point (including splits in
// the middle of multi-byte UTF-8 sequences, tag names, comments and
// raw-text close sequences) must reproduce Scan's token stream exactly.
func TestStreamerMatchesScanAllSplits(t *testing.T) {
	for _, src := range streamerDocs {
		want := scanTokens(src, false)
		for cut := 0; cut <= len(src); cut++ {
			got := collectStream(src, []int{cut}, false)
			if !tokensEqual(got, want) {
				t.Fatalf("doc %q split at %d:\n got %+v\nwant %+v", src, cut, got, want)
			}
		}
	}
}

// TestStreamerMatchesScanSmallChunks drips every document through the
// streamer byte-by-byte and in random small chunks.
func TestStreamerMatchesScanSmallChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, src := range streamerDocs {
		want := scanTokens(src, false)
		ones := make([]int, len(src))
		for i := range ones {
			ones[i] = 1
		}
		if got := collectStream(src, ones, false); !tokensEqual(got, want) {
			t.Fatalf("doc %q byte-by-byte:\n got %+v\nwant %+v", src, got, want)
		}
		for trial := 0; trial < 20; trial++ {
			var chunks []int
			for rem := len(src); rem > 0; {
				n := 1 + rng.Intn(5)
				if n > rem {
					n = rem
				}
				chunks = append(chunks, n)
				rem -= n
			}
			if got := collectStream(src, chunks, false); !tokensEqual(got, want) {
				t.Fatalf("doc %q chunks %v:\n got %+v\nwant %+v", src, chunks, got, want)
			}
		}
	}
}

// TestStreamerParseAttrs: with ParseAttrs set, attributes match Scan's for
// every split of an attribute-heavy document.
func TestStreamerParseAttrs(t *testing.T) {
	src := "<INPUT type=\"radio\" name='q' checked value=a/b><a href=\"x>y\" >t</a>"
	want := scanTokens(src, true)
	for cut := 0; cut <= len(src); cut++ {
		got := collectStream(src, []int{cut}, true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("split at %d:\n got %+v\nwant %+v", cut, got, want)
		}
	}
}

func tokensEqual(a, b []Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Name != b[i].Name ||
			a[i].Start != b[i].Start || a[i].End != b[i].End {
			return false
		}
	}
	return true
}

// TestStreamerReset: a recycled streamer starts a fresh document with fresh
// offsets and no leftover construct state.
func TestStreamerReset(t *testing.T) {
	var got []Token
	s := NewStreamer(func(t RawToken) {
		got = append(got, Token{Kind: t.Kind, Name: string(t.Name), Start: t.Start, End: t.End})
	})
	s.Feed([]byte("<p>first<!-- unterminated"))
	s.Reset()
	got = got[:0]
	s.Feed([]byte("<div>x</div>"))
	s.Close()
	want := scanTokens("<div>x</div>", false)
	if !tokensEqual(got, want) {
		t.Fatalf("after Reset:\n got %+v\nwant %+v", got, want)
	}
	chunks, carries := s.Stats()
	if chunks != 2 || carries != 0 {
		t.Errorf("Stats = %d,%d, want 2,0", chunks, carries)
	}
}

// TestStreamerCarryStats: a boundary inside a token is counted as a carry.
func TestStreamerCarryStats(t *testing.T) {
	s := NewStreamer(func(RawToken) {})
	s.Feed([]byte("<di"))
	s.Feed([]byte("v>x</div>"))
	s.Close()
	if _, carries := s.Stats(); carries != 1 {
		t.Errorf("carries = %d, want 1", carries)
	}
}

// TestStreamSymMatchesMap: feeding streamed tokens through StreamSym yields
// the same symbol sequence as Map, provided the names were interned during
// training — and None (out of Σ) for fresh names, which Map would intern as
// fresh (equally out-of-Σ) symbols.
func TestStreamSymMatchesMap(t *testing.T) {
	src := "<FORM><INPUT type=a><!-- c -->text<BR></FORM><NEWTAG>"
	tab := symtab.NewTable()
	m := NewMapper(tab)
	m.KeepText = true
	m.Skip = map[string]bool{"BR": true}
	doc := m.Map(src) // interns FORM, INPUT, #text, /FORM, NEWTAG
	var streamed []symtab.Symbol
	s := NewStreamer(func(rt RawToken) {
		if sym, ok := m.StreamSym(rt); ok {
			streamed = append(streamed, sym)
		}
	})
	for i := 0; i < len(src); i += 3 {
		end := i + 3
		if end > len(src) {
			end = len(src)
		}
		s.Feed([]byte(src[i:end]))
	}
	s.Close()
	if !reflect.DeepEqual(streamed, doc.Syms) {
		t.Fatalf("streamed %v, Map %v", streamed, doc.Syms)
	}
	// A name never interned resolves to None but still occupies a position.
	fresh := symtab.NewTable()
	fm := NewMapper(fresh)
	var syms []symtab.Symbol
	fs := NewStreamer(func(rt RawToken) {
		if sym, ok := fm.StreamSym(rt); ok {
			syms = append(syms, sym)
		}
	})
	fs.Feed([]byte("<UNSEEN>"))
	fs.Close()
	if len(syms) != 1 || syms[0] != symtab.None {
		t.Fatalf("fresh tag resolved to %v, want [None]", syms)
	}
}

// TestStreamerFeedNoAllocWarm: a warm streamer tokenizing chunk-split HTML
// (without ParseAttrs) performs no allocations per Feed.
func TestStreamerFeedNoAllocWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the warm path")
	}
	src := []byte("<FORM action=x><INPUT type=y>text runs here<P>more</P></FORM>")
	s := NewStreamer(func(RawToken) {})
	for i := 0; i < 4; i++ { // warm carry/name buffers
		s.Reset()
		s.Feed(src[:17])
		s.Feed(src[17:])
		s.Close()
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		s.Feed(src[:17])
		s.Feed(src[17:])
		s.Close()
	})
	if allocs != 0 {
		t.Fatalf("warm streamer allocated %.1f times per document, want 0", allocs)
	}
}

// FuzzStreamerChunks is the chunk-boundary differential fuzz target: any
// byte string cut at any position must tokenize exactly as Scan does on the
// whole. Seeded with the PR 7 invalid-UTF-8 raw-text crasher and the
// historical Scan crashers.
func FuzzStreamerChunks(f *testing.F) {
	f.Add("<p>x</p>", uint8(2))
	f.Add("<sCript>\xfd\xd4\xec\xb0\xe8</sCript", uint8(9))
	f.Add("<p>x</p/", uint8(4))
	f.Add("<!-- c --><a href=\"x>y\">t</a>", uint8(12))
	f.Add("<TITLE>héllo", uint8(8))
	f.Fuzz(func(t *testing.T, src string, cut8 uint8) {
		want := scanTokens(src, false)
		cut := 0
		if len(src) > 0 {
			cut = int(cut8) % (len(src) + 1)
		}
		got := collectStream(src, []int{cut}, false)
		if !tokensEqual(got, want) {
			t.Fatalf("split at %d of %q:\n got %+v\nwant %+v", cut, src, got, want)
		}
	})
}
