package htmltok

import (
	"fmt"
	"strings"
)

// DTD support — the paper's §8 closing direction: "One interesting issue
// here is using DTDs to guide the learning algorithms." The recurring
// operational problem a DTD solves is alphabet coverage: an extraction
// expression's Σ must include every tag a future page might use, or those
// pages become unparseable by construction. A document type definition
// declares the site's full element vocabulary up front, so wrappers trained
// against it never fall off Σ when a redesign shuffles known elements.

// DTDElement is one <!ELEMENT …> declaration.
type DTDElement struct {
	Name string // upper-cased element name
	// Empty reports an EMPTY content model (no end tag is expected, e.g.
	// input, br, img).
	Empty bool
	// Children lists the element names referenced by the content model
	// (flat: grouping, ordering and repetition operators are not retained —
	// only the vocabulary matters for alphabet derivation).
	Children []string
}

// DTD is a parsed document type definition (the ELEMENT declarations; ATTLIST
// and ENTITY declarations are skipped).
type DTD struct {
	Elements []DTDElement
}

// ParseDTD reads <!ELEMENT name (model)> declarations from DTD source text.
// It is permissive in the spirit of the HTML scanner: unknown declaration
// kinds and comments are skipped; malformed ELEMENT declarations are
// reported.
func ParseDTD(src string) (*DTD, error) {
	out := &DTD{}
	i := 0
	n := len(src)
	for i < n {
		if src[i] != '<' {
			i++
			continue
		}
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		if !strings.HasPrefix(src[i:], "<!") {
			i++
			continue
		}
		stop := strings.IndexByte(src[i:], '>')
		if stop < 0 {
			return nil, fmt.Errorf("htmltok: unterminated declaration at offset %d", i)
		}
		decl := src[i+2 : i+stop]
		i += stop + 1
		fields := strings.Fields(decl)
		if len(fields) < 2 || !strings.EqualFold(fields[0], "ELEMENT") {
			continue // ATTLIST, ENTITY, DOCTYPE… — vocabulary-irrelevant
		}
		name := strings.ToUpper(strings.TrimSpace(fields[1]))
		if name == "" {
			return nil, fmt.Errorf("htmltok: ELEMENT declaration without a name")
		}
		model := strings.Join(fields[2:], " ")
		el := DTDElement{Name: name}
		if strings.EqualFold(strings.TrimSpace(model), "EMPTY") {
			el.Empty = true
		} else {
			el.Children = modelNames(model)
		}
		out.Elements = append(out.Elements, el)
	}
	if len(out.Elements) == 0 {
		return nil, fmt.Errorf("htmltok: no ELEMENT declarations found")
	}
	return out, nil
}

// modelNames extracts the element names referenced in a content model such
// as "(tr+, caption?)" or "(#PCDATA | em)*".
func modelNames(model string) []string {
	var out []string
	seen := map[string]bool{}
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		name := strings.ToUpper(cur.String())
		cur.Reset()
		if name == "" || strings.HasPrefix(name, "#") || name == "EMPTY" || name == "ANY" {
			return
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for i := 0; i < len(model); i++ {
		c := model[i]
		if c == '_' || c == '#' || c == '.' || c == '-' ||
			'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' {
			cur.WriteByte(c)
			continue
		}
		flush()
	}
	flush()
	return out
}

// Vocabulary returns the token names the DTD's documents can produce under
// this library's tag-sequence abstraction: every declared or referenced
// element name plus "/NAME" end-tag tokens for non-EMPTY elements. Feed the
// result to wrapper Config.ExtraTags (or intern it into an Alphabet) so that
// Σ covers the whole site vocabulary.
func (d *DTD) Vocabulary() []string {
	empty := map[string]bool{}
	declared := map[string]bool{}
	var order []string
	add := func(name string) {
		if !declared[name] {
			declared[name] = true
			order = append(order, name)
		}
	}
	for _, el := range d.Elements {
		add(el.Name)
		if el.Empty {
			empty[el.Name] = true
		}
		for _, c := range el.Children {
			add(c)
		}
	}
	var out []string
	for _, name := range order {
		out = append(out, name)
		if !empty[name] {
			out = append(out, "/"+name)
		}
	}
	return out
}
