package htmltok

import (
	"sort"
	"strings"
	"testing"
)

const catalogDTD = `<!-- a catalog site's vocabulary -->
<!ELEMENT page (header, nav?, form, footer*)>
<!ELEMENT header (h1 | img)+>
<!ELEMENT nav (a*)>
<!ELEMENT form (input+)>
<!ELEMENT input EMPTY>
<!ELEMENT img EMPTY>
<!ATTLIST input type CDATA #IMPLIED>
<!ELEMENT h1 (#PCDATA)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT footer (#PCDATA | a)*>`

func TestParseDTD(t *testing.T) {
	d, err := ParseDTD(catalogDTD)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Elements) != 9 {
		t.Fatalf("elements = %d, want 9", len(d.Elements))
	}
	byName := map[string]DTDElement{}
	for _, el := range d.Elements {
		byName[el.Name] = el
	}
	if !byName["INPUT"].Empty || !byName["IMG"].Empty {
		t.Error("EMPTY content models not detected")
	}
	if byName["FORM"].Empty {
		t.Error("FORM wrongly EMPTY")
	}
	kids := byName["PAGE"].Children
	sort.Strings(kids)
	if strings.Join(kids, " ") != "FOOTER FORM HEADER NAV" {
		t.Errorf("PAGE children = %v", kids)
	}
	// #PCDATA never becomes a child.
	for _, c := range byName["H1"].Children {
		if strings.HasPrefix(c, "#") {
			t.Errorf("H1 children include %q", c)
		}
	}
}

func TestDTDVocabulary(t *testing.T) {
	d, err := ParseDTD(catalogDTD)
	if err != nil {
		t.Fatal(err)
	}
	vocab := d.Vocabulary()
	have := map[string]bool{}
	for _, v := range vocab {
		have[v] = true
	}
	for _, want := range []string{"PAGE", "/PAGE", "FORM", "/FORM", "INPUT", "IMG", "A", "/A"} {
		if !have[want] {
			t.Errorf("vocabulary missing %s (got %v)", want, vocab)
		}
	}
	// EMPTY elements have no end-tag tokens.
	if have["/INPUT"] || have["/IMG"] {
		t.Errorf("EMPTY elements grew end tags: %v", vocab)
	}
	// No duplicates.
	if len(have) != len(vocab) {
		t.Errorf("vocabulary has duplicates: %v", vocab)
	}
}

func TestParseDTDErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"<p>just html</p>",
		"<!ELEMENT unterminated (a",
		"<!ATTLIST only attlist here>",
	} {
		if _, err := ParseDTD(src); err == nil {
			t.Errorf("ParseDTD(%q) succeeded", src)
		}
	}
	// Comments and unknown declarations are skipped gracefully.
	d, err := ParseDTD(`<!-- c --><!ENTITY x "y"><!ELEMENT p EMPTY>`)
	if err != nil || len(d.Elements) != 1 {
		t.Errorf("mixed DTD: %v, %v", d, err)
	}
}
