// Package htmltok turns HTML pages into the tag-sequence abstraction of the
// paper's Section 3: a document becomes a string of interned token symbols
// ("P H1 /H1 P FORM INPUT …"), with byte spans kept alongside so that an
// extraction position maps back to a region of the original page.
//
// The scanner is a permissive, stdlib-only HTML tokenizer: it handles
// comments, doctype, CDATA sections, raw-text elements (script/style),
// quoted and unquoted attributes, and self-closing tags. It never fails on
// malformed input — stray '<' characters degrade to text, in the spirit of
// browser error recovery — because wrappers must tokenize whatever a web
// server returns.
package htmltok

import (
	"sort"
	"strings"

	"resilex/internal/symtab"
)

// Kind classifies raw HTML tokens.
type Kind int

// Token kinds.
const (
	Text Kind = iota
	StartTag
	EndTag
	SelfClosingTag
	Comment
	Doctype
)

// String names the token kind.
func (k Kind) String() string {
	switch k {
	case Text:
		return "text"
	case StartTag:
		return "start"
	case EndTag:
		return "end"
	case SelfClosingTag:
		return "self-closing"
	case Comment:
		return "comment"
	case Doctype:
		return "doctype"
	}
	return "unknown"
}

// Attr is one tag attribute; Val is unescaped only of quotes, not entities.
type Attr struct {
	Key, Val string
}

// Token is one raw HTML token with its byte span in the source.
type Token struct {
	Kind       Kind
	Name       string // upper-cased tag name; empty for Text/Comment/Doctype
	Attrs      []Attr // lower-cased keys, in source order
	Start, End int    // half-open byte range in the source
}

// Attr returns the value of the named attribute (lower-case key) and
// whether it is present.
func (t Token) Attr(key string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// rawTextElements swallow everything until their matching end tag.
var rawTextElements = map[string]bool{"SCRIPT": true, "STYLE": true, "TEXTAREA": true, "TITLE": true}

// Scan tokenizes the page. It always succeeds; malformed markup degrades to
// text tokens.
func Scan(html string) []Token {
	var out []Token
	i := 0
	n := len(html)
	textStart := -1
	flushText := func(end int) {
		if textStart >= 0 && end > textStart {
			if strings.TrimSpace(html[textStart:end]) != "" {
				out = append(out, Token{Kind: Text, Start: textStart, End: end})
			}
		}
		textStart = -1
	}
	for i < n {
		c := html[i]
		if c != '<' {
			if textStart < 0 {
				textStart = i
			}
			i++
			continue
		}
		// Comment?
		if strings.HasPrefix(html[i:], "<!--") {
			flushText(i)
			end := strings.Index(html[i+4:], "-->")
			stop := n
			if end >= 0 {
				stop = i + 4 + end + 3
			}
			out = append(out, Token{Kind: Comment, Start: i, End: stop})
			i = stop
			continue
		}
		// Doctype or CDATA or other declaration.
		if strings.HasPrefix(html[i:], "<!") {
			flushText(i)
			stop := strings.IndexByte(html[i:], '>')
			end := n
			if stop >= 0 {
				end = i + stop + 1
			}
			out = append(out, Token{Kind: Doctype, Start: i, End: end})
			i = end
			continue
		}
		// Candidate tag: must start with a letter or '/'.
		j := i + 1
		closing := false
		if j < n && html[j] == '/' {
			closing = true
			j++
		}
		if j >= n || !isAlpha(html[j]) {
			// Stray '<': treat as text.
			if textStart < 0 {
				textStart = i
			}
			i++
			continue
		}
		flushText(i)
		tok, next := scanTag(html, i, j, closing)
		out = append(out, tok)
		i = next
		// Raw-text element: consume everything up to the matching close.
		if tok.Kind == StartTag && rawTextElements[tok.Name] {
			closeSeq := "</" + strings.ToLower(tok.Name)
			// ASCII-only fold: strings.ToLower would rewrite invalid UTF-8
			// bytes as 3-byte replacement runes, desynchronizing the found
			// index from offsets into html.
			rest := asciiLower(html[i:])
			at := strings.Index(rest, closeSeq)
			if at < 0 {
				i = n
				continue
			}
			if strings.TrimSpace(html[i:i+at]) != "" {
				out = append(out, Token{Kind: Text, Start: i, End: i + at})
			}
			i += at
		}
	}
	flushText(n)
	return out
}

func isAlpha(c byte) bool {
	return ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

// asciiLower lowercases ASCII letters byte-for-byte, leaving every other
// byte (including invalid UTF-8) untouched, so indexes into the result are
// valid indexes into s.
func asciiLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// scanTag scans a tag starting at html[start] == '<'; nameStart points at
// the first name byte.
func scanTag(html string, start, nameStart int, closing bool) (Token, int) {
	n := len(html)
	i := nameStart
	for i < n && (isAlpha(html[i]) || html[i] >= '0' && html[i] <= '9') {
		i++
	}
	name := strings.ToUpper(html[nameStart:i])
	tok := Token{Kind: StartTag, Name: name, Start: start}
	if closing {
		tok.Kind = EndTag
	}
	// Attributes.
	for i < n {
		for i < n && isSpace(html[i]) {
			i++
		}
		if i >= n {
			break
		}
		if html[i] == '>' {
			i++
			break
		}
		if html[i] == '/' && i+1 < n && html[i+1] == '>' {
			if tok.Kind == StartTag {
				tok.Kind = SelfClosingTag
			}
			i += 2
			break
		}
		if html[i] == '/' {
			// A stray '/' not followed by '>' (e.g. a truncated "</p/" at
			// end of input): skip it, or the loop below makes no progress.
			i++
			continue
		}
		// Attribute name.
		ks := i
		for i < n && html[i] != '=' && html[i] != '>' && html[i] != '/' && !isSpace(html[i]) {
			i++
		}
		key := strings.ToLower(html[ks:i])
		val := ""
		for i < n && isSpace(html[i]) {
			i++
		}
		if i < n && html[i] == '=' {
			i++
			for i < n && isSpace(html[i]) {
				i++
			}
			if i < n && (html[i] == '"' || html[i] == '\'') {
				q := html[i]
				i++
				vs := i
				for i < n && html[i] != q {
					i++
				}
				val = html[vs:i]
				if i < n {
					i++
				}
			} else {
				vs := i
				for i < n && !isSpace(html[i]) && html[i] != '>' {
					i++
				}
				val = html[vs:i]
			}
		}
		if key != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: key, Val: val})
		}
	}
	tok.End = i
	return tok, i
}

// Span is a byte range of the source page.
type Span struct{ Start, End int }

// Mapper converts raw tokens into the symbol-string abstraction. The zero
// value is not usable; construct with NewMapper.
type Mapper struct {
	tab *symtab.Table
	// KeepEndTags emits "/FORM"-style symbols for end tags (the paper's
	// representation keeps them).
	KeepEndTags bool
	// KeepText emits a single #text pseudo-symbol for every text run; off by
	// default, matching the paper's "contents … of no interest" abstraction.
	KeepText bool
	// AttrKeys refines tag symbols with the listed attribute values, e.g.
	// with AttrKeys = ["type"], <input type="radio"> becomes the symbol
	// INPUT[type=radio]. This realizes the paper's remark that "it is easy
	// to enrich this model to take the tag attributes into account".
	AttrKeys []string
	// Skip lists upper-case tag names to drop entirely (e.g. BR, HR).
	Skip map[string]bool

	// endBuf is StreamSym's end-tag scratch ("/NAME"). It makes StreamSym
	// single-goroutine state, unlike Map; streaming callers hold one Mapper
	// per in-flight extraction.
	endBuf []byte
}

// NewMapper returns a Mapper with the paper's defaults: end tags kept, text
// dropped, no attribute refinement.
func NewMapper(tab *symtab.Table) *Mapper {
	return &Mapper{tab: tab, KeepEndTags: true}
}

// TextSymbolName is the pseudo-token name used when KeepText is set.
const TextSymbolName = "#text"

// Document is a tokenized page: the symbol string plus a parallel span
// array mapping each symbol back to the page source.
type Document struct {
	HTML  string
	Syms  []symtab.Symbol
	Spans []Span
}

// Map tokenizes html and converts it to a Document.
func (m *Mapper) Map(html string) Document {
	raw := Scan(html)
	doc := Document{HTML: html}
	for _, t := range raw {
		switch t.Kind {
		case Comment, Doctype:
			continue
		case Text:
			if !m.KeepText {
				continue
			}
			doc.Syms = append(doc.Syms, m.tab.Intern(TextSymbolName))
			doc.Spans = append(doc.Spans, Span{t.Start, t.End})
		case EndTag:
			if !m.KeepEndTags || m.Skip[t.Name] {
				continue
			}
			doc.Syms = append(doc.Syms, m.tab.Intern("/"+t.Name))
			doc.Spans = append(doc.Spans, Span{t.Start, t.End})
		case StartTag, SelfClosingTag:
			if m.Skip[t.Name] {
				continue
			}
			doc.Syms = append(doc.Syms, m.tab.Intern(m.symbolName(t)))
			doc.Spans = append(doc.Spans, Span{t.Start, t.End})
		}
	}
	return doc
}

func (m *Mapper) symbolName(t Token) string {
	if len(m.AttrKeys) == 0 {
		return t.Name
	}
	var parts []string
	for _, k := range m.AttrKeys {
		if v, ok := t.Attr(k); ok {
			parts = append(parts, k+"="+v)
		}
	}
	if len(parts) == 0 {
		return t.Name
	}
	sort.Strings(parts)
	return t.Name + "[" + strings.Join(parts, " ") + "]"
}

// Alphabet returns the alphabet of the document's symbols.
func (d Document) Alphabet() symtab.Alphabet {
	return symtab.NewAlphabet(d.Syms...)
}

// SpanOf returns the source region of token index i.
func (d Document) SpanOf(i int) Span { return d.Spans[i] }

// Source returns the page text of token index i.
func (d Document) Source(i int) string {
	s := d.Spans[i]
	return d.HTML[s.Start:s.End]
}

// Find returns the index of the n-th (0-based) occurrence of the symbol in
// the document, or -1.
func (d Document) Find(sym symtab.Symbol, n int) int {
	seen := 0
	for i, s := range d.Syms {
		if s == sym {
			if seen == n {
				return i
			}
			seen++
		}
	}
	return -1
}
