package htmltok

import (
	"testing"

	"resilex/internal/symtab"
)

// FuzzScan asserts the tokenizer never panics on arbitrary bytes and always
// produces tokens with sane, in-bounds, non-decreasing spans.
func FuzzScan(f *testing.F) {
	seeds := []string{
		"<p>x</p>",
		"<input type=\"text\" name='q' checked>",
		"<!-- comment --><!DOCTYPE html>",
		"<script>if (a<b) {}</script>",
		"< p", "<<>>", "</", "<a b=c d>", "\x00<\xff>", "<style>",
		"<p", "a<b>c</b", "<input type=\">",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks := Scan(src)
		last := 0
		for _, tok := range toks {
			if tok.Start < 0 || tok.End > len(src) || tok.Start > tok.End {
				t.Fatalf("bad span %+v for input %q", tok, src)
			}
			if tok.Start < last {
				t.Fatalf("tokens out of order at %+v for input %q", tok, src)
			}
			last = tok.Start
		}
		// Mapping never panics either and yields parallel arrays.
		tab := symtab.NewTable()
		m := NewMapper(tab)
		m.KeepText = true
		doc := m.Map(src)
		if len(doc.Syms) != len(doc.Spans) {
			t.Fatal("Syms and Spans length mismatch")
		}
	})
}
