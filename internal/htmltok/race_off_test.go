//go:build !race

package htmltok

const raceEnabled = false
