package htmltok

import (
	"bytes"

	"resilex/internal/symtab"
)

// RawToken is one token produced by a Streamer. Name and Bytes alias the
// streamer's internal buffer (or the chunk being fed) and are valid only for
// the duration of the emit callback — callers that need them longer must
// copy. Start/End are absolute byte offsets into the whole stream.
type RawToken struct {
	Kind Kind
	// Name holds the upper-cased tag name bytes; nil for Text, Comment and
	// Doctype tokens.
	Name []byte
	// Bytes is the raw source of the token.
	Bytes []byte
	// Attrs is populated only when the streamer's ParseAttrs is set (it
	// allocates; only wrappers with attribute-refined symbols need it).
	Attrs      []Attr
	Start, End int
}

// streamState identifies the construct the pending (carried) bytes begin
// with. The carry buffer always starts at the first byte of that construct.
type streamState int

const (
	stNone    streamState = iota // no pending construct
	stLt                         // a '<' with too little lookahead to classify
	stText                       // a text run (may contain stray '<')
	stComment                    // "<!--" without its "-->" yet
	stDoctype                    // "<!" declaration without its '>' yet
	stTag                        // a tag without its structural '>' yet
	stRaw                        // raw-text content awaiting its close tag
)

// Streamer is the chunked, resumable counterpart of Scan: bytes arrive in
// arbitrary slices via Feed, tokens are delivered to the emit callback in
// exactly the order — and with exactly the spans — Scan would produce for
// the concatenated input (FuzzStreamerChunks enforces this byte-for-byte).
// Constructs that straddle a chunk boundary are carried over and resumed, so
// no token, tag name or multi-byte UTF-8 sequence is ever split by chunking.
//
// Memory is O(largest single token): only the current incomplete construct
// is buffered, never the document. A warm Streamer (buffers grown, Reset
// between documents) does not allocate on Feed unless ParseAttrs is set.
// A Streamer is single-goroutine state; pool and Reset to reuse.
type Streamer struct {
	// ParseAttrs enables attribute parsing on tag tokens. It allocates per
	// tag; leave it off unless the mapper refines symbols with AttrKeys.
	ParseAttrs bool

	emit  func(RawToken)
	carry []byte // pending construct bytes, starting at its first byte
	base  int    // absolute stream offset of the work buffer's first byte
	state streamState
	scan  int // resume offset within the pending construct (state-specific)

	rawSeq  []byte // lower-cased close sequence, e.g. "</script"
	nameBuf []byte // upper-cased tag-name scratch, aliased by RawToken.Name

	chunks  int64
	carries int64
}

// NewStreamer returns a streamer delivering tokens to emit.
func NewStreamer(emit func(RawToken)) *Streamer {
	return &Streamer{emit: emit}
}

// Reset prepares the streamer for a new document, keeping grown buffers.
func (s *Streamer) Reset() {
	s.carry = s.carry[:0]
	s.base = 0
	s.state = stNone
	s.scan = 0
}

// Stats reports the number of chunks fed and of chunk boundaries that
// landed inside a token (resumed-construct carries) since construction.
func (s *Streamer) Stats() (chunks, carries int64) {
	return s.chunks, s.carries
}

// Feed consumes one chunk. Complete tokens are emitted during the call; an
// incomplete trailing construct is carried into the next Feed or Close. The
// chunk is not retained — the caller may reuse it after Feed returns.
func (s *Streamer) Feed(chunk []byte) {
	s.chunks++
	b := chunk
	if len(s.carry) > 0 {
		s.carries++
		s.carry = append(s.carry, chunk...)
		b = s.carry
	}
	consumed := s.process(b, false)
	rest := b[consumed:]
	if len(s.carry) > 0 {
		// The carry was the work buffer: slide the remainder to its front
		// (dst precedes src, so the overlapping copy is safe).
		n := copy(s.carry, rest)
		s.carry = s.carry[:n]
	} else if len(rest) > 0 {
		s.carry = append(s.carry[:0], rest...)
	}
	s.base += consumed
}

// Close signals end of input, flushing any pending construct exactly as
// Scan treats end of document (trailing text flushes, unterminated comments
// and tags extend to EOF, unterminated raw-text content is discarded).
func (s *Streamer) Close() {
	if len(s.carry) > 0 {
		s.base += s.process(s.carry, true)
		s.carry = s.carry[:0]
	}
	s.state = stNone
	s.scan = 0
}

// classification of a '<' byte.
type ltClass int

const (
	clStray ltClass = iota // not a construct: the '<' is text
	clComment
	clDoctype
	clTag      // "<name"
	clTagClose // "</name"
)

// classifyLt decides what the '<' at b[i] begins, mirroring Scan's prefix
// tests. needMore means the buffer ends before the decision is possible
// (never reported at EOF, where Scan's answer is final).
func classifyLt(b []byte, i int, atEOF bool) (ltClass, bool) {
	n := len(b)
	if i+1 >= n {
		if !atEOF {
			return 0, true
		}
		return clStray, false
	}
	switch c := b[i+1]; {
	case c == '!':
		if n-i >= 4 {
			if b[i+2] == '-' && b[i+3] == '-' {
				return clComment, false
			}
			return clDoctype, false
		}
		if n-i == 3 && b[i+2] != '-' {
			return clDoctype, false // "<!x" can no longer become "<!--"
		}
		if !atEOF {
			return 0, true // "<!" or "<!-": still a possible comment
		}
		return clDoctype, false
	case c == '/':
		if i+2 >= n {
			if !atEOF {
				return 0, true
			}
			return clStray, false
		}
		if isAlpha(b[i+2]) {
			return clTagClose, false
		}
		return clStray, false
	case isAlpha(c):
		return clTag, false
	}
	return clStray, false
}

var commentEnd = []byte("-->")

// process scans the work buffer, emitting every construct that completes
// within it, and returns the number of bytes consumed. The unconsumed tail
// (the pending construct) must be carried into the next call; s.state and
// s.scan record how to resume it without rescanning completed work.
func (s *Streamer) process(b []byte, atEOF bool) int {
	n := len(b)
	start := 0 // first byte of the pending construct; == bytes consumed
	scan := s.scan
	state := s.state
	save := func(st streamState, sc int) {
		s.state = st
		s.scan = sc
	}
	for {
		switch state {
		case stNone:
			if start >= n {
				save(stNone, 0)
				return start
			}
			if b[start] != '<' {
				state, scan = stText, 1
				continue
			}
			cl, need := classifyLt(b, start, atEOF)
			if need {
				save(stLt, 0)
				return start
			}
			switch cl {
			case clComment:
				state, scan = stComment, 4
			case clDoctype:
				state, scan = stDoctype, 2
			case clTag, clTagClose:
				state, scan = stTag, 0
			default: // clStray: the '<' joins a text run
				state, scan = stText, 1
			}
		case stLt:
			// More bytes (or EOF) arrived: re-classify the pending '<'.
			state, scan = stNone, 0
		case stText:
			i := start + scan
			for i < n {
				if b[i] != '<' {
					i++
					continue
				}
				cl, need := classifyLt(b, i, atEOF)
				if need {
					save(stText, i-start)
					return start
				}
				if cl == clStray {
					i++
					continue
				}
				break
			}
			if i >= n && !atEOF {
				save(stText, n-start)
				return start
			}
			// Flush the run [start, i): a construct begins at i, or EOF.
			if len(bytes.TrimSpace(b[start:i])) != 0 {
				s.send(Text, nil, b, start, i, nil)
			}
			start, state, scan = i, stNone, 0
		case stComment:
			from := start + scan
			if idx := bytes.Index(b[from:n], commentEnd); idx >= 0 {
				end := from + idx + 3
				s.send(Comment, nil, b, start, end, nil)
				start, state, scan = end, stNone, 0
				continue
			}
			if atEOF {
				s.send(Comment, nil, b, start, n, nil)
				start, state, scan = n, stNone, 0
				continue
			}
			// Resume past everything scanned, minus the possible "--" of a
			// split "-->" (never back into the opening "<!--").
			sc := n - start - 2
			if sc < 4 {
				sc = 4
			}
			save(stComment, sc)
			return start
		case stDoctype:
			from := start + scan
			if idx := bytes.IndexByte(b[from:n], '>'); idx >= 0 {
				end := from + idx + 1
				s.send(Doctype, nil, b, start, end, nil)
				start, state, scan = end, stNone, 0
				continue
			}
			if atEOF {
				s.send(Doctype, nil, b, start, n, nil)
				start, state, scan = n, stNone, 0
				continue
			}
			save(stDoctype, n-start)
			return start
		case stTag:
			closing := b[start+1] == '/'
			nameStart := start + 1
			if closing {
				nameStart++
			}
			end, kind, nameEnd, ok := streamTag(b, nameStart, closing)
			if !ok && !atEOF {
				// Tags are small; re-scanning from the tag start on resume
				// is cheaper than carrying the mid-attribute quote state.
				save(stTag, 0)
				return start
			}
			s.nameBuf = appendUpperASCII(s.nameBuf[:0], b[nameStart:nameEnd])
			var attrs []Attr
			if s.ParseAttrs {
				tok, _ := scanTag(string(b[start:end]), 0, nameStart-start, closing)
				attrs, kind = tok.Attrs, tok.Kind
			}
			s.send(kind, s.nameBuf, b, start, end, attrs)
			start, state, scan = end, stNone, 0
			if kind == StartTag && rawTextElements[string(s.nameBuf)] {
				s.rawSeq = append(s.rawSeq[:0], '<', '/')
				for _, c := range b[nameStart:nameEnd] {
					if 'A' <= c && c <= 'Z' {
						c += 'a' - 'A'
					}
					s.rawSeq = append(s.rawSeq, c)
				}
				state = stRaw
			}
		case stRaw:
			seq := s.rawSeq
			found := -1
			for i := start + scan; i+len(seq) <= n; i++ {
				if foldHasPrefix(b[i:], seq) {
					found = i
					break
				}
			}
			if found >= 0 {
				if len(bytes.TrimSpace(b[start:found])) != 0 {
					s.send(Text, nil, b, start, found, nil)
				}
				// The close tag itself goes through the normal tag path.
				start, state, scan = found, stNone, 0
				continue
			}
			if atEOF {
				// Scan discards unterminated raw-text content.
				save(stNone, 0)
				return n
			}
			sc := n - start - len(seq) + 1
			if sc < 0 {
				sc = 0
			}
			save(stRaw, sc)
			return start
		}
	}
}

func (s *Streamer) send(kind Kind, name, b []byte, start, end int, attrs []Attr) {
	s.emit(RawToken{
		Kind:  kind,
		Name:  name,
		Bytes: b[start:end],
		Attrs: attrs,
		Start: s.base + start,
		End:   s.base + end,
	})
}

// streamTag walks a tag over bytes, replicating scanTag's control flow
// without building strings. ok=false means the buffer ended before the
// tag's structural '>' (the caller carries it; at EOF the partial walk is
// final, exactly as scanTag treats end of input).
func streamTag(b []byte, nameStart int, closing bool) (end int, kind Kind, nameEnd int, ok bool) {
	n := len(b)
	i := nameStart
	for i < n && (isAlpha(b[i]) || b[i] >= '0' && b[i] <= '9') {
		i++
	}
	nameEnd = i
	kind = StartTag
	if closing {
		kind = EndTag
	}
	for i < n {
		for i < n && isSpace(b[i]) {
			i++
		}
		if i >= n {
			break
		}
		if b[i] == '>' {
			i++
			ok = true
			break
		}
		if b[i] == '/' && i+1 < n && b[i+1] == '>' {
			if kind == StartTag {
				kind = SelfClosingTag
			}
			i += 2
			ok = true
			break
		}
		if b[i] == '/' {
			i++
			continue
		}
		for i < n && b[i] != '=' && b[i] != '>' && b[i] != '/' && !isSpace(b[i]) {
			i++
		}
		for i < n && isSpace(b[i]) {
			i++
		}
		if i < n && b[i] == '=' {
			i++
			for i < n && isSpace(b[i]) {
				i++
			}
			if i < n && (b[i] == '"' || b[i] == '\'') {
				q := b[i]
				i++
				for i < n && b[i] != q {
					i++
				}
				if i < n {
					i++
				}
			} else {
				for i < n && !isSpace(b[i]) && b[i] != '>' {
					i++
				}
			}
		}
	}
	return i, kind, nameEnd, ok
}

// appendUpperASCII appends src to dst upper-casing ASCII letters, leaving
// every other byte (including invalid UTF-8) untouched.
func appendUpperASCII(dst, src []byte) []byte {
	for _, c := range src {
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// foldHasPrefix reports whether ASCII-lowercased b starts with seq (seq is
// already lower-case).
func foldHasPrefix(b, seq []byte) bool {
	if len(b) < len(seq) {
		return false
	}
	for i, c := range seq {
		x := b[i]
		if 'A' <= x && x <= 'Z' {
			x += 'a' - 'A'
		}
		if x != c {
			return false
		}
	}
	return true
}

// StreamSym resolves one streamed token to the symbol Map would emit for
// it, without mutating the symbol table: where Map interns fresh names,
// StreamSym reports them as symtab.None. ok=false means Map would drop the
// token entirely (comments, doctype, skipped tags, text with KeepText off).
// The distinction matters to matchers: a dropped token does not occupy a
// position, while a None symbol does — and kills every candidate whose
// suffix spans it, which is extraction-equivalent to Map's freshly interned
// (hence out-of-Σ) symbol.
//
// Without AttrKeys the resolution path does not allocate (the byte-to-string
// map indexes are elided); with AttrKeys it builds the refined symbol name
// and allocates, matching the ParseAttrs cost on the streamer.
func (m *Mapper) StreamSym(t RawToken) (sym symtab.Symbol, ok bool) {
	switch t.Kind {
	case Comment, Doctype:
		return symtab.None, false
	case Text:
		if !m.KeepText {
			return symtab.None, false
		}
		return m.tab.Lookup(TextSymbolName), true
	case EndTag:
		if !m.KeepEndTags || m.Skip[string(t.Name)] {
			return symtab.None, false
		}
		m.endBuf = append(m.endBuf[:0], '/')
		m.endBuf = append(m.endBuf, t.Name...)
		return m.tab.LookupBytes(m.endBuf), true
	default: // StartTag, SelfClosingTag
		if m.Skip[string(t.Name)] {
			return symtab.None, false
		}
		if len(m.AttrKeys) == 0 {
			return m.tab.LookupBytes(t.Name), true
		}
		name := m.symbolName(Token{Name: string(t.Name), Attrs: t.Attrs})
		return m.tab.Lookup(name), true
	}
}
