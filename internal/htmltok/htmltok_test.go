package htmltok

import (
	"strings"
	"testing"

	"resilex/internal/symtab"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasic(t *testing.T) {
	toks := Scan(`<p>Hello <b>world</b></p>`)
	want := []struct {
		kind Kind
		name string
	}{
		{StartTag, "P"}, {Text, ""}, {StartTag, "B"}, {Text, ""}, {EndTag, "B"}, {EndTag, "P"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), kinds(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Name != w.name {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Name, w.kind, w.name)
		}
	}
}

func TestScanAttributes(t *testing.T) {
	toks := Scan(`<input type="radio" name='attr' value=1 checked>`)
	if len(toks) != 1 {
		t.Fatalf("got %d tokens", len(toks))
	}
	tok := toks[0]
	if tok.Name != "INPUT" || tok.Kind != StartTag {
		t.Fatalf("tok = %+v", tok)
	}
	cases := map[string]string{"type": "radio", "name": "attr", "value": "1", "checked": ""}
	for k, want := range cases {
		got, ok := tok.Attr(k)
		if !ok || got != want {
			t.Errorf("attr %q = %q, %v; want %q", k, got, ok, want)
		}
	}
	if _, ok := tok.Attr("absent"); ok {
		t.Error("absent attribute found")
	}
}

func TestScanSelfClosing(t *testing.T) {
	toks := Scan(`<br/><input type="image" src="x.gif" />`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	for _, tok := range toks {
		if tok.Kind != SelfClosingTag {
			t.Errorf("%s not self-closing: %v", tok.Name, tok.Kind)
		}
	}
	if v, _ := toks[1].Attr("src"); v != "x.gif" {
		t.Errorf("src = %q", v)
	}
}

func TestScanCommentsAndDoctype(t *testing.T) {
	toks := Scan(`<!DOCTYPE html><!-- a <b> comment --><p>x</p>`)
	if toks[0].Kind != Doctype || toks[1].Kind != Comment {
		t.Fatalf("kinds = %v", kinds(toks))
	}
	if toks[2].Kind != StartTag || toks[2].Name != "P" {
		t.Errorf("after comment: %+v", toks[2])
	}
	// Unterminated comment swallows the rest.
	toks = Scan(`<p><!-- open`)
	if len(toks) != 2 || toks[1].Kind != Comment {
		t.Errorf("unterminated comment: %v", kinds(toks))
	}
}

func TestScanRawText(t *testing.T) {
	toks := Scan(`<script>if (a < b) { x("<p>"); }</script><p>`)
	if toks[0].Name != "SCRIPT" {
		t.Fatalf("first token %+v", toks[0])
	}
	// The script body is one text token; no P tag from inside the string.
	var names []string
	for _, tok := range toks {
		if tok.Kind == StartTag {
			names = append(names, tok.Name)
		}
	}
	if len(names) != 2 || names[1] != "P" {
		t.Errorf("start tags = %v, want [SCRIPT P]", names)
	}
	// Unterminated raw text.
	toks = Scan(`<style>body {}`)
	if toks[0].Name != "STYLE" {
		t.Errorf("toks = %v", kinds(toks))
	}
}

func TestScanMalformed(t *testing.T) {
	cases := []string{
		`a < b and c > d`,
		`<`,
		`<<p>>`,
		`<p`,
		`</>`,
		`<input type=">`,
		``,
		`plain text only`,
	}
	for _, src := range cases {
		toks := Scan(src) // must not panic
		for _, tok := range toks {
			if tok.Start < 0 || tok.End > len(src) || tok.Start > tok.End {
				t.Errorf("Scan(%q): bad span %+v", src, tok)
			}
		}
	}
}

func TestScanSpans(t *testing.T) {
	src := `<p><h1>Title</h1></p>`
	toks := Scan(src)
	for _, tok := range toks {
		frag := src[tok.Start:tok.End]
		switch tok.Kind {
		case StartTag:
			if !strings.HasPrefix(frag, "<") || !strings.HasSuffix(frag, ">") {
				t.Errorf("span of %s = %q", tok.Name, frag)
			}
		case Text:
			if frag != "Title" {
				t.Errorf("text span = %q", frag)
			}
		}
	}
}

// figure1TopHTML is the top document of the paper's Figure 1, verbatim.
const figure1TopHTML = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

func TestMapperFigure1(t *testing.T) {
	tab := symtab.NewTable()
	m := NewMapper(tab)
	m.Skip = map[string]bool{"BR": true}
	doc := m.Map(figure1TopHTML)
	got := tab.String(doc.Syms)
	want := "P H1 /H1 P FORM INPUT INPUT INPUT INPUT /FORM"
	if got != want {
		t.Errorf("mapped = %q, want %q", got, want)
	}
	// Span of the second INPUT maps back to the text input tag.
	idx := doc.Find(tab.Lookup("INPUT"), 1)
	if idx < 0 {
		t.Fatal("second INPUT not found")
	}
	if src := doc.Source(idx); !strings.Contains(src, `type="text"`) {
		t.Errorf("second INPUT source = %q", src)
	}
	if doc.SpanOf(idx).Start <= 0 {
		t.Error("span start not positive")
	}
}

func TestMapperAttrRefinement(t *testing.T) {
	tab := symtab.NewTable()
	m := NewMapper(tab)
	m.AttrKeys = []string{"type"}
	doc := m.Map(`<input type="text"><input type="radio"><input>`)
	got := tab.String(doc.Syms)
	want := "INPUT[type=text] INPUT[type=radio] INPUT"
	if got != want {
		t.Errorf("refined = %q, want %q", got, want)
	}
}

func TestMapperText(t *testing.T) {
	tab := symtab.NewTable()
	m := NewMapper(tab)
	m.KeepText = true
	doc := m.Map(`<p>hello</p>`)
	if got := tab.String(doc.Syms); got != "P #text /P" {
		t.Errorf("with text = %q", got)
	}
	// Whitespace-only runs are never emitted.
	doc = m.Map("<p>   \n </p>")
	if got := tab.String(doc.Syms); got != "P /P" {
		t.Errorf("whitespace text = %q", got)
	}
}

func TestMapperNoEndTags(t *testing.T) {
	tab := symtab.NewTable()
	m := NewMapper(tab)
	m.KeepEndTags = false
	doc := m.Map(`<p><b>x</b></p>`)
	if got := tab.String(doc.Syms); got != "P B" {
		t.Errorf("no-end = %q", got)
	}
}

func TestDocumentAlphabetAndFind(t *testing.T) {
	tab := symtab.NewTable()
	m := NewMapper(tab)
	doc := m.Map(`<tr></tr><tr></tr><tr></tr>`)
	if doc.Alphabet().Len() != 2 {
		t.Errorf("alphabet = %d symbols", doc.Alphabet().Len())
	}
	tr := tab.Lookup("TR")
	if doc.Find(tr, 2) != 4 {
		t.Errorf("third TR at %d, want 4", doc.Find(tr, 2))
	}
	if doc.Find(tr, 3) != -1 {
		t.Error("nonexistent occurrence found")
	}
}

func TestScanGtInsideQuotedAttr(t *testing.T) {
	toks := Scan(`<input value="a>b"><p>`)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens: %v", len(toks), kinds(toks))
	}
	if v, _ := toks[0].Attr("value"); v != "a>b" {
		t.Errorf("value = %q", v)
	}
	if toks[1].Name != "P" {
		t.Errorf("second token = %+v", toks[1])
	}
}

func TestScanCDATAAndProcessing(t *testing.T) {
	toks := Scan(`<![CDATA[ <p> not a tag ]]><p>`)
	// The declaration-like block is consumed as one Doctype token up to the
	// first '>', the rest degrades to text; the final <p> must survive.
	foundP := false
	for _, tok := range toks {
		if tok.Kind == StartTag && tok.Name == "P" {
			foundP = true
		}
	}
	if !foundP {
		t.Errorf("trailing <p> lost: %v", kinds(toks))
	}
}

func TestScanNumericTagNames(t *testing.T) {
	toks := Scan(`<h1>x</h1><h2>y</h2>`)
	if toks[0].Name != "H1" || toks[3].Name != "H2" {
		t.Errorf("names = %s %s", toks[0].Name, toks[3].Name)
	}
}

func TestMapperSkipCaseSensitivity(t *testing.T) {
	tab := symtab.NewTable()
	m := NewMapper(tab)
	m.Skip = map[string]bool{"BR": true}
	doc := m.Map(`<br><BR><Br/>`)
	if len(doc.Syms) != 0 {
		t.Errorf("BR variants not skipped: %s", tab.String(doc.Syms))
	}
}

// Regression: a truncated end tag with a trailing '/' at end of input
// ("</p/") used to hang the attribute loop (found by FuzzScan).
func TestScanTruncatedSlash(t *testing.T) {
	for _, src := range []string{`<p>x</p/`, `<p/`, `<input //`, `<a / href=x`} {
		toks := Scan(src) // must terminate
		for _, tok := range toks {
			if tok.Start < 0 || tok.End > len(src) {
				t.Errorf("Scan(%q): bad span %+v", src, tok)
			}
		}
	}
}
