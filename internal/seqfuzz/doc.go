// Package seqfuzz is the API-sequence differential fuzz harness: a
// deterministic interpreter that decodes fuzz bytes into a bounded sequence
// of public-API operations — compile (eager/lazy/stream), wrapper rollout
// mutations (put, canary-put, promote, rollback, delete), extraction
// (materialized, streaming, batch), cache eviction, codec encode→decode
// round trips, a server restart from disk, and a shard kill in an
// in-process cluster — and cross-checks every live equivalent surface
// against one reference model after every step.
//
// The reference model is deliberately the dumbest correct implementation in
// the repository: the eager two-scan Matcher over wrappers restored with
// plain wrapper.Load (no cache, no artifacts, no streaming), plus an
// in-memory map mirroring the versioned registry's per-key state machine.
// Everything the production stack layered on top of that — content-addressed
// caching, disk artifacts, lazy subset construction, the one-pass streaming
// matcher, canary routing, replication, restart recovery — is an
// optimization that claims extensional equivalence; this harness is where
// those claims are all checked against each other under *interleavings*
// (evict during singleflight, restart mid-canary, promote after restart,
// kill a shard under routed traffic) that no single-layer test reaches.
//
// Three invariant families are enforced after each step:
//
//   - extraction agreement: the materialized, streaming, and batch surfaces
//     (and the routed cluster surface, when live) return the same region —
//     token index, byte span, source bytes — the reference matcher does;
//   - error-taxonomy agreement: when a surface fails, it fails in the same
//     class (ok / no_match / malformed / budget / deadline) the model
//     predicts, never with an untyped error and never with a panic;
//   - registry agreement: the server's versioned per-key state (monotone
//     counter, active/canary/prior versions, tombstone flag, last rollout
//     outcome) equals the model's after every mutation and across restarts.
//
// The interpreter is deterministic by construction — fixed operand pools,
// stride-1 canary routing, no clocks, no randomness — so every crasher the
// fuzzer finds replays exactly from its input bytes. ARCHITECTURE.md §9
// documents the op vocabulary and the minimization/triage workflow.
package seqfuzz
