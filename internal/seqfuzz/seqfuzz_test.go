package seqfuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzAPISequence is the API-sequence differential fuzzer: bytes decode
// into a bounded op sequence, the sequence runs against the live stack, and
// every step is cross-checked against the reference model (see doc.go).
// The committed corpus under testdata/fuzz/FuzzAPISequence replays as part
// of the ordinary test run.
func FuzzAPISequence(f *testing.F) {
	for _, seed := range Seeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		Run(t, data)
	})
}

// TestOpCoverage proves the decoder and the seed set together reach every
// op kind: after running every seed, the per-kind execution ledger must
// have a nonzero count for each vocabulary entry. A new op kind added
// without a seed — or a decoder change that makes a kind unreachable —
// fails here, not silently in fuzzing throughput.
func TestOpCoverage(t *testing.T) {
	for _, seed := range Seeds() {
		Run(t, seed)
	}
	cov := Coverage()
	for k := OpKind(0); k < opCount; k++ {
		if cov[k] == 0 {
			t.Errorf("op kind %v was never executed by the seed set", k)
		}
	}
}

// TestDecodeBounds pins the decoder's totality guarantees: any byte string
// decodes, sequences are bounded, and EncodeOps round-trips through
// DecodeOps.
func TestDecodeBounds(t *testing.T) {
	if got := DecodeOps(nil); len(got) != 0 {
		t.Fatalf("DecodeOps(nil) = %v, want empty", got)
	}
	if got := DecodeOps([]byte{1, 2, 3}); len(got) != 0 {
		t.Fatalf("partial op decoded: %v", got)
	}
	long := make([]byte, (maxOps+10)*opBytes)
	if got := DecodeOps(long); len(got) != maxOps {
		t.Fatalf("len(DecodeOps(long)) = %d, want %d", len(got), maxOps)
	}
	ops := []Op{{Kind: OpPut, A: 1, B: 2, C: 3}, {Kind: OpShardKill, A: 255, B: 0, C: 7}}
	got := DecodeOps(EncodeOps(ops))
	if len(got) != len(ops) || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("round trip = %v, want %v", got, ops)
	}
	// Kind bytes beyond the vocabulary must fold back into it.
	if op := DecodeOps([]byte{byte(opCount), 0, 0, 0}); op[0].Kind != OpKind(0) {
		t.Fatalf("kind byte %d decoded to %v, want wraparound to %v", byte(opCount), op[0].Kind, OpKind(0))
	}
}

// TestSeedCorpusCommitted asserts the committed corpus mirrors Seeds(): one
// file per seed, byte-identical after corpus-format decoding. Regenerate
// with SEQFUZZ_WRITE_CORPUS=1 go test ./internal/seqfuzz -run TestSeedCorpusCommitted
func TestSeedCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzAPISequence")
	seeds := Seeds()
	if os.Getenv("SEQFUZZ_WRITE_CORPUS") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, seed := range seeds {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		body, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus file missing (regenerate with SEQFUZZ_WRITE_CORPUS=1): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if string(body) != want {
			t.Errorf("%s is stale: regenerate with SEQFUZZ_WRITE_CORPUS=1", path)
		}
	}
}
