package seqfuzz

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/machine"
	"resilex/internal/spanner"
	"resilex/internal/symtab"
	"resilex/internal/wrapper"
)

// The fixed operand pools. Fuzz bytes select from them by index, so the
// interpreter never has to validate free-form strings and every selector
// value is meaningful. The wrapper family is the one the serve and refresh
// tests rally around: a search form extracted from two layouts of the same
// site, a redesigned layout neither original sample covers (so rollouts can
// be made to miss on demand), and deliberately unusable payloads that must
// fail registration in the malformed-input class without mutating state.

const poolPageTop = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

const poolPageBottom = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>`

const poolPageFuture = `<div class="search"><span>find parts</span>
<form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
</form></div>`

// poolPageRecords is a three-column record table for the k-ary tuple
// family: the two-pivot expression finds two cell pairs per row, the
// three-pivot one a full row each — enough ambiguity that the one-pass
// spanner's enumeration order is actually exercised.
const poolPageRecords = `<table>
<tr><td>bolt</td><td>M4</td><td>$0.10</td></tr>
<tr><td>nut</td><td>M4</td><td>$0.08</td></tr>
</table>`

// opt is the construction budget every compile in the harness runs under:
// generous enough that the pooled expressions always fit, small enough that
// a pathological interleaving cannot make one op expensive.
func opt() machine.Options { return machine.Options{MaxStates: 4096} }

// docRef is the precomputed reference answer for one (payload, document)
// pair: the document tokenized against the payload's canonical artifact,
// the eager matcher's full answers, and the reference wrapper's extraction
// outcome — the single source of truth every live surface is compared to.
type docRef struct {
	syms    []symtab.Symbol
	all     []int
	findPos int
	findOK  bool
	region  wrapper.Region
	class   string
}

// payloadSpec is one pool wrapper payload with its reference machinery.
// Invalid payloads carry only their bytes; every surface must reject them
// in the malformed-input class.
type payloadSpec struct {
	data  []byte
	valid bool

	src      string
	sigma    []string
	cfg      wrapper.Config
	compiled *extract.Compiled // canonical eager artifact
	ref      *wrapper.Wrapper  // reference: plain Load, no cache
	streamOK bool
	docs     []docRef // indexed like pool.docs
}

// mapper builds the payload's tokenizer over tab — the same construction
// wrapper.Config performs, re-derived from the persisted fields so the
// reference tokenization matches what every Load of the payload does.
func (ps *payloadSpec) mapper(tab *symtab.Table) *htmltok.Mapper {
	m := htmltok.NewMapper(tab)
	m.KeepEndTags = !ps.cfg.DropEndTags
	m.KeepText = ps.cfg.KeepText
	m.AttrKeys = ps.cfg.AttrKeys
	if len(ps.cfg.Skip) > 0 {
		m.Skip = map[string]bool{}
		for _, s := range ps.cfg.Skip {
			m.Skip[s] = true
		}
	}
	return m
}

type opPool struct {
	keys     []string
	docs     []string
	payloads []*payloadSpec
	nValid   int // payloads[:nValid] are the compilable ones
	tuples   []*tupleSpec
}

// tupleSpec is one pooled k-ary tuple expression with its reference
// machinery: the pristine compiled artifact (never tokenized against, so
// its table stays exactly what CompileTupleArtifact produced and the
// encode→decode round trip stays honest), the pool documents tokenized
// over an identically compiled twin table, and the naive k-nested
// oracle's full vector enumeration per document.
type tupleSpec struct {
	src   string
	sigma []string
	comp  *extract.CompiledTuple
	words [][]symtab.Symbol // indexed like pool.docs
	want  [][][]int         // NaiveTuples reference, indexed like pool.docs
}

// tupleSigma covers every tag the pool documents emit, so the oracle sees
// the same words the spanner does instead of everything collapsing to
// out-of-Σ rejects.
var tupleSigma = []string{
	"P", "/P", "H1", "/H1", "FORM", "/FORM", "INPUT", "BR",
	"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD",
	"DIV", "/DIV", "SPAN", "/SPAN", "SCRIPT", "/SCRIPT",
	"HTML", "/HTML", "BODY", "/BODY",
}

func buildTupleSpec(src string, sigma []string, docs []string) *tupleSpec {
	comp, err := extract.CompileTupleArtifact(src, sigma, opt())
	if err != nil {
		panic(fmt.Sprintf("seqfuzz: compiling pool tuple %q: %v", src, err))
	}
	// Tokenize against a twin artifact for the same reason buildSpec does:
	// mapping interns out-of-Σ tag names, and comp's table must stay
	// pristine. Σ ids agree across the twins (same names, same order).
	tok, err := extract.CompileTupleArtifact(src, sigma, opt())
	if err != nil {
		panic(fmt.Sprintf("seqfuzz: compiling tuple tokenization twin: %v", err))
	}
	ts := &tupleSpec{src: src, sigma: sigma, comp: comp}
	mapper := htmltok.NewMapper(tok.Tab) // defaults: end tags kept, text dropped
	for _, html := range docs {
		word := mapper.Map(html).Syms
		ts.words = append(ts.words, word)
		ts.want = append(ts.want, spanner.NaiveTuples(tok.Tuple, word))
	}
	return ts
}

// getPool builds the fixed pools once per process: train the wrapper
// family, persist it, and precompute every reference answer with the
// dumbest correct implementation (plain Load + eager two-scan matcher).
// Pool construction failing is a fixture bug, not fuzz input — panic.
var getPool = sync.OnceValue(buildPool)

func buildPool() *opPool {
	p := &opPool{
		keys: []string{"alpha", "beta", "gamma"},
		docs: []string{
			poolPageTop,
			poolPageBottom,
			poolPageFuture,
			"<html><body>nothing here</body></html>",
			"",
			// Historical htmltok crashers, kept live so every sequence that
			// extracts from them re-runs the regression.
			"<p>x</p/",
			"<sCript>\xfd\xd4\xec\xb0\xe8</sCript",
			poolPageRecords,
		},
	}
	train := func(samples ...wrapper.Sample) []byte {
		w, err := wrapper.Train(samples, wrapper.Config{Skip: []string{"BR"}, Options: opt()})
		if err != nil {
			panic(fmt.Sprintf("seqfuzz: training pool wrapper: %v", err))
		}
		data, err := w.MarshalJSON()
		if err != nil {
			panic(fmt.Sprintf("seqfuzz: persisting pool wrapper: %v", err))
		}
		return data
	}
	valid := [][]byte{
		train(wrapper.Sample{HTML: poolPageTop, Target: wrapper.TargetMarker()},
			wrapper.Sample{HTML: poolPageBottom, Target: wrapper.TargetMarker()}),
		train(wrapper.Sample{HTML: poolPageFuture, Target: wrapper.TargetMarker()}),
		train(wrapper.Sample{HTML: poolPageTop, Target: wrapper.TargetMarker()}),
	}
	for _, data := range valid {
		p.payloads = append(p.payloads, buildSpec(data, p.docs))
	}
	p.nValid = len(p.payloads)
	// Unusable payloads: undecodable JSON, and a decodable wrapper of a
	// version this binary does not speak. Both must classify as malformed.
	p.payloads = append(p.payloads,
		&payloadSpec{data: []byte("{")},
		&payloadSpec{data: []byte(`{"version":99,"expr":"x","sigma":["X"]}`)},
	)
	// The k-ary tuple family: ambiguous pairs (two per record row, many per
	// search form), and an exact three-column row.
	for _, src := range []string{
		".* <TD> /TD <TD> .*",
		".* <TD> /TD <TD> /TD <TD> .*",
		".* <INPUT> .* <INPUT> .*",
	} {
		p.tuples = append(p.tuples, buildTupleSpec(src, tupleSigma, p.docs))
	}
	return p
}

func buildSpec(data []byte, docs []string) *payloadSpec {
	var persisted struct {
		Expr        string   `json:"expr"`
		Sigma       []string `json:"sigma"`
		DropEndTags bool     `json:"dropEndTags"`
		KeepText    bool     `json:"keepText"`
		AttrKeys    []string `json:"attrKeys"`
		Skip        []string `json:"skip"`
	}
	if err := json.Unmarshal(data, &persisted); err != nil {
		panic(fmt.Sprintf("seqfuzz: pool payload does not decode: %v", err))
	}
	ps := &payloadSpec{
		data:  data,
		valid: true,
		src:   persisted.Expr,
		sigma: persisted.Sigma,
		cfg: wrapper.Config{
			DropEndTags: persisted.DropEndTags,
			KeepText:    persisted.KeepText,
			AttrKeys:    persisted.AttrKeys,
			Skip:        persisted.Skip,
			Options:     opt(),
		},
	}
	compiled, err := extract.CompileArtifact(ps.src, ps.sigma, opt())
	if err != nil {
		panic(fmt.Sprintf("seqfuzz: compiling pool artifact: %v", err))
	}
	ps.compiled = compiled
	ref, err := wrapper.Load(data, opt())
	if err != nil {
		panic(fmt.Sprintf("seqfuzz: loading pool reference wrapper: %v", err))
	}
	ps.ref = ref
	_, serr := ref.Stream()
	ps.streamOK = serr == nil

	// Tokenize the reference documents against a second, identically
	// compiled artifact: mapping interns out-of-Σ tag names into the table
	// it runs over, and ps.compiled's table must stay exactly what
	// CompileArtifact produced or EncodeArtifact's table/re-derivation
	// agreement breaks. Σ symbol ids are identical across the two tables
	// (same name list, same interning order), so answers stay comparable.
	docArt, err := extract.CompileArtifact(ps.src, ps.sigma, opt())
	if err != nil {
		panic(fmt.Sprintf("seqfuzz: compiling tokenization artifact: %v", err))
	}
	mapper := ps.mapper(docArt.Tab)
	ps.docs = make([]docRef, len(docs))
	for i, html := range docs {
		doc := mapper.Map(html)
		dr := docRef{syms: doc.Syms, all: docArt.Matcher.All(doc.Syms)}
		dr.findPos, dr.findOK = docArt.Matcher.Find(doc.Syms)
		reg, xerr := ref.Extract(html)
		dr.region = reg
		dr.class = classOf(xerr)
		ps.docs[i] = dr
	}
	return ps
}

// classOf collapses an error to its taxonomy class — the granularity the
// cross-check compares at. An error outside the documented taxonomy is its
// own class (prefixed "other:"), so it can never silently match a model
// prediction.
func classOf(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, wrapper.ErrNotExtracted):
		return "no_match"
	case errors.Is(err, wrapper.ErrUnknownKey):
		return "unknown_key"
	case errors.Is(err, wrapper.ErrStreamUnavailable):
		return "stream_unavailable"
	case errors.Is(err, wrapper.ErrMalformedInput):
		return "malformed"
	case errors.Is(err, machine.ErrBudget):
		return "budget"
	case errors.Is(err, machine.ErrDeadline):
		return "deadline"
	default:
		return "other: " + err.Error()
	}
}
