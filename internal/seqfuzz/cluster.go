package seqfuzz

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"resilex/internal/cluster"
	"resilex/internal/htmltok"
	"resilex/internal/serve"
	"resilex/internal/wrapper"
)

// The in-process cluster sub-world: three real shards (serve.Server each
// behind an httptest listener) fronted by a real router with replication
// factor 2, driven through the router's HTTP mux exactly like external
// traffic. Determinism rules keep expectations exactly computable:
//
//   - registrations happen only while every shard is alive, so each key is
//     resident on both of its owners before any failure;
//   - at most one shard dies per sequence (later kill ops reinterpret as
//     routed extracts), so R=2 guarantees every registered key keeps at
//     least one live owner and a routed extract must ALWAYS succeed — a
//     failed failover is a bug, not bad luck.

const (
	clusterShards   = 3
	clusterReplicas = 2
)

type clusterWorld struct {
	backends []*httptest.Server
	mux      http.Handler
	model    map[string]int // key → pool payload index of the registered wrapper
	killed   bool
}

// ensureCluster boots the sub-world on first use, so sequences without
// cluster ops never pay for listeners.
func (w *World) ensureCluster(t *testing.T) *clusterWorld {
	if w.cl != nil {
		return w.cl
	}
	cw := &clusterWorld{model: map[string]int{}}
	peers := make([]string, clusterShards)
	for i := range peers {
		shard, err := serve.New(serve.Config{
			CacheCap:       4,
			CanaryFraction: 1,
			Options:        opt(),
			Batch:          wrapper.BatchOptions{Workers: 2},
		})
		if err != nil {
			t.Fatalf("booting shard %d: %v", i, err)
		}
		backend := httptest.NewServer(shard.Mux())
		cw.backends = append(cw.backends, backend)
		peers[i] = backend.URL
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{Peers: peers, Replicas: clusterReplicas})
	if err != nil {
		t.Fatalf("booting router: %v", err)
	}
	cw.mux = rt.Mux()
	w.cl = cw
	return cw
}

func (cw *clusterWorld) Close() {
	for _, b := range cw.backends {
		b.Close()
	}
}

func (cw *clusterWorld) do(method, path, contentType string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	cw.mux.ServeHTTP(rec, req)
	return rec
}

func (w *World) clusterStep(t *testing.T, i int, op Op) {
	cw := w.ensureCluster(t)
	switch op.Kind {
	case OpClusterPut:
		// Registering onto a partially dead owner set would make residency
		// depend on which shard died — reinterpret as a routed extract so the
		// op still exercises the cluster.
		if cw.killed {
			w.clusterExtract(t, i, op)
			return
		}
		w.clusterPut(t, i, op)
	case OpClusterExtract:
		w.clusterExtract(t, i, op)
	case OpShardKill:
		if cw.killed {
			w.clusterExtract(t, i, op)
			return
		}
		cw.backends[int(op.A)%len(cw.backends)].CloseClientConnections()
		cw.backends[int(op.A)%len(cw.backends)].Close()
		cw.killed = true
		// The kill is only interesting if routed traffic survives it.
		w.clusterExtract(t, i, op)
	}
}

func (w *World) clusterPut(t *testing.T, i int, op Op) {
	cw := w.cl
	key := w.key(op.A)
	pi, spec := w.payload(op.B)
	rec := cw.do(http.MethodPut, "/wrappers/"+key, "application/json", spec.data)
	if !spec.valid {
		if rec.Code < 400 {
			t.Fatalf("op %d: cluster put %s invalid payload: status %d, want 4xx", i, key, rec.Code)
		}
		return
	}
	if rec.Code != http.StatusCreated {
		t.Fatalf("op %d: cluster put %s: status %d: %s", i, key, rec.Code, rec.Body)
	}
	var resp struct {
		Replicated int `json:"replicated"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("op %d: cluster put %s: decoding response: %v", i, key, err)
	}
	if resp.Replicated != clusterReplicas {
		t.Fatalf("op %d: cluster put %s: replicated to %d owners, want %d (all shards alive)",
			i, key, resp.Replicated, clusterReplicas)
	}
	cw.model[key] = pi
}

// clusterExtract routes one document through the router and checks the
// result against the reference: registered keys must extract the reference
// region (through failover if a shard is down), unregistered keys must fail
// per-document with the unknown-key error, and the route itself must always
// answer 200 — R=2 with at most one dead shard leaves no excuse.
func (w *World) clusterExtract(t *testing.T, i int, op Op) {
	cw := w.cl
	key := w.key(op.A)
	docIdx := w.doc(op.C)
	body, err := json.Marshal(map[string]any{
		"docs": []wrapper.BatchDoc{{Key: key, HTML: w.pool.docs[docIdx]}},
	})
	if err != nil {
		t.Fatalf("op %d: encoding cluster batch: %v", i, err)
	}
	rec := cw.do(http.MethodPost, "/extract", "application/json", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("op %d: cluster extract %s (killed=%v): status %d: %s", i, key, cw.killed, rec.Code, rec.Body)
	}
	var resp struct {
		Results []struct {
			OK         bool   `json:"ok"`
			Error      string `json:"error"`
			TokenIndex int    `json:"tokenIndex"`
			Start      int    `json:"start"`
			End        int    `json:"end"`
			Source     string `json:"source"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("op %d: cluster extract %s: decoding response: %v", i, key, err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("op %d: cluster extract %s: %d results, want 1", i, key, len(resp.Results))
	}
	res := resp.Results[0]
	pi, registered := cw.model[key]
	if !registered {
		if res.OK {
			t.Fatalf("op %d: cluster extract %s: unregistered key extracted: %+v", i, key, res)
		}
		return
	}
	ref := w.pool.payloads[pi].docs[docIdx]
	if (ref.class == "ok") != res.OK {
		t.Fatalf("op %d: cluster extract %s doc %d: ok=%v (%s), reference class %q",
			i, key, docIdx, res.OK, res.Error, ref.class)
	}
	if !res.OK {
		return
	}
	got := wrapper.Region{
		TokenIndex: res.TokenIndex,
		Span:       htmltok.Span{Start: res.Start, End: res.End},
		Source:     res.Source,
	}
	if got != ref.region {
		t.Fatalf("op %d: cluster extract %s doc %d: region %+v, reference %+v",
			i, key, docIdx, got, ref.region)
	}
}
