package seqfuzz

// Seeds returns the curated seed inputs FuzzAPISequence starts from: one
// short sequence per op kind (so the fuzzer begins with every vocabulary
// entry reachable instead of having to discover kind bytes by mutation),
// plus longer scripted interleavings of the scenarios the production stack
// is actually nervous about — rollout churn across a restart, eviction
// under canary traffic, failover after a shard kill, and extraction from
// the historical tokenizer-crasher pages. The committed corpus under
// testdata/fuzz/FuzzAPISequence mirrors these (see TestSeedCorpusCommitted).
func Seeds() [][]byte {
	var seeds [][]byte
	// One minimal sequence per op kind. Mutating ops are prefixed with the
	// put that gives them something to act on.
	put := Op{Kind: OpPut, A: 0, B: 0, C: 0}
	for k := OpKind(0); k < opCount; k++ {
		seeds = append(seeds, EncodeOps([]Op{put, {Kind: k, A: 0, B: 1, C: 1}}))
	}
	scripted := [][]Op{
		// Full rollout lifecycle with a restart in the middle of the canary
		// window: put → canary → restart → traffic → promote → rollback.
		{
			{Kind: OpPut, A: 0, B: 0, C: 0},
			{Kind: OpCanaryPut, A: 0, B: 1, C: 2},
			{Kind: OpRestart, A: 0, B: 0, C: 2},
			{Kind: OpExtractBatch, A: 0, B: 0, C: 2},
			{Kind: OpPromote, A: 0, B: 0, C: 2},
			{Kind: OpRollback, A: 0, B: 0, C: 0},
			{Kind: OpExtract, A: 0, B: 0, C: 0},
		},
		// Delete/resurrect with version monotonicity across a restart.
		{
			{Kind: OpPut, A: 1, B: 0, C: 0},
			{Kind: OpDelete, A: 1, B: 0, C: 0},
			{Kind: OpRestart, A: 1, B: 0, C: 0},
			{Kind: OpPut, A: 1, B: 2, C: 0},
			{Kind: OpExtractStream, A: 1, B: 0, C: 0},
		},
		// Cache eviction under canary traffic, then a restart that reloads
		// from the disk tier.
		{
			{Kind: OpPut, A: 2, B: 0, C: 1},
			{Kind: OpCanaryPut, A: 2, B: 1, C: 1},
			{Kind: OpCacheEvict, A: 2, B: 0, C: 1},
			{Kind: OpExtractBatch, A: 2, B: 0, C: 1},
			{Kind: OpRestart, A: 2, B: 0, C: 1},
			{Kind: OpExtractBatch, A: 2, B: 0, C: 1},
		},
		// Cluster: register on all shards, kill one, keep extracting through
		// failover; a put attempt after the kill reinterprets as an extract.
		{
			{Kind: OpClusterPut, A: 0, B: 0, C: 0},
			{Kind: OpClusterPut, A: 1, B: 1, C: 2},
			{Kind: OpClusterExtract, A: 0, B: 0, C: 0},
			{Kind: OpShardKill, A: 0, B: 0, C: 0},
			{Kind: OpClusterExtract, A: 1, B: 0, C: 2},
			{Kind: OpClusterPut, A: 2, B: 0, C: 1},
		},
		// Historical htmltok crashers as live pages through every extraction
		// surface (docs 5 and 6 in the pool).
		{
			{Kind: OpPut, A: 0, B: 0, C: 5},
			{Kind: OpExtract, A: 0, B: 0, C: 5},
			{Kind: OpExtractStream, A: 0, B: 0, C: 6},
			{Kind: OpExtractBatch, A: 0, B: 0, C: 6},
			{Kind: OpCompileEager, A: 0, B: 0, C: 5},
			{Kind: OpCompileStream, A: 0, B: 0, C: 6},
		},
		// Codec round trips over every variant, including corruption.
		{
			{Kind: OpCodecRoundTrip, A: 0, B: 0, C: 0},
			{Kind: OpCodecRoundTrip, A: 7, B: 1, C: 1},
			{Kind: OpCodecRoundTrip, A: 13, B: 2, C: 2},
			{Kind: OpCodecRoundTrip, A: 31, B: 0, C: 4},
		},
		// K-ary spanner vs the naive oracle: every pooled tuple expression
		// over the record table (doc 7) and a search-form page, direct and
		// through the artifact round trip (odd A).
		{
			{Kind: OpTupleSpanner, A: 0, B: 0, C: 7},
			{Kind: OpTupleSpanner, A: 1, B: 1, C: 7},
			{Kind: OpTupleSpanner, A: 0, B: 2, C: 0},
			{Kind: OpTupleSpanner, A: 1, B: 2, C: 1},
			{Kind: OpTupleSpanner, A: 1, B: 0, C: 4},
		},
		// Malformed payloads must bounce off every mutation path without
		// perturbing registry state.
		{
			{Kind: OpPut, A: 0, B: 3, C: 0},
			{Kind: OpPut, A: 0, B: 0, C: 0},
			{Kind: OpCanaryPut, A: 0, B: 4, C: 0},
			{Kind: OpPut, A: 0, B: 4, C: 0},
			{Kind: OpExtract, A: 0, B: 0, C: 0},
		},
	}
	for _, ops := range scripted {
		seeds = append(seeds, EncodeOps(ops))
	}
	return seeds
}
