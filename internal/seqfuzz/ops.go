package seqfuzz

import (
	"fmt"
	"sync/atomic"
)

// OpKind enumerates the interpreted API operations. The byte decoder maps
// arbitrary input onto this vocabulary, so every kind is reachable from
// fuzz bytes; keep the order stable — seed corpus files encode kinds by
// value.
type OpKind byte

const (
	// OpCompileEager freshly compiles a pooled expression through
	// CompileArtifact (parse → determinize → minimize → two-scan matcher)
	// and differentials its All/Find answers against the precompiled
	// reference.
	OpCompileEager OpKind = iota
	// OpCompileLazy compiles the lazy on-the-fly matcher and differentials
	// it against the eager reference.
	OpCompileLazy
	// OpCompileStream compiles the one-pass streaming matcher and
	// differentials it against the eager reference.
	OpCompileStream
	// OpPut registers a pooled payload as the key's active version through
	// the server's put path (cache, registry, version bump).
	OpPut
	// OpCanaryPut stages a pooled payload as the key's canary version.
	OpCanaryPut
	// OpPromote promotes the staged canary.
	OpPromote
	// OpRollback rolls back the staged canary, or reverts a promote.
	OpRollback
	// OpDelete removes the key, writing a versioned tombstone.
	OpDelete
	// OpExtract runs the single-document materialized path on the active
	// version.
	OpExtract
	// OpExtractStream runs the one-pass streaming path on the active
	// version.
	OpExtractStream
	// OpExtractBatch runs the canary-aware batch path.
	OpExtractBatch
	// OpCacheEvict evicts one content address from — or flushes — the
	// server's in-memory artifact cache, forcing the next load through the
	// disk tier or a recompile.
	OpCacheEvict
	// OpCodecRoundTrip encodes a compiled artifact (or a cluster op frame)
	// and decodes it back, checking equivalence — or, for a corrupted blob,
	// that the decoder rejects it in the malformed-input class.
	OpCodecRoundTrip
	// OpRestart replaces the server with a fresh one restored from the same
	// cache directory — registrations, tombstones and an in-flight canary
	// must all survive.
	OpRestart
	// OpClusterPut registers a pooled payload through the in-process
	// cluster router (replicated to the key's owners).
	OpClusterPut
	// OpClusterExtract extracts through the router — owner placement plus
	// failover when a shard has been killed.
	OpClusterExtract
	// OpShardKill kills one in-process shard without telling the router.
	// At most one shard dies per sequence (R=2 keeps every key servable);
	// later kill ops reinterpret as cluster extracts.
	OpShardKill
	// OpTupleSpanner compiles a pooled k-ary tuple expression into the
	// one-pass multi-split spanner — directly, or through a tuple-artifact
	// encode→decode round trip — and differentials its full vector
	// enumeration against the naive k-nested oracle.
	OpTupleSpanner

	opCount // number of kinds; keep last
)

// NumOpKinds is the size of the op vocabulary.
const NumOpKinds = int(opCount)

// String names the kind. Hyphenated, not snake_case: these are display
// labels, and snake_case would collide with the metric-name namespace the
// metrics lint reserves for the obs registry.
func (k OpKind) String() string {
	names := [...]string{
		"compile-eager", "compile-lazy", "compile-stream",
		"put", "canary-put", "promote", "rollback", "delete",
		"extract", "extract-stream", "extract-batch",
		"cache-evict", "codec-roundtrip", "restart",
		"cluster-put", "cluster-extract", "shard-kill",
		"tuple-spanner",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one decoded operation: the kind plus three operand selectors the
// step maps onto the fixed pools (key, payload, document). Selectors are
// raw bytes — each consumer reduces them modulo its pool size, so every
// byte value is meaningful and mutation never produces an invalid op.
type Op struct {
	Kind OpKind
	A    byte // key selector
	B    byte // payload selector
	C    byte // document selector
}

// maxOps bounds a sequence: long enough for deep interleavings
// (evict → restart → canary → kill → promote …), short enough that one
// input executes in milliseconds.
const maxOps = 48

// opBytes is the fixed encoding width of one op.
const opBytes = 4

// DecodeOps decodes fuzz bytes into a bounded op sequence. The encoding is
// fixed-width — kind byte (mod NumOpKinds) plus three operand bytes — so
// the mapping is total: every input decodes, every mutation of an input
// decodes, and a trailing partial op is simply dropped. Deterministic by
// construction; the same bytes always replay the same sequence.
func DecodeOps(data []byte) []Op {
	n := len(data) / opBytes
	if n > maxOps {
		n = maxOps
	}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*opBytes : (i+1)*opBytes]
		ops = append(ops, Op{
			Kind: OpKind(b[0] % byte(opCount)),
			A:    b[1],
			B:    b[2],
			C:    b[3],
		})
	}
	return ops
}

// EncodeOps is DecodeOps' inverse over whole ops — the seed-corpus
// generator and the coverage test build inputs with it.
func EncodeOps(ops []Op) []byte {
	out := make([]byte, 0, len(ops)*opBytes)
	for _, op := range ops {
		out = append(out, byte(op.Kind), op.A, op.B, op.C)
	}
	return out
}

// opExec counts executed ops per kind across every Run in the process —
// the coverage ledger TestOpCoverage asserts over, and the quickest triage
// signal for "which ops did this crasher actually reach".
var opExec [opCount]atomic.Uint64

// Coverage snapshots the per-kind execution counts accumulated so far.
func Coverage() map[OpKind]uint64 {
	out := make(map[OpKind]uint64, opCount)
	for k := OpKind(0); k < opCount; k++ {
		out[k] = opExec[k].Load()
	}
	return out
}
