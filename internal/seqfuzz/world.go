package seqfuzz

import (
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"resilex/internal/cluster"
	"resilex/internal/codec"
	"resilex/internal/extract"
	"resilex/internal/serve"
	"resilex/internal/spanner"
	"resilex/internal/wrapper"
)

// slot is one occupied version slot of the reference registry model: which
// pool payload holds it and the version number the server must have
// assigned it.
type slot struct {
	payload int
	version uint64
}

// modelKey mirrors serve's per-key version state machine: the monotone
// counter, the three slots, the tombstone flag and the last rollout
// outcome. An entry exists exactly when a successful registration (or the
// deletion of one) has happened — the same rule serve creates state under.
type modelKey struct {
	lastVersion uint64
	active      *slot
	canary      *slot
	prior       *slot
	deleted     bool
	lastOutcome string
}

// World is one interpreted sequence's live state: the server under test,
// its cache directory (survives restarts within the sequence), the
// reference registry model, and the lazily booted in-process cluster.
type World struct {
	pool  *opPool
	dir   string
	srv   *serve.Server
	model map[string]*modelKey
	cl    *clusterWorld
}

// Run interprets data as an op sequence against a fresh world and fails t
// on the first invariant violation. This is the whole fuzz target.
func Run(t *testing.T, data []byte) {
	ops := DecodeOps(data)
	if len(ops) == 0 {
		return
	}
	w := &World{pool: getPool(), dir: t.TempDir(), model: map[string]*modelKey{}}
	w.srv = w.newServer(t)
	defer w.Close()
	for i, op := range ops {
		opExec[op.Kind].Add(1)
		w.step(t, i, op)
		w.checkRegistry(t, i, op)
	}
}

// Close tears down the lazily booted cluster sub-world, if any.
func (w *World) Close() {
	if w.cl != nil {
		w.cl.Close()
	}
}

// newServer boots the server under test over the world's cache directory.
// CanaryFraction 1 selects stride 1 — every request for a canaried key
// routes to the canary (with in-request fallback to active on a miss), so
// batch expectations are exactly computable instead of sampled.
func (w *World) newServer(t *testing.T) *serve.Server {
	s, err := serve.New(serve.Config{
		CacheDir:       w.dir,
		CacheCap:       4, // small enough that sequences force natural LRU evictions
		DiskCap:        -1,
		CanaryFraction: 1,
		Options:        opt(),
		Batch:          wrapper.BatchOptions{Workers: 2},
		RestoreLog:     io.Discard,
	})
	if err != nil {
		t.Fatalf("booting server: %v", err)
	}
	return s
}

func (w *World) key(sel byte) string { return w.pool.keys[int(sel)%len(w.pool.keys)] }
func (w *World) payload(sel byte) (int, *payloadSpec) {
	i := int(sel) % len(w.pool.payloads)
	return i, w.pool.payloads[i]
}
func (w *World) validPayload(sel byte) (int, *payloadSpec) {
	i := int(sel) % w.pool.nValid
	return i, w.pool.payloads[i]
}
func (w *World) doc(sel byte) int { return int(sel) % len(w.pool.docs) }

func (w *World) step(t *testing.T, i int, op Op) {
	ctx := context.Background()
	key := w.key(op.A)
	docIdx := w.doc(op.C)
	switch op.Kind {
	case OpCompileEager:
		w.compileEager(t, i, op)
	case OpCompileLazy:
		w.compileLazy(t, i, op)
	case OpCompileStream:
		w.compileStream(t, i, op)

	case OpPut:
		pi, spec := w.payload(op.B)
		v, err := w.srv.PutWrapper(ctx, key, spec.data)
		if !spec.valid {
			if c := classOf(err); c != "malformed" {
				t.Fatalf("op %d put %s invalid payload: class %q, want malformed", i, key, c)
			}
			return
		}
		if err != nil {
			t.Fatalf("op %d put %s: %v", i, key, err)
		}
		mk := w.ensure(key)
		mk.lastVersion++
		if v != mk.lastVersion {
			t.Fatalf("op %d put %s: version %d, want %d", i, key, v, mk.lastVersion)
		}
		mk.prior, mk.active, mk.canary = mk.active, &slot{pi, v}, nil
		mk.deleted = false
		w.checkMaterialized(t, i, key, docIdx)

	case OpCanaryPut:
		pi, spec := w.payload(op.B)
		mk := w.model[key]
		v, err := w.srv.DeployCanary(key, spec.data)
		switch {
		case !spec.valid:
			if c := classOf(err); c != "malformed" {
				t.Fatalf("op %d canary %s invalid payload: class %q, want malformed", i, key, c)
			}
		case mk == nil || mk.active == nil:
			if err == nil {
				t.Fatalf("op %d canary %s: staged with no active version", i, key)
			}
		default:
			if err != nil {
				t.Fatalf("op %d canary %s: %v", i, key, err)
			}
			mk.lastVersion++
			if v != mk.lastVersion {
				t.Fatalf("op %d canary %s: version %d, want %d", i, key, v, mk.lastVersion)
			}
			mk.canary = &slot{pi, v}
		}
		w.checkBatch(t, i, key, docIdx)

	case OpPromote:
		mk := w.model[key]
		err := w.srv.Promote(key, 0)
		if mk == nil || mk.canary == nil {
			if err == nil {
				t.Fatalf("op %d promote %s: succeeded with no staged canary", i, key)
			}
			return
		}
		if err != nil {
			t.Fatalf("op %d promote %s: %v", i, key, err)
		}
		mk.prior, mk.active, mk.canary = mk.active, mk.canary, nil
		mk.lastOutcome = "promoted"
		w.checkMaterialized(t, i, key, docIdx)

	case OpRollback:
		mk := w.model[key]
		err := w.srv.Rollback(key, 0)
		switch {
		case mk != nil && mk.canary != nil:
			if err != nil {
				t.Fatalf("op %d rollback %s: %v", i, key, err)
			}
			mk.canary = nil
			mk.lastOutcome = "rolled-back"
		case mk != nil && mk.prior != nil && mk.active != nil:
			if err != nil {
				t.Fatalf("op %d rollback %s (to prior): %v", i, key, err)
			}
			mk.active, mk.prior = mk.prior, nil
			mk.lastOutcome = "rolled-back"
		default:
			if err == nil {
				t.Fatalf("op %d rollback %s: succeeded with nothing to roll back", i, key)
			}
		}
		w.checkMaterialized(t, i, key, docIdx)

	case OpDelete:
		mk := w.model[key]
		wantKnown := mk != nil && mk.active != nil
		if known := w.srv.DeleteWrapper(key); known != wantKnown {
			t.Fatalf("op %d delete %s: known=%v, model says %v", i, key, known, wantKnown)
		}
		if wantKnown {
			mk.lastVersion++
			mk.active, mk.canary, mk.prior = nil, nil, nil
			mk.deleted = true
		}
		w.checkMaterialized(t, i, key, docIdx)

	case OpExtract:
		w.checkMaterialized(t, i, key, docIdx)
	case OpExtractStream:
		w.checkStreaming(t, i, key, docIdx)
	case OpExtractBatch:
		w.checkBatch(t, i, key, docIdx)

	case OpCacheEvict:
		w.srv.Cache().FlushMem()
		// The next load must come back identical through the disk tier (or a
		// recompile) — prove it on the spot.
		w.checkMaterialized(t, i, key, docIdx)

	case OpCodecRoundTrip:
		w.codecRoundTrip(t, i, op)

	case OpRestart:
		// Everything — registrations, tombstones, an in-flight canary — must
		// survive a restart from the same cache directory. The registry
		// agreement check after the step compares all keys.
		w.srv = w.newServer(t)
		w.checkMaterialized(t, i, key, docIdx)
		w.checkBatch(t, i, key, docIdx)

	case OpClusterPut, OpClusterExtract, OpShardKill:
		w.clusterStep(t, i, op)

	case OpTupleSpanner:
		w.tupleSpanner(t, i, op)
	}
}

// tupleSpanner differentials the one-pass k-ary spanner against the naive
// k-nested oracle on one pool document — compiled straight from the
// pooled artifact, or from a tuple-artifact encode→decode round trip when
// the mode bit selects it. The full vector enumeration must agree.
func (w *World) tupleSpanner(t *testing.T, i int, op Op) {
	spec := w.pool.tuples[int(op.B)%len(w.pool.tuples)]
	docIdx := w.doc(op.C)
	tup := spec.comp.Tuple
	mode := "direct"
	if op.A%2 == 1 {
		mode = "roundtrip"
		blob, err := extract.EncodeTupleArtifact(spec.comp)
		if err != nil {
			t.Fatalf("op %d: encoding tuple artifact %q: %v", i, spec.src, err)
		}
		dec, err := extract.DecodeTupleArtifact(blob, opt())
		if err != nil {
			t.Fatalf("op %d: decoding tuple artifact %q: %v", i, spec.src, err)
		}
		tup = dec.Tuple
	}
	prog, err := spanner.Compile(tup, opt())
	if err != nil {
		t.Fatalf("op %d: tuple spanner compile (%s) %q: %v", i, mode, spec.src, err)
	}
	m, err := prog.Run(spec.words[docIdx])
	if err != nil {
		t.Fatalf("op %d: tuple spanner run (%s) %q doc %d: %v", i, mode, spec.src, docIdx, err)
	}
	got, err := m.All()
	if err != nil {
		t.Fatalf("op %d: tuple spanner enumerate (%s) %q doc %d: %v", i, mode, spec.src, docIdx, err)
	}
	if !reflect.DeepEqual(got, spec.want[docIdx]) {
		t.Fatalf("op %d: tuple spanner (%s) %q doc %d: vectors %v, oracle %v",
			i, mode, spec.src, docIdx, got, spec.want[docIdx])
	}
}

func (w *World) ensure(key string) *modelKey {
	mk := w.model[key]
	if mk == nil {
		mk = &modelKey{}
		w.model[key] = mk
	}
	return mk
}

// checkRegistry compares the server's versioned-registry state for every
// pool key against the model — after every op, so a divergence is caught at
// the op that introduced it, not sequences later.
func (w *World) checkRegistry(t *testing.T, i int, op Op) {
	for _, key := range w.pool.keys {
		got, ok := w.srv.VersionState(key)
		mk := w.model[key]
		if (mk != nil) != ok {
			t.Fatalf("op %d (%v): registry entry for %s: exists=%v, model says %v", i, op.Kind, key, ok, mk != nil)
		}
		if mk == nil {
			continue
		}
		want := serve.VersionState{
			LastVersion: mk.lastVersion,
			Deleted:     mk.deleted,
			LastOutcome: mk.lastOutcome,
		}
		if mk.active != nil {
			want.Active = mk.active.version
		}
		if mk.canary != nil {
			want.Canary = mk.canary.version
		}
		if mk.prior != nil {
			want.Prior = mk.prior.version
		}
		if got != want {
			t.Fatalf("op %d (%v): registry state for %s = %+v, model wants %+v", i, op.Kind, key, got, want)
		}
	}
}

// checkMaterialized cross-checks the single-document materialized path: the
// fleet must hold a wrapper exactly when the model has an active version,
// and its extraction must agree with the reference answer region-for-region.
func (w *World) checkMaterialized(t *testing.T, i int, key string, docIdx int) {
	mk := w.model[key]
	wantActive := mk != nil && mk.active != nil
	wr := w.srv.Fleet().Get(key)
	if (wr != nil) != wantActive {
		t.Fatalf("op %d: fleet has %s=%v, model says active=%v", i, key, wr != nil, wantActive)
	}
	if !wantActive {
		return
	}
	ref := w.pool.payloads[mk.active.payload].docs[docIdx]
	reg, err := wr.Extract(w.pool.docs[docIdx])
	if c := classOf(err); c != ref.class {
		t.Fatalf("op %d: materialized extract %s doc %d: class %q, reference %q", i, key, docIdx, c, ref.class)
	}
	if err == nil && reg != ref.region {
		t.Fatalf("op %d: materialized extract %s doc %d: region %+v, reference %+v", i, key, docIdx, reg, ref.region)
	}
}

// checkStreaming cross-checks the one-pass streaming path against the same
// reference. Streaming serves the active version only (canaries never see
// streamed traffic), and an expression outside the dense-table bounds must
// fail closed with the stream-unavailable class, never silently diverge.
func (w *World) checkStreaming(t *testing.T, i int, key string, docIdx int) {
	mk := w.model[key]
	if mk == nil || mk.active == nil {
		if wr := w.srv.Fleet().Get(key); wr != nil {
			t.Fatalf("op %d: fleet has %s but model has no active version", i, key)
		}
		return
	}
	spec := w.pool.payloads[mk.active.payload]
	wr := w.srv.Fleet().Get(key)
	if wr == nil {
		t.Fatalf("op %d: fleet lost %s (model active v%d)", i, key, mk.active.version)
	}
	se, err := wr.Stream()
	if !spec.streamOK {
		if c := classOf(err); c != "stream_unavailable" {
			t.Fatalf("op %d: stream compile for %s: class %q, want stream_unavailable", i, key, c)
		}
		return
	}
	if err != nil {
		t.Fatalf("op %d: stream compile for %s: %v", i, key, err)
	}
	ref := spec.docs[docIdx]
	reg, err := se.ExtractReader(context.Background(), strings.NewReader(w.pool.docs[docIdx]))
	if c := classOf(err); c != ref.class {
		t.Fatalf("op %d: streaming extract %s doc %d: class %q, reference %q", i, key, docIdx, c, ref.class)
	}
	if err == nil && reg != ref.region {
		t.Fatalf("op %d: streaming extract %s doc %d: region %+v, reference %+v", i, key, docIdx, reg, ref.region)
	}
}

// expectedServe computes what the canary-aware batch path must return for
// one document of one key under stride-1 routing: the canary's reference
// answer when one is staged and it extracts, the active version's answer
// otherwise (in-request fallback), and the unknown-key class without an
// active version.
func (w *World) expectedServe(mk *modelKey, docIdx int) (string, wrapper.Region) {
	if mk == nil || mk.active == nil {
		return "unknown_key", wrapper.Region{}
	}
	if mk.canary != nil {
		if ref := w.pool.payloads[mk.canary.payload].docs[docIdx]; ref.class == "ok" {
			return ref.class, ref.region
		}
	}
	ref := w.pool.payloads[mk.active.payload].docs[docIdx]
	return ref.class, ref.region
}

// checkBatch cross-checks the batch path — the surface canary routing lives
// on. Two documents exercise the worker pool without widening expectations.
func (w *World) checkBatch(t *testing.T, i int, key string, docIdx int) {
	mk := w.model[key]
	docs := []wrapper.BatchDoc{
		{Key: key, HTML: w.pool.docs[docIdx]},
		{Key: key, HTML: w.pool.docs[0]},
	}
	results := w.srv.ExtractBatch(context.Background(), docs)
	if len(results) != len(docs) {
		t.Fatalf("op %d: batch for %s: %d results, want %d", i, key, len(results), len(docs))
	}
	for ri, di := range []int{docIdx, 0} {
		wantClass, wantRegion := w.expectedServe(mk, di)
		res := results[ri]
		if res.Index != ri || res.Key != key {
			t.Fatalf("op %d: batch result %d mislabelled: %+v", i, ri, res)
		}
		if c := classOf(res.Err); c != wantClass {
			t.Fatalf("op %d: batch %s doc %d: class %q, model wants %q", i, key, di, c, wantClass)
		}
		if res.Err == nil && res.Region != wantRegion {
			t.Fatalf("op %d: batch %s doc %d: region %+v, model wants %+v", i, key, di, res.Region, wantRegion)
		}
	}
}

// compileEager freshly compiles a pooled expression from source — a cold
// parse + determinize + minimize, no cache in the loop — and checks its
// full answer set against the precompiled reference on one document.
func (w *World) compileEager(t *testing.T, i int, op Op) {
	_, spec := w.validPayload(op.B)
	docIdx := w.doc(op.C)
	c2, err := extract.CompileArtifact(spec.src, spec.sigma, opt())
	if err != nil {
		t.Fatalf("op %d: fresh eager compile: %v", i, err)
	}
	// Tokenize against the fresh artifact's own table; positions are
	// table-independent, so the answer sets compare directly.
	doc := spec.mapper(c2.Tab).Map(w.pool.docs[docIdx])
	ref := spec.docs[docIdx]
	if got := c2.Matcher.All(doc.Syms); !equalInts(got, ref.all) {
		t.Fatalf("op %d: fresh eager All = %v, reference %v", i, got, ref.all)
	}
	pos, ok := c2.Matcher.Find(doc.Syms)
	if ok != ref.findOK || (ok && pos != ref.findPos) {
		t.Fatalf("op %d: fresh eager Find = (%d,%v), reference (%d,%v)", i, pos, ok, ref.findPos, ref.findOK)
	}
}

// compileLazy differentials the on-the-fly matcher against the eager
// reference on one document.
func (w *World) compileLazy(t *testing.T, i int, op Op) {
	_, spec := w.validPayload(op.B)
	ref := spec.docs[w.doc(op.C)]
	lm, err := spec.compiled.Expr.CompileLazy()
	if err != nil {
		t.Fatalf("op %d: lazy compile: %v", i, err)
	}
	all, err := lm.All(ref.syms)
	if err != nil {
		t.Fatalf("op %d: lazy All: %v", i, err)
	}
	if !equalInts(all, ref.all) {
		t.Fatalf("op %d: lazy All = %v, reference %v", i, all, ref.all)
	}
	pos, ok, err := lm.Find(ref.syms)
	if err != nil {
		t.Fatalf("op %d: lazy Find: %v", i, err)
	}
	if ok != ref.findOK || (ok && pos != ref.findPos) {
		t.Fatalf("op %d: lazy Find = (%d,%v), reference (%d,%v)", i, pos, ok, ref.findPos, ref.findOK)
	}
}

// compileStream differentials the one-pass streaming matcher against the
// eager reference on one document.
func (w *World) compileStream(t *testing.T, i int, op Op) {
	_, spec := w.validPayload(op.B)
	ref := spec.docs[w.doc(op.C)]
	sm, err := spec.compiled.Expr.CompileStream()
	if err != nil {
		if spec.streamOK {
			t.Fatalf("op %d: stream compile: %v", i, err)
		}
		return
	}
	pos, ok := sm.Find(ref.syms)
	if ok != ref.findOK || (ok && pos != ref.findPos) {
		t.Fatalf("op %d: stream Find = (%d,%v), reference (%d,%v)", i, pos, ok, ref.findPos, ref.findOK)
	}
}

// codecRoundTrip exercises the persistence substrate: an artifact
// encode→decode round trip must reproduce the matcher's answers, a
// corrupted blob must be rejected in the malformed-input class, and a
// cluster op frame must survive its wire round trip field-for-field.
func (w *World) codecRoundTrip(t *testing.T, i int, op Op) {
	_, spec := w.validPayload(op.B)
	blob, err := extract.EncodeArtifact(spec.compiled)
	if err != nil {
		t.Fatalf("op %d: encoding artifact: %v", i, err)
	}
	switch op.C % 3 {
	case 0:
		dec, err := extract.DecodeArtifact(blob, opt())
		if err != nil {
			t.Fatalf("op %d: decoding artifact: %v", i, err)
		}
		ref := spec.docs[w.doc(op.A)]
		if got := dec.Matcher.All(ref.syms); !equalInts(got, ref.all) {
			t.Fatalf("op %d: decoded artifact All = %v, reference %v", i, got, ref.all)
		}
	case 1:
		// A single corrupted byte anywhere in the frame — header, payload or
		// checksum — must classify as malformed, never decode differently.
		corrupt := append([]byte(nil), blob...)
		corrupt[int(op.A)%len(corrupt)] ^= 0x5a
		if _, err := extract.DecodeArtifact(corrupt, opt()); !errors.Is(err, codec.ErrMalformedInput) {
			t.Fatalf("op %d: corrupted artifact decoded: err=%v", i, err)
		}
	case 2:
		in := cluster.Op{Kind: cluster.OpPut, Key: w.key(op.A), Payload: spec.data, Version: uint64(op.A) + 1}
		out, err := cluster.DecodeOp(cluster.EncodeOp(in))
		if err != nil {
			t.Fatalf("op %d: op frame round trip: %v", i, err)
		}
		if out.Kind != in.Kind || out.Key != in.Key || out.Version != in.Version || string(out.Payload) != string(in.Payload) {
			t.Fatalf("op %d: op frame round trip: got %+v, want %+v", i, out, in)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
