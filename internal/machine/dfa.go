package machine

import (
	"fmt"
	"sort"

	"resilex/internal/symtab"
)

// DFA is a deterministic, *complete* finite automaton: every state has
// exactly one successor for every symbol of Σ (dead states are explicit).
// Completeness makes complementation a flip of the accept set.
type DFA struct {
	Sigma  symtab.Alphabet
	syms   []symtab.Symbol // Sigma.Symbols(), cached for dense indexing
	Start  int
	Accept []bool
	Trans  [][]int // Trans[state][symbolIndex] = successor
}

// NumStates reports the number of states.
func (d *DFA) NumStates() int { return len(d.Accept) }

// Symbols returns the cached dense symbol ordering (do not modify).
func (d *DFA) Symbols() []symtab.Symbol { return d.syms }

func (d *DFA) symIndex(sym symtab.Symbol) int {
	i := sort.Search(len(d.syms), func(i int) bool { return d.syms[i] >= sym })
	if i < len(d.syms) && d.syms[i] == sym {
		return i
	}
	return -1
}

// Step returns the successor of state on sym, or -1 if sym ∉ Σ.
func (d *DFA) Step(state int, sym symtab.Symbol) int {
	k := d.symIndex(sym)
	if k < 0 {
		return -1
	}
	return d.Trans[state][k]
}

// Accepts reports whether the DFA accepts the word. Symbols outside Σ make
// the word rejected.
func (d *DFA) Accepts(word []symtab.Symbol) bool {
	s := d.Start
	for _, sym := range word {
		s = d.Step(s, sym)
		if s < 0 {
			return false
		}
	}
	return d.Accept[s]
}

// Run returns the state reached after consuming word from state, or -1 if a
// symbol is outside Σ.
func (d *DFA) Run(state int, word []symtab.Symbol) int {
	for _, sym := range word {
		state = d.Step(state, sym)
		if state < 0 {
			return -1
		}
	}
	return state
}

func newDFA(sigma symtab.Alphabet) *DFA {
	return &DFA{Sigma: sigma, syms: sigma.Symbols()}
}

func (d *DFA) addState(accept bool) int {
	d.Accept = append(d.Accept, accept)
	d.Trans = append(d.Trans, make([]int, len(d.syms)))
	return len(d.Accept) - 1
}

// Determinize converts an NFA to a complete DFA via subset construction.
// It fails with ErrBudget if more than opt.MaxStates subset states are
// created — the honest face of the PSPACE lower bound (Theorem 5.12).
func Determinize(n *NFA, opt Options) (_ *DFA, err error) {
	var states, transitions, polls int64
	opt, ph := beginPhase(opt, "machine.determinize")
	defer func() {
		ph.Attr("states", states)
		ph.Attr("transitions", transitions)
		ph.Count("machine_subset_states_total", states)
		ph.Count("machine_subset_transitions_total", transitions)
		ph.Count("machine_deadline_polls_total", polls)
		endPhase(ph, err)
	}()
	limit := opt.limit()
	d := newDFA(n.Sigma)
	key := subsetKey
	isAccept := func(set []bool) bool {
		for s, in := range set {
			if in && n.Accept[s] {
				return true
			}
		}
		return false
	}
	start := n.startSet()
	index := map[string]int{key(start): 0}
	d.addState(isAccept(start))
	states = 1
	d.Start = 0
	queue := [][]bool{start}
	for qi := 0; qi < len(queue); qi++ {
		polls++
		if err := opt.Err(); err != nil {
			return nil, fmt.Errorf("%w: determinization abandoned at %d states", err, len(index))
		}
		set := queue[qi]
		for k, sym := range d.syms {
			next := n.move(set, sym)
			nk := key(next)
			id, ok := index[nk]
			if !ok {
				if len(index) >= limit {
					return nil, fmt.Errorf("%w: determinization needs > %d states", ErrBudget, limit)
				}
				id = d.addState(isAccept(next))
				states++
				index[nk] = id
				queue = append(queue, next)
			}
			d.Trans[qi][k] = id
			transitions++
		}
	}
	return d, nil
}

// Complement returns a DFA for Σ* − L(d).
func (d *DFA) Complement() *DFA {
	out := newDFA(d.Sigma)
	out.Start = d.Start
	out.Accept = make([]bool, d.NumStates())
	out.Trans = make([][]int, d.NumStates())
	for s := range d.Accept {
		out.Accept[s] = !d.Accept[s]
		out.Trans[s] = append([]int(nil), d.Trans[s]...)
	}
	return out
}

// Product builds the pair DFA of a and b with acceptance combined by op
// (e.g. AND for intersection, AND-NOT for difference, XOR for symmetric
// difference). Both automata must share the same Σ. Only reachable pairs are
// constructed.
func Product(a, b *DFA, op func(bool, bool) bool, opt Options) (_ *DFA, err error) {
	if !a.Sigma.Equal(b.Sigma) {
		return nil, fmt.Errorf("machine: product over distinct alphabets %v vs %v", a.Sigma.Symbols(), b.Sigma.Symbols())
	}
	var states, polls int64
	opt, ph := beginPhase(opt, "machine.product")
	defer func() {
		ph.Attr("states", states)
		ph.Count("machine_product_states_total", states)
		ph.Count("machine_deadline_polls_total", polls)
		endPhase(ph, err)
	}()
	limit := opt.limit()
	d := newDFA(a.Sigma)
	type pair struct{ x, y int }
	index := map[pair]int{}
	var queue []pair
	add := func(p pair) (int, error) {
		if id, ok := index[p]; ok {
			return id, nil
		}
		if len(index) >= limit {
			return 0, fmt.Errorf("%w: product needs > %d states", ErrBudget, limit)
		}
		id := d.addState(op(a.Accept[p.x], b.Accept[p.y]))
		states++
		index[p] = id
		queue = append(queue, p)
		return id, nil
	}
	startID, err := add(pair{a.Start, b.Start})
	if err != nil {
		return nil, err
	}
	d.Start = startID
	for qi := 0; qi < len(queue); qi++ {
		polls++
		if err := opt.Err(); err != nil {
			return nil, fmt.Errorf("%w: product abandoned at %d states", err, len(index))
		}
		p := queue[qi]
		from := index[p]
		for k := range d.syms {
			id, err := add(pair{a.Trans[p.x][k], b.Trans[p.y][k]})
			if err != nil {
				return nil, err
			}
			d.Trans[from][k] = id
		}
	}
	return d, nil
}

// Minimize returns the canonical minimal DFA for d: unreachable states are
// trimmed, Hopcroft partition refinement merges equivalent states, and the
// result is renumbered by breadth-first order from the start state (so two
// equivalent inputs over the same Σ minimize to byte-identical automata).
// Hopcroft refinement is polynomial in the (already budget-bounded) input,
// so this form carries no deadline; MinimizeOpt adds one.
func Minimize(d *DFA) *DFA {
	out, err := MinimizeOpt(d, Options{})
	if err != nil {
		panic(err) // unreachable: Options{} has no context to expire
	}
	return out
}

// MinimizeOpt is Minimize polling the options' deadline between partition-
// refinement rounds, for callers running whole construction pipelines under
// one context.
func MinimizeOpt(d *DFA, opt Options) (_ *DFA, err error) {
	var passes, polls int64
	opt, ph := beginPhase(opt, "machine.minimize")
	defer func() {
		ph.Attr("passes", passes)
		ph.Count("machine_minimize_passes_total", passes)
		ph.Count("machine_deadline_polls_total", polls)
		endPhase(ph, err)
	}()
	d = d.trim()
	n := d.NumStates()
	if n == 0 {
		// Cannot happen: start state is always reachable.
		panic("machine: empty DFA")
	}
	// Hopcroft.
	// inverse[k][t] = states s with Trans[s][k] == t
	inverse := make([][][]int32, len(d.syms))
	for k := range d.syms {
		inverse[k] = make([][]int32, n)
	}
	for s := 0; s < n; s++ {
		for k := range d.syms {
			t := d.Trans[s][k]
			inverse[k][t] = append(inverse[k][t], int32(s))
		}
	}
	// Partition as slice of blocks; block membership per state.
	blockOf := make([]int, n)
	var blocks [][]int32
	var acc, rej []int32
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			acc = append(acc, int32(s))
		} else {
			rej = append(rej, int32(s))
		}
	}
	addBlock := func(members []int32) int {
		id := len(blocks)
		blocks = append(blocks, members)
		for _, s := range members {
			blockOf[s] = id
		}
		return id
	}
	// Seeding the worklist with both initial blocks keeps the splitting loop
	// simple; the asymptotic bound is unaffected for our automaton sizes.
	var worklist []int
	if len(acc) > 0 {
		worklist = append(worklist, addBlock(acc))
	}
	if len(rej) > 0 {
		worklist = append(worklist, addBlock(rej))
	}
	inWork := make(map[int]bool)
	for _, w := range worklist {
		inWork[w] = true
	}
	for len(worklist) > 0 {
		passes++
		polls++
		if err := opt.Err(); err != nil {
			return nil, fmt.Errorf("%w: minimization abandoned with %d blocks", err, len(blocks))
		}
		a := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		inWork[a] = false
		// Snapshot: blocks[a] may be re-sliced by later splits.
		splitter := append([]int32(nil), blocks[a]...)
		for k := range d.syms {
			// X = predecessors of splitter on symbol k.
			touched := map[int][]int32{} // block -> members in X
			for _, t := range splitter {
				for _, s := range inverse[k][t] {
					b := blockOf[s]
					touched[b] = append(touched[b], s)
				}
			}
			for b, inX := range touched {
				if len(inX) == len(blocks[b]) {
					continue // no split
				}
				// Split block b into inX and rest.
				inXset := make(map[int32]bool, len(inX))
				for _, s := range inX {
					inXset[s] = true
				}
				var rest []int32
				for _, s := range blocks[b] {
					if !inXset[s] {
						rest = append(rest, s)
					}
				}
				blocks[b] = inX
				for _, s := range inX {
					blockOf[s] = b
				}
				newID := addBlock(rest)
				if inWork[b] {
					worklist = append(worklist, newID)
					inWork[newID] = true
				} else {
					smaller := newID
					if len(blocks[b]) < len(rest) {
						smaller = b
					}
					worklist = append(worklist, smaller)
					inWork[smaller] = true
				}
			}
		}
	}
	// Build the quotient automaton.
	q := newDFA(d.Sigma)
	q.Accept = make([]bool, len(blocks))
	q.Trans = make([][]int, len(blocks))
	for b, members := range blocks {
		rep := int(members[0])
		q.Accept[b] = d.Accept[rep]
		row := make([]int, len(d.syms))
		for k := range d.syms {
			row[k] = blockOf[d.Trans[rep][k]]
		}
		q.Trans[b] = row
	}
	q.Start = blockOf[d.Start]
	return q.canonicalize(), nil
}

// trim removes unreachable states (keeping the automaton complete).
func (d *DFA) trim() *DFA {
	n := d.NumStates()
	seen := make([]bool, n)
	order := []int{d.Start}
	seen[d.Start] = true
	for i := 0; i < len(order); i++ {
		s := order[i]
		for k := range d.syms {
			t := d.Trans[s][k]
			if !seen[t] {
				seen[t] = true
				order = append(order, t)
			}
		}
	}
	if len(order) == n {
		return d
	}
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	for newID, s := range order {
		remap[s] = newID
	}
	out := newDFA(d.Sigma)
	out.Accept = make([]bool, len(order))
	out.Trans = make([][]int, len(order))
	for newID, s := range order {
		out.Accept[newID] = d.Accept[s]
		row := make([]int, len(d.syms))
		for k := range d.syms {
			row[k] = remap[d.Trans[s][k]]
		}
		out.Trans[newID] = row
	}
	out.Start = remap[d.Start]
	return out
}

// canonicalize renumbers states in BFS order from the start state, visiting
// symbols in ascending order. All states are assumed reachable.
func (d *DFA) canonicalize() *DFA {
	n := d.NumStates()
	remap := make([]int, n)
	for i := range remap {
		remap[i] = -1
	}
	order := []int{d.Start}
	remap[d.Start] = 0
	for i := 0; i < len(order); i++ {
		s := order[i]
		for k := range d.syms {
			t := d.Trans[s][k]
			if remap[t] < 0 {
				remap[t] = len(order)
				order = append(order, t)
			}
		}
	}
	out := newDFA(d.Sigma)
	out.Accept = make([]bool, len(order))
	out.Trans = make([][]int, len(order))
	for _, s := range order {
		newID := remap[s]
		out.Accept[newID] = d.Accept[s]
		row := make([]int, len(d.syms))
		for k := range d.syms {
			row[k] = remap[d.Trans[s][k]]
		}
		out.Trans[newID] = row
	}
	out.Start = 0
	return out
}

// StructurallyEqual reports whether two DFAs are byte-identical modulo
// nothing — same Σ, same tables. Minimal canonical DFAs of equal languages
// compare true.
func StructurallyEqual(a, b *DFA) bool {
	if !a.Sigma.Equal(b.Sigma) || a.Start != b.Start || a.NumStates() != b.NumStates() {
		return false
	}
	for s := range a.Accept {
		if a.Accept[s] != b.Accept[s] {
			return false
		}
		for k := range a.syms {
			if a.Trans[s][k] != b.Trans[s][k] {
				return false
			}
		}
	}
	return true
}
