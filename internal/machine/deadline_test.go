package machine

import (
	"context"
	"errors"
	"testing"
	"time"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// expBlowupNFA returns the classic (a|b)*·b·(a|b)^n NFA whose minimal DFA has
// 2^n states — the PSPACE-flavored workload a deadline must be able to stop.
func expBlowupNFA(t *testing.T, n int) (*NFA, symtab.Alphabet) {
	t.Helper()
	tab := symtab.NewTable()
	a, b := tab.Intern("a"), tab.Intern("b")
	sigma := symtab.NewAlphabet(a, b)
	any := rx.Class(sigma)
	parts := []*rx.Node{rx.Star(any), rx.Sym(b)}
	for i := 0; i < n; i++ {
		parts = append(parts, any)
	}
	m, err := Compile(rx.Concat(parts...), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, sigma
}

func TestDeterminizeExpiredContext(t *testing.T) {
	nfa, _ := expBlowupNFA(t, 22)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Determinize(nfa, Options{Ctx: ctx})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("expired context took %v to surface (want < 100ms)", d)
	}
}

func TestDeterminizeDeadlineMidFlight(t *testing.T) {
	nfa, _ := expBlowupNFA(t, 24)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := Determinize(nfa, Options{MaxStates: -1, Ctx: ctx})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestMinimizeOptExpiredContext(t *testing.T) {
	nfa, _ := expBlowupNFA(t, 10)
	d, err := Determinize(nfa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinimizeOpt(d, Options{Ctx: ctx}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// Without a context the same input minimizes fine.
	if m := Minimize(d); m.NumStates() == 0 {
		t.Fatal("empty minimization")
	}
}

func TestBrzozowskiDeadline(t *testing.T) {
	nfa, _ := expBlowupNFA(t, 8)
	d, err := Determinize(nfa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinimizeBrzozowski(d, Options{Ctx: ctx}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestOptionsErrNilContext(t *testing.T) {
	if err := (Options{}).Err(); err != nil {
		t.Fatalf("nil-context options report %v", err)
	}
	live, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := (Options{Ctx: live}).Err(); err != nil {
		t.Fatalf("live-context options report %v", err)
	}
}
