package machine

import (
	"math/rand"
	"testing"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// genExtended draws random expressions including the extended operators, to
// exercise the derivative engine and the product constructions together.
func genExtended(rng *rand.Rand, syms []symtab.Symbol, depth int) *rx.Node {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return rx.Epsilon()
		case 1:
			return rx.Empty()
		default:
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
	}
	switch rng.Intn(12) {
	case 0, 1, 2:
		return rx.Concat(genExtended(rng, syms, depth-1), genExtended(rng, syms, depth-1))
	case 3, 4:
		return rx.Union(genExtended(rng, syms, depth-1), genExtended(rng, syms, depth-1))
	case 5:
		return rx.Star(genExtended(rng, syms, depth-1))
	case 6:
		return rx.Plus(genExtended(rng, syms, depth-1))
	case 7:
		return rx.Opt(genExtended(rng, syms, depth-1))
	case 8:
		return rx.Intersect(genExtended(rng, syms, depth-1), genExtended(rng, syms, depth-1))
	case 9:
		return rx.Diff(genExtended(rng, syms, depth-1), genExtended(rng, syms, depth-1))
	case 10:
		return rx.Complement(genExtended(rng, syms, depth-1))
	default:
		return rx.Sym(syms[rng.Intn(len(syms))])
	}
}

// TestThreeEngineAgreement pits the three independent semantics — Brzozowski
// derivatives (pure syntax), NFA subset simulation (Thompson + products),
// and the minimal DFA — against each other on random extended expressions
// over all short words. Any divergence is a real bug in one of them.
func TestThreeEngineAgreement(t *testing.T) {
	e := env3()
	two := symtab.NewAlphabet(e.p, e.q)
	words := allWords(two, 5)
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < 150; i++ {
		n := genExtended(rng, []symtab.Symbol{e.p, e.q}, 3)
		nfa, err := Compile(n, two, Options{MaxStates: 1 << 14})
		if err != nil {
			continue // budget blowups are acceptable for adversarial nests
		}
		d, err := Determinize(nfa, Options{MaxStates: 1 << 14})
		if err != nil {
			continue
		}
		m := Minimize(d)
		for _, w := range words {
			byDeriv := rx.Matches(n, w, two)
			byNFA := nfa.Accepts(w)
			byDFA := m.Accepts(w)
			if byDeriv != byNFA || byNFA != byDFA {
				t.Fatalf("engines disagree on %s over %q: deriv=%v nfa=%v dfa=%v",
					rx.Print(n, e.tab), e.tab.String(w), byDeriv, byNFA, byDFA)
			}
		}
	}
}

// The derivative engine also validates Simplify on extended expressions,
// where the automata path is the only other semantics.
func TestSimplifyAgainstDerivatives(t *testing.T) {
	e := env3()
	two := symtab.NewAlphabet(e.p, e.q)
	words := allWords(two, 5)
	rng := rand.New(rand.NewSource(404))
	for i := 0; i < 200; i++ {
		n := genExtended(rng, []symtab.Symbol{e.p, e.q}, 3)
		s := rx.Simplify(n)
		for _, w := range words {
			if rx.Matches(n, w, two) != rx.Matches(s, w, two) {
				t.Fatalf("Simplify changed %s on %q", rx.Print(n, e.tab), e.tab.String(w))
			}
		}
	}
}

// The derivative-built DFA must minimize to the same canonical automaton as
// the subset-construction path, on plain and extended expressions alike.
func TestDerivativeDFAAgrees(t *testing.T) {
	e := env3()
	exprs := []string{
		"p", "p*", "#eps", "#empty", ".*", "p | q r", "(p q)* r?",
		"(p | q)* p (p | q)", "[^ p]* p .*",
		"(p | q)* & (q | r)*", ".* - p*", "!(p* q)", "(p - q) r*",
	}
	for _, src := range exprs {
		n := e.parse(t, src)
		viaDeriv, err := DeterminizeDerivatives(n, e.sigma, Options{})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		nfa, err := Compile(n, e.sigma, Options{})
		if err != nil {
			t.Fatal(err)
		}
		viaSubset, err := Determinize(nfa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !StructurallyEqual(Minimize(viaDeriv), Minimize(viaSubset)) {
			t.Errorf("%q: derivative and subset DFAs minimize differently", src)
		}
	}
}

func TestDerivativeDFARandom(t *testing.T) {
	e := env3()
	rng := rand.New(rand.NewSource(606))
	for i := 0; i < 120; i++ {
		n := genExtended(rng, []symtab.Symbol{e.p, e.q}, 3)
		viaDeriv, err := DeterminizeDerivatives(n, e.sigma, Options{MaxStates: 1 << 12})
		if err != nil {
			continue // budget; acceptable for adversarial nests
		}
		nfa, err := Compile(n, e.sigma, Options{MaxStates: 1 << 12})
		if err != nil {
			continue
		}
		viaSubset, err := Determinize(nfa, Options{MaxStates: 1 << 12})
		if err != nil {
			continue
		}
		if !StructurallyEqual(Minimize(viaDeriv), Minimize(viaSubset)) {
			t.Fatalf("divergence on %s", rx.Print(n, e.tab))
		}
	}
}

func TestDerivativeDFABudgetAndForeign(t *testing.T) {
	e := env3()
	out := rx.Sym(e.tab.Intern("zzz"))
	if _, err := DeterminizeDerivatives(out, e.sigma, Options{}); err == nil {
		t.Error("foreign symbol accepted")
	}
	src := "(p | q)* p"
	for i := 0; i < 10; i++ {
		src += " (p | q)"
	}
	n := e.parse(t, src)
	if _, err := DeterminizeDerivatives(n, symtab.NewAlphabet(e.p, e.q), Options{MaxStates: 16}); err == nil {
		t.Error("budget not enforced")
	}
}
