package machine

import (
	"fmt"

	"resilex/internal/symtab"
)

// denseMaxStates bounds a Dense table: state ids must fit uint16. The
// sentinel 0xFFFF is reserved for "no state" by callers, so the usable range
// is one short of the full uint16 space.
const denseMaxStates = 0xFFFF - 1

// Dense is a flattened transition table for a complete DFA: one contiguous
// []uint16 row-major array replacing the per-state slice-of-slices walk (and
// the per-step binary symbol search) of DFA.Step. It is the warm-path
// representation behind the streaming matcher: a step is one multiply, one
// add and one load, with no pointer chasing and no allocation.
//
// A Dense is immutable after Compact and safe for concurrent readers.
type Dense struct {
	// Start is the start state.
	Start uint16
	// Stride is the number of symbols, the row length of Table.
	Stride int
	// Table holds the successor of state s on symbol index k at s*Stride+k.
	Table []uint16
	// Accept marks accepting states.
	Accept []bool

	syms []symtab.Symbol // ascending, as in the source DFA
}

// Compact flattens the DFA into a Dense table. It fails when the automaton
// has more states than fit a uint16 id — callers fall back to the pointered
// representation in that case (the streaming matcher falls back to the
// two-pass matcher).
func (d *DFA) Compact() (*Dense, error) {
	n := d.NumStates()
	if n > denseMaxStates {
		return nil, fmt.Errorf("machine: %d states exceed the dense-table limit %d", n, denseMaxStates)
	}
	stride := len(d.syms)
	out := &Dense{
		Start:  uint16(d.Start),
		Stride: stride,
		Table:  make([]uint16, n*stride),
		Accept: append([]bool(nil), d.Accept...),
		syms:   d.syms,
	}
	for s := 0; s < n; s++ {
		row := d.Trans[s]
		base := s * stride
		for k := 0; k < stride; k++ {
			out.Table[base+k] = uint16(row[k])
		}
	}
	return out, nil
}

// NumStates reports the number of states.
func (d *Dense) NumStates() int { return len(d.Accept) }

// Symbols returns the dense symbol ordering shared with the source DFA (do
// not modify).
func (d *Dense) Symbols() []symtab.Symbol { return d.syms }

// Step returns the successor of state on symbol index k (not a Symbol — use
// a SymbolIndex to translate). It is the inlinable hot-path step.
func (d *Dense) Step(state uint16, k int) uint16 {
	return d.Table[int(state)*d.Stride+k]
}

// Doomed computes the states from which no accepting state is reachable —
// the sink region of the automaton. A simulation thread entering a doomed
// state can be discarded: it can never contribute a match. The computation
// is a backward reachability sweep from the accept set, linear in the table.
func (d *Dense) Doomed() []bool {
	n := d.NumStates()
	// pred[t] lists states with an edge into t (deduplicated per source row).
	counts := make([]int32, n)
	for s := 0; s < n; s++ {
		base := s * d.Stride
		for k := 0; k < d.Stride; k++ {
			counts[d.Table[base+k]]++
		}
	}
	starts := make([]int32, n+1)
	for t := 0; t < n; t++ {
		starts[t+1] = starts[t] + counts[t]
	}
	pred := make([]uint16, starts[n])
	fill := append([]int32(nil), starts[:n]...)
	for s := 0; s < n; s++ {
		base := s * d.Stride
		for k := 0; k < d.Stride; k++ {
			t := d.Table[base+k]
			pred[fill[t]] = uint16(s)
			fill[t]++
		}
	}
	alive := make([]bool, n)
	var queue []uint16
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			alive[s] = true
			queue = append(queue, uint16(s))
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, s := range pred[starts[t]:starts[t+1]] {
			if !alive[s] {
				alive[s] = true
				queue = append(queue, s)
			}
		}
	}
	doomed := make([]bool, n)
	for s := range doomed {
		doomed[s] = !alive[s]
	}
	return doomed
}

// SymbolIndex translates interned Symbols to dense symbol indexes in O(1):
// a direct-indexed array over the symbol-id range of one alphabet. Ids
// outside the alphabet (including symtab.None) map to -1.
type SymbolIndex struct {
	lookup []int16
}

// symbolIndexMax bounds the direct-index array: symbol ids are dense
// (assigned in first-seen order by a Table), so in practice the array is
// tiny; the bound only guards against a pathological table.
const symbolIndexMax = 1 << 20

// NewSymbolIndex builds the translation array for sigma's symbols in their
// ascending (dense) order — the same order DFA.Symbols uses, so the returned
// indexes are valid against any Dense compacted from a DFA over sigma.
func NewSymbolIndex(sigma symtab.Alphabet) (*SymbolIndex, error) {
	syms := sigma.Symbols()
	if len(syms) > 0x7FFF {
		return nil, fmt.Errorf("machine: %d symbols exceed the dense symbol-index limit", len(syms))
	}
	max := sigma.Max()
	if int(max) >= symbolIndexMax {
		return nil, fmt.Errorf("machine: symbol id %d exceeds the dense symbol-index bound", max)
	}
	lookup := make([]int16, int(max)+1)
	for i := range lookup {
		lookup[i] = -1
	}
	for k, s := range syms {
		lookup[s] = int16(k)
	}
	return &SymbolIndex{lookup: lookup}, nil
}

// Index returns the dense index of sym, or -1 when sym is outside the
// alphabet (including symtab.None).
func (x *SymbolIndex) Index(sym symtab.Symbol) int {
	if sym < 0 || int(sym) >= len(x.lookup) {
		return -1
	}
	return int(x.lookup[sym])
}
