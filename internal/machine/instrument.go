package machine

import (
	"errors"

	"resilex/internal/obs"
)

// beginPhase opens an instrumented phase for a construction running under
// opt, provided opt.Ctx carries an observer (obs.NewContext). The returned
// options carry the phase's derived context so nested constructions parent
// their spans correctly. Without an observer this is a single nil check.
func beginPhase(opt Options, name string) (Options, *obs.Phase) {
	ctx, ph := obs.StartPhase(opt.Ctx, name)
	if ph != nil {
		opt.Ctx = ctx
	}
	return opt, ph
}

// endPhase closes the phase, counting budget/deadline failures so the two
// ways a super-linear construction gives up are visible per-run.
func endPhase(ph *obs.Phase, err error) {
	if ph == nil {
		return
	}
	switch {
	case errors.Is(err, ErrBudget):
		ph.Count("machine_budget_exhausted_total", 1)
	case errors.Is(err, ErrDeadline):
		ph.Count("machine_deadline_exceeded_total", 1)
	}
	ph.End()
}
