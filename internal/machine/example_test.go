package machine_test

import (
	"fmt"

	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// The Lemma 5.9 family (p|q)*·p·(p|q)ⁿ forces 2^(n+1) states under eager
// determinization. The lazy DFA answers membership queries while
// materializing only the subsets the scanned words actually reach.
func ExampleNewLazy() {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)

	parts := []*rx.Node{rx.Star(rx.Class(sigma)), rx.Sym(p)}
	for i := 0; i < 10; i++ {
		parts = append(parts, rx.Class(sigma))
	}
	nfa, err := machine.Compile(rx.Concat(parts...), sigma, machine.Options{})
	if err != nil {
		panic(err)
	}

	lazy := machine.NewLazy(nfa, machine.Options{})
	word := []symtab.Symbol{p}
	for i := 0; i < 10; i++ {
		word = append(word, q)
	}
	ok, err := lazy.Accepts(word)
	if err != nil {
		panic(err)
	}
	fmt.Println("accepts p·q¹⁰:", ok)
	fmt.Println("explored fewer than 2¹¹ states:", lazy.NumStates() < 1<<11)
	// Output:
	// accepts p·q¹⁰: true
	// explored fewer than 2¹¹ states: true
}
