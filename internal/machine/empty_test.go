package machine

import (
	"testing"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

func TestEmptyAlphabet(t *testing.T) {
	empty := symtab.NewAlphabet()
	for _, n := range []*rx.Node{rx.Epsilon(), rx.Empty(), rx.Star(rx.Empty())} {
		nfa, err := Compile(n, empty, Options{})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		d, err := Determinize(nfa, Options{})
		if err != nil {
			t.Fatalf("determinize: %v", err)
		}
		m := Minimize(d)
		_ = m.IsEmpty()
		_ = m.IsUniversal()
		_, _ = m.Witness()
		_ = m.Enumerate(3)
		if got := m.Accepts(nil); got != rx.Nullable(n) {
			t.Errorf("Accepts(ε) = %v, Nullable = %v", got, rx.Nullable(n))
		}
	}
}
