package machine

import (
	"errors"
	"testing"

	"resilex/internal/codec"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// codecEnv compiles src over {p,q,r} into an NFA plus its minimal DFA.
func codecEnv(t *testing.T, src string) (*NFA, *DFA, []symtab.Symbol) {
	t.Helper()
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll("p", "q", "r")...)
	ast, err := rx.Parse(src, tab, sigma)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	n, err := Compile(ast, sigma, Options{})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	d, err := Determinize(n, Options{})
	if err != nil {
		t.Fatalf("determinize %q: %v", src, err)
	}
	return n, Minimize(d), sigma.Symbols()
}

func TestDFACodecRoundTrip(t *testing.T) {
	for _, src := range lazyEquivCases {
		src := src
		t.Run(src, func(t *testing.T) {
			_, d, syms := codecEnv(t, src)
			got, err := DecodeDFA(d.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if !StructurallyEqual(d, got) {
				t.Fatal("decoded DFA differs structurally")
			}
			for _, w := range enumWords(syms, 5) {
				if d.Accepts(w) != got.Accepts(w) {
					t.Fatalf("decoded DFA disagrees on %v", w)
				}
			}
		})
	}
}

func TestNFACodecRoundTrip(t *testing.T) {
	for _, src := range lazyEquivCases {
		src := src
		t.Run(src, func(t *testing.T) {
			n, d, syms := codecEnv(t, src)
			got, err := DecodeNFA(n.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if got.NumStates() != n.NumStates() {
				t.Fatalf("decoded NFA has %d states, want %d", got.NumStates(), n.NumStates())
			}
			for _, w := range enumWords(syms, 5) {
				if got.Accepts(w) != d.Accepts(w) {
					t.Fatalf("decoded NFA disagrees on %v", w)
				}
			}
		})
	}
}

func TestLazyCodecRoundTripWarm(t *testing.T) {
	for _, src := range lazyEquivCases {
		src := src
		t.Run(src, func(t *testing.T) {
			n, d, syms := codecEnv(t, src)
			lazy := NewLazy(n, Options{})
			words := enumWords(syms, 4)
			// Warm a working set, snapshot, and restore.
			for _, w := range words {
				if _, err := lazy.Accepts(w); err != nil {
					t.Fatal(err)
				}
			}
			warm := lazy.NumStates()
			got, err := DecodeLazy(lazy.Encode(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.NumStates() != warm {
				t.Fatalf("restored %d states, want %d warm", got.NumStates(), warm)
			}
			// The restored automaton must agree with the eager DFA both on the
			// warmed words and on longer cold ones that force fresh
			// materialization on top of the snapshot.
			for _, w := range append(words, enumWords(syms, 5)...) {
				acc, err := got.Accepts(w)
				if err != nil {
					t.Fatal(err)
				}
				if acc != d.Accepts(w) {
					t.Fatalf("restored lazy DFA disagrees on %v", w)
				}
			}
		})
	}
}

func TestLazyCodecColdSnapshot(t *testing.T) {
	n, d, syms := codecEnv(t, "(p | q)* p (p | q)")
	got, err := DecodeLazy(NewLazy(n, Options{}).Encode(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != 1 {
		t.Fatalf("cold snapshot restored %d states, want 1", got.NumStates())
	}
	for _, w := range enumWords(syms, 5) {
		acc, err := got.Accepts(w)
		if err != nil {
			t.Fatal(err)
		}
		if acc != d.Accepts(w) {
			t.Fatalf("disagrees on %v", w)
		}
	}
}

// TestLazyDecodeBudget: the restoring process's options govern further
// materialization — a tiny budget makes a restored snapshot fail with
// ErrBudget on cold states, exactly like a fresh LazyDFA.
func TestLazyDecodeBudget(t *testing.T) {
	n, _, syms := codecEnv(t, "(p | q)* p (p | q) (p | q) (p | q)")
	lazy := NewLazy(n, Options{})
	got, err := DecodeLazy(lazy.Encode(), Options{MaxStates: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for _, w := range enumWords(syms, 6) {
		if _, stepErr = got.Accepts(w); stepErr != nil {
			break
		}
	}
	if !errors.Is(stepErr, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", stepErr)
	}
}

func TestAutomatonDecodeRejectsCorruption(t *testing.T) {
	n, d, _ := codecEnv(t, "(p q | q p)* r")
	lazy := NewLazy(n, Options{})
	if _, err := lazy.Accepts(nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		blob   []byte
		decode func([]byte) error
	}{
		{"dfa", d.Encode(), func(b []byte) error { _, err := DecodeDFA(b); return err }},
		{"nfa", n.Encode(), func(b []byte) error { _, err := DecodeNFA(b); return err }},
		{"lazy", lazy.Encode(), func(b []byte) error { _, err := DecodeLazy(b, Options{}); return err }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := c.decode(nil); !errors.Is(err, codec.ErrMalformedInput) {
				t.Errorf("nil blob: err = %v", err)
			}
			if err := c.decode(c.blob[:len(c.blob)/2]); !errors.Is(err, codec.ErrMalformedInput) {
				t.Errorf("truncated blob: err = %v", err)
			}
			for i := range c.blob {
				mut := append([]byte(nil), c.blob...)
				mut[i] ^= 0x10
				if err := c.decode(mut); !errors.Is(err, codec.ErrMalformedInput) {
					t.Fatalf("bit flip at %d: err = %v, want ErrMalformedInput", i, err)
				}
			}
			// Wrong-kind decode: a DFA blob is not an NFA and vice versa.
			for _, other := range cases {
				if other.name == c.name {
					continue
				}
				if err := c.decode(other.blob); !errors.Is(err, codec.ErrMalformedInput) {
					t.Errorf("decoding %s blob as %s: err = %v", other.name, c.name, err)
				}
			}
		})
	}
}
