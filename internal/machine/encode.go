package machine

import (
	"fmt"

	"resilex/internal/codec"
	"resilex/internal/obs"
	"resilex/internal/symtab"
)

// Framed formats for persisted automata. Each automaton kind carries its own
// magic so a blob can never be decoded as the wrong kind; all share the
// corruption policy of internal/codec — any mismatch (magic, version,
// checksum, structural invariant) is an error wrapping
// codec.ErrMalformedInput, never a panic.
const (
	dfaMagic  = "RXDF"
	nfaMagic  = "RXNF"
	lazyMagic = "RXLZ"

	automatonVersion = 1
)

func encodeAlphabet(w *codec.Writer, a symtab.Alphabet) {
	syms := a.Symbols()
	ids := make([]int, len(syms))
	for i, s := range syms {
		ids[i] = int(s)
	}
	w.Ints(ids)
}

// decodeAlphabet reads an alphabet and insists the persisted ids are
// strictly increasing non-negative symbols — the canonical form Symbols()
// emits — so the decoded alphabet's dense ordering matches the persisted
// transition-table columns exactly.
func decodeAlphabet(r *codec.Reader) (symtab.Alphabet, error) {
	ids := r.Ints()
	if err := r.Err(); err != nil {
		return symtab.Alphabet{}, err
	}
	syms := make([]symtab.Symbol, len(ids))
	for i, id := range ids {
		if id < 0 || (i > 0 && id <= ids[i-1]) {
			return symtab.Alphabet{}, fmt.Errorf("%w: alphabet ids not strictly increasing", codec.ErrMalformedInput)
		}
		syms[i] = symtab.Symbol(id)
	}
	return symtab.NewAlphabet(syms...), nil
}

// Encode serializes the DFA — alphabet, start state, accept set and the full
// transition table — into a framed binary blob. Decoding with DecodeDFA
// restores a structurally identical automaton.
func (d *DFA) Encode() []byte {
	var w codec.Writer
	encodeAlphabet(&w, d.Sigma)
	w.Int(int64(d.Start))
	w.Uint(uint64(d.NumStates()))
	w.Bools(d.Accept)
	for _, row := range d.Trans {
		for _, t := range row {
			w.Int(int64(t))
		}
	}
	return codec.Seal(dfaMagic, automatonVersion, w.Bytes())
}

// DecodeDFA restores a DFA from Encode's output. Corrupt input never panics:
// truncation, checksum mismatch, out-of-range states or a start state outside
// the automaton all return an error wrapping codec.ErrMalformedInput. A
// successfully decoded DFA is structurally valid — complete, with every
// transition target in range — but the checksum, not the decoder, is what
// ties it to the automaton that was encoded.
func DecodeDFA(blob []byte) (*DFA, error) {
	payload, err := codec.Open(dfaMagic, automatonVersion, blob)
	if err != nil {
		return nil, fmt.Errorf("machine: decoding DFA: %w", err)
	}
	r := codec.NewReader(payload)
	sigma, err := decodeAlphabet(r)
	if err != nil {
		return nil, fmt.Errorf("machine: decoding DFA: %w", err)
	}
	start := int(r.Int())
	states := r.Len()
	accept := r.Bools()
	d := newDFA(sigma)
	d.Start = start
	d.Accept = accept
	d.Trans = make([][]int, 0, states)
	for s := 0; s < states && r.Err() == nil; s++ {
		row := make([]int, len(d.syms))
		for k := range row {
			row[k] = int(r.Int())
		}
		d.Trans = append(d.Trans, row)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("machine: decoding DFA: %w", err)
	}
	if len(d.Accept) != states || states == 0 {
		return nil, fmt.Errorf("%w: DFA with %d accept bits for %d states", codec.ErrMalformedInput, len(d.Accept), states)
	}
	if d.Start < 0 || d.Start >= states {
		return nil, fmt.Errorf("%w: DFA start state %d out of range", codec.ErrMalformedInput, d.Start)
	}
	for s, row := range d.Trans {
		for _, t := range row {
			if t < 0 || t >= states {
				return nil, fmt.Errorf("%w: DFA transition %d→%d out of range", codec.ErrMalformedInput, s, t)
			}
		}
	}
	return d, nil
}

// Encode serializes the NFA — alphabet, start set, accept set, ε-edges and
// labeled edges — into a framed binary blob.
func (n *NFA) Encode() []byte {
	var w codec.Writer
	encodeAlphabet(&w, n.Sigma)
	w.Uint(uint64(n.NumStates()))
	w.Ints(n.Start)
	w.Bools(n.Accept)
	for _, eps := range n.Eps {
		w.Ints(eps)
	}
	for _, edges := range n.Edges {
		w.Uint(uint64(len(edges)))
		for _, e := range edges {
			encodeAlphabet(&w, e.On)
			w.Int(int64(e.To))
		}
	}
	return codec.Seal(nfaMagic, automatonVersion, w.Bytes())
}

// DecodeNFA restores an NFA from Encode's output, validating that every
// state reference — start states, ε-targets, edge targets — is in range and
// every edge label is a subset of Σ. Corrupt input returns an error wrapping
// codec.ErrMalformedInput, never a panic.
func DecodeNFA(blob []byte) (*NFA, error) {
	payload, err := codec.Open(nfaMagic, automatonVersion, blob)
	if err != nil {
		return nil, fmt.Errorf("machine: decoding NFA: %w", err)
	}
	r := codec.NewReader(payload)
	sigma, err := decodeAlphabet(r)
	if err != nil {
		return nil, fmt.Errorf("machine: decoding NFA: %w", err)
	}
	states := r.Len()
	n := &NFA{
		Sigma:  sigma,
		Start:  r.Ints(),
		Accept: r.Bools(),
	}
	for s := 0; s < states && r.Err() == nil; s++ {
		n.Eps = append(n.Eps, r.Ints())
	}
	for s := 0; s < states && r.Err() == nil; s++ {
		count := r.Len()
		var edges []Edge
		for i := 0; i < count && r.Err() == nil; i++ {
			on, err := decodeAlphabet(r)
			if err != nil {
				return nil, fmt.Errorf("machine: decoding NFA: %w", err)
			}
			edges = append(edges, Edge{On: on, To: int(r.Int())})
		}
		n.Edges = append(n.Edges, edges)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("machine: decoding NFA: %w", err)
	}
	if len(n.Accept) != states || states == 0 {
		return nil, fmt.Errorf("%w: NFA with %d accept bits for %d states", codec.ErrMalformedInput, len(n.Accept), states)
	}
	inRange := func(s int) bool { return s >= 0 && s < states }
	for _, s := range n.Start {
		if !inRange(s) {
			return nil, fmt.Errorf("%w: NFA start state %d out of range", codec.ErrMalformedInput, s)
		}
	}
	for _, eps := range n.Eps {
		for _, t := range eps {
			if !inRange(t) {
				return nil, fmt.Errorf("%w: NFA ε-target %d out of range", codec.ErrMalformedInput, t)
			}
		}
	}
	for _, edges := range n.Edges {
		for _, e := range edges {
			if !inRange(e.To) {
				return nil, fmt.Errorf("%w: NFA edge target %d out of range", codec.ErrMalformedInput, e.To)
			}
			if !e.On.SubsetOf(sigma) {
				return nil, fmt.Errorf("%w: NFA edge label outside Σ", codec.ErrMalformedInput)
			}
		}
	}
	return n, nil
}

// Encode snapshots the lazy automaton — its underlying NFA plus every subset
// state materialized so far and the transitions between them — into a framed
// binary blob. A decoded snapshot resumes with the same working set warm, so
// a restarted server's first documents step through memoized states instead
// of re-materializing them. Options are not persisted; DecodeLazy takes the
// budget and deadline of the restoring process.
func (l *LazyDFA) Encode() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	var w codec.Writer
	w.Bytes2(l.nfa.Encode())
	w.Uint(uint64(len(l.sets)))
	for _, set := range l.sets {
		w.Bools(set)
	}
	for _, row := range l.trans {
		for _, t := range row {
			w.Int(int64(t))
		}
	}
	return codec.Seal(lazyMagic, automatonVersion, w.Bytes())
}

// DecodeLazy restores a lazy automaton snapshot under opt's budget and
// deadline. Beyond the frame checksum it re-derives everything derivable —
// subset ε-closures, the accept bits, the state index — and rejects any
// snapshot whose stored sets are not ε-closed, are duplicated, or whose
// first state is not the NFA's start closure, so a decoded LazyDFA is always
// a snapshot some sequence of Step calls could have produced on the decoded
// NFA. Corrupt input returns an error wrapping codec.ErrMalformedInput.
func DecodeLazy(blob []byte, opt Options) (*LazyDFA, error) {
	payload, err := codec.Open(lazyMagic, automatonVersion, blob)
	if err != nil {
		return nil, fmt.Errorf("machine: decoding lazy DFA: %w", err)
	}
	r := codec.NewReader(payload)
	nfaBlob := r.Bytes2()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("machine: decoding lazy DFA: %w", err)
	}
	n, err := DecodeNFA(nfaBlob)
	if err != nil {
		return nil, fmt.Errorf("machine: decoding lazy DFA: %w", err)
	}
	count := r.Len()
	sets := make([][]bool, 0, min(count, 1024))
	for i := 0; i < count && r.Err() == nil; i++ {
		sets = append(sets, r.Bools())
	}
	trans := make([][]int, 0, min(count, 1024))
	syms := n.Sigma.Symbols()
	for s := 0; s < count && r.Err() == nil; s++ {
		row := make([]int, len(syms))
		for k := range row {
			row[k] = int(r.Int())
		}
		trans = append(trans, row)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("machine: decoding lazy DFA: %w", err)
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: lazy snapshot with no states", codec.ErrMalformedInput)
	}
	o := obs.FromContext(opt.Ctx)
	l := &LazyDFA{
		nfa:         n,
		opt:         opt,
		syms:        syms,
		states:      o.Counter("machine_lazy_states_total"),
		transitions: o.Counter("machine_lazy_transitions_total"),
		index:       make(map[string]int, count),
	}
	for id, set := range sets {
		if len(set) != n.NumStates() {
			return nil, fmt.Errorf("%w: subset state %d over %d NFA states, want %d", codec.ErrMalformedInput, id, len(set), n.NumStates())
		}
		closed := append([]bool(nil), set...)
		n.closure(closed)
		for s := range set {
			if set[s] != closed[s] {
				return nil, fmt.Errorf("%w: subset state %d is not ε-closed", codec.ErrMalformedInput, id)
			}
		}
		key := subsetKey(set)
		if _, dup := l.index[key]; dup {
			return nil, fmt.Errorf("%w: duplicate subset state %d", codec.ErrMalformedInput, id)
		}
		l.index[key] = id
		l.sets = append(l.sets, set)
		acc := false
		for s, in := range set {
			if in && n.Accept[s] {
				acc = true
				break
			}
		}
		l.accept = append(l.accept, acc)
	}
	if start := subsetKey(n.startSet()); l.index[start] != 0 || subsetKey(l.sets[0]) != start {
		return nil, fmt.Errorf("%w: lazy snapshot state 0 is not the start closure", codec.ErrMalformedInput)
	}
	for s, row := range trans {
		for k, t := range row {
			if t == unexplored {
				continue
			}
			if t < 0 || t >= count {
				return nil, fmt.Errorf("%w: lazy transition %d→%d out of range", codec.ErrMalformedInput, s, t)
			}
			// A stored transition must be the one Step would materialize:
			// move(sets[s], sym) = sets[t]. Re-deriving it keeps a decoded
			// snapshot behaviorally identical to a freshly warmed automaton.
			if subsetKey(n.move(l.sets[s], syms[k])) != subsetKey(l.sets[t]) {
				return nil, fmt.Errorf("%w: lazy transition %d→%d disagrees with subset construction", codec.ErrMalformedInput, s, t)
			}
		}
	}
	l.trans = trans
	return l, nil
}
