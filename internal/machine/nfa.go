// Package machine implements the finite-automata substrate: Thompson
// construction, subset construction, product automata, Hopcroft
// minimization, language decision procedures (emptiness, universality,
// containment, equivalence), prefix/suffix quotients, bounded enumeration
// and DFA→regex state elimination.
//
// All automata run over an explicit finite alphabet Σ of interned symbols.
// Transitions are labeled with symbol *sets* so that the paper's ubiquitous
// (Σ−p) classes stay compact.
//
// Determinization is worst-case exponential (this is exactly the PSPACE
// obstruction of Theorem 5.12 in the paper), so every determinizing entry
// point takes a state budget and fails with ErrBudget instead of diverging.
// For serving paths that cannot afford the up-front blow-up, NewLazy builds
// the subset construction on the fly: states materialize the first time a
// scan reaches them, are memoized for every later scan, and count against
// the same budget (see LazyDFA and ExampleNewLazy).
package machine

import (
	"context"
	"errors"
	"fmt"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// DefaultMaxStates is the determinization budget used when Options.MaxStates
// is zero. It is generous enough for every construction in the paper's
// examples and the experiment sweeps, while still bounding adversarial
// inputs.
const DefaultMaxStates = 1 << 20

// ErrBudget is returned (wrapped) when a construction would exceed its state
// budget. Callers experimenting with the PSPACE frontier (experiment E4)
// should detect it with errors.Is.
var ErrBudget = errors.New("machine: state budget exceeded")

// ErrDeadline is returned (wrapped) when a construction is abandoned because
// the Options context expired or was cancelled. Together with ErrBudget it
// bounds every worst-case-exponential loop in both time and memory.
var ErrDeadline = errors.New("machine: deadline exceeded")

// Options configures automaton constructions.
type Options struct {
	// MaxStates bounds the number of states any single construction may
	// create; 0 means DefaultMaxStates, negative means unlimited.
	MaxStates int
	// Ctx, when non-nil, is polled inside every determinizing loop; once it
	// is done the construction is abandoned with an error wrapping
	// ErrDeadline. nil means no time bound.
	Ctx context.Context
}

func (o Options) limit() int {
	switch {
	case o.MaxStates == 0:
		return DefaultMaxStates
	case o.MaxStates < 0:
		return int(^uint(0) >> 1)
	default:
		return o.MaxStates
	}
}

// WithContext returns a copy of the options whose constructions are bound by
// ctx in addition to the state budget.
func (o Options) WithContext(ctx context.Context) Options {
	o.Ctx = ctx
	return o
}

// WithoutContext strips the time bound, keeping the state budget. Internal
// helpers use it for constructions that are linear in an already-bounded
// input, so their "cannot happen" error paths stay genuinely unreachable.
func (o Options) WithoutContext() Options {
	o.Ctx = nil
	return o
}

// Err reports whether the options' context has expired or been cancelled,
// wrapping ErrDeadline if so. Construction loops poll it between states.
func (o Options) Err() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return fmt.Errorf("%w: %v", ErrDeadline, o.Ctx.Err())
	default:
		return nil
	}
}

// Edge is an NFA transition consuming one symbol from the set On.
type Edge struct {
	On symtab.Alphabet
	To int
}

// NFA is a nondeterministic finite automaton with ε-transitions and a set of
// start states. States are dense ints.
type NFA struct {
	Sigma  symtab.Alphabet
	Start  []int
	Accept []bool
	Eps    [][]int
	Edges  [][]Edge
}

// NumStates reports the number of states.
func (n *NFA) NumStates() int { return len(n.Accept) }

func newNFA(sigma symtab.Alphabet, states int) *NFA {
	return &NFA{
		Sigma:  sigma,
		Accept: make([]bool, states),
		Eps:    make([][]int, states),
		Edges:  make([][]Edge, states),
	}
}

func (n *NFA) addState() int {
	n.Accept = append(n.Accept, false)
	n.Eps = append(n.Eps, nil)
	n.Edges = append(n.Edges, nil)
	return len(n.Accept) - 1
}

func (n *NFA) addEps(from, to int) { n.Eps[from] = append(n.Eps[from], to) }
func (n *NFA) addEdge(from int, on symtab.Alphabet, to int) {
	if on.IsEmpty() {
		return
	}
	n.Edges[from] = append(n.Edges[from], Edge{On: on, To: to})
}

// closure expands the state set in-place (as a bitset) with ε-reachability.
func (n *NFA) closure(set []bool) {
	var stack []int
	for s, in := range set {
		if in {
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.Eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
}

// move returns the ε-closed successor set of set under symbol sym.
func (n *NFA) move(set []bool, sym symtab.Symbol) []bool {
	out := make([]bool, n.NumStates())
	for s, in := range set {
		if !in {
			continue
		}
		for _, e := range n.Edges[s] {
			if e.On.Contains(sym) {
				out[e.To] = true
			}
		}
	}
	n.closure(out)
	return out
}

// startSet returns the ε-closed start set as a bitset.
func (n *NFA) startSet() []bool {
	set := make([]bool, n.NumStates())
	for _, s := range n.Start {
		set[s] = true
	}
	n.closure(set)
	return set
}

// Accepts reports whether the NFA accepts the word, by direct subset
// simulation (no determinization).
func (n *NFA) Accepts(word []symtab.Symbol) bool {
	set := n.startSet()
	for _, sym := range word {
		set = n.move(set, sym)
	}
	for s, in := range set {
		if in && n.Accept[s] {
			return true
		}
	}
	return false
}

// Reverse returns an NFA for the reversal of the language.
func (n *NFA) Reverse() *NFA {
	r := newNFA(n.Sigma, n.NumStates())
	for s := 0; s < n.NumStates(); s++ {
		for _, t := range n.Eps[s] {
			r.addEps(t, s)
		}
		for _, e := range n.Edges[s] {
			r.addEdge(e.To, e.On, s)
		}
		if n.Accept[s] {
			r.Start = append(r.Start, s)
		}
	}
	for _, s := range n.Start {
		r.Accept[s] = true
	}
	return r
}

// Clone returns a deep copy.
func (n *NFA) Clone() *NFA {
	c := newNFA(n.Sigma, n.NumStates())
	c.Start = append([]int(nil), n.Start...)
	copy(c.Accept, n.Accept)
	for s := range n.Eps {
		c.Eps[s] = append([]int(nil), n.Eps[s]...)
		c.Edges[s] = append([]Edge(nil), n.Edges[s]...)
	}
	return c
}

// frag is a Thompson fragment with one start and one accept state.
type frag struct{ start, end int }

// Compile translates a regular-expression AST into an NFA over sigma using
// Thompson's construction. Extended operators (intersection, difference,
// complement) are compiled via determinized products, so they consume state
// budget; plain regular operators never fail.
//
// Symbols mentioned in the AST that are outside sigma are an error: the
// language would not be well-defined relative to Σ.
func Compile(n *rx.Node, sigma symtab.Alphabet, opt Options) (_ *NFA, err error) {
	if !n.Symbols().SubsetOf(sigma) {
		return nil, fmt.Errorf("machine: expression mentions symbols outside Σ")
	}
	m := newNFA(sigma, 0)
	opt, ph := beginPhase(opt, "machine.compile")
	defer func() {
		ph.Attr("states", int64(m.NumStates()))
		endPhase(ph, err)
	}()
	f, err := m.build(n, opt)
	if err != nil {
		return nil, err
	}
	m.Start = []int{f.start}
	m.Accept[f.end] = true
	return m, nil
}

// MustCompile is Compile panicking on error; for tests and examples with
// plain (non-extended) expressions.
func MustCompile(n *rx.Node, sigma symtab.Alphabet) *NFA {
	m, err := Compile(n, sigma, Options{})
	if err != nil {
		panic(err)
	}
	return m
}

func (m *NFA) build(n *rx.Node, opt Options) (frag, error) {
	switch n.Op {
	case rx.OpEmpty:
		s, e := m.addState(), m.addState()
		return frag{s, e}, nil
	case rx.OpEpsilon:
		s, e := m.addState(), m.addState()
		m.addEps(s, e)
		return frag{s, e}, nil
	case rx.OpClass:
		s, e := m.addState(), m.addState()
		m.addEdge(s, n.Class, e)
		return frag{s, e}, nil
	case rx.OpConcat:
		cur, err := m.build(n.Subs[0], opt)
		if err != nil {
			return frag{}, err
		}
		for _, sub := range n.Subs[1:] {
			nxt, err := m.build(sub, opt)
			if err != nil {
				return frag{}, err
			}
			m.addEps(cur.end, nxt.start)
			cur = frag{cur.start, nxt.end}
		}
		return cur, nil
	case rx.OpUnion:
		s, e := m.addState(), m.addState()
		for _, sub := range n.Subs {
			f, err := m.build(sub, opt)
			if err != nil {
				return frag{}, err
			}
			m.addEps(s, f.start)
			m.addEps(f.end, e)
		}
		return frag{s, e}, nil
	case rx.OpStar:
		f, err := m.build(n.Subs[0], opt)
		if err != nil {
			return frag{}, err
		}
		s, e := m.addState(), m.addState()
		m.addEps(s, f.start)
		m.addEps(f.end, f.start)
		m.addEps(s, e)
		m.addEps(f.end, e)
		return frag{s, e}, nil
	case rx.OpPlus:
		f, err := m.build(n.Subs[0], opt)
		if err != nil {
			return frag{}, err
		}
		s, e := m.addState(), m.addState()
		m.addEps(s, f.start)
		m.addEps(f.end, f.start)
		m.addEps(f.end, e)
		return frag{s, e}, nil
	case rx.OpOpt:
		f, err := m.build(n.Subs[0], opt)
		if err != nil {
			return frag{}, err
		}
		s, e := m.addState(), m.addState()
		m.addEps(s, f.start)
		m.addEps(f.end, e)
		m.addEps(s, e)
		return frag{s, e}, nil
	case rx.OpIntersect, rx.OpDiff:
		a, err := m.subDFA(n.Subs[0], opt)
		if err != nil {
			return frag{}, err
		}
		b, err := m.subDFA(n.Subs[1], opt)
		if err != nil {
			return frag{}, err
		}
		var d *DFA
		if n.Op == rx.OpIntersect {
			d, err = Product(a, b, func(x, y bool) bool { return x && y }, opt)
		} else {
			d, err = Product(a, b, func(x, y bool) bool { return x && !y }, opt)
		}
		if err != nil {
			return frag{}, err
		}
		md, err := MinimizeOpt(d, opt)
		if err != nil {
			return frag{}, err
		}
		return m.embedDFA(md), nil
	case rx.OpComplement:
		a, err := m.subDFA(n.Subs[0], opt)
		if err != nil {
			return frag{}, err
		}
		mc, err := MinimizeOpt(a.Complement(), opt)
		if err != nil {
			return frag{}, err
		}
		return m.embedDFA(mc), nil
	}
	return frag{}, fmt.Errorf("machine: cannot compile op %v", n.Op)
}

// subDFA compiles a sub-AST to a minimal DFA (used for extended operators).
func (m *NFA) subDFA(n *rx.Node, opt Options) (*DFA, error) {
	sub, err := Compile(n, m.Sigma, opt)
	if err != nil {
		return nil, err
	}
	d, err := Determinize(sub, opt)
	if err != nil {
		return nil, err
	}
	return MinimizeOpt(d, opt)
}

// embedDFA splices a DFA into this NFA as a Thompson-style fragment.
func (m *NFA) embedDFA(d *DFA) frag {
	base := m.NumStates()
	for i := 0; i < d.NumStates(); i++ {
		m.addState()
	}
	for s := 0; s < d.NumStates(); s++ {
		for k, sym := range d.syms {
			t := d.Trans[s][k]
			m.addEdge(base+s, symtab.NewAlphabet(sym), base+t)
		}
	}
	start, end := m.addState(), m.addState()
	m.addEps(start, base+d.Start)
	for s := 0; s < d.NumStates(); s++ {
		if d.Accept[s] {
			m.addEps(base+s, end)
		}
	}
	return frag{start, end}
}

// FromDFA converts a DFA to an equivalent NFA (shared-structure free).
func FromDFA(d *DFA) *NFA {
	n := newNFA(d.Sigma, d.NumStates())
	n.Start = []int{d.Start}
	copy(n.Accept, d.Accept)
	for s := 0; s < d.NumStates(); s++ {
		// Group targets to merge parallel edges into classes.
		byTarget := map[int][]symtab.Symbol{}
		for k, sym := range d.syms {
			t := d.Trans[s][k]
			byTarget[t] = append(byTarget[t], sym)
		}
		for t, syms := range byTarget {
			n.addEdge(s, symtab.NewAlphabet(syms...), t)
		}
	}
	return n
}

// FromWord returns an NFA accepting exactly the given word over sigma.
func FromWord(word []symtab.Symbol, sigma symtab.Alphabet) *NFA {
	n := newNFA(sigma, len(word)+1)
	n.Start = []int{0}
	for i, sym := range word {
		n.addEdge(i, symtab.NewAlphabet(sym), i+1)
	}
	n.Accept[len(word)] = true
	return n
}

// Concat returns an NFA for L(a)·L(b). Both must share Σ.
func ConcatNFA(a, b *NFA) *NFA {
	out := a.Clone()
	out.Sigma = a.Sigma.Union(b.Sigma)
	base := out.NumStates()
	for i := 0; i < b.NumStates(); i++ {
		out.addState()
	}
	for s := 0; s < b.NumStates(); s++ {
		for _, t := range b.Eps[s] {
			out.addEps(base+s, base+t)
		}
		for _, e := range b.Edges[s] {
			out.addEdge(base+s, e.On, base+e.To)
		}
		out.Accept[base+s] = b.Accept[s]
	}
	for s := 0; s < a.NumStates(); s++ {
		if a.Accept[s] {
			out.Accept[s] = false
			for _, t := range b.Start {
				out.addEps(s, base+t)
			}
		}
	}
	return out
}

// UnionNFA returns an NFA for L(a) ∪ L(b).
func UnionNFA(a, b *NFA) *NFA {
	out := a.Clone()
	out.Sigma = a.Sigma.Union(b.Sigma)
	base := out.NumStates()
	for i := 0; i < b.NumStates(); i++ {
		out.addState()
	}
	for s := 0; s < b.NumStates(); s++ {
		for _, t := range b.Eps[s] {
			out.addEps(base+s, base+t)
		}
		for _, e := range b.Edges[s] {
			out.addEdge(base+s, e.On, base+e.To)
		}
		out.Accept[base+s] = b.Accept[s]
	}
	for _, t := range b.Start {
		out.Start = append(out.Start, base+t)
	}
	return out
}
