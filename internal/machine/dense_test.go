package machine

import (
	"math/rand"
	"testing"

	"resilex/internal/symtab"
)

// denseDFA compiles a regex to its minimal DFA via the test helpers already
// used by machine_test.go.
func denseDFA(t *testing.T, src string) (*DFA, *symtab.Table, symtab.Alphabet) {
	t.Helper()
	e := env3()
	return e.dfa(t, src), e.tab, e.sigma
}

// TestDenseStepAgreesWithDFA runs random words through the pointered DFA and
// the compacted Dense table; every step and accept bit must agree.
func TestDenseStepAgreesWithDFA(t *testing.T) {
	for _, src := range []string{"p* q p*", "(p q)* | q*", ".* p . q .*", "[^ p]* p [^ p]*"} {
		d, _, sigma := denseDFA(t, src)
		dense, err := d.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if dense.NumStates() != d.NumStates() {
			t.Fatalf("%s: dense has %d states, DFA %d", src, dense.NumStates(), d.NumStates())
		}
		idx, err := NewSymbolIndex(sigma)
		if err != nil {
			t.Fatal(err)
		}
		syms := sigma.Symbols()
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(24)
			ds, ss := d.Start, dense.Start
			for i := 0; i < n; i++ {
				sym := syms[rng.Intn(len(syms))]
				k := idx.Index(sym)
				if k < 0 {
					t.Fatalf("symbol %d not indexed", sym)
				}
				ds = d.Step(ds, sym)
				ss = dense.Step(ss, k)
				if ds != int(ss) {
					t.Fatalf("%s: diverged at step %d: DFA %d, dense %d", src, i, ds, ss)
				}
			}
			if d.Accept[ds] != dense.Accept[ss] {
				t.Fatalf("%s: accept bit diverged in state %d", src, ds)
			}
		}
	}
}

// TestDenseDoomed checks the sink detection: states that cannot reach an
// accepting state are doomed, all others are not.
func TestDenseDoomed(t *testing.T) {
	// "p q" over {p,q}: the dead sink after a wrong symbol is doomed; the
	// three states along the accepting spine are not.
	d, _, _ := denseDFA(t, "p q")
	dense, err := d.Compact()
	if err != nil {
		t.Fatal(err)
	}
	doomed := dense.Doomed()
	// Exactly the states from which acceptance is reachable survive; verify
	// against a brute-force forward search from each state.
	for s := 0; s < d.NumStates(); s++ {
		reach := map[int]bool{s: true}
		frontier := []int{s}
		ok := d.Accept[s]
		for len(frontier) > 0 && !ok {
			cur := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for k := range d.Symbols() {
				t2 := d.Trans[cur][k]
				if !reach[t2] {
					reach[t2] = true
					frontier = append(frontier, t2)
					if d.Accept[t2] {
						ok = true
					}
				}
			}
		}
		if doomed[s] == ok {
			t.Fatalf("state %d: doomed=%v but acceptance reachable=%v", s, doomed[s], ok)
		}
	}
	// A universal automaton has no doomed states.
	u, _, _ := denseDFA(t, ".*")
	ud, err := u.Compact()
	if err != nil {
		t.Fatal(err)
	}
	for s, dm := range ud.Doomed() {
		if dm {
			t.Fatalf("universal automaton: state %d doomed", s)
		}
	}
}

// TestSymbolIndexOutOfRange: None and foreign ids map to -1.
func TestSymbolIndexOutOfRange(t *testing.T) {
	tab := symtab.NewTable()
	syms := tab.InternAll("p", "q", "r")
	sigma := symtab.NewAlphabet(syms[0], syms[2]) // p and r, not q
	idx, err := NewSymbolIndex(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Index(syms[0]) != 0 || idx.Index(syms[2]) != 1 {
		t.Fatalf("in-alphabet symbols misindexed: %d %d", idx.Index(syms[0]), idx.Index(syms[2]))
	}
	if idx.Index(syms[1]) != -1 {
		t.Error("q is not in the alphabet but got an index")
	}
	if idx.Index(symtab.None) != -1 {
		t.Error("None got an index")
	}
	if idx.Index(symtab.Symbol(999)) != -1 {
		t.Error("foreign id got an index")
	}
}
