package machine

import (
	"fmt"
	"sync"

	"resilex/internal/obs"
	"resilex/internal/symtab"
)

// LazyDFA is an on-the-fly subset construction over an NFA: the deterministic
// automaton that Determinize would build, materialized one state at a time as
// transitions are actually taken. Matching a document of n tokens touches at
// most n+1 subset states, so per-document work never pays the full
// (worst-case exponential, Theorem 5.12) determinization up front — the
// serving-path counterpart of the eager construction used at compile time.
//
// States are memoized: once a subset state is materialized, every later Step
// through it is a table lookup, so a long-lived LazyDFA converges toward the
// eager DFA on the traffic it actually sees. The total number of materialized
// states is bounded by Options.MaxStates exactly like Determinize, and the
// Options context is polled on every materialization, so adversarial
// documents fail with ErrBudget or ErrDeadline instead of diverging.
//
// A LazyDFA is safe for concurrent use; all mutable state is guarded by one
// mutex. Step on an already-materialized transition still takes the lock, so
// callers wanting lock-free sharing across many goroutines should prefer one
// LazyDFA per goroutine or the eager DFA.
type LazyDFA struct {
	nfa  *NFA
	opt  Options
	syms []symtab.Symbol

	// Materialization counters, captured from the options' context at
	// construction (nil-safe no-ops without an observer).
	states      *obs.Counter
	transitions *obs.Counter

	mu     sync.Mutex
	index  map[string]int
	sets   [][]bool
	accept []bool
	trans  [][]int // trans[state][symbolIndex]; unexplored = unexplored sentinel
}

// unexplored marks a transition whose target subset has not been computed
// yet. Distinct from -1, which LazyDFA.Step reserves for out-of-Σ symbols to
// mirror DFA.Step.
const unexplored = -2

// NewLazy returns the lazy determinization of n. Only the (ε-closed) start
// state is materialized; everything else is built on demand by Step. The
// options bound the total number of states the automaton may ever
// materialize and carry the deadline polled at each materialization.
func NewLazy(n *NFA, opt Options) *LazyDFA {
	o := obs.FromContext(opt.Ctx)
	l := &LazyDFA{
		nfa:         n,
		opt:         opt,
		syms:        n.Sigma.Symbols(),
		states:      o.Counter("machine_lazy_states_total"),
		transitions: o.Counter("machine_lazy_transitions_total"),
		index:       map[string]int{},
	}
	start := n.startSet()
	l.addLocked(subsetKey(start), start)
	return l
}

// subsetKey packs a state bitset into a compact map key (shared with the
// eager Determinize).
func subsetKey(set []bool) string {
	b := make([]byte, (len(set)+7)/8)
	for i, in := range set {
		if in {
			b[i/8] |= 1 << (i % 8)
		}
	}
	return string(b)
}

// addLocked materializes one subset state. Caller holds l.mu (or, in NewLazy,
// has exclusive access).
func (l *LazyDFA) addLocked(key string, set []bool) int {
	id := len(l.sets)
	l.index[key] = id
	l.sets = append(l.sets, set)
	acc := false
	for s, in := range set {
		if in && l.nfa.Accept[s] {
			acc = true
			break
		}
	}
	l.accept = append(l.accept, acc)
	row := make([]int, len(l.syms))
	for k := range row {
		row[k] = unexplored
	}
	l.trans = append(l.trans, row)
	l.states.Inc()
	return id
}

// Start returns the start state (always state 0).
func (l *LazyDFA) Start() int { return 0 }

// Sigma returns the alphabet the automaton runs over.
func (l *LazyDFA) Sigma() symtab.Alphabet { return l.nfa.Sigma }

// NumStates reports how many subset states have been materialized so far —
// a monotone lower bound on the eager DFA's state count.
func (l *LazyDFA) NumStates() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sets)
}

// Accepting reports whether state is accepting.
func (l *LazyDFA) Accepting(state int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accept[state]
}

// Step returns the successor of state on sym, materializing it on first use.
// Symbols outside Σ return -1 with no error, mirroring DFA.Step. The error is
// non-nil exactly when materializing a fresh state would exceed the state
// budget (wrapping ErrBudget) or the options' context has expired (wrapping
// ErrDeadline).
func (l *LazyDFA) Step(state int, sym symtab.Symbol) (int, error) {
	k := l.symIndex(sym)
	if k < 0 {
		return -1, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if t := l.trans[state][k]; t != unexplored {
		return t, nil
	}
	if err := l.opt.Err(); err != nil {
		return 0, fmt.Errorf("%w: lazy determinization abandoned at %d states", err, len(l.sets))
	}
	next := l.nfa.move(l.sets[state], sym)
	key := subsetKey(next)
	id, ok := l.index[key]
	if !ok {
		if len(l.sets) >= l.opt.limit() {
			return 0, fmt.Errorf("%w: lazy determinization needs > %d states", ErrBudget, l.opt.limit())
		}
		id = l.addLocked(key, next)
	}
	l.trans[state][k] = id
	l.transitions.Inc()
	return id, nil
}

// Run returns the state reached after consuming word from state, or -1 if a
// symbol is outside Σ. The error cases are those of Step.
func (l *LazyDFA) Run(state int, word []symtab.Symbol) (int, error) {
	for _, sym := range word {
		next, err := l.Step(state, sym)
		if err != nil {
			return 0, err
		}
		if next < 0 {
			return -1, nil
		}
		state = next
	}
	return state, nil
}

// Accepts reports whether the automaton accepts the word; symbols outside Σ
// reject, as in DFA.Accepts. The error cases are those of Step.
func (l *LazyDFA) Accepts(word []symtab.Symbol) (bool, error) {
	s, err := l.Run(l.Start(), word)
	if err != nil || s < 0 {
		return false, err
	}
	return l.accepting(s), nil
}

func (l *LazyDFA) accepting(state int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accept[state]
}

func (l *LazyDFA) symIndex(sym symtab.Symbol) int {
	lo, hi := 0, len(l.syms)
	for lo < hi {
		mid := (lo + hi) / 2
		if l.syms[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.syms) && l.syms[lo] == sym {
		return lo
	}
	return -1
}
