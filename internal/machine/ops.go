package machine

import (
	"math/rand"

	"resilex/internal/symtab"
)

// IsEmpty reports whether L(d) = ∅ (no reachable accepting state).
func (d *DFA) IsEmpty() bool {
	seen := make([]bool, d.NumStates())
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[s] {
			return false
		}
		for k := range d.syms {
			t := d.Trans[s][k]
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

// IsUniversal reports whether L(d) = Σ* (every reachable state accepting).
func (d *DFA) IsUniversal() bool {
	seen := make([]bool, d.NumStates())
	stack := []int{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !d.Accept[s] {
			return false
		}
		for k := range d.syms {
			t := d.Trans[s][k]
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return true
}

// Equivalent reports whether L(a) = L(b), via emptiness of the symmetric
// difference product. Both must share Σ.
func Equivalent(a, b *DFA, opt Options) (bool, error) {
	x, err := Product(a, b, func(p, q bool) bool { return p != q }, opt)
	if err != nil {
		return false, err
	}
	return x.IsEmpty(), nil
}

// Subset reports whether L(a) ⊆ L(b), via emptiness of a ∩ ¬b.
func Subset(a, b *DFA, opt Options) (bool, error) {
	x, err := Product(a, b, func(p, q bool) bool { return p && !q }, opt)
	if err != nil {
		return false, err
	}
	return x.IsEmpty(), nil
}

// Witness returns a shortest accepted word, or ok=false if L(d) = ∅.
func (d *DFA) Witness() (word []symtab.Symbol, ok bool) {
	type crumb struct {
		prev int
		sym  symtab.Symbol
	}
	n := d.NumStates()
	from := make([]crumb, n)
	seen := make([]bool, n)
	queue := []int{d.Start}
	seen[d.Start] = true
	from[d.Start] = crumb{prev: -1}
	goal := -1
	for qi := 0; qi < len(queue) && goal < 0; qi++ {
		s := queue[qi]
		if d.Accept[s] {
			goal = s
			break
		}
		for k, sym := range d.syms {
			t := d.Trans[s][k]
			if !seen[t] {
				seen[t] = true
				from[t] = crumb{prev: s, sym: sym}
				queue = append(queue, t)
			}
		}
	}
	if goal < 0 {
		return nil, false
	}
	var rev []symtab.Symbol
	for s := goal; from[s].prev >= 0; s = from[s].prev {
		rev = append(rev, from[s].sym)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// CounterExample returns a shortest word in L(a) △ L(b), or ok=false when
// the languages are equal.
func CounterExample(a, b *DFA, opt Options) (word []symtab.Symbol, ok bool, err error) {
	x, err := Product(a, b, func(p, q bool) bool { return p != q }, opt)
	if err != nil {
		return nil, false, err
	}
	w, ok := x.Witness()
	return w, ok, nil
}

// Enumerate returns every accepted word of length ≤ maxLen, in length-then-
// lexicographic(symbol id) order. Intended for brute-force oracles in tests;
// output is exponential in maxLen.
func (d *DFA) Enumerate(maxLen int) [][]symtab.Symbol {
	var out [][]symtab.Symbol
	live := d.liveStates()
	var rec func(state int, word []symtab.Symbol)
	rec = func(state int, word []symtab.Symbol) {
		if d.Accept[state] {
			out = append(out, append([]symtab.Symbol(nil), word...))
		}
		if len(word) == maxLen {
			return
		}
		for k, sym := range d.syms {
			t := d.Trans[state][k]
			if live[t] {
				rec(t, append(word, sym))
			}
		}
	}
	rec(d.Start, nil)
	// Reorder: depth-first emission is prefix order; sort by length then lex.
	sortWords(out)
	return out
}

func sortWords(words [][]symtab.Symbol) {
	less := func(a, b []symtab.Symbol) bool {
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	// insertion-style sort via stdlib
	for i := 1; i < len(words); i++ {
		for j := i; j > 0 && less(words[j], words[j-1]); j-- {
			words[j], words[j-1] = words[j-1], words[j]
		}
	}
}

// liveStates marks states from which an accepting state is reachable.
func (d *DFA) liveStates() []bool {
	n := d.NumStates()
	// Build reverse adjacency.
	radj := make([][]int, n)
	for s := 0; s < n; s++ {
		for k := range d.syms {
			t := d.Trans[s][k]
			radj[t] = append(radj[t], s)
		}
	}
	live := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			live[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[s] {
			if !live[p] {
				live[p] = true
				stack = append(stack, p)
			}
		}
	}
	return live
}

// Sample returns a uniformly-shaped random member of L(d) with length ≤
// maxLen (uniform over a random target length among the feasible lengths,
// then uniform over words of that length), or ok=false when no member of
// length ≤ maxLen exists. Deterministic given rng's state.
func (d *DFA) Sample(maxLen int, rng *rand.Rand) (word []symtab.Symbol, ok bool) {
	// count[l][s] = number of words of length exactly l accepted from s.
	n := d.NumStates()
	counts := make([][]float64, maxLen+1)
	counts[0] = make([]float64, n)
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			counts[0][s] = 1
		}
	}
	for l := 1; l <= maxLen; l++ {
		counts[l] = make([]float64, n)
		for s := 0; s < n; s++ {
			var c float64
			for k := range d.syms {
				c += counts[l-1][d.Trans[s][k]]
			}
			counts[l][s] = c
		}
	}
	var feasible []int
	for l := 0; l <= maxLen; l++ {
		if counts[l][d.Start] > 0 {
			feasible = append(feasible, l)
		}
	}
	if len(feasible) == 0 {
		return nil, false
	}
	length := feasible[rng.Intn(len(feasible))]
	state := d.Start
	for rem := length; rem > 0; rem-- {
		// Choose the next symbol weighted by downstream counts.
		total := counts[rem][state]
		x := rng.Float64() * total
		for k, sym := range d.syms {
			c := counts[rem-1][d.Trans[state][k]]
			if x < c || k == len(d.syms)-1 && c > 0 {
				word = append(word, sym)
				state = d.Trans[state][k]
				break
			}
			x -= c
		}
	}
	return word, true
}

// CountWords returns the number of accepted words of length exactly n
// (as float64; exact for counts below 2^53).
func (d *DFA) CountWords(n int) float64 {
	cur := make([]float64, d.NumStates())
	for s := range cur {
		if d.Accept[s] {
			cur[s] = 1
		}
	}
	for l := 0; l < n; l++ {
		next := make([]float64, d.NumStates())
		for s := 0; s < d.NumStates(); s++ {
			var c float64
			for k := range d.syms {
				c += cur[d.Trans[s][k]]
			}
			next[s] = c
		}
		cur = next
	}
	return cur[d.Start]
}

// pairEdge is one product-graph transition used by the quotient
// constructions: ε-moves advance one side, symbol moves advance both.
type pairState struct{ x, y int }

// productReach runs a forward BFS over the ε-aware pair graph of a and b
// from the given start pairs and returns the reached set.
func productReach(a, b *NFA, starts []pairState) map[pairState]bool {
	seen := make(map[pairState]bool, len(starts))
	var queue []pairState
	push := func(p pairState) {
		if !seen[p] {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for _, p := range starts {
		push(p)
	}
	sigma := a.Sigma.Union(b.Sigma).Symbols()
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		for _, t := range a.Eps[p.x] {
			push(pairState{t, p.y})
		}
		for _, t := range b.Eps[p.y] {
			push(pairState{p.x, t})
		}
		for _, sym := range sigma {
			for _, ea := range a.Edges[p.x] {
				if !ea.On.Contains(sym) {
					continue
				}
				for _, eb := range b.Edges[p.y] {
					if eb.On.Contains(sym) {
						push(pairState{ea.To, eb.To})
					}
				}
			}
		}
	}
	return seen
}

// LeftQuotient returns an NFA for by\a = { α | ∃β ∈ L(by), β·α ∈ L(a) }
// (Definition 5.1, prefix factoring). The construction is polynomial: a
// forward pair reachability marks every a-state reachable under some word of
// L(by); those states become the start set.
func LeftQuotient(a, by *NFA) *NFA {
	var starts []pairState
	for _, sb := range by.Start {
		for _, sa := range a.Start {
			starts = append(starts, pairState{sa, sb})
		}
	}
	reached := productReach(a, by, starts)
	out := a.Clone()
	out.Start = nil
	startSet := map[int]bool{}
	for p := range reached {
		if by.Accept[p.y] && !startSet[p.x] {
			startSet[p.x] = true
			out.Start = append(out.Start, p.x)
		}
	}
	return out
}

// RightQuotient returns an NFA for a/by = { α | ∃β ∈ L(by), α·β ∈ L(a) }
// (Definition 5.1, suffix factoring). Implemented as a backward pair
// co-reachability: an a-state becomes accepting iff some word of L(by) leads
// from it to an accepting a-state.
func RightQuotient(a, by *NFA) *NFA {
	ra, rby := a.Reverse(), by.Reverse()
	var starts []pairState
	for _, sb := range rby.Start {
		for _, sa := range ra.Start {
			starts = append(starts, pairState{sa, sb})
		}
	}
	reached := productReach(ra, rby, starts)
	out := a.Clone()
	for s := range out.Accept {
		out.Accept[s] = false
	}
	for p := range reached {
		if rby.Accept[p.y] { // p.y accepting in reversed by ⇔ start of by reaches here
			out.Accept[p.x] = true
		}
	}
	return out
}
