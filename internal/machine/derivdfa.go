package machine

import (
	"fmt"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// DeterminizeDerivatives builds a complete DFA for the expression directly
// by Brzozowski derivatives: states are derivative expressions identified up
// to the constructors' normalization plus canonical union ordering
// (rx.Fingerprint). This is the third DFA construction in the library
// (after subset construction over Thompson NFAs and Brzozowski's
// double-reversal minimization) and is cross-checked against both in the
// test suite.
//
// Unlike Thompson compilation, extended operators (∩, −, ¬) cost nothing
// extra here. Termination holds because derivatives are finite modulo ACI
// of union; the state budget still guards the construction, since the ACI
// quotient implemented by fingerprinting is coarser than language equality
// and can pass through more states than the minimal DFA has.
func DeterminizeDerivatives(n *rx.Node, sigma symtab.Alphabet, opt Options) (*DFA, error) {
	if !n.Symbols().SubsetOf(sigma) {
		return nil, fmt.Errorf("machine: expression mentions symbols outside Σ")
	}
	limit := opt.limit()
	d := newDFA(sigma)
	type state struct {
		expr *rx.Node
		id   int
	}
	index := map[string]int{}
	var queue []state
	add := func(e *rx.Node) (int, error) {
		key := rx.Fingerprint(e)
		if id, ok := index[key]; ok {
			return id, nil
		}
		if len(index) >= limit {
			return 0, fmt.Errorf("%w: derivative construction needs > %d states", ErrBudget, limit)
		}
		id := d.addState(rx.Nullable(e))
		index[key] = id
		queue = append(queue, state{expr: e, id: id})
		return id, nil
	}
	start, err := add(n)
	if err != nil {
		return nil, err
	}
	d.Start = start
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi]
		for k, sym := range d.syms {
			id, err := add(rx.Derive(st.expr, sym, sigma))
			if err != nil {
				return nil, err
			}
			d.Trans[st.id][k] = id
		}
	}
	return d, nil
}
