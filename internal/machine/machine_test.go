package machine

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// testEnv bundles a table, three symbols and their alphabet.
type testEnv struct {
	tab     *symtab.Table
	p, q, r symtab.Symbol
	sigma   symtab.Alphabet
}

func env3() testEnv {
	tab := symtab.NewTable()
	p, q, r := tab.Intern("p"), tab.Intern("q"), tab.Intern("r")
	return testEnv{tab, p, q, r, symtab.NewAlphabet(p, q, r)}
}

func (e testEnv) parse(t *testing.T, src string) *rx.Node {
	t.Helper()
	n, err := rx.Parse(src, e.tab, e.sigma)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return n
}

func (e testEnv) dfa(t *testing.T, src string) *DFA {
	t.Helper()
	n := e.parse(t, src)
	nfa, err := Compile(n, e.sigma, Options{})
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	d, err := Determinize(nfa, Options{})
	if err != nil {
		t.Fatalf("determinize %q: %v", src, err)
	}
	return Minimize(d)
}

func (e testEnv) word(t *testing.T, src string) []symtab.Symbol {
	t.Helper()
	w, err := rx.ParseWord(src, e.tab)
	if err != nil {
		t.Fatalf("word %q: %v", src, err)
	}
	return w
}

func TestNFAAccepts(t *testing.T) {
	e := env3()
	cases := []struct {
		expr   string
		accept []string
		reject []string
	}{
		{"p", []string{"p"}, []string{"", "q", "p p"}},
		{"p*", []string{"", "p", "p p p"}, []string{"q", "p q"}},
		{"p | q", []string{"p", "q"}, []string{"", "r", "p q"}},
		{"(p q)*", []string{"", "p q", "p q p q"}, []string{"p", "q p"}},
		{"p+ q?", []string{"p", "p q", "p p"}, []string{"", "q", "p q q"}},
		{"#eps", []string{""}, []string{"p"}},
		{"#empty", nil, []string{"", "p"}},
		{"[^ p]*", []string{"", "q r q"}, []string{"p", "q p"}},
		{". . .", []string{"p q r", "r r r"}, []string{"", "p q"}},
	}
	for _, c := range cases {
		nfa := MustCompile(e.parse(t, c.expr), e.sigma)
		for _, w := range c.accept {
			if !nfa.Accepts(e.word(t, w)) {
				t.Errorf("%q should accept %q", c.expr, w)
			}
		}
		for _, w := range c.reject {
			if nfa.Accepts(e.word(t, w)) {
				t.Errorf("%q should reject %q", c.expr, w)
			}
		}
	}
}

func TestDFAMatchesNFA(t *testing.T) {
	e := env3()
	exprs := []string{
		"p", "p*", "p | q r", "(p q)* r?", "p+ (q | r)*", "#eps", "#empty",
		"(p | q)* p (p | q)", "[^ p]* p [^ p]*",
	}
	for _, src := range exprs {
		nfa := MustCompile(e.parse(t, src), e.sigma)
		d, err := Determinize(nfa, Options{})
		if err != nil {
			t.Fatalf("determinize %q: %v", src, err)
		}
		m := Minimize(d)
		for _, w := range allWords(e.sigma, 4) {
			want := nfa.Accepts(w)
			if got := d.Accepts(w); got != want {
				t.Errorf("%q: DFA(%v) = %v, NFA = %v", src, e.tab.String(w), got, want)
			}
			if got := m.Accepts(w); got != want {
				t.Errorf("%q: minDFA(%v) = %v, NFA = %v", src, e.tab.String(w), got, want)
			}
		}
	}
}

// allWords enumerates Σ^≤maxLen.
func allWords(sigma symtab.Alphabet, maxLen int) [][]symtab.Symbol {
	syms := sigma.Symbols()
	out := [][]symtab.Symbol{nil}
	prev := [][]symtab.Symbol{nil}
	for l := 0; l < maxLen; l++ {
		var next [][]symtab.Symbol
		for _, w := range prev {
			for _, s := range syms {
				nw := append(append([]symtab.Symbol(nil), w...), s)
				next = append(next, nw)
			}
		}
		out = append(out, next...)
		prev = next
	}
	return out
}

func TestExtendedOps(t *testing.T) {
	e := env3()
	cases := []struct {
		expr   string
		accept []string
		reject []string
	}{
		{"(p | q)* & (q | r)*", []string{"", "q q"}, []string{"p", "r"}},
		{".* - p*", []string{"q", "p q"}, []string{"", "p", "p p"}},
		{"!p*", []string{"q", "p q"}, []string{"", "p p"}},
		{"!(#empty)", []string{"", "p", "q r"}, nil},
		{"p* - #eps", []string{"p", "p p"}, []string{"", "q"}},
	}
	for _, c := range cases {
		nfa, err := Compile(e.parse(t, c.expr), e.sigma, Options{})
		if err != nil {
			t.Fatalf("compile %q: %v", c.expr, err)
		}
		for _, w := range c.accept {
			if !nfa.Accepts(e.word(t, w)) {
				t.Errorf("%q should accept %q", c.expr, w)
			}
		}
		for _, w := range c.reject {
			if nfa.Accepts(e.word(t, w)) {
				t.Errorf("%q should reject %q", c.expr, w)
			}
		}
	}
}

func TestCompileRejectsForeignSymbols(t *testing.T) {
	e := env3()
	s := e.tab.Intern("outside")
	if _, err := Compile(rx.Sym(s), e.sigma, Options{}); err == nil {
		t.Error("Compile with symbol outside Σ succeeded")
	}
}

func TestMinimizeCanonical(t *testing.T) {
	e := env3()
	// Two syntactically different expressions of the same language must
	// minimize to structurally identical DFAs.
	pairs := [][2]string{
		{"p | p p", "p p?"},
		{"(p | q)*", "(p* q*)*"},
		{"p* p*", "p*"},
		{"(p q | p r)", "p (q | r)"},
	}
	for _, pr := range pairs {
		a, b := e.dfa(t, pr[0]), e.dfa(t, pr[1])
		if !StructurallyEqual(a, b) {
			t.Errorf("canonical minimal DFAs differ for %q vs %q (%d vs %d states)",
				pr[0], pr[1], a.NumStates(), b.NumStates())
		}
	}
}

func TestMinimizeStateCounts(t *testing.T) {
	e := env3()
	cases := []struct {
		expr string
		want int
	}{
		{".*", 1},
		{"#empty", 1},
		{"#eps", 2},
		{"p", 3}, // start, accept, dead
		{"p*", 2},
	}
	for _, c := range cases {
		d := e.dfa(t, c.expr)
		if d.NumStates() != c.want {
			t.Errorf("minimal states of %q = %d, want %d", c.expr, d.NumStates(), c.want)
		}
	}
}

func TestEmptinessUniversality(t *testing.T) {
	e := env3()
	if !e.dfa(t, "#empty").IsEmpty() {
		t.Error("#empty not empty")
	}
	if e.dfa(t, "#eps").IsEmpty() {
		t.Error("#eps empty")
	}
	if !e.dfa(t, ".*").IsUniversal() {
		t.Error(".* not universal")
	}
	if e.dfa(t, "[^ p]*").IsUniversal() {
		t.Error("[^ p]* universal")
	}
	if !e.dfa(t, "p* | !p*").IsUniversal() {
		t.Error("p* | !p* not universal")
	}
}

func TestEquivalenceAndSubset(t *testing.T) {
	e := env3()
	a := e.dfa(t, "(p | q)*")
	b := e.dfa(t, "(p* q*)*")
	c := e.dfa(t, "p*")
	eq, err := Equivalent(a, b, Options{})
	if err != nil || !eq {
		t.Errorf("Equivalent = %v, %v", eq, err)
	}
	eq, err = Equivalent(a, c, Options{})
	if err != nil || eq {
		t.Errorf("Equivalent(a,c) = %v, %v", eq, err)
	}
	sub, err := Subset(c, a, Options{})
	if err != nil || !sub {
		t.Errorf("Subset(p*, (p|q)*) = %v, %v", sub, err)
	}
	sub, err = Subset(a, c, Options{})
	if err != nil || sub {
		t.Errorf("Subset((p|q)*, p*) = %v, %v", sub, err)
	}
}

func TestWitnessAndCounterExample(t *testing.T) {
	e := env3()
	d := e.dfa(t, "p p q | p q")
	w, ok := d.Witness()
	if !ok || e.tab.String(w) != "p q" {
		t.Errorf("Witness = %q, %v; want shortest 'p q'", e.tab.String(w), ok)
	}
	if _, ok := e.dfa(t, "#empty").Witness(); ok {
		t.Error("empty language has witness")
	}
	a, b := e.dfa(t, "p*"), e.dfa(t, "p* | q")
	cw, ok, err := CounterExample(a, b, Options{})
	if err != nil || !ok || e.tab.String(cw) != "q" {
		t.Errorf("CounterExample = %q, %v, %v", e.tab.String(cw), ok, err)
	}
	if _, ok, _ := CounterExample(a, a, Options{}); ok {
		t.Error("CounterExample for equal languages")
	}
}

func TestEnumerate(t *testing.T) {
	e := env3()
	d := e.dfa(t, "p q*")
	got := d.Enumerate(3)
	want := []string{"p", "p q", "p q q"}
	if len(got) != len(want) {
		t.Fatalf("Enumerate = %d words, want %d", len(got), len(want))
	}
	for i, w := range got {
		if e.tab.String(w) != want[i] {
			t.Errorf("Enumerate[%d] = %q, want %q", i, e.tab.String(w), want[i])
		}
	}
	if n := len(e.dfa(t, ".*").Enumerate(2)); n != 1+3+9 {
		t.Errorf("Enumerate .* len<=2 = %d, want 13", n)
	}
}

func TestSample(t *testing.T) {
	e := env3()
	d := e.dfa(t, "p (q | r)* p")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		w, ok := d.Sample(8, rng)
		if !ok {
			t.Fatal("Sample failed on nonempty language")
		}
		if !d.Accepts(w) {
			t.Fatalf("Sample produced non-member %q", e.tab.String(w))
		}
	}
	if _, ok := e.dfa(t, "#empty").Sample(5, rng); ok {
		t.Error("Sample from empty language succeeded")
	}
	// Language whose shortest word exceeds maxLen.
	if _, ok := e.dfa(t, "p p p p").Sample(3, rng); ok {
		t.Error("Sample beyond maxLen succeeded")
	}
}

func TestCountWords(t *testing.T) {
	e := env3()
	d := e.dfa(t, ".*")
	if got := d.CountWords(3); got != 27 {
		t.Errorf("CountWords(3) of .* = %v, want 27", got)
	}
	d = e.dfa(t, "p q*")
	if got := d.CountWords(0); got != 0 {
		t.Errorf("CountWords(0) = %v", got)
	}
	if got := d.CountWords(4); got != 1 {
		t.Errorf("CountWords(4) = %v", got)
	}
}

func TestReverse(t *testing.T) {
	e := env3()
	nfa := MustCompile(e.parse(t, "p q r*"), e.sigma)
	rev := nfa.Reverse()
	for _, w := range allWords(e.sigma, 4) {
		rw := make([]symtab.Symbol, len(w))
		for i := range w {
			rw[len(w)-1-i] = w[i]
		}
		if nfa.Accepts(w) != rev.Accepts(rw) {
			t.Errorf("Reverse mismatch on %q", e.tab.String(w))
		}
	}
}

func TestBudgetExceeded(t *testing.T) {
	e := env3()
	// (p|q)* p (p|q)^12 needs 2^13 DFA states.
	src := "(p | q)* p"
	for i := 0; i < 12; i++ {
		src += " (p | q)"
	}
	nfa := MustCompile(e.parse(t, src), symtab.NewAlphabet(e.p, e.q))
	_, err := Determinize(nfa, Options{MaxStates: 100})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("Determinize err = %v, want ErrBudget", err)
	}
	if _, err := Determinize(nfa, Options{MaxStates: -1}); err != nil {
		t.Errorf("unlimited Determinize failed: %v", err)
	}
}

// TestPSPACEWitnessBlowup pins the exponential lower-bound family used by
// experiment E4: the minimal DFA of (p|q)* p (p|q)^n has 2^(n+1) states.
func TestPSPACEWitnessBlowup(t *testing.T) {
	e := env3()
	two := symtab.NewAlphabet(e.p, e.q)
	for n := 1; n <= 8; n++ {
		src := "(p | q)* p"
		for i := 0; i < n; i++ {
			src += " (p | q)"
		}
		nfa := MustCompile(e.parse(t, src), two)
		d, err := Determinize(nfa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := Minimize(d)
		if want := 1 << (n + 1); m.NumStates() != want {
			t.Errorf("n=%d: minimal DFA has %d states, want %d", n, m.NumStates(), want)
		}
	}
}

func TestQuotientsAgainstDefinition(t *testing.T) {
	e := env3()
	cases := []struct{ a, by string }{
		{"p q r", "p"},
		{"p q r", "p q"},
		{"(p q)*", "p"},
		{"(p q)* r", "(p q)*"},
		{"p* q p*", "p*"},
		{".* p .*", ".* p"},
		{"p | p p | q", "#eps"},
		{"p q", "r"}, // empty factor
	}
	for _, c := range cases {
		na := MustCompile(e.parse(t, c.a), e.sigma)
		nby := MustCompile(e.parse(t, c.by), e.sigma)
		left := LeftQuotient(na, nby)
		right := RightQuotient(na, nby)
		// Definitional oracle over short words.
		for _, alpha := range allWords(e.sigma, 3) {
			wantLeft, wantRight := false, false
			for _, beta := range allWords(e.sigma, 4) {
				if nby.Accepts(beta) {
					if na.Accepts(append(append([]symtab.Symbol(nil), beta...), alpha...)) {
						wantLeft = true
					}
					if na.Accepts(append(append([]symtab.Symbol(nil), alpha...), beta...)) {
						wantRight = true
					}
				}
			}
			if got := left.Accepts(alpha); got != wantLeft {
				t.Errorf("(%q \\ %q) on %q = %v, oracle %v", c.by, c.a, e.tab.String(alpha), got, wantLeft)
			}
			if got := right.Accepts(alpha); got != wantRight {
				t.Errorf("(%q / %q) on %q = %v, oracle %v", c.a, c.by, e.tab.String(alpha), got, wantRight)
			}
		}
	}
}

func TestToRegexRoundTrip(t *testing.T) {
	e := env3()
	exprs := []string{
		"p", "p*", "p | q r", "(p q)* r?", "p+ (q | r)*",
		"#eps", "#empty", "(p | q)* p", "[^ p]* p .*",
		"(q p)* ([^ p] | #eps)",
	}
	for _, src := range exprs {
		d := e.dfa(t, src)
		back := ToRegex(d)
		nfa, err := Compile(back, e.sigma, Options{})
		if err != nil {
			t.Fatalf("compile ToRegex(%q): %v", src, err)
		}
		d2, err := Determinize(nfa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		eq, err := Equivalent(d, Minimize(d2), Options{})
		if err != nil || !eq {
			t.Errorf("ToRegex(%q) = %q not equivalent (err=%v)", src, rx.Print(back, e.tab), err)
		}
	}
}

func TestFromWordAndWordsNFA(t *testing.T) {
	e := env3()
	w := e.word(t, "p q p")
	nfa := FromWord(w, e.sigma)
	if !nfa.Accepts(w) {
		t.Error("FromWord rejects its word")
	}
	if nfa.Accepts(e.word(t, "p q")) || nfa.Accepts(e.word(t, "p q p p")) {
		t.Error("FromWord accepts other words")
	}
	words := [][]symtab.Symbol{e.word(t, "p"), e.word(t, "q r"), nil}
	m := WordsNFA(words, e.sigma)
	for _, w := range words {
		if !m.Accepts(w) {
			t.Errorf("WordsNFA rejects %q", e.tab.String(w))
		}
	}
	if m.Accepts(e.word(t, "q")) {
		t.Error("WordsNFA accepts non-member")
	}
}

func TestConcatUnionNFA(t *testing.T) {
	e := env3()
	a := MustCompile(e.parse(t, "p | p q"), e.sigma)
	b := MustCompile(e.parse(t, "q*"), e.sigma)
	cat := ConcatNFA(a, b)
	for _, w := range allWords(e.sigma, 4) {
		want := false
		for cut := 0; cut <= len(w); cut++ {
			if a.Accepts(w[:cut]) && b.Accepts(w[cut:]) {
				want = true
				break
			}
		}
		if got := cat.Accepts(w); got != want {
			t.Errorf("ConcatNFA on %q = %v, want %v", e.tab.String(w), got, want)
		}
	}
	un := UnionNFA(a, b)
	for _, w := range allWords(e.sigma, 4) {
		want := a.Accepts(w) || b.Accepts(w)
		if got := un.Accepts(w); got != want {
			t.Errorf("UnionNFA on %q = %v, want %v", e.tab.String(w), got, want)
		}
	}
}

func TestFromDFA(t *testing.T) {
	e := env3()
	d := e.dfa(t, "(p q | r)* p?")
	n := FromDFA(d)
	for _, w := range allWords(e.sigma, 4) {
		if d.Accepts(w) != n.Accepts(w) {
			t.Errorf("FromDFA mismatch on %q", e.tab.String(w))
		}
	}
}

func TestProductAlphabetMismatch(t *testing.T) {
	e := env3()
	a := e.dfa(t, "p")
	other := symtab.NewAlphabet(e.p, e.q)
	nfa := MustCompile(rx.Sym(e.p), other)
	b, err := Determinize(nfa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Product(a, b, func(x, y bool) bool { return x && y }, Options{}); err == nil {
		t.Error("Product over distinct alphabets succeeded")
	}
}

func TestDOTOutput(t *testing.T) {
	e := env3()
	d := e.dfa(t, "q p")
	dot := d.DOT(e.tab, "test")
	for _, want := range []string{"digraph \"test\"", "doublecircle", "start ->", "label=\"q\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("DFA DOT missing %q:\n%s", want, dot)
		}
	}
	nfa := MustCompile(e.parse(t, "q p | r*"), e.sigma)
	ndot := nfa.DOT(e.tab, "n")
	for _, want := range []string{"digraph \"n\"", "ε"} {
		if !strings.Contains(ndot, want) {
			t.Errorf("NFA DOT missing %q", want)
		}
	}
}

// CountWords must agree with brute-force enumeration per length.
func TestCountWordsMatchesEnumerate(t *testing.T) {
	e := env3()
	for _, src := range []string{"p q*", "(p | q)*", "p? q? r?", "#empty", ".* p"} {
		d := e.dfa(t, src)
		words := d.Enumerate(5)
		perLen := map[int]int{}
		for _, w := range words {
			perLen[len(w)]++
		}
		for n := 0; n <= 5; n++ {
			if got := int(d.CountWords(n)); got != perLen[n] {
				t.Errorf("%q: CountWords(%d) = %d, enumerate says %d", src, n, got, perLen[n])
			}
		}
	}
}

// Sample never exceeds maxLen and covers every feasible length eventually.
func TestSampleLengths(t *testing.T) {
	e := env3()
	d := e.dfa(t, "p q* p")
	rng := rand.New(rand.NewSource(99))
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		w, ok := d.Sample(6, rng)
		if !ok {
			t.Fatal("sample failed")
		}
		if len(w) > 6 {
			t.Fatalf("sample length %d > 6", len(w))
		}
		seen[len(w)] = true
	}
	// Feasible lengths are 2..6; all should appear in 500 draws.
	for n := 2; n <= 6; n++ {
		if !seen[n] {
			t.Errorf("length %d never sampled", n)
		}
	}
}

// Witness returns a SHORTEST accepted word.
func TestWitnessIsShortest(t *testing.T) {
	e := env3()
	for _, c := range []struct {
		src string
		n   int
	}{
		{"p p p | q q", 2},
		{"(p q)+", 2},
		{".* p .* p .*", 2},
		{"#eps | p", 0},
	} {
		d := e.dfa(t, c.src)
		w, ok := d.Witness()
		if !ok || len(w) != c.n {
			t.Errorf("%q: witness %q (len %d), want len %d", c.src, e.tab.String(w), len(w), c.n)
		}
	}
}

func TestProductBudget(t *testing.T) {
	e := env3()
	a := e.dfa(t, "(p | q)* p (p | q) (p | q) (p | q) (p | q)")
	b := e.dfa(t, "(p | q) (p | q) (p | q) (p | q) p (p | q)*")
	if _, err := Product(a, b, func(x, y bool) bool { return x && y }, Options{MaxStates: 4}); !errors.Is(err, ErrBudget) {
		t.Errorf("Product budget not enforced: %v", err)
	}
}
