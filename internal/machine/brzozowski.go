package machine

// MinimizeBrzozowski minimizes by double reversal: determinizing the
// reversal of a DFA yields the minimal DFA of the reverse language
// (Brzozowski's theorem), so doing it twice minimizes the original. It is
// worst-case exponential in the middle step — unlike Hopcroft's algorithm —
// and exists here as an independent oracle for cross-checking Minimize in
// the test suite.
func MinimizeBrzozowski(d *DFA, opt Options) (_ *DFA, err error) {
	opt, ph := beginPhase(opt, "machine.minimize_brzozowski")
	defer func() { endPhase(ph, err) }()
	rev := FromDFA(d).Reverse()
	mid, err := Determinize(rev, opt)
	if err != nil {
		return nil, err
	}
	back := FromDFA(mid).Reverse()
	out, err := Determinize(back, opt)
	if err != nil {
		return nil, err
	}
	// Determinize can leave a dead sink plus non-canonical numbering; trim
	// and renumber so results are comparable to Minimize's output.
	// Brzozowski guarantees the reachable part is minimal already, so this
	// is relabeling, not state merging — asserting that is exactly what the
	// cross-check tests do (via StructurallyEqual against Minimize).
	return out.trim().canonicalize(), nil
}
