package machine

import (
	"math/rand"
	"testing"

	"resilex/internal/rx"
)

// Hopcroft and Brzozowski must agree everywhere: two independent
// minimization algorithms over the same canonical numbering.
func TestBrzozowskiAgreesWithHopcroft(t *testing.T) {
	e := env3()
	exprs := []string{
		"p", "p*", "#eps", "#empty", ".*",
		"p | q r", "(p q)* r?", "p+ (q | r)*",
		"(p | q)* p (p | q)", "[^ p]* p .*",
		"(q p)* ([^ p] | #eps)", "(p p)* | q",
	}
	for _, src := range exprs {
		nfa := MustCompile(e.parse(t, src), e.sigma)
		d, err := Determinize(nfa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hop := Minimize(d)
		brz, err := MinimizeBrzozowski(d, Options{})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !StructurallyEqual(hop, brz) {
			t.Errorf("%q: Hopcroft (%d states) and Brzozowski (%d states) disagree",
				src, hop.NumStates(), brz.NumStates())
		}
	}
}

func TestBrzozowskiRandom(t *testing.T) {
	e := env3()
	rng := rand.New(rand.NewSource(77))
	syms := e.sigma.Symbols()
	var gen func(d int) *rx.Node
	gen = func(d int) *rx.Node {
		if d <= 0 {
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
		switch rng.Intn(6) {
		case 0, 1:
			return rx.Concat(gen(d-1), gen(d-1))
		case 2:
			return rx.Union(gen(d-1), gen(d-1))
		case 3:
			return rx.Star(gen(d - 1))
		case 4:
			return rx.Opt(gen(d - 1))
		default:
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
	}
	for i := 0; i < 100; i++ {
		n := gen(4)
		nfa := MustCompile(n, e.sigma)
		d, err := Determinize(nfa, Options{})
		if err != nil {
			t.Fatal(err)
		}
		hop := Minimize(d)
		brz, err := MinimizeBrzozowski(d, Options{MaxStates: 1 << 16})
		if err != nil {
			continue // Brzozowski's middle step may blow up; that's expected
		}
		if !StructurallyEqual(hop, brz) {
			t.Fatalf("disagreement on random expression #%d (%d vs %d states)",
				i, hop.NumStates(), brz.NumStates())
		}
	}
}

// Simplify must preserve the language exactly (it lives in rx, which cannot
// depend on this package, so the semantic check happens here).
func TestSimplifyPreservesLanguage(t *testing.T) {
	e := env3()
	rng := rand.New(rand.NewSource(13))
	syms := e.sigma.Symbols()
	var gen func(d int) *rx.Node
	gen = func(d int) *rx.Node {
		if d <= 0 {
			if rng.Intn(4) == 0 {
				return rx.Epsilon()
			}
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
		switch rng.Intn(8) {
		case 0, 1, 2:
			return rx.Concat(gen(d-1), gen(d-1), gen(d-1))
		case 3, 4:
			return rx.Union(gen(d-1), gen(d-1))
		case 5:
			return rx.Star(gen(d - 1))
		case 6:
			return rx.Opt(gen(d - 1))
		default:
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
	}
	for i := 0; i < 400; i++ {
		n := gen(4)
		s := rx.Simplify(n)
		a, err := Determinize(MustCompile(n, e.sigma), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Determinize(MustCompile(s, e.sigma), Options{})
		if err != nil {
			t.Fatal(err)
		}
		eq, err := Equivalent(a, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("Simplify changed the language of %s (became %s)",
				rx.Print(n, e.tab), rx.Print(s, e.tab))
		}
	}
}
