package machine

import (
	"sort"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// ToRegex converts a DFA into an equivalent regular-expression AST via
// state elimination (the GNFA construction of Brzozowski–McCluskey). Dead
// states are dropped first and elimination order is chosen greedily by
// in-degree × out-degree, which keeps the output small on the automata this
// library produces. Parallel symbol edges merge into symbol classes through
// the rx.Union constructor, recovering the paper's (Σ−p)-style classes.
//
// Minimizing the DFA before conversion generally yields much smaller
// expressions.
func ToRegex(d *DFA) *rx.Node {
	live := d.liveStates()
	if !live[d.Start] {
		return rx.Empty()
	}
	// GNFA over live states plus super-start (-1) and super-accept (-2),
	// with edge labels as regex ASTs. labels[from][to].
	type key struct{ from, to int }
	labels := map[key]*rx.Node{}
	get := func(from, to int) *rx.Node {
		if l, ok := labels[key{from, to}]; ok {
			return l
		}
		return rx.Empty()
	}
	set := func(from, to int, l *rx.Node) {
		if l.Op == rx.OpEmpty {
			delete(labels, key{from, to})
			return
		}
		labels[key{from, to}] = l
	}
	var states []int
	for s := 0; s < d.NumStates(); s++ {
		if !live[s] {
			continue
		}
		states = append(states, s)
		for k, sym := range d.syms {
			t := d.Trans[s][k]
			if live[t] {
				set(s, t, rx.Union(get(s, t), rx.Sym(sym)))
			}
		}
		if d.Accept[s] {
			set(s, -2, rx.Epsilon())
		}
	}
	set(-1, d.Start, rx.Epsilon())

	remaining := map[int]bool{}
	for _, s := range states {
		remaining[s] = true
	}
	nodesOf := func() []int {
		out := []int{-1, -2}
		for s := range remaining {
			out = append(out, s)
		}
		return out
	}
	for len(remaining) > 0 {
		// Pick the state with the fewest in×out connections (self-loop
		// excluded) to keep intermediate expressions small.
		all := nodesOf()
		var candidates []int
		for s := range remaining {
			candidates = append(candidates, s)
		}
		sort.Ints(candidates)
		best, bestCost := -3, int(^uint(0)>>1)
		for _, s := range candidates {
			in, out := 0, 0
			for _, o := range all {
				if o == s {
					continue
				}
				if _, ok := labels[key{o, s}]; ok {
					in++
				}
				if _, ok := labels[key{s, o}]; ok {
					out++
				}
			}
			if cost := in * out; cost < bestCost {
				best, bestCost = s, cost
			}
		}
		s := best
		delete(remaining, s)
		loop := rx.Star(get(s, s))
		delete(labels, key{s, s})
		var ins, outs []key
		for k := range labels {
			if k.to == s && k.from != s {
				ins = append(ins, k)
			}
			if k.from == s && k.to != s {
				outs = append(outs, k)
			}
		}
		// Deterministic output: map iteration order must not leak into the
		// shape of the generated expression.
		sort.Slice(ins, func(i, j int) bool { return ins[i].from < ins[j].from })
		sort.Slice(outs, func(i, j int) bool { return outs[i].to < outs[j].to })
		for _, ik := range ins {
			for _, ok := range outs {
				through := rx.Concat(labels[ik], loop, labels[ok])
				set(ik.from, ok.to, rx.Union(get(ik.from, ok.to), through))
			}
		}
		for _, ik := range ins {
			delete(labels, ik)
		}
		for _, ok := range outs {
			delete(labels, ok)
		}
	}
	return get(-1, -2)
}

// WordsNFA builds an NFA accepting exactly the given finite set of words.
func WordsNFA(words [][]symtab.Symbol, sigma symtab.Alphabet) *NFA {
	out := newNFA(sigma, 1)
	out.Start = []int{0}
	for _, w := range words {
		cur := 0
		for _, sym := range w {
			next := out.addState()
			out.addEdge(cur, symtab.NewAlphabet(sym), next)
			cur = next
		}
		out.Accept[cur] = true
	}
	return out
}
