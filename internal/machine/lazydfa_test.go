package machine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// lazyEquivCases are the regexes the lazy/eager agreement tests sweep; they
// cover every operator the compiler emits, including the extended ones.
var lazyEquivCases = []string{
	"#empty",
	"#eps",
	"p",
	"p q r",
	"p | q",
	"(p | q)* p",
	"[^ p]* p [^ p]*",
	"(p q)+ r?",
	"(p | q)* p (p | q) (p | q)", // PSPACE witness shape, n=2
	"(p q | q p)* r",
	"(p | q)* - (q p*)",
	"(p | q)* & (q | p q)*",
	"!(p q)*",
}

func enumWords(sigma []symtab.Symbol, maxLen int) [][]symtab.Symbol {
	out := [][]symtab.Symbol{nil}
	frontier := [][]symtab.Symbol{nil}
	for l := 0; l < maxLen; l++ {
		var next [][]symtab.Symbol
		for _, w := range frontier {
			for _, s := range sigma {
				ext := append(append([]symtab.Symbol(nil), w...), s)
				next = append(next, ext)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

// TestLazyEagerEquivalence checks that the lazy subset construction accepts
// exactly the words the eager Determinize+Minimize pipeline accepts, over
// every word up to length 5 plus a random batch of longer ones.
func TestLazyEagerEquivalence(t *testing.T) {
	for _, src := range lazyEquivCases {
		src := src
		t.Run(src, func(t *testing.T) {
			tab := symtab.NewTable()
			sigma := symtab.NewAlphabet(tab.InternAll("p", "q", "r")...)
			ast, err := rx.Parse(src, tab, sigma)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			nfa, err := Compile(ast, sigma, Options{})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			eager := Minimize(mustDeterminize(t, nfa))
			lazy := NewLazy(nfa, Options{})
			words := enumWords(sigma.Symbols(), 5)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 50; i++ {
				w := make([]symtab.Symbol, 6+rng.Intn(20))
				for j := range w {
					w[j] = sigma.Symbols()[rng.Intn(sigma.Len())]
				}
				words = append(words, w)
			}
			for _, w := range words {
				got, err := lazy.Accepts(w)
				if err != nil {
					t.Fatalf("lazy.Accepts(%v): %v", w, err)
				}
				if want := eager.Accepts(w); got != want {
					t.Fatalf("lazy=%v eager=%v on %v", got, want, w)
				}
			}
			if lm, em := lazy.NumStates(), eager.NumStates(); lm > 1<<12 || em > 1<<12 {
				t.Fatalf("state explosion: lazy=%d eager=%d", lm, em)
			}
		})
	}
}

// TestLazyMaterializesOnDemand pins the headline property: on the PSPACE
// witness family — whose eager DFA must have 2^(n+1) states — matching one
// document materializes only the states that document visits.
func TestLazyMaterializesOnDemand(t *testing.T) {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)
	n := 12
	parts := []*rx.Node{rx.Star(rx.Class(sigma)), rx.Sym(p)}
	for i := 0; i < n; i++ {
		parts = append(parts, rx.Class(sigma))
	}
	nfa, err := Compile(rx.Concat(parts...), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lazy := NewLazy(nfa, Options{})
	word := make([]symtab.Symbol, 200)
	for i := range word {
		word[i] = q
	}
	word[50] = p
	if ok, err := lazy.Accepts(word); err != nil || ok {
		t.Fatalf("Accepts = %v, %v; want false (p too far from the end)", ok, err)
	}
	eagerStates := 1 << (n + 1) // Lemma 5.9
	if got := lazy.NumStates(); got >= eagerStates/4 {
		t.Fatalf("lazy materialized %d states; eager needs %d — laziness lost", got, eagerStates)
	}
}

// TestLazyBudget checks the MaxStates bound fails with ErrBudget instead of
// materializing past it, again on the PSPACE witness.
func TestLazyBudget(t *testing.T) {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)
	parts := []*rx.Node{rx.Star(rx.Class(sigma)), rx.Sym(p)}
	for i := 0; i < 10; i++ {
		parts = append(parts, rx.Class(sigma))
	}
	nfa, err := Compile(rx.Concat(parts...), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lazy := NewLazy(nfa, Options{MaxStates: 8})
	// Drive enough distinct p/q patterns to exhaust 8 subset states.
	rng := rand.New(rand.NewSource(3))
	var budgetErr error
	for i := 0; i < 200 && budgetErr == nil; i++ {
		w := make([]symtab.Symbol, 20)
		for j := range w {
			w[j] = q
			if rng.Intn(2) == 0 {
				w[j] = p
			}
		}
		_, budgetErr = lazy.Accepts(w)
	}
	if !errors.Is(budgetErr, ErrBudget) {
		t.Fatalf("err = %v; want ErrBudget", budgetErr)
	}
	if got := lazy.NumStates(); got > 8 {
		t.Fatalf("materialized %d states past the budget of 8", got)
	}
}

// TestLazyDeadline checks an expired context surfaces as ErrDeadline on the
// first fresh materialization.
func TestLazyDeadline(t *testing.T) {
	tab := symtab.NewTable()
	p := tab.Intern("p")
	sigma := symtab.NewAlphabet(p)
	nfa, err := Compile(rx.Star(rx.Sym(p)), sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lazy := NewLazy(nfa, Options{Ctx: ctx})
	_, err = lazy.Accepts([]symtab.Symbol{p, p})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v; want ErrDeadline", err)
	}
}

// TestLazyConcurrent hammers one LazyDFA from many goroutines (run under
// -race by make race): memoization must stay consistent with the eager DFA.
func TestLazyConcurrent(t *testing.T) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll("p", "q", "r")...)
	ast, err := rx.Parse("(p q | q p)* r (p | q)*", tab, sigma)
	if err != nil {
		t.Fatal(err)
	}
	nfa, err := Compile(ast, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eager := Minimize(mustDeterminize(t, nfa))
	lazy := NewLazy(nfa, Options{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				w := make([]symtab.Symbol, rng.Intn(24))
				for j := range w {
					w[j] = sigma.Symbols()[rng.Intn(sigma.Len())]
				}
				got, err := lazy.Accepts(w)
				if err != nil {
					errs <- err.Error()
					return
				}
				if got != eager.Accepts(w) {
					errs <- "lazy/eager disagreement under concurrency"
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func mustDeterminize(t *testing.T, n *NFA) *DFA {
	t.Helper()
	d, err := Determinize(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// FuzzLazyEagerEquiv fuzzes (expression, word) pairs: whenever the
// expression compiles and the eager pipeline fits the budget, the lazy
// automaton must accept exactly the same word.
func FuzzLazyEagerEquiv(f *testing.F) {
	for _, c := range lazyEquivCases {
		f.Add(c, []byte{0, 1, 2, 0, 1})
	}
	f.Add("(p | q)* p (p | q)", []byte{0, 0, 1, 0})
	f.Fuzz(func(t *testing.T, src string, raw []byte) {
		tab := symtab.NewTable()
		sigma := symtab.NewAlphabet(tab.InternAll("p", "q", "r")...)
		ast, err := rx.Parse(src, tab, sigma)
		if err != nil {
			return
		}
		opt := Options{MaxStates: 1 << 12}
		nfa, err := Compile(ast, sigma, opt)
		if err != nil {
			return
		}
		d, err := Determinize(nfa, opt)
		if err != nil {
			return
		}
		eager := Minimize(d)
		lazy := NewLazy(nfa, opt)
		word := make([]symtab.Symbol, 0, len(raw))
		for _, b := range raw {
			word = append(word, sigma.Symbols()[int(b)%sigma.Len()])
		}
		got, err := lazy.Accepts(word)
		if err != nil {
			// The lazy run may hit the budget on inputs whose minimal DFA
			// fits it; only a budget error is acceptable here.
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("lazy.Accepts: %v", err)
			}
			return
		}
		if want := eager.Accepts(word); got != want {
			t.Fatalf("lazy=%v eager=%v on %q / %v", got, want, src, word)
		}
	})
}
