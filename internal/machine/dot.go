package machine

import (
	"fmt"
	"sort"
	"strings"

	"resilex/internal/symtab"
)

// DOT renders the DFA in Graphviz dot format for debugging and
// documentation. Parallel edges between the same pair of states are merged
// into one arrow labeled with the symbol set; an all-rejecting sink is
// rendered dashed to keep diagrams readable.
func (d *DFA) DOT(tab *symtab.Table, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	live := d.liveStates()
	for s := 0; s < d.NumStates(); s++ {
		attrs := []string{}
		if d.Accept[s] {
			attrs = append(attrs, "shape=doublecircle")
		}
		if !live[s] {
			attrs = append(attrs, "style=dashed")
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, "  %d [%s];\n", s, strings.Join(attrs, ","))
		}
	}
	fmt.Fprintf(&b, "  start [shape=point];\n  start -> %d;\n", d.Start)
	for s := 0; s < d.NumStates(); s++ {
		byTarget := map[int][]string{}
		for k, sym := range d.syms {
			t := d.Trans[s][k]
			byTarget[t] = append(byTarget[t], tab.Name(sym))
		}
		targets := make([]int, 0, len(byTarget))
		for t := range byTarget {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			if !live[t] && !live[s] {
				continue // dead-to-dead noise
			}
			fmt.Fprintf(&b, "  %d -> %d [label=%q];\n", s, t, strings.Join(byTarget[t], " "))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the NFA in Graphviz dot format; ε-transitions are labeled ε.
func (n *NFA) DOT(tab *symtab.Table, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for s := 0; s < n.NumStates(); s++ {
		if n.Accept[s] {
			fmt.Fprintf(&b, "  %d [shape=doublecircle];\n", s)
		}
	}
	b.WriteString("  start [shape=point];\n")
	for _, s := range n.Start {
		fmt.Fprintf(&b, "  start -> %d;\n", s)
	}
	for s := 0; s < n.NumStates(); s++ {
		for _, t := range n.Eps[s] {
			fmt.Fprintf(&b, "  %d -> %d [label=\"ε\"];\n", s, t)
		}
		for _, e := range n.Edges[s] {
			names := make([]string, 0, e.On.Len())
			for _, sym := range e.On.Symbols() {
				names = append(names, tab.Name(sym))
			}
			fmt.Fprintf(&b, "  %d -> %d [label=%q];\n", s, e.To, strings.Join(names, " "))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
