package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Defaults for NewTraceStore(0, 0): enough traces to hold the recent tail of
// a busy node, bounded hard so a trace-ID storm cannot grow memory.
const (
	DefaultTraceCapacity = 256
	DefaultSpansPerTrace = 512
)

// TraceStore assembles completed spans into per-trace groups on top of the
// tracer ring, so one request's whole span tree is retrievable by trace ID
// (GET /debug/traces/{id}) after the individual spans have long rotated out
// of the ring. Bounded two ways: at most maxTraces live traces (oldest
// evicted first) and at most maxSpans spans kept per trace (the rest are
// counted, not stored). Safe for concurrent use.
type TraceStore struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[string]*traceEntry
	order     []string // trace IDs in first-seen order (eviction order)

	evictions int64 // whole traces evicted past maxTraces (guarded by mu)
	truncated int64 // spans dropped from over-full traces (guarded by mu)

	exportMu sync.Mutex
	export   *json.Encoder // optional JSONL sink for every traced span
}

type traceEntry struct {
	spans   []SpanRecord
	dropped int64 // spans past maxSpans
	first   time.Time
}

// TraceSummary is one row of the GET /debug/traces listing.
type TraceSummary struct {
	TraceID string    `json:"traceId"`
	Spans   int       `json:"spans"`
	Dropped int64     `json:"droppedSpans,omitempty"`
	Root    string    `json:"root,omitempty"`
	Start   time.Time `json:"start"`
}

// NewTraceStore returns a store holding up to maxTraces traces of up to
// maxSpansPerTrace spans each (defaults when <= 0).
func NewTraceStore(maxTraces, maxSpansPerTrace int) *TraceStore {
	if maxTraces <= 0 {
		maxTraces = DefaultTraceCapacity
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultSpansPerTrace
	}
	return &TraceStore{
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		traces:    map[string]*traceEntry{},
	}
}

// SetExport installs a JSONL sink: every traced span is appended to w as one
// JSON object per line as it completes (the -trace-export flag of
// cmd/serve). Writes are serialized; errors are swallowed — export is
// telemetry, not the request path.
func (ts *TraceStore) SetExport(w io.Writer) {
	if ts == nil {
		return
	}
	ts.exportMu.Lock()
	defer ts.exportMu.Unlock()
	if w == nil {
		ts.export = nil
		return
	}
	ts.export = json.NewEncoder(w)
}

// Add records one completed span into its trace group. Spans without a
// trace ID are ignored. Nil-safe.
func (ts *TraceStore) Add(r SpanRecord) {
	if ts == nil || r.TraceID == "" {
		return
	}
	ts.mu.Lock()
	ent := ts.traces[r.TraceID]
	if ent == nil {
		if len(ts.order) >= ts.maxTraces {
			oldest := ts.order[0]
			ts.order = ts.order[1:]
			delete(ts.traces, oldest)
			ts.evictions++
		}
		ent = &traceEntry{first: r.Start}
		ts.traces[r.TraceID] = ent
		ts.order = append(ts.order, r.TraceID)
	}
	if len(ent.spans) >= ts.maxSpans {
		ent.dropped++
		ts.truncated++
	} else {
		ent.spans = append(ent.spans, r)
	}
	if r.Start.Before(ent.first) {
		ent.first = r.Start
	}
	ts.mu.Unlock()

	ts.exportMu.Lock()
	if ts.export != nil {
		_ = ts.export.Encode(r) //nolint:errcheck // best-effort telemetry sink
	}
	ts.exportMu.Unlock()
}

// Trace returns the buffered spans of one trace (nil when unknown), oldest
// start first.
func (ts *TraceStore) Trace(id string) []SpanRecord {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	ent := ts.traces[id]
	var out []SpanRecord
	if ent != nil {
		out = append(out, ent.spans...)
	}
	ts.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// List summarizes every buffered trace, most recent first.
func (ts *TraceStore) List() []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	out := make([]TraceSummary, 0, len(ts.order))
	for i := len(ts.order) - 1; i >= 0; i-- {
		id := ts.order[i]
		ent := ts.traces[id]
		if ent == nil {
			continue
		}
		sum := TraceSummary{TraceID: id, Spans: len(ent.spans), Dropped: ent.dropped, Start: ent.first}
		for _, s := range ent.spans {
			if s.Parent == 0 {
				sum.Root = s.Name
				break
			}
		}
		out = append(out, sum)
	}
	ts.mu.Unlock()
	return out
}

// Evictions reports how many whole traces were evicted past capacity.
func (ts *TraceStore) Evictions() int64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.evictions
}

// Truncated reports how many spans were dropped from over-full traces.
func (ts *TraceStore) Truncated() int64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.truncated
}
