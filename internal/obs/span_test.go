package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanParentChild(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartSpan(context.Background(), "root")
	cctx, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(cctx, "grand")
	grand.SetAttr("states", 7)
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: grand, child, root.
	if spans[0].Name != "grand" || spans[1].Name != "child" || spans[2].Name != "root" {
		t.Fatalf("completion order wrong: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[2].Parent != 0 {
		t.Errorf("root parent = %d, want 0", spans[2].Parent)
	}
	if spans[1].Parent != spans[2].ID {
		t.Errorf("child parent = %d, want %d", spans[1].Parent, spans[2].ID)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("grand parent = %d, want %d", spans[0].Parent, spans[1].ID)
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{"states", 7}) {
		t.Errorf("grand attrs = %v", spans[0].Attrs)
	}

	var b strings.Builder
	if err := tr.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	tree := b.String()
	for _, want := range []string{"root ", "\n  child ", "\n    grand ", " states=7\n"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestSpanAttrOverwrite(t *testing.T) {
	tr := NewTracer(4)
	_, sp := tr.StartSpan(context.Background(), "s")
	sp.SetAttr("k", 1)
	sp.SetAttr("k", 2)
	sp.End()
	got := tr.Snapshot()[0].Attrs
	if len(got) != 1 || got[0].Value != 2 {
		t.Fatalf("attrs = %v, want single k=2", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		_, sp := tr.StartSpan(context.Background(), string(rune('a'+i)))
		sp.End()
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("buffered = %d, want 3", len(spans))
	}
	// Oldest two ("a", "b") evicted.
	if spans[0].Name != "c" || spans[1].Name != "d" || spans[2].Name != "e" {
		t.Fatalf("ring contents wrong: %s %s %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
}

// Evicted-parent spans must still render (as roots) rather than vanish.
func TestWriteTreeEvictedParent(t *testing.T) {
	tr := NewTracer(1)
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.End()
	root.End() // evicts child

	var b strings.Builder
	if err := tr.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "root ") {
		t.Fatalf("evicted-parent render wrong:\n%s", b.String())
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(8)
	_, sp := tr.StartSpan(context.Background(), "s")
	sp.End()
	sp.End()
	if tr.Total() != 1 {
		t.Fatalf("double End recorded %d spans", tr.Total())
	}
}

func TestPhase(t *testing.T) {
	o := New()
	ctx := NewContext(context.Background(), o)
	pctx, p := StartPhase(ctx, "machine.determinize")
	p.Attr("states", 3)
	p.Count("machine_subset_states_total", 3)
	_, inner := StartPhase(pctx, "machine.minimize")
	inner.End()
	p.End()

	snap := o.Metrics.Snapshot()
	if snap.Counters["machine_subset_states_total"] != 3 {
		t.Fatalf("phase counter missing: %v", snap.Counters)
	}
	if snap.Histograms["machine_determinize_duration_us"].Count != 1 {
		t.Fatalf("phase duration histogram missing: %v", snap.Histograms)
	}
	if snap.Histograms["machine_minimize_duration_us"].Count != 1 {
		t.Fatalf("nested phase duration histogram missing: %v", snap.Histograms)
	}
	spans := o.Trace.Snapshot()
	if len(spans) != 2 || spans[0].Name != "machine.minimize" || spans[0].Parent != spans[1].ID {
		t.Fatalf("phase span nesting wrong: %+v", spans)
	}
	// No observer in ctx → inert phase, ctx unchanged.
	bg := context.Background()
	c2, p2 := StartPhase(bg, "x")
	if c2 != bg || p2 != nil {
		t.Fatalf("phase without observer should be inert")
	}
}

func TestFromContext(t *testing.T) {
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare contexts should be nil")
	}
	o := New()
	if FromContext(NewContext(nil, o)) != o {
		t.Fatal("FromContext lost the observer")
	}
}

func TestWriteSnapshotJSON(t *testing.T) {
	o := New()
	o.Counter("a_total").Inc()
	_, sp := o.StartSpan(context.Background(), "phase")
	sp.SetAttr("n", 2)
	sp.End()
	var b strings.Builder
	if err := WriteSnapshotJSON(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"metrics"`, `"a_total": 1`, `"spans"`, `"name": "phase"`, `"n": 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot JSON missing %q:\n%s", want, out)
		}
	}
	// Nil observer still produces a valid document.
	b.Reset()
	if err := WriteSnapshotJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
}
