package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil registry counter value = %d, want 0", got)
	}
	var o *Observer
	o.Counter("x").Inc()
	o.Event("e", "k", 1)
	ctx, sp := o.StartSpan(nil, "s")
	sp.SetAttr("a", 1)
	sp.End()
	if ctx != nil {
		t.Fatalf("nil observer StartSpan changed ctx")
	}
	var p *Phase
	p.Attr("a", 1)
	p.Count("c", 1)
	p.End()
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("reqs_total").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("dur_us")
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1010 {
		t.Fatalf("histogram count/sum = %d/%d, want 6/1010", h.Count(), h.Sum())
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 20, 20}, {1<<20 + 1, 21}, {1 << 30, 30}, {1<<30 + 1, 31}, {1 << 62, 31},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketBound(0) != 1 || BucketBound(30) != 1<<30 || BucketBound(31) != -1 {
		t.Fatalf("BucketBound bounds wrong: %d %d %d", BucketBound(0), BucketBound(30), BucketBound(31))
	}
}

func TestWithLabels(t *testing.T) {
	got := WithLabels("rung_total", "site", "vs", "rung", "probe")
	want := `rung_total{site="vs",rung="probe"}`
	if got != want {
		t.Fatalf("WithLabels = %q, want %q", got, want)
	}
	if got := WithLabels("plain"); got != "plain" {
		t.Fatalf("WithLabels no kv = %q", got)
	}
	esc := WithLabels("m", "k", "a\"b\\c\nd")
	want = `m{k="a\"b\\c\nd"}`
	if esc != want {
		t.Fatalf("escaped = %q, want %q", esc, want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-1)
	r.Histogram("c_us").Observe(5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, b.String())
	}
	if m["a_total"].(float64) != 3 || m["b"].(float64) != -1 {
		t.Fatalf("flat values wrong: %v", m)
	}
	h := m["c_us"].(map[string]any)
	if h["count"].(float64) != 1 || h["sum"].(float64) != 5 {
		t.Fatalf("histogram object wrong: %v", h)
	}
	if h["buckets"].(map[string]any)["8"].(float64) != 1 {
		t.Fatalf("bucket for 5 should land in le=8: %v", h)
	}
}

// TestWritePrometheusGolden pins the exact text exposition output for a small
// registry so format regressions are caught byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(WithLabels("rung_entries_total", "site", "vs", "rung", "wrapper")).Add(2)
	r.Counter(WithLabels("rung_entries_total", "site", "vs", "rung", "probe")).Add(1)
	r.Gauge("breaker_state").Set(1)
	h := r.Histogram(WithLabels("compile_us", "kind", "dfa"))
	h.Observe(1)
	h.Observe(3)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE rung_entries_total counter
rung_entries_total{site="vs",rung="probe"} 1
rung_entries_total{site="vs",rung="wrapper"} 2
# TYPE breaker_state gauge
breaker_state 1
# TYPE compile_us histogram
compile_us_bucket{kind="dfa",le="1"} 1
compile_us_bucket{kind="dfa",le="2"} 1
compile_us_bucket{kind="dfa",le="4"} 2
compile_us_bucket{kind="dfa",le="8"} 3
`
	if !strings.HasPrefix(got, want) {
		t.Fatalf("prometheus prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`compile_us_bucket{kind="dfa",le="+Inf"} 3`,
		`compile_us_sum{kind="dfa"} 9`,
		`compile_us_count{kind="dfa"} 3`,
		"# TYPE rung_entries_total counter",
		`rung_entries_total{site="vs",rung="probe"} 1`,
		`rung_entries_total{site="vs",rung="wrapper"} 2`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, got)
		}
	}
	// Exactly one TYPE line per family even with multiple label sets.
	if n := strings.Count(got, "# TYPE rung_entries_total"); n != 1 {
		t.Errorf("rung_entries_total TYPE lines = %d, want 1", n)
	}
}

// TestWriteOpenMetricsGolden pins the OpenMetrics exposition byte-for-byte
// for a small registry: the same families and ordering as the Prometheus
// format, per-bucket trace-ID exemplars on the buckets that have one, and the
// mandatory terminating # EOF.
func TestWriteOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_requests_total").Add(2)
	h := r.Histogram("serve_extract_duration_us")
	h.ObserveExemplar(3, "aaaabbbbccccdddd")
	h.ObserveExemplar(5, "eeeeffff00001111")

	var b strings.Builder
	if err := r.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	var want strings.Builder
	want.WriteString("# TYPE serve_requests_total counter\n")
	want.WriteString("serve_requests_total 2\n")
	want.WriteString("# TYPE serve_extract_duration_us histogram\n")
	cum := 0
	for i := 0; i < NumHistogramBuckets; i++ {
		le := "+Inf"
		if bound := BucketBound(i); bound >= 0 {
			le = fmt.Sprint(bound)
		}
		exemplar := ""
		switch i {
		case 2: // 3 lands in le=4
			cum++
			exemplar = ` # {trace_id="aaaabbbbccccdddd"} 3`
		case 3: // 5 lands in le=8
			cum++
			exemplar = ` # {trace_id="eeeeffff00001111"} 5`
		}
		fmt.Fprintf(&want, "serve_extract_duration_us_bucket{le=%q} %d%s\n", le, cum, exemplar)
	}
	want.WriteString("serve_extract_duration_us_sum 8\n")
	want.WriteString("serve_extract_duration_us_count 2\n")
	want.WriteString("# EOF\n")
	if got != want.String() {
		t.Fatalf("OpenMetrics exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want.String())
	}

	// The classic Prometheus exposition must stay exemplar-free and EOF-free:
	// scrapers that negotiated text/plain get the 0.0.4 format untouched.
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "trace_id") || strings.Contains(b.String(), "# EOF") {
		t.Fatalf("Prometheus exposition leaked OpenMetrics syntax:\n%s", b.String())
	}
}

// TestObserveExemplarSnapshot: exemplars ride histogram snapshots into the
// JSON surface (metrics.json), keyed by bucket bound, and an empty trace ID
// degrades to a plain observation.
func TestObserveExemplarSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_us")
	h.ObserveExemplar(5, "aaaabbbbccccdddd")
	h.ObserveExemplar(7, "") // plain observation, no exemplar
	snap := r.Snapshot().Histograms["dur_us"]
	if snap.Count != 2 || snap.Sum != 12 {
		t.Fatalf("count/sum = %d/%d, want 2/12", snap.Count, snap.Sum)
	}
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Exemplars map[string]struct {
			TraceID string `json:"traceId"`
			Value   int64  `json:"value"`
		} `json:"exemplars"`
	}
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Exemplars) != 1 || m.Exemplars["8"].TraceID != "aaaabbbbccccdddd" || m.Exemplars["8"].Value != 5 {
		t.Fatalf("snapshot exemplars = %+v, want one at le=8", m.Exemplars)
	}
	// Nil histogram stays inert.
	var nh *Histogram
	nh.ObserveExemplar(1, "aaaabbbbccccdddd")
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	s := r.Snapshot()
	r.Counter("a").Inc()
	if s.Counters["a"] != 1 {
		t.Fatalf("snapshot mutated after the fact: %d", s.Counters["a"])
	}
}
