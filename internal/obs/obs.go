package obs

import (
	"context"
	"encoding/json"
	"io"
	"strings"
	"time"
)

// Observer bundles the three observation surfaces: a metrics registry, a
// span tracer, and a structured event logger. Any field may be nil — the
// accessor methods degrade to no-ops — and a nil *Observer is itself fully
// inert, so instrumented code never branches on "is observation on".
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
	Log     Logger
	Traces  *TraceStore
}

// New returns an observer with a fresh registry, a default-capacity tracer
// wired to a trace store (so traced spans are retrievable by trace ID and
// ring overwrites count into obs_spans_dropped_total), and no event logger.
func New() *Observer {
	o := &Observer{Metrics: NewRegistry(), Trace: NewTracer(0), Traces: NewTraceStore(0, 0)}
	o.Trace.SetDropCounter(o.Metrics.Counter("obs_spans_dropped_total"))
	o.Trace.SetSink(o.Traces.Add)
	return o
}

// Counter returns the named counter (nil, hence no-op, when the observer or
// its registry is nil).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// StartSpan opens a span on the observer's tracer; see Tracer.StartSpan.
func (o *Observer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if o == nil {
		return ctx, nil
	}
	return o.Trace.StartSpan(ctx, name)
}

// Event forwards a structured event to the logger, if one is installed.
func (o *Observer) Event(name string, kv ...any) {
	if o == nil || o.Log == nil {
		return
	}
	o.Log.Event(name, kv...)
}

type obsCtxKey struct{}

// NewContext returns a context carrying the observer; every instrumented
// construction running under it records metrics and spans.
func NewContext(ctx context.Context, o *Observer) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, obsCtxKey{}, o)
}

// FromContext extracts the observer carried by ctx, or nil (inert) when ctx
// is nil or carries none.
func FromContext(ctx context.Context) *Observer {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(obsCtxKey{}).(*Observer)
	return o
}

// Phase is the per-construction instrumentation handle: a span plus a
// duration histogram named after it. A nil phase accepts every call.
type Phase struct {
	o      *Observer
	sp     *Span
	metric string
	start  time.Time
}

// StartPhase opens an instrumented phase named name (dotted span-style,
// e.g. "machine.determinize") under the observer carried by ctx, returning a
// derived context that parents nested phases. Without an observer it returns
// ctx unchanged and a nil phase.
func StartPhase(ctx context.Context, name string) (context.Context, *Phase) {
	o := FromContext(ctx)
	if o == nil {
		return ctx, nil
	}
	ctx, sp := o.StartSpan(ctx, name)
	return ctx, &Phase{
		o: o, sp: sp,
		metric: strings.ReplaceAll(name, ".", "_"),
		start:  time.Now(),
	}
}

// Attr attaches an integer attribute to the phase's span.
func (p *Phase) Attr(key string, v int64) {
	if p == nil {
		return
	}
	p.sp.SetAttr(key, v)
}

// Str attaches a string attribute to the phase's span.
func (p *Phase) Str(key, v string) {
	if p == nil {
		return
	}
	p.sp.SetStr(key, v)
}

// Fail marks the phase's span as errored.
func (p *Phase) Fail(err error) {
	if p == nil {
		return
	}
	p.sp.SetError(err)
}

// Count adds n to the named registry counter (skipping zero adds).
func (p *Phase) Count(name string, n int64) {
	if p == nil || n == 0 {
		return
	}
	p.o.Counter(name).Add(n)
}

// End closes the phase: the span is recorded and the phase duration is
// observed into the "<metric>_duration_us" histogram.
func (p *Phase) End() {
	if p == nil {
		return
	}
	p.o.Histogram(p.metric + "_duration_us").Observe(time.Since(p.start).Microseconds())
	p.sp.End()
}

// snapshotSpan is the JSON shape of one span in WriteSnapshotJSON output.
type snapshotSpan struct {
	ID         int64             `json:"id"`
	Parent     int64             `json:"parent,omitempty"`
	TraceID    string            `json:"traceId,omitempty"`
	Name       string            `json:"name"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]int64  `json:"attrs,omitempty"`
	Strs       map[string]string `json:"strs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// WriteSnapshotJSON writes the combined observability snapshot the CLIs emit
// under --metrics: a "metrics" object (counters/gauges/histograms) and a
// "spans" array carrying per-phase durations in microseconds.
func WriteSnapshotJSON(w io.Writer, o *Observer) error {
	var doc struct {
		Metrics Snapshot       `json:"metrics"`
		Spans   []snapshotSpan `json:"spans"`
	}
	if o != nil {
		doc.Metrics = o.Metrics.Snapshot()
		for _, s := range o.Trace.Snapshot() {
			out := snapshotSpan{
				ID: s.ID, Parent: s.Parent, TraceID: s.TraceID, Name: s.Name,
				DurationUS: s.Duration.Microseconds(), Error: s.Error,
			}
			if len(s.Attrs) > 0 {
				out.Attrs = map[string]int64{}
				for _, a := range s.Attrs {
					out.Attrs[a.Key] = a.Value
				}
			}
			if len(s.SAttrs) > 0 {
				out.Strs = map[string]string{}
				for _, a := range s.SAttrs {
					out.Strs[a.Key] = a.Value
				}
			}
			doc.Spans = append(doc.Spans, out)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
