package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves an observer over HTTP: Prometheus text exposition at
// /metrics, the combined JSON snapshot (metrics + spans) at /metrics.json,
// and the runtime profiler under /debug/pprof/. Servers that expose more
// than observability (cmd/serve) mount their own routes on the returned mux;
// cmd/resilience -listen serves it as is.
func Handler(o *Observer) *http.ServeMux {
	if o == nil {
		o = &Observer{} // nil-safe like the rest of the package: empty exposition
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteSnapshotJSON(w, o)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
