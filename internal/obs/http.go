package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"
)

// TraceMerger augments the locally-buffered spans of one trace with spans
// gathered elsewhere (the cluster router fetches the shards' halves of a
// trace so the ingress node can serve the assembled tree). It receives the
// local spans and returns the full set; nil means "local only".
type TraceMerger func(id string, local []SpanRecord) []SpanRecord

// Handler serves an observer over HTTP: Prometheus text exposition at
// /metrics (OpenMetrics with exemplars when the Accept header asks for
// application/openmetrics-text), the combined JSON snapshot (metrics +
// spans) at /metrics.json, trace retrieval under /debug/traces, and the
// runtime profiler under /debug/pprof/. Servers that expose more than
// observability (cmd/serve) mount their own routes on the returned mux;
// cmd/resilience -listen serves it as is.
func Handler(o *Observer) *http.ServeMux {
	return HandlerWith(o, nil)
}

// HandlerWith is Handler with a trace merger: GET /debug/traces/{id}
// responses pass through merge before rendering, letting multi-process
// deployments assemble cross-node traces at the ingress.
func HandlerWith(o *Observer, merge TraceMerger) *http.ServeMux {
	if o == nil {
		o = &Observer{} // nil-safe like the rest of the package: empty exposition
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			o.Metrics.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Metrics.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteSnapshotJSON(w, o)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		list := o.Traces.List()
		if list == nil {
			list = []TraceSummary{}
		}
		json.NewEncoder(w).Encode(struct {
			Traces    []TraceSummary `json:"traces"`
			Evictions int64          `json:"evictions"`
			Truncated int64          `json:"truncatedSpans"`
		}{list, o.Traces.Evictions(), o.Traces.Truncated()})
	})
	mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, `{"error":"bad trace id"}`, http.StatusBadRequest)
			return
		}
		spans := o.Traces.Trace(id)
		if merge != nil {
			spans = merge(id, spans)
		}
		if len(spans) == 0 {
			http.Error(w, `{"error":"unknown trace"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			TraceID string       `json:"traceId"`
			Spans   []SpanRecord `json:"spans"`
		}{id, spans})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
