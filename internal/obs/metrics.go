// Package obs is the dependency-free observability layer of the extraction
// runtime: a concurrency-safe metrics registry (counters, gauges, fixed
// log-scale histograms), a lightweight span tracer backed by a ring buffer,
// and a pluggable structured event logger. Everything is nil-safe — a nil
// *Registry, *Counter, *Tracer, *Span or *Observer accepts every call as a
// no-op — so instrumented code pays one context lookup and nothing else when
// observation is off.
//
// The package deliberately has no dependencies outside the standard library
// and imports nothing else from this module, so every layer (machine,
// extract, wrapper, serve, refresh, bench, the CLIs) can use it without
// cycles.
//
// Metric families are owned by their emitting layers and documented in
// DESIGN.md §6: machine_*/extract_* (construction), supervisor_*
// (degradation ladder), serve_*/cluster_* (serving and replication), and
// refresh_* (the drift-watcher/canary rollout pipeline, whose promote and
// rollback decisions are themselves gated on counters read back from this
// registry).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (no-op on a nil counter).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v (no-op on a nil gauge).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumHistogramBuckets is the fixed bucket count of every histogram: powers
// of two 1, 2, 4, …, 2^30 plus a final +Inf bucket.
const NumHistogramBuckets = 32

// BucketBound returns the inclusive upper bound of bucket i, or -1 for the
// +Inf bucket.
func BucketBound(i int) int64 {
	if i >= NumHistogramBuckets-1 {
		return -1
	}
	return 1 << i
}

// bucketIndex maps an observation to its log-scale bucket: the smallest i
// with v ≤ 2^i.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= NumHistogramBuckets {
		return NumHistogramBuckets - 1
	}
	return i
}

// Exemplar links one histogram bucket to a concrete traced request: the
// observed value and the trace ID that produced it (OpenMetrics exemplar
// semantics). Last write wins per bucket — recency is the useful property
// for "show me a slow request in this bucket".
type Exemplar struct {
	TraceID string `json:"traceId"`
	Value   int64  `json:"value"`
}

// Histogram accumulates observations into fixed log-scale buckets, with an
// optional per-bucket trace-ID exemplar.
type Histogram struct {
	count     atomic.Int64
	sum       atomic.Int64
	buckets   [NumHistogramBuckets]atomic.Int64
	exemplars [NumHistogramBuckets]atomic.Pointer[Exemplar]
}

// Observe records one value (no-op on a nil histogram).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveExemplar records one value and pins it as the bucket's exemplar
// when traceID is non-empty, linking the latency distribution back to a
// retrievable trace. With an empty traceID it degrades to Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	h.exemplars[bucketIndex(v)].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count     int64                          `json:"count"`
	Sum       int64                          `json:"sum"`
	Buckets   [NumHistogramBuckets]int64     `json:"-"`
	Exemplars [NumHistogramBuckets]*Exemplar `json:"-"`
}

// MarshalJSON renders the snapshot with non-empty buckets keyed by their
// upper bound ("+Inf" for the last), and any bucket exemplars keyed the same
// way.
func (h HistogramSnapshot) MarshalJSON() ([]byte, error) {
	bound := func(i int) string {
		if b := BucketBound(i); b >= 0 {
			return fmt.Sprint(b)
		}
		return "+Inf"
	}
	buckets := map[string]int64{}
	for i, n := range h.Buckets {
		if n != 0 {
			buckets[bound(i)] = n
		}
	}
	var exemplars map[string]*Exemplar
	for i, e := range h.Exemplars {
		if e == nil {
			continue
		}
		if exemplars == nil {
			exemplars = map[string]*Exemplar{}
		}
		exemplars[bound(i)] = e
	}
	return json.Marshal(struct {
		Count     int64                `json:"count"`
		Sum       int64                `json:"sum"`
		Buckets   map[string]int64     `json:"buckets"`
		Exemplars map[string]*Exemplar `json:"exemplars,omitempty"`
	}{h.Count, h.Sum, buckets, exemplars})
}

// Registry is a concurrency-safe named-metric store. Metric names follow the
// Prometheus convention, optionally carrying a label set built with
// WithLabels: `supervisor_rung_entries_total{site="vs",rung="wrapper"}`.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// WithLabels renders a metric name with a label set in the given key/value
// order: WithLabels("x_total", "site", "vs") = `x_total{site="vs"}`.
func WithLabels(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter returns (creating if needed) the named counter. A nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.buckets {
			hs.Buckets[i] = h.buckets[i].Load()
			hs.Exemplars[i] = h.exemplars[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the registry as a single flat JSON object in the expvar
// style: counters and gauges map name → value, histograms map name → a
// {count, sum, buckets} object. Keys are sorted (encoding/json sorts map
// keys), so the output is deterministic for a given state.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	flat := map[string]any{}
	for name, v := range s.Counters {
		flat[name] = v
	}
	for name, v := range s.Gauges {
		flat[name] = v
	}
	for name, h := range s.Histograms {
		flat[name] = h
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}

// splitName separates a metric name from its optional {label} suffix.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, counter and
// gauge samples verbatim, histograms as cumulative _bucket{le="..."} series
// plus _sum and _count. Output is sorted by family then sample name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics writes the registry in the OpenMetrics text format: the
// same families and sample lines as WritePrometheus, plus per-bucket
// trace-ID exemplars (`... # {trace_id="..."} value`) and the mandatory
// terminating `# EOF`. Served from /metrics when the scraper's Accept
// header asks for application/openmetrics-text.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeExposition(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	s := r.Snapshot()
	writeFamily := func(names []string, kind string, sample func(name string) error) error {
		sort.Strings(names)
		lastBase := ""
		for _, name := range names {
			base, _ := splitName(name)
			if base != lastBase {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
					return err
				}
				lastBase = base
			}
			if err := sample(name); err != nil {
				return err
			}
		}
		return nil
	}
	counterNames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counterNames = append(counterNames, name)
	}
	if err := writeFamily(counterNames, "counter", func(name string) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name])
		return err
	}); err != nil {
		return err
	}
	gaugeNames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	if err := writeFamily(gaugeNames, "gauge", func(name string) error {
		_, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name])
		return err
	}); err != nil {
		return err
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	return writeFamily(histNames, "histogram", func(name string) error {
		base, labels := splitName(name)
		h := s.Histograms[name]
		series := func(le string, cum int64, ex *Exemplar) error {
			sep := ""
			if labels != "" {
				sep = ","
			}
			exemplar := ""
			if openMetrics && ex != nil {
				exemplar = fmt.Sprintf(" # {trace_id=%q} %d", ex.TraceID, ex.Value)
			}
			_, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d%s\n", base, labels, sep, le, cum, exemplar)
			return err
		}
		cum := int64(0)
		for i, n := range h.Buckets {
			cum += n
			le := "+Inf"
			if b := BucketBound(i); b >= 0 {
				le = fmt.Sprint(b)
			}
			if err := series(le, cum, h.Exemplars[i]); err != nil {
				return err
			}
		}
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", base, suffix, h.Sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Count)
		return err
	})
}
