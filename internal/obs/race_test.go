package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryTracerConcurrency hammers one registry and one tracer from many
// goroutines; run under -race this checks the lock discipline of both the
// fast (existing metric) and slow (create) paths plus ring eviction.
func TestRegistryTracerConcurrency(t *testing.T) {
	o := New()
	o.Trace = NewTracer(64) // small ring to force concurrent eviction
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := NewContext(context.Background(), o)
			for i := 0; i < 500; i++ {
				o.Counter("shared_total").Inc()
				o.Counter(fmt.Sprintf("worker_%d_total", w%4)).Add(2)
				o.Gauge("depth").Set(int64(i))
				o.Histogram("lat_us").Observe(int64(i % 2000))
				pctx, p := StartPhase(ctx, "work.outer")
				p.Count("phase_items_total", 1)
				_, inner := StartPhase(pctx, "work.inner")
				inner.Attr("i", int64(i))
				inner.End()
				p.End()
				if i%50 == 0 {
					_ = o.Metrics.Snapshot()
					_ = o.Trace.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	snap := o.Metrics.Snapshot()
	if got := snap.Counters["shared_total"]; got != workers*500 {
		t.Fatalf("shared_total = %d, want %d", got, workers*500)
	}
	if got := snap.Histograms["lat_us"].Count; got != workers*500 {
		t.Fatalf("histogram count = %d, want %d", got, workers*500)
	}
	if got := o.Trace.Total(); got != workers*500*2 {
		t.Fatalf("spans recorded = %d, want %d", got, workers*500*2)
	}
	if got := len(o.Trace.Snapshot()); got != 64 {
		t.Fatalf("ring size = %d, want 64", got)
	}
}
