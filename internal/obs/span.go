package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCapacity is the tracer ring-buffer size used by NewTracer(0).
const DefaultSpanCapacity = 4096

// Attr is one integer span attribute (states explored, transitions built,
// …). All construction-phase facts of interest are counts, so attributes are
// int64 by design — no interface boxing on the hot path.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// SpanRecord is one completed span as stored in the tracer's ring buffer.
type SpanRecord struct {
	ID       int64         `json:"id"`
	Parent   int64         `json:"parent,omitempty"` // 0 = root
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"-"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Tracer records completed spans into a fixed-size ring buffer: the cost of
// tracing is bounded no matter how long the process runs, at the price of
// evicting the oldest spans.
type Tracer struct {
	nextID atomic.Int64

	mu    sync.Mutex
	ring  []SpanRecord
	next  int   // ring write cursor
	total int64 // spans ever recorded
}

// NewTracer returns a tracer holding up to capacity completed spans
// (DefaultSpanCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

type spanCtxKey struct{}

// StartSpan opens a span named name whose parent is the span carried by ctx
// (if any) and returns a derived context carrying the new span. The span is
// recorded when End is called. A nil tracer returns ctx unchanged and a nil
// (no-op) span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var parent int64
	if p, ok := ctx.Value(spanCtxKey{}).(int64); ok {
		parent = p
	}
	id := t.nextID.Add(1)
	return context.WithValue(ctx, spanCtxKey{}, id), &Span{
		t: t, id: id, parent: parent, name: name, start: time.Now(),
	}
}

// record appends one completed span, evicting the oldest at capacity.
func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
		return
	}
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
}

// Snapshot returns the buffered spans in completion order (oldest first).
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total reports how many spans were ever recorded (including evicted ones).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteTree renders the buffered spans as an indented parent/child tree,
// children ordered by start time. Spans whose parent was evicted from the
// ring render as roots.
func (t *Tracer) WriteTree(w io.Writer) error {
	spans := t.Snapshot()
	children := map[int64][]SpanRecord{}
	present := map[int64]bool{}
	for _, s := range spans {
		present[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(xs []SpanRecord) {
		sort.Slice(xs, func(i, j int) bool { return xs[i].Start.Before(xs[j].Start) })
	}
	byStart(roots)
	var render func(s SpanRecord, depth int) error
	render = func(s SpanRecord, depth int) error {
		var attrs strings.Builder
		for _, a := range s.Attrs {
			fmt.Fprintf(&attrs, " %s=%d", a.Key, a.Value)
		}
		if _, err := fmt.Fprintf(w, "%s%s %v%s\n",
			strings.Repeat("  ", depth), s.Name, s.Duration.Round(time.Microsecond), attrs.String()); err != nil {
			return err
		}
		kids := children[s.ID]
		byStart(kids)
		for _, k := range kids {
			if err := render(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := render(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// Span is one in-flight timed operation. SetAttr and End must be called from
// the goroutine that started the span (spans are not shared); the tracer
// itself is safe for concurrent use.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// SetAttr attaches (or overwrites) an integer attribute. No-op on nil.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// End records the span into the tracer's ring buffer and returns its
// duration. Safe to call on a nil span; calling twice records once.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.t.record(SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Duration: d, Attrs: s.attrs,
	})
	return d
}
