package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCapacity is the tracer ring-buffer size used by NewTracer(0).
const DefaultSpanCapacity = 4096

// Attr is one integer span attribute (states explored, transitions built,
// …). All construction-phase facts of interest are counts, so numeric
// attributes are int64 by design — no interface boxing on the hot path.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// SAttr is one string span attribute (target node, cache tier, serving
// outcome) — the request-path facts that are names rather than counts.
type SAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one completed span as stored in the tracer's ring buffer.
// TraceID groups the spans of one end-to-end request across processes; it is
// empty for spans recorded outside a traced request (local constructions).
type SpanRecord struct {
	TraceID  string        `json:"traceId,omitempty"`
	ID       int64         `json:"id"`
	Parent   int64         `json:"parent,omitempty"` // 0 = root
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	SAttrs   []SAttr       `json:"sattrs,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Tracer records completed spans into a fixed-size ring buffer: the cost of
// tracing is bounded no matter how long the process runs, at the price of
// evicting the oldest spans. Evictions are counted (Dropped, and the
// obs_spans_dropped_total counter when one is wired via SetDropCounter) so
// silent span loss is observable.
type Tracer struct {
	nextID  atomic.Int64
	dropped atomic.Int64
	dropCtr atomic.Pointer[Counter]
	sink    atomic.Pointer[func(SpanRecord)]

	mu    sync.Mutex
	ring  []SpanRecord
	next  int   // ring write cursor
	total int64 // spans ever recorded
}

// NewTracer returns a tracer holding up to capacity completed spans
// (DefaultSpanCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{ring: make([]SpanRecord, 0, capacity)}
}

// SetDropCounter wires a registry counter that is incremented every time the
// ring overwrites a completed span (obs.New wires obs_spans_dropped_total).
// A nil tracer or nil counter is a no-op.
func (t *Tracer) SetDropCounter(c *Counter) {
	if t == nil || c == nil {
		return
	}
	t.dropCtr.Store(c)
}

// SetSink installs a completion hook invoked with every recorded span, after
// it lands in the ring (obs.New wires the trace store's Add). The sink runs
// on the goroutine that ended the span and must not call back into the
// tracer.
func (t *Tracer) SetSink(fn func(SpanRecord)) {
	if t == nil || fn == nil {
		return
	}
	t.sink.Store(&fn)
}

// Dropped reports how many completed spans the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

type spanCtxKey struct{}
type traceCtxKey struct{}

// TraceHeader is the HTTP header propagating trace context between
// processes: "<traceID>" or "<traceID>-<16-hex parent span id>".
const TraceHeader = "X-Resilex-Trace"

// TraceContext is the cross-process trace position: which trace the request
// belongs to and which span is the current parent.
type TraceContext struct {
	TraceID string
	SpanID  int64
}

// NewTraceID returns a fresh 128-bit trace identifier in lower-case hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// time-derived id rather than panic on a telemetry path.
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
	}
	return fmt.Sprintf("%x", b)
}

// randSpanID returns a random positive span id. Traced spans use random ids
// so spans minted by different processes can merge into one tree without
// collision; untraced spans keep the tracer's cheap local counter.
func randSpanID() int64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	id := int64(binary.BigEndian.Uint64(b[:]) >> 1)
	if id == 0 {
		id = 1
	}
	return id
}

// ContextWithTrace returns a context carrying the trace position: spans
// started under it record tc.TraceID and parent to tc.SpanID (when nonzero).
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if tc.TraceID == "" {
		return ctx
	}
	ctx = context.WithValue(ctx, traceCtxKey{}, tc.TraceID)
	if tc.SpanID != 0 {
		ctx = context.WithValue(ctx, spanCtxKey{}, tc.SpanID)
	}
	return ctx
}

// TraceFromContext reports the trace position carried by ctx: the trace ID
// and the current span (the would-be parent of the next span). Zero when ctx
// carries no trace.
func TraceFromContext(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	var tc TraceContext
	tc.TraceID, _ = ctx.Value(traceCtxKey{}).(string)
	if tc.TraceID == "" {
		return TraceContext{}
	}
	tc.SpanID, _ = ctx.Value(spanCtxKey{}).(int64)
	return tc
}

// FormatTraceHeader renders the trace position as the TraceHeader value.
// Empty when tc carries no trace.
func FormatTraceHeader(tc TraceContext) string {
	if tc.TraceID == "" {
		return ""
	}
	if tc.SpanID == 0 {
		return tc.TraceID
	}
	return fmt.Sprintf("%s-%016x", tc.TraceID, uint64(tc.SpanID))
}

// ParseTraceHeader decodes a TraceHeader value: "<traceID>" or
// "<traceID>-<16-hex span id>". Malformed values yield a zero TraceContext —
// an untrusted header must never fail a request.
func ParseTraceHeader(v string) TraceContext {
	v = strings.TrimSpace(v)
	if v == "" {
		return TraceContext{}
	}
	id := v
	var span int64
	if i := strings.LastIndexByte(v, '-'); i > 0 && len(v)-i-1 == 16 {
		var u uint64
		if _, err := fmt.Sscanf(v[i+1:], "%016x", &u); err == nil {
			id = v[:i]
			span = int64(u)
		}
	}
	if !validTraceID(id) {
		return TraceContext{}
	}
	return TraceContext{TraceID: id, SpanID: span}
}

// validTraceID accepts lower-case hex ids between 8 and 64 chars — wide
// enough for foreign tracers, tight enough to reject junk.
func validTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// StartSpan opens a span named name whose parent is the span carried by ctx
// (if any) and returns a derived context carrying the new span. When ctx
// carries a trace (ContextWithTrace), the span joins it: it records the
// trace ID and uses a collision-free random span id so trees merge across
// processes. The span is recorded when End is called. A nil tracer returns
// ctx unchanged and a nil (no-op) span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var parent int64
	if p, ok := ctx.Value(spanCtxKey{}).(int64); ok {
		parent = p
	}
	traceID, _ := ctx.Value(traceCtxKey{}).(string)
	var id int64
	if traceID != "" {
		id = randSpanID()
	} else {
		id = t.nextID.Add(1)
	}
	return context.WithValue(ctx, spanCtxKey{}, id), &Span{
		t: t, traceID: traceID, id: id, parent: parent, name: name, start: time.Now(),
	}
}

// record appends one completed span, evicting the oldest at capacity.
func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	t.total++
	evicted := false
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next] = r
		t.next = (t.next + 1) % len(t.ring)
		evicted = true
	}
	t.mu.Unlock()
	if evicted {
		t.dropped.Add(1)
		t.dropCtr.Load().Inc()
	}
	if fn := t.sink.Load(); fn != nil {
		(*fn)(r)
	}
}

// Snapshot returns the buffered spans in completion order (oldest first).
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total reports how many spans were ever recorded (including evicted ones).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// WriteTree renders the buffered spans as an indented parent/child tree,
// children ordered by start time. Spans whose parent was evicted from the
// ring render as roots.
func (t *Tracer) WriteTree(w io.Writer) error {
	return WriteSpanTree(w, t.Snapshot())
}

// WriteSpanTree renders any span set as an indented parent/child tree,
// children ordered by start time; spans with an absent parent render as
// roots. It is shared by the tracer dump and the trace-store endpoints.
func WriteSpanTree(w io.Writer, spans []SpanRecord) error {
	children := map[int64][]SpanRecord{}
	present := map[int64]bool{}
	for _, s := range spans {
		present[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		if s.Parent != 0 && present[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	byStart := func(xs []SpanRecord) {
		sort.Slice(xs, func(i, j int) bool { return xs[i].Start.Before(xs[j].Start) })
	}
	byStart(roots)
	var render func(s SpanRecord, depth int) error
	render = func(s SpanRecord, depth int) error {
		var attrs strings.Builder
		for _, a := range s.Attrs {
			fmt.Fprintf(&attrs, " %s=%d", a.Key, a.Value)
		}
		for _, a := range s.SAttrs {
			fmt.Fprintf(&attrs, " %s=%s", a.Key, a.Value)
		}
		if s.Error != "" {
			fmt.Fprintf(&attrs, " error=%q", s.Error)
		}
		if _, err := fmt.Fprintf(w, "%s%s %v%s\n",
			strings.Repeat("  ", depth), s.Name, s.Duration.Round(time.Microsecond), attrs.String()); err != nil {
			return err
		}
		kids := children[s.ID]
		byStart(kids)
		for _, k := range kids {
			if err := render(k, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := render(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// Span is one in-flight timed operation. SetAttr, SetStr, SetError and End
// must be called from the goroutine that started the span (spans are not
// shared); the tracer itself is safe for concurrent use.
type Span struct {
	t       *Tracer
	traceID string
	id      int64
	parent  int64
	name    string
	start   time.Time
	attrs   []Attr
	sattrs  []SAttr
	errMsg  string
	ended   bool
}

// ID returns the span's id (0 on nil) — the parent carried across process
// boundaries in the trace header.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceID returns the trace the span belongs to ("" on nil or untraced).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SetAttr attaches (or overwrites) an integer attribute. No-op on nil.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetStr attaches (or overwrites) a string attribute. No-op on nil.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	for i := range s.sattrs {
		if s.sattrs[i].Key == key {
			s.sattrs[i].Value = v
			return
		}
	}
	s.sattrs = append(s.sattrs, SAttr{Key: key, Value: v})
}

// SetError marks the span failed with the error's message. A nil error (or
// nil span) is a no-op, so callers can pass the outcome unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End records the span into the tracer's ring buffer and returns its
// duration. Safe to call on a nil span; calling twice records once.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.t.record(SpanRecord{
		TraceID: s.traceID, ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Duration: d, Attrs: s.attrs, SAttrs: s.sattrs, Error: s.errMsg,
	})
	return d
}
