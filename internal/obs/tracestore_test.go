package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const testTraceID = "aaaabbbbccccdddd"

// TestTraceStoreAssembly: spans started under a trace context land in the
// observer's trace store (wired by New) and come back grouped by trace ID,
// with cross-span parentage intact; untraced spans stay out of the store.
func TestTraceStoreAssembly(t *testing.T) {
	o := New()
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: testTraceID})
	ctx, root := o.StartSpan(ctx, "root")
	_, child := o.StartSpan(ctx, "child")
	child.SetStr("tier", "memory")
	child.End()
	root.End()
	_, loose := o.StartSpan(context.Background(), "untraced")
	loose.End()

	spans := o.Traces.Trace(testTraceID)
	if len(spans) != 2 {
		t.Fatalf("stored spans = %d, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		if s.TraceID != testTraceID {
			t.Errorf("span %s trace = %q", s.Name, s.TraceID)
		}
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root id %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if sa := byName["child"].SAttrs; len(sa) != 1 || sa[0] != (SAttr{"tier", "memory"}) {
		t.Errorf("child sattrs = %v", sa)
	}
	list := o.Traces.List()
	if len(list) != 1 || list[0].TraceID != testTraceID || list[0].Spans != 2 || list[0].Root != "root" {
		t.Fatalf("trace list = %+v, want one root trace with 2 spans", list)
	}
}

// TestTraceStoreBounds pins both bounds: spans past maxSpans are counted and
// dropped (the trace stays retrievable), and traces past maxTraces evict the
// oldest whole trace.
func TestTraceStoreBounds(t *testing.T) {
	ts := NewTraceStore(2, 2)
	at := time.Now()
	for i := 0; i < 3; i++ {
		ts.Add(SpanRecord{TraceID: "1111111111111111", ID: int64(i + 1), Name: "s", Start: at})
	}
	if got := len(ts.Trace("1111111111111111")); got != 2 {
		t.Fatalf("over-full trace kept %d spans, want 2", got)
	}
	if ts.Truncated() != 1 {
		t.Fatalf("truncated = %d, want 1", ts.Truncated())
	}
	ts.Add(SpanRecord{TraceID: "2222222222222222", ID: 10, Name: "s", Start: at})
	ts.Add(SpanRecord{TraceID: "3333333333333333", ID: 11, Name: "s", Start: at})
	if ts.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", ts.Evictions())
	}
	if ts.Trace("1111111111111111") != nil {
		t.Fatal("oldest trace survived eviction")
	}
	if len(ts.Trace("3333333333333333")) != 1 {
		t.Fatal("newest trace lost")
	}
	// Spans with no trace ID are ignored; a nil store accepts everything.
	ts.Add(SpanRecord{ID: 99, Name: "untraced"})
	var nilStore *TraceStore
	nilStore.Add(SpanRecord{TraceID: "4444444444444444", ID: 1})
	if nilStore.Trace("4444444444444444") != nil || nilStore.List() != nil {
		t.Fatal("nil store not inert")
	}
}

// TestTraceStoreExport: the JSONL sink receives every traced span as one JSON
// object per line.
func TestTraceStoreExport(t *testing.T) {
	ts := NewTraceStore(0, 0)
	var b strings.Builder
	ts.SetExport(&b)
	ts.Add(SpanRecord{TraceID: testTraceID, ID: 1, Name: "a"})
	ts.Add(SpanRecord{TraceID: testTraceID, ID: 2, Name: "b"})
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("export lines = %d, want 2:\n%s", len(lines), b.String())
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("export line not JSON: %v", err)
	}
	if rec.Name != "b" || rec.TraceID != testTraceID {
		t.Fatalf("exported record = %+v", rec)
	}
	ts.SetExport(nil)
	ts.Add(SpanRecord{TraceID: testTraceID, ID: 3, Name: "c"})
	if strings.Count(b.String(), "\n") != 2 {
		t.Fatal("export kept writing after SetExport(nil)")
	}
}

// TestTraceHeaderRoundTrip pins the wire format: bare trace IDs, trace+span
// positions, and the malformed inputs an untrusted header can carry.
func TestTraceHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: testTraceID, SpanID: 0x1f}
	got := ParseTraceHeader(FormatTraceHeader(tc))
	if got != tc {
		t.Fatalf("round trip = %+v, want %+v", got, tc)
	}
	if v := FormatTraceHeader(tc); v != testTraceID+"-000000000000001f" {
		t.Fatalf("formatted header = %q", v)
	}
	if got := ParseTraceHeader(testTraceID); got != (TraceContext{TraceID: testTraceID}) {
		t.Fatalf("bare trace ID parse = %+v", got)
	}
	if FormatTraceHeader(TraceContext{}) != "" {
		t.Fatal("zero context formats non-empty")
	}
	for _, bad := range []string{
		"", "short", "UPPERCASEID00001", "not hex at all!",
		testTraceID + "-zzzz", strings.Repeat("a", 65),
	} {
		if got := ParseTraceHeader(bad); got != (TraceContext{}) {
			t.Errorf("ParseTraceHeader(%q) = %+v, want zero", bad, got)
		}
	}
	// A trailing segment that is not 16 hex chars stays part of the ID and
	// fails validation ('-' is not hex).
	if got := ParseTraceHeader(testTraceID + "-12"); got != (TraceContext{}) {
		t.Errorf("short span suffix parse = %+v, want zero", got)
	}
}

// TestTracedSpanRandomIDs: spans inside a trace use random IDs (so two
// processes' spans merge without collision), untraced spans keep the cheap
// counter.
func TestTracedSpanRandomIDs(t *testing.T) {
	tr := NewTracer(8)
	_, plain := tr.StartSpan(context.Background(), "plain")
	if plain.ID() != 1 {
		t.Fatalf("untraced span id = %d, want counter id 1", plain.ID())
	}
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: testTraceID})
	_, traced := tr.StartSpan(ctx, "traced")
	if traced.ID() <= 0 {
		t.Fatalf("traced span id = %d, want positive random", traced.ID())
	}
	if traced.TraceID() != testTraceID {
		t.Fatalf("traced span trace = %q", traced.TraceID())
	}
	plain.End()
	traced.End()
}

// TestSpanDropCounter: ring evictions increment the wired drop counter (the
// obs_spans_dropped_total family) and the tracer's own Dropped count.
func TestSpanDropCounter(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(2)
	tr.SetDropCounter(r.Counter("obs_spans_dropped_total"))
	for i := 0; i < 5; i++ {
		_, sp := tr.StartSpan(context.Background(), "s")
		sp.End()
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	if got := r.Counter("obs_spans_dropped_total").Value(); got != 3 {
		t.Fatalf("obs_spans_dropped_total = %d, want 3", got)
	}
	// obs.New wires the counter automatically.
	o := New()
	if o.Metrics.Counter("obs_spans_dropped_total") == nil {
		t.Fatal("observer missing the drop counter")
	}
}

// TestHandlerTraceEndpoints drives the /debug/traces surface: the listing,
// single-trace retrieval, unknown and malformed IDs, and the merge hook that
// lets a router graft peer spans into the response.
func TestHandlerTraceEndpoints(t *testing.T) {
	o := New()
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: testTraceID})
	_, sp := o.StartSpan(ctx, "serve.extract")
	sp.End()

	h := Handler(o)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].TraceID != testTraceID {
		t.Fatalf("trace listing = %+v", list)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+testTraceID, nil))
	if rec.Code != 200 {
		t.Fatalf("trace fetch: %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		TraceID string       `json:"traceId"`
		Spans   []SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != testTraceID || len(body.Spans) != 1 || body.Spans[0].Name != "serve.extract" {
		t.Fatalf("trace body = %+v", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/ffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace: %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/a/b", nil))
	if rec.Code != 400 {
		t.Fatalf("malformed trace id: %d, want 400", rec.Code)
	}

	// The merge hook augments the local spans — the cross-process assembly
	// seam the cluster router plugs into.
	merged := HandlerWith(o, func(id string, local []SpanRecord) []SpanRecord {
		return append(local, SpanRecord{TraceID: id, ID: 77, Name: "router.attempt"})
	})
	rec = httptest.NewRecorder()
	merged.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+testTraceID, nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Spans) != 2 {
		t.Fatalf("merged spans = %d, want 2", len(body.Spans))
	}
}

// TestHandlerMetricsNegotiation: /metrics serves classic Prometheus text by
// default and the OpenMetrics exposition (exemplars, # EOF) when the Accept
// header asks for it.
func TestHandlerMetricsNegotiation(t *testing.T) {
	o := New()
	o.Histogram("serve_extract_duration_us").ObserveExemplar(3, testTraceID)
	h := Handler(o)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	plain := rec.Body.String()
	if strings.Contains(plain, "# EOF") || strings.Contains(plain, "trace_id") {
		t.Fatalf("default exposition leaked OpenMetrics syntax:\n%s", plain)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	om := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics content type = %q", ct)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition not terminated:\n%s", om)
	}
	if !strings.Contains(om, `# {trace_id="`+testTraceID+`"} 3`) {
		t.Fatalf("OpenMetrics exposition missing the exemplar:\n%s", om)
	}
}
