package obs

// Logger is the pluggable structured event sink. Events are named
// ("supervisor.breaker", "supervisor.rung", …) with alternating key/value
// context, the shape of log/slog — the facade provides an slog-backed
// implementation; the default everywhere is no logging at all.
type Logger interface {
	Event(name string, kv ...any)
}

// NopLogger discards every event.
type NopLogger struct{}

// Event discards the event.
func (NopLogger) Event(string, ...any) {}

// FuncLogger adapts a plain function into a Logger.
type FuncLogger func(name string, kv ...any)

// Event calls the function.
func (f FuncLogger) Event(name string, kv ...any) { f(name, kv...) }
