package symtab

import (
	"fmt"

	"resilex/internal/codec"
)

// tableMagic / tableVersion frame the persisted form of a Table. Bump the
// version on any payload change; decoders reject other versions with
// codec.ErrVersionMismatch, which the disk cache treats as "discard and
// recompile".
const (
	tableMagic   = "RXTB"
	tableVersion = 1
)

// Encode serializes the table — its interned names in id order — into a
// framed binary blob (see internal/codec for the framing and its corruption
// policy). Symbols are ids into this ordering, so a decoded table reproduces
// every Symbol the original would have assigned.
func (t *Table) Encode() []byte {
	var w codec.Writer
	names := t.Names()
	w.Uint(uint64(len(names)))
	for _, n := range names {
		w.String(n)
	}
	return codec.Seal(tableMagic, tableVersion, w.Bytes())
}

// DecodeTable restores a table from Encode's output. It never panics on
// corrupt input: any malformed blob — bad frame, duplicate names, truncation
// — returns an error wrapping codec.ErrMalformedInput.
func DecodeTable(blob []byte) (*Table, error) {
	payload, err := codec.Open(tableMagic, tableVersion, blob)
	if err != nil {
		return nil, fmt.Errorf("symtab: decoding table: %w", err)
	}
	r := codec.NewReader(payload)
	n := r.Len()
	t := NewTable()
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		if r.Err() != nil {
			break
		}
		if t.Lookup(name) != None {
			return nil, fmt.Errorf("symtab: decoding table: %w: duplicate name %q", codec.ErrMalformedInput, name)
		}
		t.Intern(name)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("symtab: decoding table: %w", err)
	}
	return t, nil
}

// EqualNames reports whether two tables intern exactly the same names with
// the same ids — the condition under which Symbols from one are valid in the
// other. Artifact decoding uses it to cross-check a persisted table against
// one re-derived from the persisted expression source.
func (t *Table) EqualNames(o *Table) bool {
	a, b := t.Names(), o.Names()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
