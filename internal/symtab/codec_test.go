package symtab

import (
	"errors"
	"testing"

	"resilex/internal/codec"
)

func TestTableCodecRoundTrip(t *testing.T) {
	tab := NewTable()
	names := []string{"p", "q", "FORM", "/FORM", "INPUT", "weird name", ""}
	tab.InternAll(names...)
	got, err := DecodeTable(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !tab.EqualNames(got) {
		t.Fatalf("decoded names %v, want %v", got.Names(), tab.Names())
	}
	for _, n := range names {
		if got.Lookup(n) != tab.Lookup(n) {
			t.Errorf("symbol id for %q changed: %d vs %d", n, got.Lookup(n), tab.Lookup(n))
		}
	}
}

func TestTableCodecEmpty(t *testing.T) {
	got, err := DecodeTable(NewTable().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded %d names, want 0", got.Len())
	}
}

func TestDecodeTableRejectsCorruption(t *testing.T) {
	tab := NewTable()
	tab.InternAll("p", "q", "r")
	blob := tab.Encode()
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := DecodeTable(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		} else if !errors.Is(err, codec.ErrMalformedInput) {
			t.Fatalf("bit flip at byte %d: err = %v, want ErrMalformedInput", i, err)
		}
	}
	if _, err := DecodeTable(nil); !errors.Is(err, codec.ErrMalformedInput) {
		t.Fatalf("nil blob: err = %v", err)
	}
}

func TestEqualNames(t *testing.T) {
	a, b := NewTable(), NewTable()
	a.InternAll("p", "q")
	b.InternAll("p", "q")
	if !a.EqualNames(b) {
		t.Error("identical tables reported unequal")
	}
	b.Intern("r")
	if a.EqualNames(b) {
		t.Error("tables of different length reported equal")
	}
	c := NewTable()
	c.InternAll("q", "p")
	if a.EqualNames(c) {
		t.Error("reordered tables reported equal")
	}
}
