// Package symtab provides interned token symbols and finite alphabets.
//
// The paper models semistructured documents as strings over a finite
// alphabet Σ of tokens (HTML tags such as FORM, /FORM, INPUT, or abstract
// letters p, q). All automata and languages in this library run over dense
// integer symbol ids produced by a Table; an explicit Alphabet accompanies
// every language because operations such as complement and Σ−p are only
// meaningful relative to a fixed Σ.
package symtab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Symbol is a dense interned id for a token. Ids are assigned in first-seen
// order by a Table, starting at 0. The zero Symbol is a valid symbol (the
// first one interned), so code that needs a sentinel should use None.
type Symbol int32

// None is the sentinel "no symbol" value. It is never returned by Intern.
const None Symbol = -1

// Table interns token names to Symbols. A Table is safe for concurrent use.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]Symbol
	names []string
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{ids: make(map[string]Symbol)}
}

// Intern returns the Symbol for name, assigning a fresh id if name has not
// been seen before.
func (t *Table) Intern(name string) Symbol {
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.ids[name]; ok {
		return s
	}
	s = Symbol(len(t.names))
	t.ids[name] = s
	t.names = append(t.names, name)
	return s
}

// Lookup returns the Symbol for name, or None if name was never interned.
func (t *Table) Lookup(name string) Symbol {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if s, ok := t.ids[name]; ok {
		return s
	}
	return None
}

// LookupBytes is Lookup over a byte slice. It never allocates (the
// byte-to-string conversion in the map index is elided by the compiler),
// which makes it the symbol-resolution step of the zero-allocation streaming
// extraction path. Unlike Intern it never mutates the table: unknown names
// report None, which downstream matchers treat as an out-of-Σ token.
func (t *Table) LookupBytes(name []byte) Symbol {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if s, ok := t.ids[string(name)]; ok {
		return s
	}
	return None
}

// Name returns the token name for s. It panics if s was not produced by this
// table.
func (t *Table) Name(s Symbol) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if s < 0 || int(s) >= len(t.names) {
		panic(fmt.Sprintf("symtab: symbol %d out of range (table has %d symbols)", s, len(t.names)))
	}
	return t.names[s]
}

// Len reports the number of interned symbols.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Names returns the interned names in id order (a copy).
func (t *Table) Names() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// InternAll interns every name and returns the symbols in order.
func (t *Table) InternAll(names ...string) []Symbol {
	out := make([]Symbol, len(names))
	for i, n := range names {
		out[i] = t.Intern(n)
	}
	return out
}

// String formats a string of symbols as space-separated token names.
func (t *Table) String(str []Symbol) string {
	var b strings.Builder
	for i, s := range str {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(t.Name(s))
	}
	return b.String()
}

// Alphabet is a finite set of Symbols — the Σ of the paper. The zero value
// is the empty alphabet. Alphabets are immutable once built; all set
// operations return new values.
type Alphabet struct {
	syms []Symbol // sorted, deduplicated
}

// NewAlphabet builds an alphabet from the given symbols (duplicates allowed).
func NewAlphabet(syms ...Symbol) Alphabet {
	out := make([]Symbol, len(syms))
	copy(out, syms)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	out = dedup(out)
	return Alphabet{syms: out}
}

func dedup(sorted []Symbol) []Symbol {
	w := 0
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			sorted[w] = s
			w++
		}
	}
	return sorted[:w]
}

// Len reports |Σ|.
func (a Alphabet) Len() int { return len(a.syms) }

// IsEmpty reports whether the alphabet has no symbols.
func (a Alphabet) IsEmpty() bool { return len(a.syms) == 0 }

// Contains reports whether s ∈ Σ.
func (a Alphabet) Contains(s Symbol) bool {
	i := sort.Search(len(a.syms), func(i int) bool { return a.syms[i] >= s })
	return i < len(a.syms) && a.syms[i] == s
}

// Symbols returns the symbols in ascending order (a copy).
func (a Alphabet) Symbols() []Symbol {
	out := make([]Symbol, len(a.syms))
	copy(out, a.syms)
	return out
}

// Union returns Σ₁ ∪ Σ₂.
func (a Alphabet) Union(b Alphabet) Alphabet {
	merged := make([]Symbol, 0, len(a.syms)+len(b.syms))
	merged = append(merged, a.syms...)
	merged = append(merged, b.syms...)
	return NewAlphabet(merged...)
}

// Intersect returns Σ₁ ∩ Σ₂.
func (a Alphabet) Intersect(b Alphabet) Alphabet {
	var out []Symbol
	i, j := 0, 0
	for i < len(a.syms) && j < len(b.syms) {
		switch {
		case a.syms[i] < b.syms[j]:
			i++
		case a.syms[i] > b.syms[j]:
			j++
		default:
			out = append(out, a.syms[i])
			i++
			j++
		}
	}
	return Alphabet{syms: out}
}

// Minus returns Σ₁ − Σ₂; with b a singleton this is the paper's (Σ−p).
func (a Alphabet) Minus(b Alphabet) Alphabet {
	var out []Symbol
	for _, s := range a.syms {
		if !b.Contains(s) {
			out = append(out, s)
		}
	}
	return Alphabet{syms: out}
}

// Without returns Σ − {s}.
func (a Alphabet) Without(s Symbol) Alphabet {
	if !a.Contains(s) {
		return a
	}
	out := make([]Symbol, 0, len(a.syms)-1)
	for _, x := range a.syms {
		if x != s {
			out = append(out, x)
		}
	}
	return Alphabet{syms: out}
}

// With returns Σ ∪ {s}.
func (a Alphabet) With(s Symbol) Alphabet {
	if a.Contains(s) {
		return a
	}
	out := make([]Symbol, 0, len(a.syms)+1)
	out = append(out, a.syms...)
	out = append(out, s)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return Alphabet{syms: out}
}

// Equal reports whether two alphabets contain the same symbols.
func (a Alphabet) Equal(b Alphabet) bool {
	if len(a.syms) != len(b.syms) {
		return false
	}
	for i := range a.syms {
		if a.syms[i] != b.syms[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every symbol of a is in b.
func (a Alphabet) SubsetOf(b Alphabet) bool {
	for _, s := range a.syms {
		if !b.Contains(s) {
			return false
		}
	}
	return true
}

// Max returns the largest symbol id in the alphabet, or None if empty.
// Useful for sizing dense transition tables.
func (a Alphabet) Max() Symbol {
	if len(a.syms) == 0 {
		return None
	}
	return a.syms[len(a.syms)-1]
}

// Format renders the alphabet using the table's names, e.g. "{p, q}".
func (a Alphabet) Format(t *Table) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range a.syms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.Name(s))
	}
	b.WriteByte('}')
	return b.String()
}
