package symtab

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternStable(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("FORM")
	b := tab.Intern("INPUT")
	if a == b {
		t.Fatalf("distinct names got same symbol %d", a)
	}
	if got := tab.Intern("FORM"); got != a {
		t.Errorf("re-intern FORM = %d, want %d", got, a)
	}
	if got := tab.Name(a); got != "FORM" {
		t.Errorf("Name(%d) = %q, want FORM", a, got)
	}
	if got := tab.Len(); got != 2 {
		t.Errorf("Len = %d, want 2", got)
	}
}

func TestInternDenseIDs(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 100; i++ {
		s := tab.Intern(fmt.Sprintf("tok%d", i))
		if int(s) != i {
			t.Fatalf("Intern #%d = %d, want dense id %d", i, s, i)
		}
	}
}

func TestLookupMissing(t *testing.T) {
	tab := NewTable()
	if got := tab.Lookup("nope"); got != None {
		t.Errorf("Lookup missing = %d, want None", got)
	}
	tab.Intern("yes")
	if got := tab.Lookup("yes"); got != 0 {
		t.Errorf("Lookup yes = %d, want 0", got)
	}
}

func TestNamePanicsOutOfRange(t *testing.T) {
	tab := NewTable()
	defer func() {
		if recover() == nil {
			t.Error("Name on empty table did not panic")
		}
	}()
	tab.Name(0)
}

func TestConcurrentIntern(t *testing.T) {
	tab := NewTable()
	const goroutines = 16
	const names = 64
	var wg sync.WaitGroup
	results := make([][]Symbol, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Symbol, names)
			for i := 0; i < names; i++ {
				out[i] = tab.Intern(fmt.Sprintf("n%d", i))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	if tab.Len() != names {
		t.Fatalf("Len = %d, want %d", tab.Len(), names)
	}
	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d interned n%d as %d; goroutine 0 got %d",
					g, i, results[g][i], results[0][i])
			}
		}
	}
}

func TestStringOfSymbols(t *testing.T) {
	tab := NewTable()
	syms := tab.InternAll("P", "H1", "/H1")
	if got := tab.String(syms); got != "P H1 /H1" {
		t.Errorf("String = %q", got)
	}
	if got := tab.String(nil); got != "" {
		t.Errorf("String(nil) = %q, want empty", got)
	}
}

func TestAlphabetBasics(t *testing.T) {
	a := NewAlphabet(3, 1, 2, 1, 3)
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dedup)", a.Len())
	}
	want := []Symbol{1, 2, 3}
	got := a.Symbols()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Symbols = %v, want %v", got, want)
		}
	}
	if !a.Contains(2) || a.Contains(0) || a.Contains(4) {
		t.Error("Contains wrong")
	}
	if a.Max() != 3 {
		t.Errorf("Max = %d", a.Max())
	}
	if NewAlphabet().Max() != None {
		t.Error("empty Max != None")
	}
	if !NewAlphabet().IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestAlphabetSetOps(t *testing.T) {
	a := NewAlphabet(1, 2, 3)
	b := NewAlphabet(2, 3, 4)
	if got := a.Union(b); !got.Equal(NewAlphabet(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got.Symbols())
	}
	if got := a.Intersect(b); !got.Equal(NewAlphabet(2, 3)) {
		t.Errorf("Intersect = %v", got.Symbols())
	}
	if got := a.Minus(b); !got.Equal(NewAlphabet(1)) {
		t.Errorf("Minus = %v", got.Symbols())
	}
	if got := a.Without(2); !got.Equal(NewAlphabet(1, 3)) {
		t.Errorf("Without = %v", got.Symbols())
	}
	if got := a.Without(9); !got.Equal(a) {
		t.Errorf("Without absent changed set: %v", got.Symbols())
	}
	if got := a.With(0); !got.Equal(NewAlphabet(0, 1, 2, 3)) {
		t.Errorf("With = %v", got.Symbols())
	}
	if got := a.With(2); !got.Equal(a) {
		t.Errorf("With present changed set: %v", got.Symbols())
	}
	if !NewAlphabet(1, 2).SubsetOf(a) || a.SubsetOf(NewAlphabet(1, 2)) {
		t.Error("SubsetOf wrong")
	}
}

func TestAlphabetFormat(t *testing.T) {
	tab := NewTable()
	p := tab.Intern("p")
	q := tab.Intern("q")
	a := NewAlphabet(q, p)
	if got := a.Format(tab); got != "{p, q}" {
		t.Errorf("Format = %q", got)
	}
	if got := NewAlphabet().Format(tab); got != "{}" {
		t.Errorf("Format empty = %q", got)
	}
}

// Property: union is commutative, associative, idempotent; De Morgan-ish
// interplay between Minus and Intersect on random small sets.
func TestAlphabetProperties(t *testing.T) {
	mk := func(bits uint16) Alphabet {
		var syms []Symbol
		for i := 0; i < 16; i++ {
			if bits&(1<<i) != 0 {
				syms = append(syms, Symbol(i))
			}
		}
		return NewAlphabet(syms...)
	}
	comm := func(x, y uint16) bool {
		return mk(x).Union(mk(y)).Equal(mk(y).Union(mk(x)))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(x, y, z uint16) bool {
		a, b, c := mk(x), mk(y), mk(z)
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c)))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	// a − b = a ∩ (a − b); and (a−b) ∩ b = ∅
	minus := func(x, y uint16) bool {
		a, b := mk(x), mk(y)
		d := a.Minus(b)
		return d.SubsetOf(a) && d.Intersect(b).IsEmpty() && mk(x&^y).Equal(d)
	}
	if err := quick.Check(minus, nil); err != nil {
		t.Error(err)
	}
}
