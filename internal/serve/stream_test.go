package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// streamRequest posts body to /extract/stream/{key} through a reader that
// yields tiny chunks, so the handler exercises real chunked streaming
// rather than a single Read.
func streamRequest(t *testing.T, s *Server, key, body string, chunk int) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/extract/stream/"+key,
		&chunkedBody{data: []byte(body), chunk: chunk})
	rec := httptest.NewRecorder()
	s.Mux().ServeHTTP(rec, req)
	return rec
}

type chunkedBody struct {
	data  []byte
	chunk int
}

func (r *chunkedBody) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func TestServeExtractStream(t *testing.T) {
	s, _ := testServer(t)
	for _, chunk := range []int{7, 1 << 20} {
		rec := streamRequest(t, s, "vs", pageTop, chunk)
		if rec.Code != http.StatusOK {
			t.Fatalf("chunk %d: status %d: %s", chunk, rec.Code, rec.Body)
		}
		var res extractResult
		if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
			t.Fatal(err)
		}
		if !res.OK || res.Key != "vs" || !strings.Contains(res.Source, `type="text"`) {
			t.Fatalf("chunk %d: result %+v, want text-input extraction", chunk, res)
		}
		if res.Start <= 0 || res.End <= res.Start {
			t.Errorf("chunk %d: span [%d,%d) not positive", chunk, res.Start, res.End)
		}
	}
	// The streaming result must match the batch route's byte-for-byte.
	batch := do(t, s, "POST", "/extract",
		[]byte(`{"docs":[{"key":"vs","html":`+mustJSON(pageTop)+`}]}`))
	var bresp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(batch.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	var sres extractResult
	rec := streamRequest(t, s, "vs", pageTop, 13)
	if err := json.Unmarshal(rec.Body.Bytes(), &sres); err != nil {
		t.Fatal(err)
	}
	b := bresp.Results[0]
	if sres.Source != b.Source || sres.Start != b.Start || sres.End != b.End || sres.TokenIndex != b.TokenIndex {
		t.Fatalf("stream %+v, batch %+v", sres, b)
	}
}

func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

func TestServeExtractStreamMiss(t *testing.T) {
	s, _ := testServer(t)
	rec := streamRequest(t, s, "vs", "<html><body>nothing here</body></html>", 9)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var res extractResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.OK || res.Error == "" {
		t.Fatalf("result %+v, want extraction miss with error", res)
	}
}

func TestServeExtractStreamUnknownKey(t *testing.T) {
	s, _ := testServer(t)
	if rec := streamRequest(t, s, "nosuch", pageTop, 64); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown key: status %d, want 404", rec.Code)
	}
}

func TestServeExtractStreamTooLarge(t *testing.T) {
	s, _ := testServer(t)
	s.maxBody = 16
	rec := streamRequest(t, s, "vs", pageTop, 8)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413: %s", rec.Code, rec.Body)
	}
}

func TestServeExtractStreamMetrics(t *testing.T) {
	s, _ := testServer(t)
	if rec := streamRequest(t, s, "vs", pageTop, 11); rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if v := s.obs.Counter("extract_stream_runs_total").Value(); v != 1 {
		t.Errorf("extract_stream_runs_total = %d, want 1", v)
	}
	if v := s.obs.Counter("extract_stream_chunks_total").Value(); v < 5 {
		t.Errorf("extract_stream_chunks_total = %d, want several at 11-byte chunks", v)
	}
	if v := s.obs.Counter("extract_stream_fallback_total").Value(); v != 0 {
		t.Errorf("extract_stream_fallback_total = %d, want 0", v)
	}
}
