package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// wrapperRegistry persists the version state of every registered key so a
// restarted server reloads the same fleet — including an in-flight canary —
// it was serving. Each key is one JSON envelope file named by the SHA-256 of
// its site key (keys are client-chosen strings; hashing keeps them
// path-safe). Entries are written atomically (temp file + rename); an
// envelope that no longer decodes — a torn write from a hard crash — is
// skipped at restore, never fatal.
//
// The envelope is versioned end to end: it carries the key's monotone
// version counter, the active/canary/prior wrapper versions, and the
// deletion flag. A tombstone is a versioned record like any other — it keeps
// the counter, so a DELETE followed by a re-PUT across a restart resurrects
// the key with a strictly higher version instead of staying tombstoned.
// Restore applies tombstones after the deploy-time fleet file has loaded, so
// deleting a key that shipped in -fleet stays deleted across restarts.
//
// The registry stores wrapper *configuration* (tokenizer settings, strategy,
// expression source); the expensive compiled automata live next door in the
// extract.DiskCache, so restoring N sites that share one expression decodes
// the artifact once and compiles nothing.
type wrapperRegistry struct {
	dir string
	mu  sync.Mutex // serializes directory mutation
}

// registryEntry is the persisted envelope. The legacy (pre-versioning)
// schema stored the raw payload in Wrapper; it restores as active version 1.
type registryEntry struct {
	Key string `json:"key"`
	// Wrapper is the legacy unversioned payload slot, kept for decode
	// compatibility with envelopes written before versioning.
	Wrapper json.RawMessage   `json:"wrapper,omitempty"`
	Deleted bool              `json:"deleted,omitempty"`
	Version uint64            `json:"lastVersion,omitempty"`
	Active  *versionedWrapper `json:"active,omitempty"`
	Canary  *versionedWrapper `json:"canary,omitempty"`
	Prior   *versionedWrapper `json:"prior,omitempty"`
	Outcome string            `json:"lastOutcome,omitempty"`
}

func newWrapperRegistry(dir string) (*wrapperRegistry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wrapper registry: %w", err)
	}
	return &wrapperRegistry{dir: dir}, nil
}

func (r *wrapperRegistry) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(r.dir, hex.EncodeToString(sum[:])+".json")
}

// writeState persists the version state of one key. A nil registry (no
// cache dir) is a no-op. The caller holds the version lock, so the envelope
// is a consistent snapshot.
func (r *wrapperRegistry) writeState(key string, kv *keyVersions) error {
	if r == nil {
		return nil
	}
	return r.write(registryEntry{
		Key:     key,
		Deleted: kv.deleted,
		Version: kv.lastVersion,
		Active:  kv.active,
		Canary:  kv.canary,
		Prior:   kv.prior,
		Outcome: kv.lastOutcome,
	})
}

func (r *wrapperRegistry) write(ent registryEntry) error {
	if r == nil {
		return nil
	}
	blob, err := json.Marshal(ent)
	if err != nil {
		return fmt.Errorf("wrapper registry: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tmp, err := os.CreateTemp(r.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("wrapper registry: %w", err)
	}
	if _, err := tmp.Write(blob); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), r.path(ent.Key))
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wrapper registry: %w", err)
	}
	return nil
}

// load reads every decodable envelope, normalizing legacy entries (payload
// in Wrapper, no version counter) to active version 1. Undecodable files
// are counted and skipped — one torn envelope must not keep the rest of the
// fleet down. A nil registry loads nothing.
func (r *wrapperRegistry) load() (entries []registryEntry, unreadable int) {
	if r == nil {
		return nil, 0
	}
	files, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, 0
	}
	for _, e := range files {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(r.dir, e.Name()))
		if err != nil {
			unreadable++
			continue
		}
		var ent registryEntry
		if err := json.Unmarshal(blob, &ent); err != nil || ent.Key == "" {
			unreadable++
			continue
		}
		if ent.Active == nil && len(ent.Wrapper) > 0 && !ent.Deleted {
			// Legacy envelope: the payload becomes active version 1.
			ent.Active = &versionedWrapper{Version: 1, Payload: ent.Wrapper}
			if ent.Version == 0 {
				ent.Version = 1
			}
			ent.Wrapper = nil
		}
		entries = append(entries, ent)
	}
	return entries, unreadable
}
