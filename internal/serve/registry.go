package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/wrapper"
)

// wrapperRegistry persists the raw payload of every PUT /wrappers/{key} so a
// restarted server reloads the same fleet it was serving. Each registration
// is one JSON envelope file named by the SHA-256 of its site key (keys are
// client-chosen strings; hashing keeps them path-safe). Entries are written
// atomically (temp file + rename); an envelope that no longer decodes — a
// torn write from a hard crash — is skipped at restore, never fatal.
//
// Deletions persist the same way: DELETE /wrappers/{key} replaces the
// entry with a tombstone envelope under the same filename, and restore
// applies tombstones after the deploy-time fleet file has loaded — so
// deleting a key that shipped in -fleet stays deleted across restarts.
//
// The registry stores wrapper *configuration* (tokenizer settings, strategy,
// expression source); the expensive compiled automata live next door in the
// extract.DiskCache, so restoring N sites that share one expression decodes
// the artifact once and compiles nothing.
type wrapperRegistry struct {
	dir string
	mu  sync.Mutex // serializes directory mutation
}

type registryEntry struct {
	Key     string          `json:"key"`
	Wrapper json.RawMessage `json:"wrapper,omitempty"`
	Deleted bool            `json:"deleted,omitempty"`
}

func newWrapperRegistry(dir string) (*wrapperRegistry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wrapper registry: %w", err)
	}
	return &wrapperRegistry{dir: dir}, nil
}

func (r *wrapperRegistry) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(r.dir, hex.EncodeToString(sum[:])+".json")
}

// save persists one registration. A nil registry (no cache dir) is a no-op.
func (r *wrapperRegistry) save(key string, raw []byte) error {
	return r.write(registryEntry{Key: key, Wrapper: raw})
}

// delete persists a tombstone for the key, replacing any registration.
// A nil registry is a no-op.
func (r *wrapperRegistry) delete(key string) error {
	return r.write(registryEntry{Key: key, Deleted: true})
}

func (r *wrapperRegistry) write(ent registryEntry) error {
	if r == nil {
		return nil
	}
	blob, err := json.Marshal(ent)
	if err != nil {
		return fmt.Errorf("wrapper registry: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tmp, err := os.CreateTemp(r.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("wrapper registry: %w", err)
	}
	if _, err := tmp.Write(blob); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), r.path(ent.Key))
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wrapper registry: %w", err)
	}
	return nil
}

// restore loads every persisted registration into the fleet through the
// artifact cache, so a restart's compilation cost is one disk-tier decode
// per distinct expression, then applies tombstones (removals win over any
// same-key entry in the deploy-time fleet file, which loads first). Entries
// that fail to decode or compile are skipped and counted, not fatal: one
// bad registration must not keep the rest of the fleet down. A nil registry
// restores nothing.
func (r *wrapperRegistry) restore(fleet *wrapper.Fleet, opt machine.Options, cache extract.ArtifactCache) (restored, deleted, skipped int) {
	if r == nil {
		return 0, 0, 0
	}
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return 0, 0, 0
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(r.dir, e.Name()))
		if err != nil {
			skipped++
			continue
		}
		var ent registryEntry
		if err := json.Unmarshal(blob, &ent); err != nil || ent.Key == "" {
			skipped++
			continue
		}
		if ent.Deleted {
			fleet.Remove(ent.Key)
			deleted++
			continue
		}
		w, err := wrapper.LoadCached(ent.Wrapper, opt, cache)
		if err != nil {
			skipped++
			continue
		}
		fleet.Add(ent.Key, w)
		restored++
	}
	return restored, deleted, skipped
}
