package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"resilex/internal/machine"
	"resilex/internal/wrapper"
)

// loadedWrapper is a compiled wrapper of either kind — exactly one field is
// non-nil. The registration, replication, and rollout paths are
// kind-agnostic (they move persisted payloads); loadedWrapper is where the
// kind is resolved, once, at compile time.
type loadedWrapper struct {
	single *wrapper.Wrapper
	tuple  *wrapper.TupleWrapper
}

// loadAny compiles a persisted wrapper payload of either kind through the
// shared tiered cache (single-pivot and tuple artifacts are
// domain-separated by key, so the kinds never alias).
func (s *Server) loadAny(ctx context.Context, body []byte) (loadedWrapper, error) {
	if wrapper.IsTuplePayload(body) {
		tw, err := wrapper.LoadTupleCachedCtx(ctx, body, s.opt, s.cache)
		return loadedWrapper{tuple: tw}, err
	}
	w, err := wrapper.LoadCachedCtx(ctx, body, s.opt, s.cache)
	return loadedWrapper{single: w}, err
}

// addActive installs lw as the key's active wrapper, removing the key from
// the other kind's fleet — a key serves one kind at a time. Caller holds vmu
// (or is still single-threaded in New).
func (s *Server) addActive(key string, lw loadedWrapper) {
	if lw.tuple != nil {
		s.tupleFleet.Add(key, lw.tuple)
		s.fleet.Remove(key)
		return
	}
	s.fleet.Add(key, lw.single)
	s.tupleFleet.Remove(key)
}

// addCanary stages lw as the key's canary, same one-kind-per-key rule.
func (s *Server) addCanary(key string, lw loadedWrapper) {
	if lw.tuple != nil {
		s.canaryTupleFleet.Add(key, lw.tuple)
		s.canaryFleet.Remove(key)
		return
	}
	s.canaryFleet.Add(key, lw.single)
	s.canaryTupleFleet.Remove(key)
}

// siteCount is the total number of registered sites across both kinds.
func (s *Server) siteCount() int { return s.fleet.Len() + s.tupleFleet.Len() }

// tupleRegion is one extracted slot of one record in the tuples response.
type tupleRegion struct {
	TokenIndex int    `json:"tokenIndex"`
	Start      int    `json:"start"`
	End        int    `json:"end"`
	Source     string `json:"source"`
}

// handleExtractTuples is the record-extraction surface: POST
// /extract/tuples/{key} with the raw page as the body answers every
// extraction vector of the key's k-ary wrapper — one k-slot record per
// vector, in document order — computed by the one-pass multi-split spanner
// (internal/spanner) rather than k single-pivot passes.
//
// The route serves the key's active version only, like the streaming
// surface. A key registered with a single-pivot wrapper is a 422 (the key
// exists but cannot answer records; counted under
// serve_rejected_total{reason="arity"}), distinct from the 404 of an
// unregistered key — so a client that mixes up its fleets learns which
// mistake it made.
func (s *Server) handleExtractTuples(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	tw := s.tupleFleet.Get(key)
	if tw == nil {
		if s.fleet.Get(key) != nil {
			s.reject(w, http.StatusUnprocessableEntity, "arity",
				fmt.Errorf("wrapper %q is single-pivot; use POST /extract or /extract/stream/%s", key, key))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("no tuple wrapper registered for %q", key))
		return
	}
	body, ok := s.readBody(w, r, "text/html")
	if !ok {
		return
	}
	ctx, tc := s.traceContext(w, r)
	ctx, sp := s.obs.StartSpan(ctx, "serve.tuples")
	sp.SetStr("key", key)
	sp.SetAttr("doc_bytes", int64(len(body)))
	start := time.Now()
	records, err := tw.ExtractAllContext(ctx, string(body))
	elapsed := time.Since(start)
	if err != nil {
		sp.SetError(err)
		sp.End()
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			writeError(w, http.StatusServiceUnavailable, err)
		} else {
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	out := struct {
		Key     string          `json:"key"`
		Arity   int             `json:"arity"`
		Count   int             `json:"count"`
		Records [][]tupleRegion `json:"records"`
	}{Key: key, Arity: tw.Arity(), Count: len(records), Records: make([][]tupleRegion, len(records))}
	for i, rec := range records {
		row := make([]tupleRegion, len(rec))
		for j, reg := range rec {
			row[j] = tupleRegion{
				TokenIndex: reg.TokenIndex,
				Start:      reg.Span.Start,
				End:        reg.Span.End,
				Source:     reg.Source,
			}
		}
		out.Records[i] = row
	}
	sp.SetAttr("records", int64(len(records)))
	sp.End()
	s.obs.Counter("spanner_tuples_total").Add(int64(len(records)))
	s.obs.Histogram("serve_tuples_duration_us").ObserveExemplar(elapsed.Microseconds(), tc.TraceID)
	s.wideEvent("serve.tuples_request",
		"trace", tc.TraceID,
		"key", key,
		"doc_bytes", len(body),
		"arity", tw.Arity(),
		"records", len(records),
		"duration_us", elapsed.Microseconds(),
	)
	writeJSON(w, http.StatusOK, out)
}
