package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"resilex/internal/machine"
	"resilex/internal/wrapper"
)

// handleExtractStream is the single-document streaming surface: POST
// /extract/stream/{key} with the raw page as the body. Where POST /extract
// materializes every document before matching, this route pipes the request
// body straight through the wrapper's one-pass streaming extractor — the
// page is tokenized and matched chunk by chunk as it arrives, memory stays
// O(1) beyond the match region, and the warm path performs no allocations
// (see ARCHITECTURE.md §8).
//
// The route serves the key's active version only: canary routing needs the
// request-counting stride bookkeeping of the batch path, and a staged
// canary observes batch traffic regardless. Wrappers whose automata exceed
// the dense-table bounds of the streaming matcher fall back to the
// materialized path within the same request, counted in
// extract_stream_fallback_total.
func (s *Server) handleExtractStream(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	wr := s.fleet.Get(key)
	if wr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no wrapper registered for %q", key))
		return
	}
	ctx, tc := s.traceContext(w, r)
	ctx, sp := s.obs.StartSpan(ctx, "serve.stream")
	sp.SetStr("key", key)
	start := time.Now()
	body := http.MaxBytesReader(w, r.Body, s.maxBody)

	res := extractResult{Key: key}
	bytesIn := int64(0)
	mode := "stream"
	var err error
	if se, serr := wr.Stream(); serr == nil {
		err = se.ExtractReaderTo(ctx, body, func(sr wrapper.StreamRegion) error {
			res.OK = true
			res.TokenIndex = sr.TokenIndex
			res.Start = sr.Span.Start
			res.End = sr.Span.End
			res.Source = string(sr.Source)
			return nil
		})
	} else {
		// Dense-table overflow (or another stream-compile failure): serve the
		// request materialized so the route never fails where POST /extract
		// would succeed.
		mode = "fallback"
		s.obs.Counter("extract_stream_fallback_total").Inc()
		var page []byte
		if page, err = io.ReadAll(body); err == nil {
			bytesIn = int64(len(page))
			var reg wrapper.Region
			if reg, err = wr.ExtractContext(ctx, string(page)); err == nil {
				res.OK = true
				res.TokenIndex = reg.TokenIndex
				res.Start = reg.Span.Start
				res.End = reg.Span.End
				res.Source = reg.Source
			}
		}
	}
	sp.SetStr("mode", mode)
	switch {
	case err == nil:
	case errors.Is(err, wrapper.ErrNotExtracted):
		// An extraction miss is a well-formed answer, mirroring the batch
		// route's per-document errors.
		res.Error = err.Error()
		err = nil
	default:
		sp.SetError(err)
		sp.End()
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.reject(w, http.StatusRequestEntityTooLarge,
				"body_too_large", fmt.Errorf("request body exceeds %d bytes", s.maxBody))
		case errors.Is(err, machine.ErrDeadline) || errors.Is(err, machine.ErrBudget):
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			s.reject(w, http.StatusBadRequest, "body_read", err)
		}
		return
	}
	elapsed := time.Since(start)
	sp.SetAttr("ok", boolAttr(res.OK))
	sp.End()
	s.obs.Histogram("serve_stream_duration_us").ObserveExemplar(elapsed.Microseconds(), tc.TraceID)
	s.wideEvent("serve.stream_request",
		"trace", tc.TraceID,
		"key", key,
		"mode", mode,
		"doc_bytes", bytesIn,
		"ok", res.OK,
		"duration_us", elapsed.Microseconds(),
	)
	writeJSON(w, http.StatusOK, res)
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
