package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"resilex/internal/cluster"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// tuplePayload persists a hand-written record wrapper: one (name cell,
// price cell) pair per table row.
func tuplePayload(t *testing.T) []byte {
	t.Helper()
	data, err := json.Marshal(map[string]any{
		"version": 1,
		"kind":    "tuple",
		"expr":    ".* <TD> /TD <TD> .*",
		"sigma":   []string{"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "H1", "/H1", "P", "/P"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

const tuplesPage = `<h1>Parts List</h1>
<table>
<tr><td>bolt M4</td><td>$0.10</td></tr>
<tr><td>nut M4</td><td>$0.08</td></tr>
<tr><td>washer M4</td><td>$0.02</td></tr>
</table>`

type tuplesResponse struct {
	Key     string          `json:"key"`
	Arity   int             `json:"arity"`
	Count   int             `json:"count"`
	Records [][]tupleRegion `json:"records"`
}

func TestServeExtractTuples(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, "PUT", "/wrappers/parts", tuplePayload(t)); rec.Code != http.StatusCreated {
		t.Fatalf("register tuple wrapper: %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, s, "POST", "/extract/tuples/parts", []byte(tuplesPage))
	if rec.Code != http.StatusOK {
		t.Fatalf("tuples: %d: %s", rec.Code, rec.Body)
	}
	var resp tuplesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Arity != 2 || resp.Count != 3 || len(resp.Records) != 3 {
		t.Fatalf("resp = %+v, want arity 2 count 3", resp)
	}
	for i, rec := range resp.Records {
		if len(rec) != 2 {
			t.Fatalf("record %d has %d slots", i, len(rec))
		}
		if rec[0].Start >= rec[1].Start {
			t.Errorf("record %d slots out of order", i)
		}
		if i > 0 && resp.Records[i-1][0].Start >= rec[0].Start {
			t.Error("records out of document order")
		}
		for j, reg := range rec {
			if !strings.HasPrefix(reg.Source, "<td") {
				t.Errorf("record %d slot %d = %q", i, j, reg.Source)
			}
		}
	}
	// A recordless page answers an empty list, not an error.
	rec = do(t, s, "POST", "/extract/tuples/parts", []byte(`<h1>empty</h1>`))
	if rec.Code != http.StatusOK {
		t.Fatalf("empty page: %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 0 || len(resp.Records) != 0 {
		t.Fatalf("empty page resp = %+v", resp)
	}
	// The tuple key must not serve the single-pivot batch surface as if it
	// were a plain wrapper.
	if s.fleet.Get("parts") != nil {
		t.Fatal("tuple registration leaked into the single-pivot fleet")
	}
}

func TestServeTuples404vs422(t *testing.T) {
	s, _ := testServer(t) // "vs" is a single-pivot wrapper
	o := s.obs
	// Unregistered key: 404.
	if rec := do(t, s, "POST", "/extract/tuples/nosuch", []byte(tuplesPage)); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", rec.Code)
	}
	// Known single-pivot key: 422, counted by reason.
	rec := do(t, s, "POST", "/extract/tuples/vs", []byte(tuplesPage))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("single-pivot key: %d, want 422: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "single-pivot") {
		t.Errorf("422 body does not explain the arity mismatch: %s", rec.Body)
	}
	snap := o.Metrics.Snapshot()
	if n := snap.Counters[obs.WithLabels("serve_rejected_total", "reason", "arity")]; n != 1 {
		t.Errorf("serve_rejected_total{reason=arity} = %d, want 1", n)
	}
	// And the converse: the tuple key rejects on the batch surface with a
	// per-document unknown-key error (it is not in the single-pivot fleet),
	// keeping the surfaces honestly separated.
	if rec := do(t, s, "PUT", "/wrappers/parts", tuplePayload(t)); rec.Code != http.StatusCreated {
		t.Fatalf("register tuple wrapper: %d", rec.Code)
	}
	res := extractOne(t, s, "parts", tuplesPage)
	if res.OK || !strings.Contains(res.Error, "no wrapper registered") {
		t.Errorf("batch surface served a tuple key: %+v", res)
	}
}

// TestServeTuplesRollout drives a tuple wrapper through the versioned
// rollout machinery — replicated put, canary, promote — confirming k-ary
// payloads ride the same replication path as single-pivot ones.
func TestServeTuplesRollout(t *testing.T) {
	s, _ := testServer(t)
	tp := tuplePayload(t)
	if rec := doFrame(t, s, cluster.EncodeOp(cluster.Op{Kind: cluster.OpPut, Key: "parts", Payload: tp})); rec.Code != http.StatusCreated {
		t.Fatalf("replicated tuple put: %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, "POST", "/extract/tuples/parts", []byte(tuplesPage)); rec.Code != http.StatusOK {
		t.Fatalf("tuples after replicated put: %d", rec.Code)
	}
	// Stage the same payload as a canary and promote it.
	if rec := doFrame(t, s, cluster.EncodeOp(cluster.Op{Kind: cluster.OpCanary, Key: "parts", Version: 9, Payload: tp})); rec.Code != http.StatusCreated {
		t.Fatalf("replicated tuple canary: %d: %s", rec.Code, rec.Body)
	}
	if s.canaryTupleFleet.Get("parts") == nil {
		t.Fatal("tuple canary not staged in the tuple canary fleet")
	}
	if rec := do(t, s, "POST", "/wrappers/parts/promote", nil); rec.Code != http.StatusOK {
		t.Fatalf("promote tuple canary: %d", rec.Code)
	}
	if s.canaryTupleFleet.Get("parts") != nil {
		t.Fatal("promoted canary still staged")
	}
	body := decodeVersions(t, s, "parts")
	if versionOf(body, "active") != 9 || body["lastOutcome"] != "promoted" {
		t.Fatalf("after tuple promote: %v", body)
	}
	if rec := do(t, s, "POST", "/extract/tuples/parts", []byte(tuplesPage)); rec.Code != http.StatusOK {
		t.Fatalf("tuples after promote: %d", rec.Code)
	}
	// A single-pivot PUT over the tuple key flips the kind and frees the
	// tuple fleet slot.
	single := trainedPayload(t)
	if rec := do(t, s, "PUT", "/wrappers/parts", single); rec.Code != http.StatusCreated {
		t.Fatalf("kind-flip put: %d", rec.Code)
	}
	if s.tupleFleet.Get("parts") != nil {
		t.Fatal("kind flip left the tuple wrapper registered")
	}
	if rec := do(t, s, "POST", "/extract/tuples/parts", []byte(tuplesPage)); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("tuples on flipped key: %d, want 422", rec.Code)
	}
	// DELETE removes the (now single-pivot) key entirely.
	if rec := do(t, s, "DELETE", "/wrappers/parts", nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/extract/tuples/parts", []byte(tuplesPage)); rec.Code != http.StatusNotFound {
		t.Fatalf("tuples on deleted key: %d, want 404", rec.Code)
	}
}

// TestServeTuplesRestart registers a tuple wrapper on a disk-backed server
// and confirms a restarted server restores it — registry replay through
// loadAny, artifact decode through the shared disk tier.
func TestServeTuplesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{CacheDir: dir, CacheCap: 8, DiskCap: -1, Observer: obs.New(), RestoreLog: io.Discard}
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s1, "PUT", "/wrappers/parts", tuplePayload(t)); rec.Code != http.StatusCreated {
		t.Fatalf("register: %d: %s", rec.Code, rec.Body)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s2, "POST", "/extract/tuples/parts", []byte(tuplesPage))
	if rec.Code != http.StatusOK {
		t.Fatalf("tuples after restart: %d: %s", rec.Code, rec.Body)
	}
	var resp tuplesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 {
		t.Fatalf("restored wrapper found %d records, want 3", resp.Count)
	}
}

func TestServeTuplesWrapperKindStable(t *testing.T) {
	// IsTuplePayload is the kind discriminator the whole serve layer
	// branches on; a single-pivot payload must not probe as a tuple.
	if wrapper.IsTuplePayload(trainedPayload(t)) {
		t.Fatal("single-pivot payload probed as tuple")
	}
	if !wrapper.IsTuplePayload(tuplePayload(t)) {
		t.Fatal("tuple payload not recognized")
	}
}
