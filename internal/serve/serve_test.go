package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"resilex/internal/cluster"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

const pageTop = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

const pageBottom = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>`

// trainedPayload trains the shared test wrapper and returns its persisted
// JSON.
func trainedPayload(t *testing.T) []byte {
	t.Helper()
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: pageTop, Target: wrapper.TargetMarker()},
		{HTML: pageBottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func testServer(t *testing.T) (*Server, []byte) {
	t.Helper()
	payload := trainedPayload(t)
	s, err := New(Config{CacheCap: 8, Observer: obs.New(), Batch: wrapper.BatchOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	w, err := wrapper.LoadCached(payload, machine.Options{}, s.Cache())
	if err != nil {
		t.Fatal(err)
	}
	s.Fleet().Add("vs", w)
	// Reset the cache-stat noise from seeding so tests assert from zero.
	return s, payload
}

func do(t *testing.T, s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Mux().ServeHTTP(rec, req)
	return rec
}

func TestServeExtractBatch(t *testing.T) {
	s, _ := testServer(t)
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{
		{Key: "vs", HTML: pageTop},
		{Key: "nosuch", HTML: pageTop},
		{Key: "vs", HTML: "<html>nothing</html>"},
		{Key: "vs", HTML: pageBottom},
	}})
	rec := do(t, s, "POST", "/extract", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results, want 4", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Index != i {
			t.Errorf("results out of order: %d at %d", r.Index, i)
		}
	}
	for _, i := range []int{0, 3} {
		r := resp.Results[i]
		if !r.OK || !strings.Contains(r.Source, `type="text"`) {
			t.Errorf("result %d = %+v, want text-input extraction", i, r)
		}
	}
	if resp.Results[1].OK || !strings.Contains(resp.Results[1].Error, "no wrapper registered") {
		t.Errorf("result 1 = %+v, want unknown-key error", resp.Results[1])
	}
	if resp.Results[2].OK || resp.Results[2].Error == "" {
		t.Errorf("result 2 = %+v, want extraction failure", resp.Results[2])
	}
	if rec := do(t, s, "POST", "/extract", []byte("{")); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rec.Code)
	}
}

func TestServePutWrapperAndHealthz(t *testing.T) {
	s, payload := testServer(t)
	// Register the same persisted wrapper under two new keys: the second
	// registration must hit the compiled-artifact cache. (testServer's seed
	// load already primed one miss.)
	before := s.Cache().Stats()
	for _, key := range []string{"mirror1", "mirror2"} {
		rec := do(t, s, "PUT", "/wrappers/"+key, payload)
		if rec.Code != http.StatusCreated {
			t.Fatalf("PUT %s: status %d: %s", key, rec.Code, rec.Body)
		}
	}
	if got := s.Fleet().Len(); got != 3 {
		t.Errorf("fleet size = %d, want 3", got)
	}
	st := s.Cache().Stats()
	if hits := st.Hits - before.Hits; hits != 2 {
		t.Errorf("cache hits for re-registrations = %d, want 2", hits)
	}
	if misses := st.Misses - before.Misses; misses != 0 {
		t.Errorf("cache misses for re-registrations = %d, want 0", misses)
	}
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "mirror2", HTML: pageTop}}})
	rec := do(t, s, "POST", "/extract", body)
	var resp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || !resp.Results[0].OK {
		t.Fatalf("extraction via registered wrapper failed: %s", rec.Body)
	}
	if rec := do(t, s, "PUT", "/wrappers/bad", []byte("{")); rec.Code != http.StatusBadRequest {
		t.Errorf("bad payload: status %d, want 400", rec.Code)
	}

	health := do(t, s, "GET", "/healthz", nil)
	if health.Code != http.StatusOK {
		t.Fatalf("healthz: %d", health.Code)
	}
	var h struct {
		Status string `json:"status"`
		Sites  int    `json:"sites"`
	}
	if err := json.Unmarshal(health.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Sites != 3 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestServeDeleteWrapper(t *testing.T) {
	s, _ := testServer(t)
	if rec := do(t, s, "DELETE", "/wrappers/nosuch", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown key: status %d, want 404", rec.Code)
	}
	rec := do(t, s, "DELETE", "/wrappers/vs", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", rec.Code, rec.Body)
	}
	if got := s.Fleet().Len(); got != 0 {
		t.Errorf("fleet size after DELETE = %d, want 0", got)
	}
	// The key is gone: a second DELETE is a 404, and extraction fails.
	if rec := do(t, s, "DELETE", "/wrappers/vs", nil); rec.Code != http.StatusNotFound {
		t.Errorf("second DELETE: status %d, want 404", rec.Code)
	}
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "vs", HTML: pageTop}}})
	erec := do(t, s, "POST", "/extract", body)
	var resp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(erec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].OK {
		t.Errorf("extract after delete = %s, want unknown-key failure", erec.Body)
	}
}

// TestServeBodyLimits covers the request-hardening path: an oversized body
// is 413, a foreign Content-Type is 415, and both rejections are counted.
func TestServeBodyLimits(t *testing.T) {
	payload := trainedPayload(t)
	o := obs.New()
	s, err := New(Config{CacheCap: 8, MaxBodyBytes: 1024, Observer: o, Batch: wrapper.BatchOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 4096)
	for _, path := range []string{"/extract", "/wrappers/vs"} {
		method := "POST"
		if strings.HasPrefix(path, "/wrappers") {
			method = "PUT"
		}
		if rec := do(t, s, method, path, big); rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s %s oversized: status %d, want 413", method, path, rec.Code)
		}
	}

	req := httptest.NewRequest("PUT", "/wrappers/vs", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "text/plain")
	rec := httptest.NewRecorder()
	s.Mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Errorf("foreign Content-Type: status %d, want 415", rec.Code)
	}

	// Declared application/json (with parameters) is accepted.
	req = httptest.NewRequest("PUT", "/wrappers/vs", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	rec = httptest.NewRecorder()
	s.Mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Errorf("json Content-Type: status %d, want 201: %s", rec.Code, rec.Body)
	}

	snap := o.Metrics.Snapshot()
	if n := snap.Counters[obs.WithLabels("serve_rejected_total", "reason", "body_too_large")]; n != 2 {
		t.Errorf("body_too_large rejections = %d, want 2", n)
	}
	if n := snap.Counters[obs.WithLabels("serve_rejected_total", "reason", "content_type")]; n != 1 {
		t.Errorf("content_type rejections = %d, want 1", n)
	}
}

// TestServeClusterApply drives the replication endpoint directly: a framed
// put registers the wrapper, a framed delete removes it, and corrupt or
// foreign bodies are rejected without touching the fleet.
func TestServeClusterApply(t *testing.T) {
	s, payload := trainedServerNoVS(t)

	put := cluster.EncodeOp(cluster.Op{Kind: cluster.OpPut, Key: "site-a", Payload: payload})
	rec := doFrame(t, s, put)
	if rec.Code != http.StatusCreated {
		t.Fatalf("apply put: status %d: %s", rec.Code, rec.Body)
	}
	if s.Fleet().Get("site-a") == nil {
		t.Fatal("wrapper not registered via cluster apply")
	}

	del := cluster.EncodeOp(cluster.Op{Kind: cluster.OpDelete, Key: "site-a"})
	if rec := doFrame(t, s, del); rec.Code != http.StatusOK {
		t.Fatalf("apply delete: status %d: %s", rec.Code, rec.Body)
	}
	if s.Fleet().Get("site-a") != nil {
		t.Fatal("wrapper still registered after replicated delete")
	}
	if rec := doFrame(t, s, del); rec.Code != http.StatusNotFound {
		t.Errorf("replicated delete of unknown key: status %d, want 404", rec.Code)
	}

	// A corrupted frame (checksum broken) is a 400; a non-frame body is 415.
	torn := append([]byte(nil), put...)
	torn[len(torn)-1] ^= 0xFF
	if rec := doFrame(t, s, torn); rec.Code != http.StatusBadRequest {
		t.Errorf("corrupt frame: status %d, want 400", rec.Code)
	}
	if rec := doFrame(t, s, []byte("not a frame")); rec.Code != http.StatusUnsupportedMediaType {
		t.Errorf("non-frame body: status %d, want 415", rec.Code)
	}
}

// trainedServerNoVS builds a fresh memory-only server with no wrappers.
func trainedServerNoVS(t *testing.T) (*Server, []byte) {
	t.Helper()
	payload := trainedPayload(t)
	s, err := New(Config{CacheCap: 8, Observer: obs.New(), Batch: wrapper.BatchOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return s, payload
}

// doFrame posts a framed cluster op with the frame Content-Type.
func doFrame(t *testing.T, s *Server, frame []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/cluster/apply", bytes.NewReader(frame))
	req.Header.Set("Content-Type", cluster.OpContentType)
	rec := httptest.NewRecorder()
	s.Mux().ServeHTTP(rec, req)
	return rec
}

func TestServeMetricsExposed(t *testing.T) {
	s, _ := testServer(t)
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "vs", HTML: pageTop}}})
	do(t, s, "POST", "/extract", body)
	rec := do(t, s, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	for _, want := range []string{"serve_requests_total", "wrapper_batch_docs_total"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
