package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync/atomic"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// The per-key version state machine behind the continuous-refresh pipeline.
// Every key carries a monotone version counter; each mutation — put, delete,
// canary, promote, rollback — assigns or consumes versions from it, so the
// ordering of operations is recoverable from disk after a restart and a
// DELETE followed by a re-PUT resurrects the key with a strictly higher
// version instead of staying tombstoned.
//
// Lifecycle of a refresh: a canary version is staged next to the active one
// and receives a configured fraction of the key's traffic (stride-routed, so
// the split is deterministic, not sampled). A canary miss falls back to the
// active wrapper within the same request — the canary can degrade quality
// statistics but never loses a request. Promotion swaps canary→active and
// keeps the old active as the prior version; rollback discards the canary
// (or, after a promotion, reverts to the prior version).

// versionedWrapper is one immutable registered wrapper version: the raw
// persisted JSON plus the version number it was assigned.
type versionedWrapper struct {
	Version uint64          `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// canaryStats is the sliding observation window opened at canary deploy
// time: extraction outcomes on the canary-routed fraction, outcomes on the
// active-routed remainder of the same key, and how often a canary miss fell
// back to the active wrapper. All fields are atomics — the extract path
// updates them without taking the version lock.
type canaryStats struct {
	canaryOK  atomic.Uint64
	canaryErr atomic.Uint64
	activeOK  atomic.Uint64
	activeErr atomic.Uint64
	fallback  atomic.Uint64
}

// keyVersions is the version state of one key. Guarded by Server.vmu except
// the stats atomics and the round-robin counter.
type keyVersions struct {
	lastVersion uint64
	active      *versionedWrapper
	canary      *versionedWrapper
	prior       *versionedWrapper
	deleted     bool
	// lastOutcome records how the most recent canary concluded: "promoted"
	// or "rolled-back" ("" while none has concluded). Exposed on the
	// versions endpoint so rollout tooling can poll for a verdict.
	lastOutcome string
	// rr is the per-key request counter driving the deterministic canary
	// stride split.
	rr    atomic.Uint64
	stats canaryStats
}

// errVersionConflict classifies promote/rollback guards that named a version
// the server is not currently staging — a stale rollout decision.
var errVersionConflict = errors.New("serve: version conflict")

// canaryStride converts the configured canary fraction into a stride: one of
// every stride requests for the key routes to the canary.
func canaryStride(fraction float64) uint64 {
	if fraction <= 0 || fraction > 1 || math.IsNaN(fraction) {
		return 4 // default fraction 0.25
	}
	s := uint64(math.Round(1 / fraction))
	if s < 1 {
		return 1
	}
	return s
}

// ensureVersions returns the version state for key, creating it. Caller
// holds vmu.
func (s *Server) ensureVersions(key string) *keyVersions {
	kv := s.versions[key]
	if kv == nil {
		kv = &keyVersions{}
		s.versions[key] = kv
	}
	return kv
}

// nextVersion assigns the next version for kv: one past the monotone
// counter, or the replicated version when the originating node assigned a
// higher one (so replicas converge on the origin's numbering).
func (kv *keyVersions) nextVersion(replicated uint64) uint64 {
	v := kv.lastVersion + 1
	if replicated > v {
		v = replicated
	}
	kv.lastVersion = v
	return v
}

// gaugeVersions publishes the active/canary version numbers for the key (0 =
// none). Caller holds vmu.
func (s *Server) gaugeVersions(key string, kv *keyVersions) {
	var active, canary uint64
	if kv.active != nil {
		active = kv.active.Version
	}
	if kv.canary != nil {
		canary = kv.canary.Version
	}
	s.obs.Gauge(obs.WithLabels("refresh_active_version", "site", key)).Set(int64(active))
	s.obs.Gauge(obs.WithLabels("refresh_canary_version", "site", key)).Set(int64(canary))
}

// canaryWrapper stages payload as the canary version for key. The key must
// already have an active wrapper — a canary is a candidate replacement, not
// a first registration. version, when non-zero, is the version the
// originating node assigned (replication); zero assigns locally.
func (s *Server) canaryWrapper(ctx context.Context, key string, body []byte, version uint64) (status int, resp map[string]any, err error) {
	lw, err := s.loadAny(ctx, body)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			status = http.StatusServiceUnavailable
		}
		return status, nil, err
	}
	s.vmu.Lock()
	defer s.vmu.Unlock()
	kv := s.versions[key]
	if kv == nil || kv.active == nil {
		return http.StatusNotFound, nil, fmt.Errorf("no active wrapper for %q to canary against", key)
	}
	v := kv.nextVersion(version)
	kv.canary = &versionedWrapper{Version: v, Payload: append(json.RawMessage(nil), body...)}
	kv.stats = canaryStats{} // fresh observation window
	s.addCanary(key, lw)
	s.obs.Counter(obs.WithLabels("refresh_canary_deploy_total", "site", key)).Inc()
	s.gaugeVersions(key, kv)
	resp = map[string]any{"key": key, "version": v}
	if s.registry != nil {
		resp["persisted"] = s.registry.writeState(key, kv) == nil
	}
	return http.StatusCreated, resp, nil
}

// promoteWrapper makes the staged canary the active wrapper. version, when
// non-zero, must name the staged canary (guard against promoting a canary
// the caller never observed).
func (s *Server) promoteWrapper(key string, version uint64) (status int, resp map[string]any, err error) {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	kv := s.versions[key]
	if kv == nil || kv.canary == nil {
		return http.StatusNotFound, nil, fmt.Errorf("no canary staged for %q", key)
	}
	if version != 0 && version != kv.canary.Version {
		return http.StatusConflict, nil, fmt.Errorf("%w: promote names version %d, staged canary is %d",
			errVersionConflict, version, kv.canary.Version)
	}
	lw := loadedWrapper{single: s.canaryFleet.Get(key), tuple: s.canaryTupleFleet.Get(key)}
	if lw.single == nil && lw.tuple == nil {
		// The compiled canary should be resident; recompile from the payload
		// if it is not (e.g. a replica that restarted between ops).
		if lw, err = s.loadAny(context.Background(), kv.canary.Payload); err != nil {
			return http.StatusInternalServerError, nil, fmt.Errorf("recompiling canary for promote: %w", err)
		}
	}
	kv.prior = kv.active
	kv.active = kv.canary
	kv.canary = nil
	kv.lastOutcome = "promoted"
	s.addActive(key, lw)
	s.canaryFleet.Remove(key)
	s.canaryTupleFleet.Remove(key)
	s.obs.Counter(obs.WithLabels("refresh_promote_total", "site", key)).Inc()
	s.gaugeVersions(key, kv)
	resp = map[string]any{"key": key, "version": kv.active.Version, "outcome": "promoted"}
	if s.registry != nil {
		resp["persisted"] = s.registry.writeState(key, kv) == nil
	}
	return http.StatusOK, resp, nil
}

// rollbackWrapper discards the staged canary, or — when no canary is staged
// but a prior version exists — reverts the active wrapper to the prior
// version (the post-promotion escape hatch). version, when non-zero, names
// the canary (or promoted version) being rolled back.
func (s *Server) rollbackWrapper(key string, version uint64) (status int, resp map[string]any, err error) {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	kv := s.versions[key]
	if kv == nil {
		return http.StatusNotFound, nil, fmt.Errorf("no versions recorded for %q", key)
	}
	switch {
	case kv.canary != nil:
		if version != 0 && version != kv.canary.Version {
			return http.StatusConflict, nil, fmt.Errorf("%w: rollback names version %d, staged canary is %d",
				errVersionConflict, version, kv.canary.Version)
		}
		rolled := kv.canary.Version
		kv.canary = nil
		kv.lastOutcome = "rolled-back"
		s.canaryFleet.Remove(key)
		s.canaryTupleFleet.Remove(key)
		s.obs.Counter(obs.WithLabels("refresh_rollback_total", "site", key)).Inc()
		s.gaugeVersions(key, kv)
		resp = map[string]any{"key": key, "version": rolled, "outcome": "rolled-back"}
	case kv.prior != nil && kv.active != nil:
		if version != 0 && version != kv.active.Version {
			return http.StatusConflict, nil, fmt.Errorf("%w: rollback names version %d, active is %d",
				errVersionConflict, version, kv.active.Version)
		}
		lw, err := s.loadAny(context.Background(), kv.prior.Payload)
		if err != nil {
			return http.StatusInternalServerError, nil, fmt.Errorf("recompiling prior version for rollback: %w", err)
		}
		rolled := kv.active.Version
		kv.active = kv.prior
		kv.prior = nil
		kv.lastOutcome = "rolled-back"
		s.addActive(key, lw)
		s.obs.Counter(obs.WithLabels("refresh_rollback_total", "site", key)).Inc()
		s.gaugeVersions(key, kv)
		resp = map[string]any{"key": key, "version": rolled, "restored": kv.active.Version, "outcome": "rolled-back"}
	default:
		return http.StatusNotFound, nil, fmt.Errorf("nothing to roll back for %q", key)
	}
	if s.registry != nil {
		resp["persisted"] = s.registry.writeState(key, s.versions[key]) == nil
	}
	return http.StatusOK, resp, nil
}

// versionsStatus snapshots the version state of one key for the versions
// endpoint and the refresh controller's judgment.
func (s *Server) versionsStatus(key string) (map[string]any, bool) {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	kv := s.versions[key]
	if kv == nil {
		return nil, false
	}
	body := map[string]any{
		"key":         key,
		"lastVersion": kv.lastVersion,
		"deleted":     kv.deleted,
		"lastOutcome": kv.lastOutcome,
	}
	if kv.active != nil {
		body["active"] = map[string]any{"version": kv.active.Version}
	}
	if kv.canary != nil {
		body["canary"] = map[string]any{"version": kv.canary.Version}
	}
	if kv.prior != nil {
		body["prior"] = map[string]any{"version": kv.prior.Version}
	}
	body["stats"] = map[string]any{
		"canaryOK":  kv.stats.canaryOK.Load(),
		"canaryErr": kv.stats.canaryErr.Load(),
		"activeOK":  kv.stats.activeOK.Load(),
		"activeErr": kv.stats.activeErr.Load(),
		"fallback":  kv.stats.fallback.Load(),
	}
	return body, true
}

// Deployment surface for the refresh controller (refresh.Deployment is
// satisfied structurally — serve does not import refresh).

// Sites lists every key with an active wrapper, either kind.
func (s *Server) Sites() []string {
	keys := append(s.fleet.Keys(), s.tupleFleet.Keys()...)
	sort.Strings(keys)
	return keys
}

// ActivePayload returns the persisted JSON of the key's active version (nil
// when the key has none recorded — e.g. it came from a deploy-time fleet
// file without a registry entry).
func (s *Server) ActivePayload(key string) []byte {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	if kv := s.versions[key]; kv != nil && kv.active != nil {
		return append([]byte(nil), kv.active.Payload...)
	}
	return nil
}

// HasCanary reports whether a canary is staged for the key.
func (s *Server) HasCanary(key string) bool {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	kv := s.versions[key]
	return kv != nil && kv.canary != nil
}

// DeployCanary stages payload as the key's canary version.
func (s *Server) DeployCanary(key string, payload []byte) (uint64, error) {
	_, resp, err := s.canaryWrapper(context.Background(), key, payload, 0)
	if err != nil {
		return 0, err
	}
	v, _ := resp["version"].(uint64)
	return v, nil
}

// CanaryStats reports the observation window opened at the last canary
// deploy: extraction outcomes on the canary-routed and active-routed
// fractions of the key's traffic.
func (s *Server) CanaryStats(key string) (canaryOK, canaryErr, activeOK, activeErr uint64) {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	kv := s.versions[key]
	if kv == nil {
		return 0, 0, 0, 0
	}
	return kv.stats.canaryOK.Load(), kv.stats.canaryErr.Load(),
		kv.stats.activeOK.Load(), kv.stats.activeErr.Load()
}

// Promote promotes the staged canary (version 0 = whatever is staged).
func (s *Server) Promote(key string, version uint64) error {
	_, _, err := s.promoteWrapper(key, version)
	return err
}

// Rollback rolls back the staged canary (version 0 = whatever is staged).
func (s *Server) Rollback(key string, version uint64) error {
	_, _, err := s.rollbackWrapper(key, version)
	return err
}

// Extract runs the key's active wrapper over html — the probe the refresh
// controller scores sampled pages with. Tuple keys probe as record
// extraction: a page yielding no records is a miss.
func (s *Server) Extract(key, html string) error {
	if tw := s.tupleFleet.Get(key); tw != nil {
		records, err := tw.ExtractAll(html)
		if err != nil {
			return err
		}
		if len(records) == 0 {
			return wrapper.ErrNotExtracted
		}
		return nil
	}
	wr := s.fleet.Get(key)
	if wr == nil {
		return fmt.Errorf("no wrapper registered for %q", key)
	}
	_, err := wr.Extract(html)
	return err
}
