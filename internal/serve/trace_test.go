package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilex/internal/cluster"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// tracedShard is one real serve.Server with its own observer, mounted on a
// real HTTP listener — a whole shard process as far as tracing is concerned
// (its spans only reach the router via the /debug/traces HTTP fetch).
type tracedShard struct {
	srv *Server
	obs *obs.Observer
	web *httptest.Server
}

func newTracedShard(t *testing.T) *tracedShard {
	t.Helper()
	o := obs.New()
	// CanaryFraction 1 routes every doc of a canaried key to the canary, so a
	// bad canary deterministically produces fallback spans.
	s, err := New(Config{CacheCap: 8, Observer: o, CanaryFraction: 1,
		Batch: wrapper.BatchOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(s.Mux())
	t.Cleanup(web.Close)
	return &tracedShard{srv: s, obs: o, web: web}
}

// TestClusterTraceAssembly is the end-to-end tracing test the tentpole hangs
// on: two real shard processes behind a router, a wrapper registration and a
// bad canary replicated through the router, then a routed extraction whose
// every canary attempt misses and falls back — all under ONE client-minted
// trace ID. The assembled trace fetched from the router's
// GET /debug/traces/{id} must contain the router's own routing spans, the
// replication fan-out, both shards' apply+cache spans, and the serving
// shard's extract/canary/fallback spans, stitched into one tree.
func TestClusterTraceAssembly(t *testing.T) {
	shards := []*tracedShard{newTracedShard(t), newTracedShard(t)}
	peers := []string{shards[0].web.URL, shards[1].web.URL}
	ro := obs.New()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers: peers, Replicas: 2, Observer: ro, ProxyTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	routerWeb := httptest.NewServer(rt.Mux())
	defer routerWeb.Close()

	traceID := obs.NewTraceID()
	do := func(method, path string, body []byte, contentType string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, routerWeb.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		req.Header.Set(obs.TraceHeader, traceID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// One trace covers the whole lifecycle: register the active wrapper and
	// stage the bad canary (trained on the future family, so live old-family
	// traffic misses), then extract.
	if resp := do("PUT", "/wrappers/vs", trainedPayload(t), "application/json"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("routed PUT: %d", resp.StatusCode)
	}
	if resp := do("PUT", "/wrappers/vs/canary", futurePayload(t), "application/json"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("routed canary PUT: %d", resp.StatusCode)
	}
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "vs", HTML: pageTop}}})
	resp := do("POST", "/extract", body, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed extract: %d", resp.StatusCode)
	}
	if echoed := resp.Header.Get(obs.TraceHeader); echoed != traceID {
		t.Fatalf("response trace header = %q, want %q", echoed, traceID)
	}
	var out struct {
		Results []extractResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || !out.Results[0].OK {
		t.Fatalf("extract results = %+v, want one fallback-served success", out.Results)
	}

	// Fetch the assembled trace from the router (the ingress node): its own
	// spans merged with both shards' halves over HTTP.
	tresp, err := http.Get(routerWeb.URL + "/debug/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: %d", tresp.StatusCode)
	}
	var trace struct {
		TraceID string           `json:"traceId"`
		Spans   []obs.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	if trace.TraceID != traceID {
		t.Fatalf("assembled trace id = %q, want %q", trace.TraceID, traceID)
	}

	byName := map[string][]obs.SpanRecord{}
	for _, s := range trace.Spans {
		if s.TraceID != traceID {
			t.Errorf("span %s carries foreign trace %q", s.Name, s.TraceID)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	// The router half: routing, per-attempt, and replication fan-out spans.
	for _, want := range []string{"router.extract", "router.attempt", "router.replicate"} {
		if len(byName[want]) == 0 {
			t.Errorf("assembled trace missing router span %q (have %v)", want, spanNames(trace.Spans))
		}
	}
	// The shard half: request, batch phases, the canary miss, its fallback,
	// the replicated applies and the cache-tier lookups behind them.
	for _, want := range []string{"serve.extract", "serve.canary", "serve.fallback", "shard.apply", "cache.lookup"} {
		if len(byName[want]) == 0 {
			t.Errorf("assembled trace missing shard span %q (have %v)", want, spanNames(trace.Spans))
		}
	}
	// Replication reached both owner processes: the put and the canary each
	// fan out to 2 owners, so 4 apply spans from 2 distinct shard stores.
	if got := len(byName["shard.apply"]); got != 4 {
		t.Errorf("shard.apply spans = %d, want 4 (put+canary × 2 owners)", got)
	}
	for i, sh := range shards {
		if len(sh.obs.Traces.Trace(traceID)) == 0 {
			t.Errorf("shard %d holds no spans of the trace — assembly did not span both processes", i)
		}
	}
	// Parentage is stitched across the process boundary: the serving shard's
	// serve.extract span parents to one of the router's attempt spans.
	attempts := map[int64]bool{}
	for _, s := range byName["router.attempt"] {
		attempts[s.ID] = true
	}
	stitched := false
	for _, s := range byName["serve.extract"] {
		if attempts[s.Parent] {
			stitched = true
		}
	}
	if !stitched {
		t.Error("serve.extract does not parent to a router.attempt span across the process boundary")
	}
	// The canary fallback is attributed on the request span.
	sawFallbackRung := false
	for _, s := range byName["serve.extract"] {
		for _, a := range s.SAttrs {
			if a.Key == "rung" && a.Value == "canary_fallback" {
				sawFallbackRung = true
			}
		}
	}
	if !sawFallbackRung {
		t.Error("no serve.extract span carries rung=canary_fallback")
	}

	// The routed request left per-node attempt counters on the router and a
	// trace-ID exemplar on the serving shard's latency histogram, visible in
	// the OpenMetrics exposition.
	snap := ro.Metrics.Snapshot()
	okAttempts := int64(0)
	for _, node := range peers {
		okAttempts += snap.Counters[obs.WithLabels("cluster_route_attempts_total", "node", node, "outcome", "ok")]
	}
	if okAttempts == 0 {
		t.Errorf("no ok route attempts counted per node: %v", snap.Counters)
	}
	sawExemplar := false
	for _, sh := range shards {
		var b strings.Builder
		if err := sh.obs.Metrics.WriteOpenMetrics(&b); err != nil {
			t.Fatal(err)
		}
		om := b.String()
		if !strings.HasSuffix(om, "# EOF\n") {
			t.Fatal("shard OpenMetrics exposition not terminated with # EOF")
		}
		if strings.Contains(om, "serve_extract_duration_us_bucket") &&
			strings.Contains(om, `# {trace_id="`+traceID+`"}`) {
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Error("no shard exposes a serve_extract_duration_us exemplar for the trace")
	}
}

func spanNames(spans []obs.SpanRecord) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range spans {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	return names
}

// TestWideEventSampling: with a logger installed and a sampling interval of
// 2, every second request emits one serve.request wide event carrying the
// request's trace ID, rung and outcome fields.
func TestWideEventSampling(t *testing.T) {
	o := obs.New()
	type event struct {
		name string
		kv   map[string]any
	}
	var events []event
	o.Log = obs.FuncLogger(func(name string, kv ...any) {
		m := map[string]any{}
		for i := 0; i+1 < len(kv); i += 2 {
			m[kv[i].(string)] = kv[i+1]
		}
		events = append(events, event{name, m})
	})
	payload := trainedPayload(t)
	s, err := New(Config{CacheCap: 8, Observer: o, WideEventSample: 2,
		Batch: wrapper.BatchOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, "PUT", "/wrappers/vs", payload); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}
	var put []event
	for _, e := range events {
		if e.name == "serve.wrapper_put" {
			put = append(put, e)
		}
	}
	if len(put) != 1 {
		t.Fatalf("wrapper_put wide events = %d, want 1", len(put))
	}
	if put[0].kv["key"] != "vs" || put[0].kv["cache_tier"] == "" {
		t.Fatalf("wrapper_put event fields = %v", put[0].kv)
	}

	events = nil
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "vs", HTML: pageTop}}})
	for i := 0; i < 4; i++ {
		if rec := do(t, s, "POST", "/extract", body); rec.Code != http.StatusOK {
			t.Fatalf("extract %d: %d", i, rec.Code)
		}
	}
	var reqs []event
	for _, e := range events {
		if e.name == "serve.request" {
			reqs = append(reqs, e)
		}
	}
	if len(reqs) != 2 {
		t.Fatalf("sampled serve.request events = %d, want 2 of 4", len(reqs))
	}
	e := reqs[0].kv
	if e["docs"] != 1 || e["ok"] != 1 || e["rung"] != "active" {
		t.Fatalf("wide event fields = %v", e)
	}
	trace, _ := e["trace"].(string)
	if len(trace) != 32 {
		t.Fatalf("wide event trace id = %q, want a minted 128-bit id", trace)
	}
}
