package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

func diskServer(t *testing.T, dir string, fleetData []byte, o *obs.Observer) *Server {
	t.Helper()
	s, err := New(Config{
		CacheDir:  dir,
		CacheCap:  8,
		DiskCap:   -1,
		FleetData: fleetData,
		Observer:  o,
		Batch:     wrapper.BatchOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestServeRestartSemantics is the persistence contract end to end: PUT a
// wrapper into a server with a cache dir, tear the server down, build a
// fresh one over the same directory, and the first POST /extract must
// succeed with the compiled artifact coming off disk — visible as a
// disk-tier hit (and no disk miss) in /metrics.json — without any
// re-registration.
func TestServeRestartSemantics(t *testing.T) {
	dir := t.TempDir()
	payload := trainedPayload(t)

	s1 := diskServer(t, dir, nil, obs.New())
	rec := do(t, s1, "PUT", "/wrappers/vs", payload)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT: status %d: %s", rec.Code, rec.Body)
	}
	var put struct {
		Persisted bool `json:"persisted"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &put); err != nil || !put.Persisted {
		t.Fatalf("PUT response %s not persisted (%v)", rec.Body, err)
	}
	if n := s1.Cache().Disk().Len(); n != 1 {
		t.Fatalf("disk tier holds %d artifacts after PUT, want 1", n)
	}

	// "Restart": a new process image — fresh memory cache, fresh observer,
	// same directory. s1 is simply abandoned.
	o2 := obs.New()
	s2 := diskServer(t, dir, nil, o2)
	if got := s2.Fleet().Len(); got != 1 {
		t.Fatalf("restarted fleet has %d wrappers, want 1", got)
	}
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: "vs", HTML: pageTop}}})
	rec = do(t, s2, "POST", "/extract", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("first extract after restart: status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || !resp.Results[0].OK {
		t.Fatalf("first extract after restart failed: %s", rec.Body)
	}

	// The warm start is observable: restoring the wrapper hit the disk tier
	// instead of recompiling.
	mrec := do(t, s2, "GET", "/metrics.json", nil)
	var snap struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	c := snap.Metrics.Counters
	if c["extract_diskcache_hits_total"] < 1 {
		t.Errorf("counters = %v, want at least one disk hit", c)
	}
	if c["extract_diskcache_misses_total"] != 0 || c["extract_diskcache_corrupt_total"] != 0 {
		t.Errorf("counters = %v, want no disk misses or corruption on restart", c)
	}
	if g := snap.Metrics.Gauges["extract_diskcache_entries"]; g != 1 {
		t.Errorf("extract_diskcache_entries gauge = %d after restart, want 1", g)
	}

	health := do(t, s2, "GET", "/healthz", nil)
	var h struct {
		DiskCache struct {
			Entries int   `json:"entries"`
			Hits    int64 `json:"hits"`
		} `json:"diskCache"`
	}
	if err := json.Unmarshal(health.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.DiskCache.Entries != 1 || h.DiskCache.Hits < 1 {
		t.Errorf("healthz diskCache = %+v", h.DiskCache)
	}
}

// TestServeDeleteSurvivesRestart: a DELETE persists as a tombstone, so a
// restarted server does not resurrect the wrapper — even when the key
// originally came from the deploy-time fleet file, which loads before the
// registry replays.
func TestServeDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	payload := trainedPayload(t)

	// The fleet file ships the key; the registry must out-vote it.
	w, err := wrapper.Load(payload, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := wrapper.NewFleet()
	f.Add("shipped", w)
	fleetData, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}

	s1 := diskServer(t, dir, fleetData, obs.New())
	if rec := do(t, s1, "PUT", "/wrappers/runtime", payload); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}
	for _, key := range []string{"shipped", "runtime"} {
		rec := do(t, s1, "DELETE", "/wrappers/"+key, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("DELETE %s: status %d: %s", key, rec.Code, rec.Body)
		}
		var del struct {
			Persisted bool `json:"persisted"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &del); err != nil || !del.Persisted {
			t.Fatalf("DELETE %s response %s not persisted (%v)", key, rec.Body, err)
		}
	}

	s2 := diskServer(t, dir, fleetData, obs.New())
	if got := s2.Fleet().Len(); got != 0 {
		t.Fatalf("restarted fleet has %d wrappers, want 0 (deletes persisted): %v",
			got, s2.Fleet().Keys())
	}
	for _, key := range []string{"shipped", "runtime"} {
		if rec := do(t, s2, "DELETE", "/wrappers/"+key, nil); rec.Code != http.StatusNotFound {
			t.Errorf("DELETE %s after restart: status %d, want 404", key, rec.Code)
		}
	}

	// Re-registering after a delete replaces the tombstone and persists again.
	if rec := do(t, s2, "PUT", "/wrappers/runtime", payload); rec.Code != http.StatusCreated {
		t.Fatalf("re-PUT after delete: %d", rec.Code)
	}
	s3 := diskServer(t, dir, nil, obs.New())
	if s3.Fleet().Get("runtime") == nil {
		t.Fatal("re-registered wrapper lost after restart")
	}
}

// TestServeRestartSkipsCorruptRegistryEntry: a torn registry envelope takes
// out one registration, not the server.
func TestServeRestartSkipsCorruptRegistryEntry(t *testing.T) {
	dir := t.TempDir()
	payload := trainedPayload(t)
	s1 := diskServer(t, dir, nil, obs.New())
	if rec := do(t, s1, "PUT", "/wrappers/vs", payload); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}
	if err := s1.registry.writeState("torn", &keyVersions{
		lastVersion: 1,
		active:      &versionedWrapper{Version: 1, Payload: payload},
	}); err != nil {
		t.Fatal(err)
	}
	// Truncate the second envelope as a crash mid-write would.
	blob, err := os.ReadFile(s1.registry.path("torn"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s1.registry.path("torn"), blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := diskServer(t, dir, nil, obs.New())
	if got := s2.Fleet().Len(); got != 1 {
		t.Fatalf("restarted fleet has %d wrappers, want 1 (corrupt entry skipped)", got)
	}
}

// TestServeGracefulShutdown is the regression test for abrupt termination:
// canceling the serve context must let an in-flight request complete before
// the listener dies, and ServeUntilShutdown must return cleanly rather than
// surfacing http.ErrServerClosed.
func TestServeGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "drained")
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeUntilShutdown(ctx, srv, ln, 5*time.Second) }()

	respc := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			respc <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		respc <- string(b)
	}()

	<-started
	cancel() // shutdown requested while the request is in flight
	select {
	case err := <-done:
		t.Fatalf("server exited before draining in-flight request: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if got := <-respc; got != "drained" {
		t.Fatalf("in-flight request got %q, want full response", got)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeUntilShutdown = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit after drain")
	}
	if _, err := http.Get("http://" + ln.Addr().String() + "/"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeShutdownDeadline: a request that outlives the drain window must
// not wedge shutdown — ServeUntilShutdown returns the deadline error.
func TestServeShutdownDeadline(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ServeUntilShutdown(ctx, srv, ln, 50*time.Millisecond) }()
	go http.Get("http://" + ln.Addr().String() + "/") //nolint:errcheck
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("ServeUntilShutdown = %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown wedged past its deadline")
	}
}
