package serve

import (
	"context"

	"resilex/internal/wrapper"
)

// In-process driving surface. The HTTP handlers stay the production entry
// points; these exported seams let an embedding test harness — chiefly the
// API-sequence differential fuzzer in internal/seqfuzz — drive the same
// mutation and extraction paths the handlers call, without a listener in the
// loop, and snapshot the versioned-registry state for cross-checking against
// a reference model.

// PutWrapper registers (or replaces) the key's active wrapper from its
// persisted JSON — the in-process seam of PUT /wrappers/{key}. It returns
// the version assigned to the registration. Error classification matches the
// handler: undecodable payloads wrap wrapper.ErrMalformedInput, exhausted
// construction budgets wrap machine.ErrBudget / machine.ErrDeadline.
func (s *Server) PutWrapper(ctx context.Context, key string, payload []byte) (uint64, error) {
	_, resp, err := s.putWrapper(ctx, key, payload, 0)
	if err != nil {
		return 0, err
	}
	v, _ := resp["version"].(uint64)
	return v, nil
}

// DeleteWrapper removes the key's wrapper, persisting a versioned tombstone
// — the in-process seam of DELETE /wrappers/{key}. It reports whether the
// key was registered.
func (s *Server) DeleteWrapper(key string) bool {
	_, known := s.deleteWrapper(key)
	return known
}

// ExtractBatch runs the canary-aware batch path over docs — the in-process
// seam of POST /extract. Results are in input order; per-document failures
// are reported in the result, exactly like the handler's response rows.
func (s *Server) ExtractBatch(ctx context.Context, docs []wrapper.BatchDoc) []wrapper.BatchResult {
	results, _ := s.extractBatch(ctx, docs)
	return results
}

// VersionState is a point-in-time snapshot of one key's versioned-registry
// state: the monotone counter, the versions occupying the active, canary and
// prior slots (0 = empty), the tombstone flag, and how the last concluded
// rollout ended. It is the comparable form of GET /wrappers/{key}/versions.
type VersionState struct {
	LastVersion uint64
	Active      uint64
	Canary      uint64
	Prior       uint64
	Deleted     bool
	LastOutcome string
}

// VersionState snapshots the version state recorded for key; ok is false
// when the key has never been registered through the versioned registry.
func (s *Server) VersionState(key string) (VersionState, bool) {
	s.vmu.Lock()
	defer s.vmu.Unlock()
	kv := s.versions[key]
	if kv == nil {
		return VersionState{}, false
	}
	vs := VersionState{
		LastVersion: kv.lastVersion,
		Deleted:     kv.deleted,
		LastOutcome: kv.lastOutcome,
	}
	if kv.active != nil {
		vs.Active = kv.active.Version
	}
	if kv.canary != nil {
		vs.Canary = kv.canary.Version
	}
	if kv.prior != nil {
		vs.Prior = kv.prior.Version
	}
	return vs, true
}
