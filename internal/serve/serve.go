// Package serve is the embeddable core of cmd/serve: the HTTP serving path
// over a compiled-wrapper fleet — batch extraction on a worker pool, wrapper
// registration through the tiered compiled-artifact cache, a persistent
// registry so registrations (and deletions) survive restarts, and the
// cluster apply endpoint that lets a shard receive replicated wrapper
// operations from a cluster router.
//
// It exists as a library so the cluster benchmark and tests can boot real
// in-process shards; cmd/serve is a thin flag-parsing wrapper around it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"resilex/internal/cluster"
	"resilex/internal/codec"
	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// defaultMaxBody bounds every request body: batches beyond this are a
// client error, not an allocation.
const defaultMaxBody = 64 << 20

// Config assembles a Server. The zero value is a memory-only server with
// default limits.
type Config struct {
	// CacheDir, when set, adds the persistent tier: compiled artifacts
	// under CacheDir/artifacts and the wrapper registry under
	// CacheDir/wrappers, both restored at startup.
	CacheDir string
	// CacheCap is the in-memory compiled-artifact cache capacity.
	CacheCap int
	// DiskCap is the on-disk artifact capacity (-1 = unbounded, 0 = none).
	DiskCap int
	// FleetData, when non-nil, is a persisted fleet (deploy file) loaded
	// before the registry restore, so runtime registrations override it.
	FleetData []byte
	// MaxBodyBytes bounds request bodies; 0 selects 64 MiB.
	MaxBodyBytes int64
	// Observer receives all serving telemetry. nil disables observation.
	Observer *obs.Observer
	// Options is the construction budget for wrapper compilation.
	Options machine.Options
	// Batch tunes POST /extract's worker pool.
	Batch wrapper.BatchOptions
	// CanaryFraction is the fraction of a key's traffic routed to its staged
	// canary version (stride-based, deterministic). 0 selects the default
	// 0.25; the value is clamped to (0, 1].
	CanaryFraction float64
	// WideEventSample emits one wide request event (trace ID, doc bytes,
	// serving rung, phase micros, result count) through the observer's
	// Logger for every Nth request. 0 selects 1 (every request); events are
	// only emitted when a Logger is installed.
	WideEventSample int
	// RestoreLog receives the one-line registry-restore summary printed at
	// startup. nil selects os.Stderr; harnesses that boot servers in a loop
	// (the API-sequence fuzzer restarts one per op) pass io.Discard.
	RestoreLog io.Writer
}

// Server is the HTTP serving path: a fleet of compiled wrappers, the tiered
// compiled-artifact cache behind wrapper registration (memory always, disk
// when CacheDir is set), the registry that persists registrations across
// restarts, and the observer all request work reports into. It is
// constructed once and shared by every request goroutine; Fleet, cache and
// registry are concurrency-safe, the rest is read-only.
type Server struct {
	fleet    *wrapper.Fleet
	cache    *extract.TieredCache
	registry *wrapperRegistry // nil without CacheDir
	obs      *obs.Observer
	opt      machine.Options
	batch    wrapper.BatchOptions
	maxBody  int64

	// k-ary record wrappers live in their own fleets (a key serves one kind
	// at a time; registration of one kind removes the other). They share the
	// registry, version state machine, and replication path with the
	// single-pivot fleets — only the serving surface differs (POST
	// /extract/tuples/{key} instead of the batch/stream routes).
	tupleFleet       *wrapper.TupleFleet
	canaryTupleFleet *wrapper.TupleFleet

	// The versioned-rollout state: compiled canary wrappers live in their
	// own fleet so the serving fleet stays the active-versions-only view,
	// stride selects the canary traffic fraction, and versions carries the
	// per-key state machine (guarded by vmu).
	canaryFleet *wrapper.Fleet
	stride      uint64
	vmu         sync.Mutex
	versions    map[string]*keyVersions

	// Wide-event sampling: every wideEvery-th request (per surface) emits
	// one wide event through the observer's Logger.
	wideEvery uint64
	wideN     atomic.Uint64
}

// New assembles the serving stack. With Config.CacheDir empty the server is
// memory-only. With a directory it gains the two persistent pieces and
// restores every previously registered wrapper — and applies every
// persisted deletion tombstone — before taking traffic, warm-starting from
// disk instead of recompiling.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	mem := extract.NewCache(cfg.CacheCap, cfg.Observer)
	var disk *extract.DiskCache
	var reg *wrapperRegistry
	if cfg.CacheDir != "" {
		var err error
		if disk, err = extract.NewDiskCache(filepath.Join(cfg.CacheDir, "artifacts"), cfg.DiskCap, cfg.Observer); err != nil {
			return nil, err
		}
		if reg, err = newWrapperRegistry(filepath.Join(cfg.CacheDir, "wrappers")); err != nil {
			return nil, err
		}
	}
	cache := extract.NewTieredCache(mem, disk)
	fleet := wrapper.NewFleet()
	if cfg.FleetData != nil {
		var err error
		if fleet, err = wrapper.LoadFleetCached(cfg.FleetData, cfg.Options, cache); err != nil {
			return nil, err
		}
	}
	s := &Server{
		fleet:            fleet,
		cache:            cache,
		registry:         reg,
		obs:              cfg.Observer,
		opt:              cfg.Options,
		batch:            cfg.Batch,
		maxBody:          cfg.MaxBodyBytes,
		tupleFleet:       wrapper.NewTupleFleet(),
		canaryTupleFleet: wrapper.NewTupleFleet(),
		canaryFleet:      wrapper.NewFleet(),
		stride:           canaryStride(cfg.CanaryFraction),
		versions:         map[string]*keyVersions{},
		wideEvery:        uint64(max(cfg.WideEventSample, 1)),
	}
	restored, deleted, skipped := s.restoreRegistry()
	if restored+deleted+skipped > 0 {
		logw := cfg.RestoreLog
		if logw == nil {
			logw = os.Stderr
		}
		fmt.Fprintf(logw, "serve: restored %d wrapper(s) from %s (%d deleted, %d skipped)\n",
			restored, cfg.CacheDir, deleted, skipped)
	}
	return s, nil
}

// restoreRegistry replays the persisted version state: active versions load
// into the serving fleet (overriding same-key entries from the deploy-time
// fleet file), an in-flight canary is re-staged into the canary fleet with
// its observation window reset, and tombstones remove the key while keeping
// its monotone version counter. Entries whose payload no longer compiles
// are skipped and counted, not fatal.
func (s *Server) restoreRegistry() (restored, deleted, skipped int) {
	entries, unreadable := s.registry.load()
	skipped = unreadable
	for _, ent := range entries {
		kv := &keyVersions{
			lastVersion: ent.Version,
			deleted:     ent.Deleted,
			lastOutcome: ent.Outcome,
			prior:       ent.Prior,
		}
		if ent.Deleted {
			s.fleet.Remove(ent.Key)
			s.tupleFleet.Remove(ent.Key)
			s.versions[ent.Key] = kv
			deleted++
			continue
		}
		if ent.Active != nil {
			lw, err := s.loadAny(context.Background(), ent.Active.Payload)
			if err != nil {
				skipped++
				continue
			}
			kv.active = ent.Active
			s.addActive(ent.Key, lw)
		}
		if ent.Canary != nil {
			if lw, err := s.loadAny(context.Background(), ent.Canary.Payload); err == nil {
				kv.canary = ent.Canary
				s.addCanary(ent.Key, lw)
			} else {
				skipped++
			}
		}
		s.versions[ent.Key] = kv
		s.gaugeVersions(ent.Key, kv)
		restored++
	}
	return restored, deleted, skipped
}

// Fleet returns the served fleet (live — registrations are picked up).
func (s *Server) Fleet() *wrapper.Fleet { return s.fleet }

// Cache returns the tiered compiled-artifact cache.
func (s *Server) Cache() *extract.TieredCache { return s.cache }

// Mux mounts the serving routes on top of the observability endpoints
// (/metrics, /metrics.json, /debug/pprof — see obs.Handler), so one listen
// address serves both traffic and telemetry.
func (s *Server) Mux() *http.ServeMux {
	mux := obs.Handler(s.obs)
	mux.HandleFunc("POST /extract", s.handleExtract)
	mux.HandleFunc("POST /extract/stream/{key}", s.handleExtractStream)
	mux.HandleFunc("POST /extract/tuples/{key}", s.handleExtractTuples)
	mux.HandleFunc("PUT /wrappers/{key}", s.handlePutWrapper)
	mux.HandleFunc("DELETE /wrappers/{key}", s.handleDeleteWrapper)
	mux.HandleFunc("PUT /wrappers/{key}/canary", s.handleCanaryWrapper)
	mux.HandleFunc("POST /wrappers/{key}/promote", s.handlePromoteWrapper)
	mux.HandleFunc("POST /wrappers/{key}/rollback", s.handleRollbackWrapper)
	mux.HandleFunc("GET /wrappers/{key}/versions", s.handleVersions)
	mux.HandleFunc("POST /cluster/apply", s.handleClusterApply)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// ServeUntilShutdown serves on ln until ctx is canceled, then drains
// in-flight requests for at most drain before forcing connections closed.
// It returns nil on a clean drain, the drain context's error if the
// deadline forced the stop, or the listener's error if serving failed
// before any shutdown was requested.
func ServeUntilShutdown(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener died on its own; nothing left to drain
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	return err
}

// extractRequest is the POST /extract body: a batch of documents, each
// naming the site wrapper to run.
type extractRequest struct {
	Docs []wrapper.BatchDoc `json:"docs"`
}

// extractResult is one element of the POST /extract response, in input
// order. OK distinguishes extraction success; on failure Error carries the
// classified cause and the region fields are absent.
type extractResult struct {
	Index      int    `json:"index"`
	Key        string `json:"key"`
	OK         bool   `json:"ok"`
	Error      string `json:"error,omitempty"`
	TokenIndex int    `json:"tokenIndex,omitempty"`
	Start      int    `json:"start,omitempty"`
	End        int    `json:"end,omitempty"`
	Source     string `json:"source,omitempty"`
}

// reject answers a hardening rejection and counts it by reason, so an
// operator can tell a misbehaving client from an undersized limit.
func (s *Server) reject(w http.ResponseWriter, status int, reason string, err error) {
	s.obs.Counter(obs.WithLabels("serve_rejected_total", "reason", reason)).Inc()
	writeError(w, status, err)
}

// readBody drains a size-bounded request body after checking the declared
// media type. A false return means the response has been written: 413 for
// an oversized body, 415 for a foreign Content-Type — both counted in
// serve_rejected_total. An absent Content-Type is accepted as wantType.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, wantType string) ([]byte, bool) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != wantType {
			s.reject(w, http.StatusUnsupportedMediaType, "content_type",
				fmt.Errorf("unsupported Content-Type %q, want %s", ct, wantType))
			return nil, false
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Errorf("request body exceeds %d bytes", s.maxBody))
		} else {
			s.reject(w, http.StatusBadRequest, "body_read", fmt.Errorf("reading body: %w", err))
		}
		return nil, false
	}
	return body, true
}

// traceContext establishes the request's trace position: joining the trace
// propagated in X-Resilex-Trace (router-routed requests) or minting a fresh
// trace ID at ingress, echoed back in the response header so callers can
// fetch the assembled trace from GET /debug/traces/{id}.
func (s *Server) traceContext(w http.ResponseWriter, r *http.Request) (context.Context, obs.TraceContext) {
	tc := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	if tc.TraceID == "" {
		tc.TraceID = obs.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, tc.TraceID)
	return obs.ContextWithTrace(obs.NewContext(r.Context(), s.obs), tc), tc
}

// wideEvent emits one sampled wide request event — the single log line that
// carries everything about a request — when a Logger is installed and the
// sampling counter selects this request.
func (s *Server) wideEvent(name string, kv ...any) {
	if s.obs == nil || s.obs.Log == nil {
		return
	}
	if (s.wideN.Add(1)-1)%s.wideEvery != 0 {
		return
	}
	s.obs.Event(name, kv...)
}

func (s *Server) handleExtract(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	body, ok := s.readBody(w, r, "application/json")
	if !ok {
		return
	}
	var req extractRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ctx, tc := s.traceContext(w, r)
	ctx, sp := s.obs.StartSpan(ctx, "serve.extract")
	sp.SetAttr("docs", int64(len(req.Docs)))
	sp.SetAttr("doc_bytes", int64(len(body)))
	start := time.Now()
	results, outcome := s.extractBatch(ctx, req.Docs)
	elapsed := time.Since(start)
	out := struct {
		Results []extractResult `json:"results"`
	}{Results: make([]extractResult, len(results))}
	okCount := 0
	for i, res := range results {
		er := extractResult{Index: res.Index, Key: res.Key}
		if res.Err != nil {
			er.Error = res.Err.Error()
		} else {
			er.OK = true
			okCount++
			er.TokenIndex = res.Region.TokenIndex
			er.Start = res.Region.Span.Start
			er.End = res.Region.Span.End
			er.Source = res.Region.Source
		}
		out.Results[i] = er
	}
	sp.SetStr("rung", outcome.rung())
	sp.SetAttr("ok", int64(okCount))
	sp.End()
	s.obs.Histogram("serve_extract_duration_us").ObserveExemplar(elapsed.Microseconds(), tc.TraceID)
	s.wideEvent("serve.request",
		"trace", tc.TraceID,
		"docs", len(req.Docs),
		"doc_bytes", len(body),
		"ok", okCount,
		"rung", outcome.rung(),
		"version", outcome.version,
		"canary_docs", outcome.canaryDocs,
		"fallbacks", outcome.fallbacks,
		"duration_us", elapsed.Microseconds(),
	)
	writeJSON(w, http.StatusOK, out)
}

// batchOutcome summarizes how a batch was served for the request span and
// wide event: how many documents the canary handled, how many canary misses
// fell back to the active version, and the active version of the first key.
type batchOutcome struct {
	canaryDocs int
	fallbacks  int
	version    uint64
}

// rung names the serving rung the batch landed on — the versioned-registry
// analog of the supervisor's degradation rung: "active" (no canary in
// play), "canary" (some documents served by a staged canary), or
// "canary_fallback" (at least one canary miss was re-served by the active
// version).
func (bo batchOutcome) rung() string {
	switch {
	case bo.fallbacks > 0:
		return "canary_fallback"
	case bo.canaryDocs > 0:
		return "canary"
	default:
		return "active"
	}
}

// extractBatch is the canary-aware batch path. Documents whose key has a
// staged canary are stride-split: one of every stride requests for the key
// runs on the canary version, the rest on the active version, and both
// outcomes feed the canary observation window. A canary miss falls back to
// the active wrapper within the same request — the structural guarantee
// that a bad canary degrades its own statistics (triggering rollback) but
// never fails a request the active version would have served.
func (s *Server) extractBatch(ctx context.Context, docs []wrapper.BatchDoc) ([]wrapper.BatchResult, batchOutcome) {
	// Partition: canary-routed documents peel off; everything else runs on
	// the active fleet as one batch.
	var outcome batchOutcome
	var canaryIdx []int
	var canaryDocs []wrapper.BatchDoc
	watched := map[int]*keyVersions{} // active-routed docs of keys under canary
	s.vmu.Lock()
	if len(docs) > 0 {
		if kv := s.versions[docs[0].Key]; kv != nil && kv.active != nil {
			outcome.version = kv.active.Version
		}
	}
	for i, d := range docs {
		kv := s.versions[d.Key]
		if kv == nil || kv.canary == nil || s.canaryFleet.Get(d.Key) == nil {
			continue
		}
		if (kv.rr.Add(1)-1)%s.stride == 0 {
			canaryIdx = append(canaryIdx, i)
			canaryDocs = append(canaryDocs, d)
		} else {
			watched[i] = kv
		}
	}
	s.vmu.Unlock()
	outcome.canaryDocs = len(canaryIdx)
	if len(canaryIdx) == 0 && len(watched) == 0 {
		bctx, ph := obs.StartPhase(ctx, "serve.batch")
		ph.Attr("docs", int64(len(docs)))
		res := s.fleet.ExtractBatch(bctx, docs, s.batch)
		ph.End()
		return res, outcome
	}

	activeDocs := make([]wrapper.BatchDoc, 0, len(docs)-len(canaryIdx))
	activeIdx := make([]int, 0, len(docs)-len(canaryIdx))
	inCanary := map[int]bool{}
	for _, i := range canaryIdx {
		inCanary[i] = true
	}
	for i, d := range docs {
		if !inCanary[i] {
			activeDocs = append(activeDocs, d)
			activeIdx = append(activeIdx, i)
		}
	}

	results := make([]wrapper.BatchResult, len(docs))
	actx, aph := obs.StartPhase(ctx, "serve.batch")
	aph.Attr("docs", int64(len(activeDocs)))
	activeRes := s.fleet.ExtractBatch(actx, activeDocs, s.batch)
	aph.End()
	for sub, res := range activeRes {
		i := activeIdx[sub]
		res.Index = i
		results[i] = res
		if kv := watched[i]; kv != nil {
			if res.Err != nil {
				kv.stats.activeErr.Add(1)
				s.obs.Counter(obs.WithLabels("refresh_active_serve_total", "site", res.Key, "outcome", "miss")).Inc()
			} else {
				kv.stats.activeOK.Add(1)
				s.obs.Counter(obs.WithLabels("refresh_active_serve_total", "site", res.Key, "outcome", "ok")).Inc()
			}
		}
	}

	var fallbackDocs []wrapper.BatchDoc
	var fallbackIdx []int
	cctx, cph := obs.StartPhase(ctx, "serve.canary")
	cph.Attr("docs", int64(len(canaryDocs)))
	canaryRes := s.canaryFleet.ExtractBatch(cctx, canaryDocs, s.batch)
	cph.End()
	for sub, res := range canaryRes {
		i := canaryIdx[sub]
		res.Index = i
		s.vmu.Lock()
		kv := s.versions[res.Key]
		s.vmu.Unlock()
		if res.Err != nil {
			if kv != nil {
				kv.stats.canaryErr.Add(1)
			}
			s.obs.Counter(obs.WithLabels("refresh_canary_serve_total", "site", res.Key, "outcome", "miss")).Inc()
			// Canary missed: serve the request from the active version.
			fallbackDocs = append(fallbackDocs, docs[i])
			fallbackIdx = append(fallbackIdx, i)
			if kv != nil {
				kv.stats.fallback.Add(1)
			}
			s.obs.Counter(obs.WithLabels("refresh_canary_fallback_total", "site", res.Key)).Inc()
		} else {
			if kv != nil {
				kv.stats.canaryOK.Add(1)
			}
			s.obs.Counter(obs.WithLabels("refresh_canary_serve_total", "site", res.Key, "outcome", "ok")).Inc()
			results[i] = res
		}
	}
	outcome.fallbacks = len(fallbackDocs)
	if len(fallbackDocs) > 0 {
		fctx, fph := obs.StartPhase(ctx, "serve.fallback")
		fph.Attr("docs", int64(len(fallbackDocs)))
		fallbackRes := s.fleet.ExtractBatch(fctx, fallbackDocs, s.batch)
		fph.End()
		for sub, res := range fallbackRes {
			i := fallbackIdx[sub]
			res.Index = i
			results[i] = res
		}
	}
	return results, outcome
}

// putWrapper registers (or replaces) a site wrapper from its persisted
// JSON, shared by the direct PUT route and the replicated cluster apply.
// Compilation goes through the shared cache, so re-registering a known
// expression — or registering the same wrapper under many keys — costs a
// lookup, and a deploy that PUTs a whole fleet compiles each distinct
// expression once even under concurrency. The registration becomes the
// key's new active version — one past the monotone counter (so a re-PUT
// after a DELETE resurrects the key with a higher version), or the
// replicated version when the originating node assigned a higher one — and
// drops any staged canary: a direct PUT supersedes an in-flight rollout.
func (s *Server) putWrapper(ctx context.Context, key string, body []byte, version uint64) (status int, resp map[string]any, err error) {
	ctx, tier := extract.WithTierNote(ctx)
	lw, err := s.loadAny(ctx, body)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			status = http.StatusServiceUnavailable
		}
		return status, nil, err
	}
	s.vmu.Lock()
	kv := s.ensureVersions(key)
	v := kv.nextVersion(version)
	kv.prior = kv.active
	kv.active = &versionedWrapper{Version: v, Payload: append(json.RawMessage(nil), body...)}
	kv.canary = nil
	kv.deleted = false
	s.addActive(key, lw)
	s.canaryFleet.Remove(key)
	s.canaryTupleFleet.Remove(key)
	s.gaugeVersions(key, kv)
	resp = map[string]any{"key": key, "sites": s.siteCount(), "version": v}
	if s.registry != nil {
		// The registration is live either way; persisted reports whether it
		// will also survive a restart, so a deploy can alarm on false.
		resp["persisted"] = s.registry.writeState(key, kv) == nil
	}
	s.vmu.Unlock()
	s.wideEvent("serve.wrapper_put",
		"trace", obs.TraceFromContext(ctx).TraceID,
		"key", key,
		"version", v,
		"cache_tier", *tier,
		"doc_bytes", len(body),
	)
	return http.StatusCreated, resp, nil
}

// deleteWrapper removes a site wrapper, persisting a versioned tombstone so
// the deletion survives restarts exactly like a registration does — even
// when the key originally came from the deploy-time fleet file. The
// tombstone keeps the key's monotone version counter (and bumps it), so a
// later re-PUT resurrects the key with a strictly higher version. Unknown
// keys report false.
func (s *Server) deleteWrapper(key string) (resp map[string]any, known bool) {
	if s.fleet.Get(key) == nil && s.tupleFleet.Get(key) == nil {
		return nil, false
	}
	s.vmu.Lock()
	kv := s.ensureVersions(key)
	kv.nextVersion(0)
	kv.active, kv.canary, kv.prior = nil, nil, nil
	kv.deleted = true
	s.fleet.Remove(key)
	s.tupleFleet.Remove(key)
	s.canaryFleet.Remove(key)
	s.canaryTupleFleet.Remove(key)
	s.gaugeVersions(key, kv)
	resp = map[string]any{"key": key, "sites": s.siteCount()}
	if s.registry != nil {
		resp["persisted"] = s.registry.writeState(key, kv) == nil
	}
	s.vmu.Unlock()
	return resp, true
}

func (s *Server) handlePutWrapper(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	body, ok := s.readBody(w, r, "application/json")
	if !ok {
		return
	}
	ctx, _ := s.traceContext(w, r)
	ctx, sp := s.obs.StartSpan(ctx, "serve.put")
	sp.SetStr("key", key)
	status, resp, err := s.putWrapper(ctx, key, body, 0)
	sp.SetError(err)
	sp.End()
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// handleCanaryWrapper stages a canary version: PUT /wrappers/{key}/canary
// with the candidate's persisted JSON. The canary immediately starts
// receiving the configured traffic fraction.
func (s *Server) handleCanaryWrapper(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	body, ok := s.readBody(w, r, "application/json")
	if !ok {
		return
	}
	ctx, _ := s.traceContext(w, r)
	ctx, sp := s.obs.StartSpan(ctx, "serve.canary_put")
	sp.SetStr("key", key)
	status, resp, err := s.canaryWrapper(ctx, key, body, 0)
	sp.SetError(err)
	sp.End()
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// versionParam reads the optional ?version=N guard of promote/rollback.
// 0 (absent) means "whatever is staged".
func versionParam(r *http.Request) (uint64, error) {
	q := r.URL.Query().Get("version")
	if q == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad version %q: %w", q, err)
	}
	return v, nil
}

func (s *Server) handlePromoteWrapper(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	v, err := versionParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, resp, err := s.promoteWrapper(r.PathValue("key"), v)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleRollbackWrapper(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	v, err := versionParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, resp, err := s.rollbackWrapper(r.PathValue("key"), v)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// handleVersions reports the version state of one key — active/canary/prior
// versions, the monotone counter, the last rollout outcome, and the canary
// observation window — for rollout tooling and the refresh smoke to poll.
func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	body, ok := s.versionsStatus(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no versions recorded for %q", key))
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleDeleteWrapper(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	key := r.PathValue("key")
	resp, known := s.deleteWrapper(key)
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("no wrapper registered for %q", key))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleClusterApply is the replication endpoint a cluster router fans
// wrapper mutations out to: one codec-framed, checksummed operation per
// request. A body that is not an op frame at all is an unsupported media
// type; a frame that fails verification (torn write on the wire, version
// skew) is malformed input — distinguishable failure modes, both counted.
func (s *Server) handleClusterApply(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter("serve_requests_total").Inc()
	body, ok := s.readBody(w, r, cluster.OpContentType)
	if !ok {
		return
	}
	if !cluster.IsOpFrame(body) {
		s.reject(w, http.StatusUnsupportedMediaType, "content_type",
			errors.New("body is not a cluster op frame"))
		return
	}
	op, err := cluster.DecodeOp(body)
	if err != nil {
		reason := "malformed_frame"
		if errors.Is(err, codec.ErrVersionMismatch) {
			reason = "frame_version"
		}
		s.reject(w, http.StatusBadRequest, reason, err)
		return
	}
	s.obs.Counter(obs.WithLabels("serve_cluster_apply_total", "op", op.Kind.String())).Inc()
	ctx, _ := s.traceContext(w, r)
	ctx, sp := s.obs.StartSpan(ctx, "shard.apply")
	sp.SetStr("op", op.Kind.String())
	sp.SetStr("key", op.Key)
	defer sp.End()
	switch op.Kind {
	case cluster.OpPut:
		status, resp, err := s.putWrapper(ctx, op.Key, op.Payload, op.Version)
		if err != nil {
			sp.SetError(err)
			writeError(w, status, err)
			return
		}
		writeJSON(w, status, resp)
	case cluster.OpDelete:
		resp, known := s.deleteWrapper(op.Key)
		if !known {
			writeError(w, http.StatusNotFound, fmt.Errorf("no wrapper registered for %q", op.Key))
			return
		}
		writeJSON(w, http.StatusOK, resp)
	case cluster.OpCanary:
		status, resp, err := s.canaryWrapper(ctx, op.Key, op.Payload, op.Version)
		if err != nil {
			sp.SetError(err)
			writeError(w, status, err)
			return
		}
		writeJSON(w, status, resp)
	case cluster.OpPromote:
		status, resp, err := s.promoteWrapper(op.Key, op.Version)
		if err != nil {
			writeError(w, status, err)
			return
		}
		writeJSON(w, status, resp)
	case cluster.OpRollback:
		status, resp, err := s.rollbackWrapper(op.Key, op.Version)
		if err != nil {
			writeError(w, status, err)
			return
		}
		writeJSON(w, status, resp)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	body := map[string]any{
		"status": "ok",
		"sites":  s.siteCount(),
		"cache": map[string]any{
			"entries":   st.Entries,
			"hits":      st.Hits,
			"misses":    st.Misses,
			"evictions": st.Evictions,
			"hitRate":   st.HitRate(),
		},
	}
	if disk := s.cache.Disk(); disk != nil {
		ds := disk.Stats()
		body["diskCache"] = map[string]any{
			"dir":       disk.Dir(),
			"entries":   ds.Entries,
			"hits":      ds.Hits,
			"misses":    ds.Misses,
			"evictions": ds.Evictions,
			"corrupt":   ds.Corrupt,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
