package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"resilex/internal/cluster"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// futurePage is a redesigned layout the pageTop/pageBottom wrapper cannot
// parse — the "site changed" family used to exercise canaries.
const futurePage = `<div class="search"><span>find parts</span>
<form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
</form></div>`

// futurePayload trains a wrapper on the redesigned family and returns its
// persisted JSON. It extracts futurePage but not pageTop/pageBottom — and
// vice versa for trainedPayload — so either direction of a rollout can be
// made to miss on demand.
func futurePayload(t *testing.T) []byte {
	t.Helper()
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: futurePage, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func decodeVersions(t *testing.T, s *Server, key string) map[string]any {
	t.Helper()
	rec := do(t, s, "GET", "/wrappers/"+key+"/versions", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET versions for %s: %d: %s", key, rec.Code, rec.Body)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body
}

func versionOf(body map[string]any, slot string) uint64 {
	m, _ := body[slot].(map[string]any)
	if m == nil {
		return 0
	}
	v, _ := m["version"].(float64)
	return uint64(v)
}

// extractOne posts a single-doc batch and returns the result.
func extractOne(t *testing.T, s *Server, key, html string) extractResult {
	t.Helper()
	body, _ := json.Marshal(extractRequest{Docs: []wrapper.BatchDoc{{Key: key, HTML: html}}})
	rec := do(t, s, "POST", "/extract", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("extract: %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Results []extractResult `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("%d results, want 1", len(resp.Results))
	}
	return resp.Results[0]
}

// TestCanaryLifecyclePromote walks the happy rollout: PUT v1, stage a canary
// v2, observe the stride split feeding the observation window, promote, and
// confirm v2 is now active.
func TestCanaryLifecyclePromote(t *testing.T) {
	payload := trainedPayload(t)
	s, err := New(Config{CacheCap: 8, Observer: obs.New(), CanaryFraction: 0.5,
		Batch: wrapper.BatchOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, "PUT", "/wrappers/vs", payload); rec.Code != http.StatusCreated {
		t.Fatalf("PUT v1: %d: %s", rec.Code, rec.Body)
	}
	// Canary against a missing key 404s.
	if rec := do(t, s, "PUT", "/wrappers/nosuch/canary", payload); rec.Code != http.StatusNotFound {
		t.Fatalf("canary without active: %d, want 404", rec.Code)
	}
	// Promote with nothing staged 404s.
	if rec := do(t, s, "POST", "/wrappers/vs/promote", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("promote without canary: %d, want 404", rec.Code)
	}
	if rec := do(t, s, "PUT", "/wrappers/vs/canary", futurePayload(t)); rec.Code != http.StatusCreated {
		t.Fatalf("PUT canary: %d: %s", rec.Code, rec.Body)
	}
	body := decodeVersions(t, s, "vs")
	if versionOf(body, "active") != 1 || versionOf(body, "canary") != 2 {
		t.Fatalf("versions after canary = %v, want active 1 / canary 2", body)
	}

	// With stride 2, half of the requests route to the canary. The canary
	// parses futurePage; drive drifted traffic and every request must
	// succeed — canary-routed directly, active-routed... not. Use the old
	// family for active-routed checks instead: alternate pages so each
	// version sees the page it parses. Simplest deterministic check: drive
	// futurePage 10 times; canary-routed succeed, active-routed fall back to
	// the active wrapper which misses — those report errors but the request
	// itself is still answered.
	var okCount int
	for i := 0; i < 10; i++ {
		if extractOne(t, s, "vs", futurePage).OK {
			okCount++
		}
	}
	if okCount != 5 {
		t.Fatalf("canary-routed successes = %d, want exactly 5 (stride 2)", okCount)
	}
	body = decodeVersions(t, s, "vs")
	stats, _ := body["stats"].(map[string]any)
	if stats["canaryOK"].(float64) != 5 || stats["activeErr"].(float64) != 5 {
		t.Fatalf("window stats = %v, want canaryOK 5 / activeErr 5", stats)
	}

	// Promote with a stale version guard conflicts; the right one succeeds.
	if rec := do(t, s, "POST", "/wrappers/vs/promote?version=9", nil); rec.Code != http.StatusConflict {
		t.Fatalf("stale promote: %d, want 409", rec.Code)
	}
	rec := do(t, s, "POST", "/wrappers/vs/promote?version=2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: %d: %s", rec.Code, rec.Body)
	}
	body = decodeVersions(t, s, "vs")
	if versionOf(body, "active") != 2 || versionOf(body, "canary") != 0 || versionOf(body, "prior") != 1 {
		t.Fatalf("versions after promote = %v, want active 2 / no canary / prior 1", body)
	}
	if body["lastOutcome"] != "promoted" {
		t.Fatalf("lastOutcome = %v, want promoted", body["lastOutcome"])
	}
	// v2 now serves all traffic.
	for i := 0; i < 4; i++ {
		if !extractOne(t, s, "vs", futurePage).OK {
			t.Fatal("promoted wrapper must parse the new family")
		}
	}
	// Post-promote rollback reverts to the prior version.
	if rec := do(t, s, "POST", "/wrappers/vs/rollback", nil); rec.Code != http.StatusOK {
		t.Fatalf("post-promote rollback: %d: %s", rec.Code, rec.Body)
	}
	body = decodeVersions(t, s, "vs")
	if versionOf(body, "active") != 1 {
		t.Fatalf("versions after revert = %v, want active 1", body)
	}
	if !extractOne(t, s, "vs", pageTop).OK {
		t.Fatal("reverted wrapper must parse the old family again")
	}
}

// TestCanaryFallbackZeroFailedRequests is the structural guarantee: a canary
// that cannot parse the live traffic degrades its own statistics, but every
// canary-routed request falls back to the active wrapper and still succeeds.
func TestCanaryFallbackZeroFailedRequests(t *testing.T) {
	payload := trainedPayload(t)
	s, err := New(Config{CacheCap: 8, Observer: obs.New(), CanaryFraction: 0.5,
		Batch: wrapper.BatchOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, "PUT", "/wrappers/vs", payload); rec.Code != http.StatusCreated {
		t.Fatalf("PUT v1: %d", rec.Code)
	}
	// The canary is trained on the *future* family; live traffic is still
	// the old family, so every canary-routed request misses and falls back.
	if rec := do(t, s, "PUT", "/wrappers/vs/canary", futurePayload(t)); rec.Code != http.StatusCreated {
		t.Fatalf("PUT canary: %d", rec.Code)
	}
	for i := 0; i < 10; i++ {
		if res := extractOne(t, s, "vs", pageTop); !res.OK {
			t.Fatalf("request %d failed despite active fallback: %+v", i, res)
		}
	}
	body := decodeVersions(t, s, "vs")
	stats, _ := body["stats"].(map[string]any)
	if stats["canaryErr"].(float64) != 5 || stats["fallback"].(float64) != 5 {
		t.Fatalf("window stats = %v, want canaryErr 5 / fallback 5", stats)
	}
	if stats["activeOK"].(float64) != 5 {
		t.Fatalf("window stats = %v, want activeOK 5", stats)
	}
	// The judge would roll this back; do it via the endpoint.
	if rec := do(t, s, "POST", "/wrappers/vs/rollback", nil); rec.Code != http.StatusOK {
		t.Fatalf("rollback: %d", rec.Code)
	}
	body = decodeVersions(t, s, "vs")
	if versionOf(body, "canary") != 0 || body["lastOutcome"] != "rolled-back" {
		t.Fatalf("after rollback: %v", body)
	}
	// All traffic back on the active version.
	for i := 0; i < 4; i++ {
		if !extractOne(t, s, "vs", pageTop).OK {
			t.Fatal("active wrapper must keep serving after rollback")
		}
	}
}

// TestRegistryTombstoneThenRePutResurrects: DELETE then PUT of the same key
// across a restart must resurrect the key with a strictly higher version,
// not stay tombstoned (the tombstone is a versioned record, not a terminal
// state).
func TestRegistryTombstoneThenRePutResurrects(t *testing.T) {
	dir := t.TempDir()
	payload := trainedPayload(t)
	s1 := diskServer(t, dir, nil, obs.New())
	if rec := do(t, s1, "PUT", "/wrappers/vs", payload); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}
	if rec := do(t, s1, "DELETE", "/wrappers/vs", nil); rec.Code != http.StatusOK {
		t.Fatalf("DELETE: %d", rec.Code)
	}

	// Restart: the tombstone holds, but keeps its version history.
	s2 := diskServer(t, dir, nil, obs.New())
	if s2.Fleet().Get("vs") != nil {
		t.Fatal("tombstoned key resurrected by restart alone")
	}
	body := decodeVersions(t, s2, "vs")
	if body["deleted"] != true {
		t.Fatalf("restarted tombstone state: %v", body)
	}
	last := body["lastVersion"].(float64)
	if last < 2 {
		t.Fatalf("tombstone lost the version counter: lastVersion = %v", last)
	}

	// Re-PUT after the restart: alive again, strictly higher version.
	rec := do(t, s2, "PUT", "/wrappers/vs", payload)
	if rec.Code != http.StatusCreated {
		t.Fatalf("re-PUT: %d: %s", rec.Code, rec.Body)
	}
	var put struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &put); err != nil {
		t.Fatal(err)
	}
	if put.Version <= uint64(last) {
		t.Fatalf("re-PUT version %d not above tombstone version %v", put.Version, last)
	}

	// And a second restart keeps the resurrection.
	s3 := diskServer(t, dir, nil, obs.New())
	if s3.Fleet().Get("vs") == nil {
		t.Fatal("resurrected key lost after second restart")
	}
	body = decodeVersions(t, s3, "vs")
	if body["deleted"] == true || versionOf(body, "active") != put.Version {
		t.Fatalf("state after second restart: %v", body)
	}
}

// TestRestartMidCanaryRecoversVersions: a node that restarts with a canary
// in flight must come back serving the same active version, with the canary
// re-staged at its version — not promoted, not lost.
func TestRestartMidCanaryRecoversVersions(t *testing.T) {
	dir := t.TempDir()
	s1 := diskServer(t, dir, nil, obs.New())
	if rec := do(t, s1, "PUT", "/wrappers/vs", trainedPayload(t)); rec.Code != http.StatusCreated {
		t.Fatalf("PUT v1: %d", rec.Code)
	}
	if rec := do(t, s1, "PUT", "/wrappers/vs/canary", futurePayload(t)); rec.Code != http.StatusCreated {
		t.Fatalf("PUT canary: %d", rec.Code)
	}

	s2 := diskServer(t, dir, nil, obs.New())
	body := decodeVersions(t, s2, "vs")
	if versionOf(body, "active") != 1 || versionOf(body, "canary") != 2 {
		t.Fatalf("restarted versions = %v, want active 1 / canary 2", body)
	}
	// The active wrapper serves the old family; the re-staged canary is live
	// (it parses the new family when its stride slot comes up).
	if !extractOne(t, s2, "vs", pageTop).OK {
		// First request may be canary-routed (stride slot 0) and fall back;
		// either way it must succeed.
		t.Fatal("active traffic failed after mid-canary restart")
	}
	if rec := do(t, s2, "POST", "/wrappers/vs/promote", nil); rec.Code != http.StatusOK {
		t.Fatalf("promote after restart: %d", rec.Code)
	}
	if !extractOne(t, s2, "vs", futurePage).OK {
		t.Fatal("promoted canary must parse the new family after restart")
	}
}

// TestClusterApplyVersionedOps drives canary/promote/rollback through the
// replication endpoint, as a router would fan them out to a key's owners.
func TestClusterApplyVersionedOps(t *testing.T) {
	s, payload := testServer(t)
	// Seed via a replicated put so the key has version state.
	if rec := doFrame(t, s, cluster.EncodeOp(cluster.Op{Kind: cluster.OpPut, Key: "vs", Payload: payload})); rec.Code != http.StatusCreated {
		t.Fatalf("apply put: %d: %s", rec.Code, rec.Body)
	}
	fp := futurePayload(t)
	// The originating node assigned version 7; the replica must adopt it.
	if rec := doFrame(t, s, cluster.EncodeOp(cluster.Op{Kind: cluster.OpCanary, Key: "vs", Version: 7, Payload: fp})); rec.Code != http.StatusCreated {
		t.Fatalf("apply canary: %d: %s", rec.Code, rec.Body)
	}
	body := decodeVersions(t, s, "vs")
	if versionOf(body, "canary") != 7 {
		t.Fatalf("replicated canary version = %v, want 7", body)
	}
	// A promote guarded on the wrong version conflicts.
	if rec := doFrame(t, s, cluster.EncodeOp(cluster.Op{Kind: cluster.OpPromote, Key: "vs", Version: 3})); rec.Code != http.StatusConflict {
		t.Fatalf("stale replicated promote: %d, want 409", rec.Code)
	}
	if rec := doFrame(t, s, cluster.EncodeOp(cluster.Op{Kind: cluster.OpPromote, Key: "vs", Version: 7})); rec.Code != http.StatusOK {
		t.Fatalf("apply promote: %d", rec.Code)
	}
	body = decodeVersions(t, s, "vs")
	if versionOf(body, "active") != 7 || body["lastOutcome"] != "promoted" {
		t.Fatalf("after replicated promote: %v", body)
	}
	// Replicated rollback reverts the promotion.
	if rec := doFrame(t, s, cluster.EncodeOp(cluster.Op{Kind: cluster.OpRollback, Key: "vs"})); rec.Code != http.StatusOK {
		t.Fatalf("apply rollback: %d", rec.Code)
	}
	if body = decodeVersions(t, s, "vs"); versionOf(body, "active") == 7 {
		t.Fatalf("rollback did not revert: %v", body)
	}
	if !strings.Contains(do(t, s, "GET", "/metrics", nil).Body.String(), "refresh_promote_total") {
		t.Fatal("refresh_promote_total not exposed")
	}
}
