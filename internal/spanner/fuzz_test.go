package spanner

import (
	"reflect"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// fuzzExprs is the expression family the fuzzer draws from — k ranges over
// 1..3, with repeated marks, anchored gaps, and star-closed record shapes
// all represented.
var fuzzExprs = []string{
	".* <p> .*",
	"q* <p> q* <r> .*",
	".* <p> .* <r> .*",
	".* <p> .* <p> .*",
	"q <p> q",
	".* <p> .* <r> .* <p> .*",
	"(q p q r)* q <p> q <r> (q p q r)*",
	"[^ p]* <p> [^ p]*",
}

// FuzzSpannerOracleEquiv differentials the compiled one-pass multi-split
// program against the naive k-nested oracle on arbitrary short words: same
// vectors, same lexicographic order. The first byte picks the expression;
// the rest spell the word over {p, q, r}.
func FuzzSpannerOracleEquiv(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0})
	f.Add([]byte{1, 1, 0, 1, 2})
	f.Add([]byte{2, 0, 1, 2, 0, 2})
	f.Add([]byte{3, 0, 0, 0, 0})
	f.Add([]byte{5, 0, 2, 0, 1, 2, 0})
	f.Add([]byte{6, 1, 0, 1, 2, 1, 0, 1, 2})
	f.Add([]byte{7, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		tab := symtab.NewTable()
		syms := []symtab.Symbol{tab.Intern("p"), tab.Intern("q"), tab.Intern("r")}
		sigma := symtab.NewAlphabet(syms...)
		src := fuzzExprs[int(data[0])%len(fuzzExprs)]
		tp, err := extract.ParseTuple(src, tab, sigma, machine.Options{})
		if err != nil {
			t.Fatalf("ParseTuple(%q): %v", src, err)
		}
		body := data[1:]
		if len(body) > 24 { // keep the O(n^k) oracle cheap
			body = body[:24]
		}
		word := make([]symtab.Symbol, len(body))
		for i, b := range body {
			word[i] = syms[int(b)%len(syms)]
		}
		prog, err := Compile(tp, machine.Options{})
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		m, err := prog.Run(word)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		got, err := m.All()
		if err != nil {
			t.Fatalf("All: %v", err)
		}
		want := NaiveTuples(tp, word)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%q on %v:\n spanner = %v\n oracle  = %v", src, word, got, want)
		}
	})
}
