// Package spanner generalizes the paper's single-pivot extraction
// expression E1⟨p⟩E2 to k pivots
//
//	E0⟨p1⟩E1⟨p2⟩E2 … ⟨pk⟩Ek
//
// compiled into one multi-split automaton pass: a restricted document
// spanner (Fagin et al., "Document Spanners") that enumerates every
// extraction vector of a word, not just the unique one. Where
// extract.Tuple.Extract answers "the vector, if unambiguous", a compiled
// Program answers "all vectors, in lexicographic order, with O(k) delay
// between consecutive tuples after a single O(n·states) pass" — the record
// workload of production wrappers (many repeated (name, price, …) rows per
// page).
//
// The construction is a layered product DAG. A node (i, j, q) means: the
// first i symbols are consumed, pivots p1…pj are already placed, and the
// minimal DFA D_j of segment E_j sits in state q on the gap read since
// pivot j. Two edge kinds leave a node, both consuming word[i]:
//
//	advance: (i, j, q) → (i+1, j, D_j(q, word[i]))       gap grows
//	split:   (i, j, q) → (i+1, j+1, start(D_{j+1}))      word[i] is pivot j+1
//	         (enabled iff D_j accepts q and word[i] = p_{j+1})
//
// Both successors are unique, so the DAG is a binary-decision diagram over
// "is position i the next pivot": source-to-sink paths and extraction
// vectors are in bijection, with the vector read off a path's split
// positions. A backward co-accessibility pass keeps only useful nodes, and
// a jump pointer per useful node (the first split-useful node on its
// advance chain) makes enumeration constant-delay in the sense of
// Florenzano et al. ("Constant Delay Algorithms for Regular Document
// Spanners"): O(k) pointer hops per emitted tuple, independent of the
// document length. THEORY.md ("k-ary spanner extraction in one pass")
// carries the invariant argument and the per-pivot unambiguity lift.
package spanner

import (
	"context"
	"fmt"
	"math"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/symtab"
)

// Program is a compiled k-pivot spanner: the k+1 minimal segment DFAs of an
// extract.Tuple plus the pivot symbols, ready to run over documents. A
// Program is immutable and safe for concurrent Run calls.
type Program struct {
	marks []symtab.Symbol
	dfas  []*machine.DFA // k+1 segment automata, all complete over sigma
	sigma symtab.Alphabet
	opt   machine.Options

	layerOff   []int // layerOff[j] = Σ_{j'<j} |D_{j'}| — dense local state ids
	stateCount int   // layerOff[k] + |D_k|
	layerOf    []int // local state id → layer index
}

// Compile builds the multi-split program from a tuple expression. The
// segment DFAs are already minimal and complete over the tuple's alphabet
// (extract.NewTuple promotes them), so compilation is a linear repack — the
// budget/deadline work happened when the tuple was built.
func Compile(t *extract.Tuple, opt machine.Options) (*Program, error) {
	if t == nil {
		return nil, fmt.Errorf("spanner: nil tuple")
	}
	k := t.Arity()
	p := &Program{
		marks: t.Marks(),
		sigma: t.Sigma(),
		opt:   opt,
	}
	p.layerOff = make([]int, k+1)
	for j := 0; j <= k; j++ {
		d := t.Segment(j).DFA()
		p.layerOff[j] = p.stateCount
		p.dfas = append(p.dfas, d)
		p.stateCount += d.NumStates()
	}
	p.layerOf = make([]int, p.stateCount)
	for j := 0; j <= k; j++ {
		end := p.stateCount
		if j < k {
			end = p.layerOff[j+1]
		}
		for s := p.layerOff[j]; s < end; s++ {
			p.layerOf[s] = j
		}
	}
	if opt.Ctx != nil {
		obs.FromContext(opt.Ctx).Counter("spanner_compile_total").Inc()
	}
	return p, nil
}

// Arity returns the number of pivots k.
func (p *Program) Arity() int { return len(p.marks) }

// Marks returns the pivot symbols in order.
func (p *Program) Marks() []symtab.Symbol { return append([]symtab.Symbol(nil), p.marks...) }

// Sigma returns the program's alphabet.
func (p *Program) Sigma() symtab.Alphabet { return p.sigma }

// budgetLimit mirrors machine.Options' MaxStates semantics (0 → default,
// negative → unlimited) for the DAG node budget.
func budgetLimit(opt machine.Options) int {
	switch {
	case opt.MaxStates == 0:
		return machine.DefaultMaxStates
	case opt.MaxStates < 0:
		return int(^uint(0) >> 1)
	default:
		return opt.MaxStates
	}
}

// Matches is the result of one Run: the pruned useful-node DAG plus an
// enumeration cursor. Tuples come out in lexicographic vector order with
// O(k) work per call. A Matches is single-use and not safe for concurrent
// access; rerun the program for a fresh cursor.
type Matches struct {
	p    *Program
	word []symtab.Symbol

	useful []bool
	jump   []int32 // node id of first split-useful node on the advance chain, -1 none
	nodes  int     // reached nodes, for introspection

	stack   []int32 // one split node per placed pivot
	started bool
	done    bool
}

// Run executes the one forward pass plus the backward prune over word and
// returns an enumeration cursor. The node budget is opt.MaxStates with the
// usual machine.Options semantics (a node here is one reached (position,
// layer, state) triple); exceeding it returns an error wrapping
// machine.ErrBudget, and an expired Options context returns one wrapping
// machine.ErrDeadline.
func (p *Program) Run(word []symtab.Symbol) (*Matches, error) {
	return p.run(word)
}

// RunContext is Run with the compile-time options additionally bound by ctx
// — the request-path entry point, where the program was compiled without a
// deadline but each request carries one. The returned cursor's Next also
// honors ctx.
func (p *Program) RunContext(ctx context.Context, word []symtab.Symbol) (*Matches, error) {
	if ctx == nil {
		return p.run(word)
	}
	q := *p
	q.opt = q.opt.WithContext(ctx)
	return q.run(word)
}

func (p *Program) run(word []symtab.Symbol) (*Matches, error) {
	k := len(p.marks)
	n := len(word)
	sc := p.stateCount
	cells := (n + 1) * sc
	if n > (math.MaxInt32-sc)/sc {
		return nil, fmt.Errorf("spanner: %d positions × %d states overflows the node space: %w",
			n, sc, machine.ErrBudget)
	}
	limit := budgetLimit(p.opt)

	ctx := p.opt.Ctx
	var phase *obs.Phase
	if ctx != nil {
		_, phase = obs.StartPhase(ctx, "spanner.run")
		defer func() { phase.End() }()
	}

	reached := make([]bool, cells)
	rows := make([][]int32, n+1)
	m := &Matches{p: p, word: word}
	nodes := 0
	push := func(i int, local int32) error {
		id := int32(i*sc) + local
		if reached[id] {
			return nil
		}
		reached[id] = true
		nodes++
		if nodes > limit {
			return fmt.Errorf("spanner: DAG exceeds %d nodes: %w", limit, machine.ErrBudget)
		}
		rows[i] = append(rows[i], local)
		return nil
	}
	if err := push(0, int32(p.dfas[0].Start)); err != nil {
		return nil, err
	}
	// Forward: seed layer 0 and expand both edge kinds position by position.
	for i := 0; i < n; i++ {
		if err := p.opt.Err(); err != nil {
			if phase != nil {
				phase.Fail(err)
			}
			return nil, fmt.Errorf("spanner: forward pass at position %d: %w", i, err)
		}
		sym := word[i]
		for _, local := range rows[i] {
			j := p.layerOf[local]
			q := int(local) - p.layerOff[j]
			d := p.dfas[j]
			if nq := d.Step(q, sym); nq >= 0 {
				if err := push(i+1, int32(p.layerOff[j]+nq)); err != nil {
					return nil, err
				}
			}
			if j < k && d.Accept[q] && sym == p.marks[j] {
				if err := push(i+1, int32(p.layerOff[j+1]+p.dfas[j+1].Start)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Backward: usefulness (co-accessibility from an accepting sink) and the
	// jump pointer, both computable in one sweep because advance and split
	// edges strictly increase the position.
	useful := make([]bool, cells)
	jump := make([]int32, cells)
	for i := n; i >= 0; i-- {
		for _, local := range rows[i] {
			id := int32(i*sc) + local
			j := p.layerOf[local]
			q := int(local) - p.layerOff[j]
			d := p.dfas[j]
			advID := int32(-1)
			splitUseful := false
			if i < n {
				if nq := d.Step(q, word[i]); nq >= 0 {
					if a := int32((i+1)*sc + p.layerOff[j] + nq); useful[a] {
						advID = a
					}
				}
				if j < k && d.Accept[q] && word[i] == p.marks[j] {
					t := int32((i+1)*sc + p.layerOff[j+1] + p.dfas[j+1].Start)
					splitUseful = useful[t]
				}
			}
			switch {
			case i == n && j == k && d.Accept[q]:
				useful[id] = true
			case advID >= 0 || splitUseful:
				useful[id] = true
			}
			switch {
			case splitUseful:
				jump[id] = id
			case advID >= 0:
				jump[id] = jump[advID]
			default:
				jump[id] = -1
			}
		}
	}
	m.useful = useful
	m.jump = jump
	m.nodes = nodes
	if phase != nil {
		phase.Attr("nodes", int64(nodes))
		phase.Attr("positions", int64(n))
	}
	if ctx != nil {
		obs.FromContext(ctx).Counter("spanner_run_nodes_total").Add(int64(nodes))
	}
	return m, nil
}

// Nodes reports how many (position, layer, state) triples the forward pass
// materialized — the quantity the MaxStates budget bounds.
func (m *Matches) Nodes() int { return m.nodes }

func (m *Matches) splitTarget(id int32) int32 {
	sc := m.p.stateCount
	i := int(id) / sc
	j := m.p.layerOf[int(id)%sc]
	return int32((i+1)*sc + m.p.layerOff[j+1] + m.p.dfas[j+1].Start)
}

// advTarget returns the advance successor of a useful node, or -1 when the
// chain ends (end of word or a dead DFA step).
func (m *Matches) advTarget(id int32) int32 {
	sc := m.p.stateCount
	i := int(id) / sc
	if i >= len(m.word) {
		return -1
	}
	local := int(id) % sc
	j := m.p.layerOf[local]
	q := local - m.p.layerOff[j]
	nq := m.p.dfas[j].Step(q, m.word[i])
	if nq < 0 {
		return -1
	}
	return int32((i+1)*sc + m.p.layerOff[j] + nq)
}

// descend extends the stack from layer len(stack) to layer k by repeatedly
// jumping to the next split-useful node and taking its split edge — the
// lexicographically least completion of the current prefix. u is the useful
// node enumeration stands on at layer len(stack).
func (m *Matches) descend(u int32) {
	k := len(m.p.marks)
	for j := len(m.stack); j < k; j++ {
		u = m.jump[u] // total on useful nodes below layer k: an accepting path needs ≥1 more split
		m.stack = append(m.stack, u)
		u = m.splitTarget(u)
	}
}

func (m *Matches) vector() []int {
	out := make([]int, len(m.stack))
	for j, id := range m.stack {
		out[j] = int(id) / m.p.stateCount
	}
	return out
}

// Next returns the next extraction vector in lexicographic order, or
// ok=false when the enumeration is exhausted. Each call does O(k) pointer
// hops — the constant-delay contract — and polls the Options deadline.
func (m *Matches) Next() (vector []int, ok bool, err error) {
	if m.done {
		return nil, false, nil
	}
	if err := m.p.opt.Err(); err != nil {
		return nil, false, fmt.Errorf("spanner: enumeration: %w", err)
	}
	if !m.started {
		m.started = true
		start := int32(m.p.dfas[0].Start) // node (0, 0, start) has id = local id
		if int(start) >= len(m.useful) || !m.useful[start] {
			m.done = true
			return nil, false, nil
		}
		m.descend(start)
		return m.vector(), true, nil
	}
	// Successor: pop split choices deepest-first until one has a later
	// alternative (a split-useful node further along its advance chain),
	// then complete minimally again.
	for len(m.stack) > 0 {
		u := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		v := m.advTarget(u)
		if v < 0 || !m.useful[v] {
			continue
		}
		if w := m.jump[v]; w >= 0 {
			m.stack = append(m.stack, w)
			m.descend(m.splitTarget(w))
			return m.vector(), true, nil
		}
	}
	m.done = true
	return nil, false, nil
}

// All drains the cursor, returning every extraction vector in lexicographic
// order. Convenience for tests and batch callers; streaming callers should
// prefer Next.
func (m *Matches) All() ([][]int, error) {
	var out [][]int
	for {
		v, ok, err := m.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}
