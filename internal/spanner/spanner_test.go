package spanner

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

type senv struct {
	tab     *symtab.Table
	p, q, r symtab.Symbol
	sigma   symtab.Alphabet
}

func newSenv() senv {
	tab := symtab.NewTable()
	p, q, r := tab.Intern("p"), tab.Intern("q"), tab.Intern("r")
	return senv{tab, p, q, r, symtab.NewAlphabet(p, q, r)}
}

func (e senv) tuple(t *testing.T, src string, opt machine.Options) *extract.Tuple {
	t.Helper()
	tp, err := extract.ParseTuple(src, e.tab, e.sigma, opt)
	if err != nil {
		t.Fatalf("ParseTuple(%q): %v", src, err)
	}
	return tp
}

func (e senv) word(t *testing.T, src string) []symtab.Symbol {
	t.Helper()
	w, err := rx.ParseWord(src, e.tab)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestProgramMatchesOracle is the fixture differential: the one-pass
// multi-split DAG must enumerate exactly the vectors the naive k-nested
// oracle finds, in the same lexicographic order.
func TestProgramMatchesOracle(t *testing.T) {
	e := newSenv()
	cases := []struct {
		expr  string
		words []string
	}{
		{".* <p> .*", []string{"p", "q p q", "p p p", "q q", ""}},
		{"q* <p> q* <r> .*", []string{"q p q r", "p r", "q q", "p q r p r", ""}},
		{".* <p> .* <r> .*", []string{"q p q r p r q", "p r", "r p", "p p r r"}},
		{".* <p> .* <p> .*", []string{"p p p p", "q p q p q", "p"}},
		{".* <p> .* <r> .* <p> .*", []string{"p r p", "p q r q p r p", "p r"}},
		{"q <p> q", []string{"q p q", "q p", "p q", "q p q q"}},
	}
	for _, tc := range cases {
		tp := e.tuple(t, tc.expr, machine.Options{})
		prog, err := Compile(tp, machine.Options{})
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.expr, err)
		}
		if prog.Arity() != tp.Arity() {
			t.Fatalf("%q: arity = %d, want %d", tc.expr, prog.Arity(), tp.Arity())
		}
		for _, ws := range tc.words {
			w := e.word(t, ws)
			m, err := prog.Run(w)
			if err != nil {
				t.Fatalf("%q on %q: Run: %v", tc.expr, ws, err)
			}
			got, err := m.All()
			if err != nil {
				t.Fatalf("%q on %q: All: %v", tc.expr, ws, err)
			}
			want := NaiveTuples(tp, w)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%q on %q:\n spanner = %v\n oracle  = %v", tc.expr, ws, got, want)
			}
		}
	}
}

// TestUnambiguousTupleInvariant checks the per-pivot lift of the paper's
// unambiguity theory: on an unambiguous tuple the spanner finds at most one
// vector per word, and exactly the one extract.Tuple.Extract returns.
func TestUnambiguousTupleInvariant(t *testing.T) {
	e := newSenv()
	tp := e.tuple(t, "q* <p> q* <r> q*", machine.Options{})
	unamb, err := tp.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("Unambiguous() = %v, %v; fixture must be unambiguous", unamb, err)
	}
	prog, err := Compile(tp, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range []string{"q p q r q", "p r", "q q p r", "q p q", "r p", ""} {
		w := e.word(t, ws)
		m, err := prog.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.All()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 1 {
			t.Fatalf("unambiguous tuple yielded %d vectors on %q: %v", len(got), ws, got)
		}
		vec, ok, err := tp.Extract(w)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (len(got) == 1) {
			t.Fatalf("on %q: Extract ok=%v but spanner found %d vectors", ws, ok, len(got))
		}
		if ok && !reflect.DeepEqual(got[0], vec) {
			t.Fatalf("on %q: spanner = %v, Extract = %v", ws, got[0], vec)
		}
	}
}

// TestRecordEnumeration drives the record workload the subsystem exists
// for: many (p, r) rows in one page, enumerated in order.
func TestRecordEnumeration(t *testing.T) {
	e := newSenv()
	// Each record is "q p q r"; the tuple anchors one (p, r) pair per record
	// and is satisfied once per record occurrence.
	tp := e.tuple(t, "(q p q r)* q <p> q <r> (q p q r)*", machine.Options{})
	var src string
	for i := 0; i < 5; i++ {
		if i > 0 {
			src += " "
		}
		src += "q p q r"
	}
	w := e.word(t, src)
	prog, err := Compile(tp, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d records, want 5: %v", len(got), got)
	}
	for i, vec := range got {
		if want := []int{4*i + 1, 4*i + 3}; !reflect.DeepEqual(vec, want) {
			t.Errorf("record %d = %v, want %v", i, vec, want)
		}
	}
	if !reflect.DeepEqual(got, NaiveTuples(tp, w)) {
		t.Error("spanner disagrees with oracle on the record workload")
	}
	if m2, _ := prog.Run(w); m2 != nil {
		if n := m2.Nodes(); n <= 0 {
			t.Errorf("Nodes() = %d, want > 0", n)
		}
	}
}

// TestNextAfterExhaustion: the cursor stays drained.
func TestNextAfterExhaustion(t *testing.T) {
	e := newSenv()
	tp := e.tuple(t, "q* <p> .*", machine.Options{})
	prog, err := Compile(tp, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog.Run(e.word(t, "q p"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := m.Next(); !ok || v[0] != 1 {
		t.Fatalf("first Next = %v, %v", v, ok)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := m.Next(); ok || err != nil {
			t.Fatalf("Next after exhaustion: ok=%v err=%v", ok, err)
		}
	}
}

// TestRunBudget: the DAG node count is charged against MaxStates.
func TestRunBudget(t *testing.T) {
	e := newSenv()
	tp := e.tuple(t, ".* <p> .*", machine.Options{MaxStates: 4})
	prog, err := Compile(tp, machine.Options{MaxStates: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, err = prog.Run(e.word(t, "q q q q p q q q q"))
	if !errors.Is(err, machine.ErrBudget) {
		t.Fatalf("Run under a 4-node budget: err = %v, want ErrBudget", err)
	}
}

// TestRunDeadline: a cancelled Options context aborts both the pass and a
// live cursor with ErrDeadline.
func TestRunDeadline(t *testing.T) {
	e := newSenv()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := machine.Options{}.WithContext(ctx)
	tp := e.tuple(t, ".* <p> .*", machine.Options{})
	prog, err := Compile(tp, opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(e.word(t, "q p q")); !errors.Is(err, machine.ErrDeadline) {
		t.Fatalf("Run under a cancelled context: err = %v, want ErrDeadline", err)
	}

	// Cancel between Run and Next: enumeration must notice too.
	ctx2, cancel2 := context.WithCancel(context.Background())
	prog2, err := Compile(tp, machine.Options{}.WithContext(ctx2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := prog2.Run(e.word(t, "q p q"))
	if err != nil {
		t.Fatal(err)
	}
	cancel2()
	if _, _, err := m.Next(); !errors.Is(err, machine.ErrDeadline) {
		t.Fatalf("Next under a cancelled context: err = %v, want ErrDeadline", err)
	}
}

func TestCompileNil(t *testing.T) {
	if _, err := Compile(nil, machine.Options{}); err == nil {
		t.Fatal("Compile(nil) succeeded")
	}
}
