package spanner

import (
	"resilex/internal/extract"
	"resilex/internal/symtab"
)

// NaiveTuples is the k-nested reference oracle: it enumerates every
// extraction vector of word under the tuple by trying each candidate
// position for each pivot in turn and checking every gap against the
// segment language directly — O(n^k) candidate vectors, each verified by k+1
// DFA runs. Exponentially slower than a compiled Program but obviously
// correct, which is the point: the differential tests, the seqfuzz op, and
// FuzzSpannerOracleEquiv all compare Program.Run against it. Vectors come
// out in lexicographic order, matching Matches.Next.
func NaiveTuples(t *extract.Tuple, word []symtab.Symbol) [][]int {
	k := t.Arity()
	marks := t.Marks()
	var out [][]int
	var rec func(j, prev int, acc []int)
	rec = func(j, prev int, acc []int) {
		if j == k {
			if t.Segment(k).Contains(word[prev+1:]) {
				out = append(out, append([]int(nil), acc...))
			}
			return
		}
		for i := prev + 1; i < len(word); i++ {
			if word[i] != marks[j] {
				continue
			}
			if !t.Segment(j).Contains(word[prev+1 : i]) {
				continue
			}
			rec(j+1, i, append(acc, i))
		}
	}
	rec(0, -1, nil)
	return out
}
