package spanner

import (
	"errors"
	"reflect"
	"testing"

	"resilex/internal/machine"
)

func rows(t *testing.T, schema []string, rs ...Tuple) Relation {
	t.Helper()
	r, err := Rows(schema, rs, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func drain(t *testing.T, r Relation) []Tuple {
	t.Helper()
	out, err := Drain(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRowsSchemaMismatch(t *testing.T) {
	if _, err := Rows([]string{"a", "b"}, []Tuple{{1}}, machine.Options{}); err == nil {
		t.Fatal("Rows with a short tuple succeeded")
	}
}

func TestUnion(t *testing.T) {
	a := rows(t, []string{"x", "y"}, Tuple{1, 2}, Tuple{3, 4})
	b := rows(t, []string{"x", "y"}, Tuple{3, 4}, Tuple{5, 6})
	u, err := Union(a, b, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, u)
	want := []Tuple{{1, 2}, {3, 4}, {5, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(u.Schema(), []string{"x", "y"}) {
		t.Fatalf("schema = %v", u.Schema())
	}
	c := rows(t, []string{"x", "z"})
	if _, err := Union(a, c, machine.Options{}); err == nil {
		t.Fatal("union with mismatched schemas succeeded")
	}
}

func TestProject(t *testing.T) {
	a := rows(t, []string{"x", "y"}, Tuple{1, 2}, Tuple{1, 3}, Tuple{4, 2})
	p, err := Project(a, machine.Options{}, "x")
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, p)
	if want := []Tuple{{1}, {4}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("projection = %v, want %v (dedup under set semantics)", got, want)
	}
	// Reordering columns.
	p2, err := Project(a, machine.Options{}, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, p2); !reflect.DeepEqual(got[0], Tuple{2, 1}) {
		t.Fatalf("reordered projection = %v", got)
	}
	if _, err := Project(a, machine.Options{}, "nope"); err == nil {
		t.Fatal("projecting a missing column succeeded")
	}
}

func TestSelect(t *testing.T) {
	a := rows(t, []string{"x", "y"}, Tuple{1, 2}, Tuple{5, 6}, Tuple{3, 9})
	s := Select(a, func(tp Tuple) bool { return tp[0] >= 3 })
	got := drain(t, s)
	if want := []Tuple{{5, 6}, {3, 9}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("selection = %v, want %v", got, want)
	}
}

func TestNaturalJoin(t *testing.T) {
	a := rows(t, []string{"name", "price"}, Tuple{1, 3}, Tuple{5, 7}, Tuple{9, 11})
	b := rows(t, []string{"price", "stock"}, Tuple{3, 4}, Tuple{3, 8}, Tuple{11, 12})
	j, err := NaturalJoin(a, b, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"name", "price", "stock"}; !reflect.DeepEqual(j.Schema(), want) {
		t.Fatalf("join schema = %v, want %v", j.Schema(), want)
	}
	got := drain(t, j)
	want := []Tuple{{1, 3, 4}, {1, 3, 8}, {9, 11, 12}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join = %v, want %v", got, want)
	}
	// Reopening enumerates again from scratch.
	if again := drain(t, j); !reflect.DeepEqual(again, want) {
		t.Fatalf("second open = %v, want %v", again, want)
	}
	c := rows(t, []string{"other"})
	if _, err := NaturalJoin(a, c, machine.Options{}); err == nil {
		t.Fatal("join with no shared column succeeded")
	}
}

func TestJoinBuildBudget(t *testing.T) {
	a := rows(t, []string{"x"}, Tuple{1})
	b := rows(t, []string{"x"}, Tuple{1}, Tuple{2}, Tuple{3})
	j, err := NaturalJoin(a, b, machine.Options{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(j); !errors.Is(err, machine.ErrBudget) {
		t.Fatalf("join build over budget: err = %v, want ErrBudget", err)
	}
}

func TestUnionDedupBudget(t *testing.T) {
	a := rows(t, []string{"x"}, Tuple{1}, Tuple{2}, Tuple{3})
	b := rows(t, []string{"x"})
	u, err := Union(a, b, machine.Options{MaxStates: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drain(u); !errors.Is(err, machine.ErrBudget) {
		t.Fatalf("union dedup over budget: err = %v, want ErrBudget", err)
	}
}

// TestAlgebraOverExtracted composes the algebra over two live programs: the
// (p, r) pairs joined with the (r) unary relation on the shared pivot.
func TestAlgebraOverExtracted(t *testing.T) {
	e := newSenv()
	w := e.word(t, "q p q r p r")

	pairs, err := Compile(e.tuple(t, ".* <p> .* <r> .*", machine.Options{}), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Compile(e.tuple(t, ".* <r> .*", machine.Options{}), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pairRel, err := Extracted([]string{"p", "r"}, pairs, w)
	if err != nil {
		t.Fatal(err)
	}
	rRel, err := Extracted([]string{"r"}, rs, w)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NaturalJoin(pairRel, rRel, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, j)
	// Every (p, r) pair joins with exactly the matching unary r tuple, so
	// the join equals the pair relation.
	want := drain(t, pairRel)
	if len(got) != len(want) {
		t.Fatalf("join = %v, pairs = %v", got, want)
	}
	for i := range got {
		if !reflect.DeepEqual([]int(got[i]), []int(want[i])) {
			t.Fatalf("join row %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Projecting the pair relation to its r column matches the unary scan:
	// on this word every r has some p before it.
	proj, err := Project(pairRel, machine.Options{}, "r")
	if err != nil {
		t.Fatal(err)
	}
	if gotR, wantR := drain(t, proj), drain(t, rRel); !reflect.DeepEqual(gotR, wantR) {
		t.Fatalf("projection to r = %v, unary scan = %v", gotR, wantR)
	}

	if _, err := Extracted([]string{"only"}, pairs, w); err == nil {
		t.Fatal("Extracted with wrong-width schema succeeded")
	}
}
