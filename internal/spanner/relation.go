package spanner

import (
	"fmt"
	"strconv"

	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// Tuple is one row of a span relation: column j holds the token position of
// pivot j (the extracted region anchors; wrapper layers resolve positions
// to byte spans).
type Tuple []int

// Iterator enumerates a relation's tuples one at a time. Leaf iterators
// over compiled programs are constant-delay (O(k) per call); each operator
// documents what it adds on top. Returned tuples must not be mutated.
type Iterator interface {
	Next() (Tuple, bool, error)
}

// Relation is a named-column set of extraction tuples with on-demand
// enumeration. Open returns a fresh cursor; a Relation itself is reusable
// and stateless. The algebra (Union, Project, Select, NaturalJoin) composes
// Relations without materializing intermediates, with deduplication and
// join state bounded by the machine.Options budget taxonomy.
type Relation interface {
	Schema() []string
	Open() (Iterator, error)
}

// funcRelation adapts a (schema, open) pair.
type funcRelation struct {
	schema []string
	open   func() (Iterator, error)
}

func (r funcRelation) Schema() []string        { return r.schema }
func (r funcRelation) Open() (Iterator, error) { return r.open() }

type sliceIterator struct {
	rows []Tuple
	i    int
	opt  machine.Options
}

func (it *sliceIterator) Next() (Tuple, bool, error) {
	if err := it.opt.Err(); err != nil {
		return nil, false, fmt.Errorf("spanner: relation scan: %w", err)
	}
	if it.i >= len(it.rows) {
		return nil, false, nil
	}
	t := it.rows[it.i]
	it.i++
	return t, true, nil
}

// Rows builds a materialized relation from explicit tuples — the leaf for
// tests and for callers that already hold extracted vectors. Every row must
// have len(schema) columns.
func Rows(schema []string, rows []Tuple, opt machine.Options) (Relation, error) {
	for i, r := range rows {
		if len(r) != len(schema) {
			return nil, fmt.Errorf("spanner: row %d has %d columns, schema has %d", i, len(r), len(schema))
		}
	}
	return funcRelation{schema: schema, open: func() (Iterator, error) {
		return &sliceIterator{rows: rows, opt: opt}, nil
	}}, nil
}

type matchesIterator struct{ m *Matches }

func (it *matchesIterator) Next() (Tuple, bool, error) {
	v, ok, err := it.m.Next()
	return Tuple(v), ok, err
}

// Extracted lifts a compiled program over a document into a relation with
// one named column per pivot. Each Open runs the program's forward/backward
// pass once; enumeration from the resulting cursor is constant-delay.
func Extracted(schema []string, p *Program, word []symtab.Symbol) (Relation, error) {
	if len(schema) != p.Arity() {
		return nil, fmt.Errorf("spanner: schema has %d columns, program arity is %d", len(schema), p.Arity())
	}
	return funcRelation{schema: schema, open: func() (Iterator, error) {
		m, err := p.Run(word)
		if err != nil {
			return nil, err
		}
		return &matchesIterator{m: m}, nil
	}}, nil
}

// key renders a tuple for set semantics (dedup and join probes).
func key(t Tuple) string {
	out := make([]byte, 0, len(t)*4)
	for _, v := range t {
		out = strconv.AppendInt(out, int64(v), 10)
		out = append(out, ',')
	}
	return string(out)
}

// dedupIterator drops repeated tuples, charging each distinct retained
// tuple against the Options budget — set semantics can hold the whole
// output in memory, so it is bounded like any other state-building loop.
type dedupIterator struct {
	in   Iterator
	seen map[string]bool
	opt  machine.Options
	what string
}

func (it *dedupIterator) Next() (Tuple, bool, error) {
	for {
		t, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := key(t)
		if it.seen[k] {
			continue
		}
		it.seen[k] = true
		if len(it.seen) > budgetLimit(it.opt) {
			return nil, false, fmt.Errorf("spanner: %s exceeds %d distinct tuples: %w",
				it.what, budgetLimit(it.opt), machine.ErrBudget)
		}
		return t, true, nil
	}
}

// Union returns a ∪ b under set semantics. Schemas must match exactly.
// Delay is constant per emitted tuple except for skips over duplicates; the
// dedup set is budget-bounded.
func Union(a, b Relation, opt machine.Options) (Relation, error) {
	if !equalSchemas(a.Schema(), b.Schema()) {
		return nil, fmt.Errorf("spanner: union schemas differ: %v vs %v", a.Schema(), b.Schema())
	}
	return funcRelation{schema: a.Schema(), open: func() (Iterator, error) {
		ia, err := a.Open()
		if err != nil {
			return nil, err
		}
		return &dedupIterator{
			in:   &chainIterator{rels: []Relation{b}, cur: ia},
			seen: map[string]bool{}, opt: opt, what: "union",
		}, nil
	}}, nil
}

// chainIterator drains cur, then opens each remaining relation in turn.
type chainIterator struct {
	rels []Relation
	cur  Iterator
}

func (it *chainIterator) Next() (Tuple, bool, error) {
	for {
		if it.cur != nil {
			t, ok, err := it.cur.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return t, true, nil
			}
			it.cur = nil
		}
		if len(it.rels) == 0 {
			return nil, false, nil
		}
		next, err := it.rels[0].Open()
		if err != nil {
			return nil, false, err
		}
		it.rels = it.rels[1:]
		it.cur = next
	}
}

// Project returns r restricted to cols, in the given order, under set
// semantics (duplicates introduced by dropping columns are removed, budget-
// bounded like Union's).
func Project(r Relation, opt machine.Options, cols ...string) (Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := indexOf(r.Schema(), c)
		if j < 0 {
			return nil, fmt.Errorf("spanner: project: no column %q in schema %v", c, r.Schema())
		}
		idx[i] = j
	}
	return funcRelation{schema: append([]string(nil), cols...), open: func() (Iterator, error) {
		in, err := r.Open()
		if err != nil {
			return nil, err
		}
		return &dedupIterator{
			in:   &mapIterator{in: in, f: func(t Tuple) Tuple { return pick(t, idx) }},
			seen: map[string]bool{}, opt: opt, what: "projection",
		}, nil
	}}, nil
}

type mapIterator struct {
	in Iterator
	f  func(Tuple) Tuple
}

func (it *mapIterator) Next() (Tuple, bool, error) {
	t, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return it.f(t), true, nil
}

// Select returns the tuples of r satisfying pred. The predicate sees the
// tuple in r's schema order. Delay is constant per emitted tuple but
// unbounded skips can occur over non-matching runs (inherent to selection).
func Select(r Relation, pred func(Tuple) bool) Relation {
	return funcRelation{schema: r.Schema(), open: func() (Iterator, error) {
		in, err := r.Open()
		if err != nil {
			return nil, err
		}
		return &filterIterator{in: in, pred: pred}, nil
	}}
}

type filterIterator struct {
	in   Iterator
	pred func(Tuple) bool
}

func (it *filterIterator) Next() (Tuple, bool, error) {
	for {
		t, ok, err := it.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if it.pred(t) {
			return t, true, nil
		}
	}
}

// NaturalJoin joins a and b on every shared column name — "the same region
// anchors both tuples". At least one column must be shared (use an explicit
// cross product elsewhere if that is really wanted; on span relations an
// unconstrained product is almost always a bug). The right side is hashed
// once at Open (linear preprocessing, budget-bounded); enumeration then
// streams the left side with constant delay per emitted tuple, in the
// Joining-Extractions-of-Regular-Expressions style. Output schema is a's
// columns followed by b's non-shared columns.
func NaturalJoin(a, b Relation, opt machine.Options) (Relation, error) {
	shared, bOnly := splitSchema(a.Schema(), b.Schema())
	if len(shared) == 0 {
		return nil, fmt.Errorf("spanner: natural join of %v and %v shares no column", a.Schema(), b.Schema())
	}
	aShared := indicesOf(a.Schema(), shared)
	bShared := indicesOf(b.Schema(), shared)
	bRest := indicesOf(b.Schema(), bOnly)
	schema := append(append([]string(nil), a.Schema()...), bOnly...)
	return funcRelation{schema: schema, open: func() (Iterator, error) {
		ib, err := b.Open()
		if err != nil {
			return nil, err
		}
		built := map[string][]Tuple{}
		n := 0
		for {
			t, ok, err := ib.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			n++
			if n > budgetLimit(opt) {
				return nil, fmt.Errorf("spanner: join build side exceeds %d tuples: %w",
					budgetLimit(opt), machine.ErrBudget)
			}
			k := key(pick(t, bShared))
			built[k] = append(built[k], pick(t, bRest))
		}
		ia, err := a.Open()
		if err != nil {
			return nil, err
		}
		return &joinIterator{left: ia, built: built, aShared: aShared, opt: opt}, nil
	}}, nil
}

type joinIterator struct {
	left    Iterator
	built   map[string][]Tuple
	aShared []int
	opt     machine.Options

	cur     Tuple   // current left tuple
	matches []Tuple // right-side completions for cur
	mi      int
}

func (it *joinIterator) Next() (Tuple, bool, error) {
	for {
		if it.cur != nil && it.mi < len(it.matches) {
			rest := it.matches[it.mi]
			it.mi++
			out := make(Tuple, 0, len(it.cur)+len(rest))
			out = append(append(out, it.cur...), rest...)
			return out, true, nil
		}
		if err := it.opt.Err(); err != nil {
			return nil, false, fmt.Errorf("spanner: join probe: %w", err)
		}
		t, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.cur = t
		it.matches = it.built[key(pick(t, it.aShared))]
		it.mi = 0
	}
}

// Drain opens r and collects every tuple — the batch-mode convenience the
// serve and CLI layers use.
func Drain(r Relation) ([]Tuple, error) {
	it, err := r.Open()
	if err != nil {
		return nil, err
	}
	var out []Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

func equalSchemas(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func indexOf(schema []string, col string) int {
	for i, c := range schema {
		if c == col {
			return i
		}
	}
	return -1
}

func indicesOf(schema []string, cols []string) []int {
	out := make([]int, len(cols))
	for i, c := range cols {
		out[i] = indexOf(schema, c)
	}
	return out
}

func pick(t Tuple, idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// splitSchema returns the columns of a also in b (in a's order) and the
// columns only in b (in b's order).
func splitSchema(a, b []string) (shared, bOnly []string) {
	inB := map[string]bool{}
	for _, c := range b {
		inB[c] = true
	}
	for _, c := range a {
		if inB[c] {
			shared = append(shared, c)
		}
	}
	inShared := map[string]bool{}
	for _, c := range shared {
		inShared[c] = true
	}
	for _, c := range b {
		if !inShared[c] {
			bOnly = append(bOnly, c)
		}
	}
	return shared, bOnly
}
