package learn

import (
	"math/rand"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// genSite builds a random synthetic page: decoration, FORM, i inputs with
// the target fixed as the second INPUT.
func genSite(tab *symtab.Table, rng *rand.Rand) Example {
	w := func(names ...string) []symtab.Symbol { return tab.InternAll(names...) }
	var doc []symtab.Symbol
	// Random header decoration.
	decos := [][]symtab.Symbol{
		w("P", "H1", "/H1"),
		w("TABLE", "TR", "TD", "/TD", "/TR"),
		w("DIV", "IMG", "/DIV"),
		w("H1", "/H1", "HR"),
		nil,
	}
	doc = append(doc, decos[rng.Intn(len(decos))]...)
	if rng.Intn(2) == 0 {
		doc = append(doc, decos[rng.Intn(len(decos))]...)
	}
	doc = append(doc, tab.Intern("FORM"))
	inputs := 2 + rng.Intn(3)
	target := -1
	for i := 0; i < inputs; i++ {
		doc = append(doc, tab.Intern("INPUT"))
		if i == 1 {
			target = len(doc) - 1
		}
	}
	doc = append(doc, tab.Intern("/FORM"))
	// Random footer.
	if rng.Intn(2) == 0 {
		doc = append(doc, w("P", "A", "/A")...)
	}
	return Example{Doc: doc, Target: target}
}

// Property: Induce's output always generalizes every rigid example
// expression and extracts each example correctly; if maximization then
// succeeds, those properties survive it.
func TestInducePropertyRandomSites(t *testing.T) {
	tab := symtab.NewTable()
	rng := rand.New(rand.NewSource(88))
	sigma := symtab.NewAlphabet(tab.InternAll(
		"P", "H1", "/H1", "TABLE", "/TABLE", "TR", "/TR", "TD", "/TD",
		"DIV", "/DIV", "IMG", "HR", "A", "/A", "FORM", "/FORM", "INPUT")...)
	for trial := 0; trial < 40; trial++ {
		k := 1 + rng.Intn(4)
		var examples []Example
		for i := 0; i < k; i++ {
			examples = append(examples, genSite(tab, rng))
		}
		res, err := Induce(examples, sigma, machine.Options{})
		if err != nil {
			t.Fatalf("trial %d: Induce: %v", trial, err)
		}
		for i, ex := range examples {
			pos, ok := res.Expr.Extract(ex.Doc)
			if !ok || pos != ex.Target {
				t.Fatalf("trial %d example %d: extraction (%d,%v), want %d [strategy %s]",
					trial, i, pos, ok, ex.Target, res.Strategy)
			}
			rig, err := Rigid(ex, sigma, machine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Rigid right side is the literal suffix; the induced expression
			// generalizes it whenever induction used the open/merged right.
			// Component-wise: rigid left ⊆ induced left always.
			sub, err := rig.Left().SubsetOf(res.Expr.Left())
			if err != nil || !sub {
				t.Fatalf("trial %d example %d: induced left does not cover rigid left (%v, %v)",
					trial, i, sub, err)
			}
		}
		maxed, err := extract.Maximize(res.Expr)
		if err != nil {
			continue // not all induced shapes are maximizable; fine
		}
		for i, ex := range examples {
			pos, ok := maxed.Extract(ex.Doc)
			if !ok || pos != ex.Target {
				t.Fatalf("trial %d example %d after maximize: (%d,%v), want %d",
					trial, i, pos, ok, ex.Target)
			}
		}
	}
}

// The merge anchors are always a common subsequence of all inputs, and the
// merged language contains every input word.
func TestMergeWordsInvariants(t *testing.T) {
	tab := symtab.NewTable()
	rng := rand.New(rand.NewSource(7))
	syms := tab.InternAll("a", "b", "c", "d")
	sigma := symtab.NewAlphabet(syms...)
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(4)
		var words [][]symtab.Symbol
		for i := 0; i < k; i++ {
			n := rng.Intn(8)
			w := make([]symtab.Symbol, n)
			for j := range w {
				w[j] = syms[rng.Intn(len(syms))]
			}
			words = append(words, w)
		}
		merged := MergeWords(words)
		nfa, err := machine.Compile(merged, sigma, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range words {
			if !nfa.Accepts(w) {
				t.Fatalf("trial %d: merged pattern rejects input word %d (%s)",
					trial, i, tab.String(w))
			}
		}
	}
}

func TestInduceManyExamples(t *testing.T) {
	tab := symtab.NewTable()
	rng := rand.New(rand.NewSource(3))
	sigma := symtab.NewAlphabet(tab.InternAll(
		"P", "H1", "/H1", "TABLE", "/TABLE", "TR", "/TR", "TD", "/TD",
		"DIV", "/DIV", "IMG", "HR", "A", "/A", "FORM", "/FORM", "INPUT")...)
	var examples []Example
	for i := 0; i < 8; i++ {
		examples = append(examples, genSite(tab, rng))
	}
	res, err := Induce(examples, sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxed, err := extract.Maximize(res.Expr)
	if err != nil {
		t.Fatalf("maximize after 8 examples: %v", err)
	}
	// The maximized wrapper handles fresh sites from the same generator.
	hits := 0
	for i := 0; i < 50; i++ {
		s := genSite(tab, rng)
		if pos, ok := maxed.Extract(s.Doc); ok && pos == s.Target {
			hits++
		}
	}
	if hits < 45 {
		t.Errorf("maximized wrapper hit %d/50 fresh sites", hits)
	}
}
