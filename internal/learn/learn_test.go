package learn

import (
	"errors"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

type env struct {
	tab   *symtab.Table
	sigma symtab.Alphabet
}

func newEnv() env {
	tab := symtab.NewTable()
	syms := tab.InternAll(
		"P", "H1", "/H1", "FORM", "/FORM", "INPUT",
		"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "TH", "/TH", "IMG", "A", "/A",
	)
	return env{tab, symtab.NewAlphabet(syms...)}
}

func (e env) word(t *testing.T, s string) []symtab.Symbol {
	t.Helper()
	w, err := rx.ParseWord(s, e.tab)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (e env) example(t *testing.T, s string, target int) Example {
	return Example{Doc: e.word(t, s), Target: target}
}

func TestExampleValidate(t *testing.T) {
	e := newEnv()
	if err := (Example{Doc: e.word(t, "P"), Target: 0}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Example{Doc: e.word(t, "P"), Target: 1}).Validate(); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := (Example{Doc: nil, Target: 0}).Validate(); err == nil {
		t.Error("empty doc accepted")
	}
}

func TestRigid(t *testing.T) {
	e := newEnv()
	ex := e.example(t, "P FORM INPUT INPUT /FORM", 3)
	x, err := Rigid(ex, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pos, ok := x.Extract(ex.Doc)
	if !ok || pos != 3 {
		t.Errorf("rigid extraction = (%d, %v)", pos, ok)
	}
	// Any change breaks it (brittleness).
	changed := e.word(t, "P P FORM INPUT INPUT /FORM")
	if _, ok := x.Extract(changed); ok {
		t.Error("rigid expression survived an edit")
	}
}

func TestLCS(t *testing.T) {
	e := newEnv()
	a := e.word(t, "P H1 /H1 P FORM INPUT")
	b := e.word(t, "TABLE TR TD FORM INPUT")
	got := lcs(a, b)
	if e.tab.String(got) != "FORM INPUT" {
		t.Errorf("lcs = %q", e.tab.String(got))
	}
	if got := lcs(nil, a); len(got) != 0 {
		t.Errorf("lcs with empty = %v", got)
	}
	if got := lcs(a, a); e.tab.String(got) != e.tab.String(a) {
		t.Errorf("lcs self = %q", e.tab.String(got))
	}
}

func TestMergeWords(t *testing.T) {
	e := newEnv()
	words := [][]symtab.Symbol{
		e.word(t, "P FORM"),
		e.word(t, "TABLE TR FORM"),
	}
	n := MergeWords(words)
	// Language must contain both words.
	l, err := machineLang(t, n, e.sigma)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		if !l.Accepts(w) {
			t.Errorf("merged pattern rejects %q", e.tab.String(w))
		}
	}
	// Single word merges to itself.
	n = MergeWords(words[:1])
	if !rx.Equal(n, rx.Word(words[0]...)) {
		t.Errorf("single-word merge = %s", rx.Print(n, e.tab))
	}
	if MergeWords(nil).Op != rx.OpEpsilon {
		t.Error("empty merge should be ε")
	}
}

func machineLang(t *testing.T, n *rx.Node, sigma symtab.Alphabet) (*machine.NFA, error) {
	t.Helper()
	return machine.Compile(n, sigma, machine.Options{})
}

// TestInduceFigure1 drives the full Section 7 story through the learner:
// two marked documents → merged unambiguous expression that parses both and
// feeds the pivot maximizer.
func TestInduceFigure1(t *testing.T) {
	e := newEnv()
	ex1 := e.example(t, "P H1 /H1 P FORM INPUT INPUT P INPUT INPUT /FORM", 6)
	ex2doc := "TABLE TR TH IMG /TH /TR TR TD H1 /H1 /TD /TR TR TD A /A /TD /TR " +
		"TR TD FORM INPUT INPUT INPUT INPUT /FORM /TD /TR /TABLE"
	ex2 := e.example(t, ex2doc, 22)
	res, err := Induce([]Example{ex1, ex2}, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != StrategyMergeOpenRight {
		t.Errorf("strategy = %s, want %s", res.Strategy, StrategyMergeOpenRight)
	}
	// The induced expression extracts the right INPUT from both examples.
	for i, ex := range []Example{ex1, ex2} {
		pos, ok := res.Expr.Extract(ex.Doc)
		if !ok || pos != ex.Target {
			t.Errorf("example %d: extraction = (%d, %v), want %d", i, pos, ok, ex.Target)
		}
	}
	// It generalizes both rigid expressions (Definition 4.4).
	for i, ex := range []Example{ex1, ex2} {
		rig, err := Rigid(ex, e.sigma, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if g, err := res.Expr.Generalizes(rig); err != nil || !g {
			t.Errorf("example %d: induced does not generalize rigid (%v, %v)", i, g, err)
		}
	}
	// And it feeds the maximizer: the final wrapper is maximal, unambiguous,
	// and still extracts correctly.
	maxed, err := extract.Maximize(res.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := maxed.Maximal(); err != nil || !m {
		t.Fatalf("maximized result not maximal: %v %v", m, err)
	}
	for i, ex := range []Example{ex1, ex2} {
		pos, ok := maxed.Extract(ex.Doc)
		if !ok || pos != ex.Target {
			t.Errorf("example %d after maximize: (%d, %v), want %d", i, pos, ok, ex.Target)
		}
	}
	// The maximized wrapper survives a novel page variant (resilience). The
	// merge anchors on the H1 header both training pages share, so the
	// variant keeps its header (as real redesigns of this site would).
	novel := e.word(t, "TABLE TR TD H1 /H1 /TD /TR TR TD FORM INPUT INPUT /FORM /TD /TR /TABLE")
	pos, ok := maxed.Extract(novel)
	if !ok || e.tab.Name(novel[pos]) != "INPUT" || pos != 11 {
		t.Errorf("novel page extraction = (%d, %v), want 11", pos, ok)
	}
}

func TestInduceSingleExample(t *testing.T) {
	e := newEnv()
	ex := e.example(t, "P FORM INPUT INPUT /FORM", 3)
	res, err := Induce([]Example{ex}, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pos, ok := res.Expr.Extract(ex.Doc)
	if !ok || pos != ex.Target {
		t.Errorf("extraction = (%d, %v)", pos, ok)
	}
}

func TestInduceErrors(t *testing.T) {
	e := newEnv()
	if _, err := Induce(nil, e.sigma, machine.Options{}); !errors.Is(err, ErrNoExamples) {
		t.Errorf("empty: %v", err)
	}
	ex1 := e.example(t, "P FORM", 1)
	ex2 := e.example(t, "P FORM", 0)
	if _, err := Induce([]Example{ex1, ex2}, e.sigma, machine.Options{}); !errors.Is(err, ErrMixedTargets) {
		t.Errorf("mixed targets: %v", err)
	}
	bad := Example{Doc: e.word(t, "P"), Target: 5}
	if _, err := Induce([]Example{bad}, e.sigma, machine.Options{}); err == nil {
		t.Error("invalid example accepted")
	}
}

// When the open-right merge is ambiguous, the ladder falls back to merging
// the right context.
func TestInduceDisambiguationLadder(t *testing.T) {
	e := newEnv()
	// Target is the FIRST INPUT of two: with Σ* on the right the merged
	// prefix (… FORM) cannot tell the first INPUT from the second, because
	// prefixes like "... FORM INPUT" also reach an INPUT — making the
	// open-right merge of these examples ambiguous:
	// doc: FORM INPUT INPUT; prefix anchor FORM, but the string
	// FORM INPUT INPUT admits only one parse with left = FORM exactly…
	// Use genuinely colliding examples instead: mark INPUT with examples
	// whose prefixes differ by an INPUT.
	ex1 := e.example(t, "FORM INPUT /FORM", 1)
	ex2 := e.example(t, "FORM INPUT INPUT /FORM", 2)
	// Merged prefix ⊇ {FORM, FORM INPUT}: with Σ* right side this is
	// ambiguous on FORM INPUT INPUT … (positions 1 and 2 both valid).
	res, err := Induce([]Example{ex1, ex2}, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy == StrategyMergeOpenRight {
		t.Errorf("expected a fallback strategy, got %s", res.Strategy)
	}
	unamb, err := res.Expr.Unambiguous()
	if err != nil || !unamb {
		t.Fatalf("ladder returned ambiguous expression (%v, %v)", unamb, err)
	}
	for i, ex := range []Example{ex1, ex2} {
		pos, ok := res.Expr.Extract(ex.Doc)
		if !ok || pos != ex.Target {
			t.Errorf("example %d: (%d, %v), want %d", i, pos, ok, ex.Target)
		}
	}
}

func TestInduceTrulyAmbiguous(t *testing.T) {
	e := newEnv()
	// Two marks of the same symbol at interchangeable positions in the same
	// document shape defeat every rung: the training set itself is
	// contradictory (same document, different positions are impossible here,
	// so craft suffix/prefix collisions).
	ex1 := e.example(t, "INPUT INPUT", 0)
	ex2 := e.example(t, "INPUT INPUT", 1)
	_, err := Induce([]Example{ex1, ex2}, e.sigma, machine.Options{})
	if !errors.Is(err, ErrAmbiguousExamples) {
		t.Errorf("err = %v, want ErrAmbiguousExamples", err)
	}
}
