// Package learn implements the "initial learning stage" of the paper's
// framework (Sections 3 and 7): from a handful of example documents with the
// target object marked, it builds rigid extraction expressions and
// generalizes them with the left-to-right merging heuristic — find a
// sequence of tokens common to the examples, take the union of everything
// in-between — producing an unambiguous extraction expression suitable for
// the maximization algorithms of internal/extract.
//
// When the merged expression is ambiguous the package runs a small
// disambiguation ladder (right-context merging, then the rigid union), a
// concrete take on the disambiguation procedure the paper leaves as future
// work (Section 8).
package learn

import (
	"errors"
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// Example is one training document with the target token marked by index.
type Example struct {
	Doc    []symtab.Symbol
	Target int // index into Doc of the marked occurrence
}

// Validate checks the example is internally consistent.
func (ex Example) Validate() error {
	if ex.Target < 0 || ex.Target >= len(ex.Doc) {
		return fmt.Errorf("learn: target index %d out of range (document has %d tokens)", ex.Target, len(ex.Doc))
	}
	return nil
}

// P returns the marked symbol.
func (ex Example) P() symtab.Symbol { return ex.Doc[ex.Target] }

// ErrNoExamples is returned by Induce on an empty training set.
var ErrNoExamples = errors.New("learn: no examples")

// ErrMixedTargets is returned when examples mark different symbols — the
// paper requires the object of interest to be "of the same kind" in every
// perturbation.
var ErrMixedTargets = errors.New("learn: examples mark different symbols")

// ErrAmbiguousExamples is returned when every strategy in the
// disambiguation ladder yields an ambiguous expression; per Section 7, "if
// none of the heuristics succeeds in producing an unambiguous expression,
// then the algorithm fails".
var ErrAmbiguousExamples = errors.New("learn: could not induce an unambiguous expression")

// Rigid builds the fully rigid single-document expression: the exact token
// string with the target marked (the starting point of Section 3's
// strategy).
func Rigid(ex Example, sigma symtab.Alphabet, opt machine.Options) (extract.Expr, error) {
	if err := ex.Validate(); err != nil {
		return extract.Expr{}, err
	}
	left := rx.Word(ex.Doc[:ex.Target]...)
	right := rx.Word(ex.Doc[ex.Target+1:]...)
	return extract.FromAST(left, ex.P(), right, sigma, opt)
}

// Strategy names reported by Induce.
const (
	StrategyMergeOpenRight = "merge-prefixes"   // merged left, Σ* right
	StrategyMergeBoth      = "merge-both-sides" // merged left and right
	StrategyRigidUnion     = "rigid-union"      // union of the rigid examples
)

// Result is an induced expression plus the strategy that produced it.
type Result struct {
	Expr     extract.Expr
	Strategy string
}

// Induce generalizes the examples into a single unambiguous extraction
// expression. It tries, in order: the Section 7 merge with an open (Σ*)
// right side — the shape the maximization algorithms want; the merge with a
// merged right context; and the union of the rigid expressions. The first
// unambiguous result wins. All examples must mark the same symbol.
func Induce(examples []Example, sigma symtab.Alphabet, opt machine.Options) (Result, error) {
	if len(examples) == 0 {
		return Result{}, ErrNoExamples
	}
	if err := opt.Err(); err != nil {
		return Result{}, fmt.Errorf("learn: %w", err)
	}
	for _, ex := range examples {
		if err := ex.Validate(); err != nil {
			return Result{}, err
		}
	}
	p := examples[0].P()
	var prefixes, suffixes [][]symtab.Symbol
	for _, ex := range examples {
		if ex.P() != p {
			return Result{}, ErrMixedTargets
		}
		prefixes = append(prefixes, ex.Doc[:ex.Target])
		suffixes = append(suffixes, ex.Doc[ex.Target+1:])
		sigma = sigma.Union(symtab.NewAlphabet(ex.Doc...))
	}
	left := MergeWords(prefixes)
	full := sigma.With(p)

	try := func(right *rx.Node, strategy string) (Result, bool, error) {
		x, err := extract.FromAST(left, p, right, full, opt)
		if err != nil {
			return Result{}, false, err
		}
		unamb, err := x.Unambiguous()
		if err != nil {
			return Result{}, false, err
		}
		if !unamb {
			return Result{}, false, nil
		}
		return Result{Expr: x, Strategy: strategy}, true, nil
	}

	// Rung 1: open right side.
	if res, ok, err := try(rx.Star(rx.Class(full)), StrategyMergeOpenRight); err != nil || ok {
		return res, err
	}
	// Rung 2: merged right context disambiguates many p-dense layouts.
	if err := opt.Err(); err != nil {
		return Result{}, fmt.Errorf("learn: %w", err)
	}
	if res, ok, err := try(MergeWords(suffixes), StrategyMergeBoth); err != nil || ok {
		return res, err
	}
	// Rung 3: rigid union — always parses exactly the training set.
	if err := opt.Err(); err != nil {
		return Result{}, fmt.Errorf("learn: %w", err)
	}
	var lws, rws []*rx.Node
	for i := range prefixes {
		lws = append(lws, rx.Word(prefixes[i]...))
		rws = append(rws, rx.Word(suffixes[i]...))
	}
	x, err := extract.FromAST(rx.Union(lws...), p, rx.Union(rws...), full, opt)
	if err != nil {
		return Result{}, err
	}
	unamb, err := x.Unambiguous()
	if err != nil {
		return Result{}, err
	}
	if unamb {
		return Result{Expr: x, Strategy: StrategyRigidUnion}, nil
	}
	return Result{}, ErrAmbiguousExamples
}

// MergeWords implements the left-to-right merging heuristic on a set of
// token strings: anchors are a common subsequence of all words (the fold of
// pairwise longest common subsequences) and each between-anchor region
// becomes the union of the literal chunks observed there.
func MergeWords(words [][]symtab.Symbol) *rx.Node {
	if len(words) == 0 {
		return rx.Epsilon()
	}
	anchors := words[0]
	for _, w := range words[1:] {
		anchors = lcs(anchors, w)
	}
	// Collect gap alternatives by aligning each word against the anchors.
	gaps := make([][][]symtab.Symbol, len(anchors)+1)
	for _, w := range words {
		chunks := alignGaps(w, anchors)
		for i, c := range chunks {
			gaps[i] = append(gaps[i], c)
		}
	}
	var parts []*rx.Node
	for i := range gaps {
		if i > 0 {
			parts = append(parts, rx.Sym(anchors[i-1]))
		}
		parts = append(parts, gapNode(gaps[i]))
	}
	return rx.Concat(parts...)
}

// gapNode renders a set of observed chunks as (c1 | c2 | …), collapsing
// duplicates; an all-empty gap vanishes (rx constructors handle ε).
func gapNode(chunks [][]symtab.Symbol) *rx.Node {
	var alts []*rx.Node
	for _, c := range chunks {
		alts = append(alts, rx.Word(c...))
	}
	return rx.Union(alts...)
}

// lcs returns a longest common subsequence of a and b (classic O(len·len)
// dynamic program; ties resolved toward earlier a-tokens).
func lcs(a, b []symtab.Symbol) []symtab.Symbol {
	n, m := len(a), len(b)
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var out []symtab.Symbol
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}

// alignGaps splits w into len(anchors)+1 chunks around the leftmost
// occurrence of the anchor subsequence. anchors must be a subsequence of w.
func alignGaps(w, anchors []symtab.Symbol) [][]symtab.Symbol {
	out := make([][]symtab.Symbol, 0, len(anchors)+1)
	start := 0
	for _, a := range anchors {
		i := start
		for w[i] != a {
			i++
		}
		out = append(out, w[start:i])
		start = i + 1
	}
	out = append(out, w[start:])
	return out
}
