package learn

import (
	"errors"
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// TupleExample is a training document with k marked targets in ascending
// order — the tuple analogue of Example.
type TupleExample struct {
	Doc     []symtab.Symbol
	Targets []int
}

// Validate checks indices are in range, strictly ascending, and non-empty.
func (ex TupleExample) Validate() error {
	if len(ex.Targets) == 0 {
		return errors.New("learn: tuple example has no targets")
	}
	prev := -1
	for _, t := range ex.Targets {
		if t < 0 || t >= len(ex.Doc) {
			return fmt.Errorf("learn: target index %d out of range (document has %d tokens)", t, len(ex.Doc))
		}
		if t <= prev {
			return fmt.Errorf("learn: targets not strictly ascending at %d", t)
		}
		prev = t
	}
	return nil
}

// Marks returns the marked symbols in order.
func (ex TupleExample) Marks() []symtab.Symbol {
	out := make([]symtab.Symbol, len(ex.Targets))
	for i, t := range ex.Targets {
		out[i] = ex.Doc[t]
	}
	return out
}

// InduceTuple generalizes tuple examples into an unambiguous tuple
// expression: each between-marks segment is merged independently with the
// Section 7 heuristic; the tail is first widened to Σ* and, if that makes
// the tuple ambiguous, kept merged (the tuple analogue of Induce's ladder).
// All examples must mark the same symbol sequence.
func InduceTuple(examples []TupleExample, sigma symtab.Alphabet, opt machine.Options) (*extract.Tuple, error) {
	if len(examples) == 0 {
		return nil, ErrNoExamples
	}
	for _, ex := range examples {
		if err := ex.Validate(); err != nil {
			return nil, err
		}
	}
	marks := examples[0].Marks()
	k := len(marks)
	segChunks := make([][][]symtab.Symbol, k+1)
	for _, ex := range examples {
		m := ex.Marks()
		if len(m) != k {
			return nil, ErrMixedTargets
		}
		for j := range m {
			if m[j] != marks[j] {
				return nil, ErrMixedTargets
			}
		}
		prev := 0
		for j, t := range ex.Targets {
			segChunks[j] = append(segChunks[j], ex.Doc[prev:t])
			prev = t + 1
		}
		segChunks[k] = append(segChunks[k], ex.Doc[prev:])
		sigma = sigma.Union(symtab.NewAlphabet(ex.Doc...))
	}
	for _, m := range marks {
		sigma = sigma.With(m)
	}
	segs := make([]*rx.Node, k+1)
	for j := 0; j <= k; j++ {
		segs[j] = MergeWords(segChunks[j])
	}
	// Rung 1: open tail.
	withOpenTail := append(append([]*rx.Node(nil), segs[:k]...), rx.Star(rx.Class(sigma)))
	t, err := extract.NewTupleFromASTs(withOpenTail, marks, sigma, opt)
	if err != nil {
		return nil, err
	}
	if unamb, err := t.Unambiguous(); err != nil {
		return nil, err
	} else if unamb {
		return t, nil
	}
	// Rung 2: merged tail.
	t, err = extract.NewTupleFromASTs(segs, marks, sigma, opt)
	if err != nil {
		return nil, err
	}
	if unamb, err := t.Unambiguous(); err != nil {
		return nil, err
	} else if unamb {
		return t, nil
	}
	// Rung 3: rigid union per segment.
	rigid := make([]*rx.Node, k+1)
	for j := 0; j <= k; j++ {
		var alts []*rx.Node
		for _, c := range segChunks[j] {
			alts = append(alts, rx.Word(c...))
		}
		rigid[j] = rx.Union(alts...)
	}
	t, err = extract.NewTupleFromASTs(rigid, marks, sigma, opt)
	if err != nil {
		return nil, err
	}
	if unamb, err := t.Unambiguous(); err != nil {
		return nil, err
	} else if unamb {
		return t, nil
	}
	return nil, ErrAmbiguousExamples
}
