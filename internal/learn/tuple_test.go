package learn

import (
	"errors"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
)

func (e env) tupleExample(t *testing.T, s string, targets ...int) TupleExample {
	t.Helper()
	return TupleExample{Doc: e.word(t, s), Targets: targets}
}

func TestTupleExampleValidate(t *testing.T) {
	e := newEnv()
	cases := []struct {
		ex TupleExample
		ok bool
	}{
		{e.tupleExample(t, "P FORM INPUT INPUT", 2, 3), true},
		{e.tupleExample(t, "P FORM INPUT INPUT", 3, 2), false}, // not ascending
		{e.tupleExample(t, "P FORM INPUT INPUT", 2, 2), false}, // duplicate
		{e.tupleExample(t, "P"), false},                        // no targets
		{e.tupleExample(t, "P", 4), false},                     // out of range
	}
	for i, c := range cases {
		if err := c.ex.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestInduceTupleEndToEnd(t *testing.T) {
	e := newEnv()
	// Extract (first INPUT, second INPUT) as a unit across two layouts.
	ex1 := e.tupleExample(t, "P H1 /H1 FORM INPUT INPUT /FORM", 4, 5)
	ex2 := e.tupleExample(t, "TABLE TR TD H1 /H1 FORM INPUT INPUT /FORM /TD /TR /TABLE", 6, 7)
	tp, err := InduceTuple([]TupleExample{ex1, ex2}, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if unamb, err := tp.Unambiguous(); err != nil || !unamb {
		t.Fatalf("induced tuple ambiguous: %v %v", unamb, err)
	}
	for i, ex := range []TupleExample{ex1, ex2} {
		v, ok, err := tp.Extract(ex.Doc)
		if err != nil || !ok {
			t.Fatalf("example %d: extract %v %v", i, ok, err)
		}
		for j := range v {
			if v[j] != ex.Targets[j] {
				t.Errorf("example %d: vector %v, want %v", i, v, ex.Targets)
			}
		}
	}
	// Maximize and extract from a novel layout.
	maxed, err := extract.MaximizeTuple(tp)
	if err != nil {
		t.Fatal(err)
	}
	novel := e.word(t, "TABLE TR TD A /A /TD /TR TR TD H1 /H1 FORM INPUT INPUT /FORM /TD /TR /TABLE")
	v, ok, err := maxed.Extract(novel)
	if err != nil || !ok {
		t.Fatalf("novel extract: %v %v", ok, err)
	}
	if v[0] != 12 || v[1] != 13 {
		t.Errorf("novel vector = %v, want [12 13]", v)
	}
}

func TestInduceTupleErrors(t *testing.T) {
	e := newEnv()
	if _, err := InduceTuple(nil, e.sigma, machine.Options{}); !errors.Is(err, ErrNoExamples) {
		t.Errorf("empty: %v", err)
	}
	// Mismatched arity.
	ex1 := e.tupleExample(t, "FORM INPUT INPUT", 1, 2)
	ex2 := e.tupleExample(t, "FORM INPUT INPUT", 1)
	if _, err := InduceTuple([]TupleExample{ex1, ex2}, e.sigma, machine.Options{}); !errors.Is(err, ErrMixedTargets) {
		t.Errorf("arity: %v", err)
	}
	// Mismatched mark symbols.
	ex3 := e.tupleExample(t, "FORM INPUT /FORM", 0, 1) // marks FORM, INPUT
	ex4 := e.tupleExample(t, "FORM INPUT /FORM", 1, 2) // marks INPUT, /FORM
	if _, err := InduceTuple([]TupleExample{ex3, ex4}, e.sigma, machine.Options{}); !errors.Is(err, ErrMixedTargets) {
		t.Errorf("marks: %v", err)
	}
	// Contradictory examples.
	ex5 := e.tupleExample(t, "INPUT INPUT INPUT", 0, 1)
	ex6 := e.tupleExample(t, "INPUT INPUT INPUT", 1, 2)
	if _, err := InduceTuple([]TupleExample{ex5, ex6}, e.sigma, machine.Options{}); !errors.Is(err, ErrAmbiguousExamples) {
		t.Errorf("contradictory: %v", err)
	}
}

func TestInduceTupleSingleExample(t *testing.T) {
	e := newEnv()
	ex := e.tupleExample(t, "P FORM INPUT INPUT /FORM", 2, 3)
	tp, err := InduceTuple([]TupleExample{ex}, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := tp.Extract(ex.Doc)
	if err != nil || !ok || v[0] != 2 || v[1] != 3 {
		t.Errorf("vector = %v (%v, %v)", v, ok, err)
	}
}
