package codec

import (
	"errors"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), make([]byte, 4096)}
	for _, p := range payloads {
		blob := Seal("TEST", 3, p)
		got, err := Open("TEST", 3, blob)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		if len(got) != len(p) {
			t.Fatalf("payload %d bytes, want %d", len(got), len(p))
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	blob := Seal("TEST", 1, []byte("payload bytes"))
	cases := map[string][]byte{
		"empty":     {},
		"truncated": blob[:len(blob)-1],
		"trailing":  append(append([]byte(nil), blob...), 0),
		"magic":     append([]byte("XXXX"), blob[4:]...),
	}
	for name, b := range cases {
		if _, err := Open("TEST", 1, b); !errors.Is(err, ErrMalformedInput) {
			t.Errorf("%s: err = %v, want ErrMalformedInput", name, err)
		}
	}
	// Every single-bit flip anywhere in the frame must be rejected.
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 1
		if _, err := Open("TEST", 1, mut); err == nil {
			t.Errorf("bit flip at byte %d accepted", i)
		}
	}
}

func TestOpenVersionMismatch(t *testing.T) {
	blob := Seal("TEST", 1, []byte("x"))
	_, err := Open("TEST", 2, blob)
	if !errors.Is(err, ErrVersionMismatch) || !errors.Is(err, ErrMalformedInput) {
		t.Fatalf("err = %v, want ErrVersionMismatch wrapping ErrMalformedInput", err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var w Writer
	w.Uint(0)
	w.Uint(1 << 40)
	w.Int(-12345)
	w.String("αβγ tokens")
	w.Bytes2([]byte{1, 2, 3})
	w.Bools([]bool{true, false, true, true, false, false, false, true, true})
	w.Ints([]int{-1, 0, 7, 1 << 20})

	r := NewReader(w.Bytes())
	if got := r.Uint(); got != 0 {
		t.Errorf("Uint = %d", got)
	}
	if got := r.Uint(); got != 1<<40 {
		t.Errorf("Uint = %d", got)
	}
	if got := r.Int(); got != -12345 {
		t.Errorf("Int = %d", got)
	}
	if got := r.String(); got != "αβγ tokens" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes2(); len(got) != 3 || got[2] != 3 {
		t.Errorf("Bytes2 = %v", got)
	}
	bs := r.Bools()
	want := []bool{true, false, true, true, false, false, false, true, true}
	if len(bs) != len(want) {
		t.Fatalf("Bools len = %d", len(bs))
	}
	for i := range bs {
		if bs[i] != want[i] {
			t.Errorf("Bools[%d] = %v", i, bs[i])
		}
	}
	is := r.Ints()
	if len(is) != 4 || is[0] != -1 || is[3] != 1<<20 {
		t.Errorf("Ints = %v", is)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderPoisonsOnOverrun(t *testing.T) {
	var w Writer
	w.Uint(1 << 30) // implausible string length prefix with no body
	r := NewReader(w.Bytes())
	if s := r.String(); s != "" {
		t.Errorf("String = %q, want empty", s)
	}
	if !errors.Is(r.Err(), ErrMalformedInput) {
		t.Fatalf("Err = %v", r.Err())
	}
	// Later reads stay poisoned and return zero values, never panic.
	if r.Uint() != 0 || r.Int() != 0 || r.Bools() != nil || r.Ints() != nil {
		t.Error("poisoned reader returned non-zero values")
	}
	if errors.Is(r.Done(), nil) {
		t.Error("Done after poison must fail")
	}
}

func TestReaderRejectsHugePrefixes(t *testing.T) {
	for _, build := range []func(w *Writer){
		func(w *Writer) { w.Uint(1 << 50) }, // Len overflow via Bools
	} {
		var w Writer
		build(&w)
		r := NewReader(w.Bytes())
		if r.Bools() != nil || r.Err() == nil {
			t.Error("huge bitset prefix accepted")
		}
	}
	var w Writer
	w.Uint(1 << 20) // 1M ints claimed, zero bytes present
	r := NewReader(w.Bytes())
	if r.Ints() != nil || r.Err() == nil {
		t.Error("huge int-slice prefix accepted")
	}
}

func TestSniff(t *testing.T) {
	blob := Seal("RXCL", 7, []byte("op"))
	magic, version, ok := Sniff(blob)
	if !ok || magic != "RXCL" || version != 7 {
		t.Fatalf("Sniff = %q %d %v, want RXCL 7 true", magic, version, ok)
	}
	// Sniffing does not verify: a corrupt frame still sniffs, Open rejects it.
	blob[len(blob)-1] ^= 0xff
	if _, _, ok := Sniff(blob); !ok {
		t.Fatal("corrupt frame must still sniff")
	}
	if _, err := Open("RXCL", 7, blob); !errors.Is(err, ErrMalformedInput) {
		t.Fatalf("Open on corrupt frame = %v, want ErrMalformedInput", err)
	}
	if _, _, ok := Sniff([]byte("RXC")); ok {
		t.Fatal("short blob must not sniff")
	}
}
