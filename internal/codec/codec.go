// Package codec is the binary persistence substrate for compiled artifacts:
// a small framed format — 4-byte magic, a format version, a varint payload
// length, the payload, and a SHA-256 integrity checksum — plus bounds-checked
// varint readers that turn every malformed input into an error instead of a
// panic or an unbounded allocation.
//
// The framing carries the corruption policy of the disk cache tier: a blob
// whose magic, version, length or checksum does not match is rejected with
// an error wrapping ErrMalformedInput, and the caller (extract.DiskCache)
// discards it and recompiles. The checksum defends against torn writes and
// bit rot, not against adversaries — an attacker with write access to the
// cache directory can forge any frame.
package codec

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrMalformedInput is the sentinel every decode failure wraps: truncated
// frames, wrong magic, checksum mismatches, out-of-range indices and
// implausible lengths all classify under it via errors.Is.
var ErrMalformedInput = errors.New("codec: malformed input")

// ErrVersionMismatch classifies frames whose magic matched but whose format
// version is not the one the running binary writes. It wraps
// ErrMalformedInput, so callers that only distinguish "usable or not" need a
// single errors.Is; the disk cache counts stale-version discards separately.
var ErrVersionMismatch = fmt.Errorf("%w: format version mismatch", ErrMalformedInput)

// maxLen bounds every length prefix a decoder will honor. A corrupted varint
// must not turn into a multi-gigabyte allocation; no legitimate artifact in
// this system approaches this bound.
const maxLen = 1 << 28

const checksumSize = sha256.Size

// Seal frames a payload: magic (exactly 4 bytes), one version byte, a varint
// payload length, the payload, and the SHA-256 of the payload. Seal panics on
// a magic of the wrong length — that is a programming error, not input.
func Seal(magic string, version byte, payload []byte) []byte {
	if len(magic) != 4 {
		panic("codec: magic must be 4 bytes")
	}
	var out bytes.Buffer
	out.Grow(len(magic) + 1 + binary.MaxVarintLen64 + len(payload) + checksumSize)
	out.WriteString(magic)
	out.WriteByte(version)
	var lenBuf [binary.MaxVarintLen64]byte
	out.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(payload)))])
	out.Write(payload)
	sum := sha256.Sum256(payload)
	out.Write(sum[:])
	return out.Bytes()
}

// Open verifies a frame produced by Seal and returns its payload. The whole
// blob must be consumed exactly — trailing bytes are malformed. Every failure
// wraps ErrMalformedInput; a correct frame of a different version wraps
// ErrVersionMismatch (which itself wraps ErrMalformedInput).
func Open(magic string, version byte, blob []byte) ([]byte, error) {
	if len(magic) != 4 {
		panic("codec: magic must be 4 bytes")
	}
	if len(blob) < len(magic)+1 {
		return nil, fmt.Errorf("%w: frame truncated at %d bytes", ErrMalformedInput, len(blob))
	}
	if string(blob[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q, want %q", ErrMalformedInput, blob[:4], magic)
	}
	if blob[4] != version {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrVersionMismatch, blob[4], version)
	}
	rest := blob[5:]
	n, used := binary.Uvarint(rest)
	if used <= 0 || n > maxLen {
		return nil, fmt.Errorf("%w: bad payload length", ErrMalformedInput)
	}
	rest = rest[used:]
	if uint64(len(rest)) != n+checksumSize {
		return nil, fmt.Errorf("%w: frame is %d bytes, want %d", ErrMalformedInput, len(rest), n+checksumSize)
	}
	payload := rest[:n]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], rest[n:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrMalformedInput)
	}
	return payload, nil
}

// Sniff reports the magic and version of a blob that is at least long enough
// to carry a frame header, without verifying the frame. It lets endpoints
// that accept framed bodies over the wire distinguish "this is not one of our
// frames at all" (reject as an unsupported media type) from "this is our
// frame but it is corrupt" (Open's checksum or length verification failed).
func Sniff(blob []byte) (magic string, version byte, ok bool) {
	if len(blob) < 5 {
		return "", 0, false
	}
	return string(blob[:4]), blob[4], true
}

// NextFrame splits the first Seal-framed blob off a spool of concatenated
// frames, returning the whole frame (header through checksum, ready for
// Open) and the remaining bytes. It reads only the header — magic length,
// version byte, payload-length varint — so a spool can interleave frames of
// different magics and format versions; verification stays Open's job. A
// spool whose head is not a plausible frame (truncated header, implausible
// length, fewer bytes than the header promises) fails with
// ErrMalformedInput: replay must stop at the first torn record rather than
// resynchronize on attacker-chosen bytes.
func NextFrame(spool []byte) (frame, rest []byte, err error) {
	if len(spool) < 5 {
		return nil, nil, fmt.Errorf("%w: spool head truncated at %d bytes", ErrMalformedInput, len(spool))
	}
	n, used := binary.Uvarint(spool[5:])
	if used <= 0 || n > maxLen {
		return nil, nil, fmt.Errorf("%w: bad payload length in spool head", ErrMalformedInput)
	}
	total := 5 + used + int(n) + checksumSize
	if len(spool) < total {
		return nil, nil, fmt.Errorf("%w: spool frame is %d bytes, header promises %d", ErrMalformedInput, len(spool), total)
	}
	return spool[:total], spool[total:], nil
}

// Writer accumulates a payload as varints, strings and bitsets. The zero
// value is ready to use; Bytes returns the accumulated payload for Seal.
type Writer struct {
	buf bytes.Buffer
}

// Bytes returns the payload written so far.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// Uint writes an unsigned varint.
func (w *Writer) Uint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	w.buf.Write(b[:binary.PutUvarint(b[:], v)])
}

// Int writes a signed varint (zigzag-coded by encoding/binary).
func (w *Writer) Int(v int64) {
	var b [binary.MaxVarintLen64]byte
	w.buf.Write(b[:binary.PutVarint(b[:], v)])
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.buf.WriteString(s)
}

// Bytes2 writes a length-prefixed byte slice (nested frames, sub-blobs).
func (w *Writer) Bytes2(b []byte) {
	w.Uint(uint64(len(b)))
	w.buf.Write(b)
}

// Bools writes a length-prefixed bitset.
func (w *Writer) Bools(bs []bool) {
	w.Uint(uint64(len(bs)))
	packed := make([]byte, (len(bs)+7)/8)
	for i, v := range bs {
		if v {
			packed[i/8] |= 1 << (i % 8)
		}
	}
	w.buf.Write(packed)
}

// Ints writes a length-prefixed slice of signed varints.
func (w *Writer) Ints(vs []int) {
	w.Uint(uint64(len(vs)))
	for _, v := range vs {
		w.Int(int64(v))
	}
}

// Reader consumes a payload written by Writer. Every read is bounds-checked;
// the first failure poisons the reader and every later read reports it, so
// decoders can read a whole structure and check Err once.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a reader over payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Done reports an error unless the payload was consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformedInput, len(r.buf))
	}
	return nil
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrMalformedInput}, args...)...)
	}
}

// Uint reads an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Int reads a signed varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// Len reads a length prefix, additionally bounded by maxLen.
func (r *Reader) Len() int {
	v := r.Uint()
	if r.err == nil && (v > maxLen || v > math.MaxInt32) {
		r.fail("implausible length %d", v)
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil {
		return ""
	}
	if n > len(r.buf) {
		r.fail("string of %d bytes overruns payload", n)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

// Bytes2 reads a length-prefixed byte slice (a copy).
func (r *Reader) Bytes2() []byte {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	if n > len(r.buf) {
		r.fail("blob of %d bytes overruns payload", n)
		return nil
	}
	out := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return out
}

// Bools reads a length-prefixed bitset.
func (r *Reader) Bools() []bool {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	packed := (n + 7) / 8
	if packed > len(r.buf) {
		r.fail("bitset of %d bits overruns payload", n)
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.buf[i/8]&(1<<(i%8)) != 0
	}
	r.buf = r.buf[packed:]
	return out
}

// Ints reads a length-prefixed slice of signed varints.
func (r *Reader) Ints() []int {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	// Each varint is at least one byte; reject lengths the remaining payload
	// cannot possibly satisfy before allocating.
	if n > len(r.buf) {
		r.fail("int slice of %d elements overruns payload", n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.Int())
	}
	if r.err != nil {
		return nil
	}
	return out
}
