package wrapper

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"resilex/internal/obs"
)

// chunkReader yields at most chunk bytes per Read, forcing constructs to
// straddle boundaries.
type chunkReader struct {
	data  []byte
	chunk int
}

func (r *chunkReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.chunk
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func trainFig1(t *testing.T) *Wrapper {
	t.Helper()
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestStreamMatchesExtract: on every Figure 1 page (trained and novel) and
// at every chunk granularity, the streaming path must return exactly the
// region the materialized Extract path does.
func TestStreamMatchesExtract(t *testing.T) {
	w := trainFig1(t)
	se, err := w.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for _, page := range []string{fig1Top, fig1Bottom, fig1Novel} {
		want, err := w.Extract(page)
		if err != nil {
			t.Fatalf("materialized Extract failed: %v", err)
		}
		for _, chunk := range []int{1, 3, 7, 64, 1 << 20} {
			got, err := se.ExtractReader(context.Background(), &chunkReader{data: []byte(page), chunk: chunk})
			if err != nil {
				t.Fatalf("chunk %d: %v", chunk, err)
			}
			if got != want {
				t.Fatalf("chunk %d: stream %+v, materialized %+v", chunk, got, want)
			}
		}
	}
}

// TestStreamRejectsLikeExtract: pages the wrapper does not parse fail with
// ErrNotExtracted on both paths — including pages with never-seen tags,
// which streaming resolves to out-of-Σ None symbols instead of interning.
func TestStreamRejectsLikeExtract(t *testing.T) {
	w := trainFig1(t)
	se, err := w.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for _, page := range []string{
		"<html><body>no form here</body></html>",
		"<BLINK>" + fig1Top, // out-of-Σ prefix
		"",
	} {
		_, werr := w.Extract(page)
		_, serr := se.ExtractReader(context.Background(), strings.NewReader(page))
		if !errors.Is(werr, ErrNotExtracted) || !errors.Is(serr, ErrNotExtracted) {
			t.Fatalf("page %.30q: materialized err %v, stream err %v", page, werr, serr)
		}
	}
}

// TestStreamLargePageConstantState: a multi-megabyte page made of repeated
// filler rows must extract correctly while the capture arena stays bounded —
// the O(1)-beyond-match-region claim at the wrapper level.
func TestStreamLargePageConstantState(t *testing.T) {
	w := trainFig1(t)
	se, err := w.Stream()
	if err != nil {
		t.Fatal(err)
	}
	// Pad the real trained page with filler rows (tags all within Σ) before
	// its form row, keeping a page the expression still parses.
	formAt := strings.Index(fig1Bottom, "<tr><td><form")
	if formAt < 0 {
		t.Fatal("fig1Bottom lost its form row")
	}
	var b strings.Builder
	b.WriteString(fig1Bottom[:formAt])
	for i := 0; i < 25000; i++ {
		b.WriteString("<tr><td><a href=\"cust.html\">filler row</a></td></tr>\n")
	}
	b.WriteString(fig1Bottom[formAt:])
	page := b.String()
	if len(page) < 1<<20 {
		t.Fatalf("test page only %d bytes", len(page))
	}
	want, err := w.Extract(page)
	if err != nil {
		t.Fatal(err)
	}
	got, err := se.ExtractReader(context.Background(), strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stream %+v, materialized %+v", got, want)
	}
	// The pooled session retains buffers proportional to tokens/candidates
	// in flight, not to the page: its capture arena must be tiny.
	s := se.get()
	if cap(s.src) > 1<<16 {
		t.Errorf("capture arena grew to %d bytes on a %d-byte page", cap(s.src), len(page))
	}
	se.put(s)
}

// TestStreamZeroAllocWarm: the warm streaming serve path — pooled session,
// registered metrics — performs zero allocations per extraction.
func TestStreamZeroAllocWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the warm path")
	}
	w := trainFig1(t)
	se, err := w.Stream()
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.NewContext(context.Background(), obs.New())
	page := []byte(fig1Bottom)
	rd := bytes.NewReader(page)
	sink := 0
	extract := func(sr StreamRegion) error {
		sink += sr.TokenIndex
		return nil
	}
	for i := 0; i < 4; i++ { // warm pool, counters, histogram buckets
		rd.Reset(page)
		if err := se.ExtractReaderTo(ctx, rd, extract); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(page)
		if err := se.ExtractReaderTo(ctx, rd, extract); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm streaming extraction allocated %.1f times per page, want 0", allocs)
	}
}

// TestStreamMetrics: one extraction over a chunked reader bumps the
// extract_stream_* counter family.
func TestStreamMetrics(t *testing.T) {
	w := trainFig1(t)
	se, err := w.Stream()
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	ctx := obs.NewContext(context.Background(), o)
	if _, err := se.ExtractReader(ctx, &chunkReader{data: []byte(fig1Top), chunk: 5}); err != nil {
		t.Fatal(err)
	}
	if v := o.Counter("extract_stream_runs_total").Value(); v != 1 {
		t.Errorf("runs = %d, want 1", v)
	}
	if v := o.Counter("extract_stream_chunks_total").Value(); v < 10 {
		t.Errorf("chunks = %d, want many for a 5-byte chunk reader", v)
	}
	if v := o.Counter("extract_stream_carry_total").Value(); v < 1 {
		t.Errorf("carries = %d, want ≥ 1 with 5-byte chunks", v)
	}
	if v := o.Counter("extract_stream_bytes_total").Value(); v != int64(len(fig1Top)) {
		t.Errorf("bytes = %d, want %d", v, len(fig1Top))
	}
	if v := o.Counter("extract_stream_pool_misses_total").Value(); v != 1 {
		t.Errorf("pool misses = %d, want 1", v)
	}
}

// TestStreamContextCancel: a canceled context aborts between chunks.
func TestStreamContextCancel(t *testing.T) {
	w := trainFig1(t)
	se, err := w.Stream()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := se.ExtractReader(ctx, strings.NewReader(fig1Top)); err == nil {
		t.Fatal("extraction succeeded under a canceled context")
	}
}
