//go:build race

package wrapper

// raceEnabled skips the AllocsPerRun assertions under the race detector,
// whose instrumentation allocates on paths that are allocation-free in
// normal builds.
const raceEnabled = true
