package wrapper

import (
	"context"
	"errors"
	"testing"

	"resilex/internal/machine"
	"resilex/internal/obs"
)

// fuzzOptions caps construction work so the fuzzer spends its time on the
// decode/reparse surface, not on giant automata. The context carries a live
// observer so the whole fuzz surface runs with observation enabled — the
// instrumentation itself is under fuzz.
var fuzzOptions = machine.Options{
	MaxStates: 512,
	Ctx:       obs.NewContext(context.Background(), obs.New()),
}

// FuzzLoadWrapper drives the persisted-wrapper load path with arbitrary
// bytes: it must never panic, and every failure must wrap a typed sentinel.
func FuzzLoadWrapper(f *testing.F) {
	w, err := Train([]Sample{
		{HTML: `<h1>S</h1><form><input type="image"><input type="text" data-target></form>`, Target: TargetMarker()},
	}, Config{})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := w.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{`))
	f.Add([]byte(`{"version":2,"expr":"","sigma":[]}`))
	f.Add([]byte(`{"version":1,"expr":"<INPUT>","sigma":["INPUT"]}`))
	f.Add([]byte(`{"version":1,"expr":"[^ A]* <A","sigma":["A"]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := Load(data, fuzzOptions)
		if err != nil {
			if !errors.Is(err, ErrMalformedInput) && !errors.Is(err, machine.ErrBudget) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		// A wrapper that loads must extract (or cleanly refuse) a page.
		if _, err := w.Extract(`<form><input type="text"></form>`); err != nil &&
			!errors.Is(err, ErrNotExtracted) {
			t.Fatalf("untyped extract error: %v", err)
		}
	})
}

// FuzzLoadFleet drives the persisted-fleet load path with arbitrary bytes:
// never a panic, only typed errors.
func FuzzLoadFleet(f *testing.F) {
	w, err := Train([]Sample{
		{HTML: `<h1>S</h1><form><input type="image"><input type="text" data-target></form>`, Target: TargetMarker()},
	}, Config{})
	if err != nil {
		f.Fatal(err)
	}
	fl := NewFleet()
	fl.Add("shop", w)
	valid, err := fl.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{`))
	f.Add([]byte(`{"version":1,"kind":"fleet","wrappers":{}}`))
	f.Add([]byte(`{"version":1,"kind":"fleet","wrappers":{"x":{}}}`))
	f.Add([]byte(`{"version":1,"kind":"tuple","wrappers":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := LoadFleet(data, fuzzOptions)
		if err != nil {
			if !errors.Is(err, ErrMalformedInput) && !errors.Is(err, machine.ErrBudget) {
				t.Fatalf("untyped fleet load error: %v", err)
			}
			return
		}
		fl.Probe(`<form><input type="text"></form>`)
	})
}
