package wrapper

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// maxBreakerHistory caps the per-site breaker transition log; older
// transitions are dropped so a long-running supervisor stays bounded.
const maxBreakerHistory = 64

// BreakerTransition is one breaker state change with its timestamp
// (SupervisorConfig.Now, so deterministic under an injected clock). Seq is a
// supervisor-wide monotone sequence number assigned under the supervisor's
// lock: it totally orders transitions across sites even when a coarse or
// injected clock hands several of them the same timestamp.
type BreakerTransition struct {
	From BreakerState `json:"from"`
	To   BreakerState `json:"to"`
	At   time.Time    `json:"at"`
	Seq  uint64       `json:"seq,omitempty"`
}

// String renders the transition as "closed→open@<RFC3339>".
func (t BreakerTransition) String() string {
	return fmt.Sprintf("%s→%s@%s", t.From, t.To, t.At.Format(time.RFC3339))
}

// SiteTelemetry is the full observability snapshot of one site: the health
// record plus per-rung counters, refresh retries, and the breaker
// transition history (oldest first).
type SiteTelemetry struct {
	SiteHealth
	// RungEntries / RungServes count, per rung name ("wrapper", "refresh",
	// "probe", "miss"), how often the ladder entered and served from that
	// rung. Zero-count rungs are omitted.
	RungEntries    map[string]uint64   `json:"rung_entries,omitempty"`
	RungServes     map[string]uint64   `json:"rung_serves,omitempty"`
	RefreshRetries uint64              `json:"refresh_retries,omitempty"`
	Transitions    []BreakerTransition `json:"transitions,omitempty"`
}

// String renders the site telemetry on one line for reports.
func (t SiteTelemetry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: breaker=%s", t.Key, t.Breaker)
	for _, r := range []Rung{RungWrapper, RungRefresh, RungProbe, RungMiss} {
		name := r.String()
		if e := t.RungEntries[name]; e > 0 {
			fmt.Fprintf(&b, " %s=%d/%d", name, t.RungServes[name], e)
		}
	}
	if t.RefreshRetries > 0 {
		fmt.Fprintf(&b, " retries=%d", t.RefreshRetries)
	}
	if len(t.Transitions) > 0 {
		parts := make([]string, len(t.Transitions))
		for i, tr := range t.Transitions {
			parts[i] = tr.String()
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(parts, ", "))
	}
	return b.String()
}

// Telemetry maps site key → telemetry snapshot.
type Telemetry map[string]SiteTelemetry

// String renders every site's telemetry, one line per site, sorted by key.
func (t Telemetry) String() string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(t[k].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Telemetry returns the observability snapshot for every site the
// supervisor has seen.
func (s *Supervisor) Telemetry() Telemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(Telemetry, len(s.sites))
	for key, st := range s.sites {
		t := SiteTelemetry{
			SiteHealth:     s.snapshotLocked(key, st),
			RungEntries:    map[string]uint64{},
			RungServes:     map[string]uint64{},
			RefreshRetries: st.retries,
			Transitions:    append([]BreakerTransition(nil), st.history...),
		}
		for r := RungWrapper; r <= RungMiss; r++ {
			if n := st.rungEntries[r]; n > 0 {
				t.RungEntries[r.String()] = n
			}
			if n := st.rungServes[r]; n > 0 {
				t.RungServes[r.String()] = n
			}
		}
		out[key] = t
	}
	return out
}
