package wrapper

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"resilex/internal/faultinject"
	"resilex/internal/obs"
)

// counterSeq extracts the supervisor_* counters from an observer registry,
// so tests can compare the exact set the ladder emitted.
func counterSeq(o *obs.Observer) map[string]int64 {
	out := map[string]int64{}
	for name, v := range o.Metrics.Snapshot().Counters {
		if strings.HasPrefix(name, "supervisor_") {
			out[name] = v
		}
	}
	return out
}

func wantTelemetry(t *testing.T, got SiteTelemetry, entries, serves map[string]uint64, transitions int) {
	t.Helper()
	if !reflect.DeepEqual(got.RungEntries, entries) {
		t.Errorf("rung entries = %v, want %v", got.RungEntries, entries)
	}
	if !reflect.DeepEqual(got.RungServes, serves) {
		t.Errorf("rung serves = %v, want %v", got.RungServes, serves)
	}
	if len(got.Transitions) != transitions {
		t.Errorf("transitions = %v, want %d of them", got.Transitions, transitions)
	}
}

// TestTelemetryRungWrapper: a clean rung-1 serve is exactly one entry, one
// serve, no breaker movement.
func TestTelemetryRungWrapper(t *testing.T) {
	o := obs.New()
	s, _ := supervisorFixture(t, SupervisorConfig{Observer: o})
	if _, err := s.Extract(context.Background(), "vs", fig1Novel); err != nil {
		t.Fatal(err)
	}
	wantTelemetry(t, s.Telemetry()["vs"],
		map[string]uint64{"wrapper": 1},
		map[string]uint64{"wrapper": 1}, 0)
	want := map[string]int64{
		`supervisor_rung_entries_total{site="vs",rung="wrapper"}`: 1,
		`supervisor_rung_serves_total{site="vs",rung="wrapper"}`:  1,
	}
	if got := counterSeq(o); !reflect.DeepEqual(got, want) {
		t.Errorf("counters = %v, want %v", got, want)
	}
	// The ladder span recorded which rung served.
	spans := o.Trace.Snapshot()
	last := spans[len(spans)-1]
	if last.Name != "supervisor.extract" {
		t.Fatalf("last span = %q", last.Name)
	}
	if len(last.Attrs) != 1 || last.Attrs[0] != (obs.Attr{Key: "rung", Value: int64(RungWrapper)}) {
		t.Errorf("span attrs = %v", last.Attrs)
	}
}

// TestTelemetryRungRefresh: a drift page enters rungs 1 and 2 and is served
// by the refresh.
func TestTelemetryRungRefresh(t *testing.T) {
	o := obs.New()
	s, _ := supervisorFixture(t, SupervisorConfig{Observer: o, Marker: markerByAttr})
	out, err := s.Extract(context.Background(), "vs", fig1Future)
	if err != nil || out.Rung != RungRefresh {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
	wantTelemetry(t, s.Telemetry()["vs"],
		map[string]uint64{"wrapper": 1, "refresh": 1},
		map[string]uint64{"refresh": 1}, 0)
	want := map[string]int64{
		`supervisor_rung_entries_total{site="vs",rung="wrapper"}`: 1,
		`supervisor_rung_entries_total{site="vs",rung="refresh"}`: 1,
		`supervisor_rung_serves_total{site="vs",rung="refresh"}`:  1,
	}
	if got := counterSeq(o); !reflect.DeepEqual(got, want) {
		t.Errorf("counters = %v, want %v", got, want)
	}
}

// TestTelemetryRungProbe: an unknown key skips rung 1; the foreign claim is
// one probe entry and one probe serve on the requested key's record.
func TestTelemetryRungProbe(t *testing.T) {
	o := obs.New()
	s, _ := supervisorFixture(t, SupervisorConfig{Observer: o})
	out, err := s.Extract(context.Background(), "ghost", fig1Novel)
	if err != nil || out.Rung != RungProbe || out.Key != "vs" {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
	wantTelemetry(t, s.Telemetry()["ghost"],
		map[string]uint64{"probe": 1},
		map[string]uint64{"probe": 1}, 0)
	want := map[string]int64{
		`supervisor_rung_entries_total{site="ghost",rung="probe"}`: 1,
		`supervisor_rung_serves_total{site="ghost",rung="probe"}`:  1,
	}
	if got := counterSeq(o); !reflect.DeepEqual(got, want) {
		t.Errorf("counters = %v, want %v", got, want)
	}
}

// TestTelemetryRungMiss: stripping the training marker from a drift page
// forces the ladder through every rung to a miss — the refresh rung is
// entered (the failure is a refresh-eligible no-match) but cannot mark the
// page, so nothing serves.
func TestTelemetryRungMiss(t *testing.T) {
	o := obs.New()
	s, _ := supervisorFixture(t, SupervisorConfig{Observer: o, Marker: markerByAttr})
	page := faultinject.StripMarker(fig1Future)
	_, err := s.Extract(context.Background(), "vs", page)
	var miss *MissReport
	if !errors.As(err, &miss) {
		t.Fatalf("err = %v, want *MissReport", err)
	}
	wantTelemetry(t, s.Telemetry()["vs"],
		map[string]uint64{"wrapper": 1, "refresh": 1, "probe": 1, "miss": 1},
		map[string]uint64{}, 0)
	want := map[string]int64{
		`supervisor_rung_entries_total{site="vs",rung="wrapper"}`: 1,
		`supervisor_rung_entries_total{site="vs",rung="refresh"}`: 1,
		`supervisor_rung_entries_total{site="vs",rung="probe"}`:   1,
		`supervisor_rung_entries_total{site="vs",rung="miss"}`:    1,
	}
	if got := counterSeq(o); !reflect.DeepEqual(got, want) {
		t.Errorf("counters = %v, want %v", got, want)
	}
}

// TestTelemetryBreakerTransitions drives a full breaker lifecycle with
// garbled pages under a deterministic clock and asserts the exact transition
// history — states and timestamps — plus the transition counters and the
// MissReport rendering.
func TestTelemetryBreakerTransitions(t *testing.T) {
	o := obs.New()
	s, clock := supervisorFixture(t, SupervisorConfig{
		Observer:         o,
		BreakerThreshold: 2,
		Cooldown:         time.Minute,
	})
	ctx := context.Background()
	t0 := clock.Now()
	bad := faultinject.GarbleTags(fig1Novel, 1)

	// Two failures open the breaker at t0.
	for i := 0; i < 2; i++ {
		if _, err := s.Extract(ctx, "vs", bad); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	// Quarantined miss: the report carries the history so far.
	_, err := s.Extract(ctx, "vs", bad)
	var miss *MissReport
	if !errors.As(err, &miss) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined err = %v", err)
	}
	if len(miss.Transitions) != 1 || miss.Transitions[0].From != BreakerClosed || miss.Transitions[0].To != BreakerOpen {
		t.Fatalf("miss transitions = %v", miss.Transitions)
	}
	if !strings.Contains(miss.String(), "breaker history: closed→open@") {
		t.Errorf("MissReport.String() lacks history: %s", miss.String())
	}
	if strings.Contains(miss.Error(), "breaker history") {
		t.Errorf("Error() should stay compact: %s", miss.Error())
	}

	// Cooldown elapses at t1; the next good page runs the half-open trial
	// and closes the breaker.
	clock.Advance(2 * time.Minute)
	t1 := clock.Now()
	if out, err := s.Extract(ctx, "vs", fig1Novel); err != nil || out.Rung != RungWrapper {
		t.Fatalf("trial: %+v, %v", out, err)
	}

	wantHist := []BreakerTransition{
		{From: BreakerClosed, To: BreakerOpen, At: t0, Seq: 1},
		{From: BreakerOpen, To: BreakerHalfOpen, At: t1, Seq: 2},
		{From: BreakerHalfOpen, To: BreakerClosed, At: t1, Seq: 3},
	}
	got := s.Telemetry()["vs"].Transitions
	if !reflect.DeepEqual(got, wantHist) {
		t.Errorf("history = %v, want %v", got, wantHist)
	}
	snap := counterSeq(o)
	for _, name := range []string{
		`supervisor_breaker_transitions_total{site="vs",from="closed",to="open"}`,
		`supervisor_breaker_transitions_total{site="vs",from="open",to="half-open"}`,
		`supervisor_breaker_transitions_total{site="vs",from="half-open",to="closed"}`,
	} {
		if snap[name] != 1 {
			t.Errorf("counter %s = %d, want 1", name, snap[name])
		}
	}
}

// TestTelemetryRefreshRetries: retryable refresh failures count backoff
// retries in both the site record and the registry.
func TestTelemetryRefreshRetries(t *testing.T) {
	o := obs.New()
	s, _ := supervisorFixture(t, SupervisorConfig{
		Observer:        o,
		Marker:          markerByAttr,
		RefreshAttempts: 3,
	})
	// The marked P element mismatches the trained symbol — retried each time.
	s.Extract(context.Background(), "vs", `<p data-target></p>`)
	if got := s.Telemetry()["vs"].RefreshRetries; got != 2 {
		t.Errorf("refresh retries = %d, want 2", got)
	}
	if got := counterSeq(o)[`supervisor_refresh_retries_total{site="vs"}`]; got != 2 {
		t.Errorf("retry counter = %d, want 2", got)
	}
}

// TestTelemetryEventLog: the structured logger sees the rung and breaker
// events in ladder order.
func TestTelemetryEventLog(t *testing.T) {
	var events []string
	o := &obs.Observer{Log: obs.FuncLogger(func(name string, kv ...any) {
		events = append(events, name)
	})}
	s, _ := supervisorFixture(t, SupervisorConfig{Observer: o, BreakerThreshold: 1})
	s.Extract(context.Background(), "vs", faultinject.GarbleTags(fig1Novel, 1))
	want := []string{
		"supervisor.rung",    // wrapper entry
		"supervisor.breaker", // closed→open at threshold 1
		"supervisor.rung",    // probe entry
		"supervisor.rung",    // miss entry
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("events = %v, want %v", events, want)
	}
}

// TestTelemetryObserverFromContext: a context-carried observer (the facade's
// WithObserver path) receives the telemetry without any config wiring.
func TestTelemetryObserverFromContext(t *testing.T) {
	o := obs.New()
	s, _ := supervisorFixture(t, SupervisorConfig{Marker: markerByAttr})
	ctx := obs.NewContext(context.Background(), o)
	// The drift page forces a refresh — the rung that re-runs the whole
	// induce→maximize→compile pipeline, so machine-layer phases record too.
	out, err := s.Extract(ctx, "vs", fig1Future)
	if err != nil || out.Rung != RungRefresh {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
	if got := counterSeq(o)[`supervisor_rung_serves_total{site="vs",rung="refresh"}`]; got != 1 {
		t.Errorf("context observer missed the serve: %v", counterSeq(o))
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["machine_subset_states_total"] == 0 {
		t.Errorf("no subset-construction states recorded: %v", snap.Counters)
	}
	if snap.Histograms["machine_determinize_duration_us"].Count == 0 {
		t.Errorf("no machine phases recorded: %v", snap.Histograms)
	}
}
