//go:build !race

package wrapper

const raceEnabled = false
