package wrapper

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/obs"
)

// Rung identifies which rung of the degradation ladder served a request.
// The ladder is ordered from full fidelity to structured failure:
//
//	RungWrapper  the site's trained wrapper extracted directly
//	RungRefresh  the wrapper was widened with a freshly marked sample first
//	RungProbe    another site's wrapper claimed the page unambiguously
//	RungMiss     nothing extracted; the error is a *MissReport
type Rung int

// Ladder rungs, in degradation order.
const (
	RungWrapper Rung = 1 + iota
	RungRefresh
	RungProbe
	RungMiss
)

// String names the rung.
func (r Rung) String() string {
	switch r {
	case RungWrapper:
		return "wrapper"
	case RungRefresh:
		return "refresh"
	case RungProbe:
		return "probe"
	case RungMiss:
		return "miss"
	}
	return fmt.Sprintf("rung(%d)", int(r))
}

// BreakerState is the per-site circuit breaker state.
type BreakerState int

// Circuit breaker states.
const (
	// BreakerClosed: the site is healthy; requests run the full ladder.
	BreakerClosed BreakerState = iota
	// BreakerOpen: too many consecutive failures; the site's wrapper is
	// quarantined and requests fall through to the probe rung directly.
	BreakerOpen
	// BreakerHalfOpen: a probe success (or an elapsed cooldown) readmitted
	// the wrapper for one trial request; success closes the breaker,
	// failure re-opens it.
	BreakerHalfOpen
)

// String names the breaker state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// SupervisorConfig tunes the self-healing runtime. The zero value is usable:
// every field has a production-shaped default.
type SupervisorConfig struct {
	// BreakerThreshold is the number of consecutive rung-1 failures that
	// opens a site's circuit breaker. Default 3.
	BreakerThreshold int
	// Cooldown is how long an open breaker waits before readmitting the
	// wrapper for a half-open trial on time alone (a probe success
	// half-opens it earlier). Default 30s.
	Cooldown time.Duration
	// ExtractTimeout bounds each individual extraction attempt; 0 means the
	// caller's context alone bounds it.
	ExtractTimeout time.Duration
	// RefreshAttempts is how many times the refresh rung retries a
	// retryable failure before degrading further. Default 2.
	RefreshAttempts int
	// RefreshBackoff is the sleep before the i-th refresh retry, doubling
	// each attempt. Default 50ms.
	RefreshBackoff time.Duration
	// BackoffJitter spreads each refresh backoff uniformly within
	// ±BackoffJitter·backoff, so a fleet of supervisors that all hit the
	// same site redesign does not retry in lockstep. 0 selects the default
	// 0.1; negative disables jitter. Values above 1 are clamped to 1.
	BackoffJitter float64
	// Rand is the jitter source, injectable for deterministic tests: a
	// function returning a uniform float64 in [0, 1). Default math/rand.
	Rand func() float64
	// RefreshOptions, when non-zero, replaces the wrapper's own budget for
	// refresh work — the lever for bounding maintenance separately from
	// serving. The fault-injection harness uses it to starve refreshes.
	RefreshOptions machine.Options
	// Marker, when set, is the drift oracle of the refresh rung: given a
	// page the wrapper no longer parses, it marks the target element (an
	// operator queue, a weak heuristic, or data-target in tests). Returning
	// ok=false skips the refresh rung for that page.
	Marker func(html string) (Target, bool)
	// Now and Sleep are injectable for deterministic tests. Defaults:
	// time.Now and time.Sleep.
	Now   func() time.Time
	Sleep func(time.Duration)
	// Observer, when set, receives the supervisor's telemetry — rung
	// entry/serve counters, breaker transitions, refresh retries — and is
	// threaded into every extraction context so the machine and extract
	// layers record their phases into the same registry. A context already
	// carrying an observer (obs.NewContext / resilex.WithObserver) takes
	// precedence per call. nil disables observation.
	Observer *obs.Observer
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.RefreshAttempts <= 0 {
		c.RefreshAttempts = 2
	}
	if c.RefreshBackoff <= 0 {
		c.RefreshBackoff = 50 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.1
	}
	if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.BackoffJitter > 1 {
		c.BackoffJitter = 1
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// jitteredBackoff spreads d uniformly within ±jitter·d: d·(1+(2r−1)·jitter).
func jitteredBackoff(d time.Duration, jitter float64, r func() float64) time.Duration {
	if jitter <= 0 || d <= 0 {
		return d
	}
	j := time.Duration(float64(d) * (1 + (2*r()-1)*jitter))
	if j <= 0 {
		return d
	}
	return j
}

// siteState is the supervisor's per-site health record.
type siteState struct {
	breaker      BreakerState
	consecutive  int // consecutive rung-1 failures
	openedAt     time.Time
	extractions  uint64 // successful extractions, any rung
	failures     uint64 // rung-1 failures
	refreshes    uint64 // successful refresh swaps
	probeServes  uint64 // requests served by the probe rung
	misses       uint64
	lastErr      string
	lastChangeAt time.Time

	rungEntries [RungMiss + 1]uint64 // indexed by Rung; how often each rung ran
	rungServes  [RungMiss + 1]uint64 // how often each rung served the request
	retries     uint64               // refresh-rung backoff retries
	history     []BreakerTransition  // recent transitions, capped
}

// SiteHealth is the externally visible health snapshot of one site.
type SiteHealth struct {
	Key                 string
	Breaker             BreakerState
	ConsecutiveFailures int
	Extractions         uint64
	Failures            uint64
	Refreshes           uint64
	ProbeServes         uint64
	Misses              uint64
	LastError           string
	LastTransition      time.Time
}

// Result is a successful supervised extraction.
type Result struct {
	Region Region
	// Rung that served the request.
	Rung Rung
	// Key whose wrapper produced the region: the requested key for
	// RungWrapper/RungRefresh, possibly another site's for RungProbe.
	Key string
}

// MissReport is the structured bottom rung of the ladder: a typed error
// recording everything the supervisor tried. Detect with errors.As; it
// unwraps to the classified rung-1 error so errors.Is(err, ErrNoMatch) etc.
// keep working through it.
type MissReport struct {
	Key       string
	Breaker   BreakerState
	Attempted []Rung
	// Err is the classified primary failure (rung 1's error, or the
	// breaker/unknown-key condition that skipped rung 1).
	Err error
	// ProbeClaims counts how many foreign wrappers claimed the page — >1
	// means the probe rung failed on ambiguity, not absence.
	ProbeClaims int
	// Transitions is the site's recent breaker transition history (oldest
	// first, capped at maxBreakerHistory) at the moment of the miss, so a
	// logged report shows how the breaker got into its final state.
	Transitions []BreakerTransition
}

// Error renders the report.
func (m *MissReport) Error() string {
	rungs := make([]string, len(m.Attempted))
	for i, r := range m.Attempted {
		rungs[i] = r.String()
	}
	return fmt.Sprintf("wrapper: miss for %q (breaker %s, tried %s, %d probe claims): %v",
		m.Key, m.Breaker, strings.Join(rungs, "→"), m.ProbeClaims, m.Err)
}

// String renders the report with the breaker transition history appended,
// for diagnostics richer than the error message.
func (m *MissReport) String() string {
	msg := m.Error()
	if len(m.Transitions) == 0 {
		return msg
	}
	parts := make([]string, len(m.Transitions))
	for i, t := range m.Transitions {
		parts[i] = t.String()
	}
	return msg + " [breaker history: " + strings.Join(parts, ", ") + "]"
}

// Unwrap exposes the classified primary failure.
func (m *MissReport) Unwrap() error { return m.Err }

// Supervisor is the self-healing extraction runtime layered over a Fleet.
// Every request descends a degradation ladder — trained wrapper, refresh
// with a marked sample, cross-site probe, structured miss — under a per-site
// circuit breaker, so one decayed wrapper degrades gracefully instead of
// failing every request at full cost. Safe for concurrent use.
type Supervisor struct {
	fleet *Fleet
	cfg   SupervisorConfig

	mu    sync.Mutex
	sites map[string]*siteState
	seq   uint64 // monotone breaker-transition sequence, under mu
}

// NewSupervisor wraps a fleet in a self-healing runtime.
func NewSupervisor(f *Fleet, cfg SupervisorConfig) *Supervisor {
	return &Supervisor{fleet: f, cfg: cfg.withDefaults(), sites: map[string]*siteState{}}
}

// Fleet returns the supervised fleet (live — additions are picked up).
func (s *Supervisor) Fleet() *Fleet { return s.fleet }

func (s *Supervisor) site(key string) *siteState {
	st, ok := s.sites[key]
	if !ok {
		st = &siteState{lastChangeAt: s.cfg.Now()}
		s.sites[key] = st
	}
	return st
}

// Health returns the health snapshot for one site key.
func (s *Supervisor) Health(key string) SiteHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked(key, s.site(key))
}

// HealthReport returns health for every site the supervisor has seen,
// keyed by site.
func (s *Supervisor) HealthReport() map[string]SiteHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SiteHealth, len(s.sites))
	for key, st := range s.sites {
		out[key] = s.snapshotLocked(key, st)
	}
	return out
}

func (s *Supervisor) snapshotLocked(key string, st *siteState) SiteHealth {
	return SiteHealth{
		Key:                 key,
		Breaker:             st.breaker,
		ConsecutiveFailures: st.consecutive,
		Extractions:         st.extractions,
		Failures:            st.failures,
		Refreshes:           st.refreshes,
		ProbeServes:         st.probeServes,
		Misses:              st.misses,
		LastError:           st.lastErr,
		LastTransition:      st.lastChangeAt,
	}
}

// observer resolves the telemetry sink for one call: a context-carried
// observer wins, then the configured one, else nil (inert).
func (s *Supervisor) observer(ctx context.Context) *obs.Observer {
	if o := obs.FromContext(ctx); o != nil {
		return o
	}
	return s.cfg.Observer
}

// transitionLocked moves the site's breaker to `to` (no-op when already
// there), stamping openedAt on opens, appending to the capped transition
// history, and emitting the observer counter and event. Caller holds s.mu.
func (s *Supervisor) transitionLocked(o *obs.Observer, key string, st *siteState, to BreakerState) {
	if st.breaker == to {
		return
	}
	from := st.breaker
	now := s.cfg.Now()
	st.breaker = to
	st.lastChangeAt = now
	if to == BreakerOpen {
		st.openedAt = now
	}
	s.seq++
	st.history = append(st.history, BreakerTransition{From: from, To: to, At: now, Seq: s.seq})
	if len(st.history) > maxBreakerHistory {
		st.history = st.history[len(st.history)-maxBreakerHistory:]
	}
	o.Counter(obs.WithLabels("supervisor_breaker_transitions_total",
		"site", key, "from", from.String(), "to", to.String())).Inc()
	o.Event("supervisor.breaker", "site", key, "from", from.String(), "to", to.String())
}

// noteRung counts a ladder-rung entry (served=false) or a serve for key, in
// both the per-site record and the observer registry.
func (s *Supervisor) noteRung(o *obs.Observer, key string, r Rung, served bool) {
	s.mu.Lock()
	st := s.site(key)
	kind := "entries"
	if served {
		st.rungServes[r]++
		kind = "serves"
	} else {
		st.rungEntries[r]++
	}
	s.mu.Unlock()
	o.Counter(obs.WithLabels("supervisor_rung_"+kind+"_total",
		"site", key, "rung", r.String())).Inc()
	o.Event("supervisor.rung", "site", key, "rung", r.String(), "served", served)
}

// admitLocked decides whether rung 1 may run for the site, transitioning an
// open breaker to half-open when the cooldown has elapsed.
func (s *Supervisor) admitLocked(o *obs.Observer, key string, st *siteState) bool {
	switch st.breaker {
	case BreakerClosed, BreakerHalfOpen:
		return true
	case BreakerOpen:
		if s.cfg.Now().Sub(st.openedAt) >= s.cfg.Cooldown {
			s.transitionLocked(o, key, st, BreakerHalfOpen)
			return true
		}
		return false
	}
	return true
}

// recordSuccessLocked closes the breaker and resets the failure streak.
func (s *Supervisor) recordSuccessLocked(o *obs.Observer, key string, st *siteState) {
	st.consecutive = 0
	st.extractions++
	st.lastErr = ""
	s.transitionLocked(o, key, st, BreakerClosed)
}

// recordFailureLocked counts a rung-1 failure and opens the breaker at the
// threshold (a half-open trial failure re-opens immediately).
func (s *Supervisor) recordFailureLocked(o *obs.Observer, key string, st *siteState, err error) {
	st.failures++
	st.consecutive++
	st.lastErr = err.Error()
	if st.breaker == BreakerHalfOpen ||
		(st.breaker == BreakerClosed && st.consecutive >= s.cfg.BreakerThreshold) {
		s.transitionLocked(o, key, st, BreakerOpen)
	}
}

// NotifyProbeSuccess half-opens an open breaker: evidence that the
// quarantined wrapper still works somewhere (it claimed a page during a
// probe) readmits it for one trial request. The supervisor calls this
// itself whenever a probe claim matches a quarantined site; it is exported
// for operators wiring external health probes.
func (s *Supervisor) NotifyProbeSuccess(key string) {
	s.notifyProbeSuccess(s.cfg.Observer, key)
}

func (s *Supervisor) notifyProbeSuccess(o *obs.Observer, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.site(key)
	if st.breaker == BreakerOpen {
		s.transitionLocked(o, key, st, BreakerHalfOpen)
	}
}

// Extract runs the degradation ladder for one page of a known site. On
// success the Result says which rung served. On total failure the error is
// a *MissReport wrapping the classified cause.
func (s *Supervisor) Extract(ctx context.Context, key, html string) (Result, error) {
	o := s.observer(ctx)
	if o != nil && obs.FromContext(ctx) != o {
		// Thread the configured observer into the extraction context so the
		// machine/extract layers record phases into the same registry.
		ctx = obs.NewContext(ctx, o)
	}
	ctx, sp := o.StartSpan(ctx, "supervisor.extract")
	res, err := s.runLadder(ctx, o, key, html)
	if sp != nil {
		sp.SetAttr("rung", int64(res.Rung))
		sp.End()
	}
	return res, err
}

func (s *Supervisor) runLadder(ctx context.Context, o *obs.Observer, key, html string) (Result, error) {
	w := s.fleet.Get(key)

	var attempted []Rung
	var primary error

	// Rung 1 (+2): the site's own wrapper, behind the breaker.
	if w == nil {
		primary = fmt.Errorf("%w: %q", ErrUnknownKey, key)
	} else {
		s.mu.Lock()
		st := s.site(key)
		admitted := s.admitLocked(o, key, st)
		s.mu.Unlock()

		if !admitted {
			primary = fmt.Errorf("%w: %q", ErrQuarantined, key)
		} else {
			attempted = append(attempted, RungWrapper)
			s.noteRung(o, key, RungWrapper, false)
			region, err := s.tryExtract(ctx, w, html)
			s.mu.Lock()
			st = s.site(key)
			if err == nil {
				s.recordSuccessLocked(o, key, st)
				s.mu.Unlock()
				s.noteRung(o, key, RungWrapper, true)
				return Result{Region: region, Rung: RungWrapper, Key: key}, nil
			}
			s.recordFailureLocked(o, key, st, err)
			s.mu.Unlock()
			primary = err

			// Rung 2: refresh with a freshly marked sample, when the page
			// is parseable and an oracle can mark it.
			if s.refreshEligible(html, err) {
				attempted = append(attempted, RungRefresh)
				s.noteRung(o, key, RungRefresh, false)
				if out, ok := s.tryRefresh(ctx, key, w, html, err); ok {
					s.mu.Lock()
					st = s.site(key)
					st.refreshes++
					s.recordSuccessLocked(o, key, st)
					s.mu.Unlock()
					s.noteRung(o, key, RungRefresh, true)
					return out, nil
				}
			}
		}
	}

	// Rung 3: probe the whole fleet; an unambiguous foreign claim serves
	// the request, and a claim by a quarantined site half-opens its breaker.
	attempted = append(attempted, RungProbe)
	s.noteRung(o, key, RungProbe, false)
	claims, probeErr := s.fleet.ProbeContext(ctx, html)
	// Notify in sorted key order: ranging over the claims map would
	// half-open multi-claim breakers in a different order (and, under an
	// injected clock, with different timestamps) on every run, making the
	// transition history in Telemetry() and MissReport.String()
	// nondeterministic.
	claimKeys := make([]string, 0, len(claims))
	for claimKey := range claims {
		claimKeys = append(claimKeys, claimKey)
	}
	sort.Strings(claimKeys)
	for _, claimKey := range claimKeys {
		s.notifyProbeSuccess(o, claimKey)
	}
	if len(claims) == 1 && probeErr == nil {
		claimKey := claimKeys[0]
		s.mu.Lock()
		st := s.site(key)
		st.probeServes++
		s.mu.Unlock()
		s.noteRung(o, key, RungProbe, true)
		return Result{Region: claims[claimKey], Rung: RungProbe, Key: claimKey}, nil
	}
	if probeErr != nil && primary == nil {
		primary = probeErr
	}

	// Rung 4: structured miss.
	attempted = append(attempted, RungMiss)
	s.noteRung(o, key, RungMiss, false)
	s.mu.Lock()
	st := s.site(key)
	st.misses++
	breaker := st.breaker
	transitions := append([]BreakerTransition(nil), st.history...)
	s.mu.Unlock()
	if primary == nil {
		primary = ErrNoMatch
	}
	return Result{Rung: RungMiss, Key: key}, &MissReport{
		Key: key, Breaker: breaker, Attempted: attempted,
		Err: classify(html, primary), ProbeClaims: len(claims),
		Transitions: transitions,
	}
}

// tryExtract runs one bounded extraction attempt with a recover() backstop,
// so a pipeline invariant failure surfaces as ErrInternal, not a crash.
func (s *Supervisor) tryExtract(ctx context.Context, w *Wrapper, html string) (region Region, err error) {
	if s.cfg.ExtractTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ExtractTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrInternal, r)
		}
	}()
	return w.ExtractContext(ctx, html)
}

// refreshEligible reports whether the refresh rung applies to this failure:
// the page must be parseable (some tokens) and the failure a plain no-match
// — budget, deadline and malformed-input failures degrade directly.
func (s *Supervisor) refreshEligible(html string, err error) bool {
	return s.cfg.Marker != nil && errors.Is(err, ErrNoMatch)
}

// tryRefresh attempts the refresh rung with bounded retry-and-backoff,
// swapping the widened wrapper into the fleet on success. ok=false means the
// rung did not serve the request (ineligible or exhausted).
func (s *Supervisor) tryRefresh(ctx context.Context, key string, w *Wrapper, html string, cause error) (Result, bool) {
	if !s.refreshEligible(html, cause) {
		return Result{}, false
	}
	target, ok := s.cfg.Marker(html)
	if !ok {
		return Result{}, false
	}
	refresher := w
	if s.cfg.RefreshOptions != (machine.Options{}) {
		refresher = w.WithOptions(s.cfg.RefreshOptions)
	}
	sample := Sample{HTML: html, Target: target}
	for attempt := 0; attempt < s.cfg.RefreshAttempts; attempt++ {
		if attempt > 0 {
			s.cfg.Sleep(jitteredBackoff(s.cfg.RefreshBackoff<<(attempt-1), s.cfg.BackoffJitter, s.cfg.Rand))
			s.countRetry(ctx, key)
		}
		fresh, err := s.refreshOnce(ctx, refresher, sample)
		if err == nil {
			if region, xerr := fresh.ExtractContext(ctx, html); xerr == nil {
				if refresher != w {
					// Restore the serving budget on the swapped-in wrapper.
					fresh = fresh.WithOptions(w.cfg.Options)
				}
				s.fleet.Add(key, fresh)
				return Result{Region: region, Rung: RungRefresh, Key: key}, true
			}
			return Result{}, false
		}
		if !retryable(err) {
			return Result{}, false
		}
	}
	return Result{}, false
}

// countRetry records one refresh-rung backoff retry for key.
func (s *Supervisor) countRetry(ctx context.Context, key string) {
	s.mu.Lock()
	s.site(key).retries++
	s.mu.Unlock()
	s.observer(ctx).Counter(obs.WithLabels("supervisor_refresh_retries_total", "site", key)).Inc()
}

// refreshOnce is one guarded refresh attempt.
func (s *Supervisor) refreshOnce(ctx context.Context, w *Wrapper, sample Sample) (fresh *Wrapper, err error) {
	defer func() {
		if r := recover(); r != nil {
			fresh, err = nil, fmt.Errorf("%w: %v", ErrInternal, r)
		}
	}()
	return w.RefreshContext(ctx, sample)
}

// retryable reports whether a refresh failure could plausibly succeed on
// retry. Deterministic rejections — budget, deadline, ambiguity, target
// resolution — never will.
func retryable(err error) bool {
	switch {
	case errors.Is(err, machine.ErrBudget),
		errors.Is(err, machine.ErrDeadline),
		errors.Is(err, extract.ErrAmbiguous),
		errors.Is(err, ErrNoTarget):
		return false
	}
	return true
}

// classify refines a miss's primary error: a page with no recognizable
// tokens at all is malformed input, not a wrapper decay signal.
func classify(html string, err error) error {
	if errors.Is(err, ErrNoMatch) && strings.TrimSpace(html) == "" {
		return fmt.Errorf("%w: empty page (%v)", ErrMalformedInput, err)
	}
	return err
}
