package wrapper

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestFleetConcurrentUse hammers a fleet from many goroutines mixing reads
// (ExtractFrom, Probe, Keys, MarshalJSON) with writes (Add, Remove). Run
// with -race; the assertions only check basic sanity — the point is that
// the schedule is data-race-free.
func TestFleetConcurrentUse(t *testing.T) {
	f, live := fleetFixture(t)
	acme, bolt := f.Get("acme"), f.Get("bolt")
	ctx := context.Background()

	const workers = 8
	const iters = 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := "acme"
			w := acme
			if id%2 == 1 {
				key = "bolt"
				w = bolt
			}
			for j := 0; j < iters; j++ {
				switch j % 5 {
				case 0:
					// Extraction may hit a window where the key is removed;
					// only the error classification matters, not success.
					if _, err := f.ExtractFromContext(ctx, key, live[key]); err != nil && f.Get(key) != nil {
						// The wrapper was present after the failure — it must
						// then have been a real extraction error, which this
						// fixture never produces.
						t.Errorf("worker %d: %v", id, err)
						return
					}
				case 1:
					f.Add(fmt.Sprintf("tmp-%d", id), w)
				case 2:
					f.Remove(fmt.Sprintf("tmp-%d", id))
				case 3:
					f.Keys()
					f.Len()
					f.Probe(live[key])
				case 4:
					if _, err := f.MarshalJSON(); err != nil {
						t.Errorf("worker %d: marshal: %v", id, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()

	// The permanent sites survived the churn.
	for _, key := range []string{"acme", "bolt"} {
		if f.Get(key) == nil {
			t.Errorf("%s lost", key)
		}
	}
}

// TestSupervisorConcurrentUse drives the supervisor from many goroutines,
// mixing healthy and failing pages so breaker state transitions race with
// health snapshots. Run with -race.
func TestSupervisorConcurrentUse(t *testing.T) {
	f, live := fleetFixture(t)
	s := NewSupervisor(f, SupervisorConfig{BreakerThreshold: 3})
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				key := "acme"
				if id%2 == 1 {
					key = "bolt"
				}
				page := live[key]
				if j%3 == 0 {
					page = `<i>junk</i>`
				}
				s.Extract(ctx, key, page)
				s.Health(key)
				if j%10 == 0 {
					s.HealthReport()
				}
			}
		}(i)
	}
	wg.Wait()
}
