package wrapper

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
)

// recordsPayload persists a hand-written record-shaped tuple wrapper: one
// (name cell, price cell) pair per table row, the gap between the pivots
// being exactly the closing tag of the first cell.
func recordsPayload(t *testing.T) []byte {
	t.Helper()
	data, err := json.Marshal(tuplePersisted{
		Version: 1,
		Kind:    "tuple",
		Expr:    ".* <TD> /TD <TD> .*",
		Sigma:   []string{"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "H1", "/H1", "P", "/P"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

const recordsPage = `<h1>Parts List</h1>
<table>
<tr><td>bolt M4</td><td>$0.10</td></tr>
<tr><td>nut M4</td><td>$0.08</td></tr>
<tr><td>washer M4</td><td>$0.02</td></tr>
</table>`

func TestExtractAllRecords(t *testing.T) {
	w, err := LoadTuple(recordsPayload(t), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	records, err := w.ExtractAll(recordsPage)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want 3", len(records))
	}
	wantNames := []string{"bolt M4", "nut M4", "washer M4"}
	for i, rec := range records {
		if len(rec) != 2 {
			t.Fatalf("record %d has %d slots", i, len(rec))
		}
		if rec[0].Span.Start >= rec[1].Span.Start {
			t.Errorf("record %d slots out of order", i)
		}
		// The name cell's start tag immediately precedes the wanted text.
		rest := recordsPage[rec[0].Span.End:]
		if got := rest[:len(wantNames[i])]; got != wantNames[i] {
			t.Errorf("record %d name = %q, want %q", i, got, wantNames[i])
		}
	}
	// Records come out in document order.
	for i := 1; i < len(records); i++ {
		if records[i-1][0].Span.Start >= records[i][0].Span.Start {
			t.Error("records not in document order")
		}
	}
	// A page without records is empty, not an error.
	empty, err := w.ExtractAll(`<h1>nothing here</h1>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("empty page produced %d records", len(empty))
	}
}

func TestExtractAllAgreesWithExtract(t *testing.T) {
	// On an unambiguous single-record page, ExtractAll returns exactly the
	// vector Extract does.
	w, err := TrainTuple([]Sample{
		{HTML: tupleSample1},
		{HTML: tupleSample2},
	}, Config{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	single, err := w.Extract(tupleLive)
	if err != nil {
		t.Fatal(err)
	}
	all, err := w.ExtractAll(tupleLive)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("ExtractAll found %d records on an unambiguous page", len(all))
	}
	for j := range single {
		if single[j] != all[0][j] {
			t.Errorf("slot %d: Extract %+v vs ExtractAll %+v", j, single[j], all[0][j])
		}
	}
}

func TestExtractAllContextCancel(t *testing.T) {
	w, err := LoadTuple(recordsPayload(t), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.ExtractAllContext(ctx, recordsPage); !errors.Is(err, machine.ErrDeadline) {
		t.Fatalf("cancelled ExtractAll: %v", err)
	}
}

func TestLoadTupleCachedAgreesWithLoadTuple(t *testing.T) {
	data := recordsPayload(t)
	plain, err := LoadTuple(data, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := extract.NewDiskCache(t.TempDir(), -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := extract.NewTieredCache(extract.NewCache(8, nil), disk)

	cached, err := LoadTupleCached(data, machine.Options{}, tc)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Arity() != plain.Arity() {
		t.Fatalf("arity %d vs %d", cached.Arity(), plain.Arity())
	}
	r1, err1 := plain.ExtractAll(recordsPage)
	r2, err2 := cached.ExtractAll(recordsPage)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("record counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j] != r2[i][j] {
				t.Errorf("record %d slot %d differs", i, j)
			}
		}
	}
	// The compile was written through to disk; a second load shares the
	// cached tuple.
	if disk.Len() != 1 {
		t.Fatalf("disk entries = %d, want 1", disk.Len())
	}
	again, err := LoadTupleCachedCtx(context.Background(), data, machine.Options{}, tc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Tuple() != cached.Tuple() {
		t.Error("second cached load compiled a fresh tuple")
	}
	// A nil cache degrades to LoadTuple.
	if _, err := LoadTupleCached(data, machine.Options{}, nil); err != nil {
		t.Fatalf("nil-cache load: %v", err)
	}
}

func TestLoadTupleCachedErrorClassification(t *testing.T) {
	tc := extract.NewTieredCache(extract.NewCache(2, nil), nil)
	if _, err := LoadTupleCached([]byte("{"), machine.Options{}, tc); !errors.Is(err, ErrMalformedInput) {
		t.Errorf("bad JSON: %v", err)
	}
	// A single-pivot payload is not a tuple wrapper.
	plain, err := Train([]Sample{{HTML: `<form><input data-target></form>`}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := plain.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTupleCached(pd, machine.Options{}, tc); !errors.Is(err, ErrMalformedInput) {
		t.Errorf("plain payload: %v", err)
	}
	// Budget exhaustion during the compile keeps its sentinel.
	if _, err := LoadTupleCached(recordsPayload(t), machine.Options{MaxStates: 1}, tc); !errors.Is(err, machine.ErrBudget) {
		t.Errorf("budget: %v", err)
	}
}

func TestTupleFleet(t *testing.T) {
	f := NewTupleFleet()
	w, err := LoadTuple(recordsPayload(t), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Add("parts", w)
	f.Add("other", w)
	if f.Len() != 2 {
		t.Fatalf("len = %d", f.Len())
	}
	if f.Get("parts") != w {
		t.Error("Get missed a registered wrapper")
	}
	if f.Get("absent") != nil {
		t.Error("Get invented a wrapper")
	}
	keys := f.Keys()
	if len(keys) != 2 || keys[0] != "other" || keys[1] != "parts" {
		t.Errorf("keys = %v", keys)
	}
	f.Remove("other")
	if f.Len() != 1 || f.Get("other") != nil {
		t.Error("Remove left the wrapper behind")
	}
}
