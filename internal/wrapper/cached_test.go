package wrapper

import (
	"errors"
	"sync"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
)

func trainedPayload(t *testing.T) []byte {
	t.Helper()
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadCachedAgreesWithLoad: a cache-restored wrapper must behave exactly
// like a plainly loaded one, and repeated restores must hit the cache.
func TestLoadCachedAgreesWithLoad(t *testing.T) {
	data := trainedPayload(t)
	plain, err := Load(data, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := extract.NewCache(8, nil)
	var wrappers []*Wrapper
	for i := 0; i < 3; i++ {
		w, err := LoadCached(data, machine.Options{}, cache)
		if err != nil {
			t.Fatal(err)
		}
		wrappers = append(wrappers, w)
	}
	s := cache.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, 2 hits, 1 entry", s)
	}
	for _, page := range []string{fig1Top, fig1Bottom, fig1Novel} {
		want, wantErr := plain.Extract(page)
		for i, w := range wrappers {
			got, gotErr := w.Extract(page)
			if (wantErr == nil) != (gotErr == nil) || (wantErr == nil && got.Span != want.Span) {
				t.Errorf("restore %d: %v/%v, want %v/%v", i, got, gotErr, want, wantErr)
			}
		}
	}
	if wrappers[0].Strategy() != plain.Strategy() {
		t.Errorf("strategy = %q, want %q", wrappers[0].Strategy(), plain.Strategy())
	}
}

// TestLoadCachedErrorClassification mirrors the Load contract.
func TestLoadCachedErrorClassification(t *testing.T) {
	cache := extract.NewCache(8, nil)
	for _, bad := range []string{`{`, `{"version":9}`, `{"version":1,"expr":"(((","sigma":["P"]}`} {
		if _, err := LoadCached([]byte(bad), machine.Options{}, cache); !errors.Is(err, ErrMalformedInput) {
			t.Errorf("payload %q: err = %v, want ErrMalformedInput", bad, err)
		}
	}
	// Budget exhaustion during the cold compile must stay detectable.
	data := trainedPayload(t)
	if _, err := LoadCached(data, machine.Options{MaxStates: 1}, cache); !errors.Is(err, machine.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	// A nil cache degrades to plain Load.
	if _, err := LoadCached(data, machine.Options{}, nil); err != nil {
		t.Errorf("nil cache: %v", err)
	}
}

// TestLoadCachedConcurrent restores one payload from many goroutines sharing
// a cache and extracts with every copy concurrently (run under -race by make
// race): the shared table/expression/matcher must tolerate this.
func TestLoadCachedConcurrent(t *testing.T) {
	data := trainedPayload(t)
	cache := extract.NewCache(8, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				w, err := LoadCached(data, machine.Options{}, cache)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := w.Extract(fig1Novel); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := cache.Stats().Misses; got != 1 {
		t.Errorf("misses = %d, want 1 (singleflight)", got)
	}
}

func TestLoadFleetCached(t *testing.T) {
	data := trainedPayload(t)
	f := NewFleet()
	w, err := Load(data, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Add("top", w)
	f.Add("bottom", w)
	blob, err := f.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cache := extract.NewCache(8, nil)
	g, err := LoadFleetCached(blob, machine.Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", g.Len())
	}
	// Both sites persist the same expression: one compile serves both.
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want shared compile (1 miss, 1 hit)", s)
	}
	if _, err := g.ExtractFrom("top", fig1Novel); err != nil {
		t.Error(err)
	}
	if _, err := LoadFleetCached([]byte(`{"version":1,"kind":"pod"}`), machine.Options{}, cache); !errors.Is(err, ErrMalformedInput) {
		t.Errorf("bad kind: err = %v, want ErrMalformedInput", err)
	}
}
