package wrapper_test

import (
	"context"
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/wrapper"
)

const examplePage = `<p><h1>Virtual Supplier</h1>
<form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" name="value" data-target />
</form>`

const examplePageAlt = `<table><tr><td><h1>Virtual Supplier</h1></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" name="value" data-target />
</form></td></tr></table>`

// exampleWrapper trains the shared two-layout wrapper the examples serve.
func exampleWrapper() *wrapper.Wrapper {
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: examplePage, Target: wrapper.TargetMarker()},
		{HTML: examplePageAlt, Target: wrapper.TargetMarker()},
	}, wrapper.Config{})
	if err != nil {
		panic(err)
	}
	return w
}

// ExtractBatch runs a mixed batch on a worker pool; results come back in
// input order whatever the scheduling.
func ExampleFleet_ExtractBatch() {
	fleet := wrapper.NewFleet()
	fleet.Add("vs", exampleWrapper())
	docs := []wrapper.BatchDoc{
		{Key: "vs", HTML: examplePage},
		{Key: "nosuch", HTML: examplePage},
		{Key: "vs", HTML: examplePageAlt},
	}
	for _, res := range fleet.ExtractBatch(context.Background(), docs, wrapper.BatchOptions{Workers: 4}) {
		fmt.Println(res.Index, res.Key, res.Err == nil)
	}
	// Output:
	// 0 vs true
	// 1 nosuch false
	// 2 vs true
}

// LoadCached restores persisted wrappers through the compiled-artifact
// cache: the first restore compiles, every further restore of the same
// expression is a cache hit sharing the compiled automata.
func ExampleLoadCached() {
	payload, err := exampleWrapper().MarshalJSON()
	if err != nil {
		panic(err)
	}
	cache := extract.NewCache(16, nil)
	for i := 0; i < 3; i++ {
		if _, err := wrapper.LoadCached(payload, machine.Options{}, cache); err != nil {
			panic(err)
		}
	}
	st := cache.Stats()
	fmt.Printf("misses=%d hits=%d\n", st.Misses, st.Hits)
	// Output: misses=1 hits=2
}
