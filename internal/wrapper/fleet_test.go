package wrapper

import (
	"strings"
	"testing"

	"resilex/internal/machine"
)

func fleetFixture(t *testing.T) (*Fleet, map[string]string) {
	t.Helper()
	sites := map[string][2]string{
		// key -> {training page, live page}
		"acme": {
			`<h1>ACME</h1><form><input type="hidden"><input type="text" data-target></form>`,
			`<h1>ACME</h1><p>sale!</p><form><input type="hidden"><input type="text"></form>`,
		},
		"bolt": {
			`<table><tr><th>Bolt</th></tr><tr><td><form><input type="image"><input type="text" data-target></form></td></tr></table>`,
			`<table><tr><th>Bolt</th></tr><tr><td>new</td></tr><tr><td><form><input type="image"><input type="text"></form></td></tr></table>`,
		},
	}
	f := NewFleet()
	live := map[string]string{}
	for key, pages := range sites {
		w, err := Train([]Sample{{HTML: pages[0], Target: TargetMarker()}},
			Config{ExtraTags: []string{"P", "/P", "TD", "/TD", "TR", "/TR"}})
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		f.Add(key, w)
		live[key] = pages[1]
	}
	return f, live
}

func TestFleetExtractFrom(t *testing.T) {
	f, live := fleetFixture(t)
	if f.Len() != 2 {
		t.Fatalf("len = %d", f.Len())
	}
	if got := f.Keys(); len(got) != 2 || got[0] != "acme" || got[1] != "bolt" {
		t.Fatalf("keys = %v", got)
	}
	for key, page := range live {
		r, err := f.ExtractFrom(key, page)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if !strings.Contains(r.Source, `type="text"`) {
			t.Errorf("%s extracted %q", key, r.Source)
		}
	}
	if _, err := f.ExtractFrom("nope", "<p>"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestFleetProbe(t *testing.T) {
	f, live := fleetFixture(t)
	// Each live page should be claimed by its own wrapper; the layouts are
	// distinct enough that cross-claims may or may not occur — its own
	// wrapper must be among the claimants.
	for key, page := range live {
		got := f.Probe(page)
		if _, ok := got[key]; !ok {
			t.Errorf("%s page not claimed by its own wrapper (claims: %v)", key, got)
		}
	}
	if got := f.Probe(`<p>nothing</p>`); len(got) != 0 {
		t.Errorf("junk page claimed: %v", got)
	}
}

func TestFleetPersistence(t *testing.T) {
	f, live := fleetFixture(t)
	data, err := f.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := LoadFleet(data, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != f.Len() {
		t.Fatalf("len after reload = %d", f2.Len())
	}
	for key, page := range live {
		r1, err1 := f.ExtractFrom(key, page)
		r2, err2 := f2.ExtractFrom(key, page)
		if err1 != nil || err2 != nil || r1.Span != r2.Span {
			t.Errorf("%s differs after reload: %v/%v %v/%v", key, r1, err1, r2, err2)
		}
	}
	// Corrupt payloads.
	if _, err := LoadFleet([]byte(`{`), machine.Options{}); err == nil {
		t.Error("corrupt fleet accepted")
	}
	if _, err := LoadFleet([]byte(`{"version":1,"kind":"tuple"}`), machine.Options{}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestFleetRemove(t *testing.T) {
	f, _ := fleetFixture(t)
	f.Remove("acme")
	if f.Len() != 1 || f.Get("acme") != nil {
		t.Error("remove failed")
	}
}
