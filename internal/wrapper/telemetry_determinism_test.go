package wrapper

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// stepClock advances a fixed interval on every Now() call, so each breaker
// transition in a run receives a distinct — and, across identical runs,
// reproducible — timestamp. Any run-to-run variation in which site gets
// which timestamp is therefore an ordering bug, not clock noise.
type stepClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// probeSites are the quarantined claimants in the determinism scenario; the
// supervisor must notify them in this (sorted) order, never map order.
var probeSites = []string{"site-a", "site-b", "site-c"}

// runDeterminismScenario drives a fresh supervisor through a fixed script —
// open every site's breaker, half-open all of them via one ambiguous probe,
// then reopen site-a — and returns the rendered telemetry, the site-a miss
// report string, and the final supervisor.
func runDeterminismScenario(t *testing.T) (string, string, *Supervisor) {
	t.Helper()
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	for _, key := range probeSites {
		f.Add(key, w)
	}
	clock := &stepClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), step: time.Second}
	s := NewSupervisor(f, SupervisorConfig{
		BreakerThreshold: 1,
		Now:              clock.Now,
		Sleep:            func(time.Duration) {},
	})
	ctx := context.Background()

	// One junk page per site opens every breaker (threshold 1).
	for _, key := range probeSites {
		if _, err := s.Extract(ctx, key, `<i>junk</i>`); err == nil {
			t.Fatalf("junk page extracted for %s", key)
		}
	}
	// An unknown key over a recognizable page reaches the probe rung; all
	// three quarantined sites claim it (ambiguous → miss), and each claim
	// half-opens that site's breaker.
	_, err = s.Extract(ctx, "ghost", fig1Novel)
	var miss *MissReport
	if !errors.As(err, &miss) || miss.ProbeClaims != len(probeSites) {
		t.Fatalf("ghost extract: err = %v, want miss with %d probe claims", err, len(probeSites))
	}
	// A junk page for half-open site-a fails its trial and reopens the
	// breaker; the resulting miss report renders site-a's full history,
	// whose timestamps depend on the probe-notification order above.
	_, err = s.Extract(ctx, "site-a", `<i>junk</i>`)
	if !errors.As(err, &miss) {
		t.Fatalf("site-a junk extract: err = %v, want miss", err)
	}
	return s.Telemetry().String(), miss.String(), s
}

// TestTelemetryDeterministicUnderProbeClaims pins the fix for the breaker
// history nondeterminism: the probe rung used to notify claimants in claims
// map iteration order, so with several quarantined claimants the half-open
// transitions — and the timestamps stamped on them — landed on sites in a
// different order on every run, making Telemetry() and MissReport.String()
// output unstable for identical inputs.
func TestTelemetryDeterministicUnderProbeClaims(t *testing.T) {
	firstTel, firstMiss, s := runDeterminismScenario(t)
	for run := 1; run < 6; run++ {
		tel, miss, _ := runDeterminismScenario(t)
		if tel != firstTel {
			t.Fatalf("run %d telemetry diverged:\n%s\nvs first run:\n%s", run, tel, firstTel)
		}
		if miss != firstMiss {
			t.Fatalf("run %d miss report diverged:\n%s\nvs first run:\n%s", run, miss, firstMiss)
		}
	}

	// The half-open notifications happened in sorted site order: the
	// supervisor-wide sequence numbers of the open→half-open transitions
	// must increase from site-a to site-c.
	tel := s.Telemetry()
	var lastSeq uint64
	for _, key := range probeSites {
		var halfOpen *BreakerTransition
		for i, tr := range tel[key].Transitions {
			if tr.From == BreakerOpen && tr.To == BreakerHalfOpen {
				halfOpen = &tel[key].Transitions[i]
			}
		}
		if halfOpen == nil {
			t.Fatalf("%s: no open→half-open transition in %v", key, tel[key].Transitions)
		}
		if halfOpen.Seq <= lastSeq {
			t.Errorf("%s half-opened out of order: seq %d after %d", key, halfOpen.Seq, lastSeq)
		}
		lastSeq = halfOpen.Seq
	}
}

// TestTelemetrySeqTotalOrderUnderRace hammers the supervisor with concurrent
// ladder traffic that keeps flipping breakers while other goroutines snapshot
// telemetry, then checks the sequence-number invariants the race could break:
// within a site the history is strictly Seq-ascending, and no Seq is ever
// assigned twice across sites. Run with -race this also guards the locking
// around the shared sequence counter.
func TestTelemetrySeqTotalOrderUnderRace(t *testing.T) {
	_, _, s := runDeterminismScenario(t)
	ctx := context.Background()

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0: // trial failures and reopenings on a known site
					s.Extract(ctx, probeSites[wkr%len(probeSites)], `<i>junk</i>`)
				case 1: // ambiguous probe half-opens every claimant
					s.Extract(ctx, "ghost", fig1Novel)
				default: // concurrent readers of the history under mutation
					_ = s.Telemetry().String()
				}
			}
		}(wkr)
	}
	wg.Wait()

	seen := map[uint64]string{}
	for key, st := range s.Telemetry() {
		var prev uint64
		for _, tr := range st.Transitions {
			if tr.Seq == 0 {
				t.Fatalf("%s: transition %s has no sequence number", key, tr)
			}
			if tr.Seq <= prev {
				t.Errorf("%s: history not Seq-ascending: %d after %d", key, tr.Seq, prev)
			}
			prev = tr.Seq
			if other, dup := seen[tr.Seq]; dup {
				t.Errorf("seq %d assigned to both %s and %s", tr.Seq, other, key)
			}
			seen[tr.Seq] = key
		}
	}
	if len(seen) == 0 {
		t.Fatal("no breaker transitions recorded")
	}
}
