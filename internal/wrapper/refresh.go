package wrapper

import (
	"context"
	"errors"
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/lang"
	"resilex/internal/learn"
)

// Refresh widens a trained wrapper with one more marked sample — the
// maintenance loop of a deployed robot: when a redesigned page stops
// matching, an operator marks the target once and the wrapper learns the
// new layout family without being rebuilt by hand.
//
// Wrappers created by Train/TrainTokens remember their training examples,
// so Refresh re-runs the induce→maximize pipeline over the extended example
// set: all training pages keep extracting at their marked positions and the
// new layout generalizes like any other. Wrappers restored with Load have
// no provenance; for them Refresh falls back to a rigid widening — the new
// page's exact prefix/suffix languages are unioned into the components (a
// ⪯ step, so every previously parsed page keeps extracting identically) —
// which handles the sampled page but not its whole family. ErrAmbiguous is
// returned when the new sample genuinely conflicts (same context, different
// target).
func (w *Wrapper) Refresh(sample Sample) (*Wrapper, error) {
	return w.RefreshContext(context.Background(), sample)
}

// RefreshContext is Refresh with the whole induce→maximize→compile pipeline
// bounded by ctx (in addition to the wrapper's state budget): the
// re-induction and every automaton construction poll the deadline, so a
// refresh against a pathological page returns an error wrapping
// machine.ErrDeadline instead of running the PSPACE-hard path to completion.
// On any error the receiver is untouched and remains usable.
func (w *Wrapper) RefreshContext(ctx context.Context, sample Sample) (*Wrapper, error) {
	if ctx != context.Background() {
		bounded := w.WithOptions(w.cfg.Options.WithContext(ctx))
		fresh, err := bounded.refresh(sample)
		if err != nil {
			return nil, err
		}
		// Do not let the (possibly expired) context outlive the call.
		fresh.cfg.Options = w.cfg.Options
		return fresh, nil
	}
	return w.refresh(sample)
}

func (w *Wrapper) refresh(sample Sample) (*Wrapper, error) {
	doc := w.mapper.Map(sample.HTML)
	idx, err := resolveTarget(doc, sample, w.tab)
	if err != nil {
		return nil, err
	}
	if doc.Syms[idx] != w.expr.P() {
		return nil, fmt.Errorf("wrapper: new sample marks %s, wrapper extracts %s",
			w.tab.Name(doc.Syms[idx]), w.tab.Name(w.expr.P()))
	}
	if w.examples != nil {
		// Re-induction path.
		examples := append(append([]learn.Example(nil), w.examples...),
			learn.Example{Doc: doc.Syms, Target: idx})
		sigma := w.sigma.Union(doc.Alphabet())
		fresh, err := trainExamples(w.tab, w.mapper, examples, sigma, w.cfg)
		switch {
		case err == nil:
			fresh.strategy += "+refreshed"
			return fresh, nil
		case errors.Is(err, learn.ErrAmbiguousExamples):
			// The new sample contradicts the old ones for every induction
			// strategy; fall through to rigid widening, which detects the
			// genuinely ambiguous case precisely.
		default:
			return nil, err
		}
	}
	sigma := w.expr.Sigma().Union(doc.Alphabet())
	opt := w.cfg.Options
	prefix, err := lang.Single(doc.Syms[:idx], sigma, opt)
	if err != nil {
		return nil, err
	}
	suffix, err := lang.Single(doc.Syms[idx+1:], sigma, opt)
	if err != nil {
		return nil, err
	}
	left, err := w.expr.Left().Union(prefix)
	if err != nil {
		return nil, err
	}
	right, err := w.expr.Right().Union(suffix)
	if err != nil {
		return nil, err
	}
	widened := extract.New(left, w.expr.P(), right)
	unamb, err := widened.Unambiguous()
	if err != nil {
		return nil, err
	}
	if !unamb {
		return nil, fmt.Errorf("%w: the new sample conflicts with the wrapper", extract.ErrAmbiguous)
	}
	expr := widened
	strategy := w.strategy + "+refreshed"
	if maxed, err := extract.Maximize(widened); err == nil {
		expr = maxed
		strategy = w.strategy + "+refreshed-maximized"
	} else if !errors.Is(err, extract.ErrNotApplicable) && !errors.Is(err, extract.ErrUnbounded) {
		return nil, err
	}
	m, err := expr.Compile()
	if err != nil {
		return nil, err
	}
	return &Wrapper{
		sbox: &streamBox{},
		tab:  w.tab, mapper: w.mapper, expr: expr, matcher: m,
		strategy: strategy, cfg: w.cfg,
	}, nil
}
