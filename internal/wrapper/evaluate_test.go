package wrapper

import (
	"strings"
	"testing"
)

func TestEvaluate(t *testing.T) {
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Evaluate([]LabeledPage{
		{HTML: fig1Top, Target: TargetMarker()},             // hit
		{HTML: fig1Bottom, Target: TargetMarker()},          // hit
		{HTML: fig1Novel, Target: TargetTag("INPUT", 1)},    // hit (2nd input)
		{HTML: `<p>nothing</p>`, Target: TargetTag("P", 0)}, // miss
		{HTML: fig1Top, Target: TargetTag("INPUT", 0)},      // wrong: labeled 1st input
		{HTML: `<p></p>`, Target: TargetMarker()},           // bad label
	})
	if rep.Hits() != 3 || rep.Misses() != 1 || rep.Wrongs() != 1 {
		t.Fatalf("report = %s", rep)
	}
	if got := rep.Rate(); got < 0.59 || got > 0.61 {
		t.Errorf("rate = %v, want 3/5", got)
	}
	s := rep.String()
	for _, want := range []string{"3 hit", "1 miss", "1 wrong", "1 bad-label"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	// Outcomes carry diagnostics.
	for _, p := range rep.Pages {
		if p.Outcome == Wrong && !strings.Contains(p.Detail, "labeled") {
			t.Errorf("wrong outcome lacks detail: %+v", p)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	names := map[Outcome]string{Hit: "hit", Miss: "miss", Wrong: "wrong", BadLabel: "bad-label", Outcome(9): "outcome(9)"}
	for o, want := range names {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d) = %q", int(o), got)
		}
	}
}

func TestEvaluateEmptyReport(t *testing.T) {
	w, err := Train([]Sample{{HTML: fig1Top, Target: TargetMarker()}}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Evaluate(nil)
	if rep.Rate() != 0 || len(rep.Pages) != 0 {
		t.Errorf("empty evaluation: %s", rep)
	}
}

func TestEvaluateTuple(t *testing.T) {
	w, err := TrainTuple([]Sample{
		{HTML: tupleSample1},
		{HTML: tupleSample2},
	}, Config{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := w.EvaluateTuple([]TupleLabeledPage{
		{HTML: tupleLive, Targets: []Target{TargetTag("TD", 0), TargetTag("TD", 1)}}, // hit
		{HTML: tupleLive, Targets: []Target{TargetTag("TD", 1), TargetTag("TD", 0)}}, // wrong
		{HTML: `<p>x</p>`, Targets: []Target{TargetTag("P", 0), TargetTag("P", 0)}},  // miss
		{HTML: tupleLive, Targets: []Target{TargetTag("TD", 0)}},                     // bad arity
	})
	if rep.Hits() != 1 || rep.Wrongs() != 1 || rep.Misses() != 1 {
		t.Fatalf("report = %s (%+v)", rep, rep.Pages)
	}
}
