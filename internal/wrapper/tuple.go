package wrapper

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/spanner"
	"resilex/internal/symtab"
)

// TupleWrapper extracts a fixed-arity tuple of elements from each page —
// e.g. (product name cell, price cell) — using a multi-mark extraction
// expression. Train with TrainTuple on samples whose k target elements all
// carry the data-target attribute (document order defines slot order).
type TupleWrapper struct {
	tab    *symtab.Table
	mapper *htmltok.Mapper
	tuple  *extract.Tuple
	cfg    Config

	// Training provenance for Refresh; nil for wrappers restored with
	// LoadTuple.
	examples []learn.TupleExample
	sigma    symtab.Alphabet

	// Lazily compiled multi-split spanner program backing ExtractAll; see
	// tuplecached.go.
	prog struct {
		once sync.Once
		p    *spanner.Program
		err  error
	}
}

// TrainTuple builds a tuple wrapper from marked samples. Every sample must
// mark the same number of elements with data-target, and the marked tags
// must agree slot-by-slot across samples.
func TrainTuple(samples []Sample, cfg Config) (*TupleWrapper, error) {
	if len(samples) == 0 {
		return nil, learn.ErrNoExamples
	}
	tab := symtab.NewTable()
	mapper := cfg.mapper(tab)
	var examples []learn.TupleExample
	var sigma symtab.Alphabet
	for i, s := range samples {
		doc := mapper.Map(s.HTML)
		targets, err := markedIndices(doc, s.HTML)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		examples = append(examples, learn.TupleExample{Doc: doc.Syms, Targets: targets})
		sigma = sigma.Union(doc.Alphabet())
	}
	for _, t := range cfg.ExtraTags {
		sigma = sigma.With(tab.Intern(t))
	}
	tuple, err := learn.InduceTuple(examples, sigma, cfg.Options)
	if err != nil {
		return nil, err
	}
	if !cfg.SkipMaximize {
		if maxed, err := extract.MaximizeTuple(tuple); err == nil {
			tuple = maxed
		}
		// Maximization failure keeps the induced tuple: correct on the
		// training distribution, merely less resilient.
	}
	return &TupleWrapper{
		tab: tab, mapper: mapper, tuple: tuple, cfg: cfg,
		examples: examples, sigma: sigma,
	}, nil
}

// Refresh re-induces the tuple wrapper with one more marked sample (every
// data-target in document order is one slot), the tuple analogue of
// Wrapper.Refresh. Wrappers restored with LoadTuple have no training
// provenance and cannot be refreshed.
func (w *TupleWrapper) Refresh(sample Sample) (*TupleWrapper, error) {
	if w.examples == nil {
		return nil, fmt.Errorf("wrapper: tuple wrapper has no training provenance (restored from JSON); retrain instead")
	}
	doc := w.mapper.Map(sample.HTML)
	targets, err := markedIndices(doc, sample.HTML)
	if err != nil {
		return nil, err
	}
	examples := append(append([]learn.TupleExample(nil), w.examples...),
		learn.TupleExample{Doc: doc.Syms, Targets: targets})
	sigma := w.sigma.Union(doc.Alphabet())
	tuple, err := learn.InduceTuple(examples, sigma, w.cfg.Options)
	if err != nil {
		return nil, err
	}
	if !w.cfg.SkipMaximize {
		if maxed, err := extract.MaximizeTuple(tuple); err == nil {
			tuple = maxed
		}
	}
	return &TupleWrapper{
		tab: w.tab, mapper: w.mapper, tuple: tuple, cfg: w.cfg,
		examples: examples, sigma: sigma,
	}, nil
}

// markedIndices returns the token indices of every data-target-marked tag,
// in document order.
func markedIndices(doc htmltok.Document, html string) ([]int, error) {
	var out []int
	for _, raw := range htmltok.Scan(html) {
		if _, ok := raw.Attr(MarkerAttr); !ok {
			continue
		}
		found := -1
		for i, span := range doc.Spans {
			if span.Start == raw.Start && span.End == raw.End {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("%w: marked tag was filtered out by the tokenizer config", ErrNoTarget)
		}
		out = append(out, found)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no tag carries %s", ErrNoTarget, MarkerAttr)
	}
	return out, nil
}

// Extract runs the tuple wrapper on a page, returning one region per slot.
func (w *TupleWrapper) Extract(html string) ([]Region, error) {
	doc := w.mapper.Map(html)
	vector, ok, err := w.tuple.Extract(doc.Syms)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotExtracted
	}
	out := make([]Region, len(vector))
	for j, pos := range vector {
		out[j] = Region{TokenIndex: pos, Span: doc.SpanOf(pos), Source: doc.Source(pos)}
	}
	return out, nil
}

// Arity returns the number of extracted slots.
func (w *TupleWrapper) Arity() int { return w.tuple.Arity() }

// tuplePersisted is the JSON schema of a saved tuple wrapper.
type tuplePersisted struct {
	Version     int      `json:"version"`
	Kind        string   `json:"kind"` // always "tuple"
	Expr        string   `json:"expr"`
	Sigma       []string `json:"sigma"`
	DropEndTags bool     `json:"dropEndTags,omitempty"`
	KeepText    bool     `json:"keepText,omitempty"`
	AttrKeys    []string `json:"attrKeys,omitempty"`
	Skip        []string `json:"skip,omitempty"`
}

// MarshalJSON persists the tuple wrapper; restore with LoadTuple.
func (w *TupleWrapper) MarshalJSON() ([]byte, error) {
	names := make([]string, 0, w.tuple.Sigma().Len())
	for _, s := range w.tuple.Sigma().Symbols() {
		names = append(names, w.tab.Name(s))
	}
	return json.Marshal(tuplePersisted{
		Version:     1,
		Kind:        "tuple",
		Expr:        w.tuple.String(w.tab),
		Sigma:       names,
		DropEndTags: w.cfg.DropEndTags,
		KeepText:    w.cfg.KeepText,
		AttrKeys:    w.cfg.AttrKeys,
		Skip:        w.cfg.Skip,
	})
}

// LoadTuple restores a tuple wrapper persisted with MarshalJSON.
func LoadTuple(data []byte, opt machine.Options) (*TupleWrapper, error) {
	var p tuplePersisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding tuple wrapper: %v", ErrMalformedInput, err)
	}
	if p.Version != 1 || p.Kind != "tuple" {
		return nil, fmt.Errorf("%w: not a version-1 tuple wrapper (version %d, kind %q)", ErrMalformedInput, p.Version, p.Kind)
	}
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll(p.Sigma...)...)
	tuple, err := extract.ParseTuple(p.Expr, tab, sigma, opt)
	if err != nil {
		// Exhaustion during reparse is the caller's budget/deadline, not a
		// corrupt payload — keep those sentinels detectable.
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			return nil, fmt.Errorf("wrapper: reparsing tuple expression: %w", err)
		}
		return nil, fmt.Errorf("%w: reparsing tuple expression: %v", ErrMalformedInput, err)
	}
	cfg := Config{DropEndTags: p.DropEndTags, KeepText: p.KeepText, AttrKeys: p.AttrKeys, Skip: p.Skip, Options: opt}
	return &TupleWrapper{tab: tab, mapper: cfg.mapper(tab), tuple: tuple, cfg: cfg}, nil
}

// IsTuplePayload reports whether the persisted wrapper JSON is a tuple
// wrapper (kind == "tuple"); used by tools that accept either form.
func IsTuplePayload(data []byte) bool {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Kind == "tuple"
}

// Tuple exposes the underlying expression.
func (w *TupleWrapper) Tuple() *extract.Tuple { return w.tuple }

// String renders the tuple expression.
func (w *TupleWrapper) String() string { return w.tuple.String(w.tab) }
