package wrapper

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"resilex/internal/obs"
)

// BatchDoc is one unit of work for Fleet.ExtractBatch: a page plus the site
// key selecting its wrapper.
type BatchDoc struct {
	Key  string `json:"key"`
	HTML string `json:"html"`
}

// BatchResult is the outcome for one BatchDoc. Exactly one of Region/Err is
// meaningful: Err is nil on success. Index is the document's position in the
// input slice.
type BatchResult struct {
	Index  int
	Key    string
	Region Region
	Err    error
}

// BatchOptions tunes ExtractBatch.
type BatchOptions struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// DocTimeout, when positive, layers a per-document deadline under the
	// batch context: each document gets its own timeout, but never more time
	// than the batch context has left.
	DocTimeout time.Duration
}

// ExtractBatch runs the fleet over a batch of documents on a worker pool and
// returns one result per document, in input order — results[i] always
// corresponds to docs[i], regardless of which worker ran it or when it
// finished. Per-document failures (unknown key, no extraction, expired
// deadline) are reported in the result, never by a panic or a short slice,
// so one poisoned document cannot take down its batch.
//
// The batch context bounds the whole call: documents starting after it
// expires fail fast with an error wrapping machine.ErrDeadline (workers
// drain the remaining documents without running them). Each document
// additionally gets BatchOptions.DocTimeout, inherited from — and clipped
// by — the batch context.
//
// An observer carried by ctx (obs.NewContext) maintains the counters
// wrapper_batch_docs_total and wrapper_batch_errors_total and the histogram
// wrapper_batch_doc_duration_us.
func (f *Fleet) ExtractBatch(ctx context.Context, docs []BatchDoc, opt BatchOptions) []BatchResult {
	results := make([]BatchResult, len(docs))
	if len(docs) == 0 {
		return results
	}
	o := obs.FromContext(ctx)
	docsTotal := o.Counter("wrapper_batch_docs_total")
	errsTotal := o.Counter("wrapper_batch_errors_total")
	durations := o.Histogram("wrapper_batch_doc_duration_us")

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				d := docs[i]
				dctx, cancel := ctx, context.CancelFunc(func() {})
				if opt.DocTimeout > 0 {
					dctx, cancel = context.WithTimeout(ctx, opt.DocTimeout)
				}
				start := time.Now()
				r, err := f.ExtractFromContext(dctx, d.Key, d.HTML)
				durations.Observe(time.Since(start).Microseconds())
				cancel()
				docsTotal.Inc()
				if err != nil {
					errsTotal.Inc()
				}
				results[i] = BatchResult{Index: i, Key: d.Key, Region: r, Err: err}
			}
		}()
	}
	wg.Wait()
	return results
}
