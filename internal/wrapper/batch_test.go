package wrapper

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"resilex/internal/machine"
	"resilex/internal/obs"
)

func fig1Fleet(t *testing.T) *Fleet {
	t.Helper()
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	f.Add("vs", w)
	return f
}

// TestExtractBatchOrderingAndErrors: results come back in input order with
// per-document error isolation, for every worker-pool size.
func TestExtractBatchOrderingAndErrors(t *testing.T) {
	f := fig1Fleet(t)
	docs := []BatchDoc{
		{Key: "vs", HTML: fig1Top},
		{Key: "nosuch", HTML: fig1Top},
		{Key: "vs", HTML: `<html>nothing</html>`},
		{Key: "vs", HTML: fig1Novel},
		{Key: "vs", HTML: fig1Bottom},
	}
	for _, workers := range []int{0, 1, 2, 16} {
		res := f.ExtractBatch(context.Background(), docs, BatchOptions{Workers: workers})
		if len(res) != len(docs) {
			t.Fatalf("workers=%d: %d results for %d docs", workers, len(res), len(docs))
		}
		for i, r := range res {
			if r.Index != i || r.Key != docs[i].Key {
				t.Fatalf("workers=%d: result %d carries index %d key %q", workers, i, r.Index, r.Key)
			}
		}
		if !errors.Is(res[1].Err, ErrUnknownKey) {
			t.Errorf("workers=%d: res[1].Err = %v, want ErrUnknownKey", workers, res[1].Err)
		}
		if !errors.Is(res[2].Err, ErrNotExtracted) {
			t.Errorf("workers=%d: res[2].Err = %v, want ErrNotExtracted", workers, res[2].Err)
		}
		for _, i := range []int{0, 3, 4} {
			if res[i].Err != nil {
				t.Errorf("workers=%d: res[%d].Err = %v", workers, i, res[i].Err)
			} else if !strings.Contains(res[i].Region.Source, `type="text"`) {
				t.Errorf("workers=%d: res[%d] extracted %q", workers, i, res[i].Region.Source)
			}
		}
	}
	if res := f.ExtractBatch(context.Background(), nil, BatchOptions{}); len(res) != 0 {
		t.Errorf("empty batch returned %d results", len(res))
	}
}

// TestExtractBatchDeadline: an already-expired batch context fails every
// document fast, classified under machine.ErrDeadline.
func TestExtractBatchDeadline(t *testing.T) {
	f := fig1Fleet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	docs := make([]BatchDoc, 20)
	for i := range docs {
		docs[i] = BatchDoc{Key: "vs", HTML: fig1Top}
	}
	for i, r := range f.ExtractBatch(ctx, docs, BatchOptions{Workers: 4}) {
		if !errors.Is(r.Err, machine.ErrDeadline) {
			t.Fatalf("res[%d].Err = %v, want ErrDeadline", i, r.Err)
		}
	}
}

// TestExtractBatchObserved: the batch counters flow into a ctx-carried
// observer.
func TestExtractBatchObserved(t *testing.T) {
	f := fig1Fleet(t)
	o := obs.New()
	ctx := obs.NewContext(context.Background(), o)
	docs := []BatchDoc{
		{Key: "vs", HTML: fig1Top},
		{Key: "nosuch", HTML: fig1Top},
	}
	f.ExtractBatch(ctx, docs, BatchOptions{Workers: 2})
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["wrapper_batch_docs_total"]; got != 2 {
		t.Errorf("docs_total = %d, want 2", got)
	}
	if got := snap.Counters["wrapper_batch_errors_total"]; got != 1 {
		t.Errorf("errors_total = %d, want 1", got)
	}
	if h := snap.Histograms["wrapper_batch_doc_duration_us"]; h.Count != 2 {
		t.Errorf("duration histogram count = %d, want 2", h.Count)
	}
}

// TestExtractBatchMidBatchCancel cancels the batch context while workers are
// mid-flight: documents already processed keep their results, documents
// after the cancellation fail fast under machine.ErrDeadline, and the result
// slice stays complete and ordered — the contract the serving path's request
// cancellation (client disconnect, router failover abandoning a hedge)
// depends on.
func TestExtractBatchMidBatchCancel(t *testing.T) {
	f := fig1Fleet(t)

	// One attempt: run the batch, cancel once the first documents have been
	// processed, assert the hard invariants (complete ordered slice, typed
	// errors, exact metric accounting), and report how the timing landed.
	// Whether the cancel catches the batch mid-flight is a race against the
	// extraction speed — cached documents finish in microseconds — so the
	// attempt is retried until it does instead of asserting one roll of the
	// scheduler dice.
	attempt := func(n int) (succeeded, failed int) {
		o := obs.New()
		ctx, cancel := context.WithCancel(obs.NewContext(context.Background(), o))
		defer cancel()

		docs := make([]BatchDoc, n)
		for i := range docs {
			docs[i] = BatchDoc{Key: "vs", HTML: fig1Top}
		}

		done := make(chan []BatchResult, 1)
		go func() { done <- f.ExtractBatch(ctx, docs, BatchOptions{Workers: 2}) }()

		// Wait until some documents have definitely been processed, then
		// pull the rug out mid-batch.
		deadline := time.Now().Add(10 * time.Second)
		for o.Metrics.Snapshot().Counters["wrapper_batch_docs_total"] < 10 {
			if time.Now().After(deadline) {
				t.Fatal("batch never processed its first documents")
			}
			time.Sleep(time.Millisecond)
		}
		cancel()

		var res []BatchResult
		select {
		case res = <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("ExtractBatch did not return after mid-batch cancellation")
		}

		if len(res) != n {
			t.Fatalf("%d results for %d docs — cancellation shortened the slice", len(res), n)
		}
		for i, r := range res {
			if r.Index != i || r.Key != "vs" {
				t.Fatalf("result %d carries index %d key %q — ordering broken by cancel", i, r.Index, r.Key)
			}
			if r.Err == nil {
				succeeded++
				continue
			}
			failed++
			if !errors.Is(r.Err, machine.ErrDeadline) {
				t.Fatalf("res[%d].Err = %v, want machine.ErrDeadline after cancel", i, r.Err)
			}
		}
		snap := o.Metrics.Snapshot()
		if got := snap.Counters["wrapper_batch_docs_total"]; got != int64(n) {
			t.Errorf("docs_total = %d, want %d (every doc accounted for, even drained ones)", got, n)
		}
		if got := snap.Counters["wrapper_batch_errors_total"]; got != int64(failed) {
			t.Errorf("errors_total = %d, want %d", got, failed)
		}
		return succeeded, failed
	}

	n := 3000
	for try := 0; try < 5; try++ {
		succeeded, failed := attempt(n)
		if succeeded > 0 && failed > 0 {
			return
		}
		n *= 2 // widen the window between first-doc and batch-end
	}
	t.Error("cancel never landed mid-batch in 5 attempts — every batch completed before or started after it")
}
