package wrapper

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"resilex/internal/faultinject"
	"resilex/internal/obs"
)

// TestSupervisorConcurrentObservation hammers one supervisor — and through
// it one shared metrics registry and span ring buffer — from parallel
// Extract calls mixing every ladder outcome. Run under -race this exercises
// the supervisor lock, the registry's create/update paths, and the tracer's
// ring eviction concurrently.
func TestSupervisorConcurrentObservation(t *testing.T) {
	o := obs.New()
	o.Trace = obs.NewTracer(128) // force concurrent ring eviction
	s, _ := supervisorFixture(t, SupervisorConfig{
		Observer:         o,
		Marker:           markerByAttr,
		BreakerThreshold: 3,
	})
	garbled := faultinject.GarbleTags(fig1Novel, 1)
	pages := []string{fig1Novel, fig1Top, garbled, `<i>junk</i>`, fig1Novel}

	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := "vs"
				if i%4 == 3 {
					key = fmt.Sprintf("ghost-%d", w%2)
				}
				s.Extract(context.Background(), key, pages[(w+i)%len(pages)])
			}
		}(w)
	}
	wg.Wait()

	// Every call recorded exactly one ladder span.
	if got := o.Trace.Total(); got != workers*perWorker {
		t.Errorf("ladder spans = %d, want %d", got, workers*perWorker)
	}
	// Per-site rung entries in the registry agree with the telemetry
	// snapshot — the two paths counted the same events.
	tel := s.Telemetry()
	snap := o.Metrics.Snapshot().Counters
	var entries, serves uint64
	for key, st := range tel {
		for rung, n := range st.RungEntries {
			entries += n
			name := fmt.Sprintf("supervisor_rung_entries_total{site=%q,rung=%q}", key, rung)
			if got := uint64(snap[name]); got != n {
				t.Errorf("%s = %d, telemetry says %d", name, got, n)
			}
		}
		for _, n := range st.RungServes {
			serves += n
		}
	}
	if entries == 0 || serves == 0 {
		t.Fatalf("no ladder traffic recorded: %+v", tel)
	}
}
