package wrapper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/machine"
	"resilex/internal/obs"
)

// streamChunkSize is the read-buffer size of a streaming extraction session:
// large enough to amortize Read syscalls, small enough that pooled sessions
// stay cheap.
const streamChunkSize = 32 << 10

// ErrStreamUnavailable wraps CompileStream failures: the expression's
// automata exceed the dense-table bounds of the one-pass matcher. Callers
// fall back to the materialized Extract path (and should count the
// fallback).
var ErrStreamUnavailable = errors.New("wrapper: streaming matcher unavailable")

// streamBox lazily compiles the wrapper's one-pass streaming matcher, shared
// by all copies of the wrapper.
type streamBox struct {
	once sync.Once
	se   *StreamExtractor
	err  error
}

// Stream returns the wrapper's streaming extractor, compiling the one-pass
// matcher (extract.StreamMatcher) on first use and caching it for the
// wrapper's lifetime. Errors wrap ErrStreamUnavailable; callers then fall
// back to the materialized Extract path.
func (w *Wrapper) Stream() (*StreamExtractor, error) {
	w.sbox.once.Do(func() {
		sm, err := w.expr.CompileStream()
		if err != nil {
			w.sbox.err = fmt.Errorf("%w: %v", ErrStreamUnavailable, err)
			return
		}
		w.sbox.se = &StreamExtractor{w: w, sm: sm}
	})
	return w.sbox.se, w.sbox.err
}

// StreamRegion is a streaming extraction result. Source aliases a pooled
// session buffer and is valid only for the duration of the ExtractReaderTo
// callback — copy it to keep it.
type StreamRegion struct {
	TokenIndex int
	Span       htmltok.Span
	Source     []byte
}

// StreamExtractor extracts from chunked document streams in one forward
// pass: bytes flow through the resumable tokenizer (htmltok.Streamer)
// directly into the one-pass product matcher, so split points resolve
// online and memory stays O(1) beyond the match region — the page is never
// materialized. Safe for concurrent use; per-request state is pooled, and
// the warm ExtractReaderTo path performs no allocations (ARCHITECTURE.md §8
// documents the buffer-ownership rules that keep it that way).
type StreamExtractor struct {
	w          *Wrapper
	sm         *extract.StreamMatcher
	pool       sync.Pool // *streamSession
	poolHits   atomic.Int64
	poolMisses atomic.Int64
}

// capture is one candidate's retained evidence: the token position the
// candidate was born at, its byte span in the stream, and its source bytes
// in the session's capture arena.
type capture struct {
	pos    int
	span   htmltok.Span
	off, n int
}

// streamSession is the per-extraction state: tokenizer, per-session mapper
// (StreamSym scratch makes mappers single-goroutine), matcher run, and the
// capture arena for candidate source regions. All buffers are reused across
// extractions via the extractor's pool.
type streamSession struct {
	se     *StreamExtractor
	st     *htmltok.Streamer
	mapper *htmltok.Mapper
	run    *extract.StreamRun
	pos    int // token positions consumed (kept tokens only)

	caps       []capture
	src        []byte // capture arena: source bytes of live candidates
	srcScratch []byte // prune-compaction double buffer
	live       []int32

	chunks0, carries0 int64 // streamer stats at session start (Stats is cumulative)
	bytes             int64
	buf               [streamChunkSize]byte
}

func (se *StreamExtractor) get() *streamSession {
	var s *streamSession
	if v := se.pool.Get(); v != nil {
		s = v.(*streamSession)
		se.poolHits.Add(1)
	} else {
		s = &streamSession{se: se, mapper: se.w.cfg.mapper(se.w.tab)}
		s.st = htmltok.NewStreamer(s.onToken)
		s.st.ParseAttrs = len(se.w.cfg.AttrKeys) > 0
		se.poolMisses.Add(1)
	}
	s.st.Reset()
	s.chunks0, s.carries0 = s.st.Stats()
	s.run = se.sm.Get(extract.FindLeftmost)
	s.pos = 0
	s.caps = s.caps[:0]
	s.src = s.src[:0]
	s.bytes = 0
	return s
}

func (se *StreamExtractor) put(s *streamSession) {
	se.sm.Put(s.run)
	s.run = nil
	se.pool.Put(s)
}

// onToken is the fused tokenizer→matcher step: resolve the raw token to a
// symbol (unknown names become out-of-Σ None, killing the candidates whose
// suffix spans them), feed the matcher, and capture the token's bytes when
// it is born as a still-viable candidate.
func (s *streamSession) onToken(rt htmltok.RawToken) {
	sym, ok := s.mapper.StreamSym(rt)
	if !ok {
		return
	}
	j := s.pos
	s.pos++
	if !s.run.Feed(sym) {
		return
	}
	off := len(s.src)
	s.src = append(s.src, rt.Bytes...)
	s.caps = append(s.caps, capture{
		pos:  j,
		span: htmltok.Span{Start: rt.Start, End: rt.End},
		off:  off,
		n:    len(rt.Bytes),
	})
	if len(s.caps) > 8 {
		s.prune()
	}
}

// prune drops captures whose candidate is no longer live. At most one
// candidate per suffix-automaton state can still win, so the capture arena
// is bounded by |Q₂| after every prune — this is what keeps memory O(1)
// beyond the match region on adversarial pages that keep spawning
// candidates.
func (s *streamSession) prune() {
	s.live = s.run.Live(s.live[:0])
	if len(s.caps) <= 2*len(s.live) {
		return
	}
	out := s.srcScratch[:0]
	w := 0
	for _, c := range s.caps {
		alive := false
		for _, p := range s.live {
			if int(p) == c.pos {
				alive = true
				break
			}
		}
		if !alive {
			continue
		}
		no := len(out)
		out = append(out, s.src[c.off:c.off+c.n]...)
		c.off = no
		s.caps[w] = c
		w++
	}
	s.caps = s.caps[:w]
	s.srcScratch = s.src
	s.src = out
}

// ExtractReaderTo streams the page from r through the wrapper and hands the
// extracted region to fn. The region's Source bytes are borrowed from a
// pooled buffer: they are valid only during fn. The warm path (pooled
// session, warmed counters) performs zero allocations; metrics are recorded
// against the observer in ctx (see DESIGN.md §6, extract_stream_*).
func (se *StreamExtractor) ExtractReaderTo(ctx context.Context, r io.Reader, fn func(StreamRegion) error) error {
	if err := (machine.Options{Ctx: ctx}).Err(); err != nil {
		return fmt.Errorf("wrapper: stream extract: %w", err)
	}
	o := obs.FromContext(ctx)
	s := se.get()
	defer se.put(s)
	for {
		n, err := r.Read(s.buf[:])
		if n > 0 {
			s.bytes += int64(n)
			s.st.Feed(s.buf[:n])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("wrapper: stream extract: %w", err)
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("wrapper: stream extract: %w: %w", machine.ErrDeadline, cerr)
			}
		}
	}
	s.st.Close()
	chunks, carries := s.st.Stats()
	o.Counter("extract_stream_runs_total").Add(1)
	o.Counter("extract_stream_chunks_total").Add(chunks - s.chunks0)
	o.Counter("extract_stream_carry_total").Add(carries - s.carries0)
	o.Counter("extract_stream_bytes_total").Add(s.bytes)
	hits, misses := se.poolStatsDelta()
	o.Counter("extract_stream_pool_hits_total").Add(hits)
	o.Counter("extract_stream_pool_misses_total").Add(misses)
	pos, ok := s.run.Find()
	if !ok {
		return ErrNotExtracted
	}
	for i := range s.caps {
		if s.caps[i].pos == pos {
			c := s.caps[i]
			return fn(StreamRegion{
				TokenIndex: pos,
				Span:       c.span,
				Source:     s.src[c.off : c.off+c.n],
			})
		}
	}
	// Unreachable if capture pruning is correct: the winner is always live.
	return fmt.Errorf("wrapper: stream extract: winning position %d has no capture", pos)
}

// ExtractReader is ExtractReaderTo returning an owned Region (Source is
// copied); the convenience surface mirroring Extract.
func (se *StreamExtractor) ExtractReader(ctx context.Context, r io.Reader) (Region, error) {
	var reg Region
	err := se.ExtractReaderTo(ctx, r, func(sr StreamRegion) error {
		reg = Region{TokenIndex: sr.TokenIndex, Span: sr.Span, Source: string(sr.Source)}
		return nil
	})
	return reg, err
}

// poolStatsDelta reports and resets the extractor's pool hit/miss counts,
// so each extraction flushes its delta into the context's metrics registry.
func (se *StreamExtractor) poolStatsDelta() (hits, misses int64) {
	return se.poolHits.Swap(0), se.poolMisses.Swap(0)
}
