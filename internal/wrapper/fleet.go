package wrapper

import (
	"encoding/json"
	"fmt"
	"sort"

	"resilex/internal/machine"
)

// Fleet is a registry of named wrappers — one per site — with shared
// persistence: the operating unit of a shopbot that harvests many vendors.
// A Fleet maps a site key (e.g. the vendor's hostname) to its trained
// wrapper; ExtractFrom dispatches by key and Probe tries every wrapper when
// the key is unknown.
type Fleet struct {
	wrappers map[string]*Wrapper
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{wrappers: make(map[string]*Wrapper)}
}

// Add registers (or replaces) the wrapper for a site key.
func (f *Fleet) Add(key string, w *Wrapper) {
	f.wrappers[key] = w
}

// Get returns the wrapper for the key, or nil.
func (f *Fleet) Get(key string) *Wrapper { return f.wrappers[key] }

// Remove deletes a site's wrapper.
func (f *Fleet) Remove(key string) { delete(f.wrappers, key) }

// Len reports the number of registered wrappers.
func (f *Fleet) Len() int { return len(f.wrappers) }

// Keys returns the registered site keys in sorted order.
func (f *Fleet) Keys() []string {
	out := make([]string, 0, len(f.wrappers))
	for k := range f.wrappers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExtractFrom runs the named site's wrapper on the page.
func (f *Fleet) ExtractFrom(key, html string) (Region, error) {
	w := f.wrappers[key]
	if w == nil {
		return Region{}, fmt.Errorf("wrapper: fleet has no wrapper for %q", key)
	}
	return w.Extract(html)
}

// Probe tries every wrapper on the page and returns the keys that extract
// successfully, sorted, with their regions — the recovery path when a page
// arrives without provenance. An unambiguous match (exactly one key) is the
// common case for distinct vendors.
func (f *Fleet) Probe(html string) map[string]Region {
	out := map[string]Region{}
	for key, w := range f.wrappers {
		if r, err := w.Extract(html); err == nil {
			out[key] = r
		}
	}
	return out
}

// fleetPersisted is the JSON schema of a saved fleet.
type fleetPersisted struct {
	Version  int                        `json:"version"`
	Kind     string                     `json:"kind"` // "fleet"
	Wrappers map[string]json.RawMessage `json:"wrappers"`
}

// MarshalJSON persists every wrapper in the fleet.
func (f *Fleet) MarshalJSON() ([]byte, error) {
	out := fleetPersisted{Version: 1, Kind: "fleet", Wrappers: map[string]json.RawMessage{}}
	for key, w := range f.wrappers {
		data, err := w.MarshalJSON()
		if err != nil {
			return nil, fmt.Errorf("wrapper: fleet entry %q: %w", key, err)
		}
		out.Wrappers[key] = data
	}
	return json.Marshal(out)
}

// LoadFleet restores a fleet persisted with MarshalJSON.
func LoadFleet(data []byte, opt machine.Options) (*Fleet, error) {
	var p fleetPersisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("wrapper: decoding fleet: %w", err)
	}
	if p.Version != 1 || p.Kind != "fleet" {
		return nil, fmt.Errorf("wrapper: not a version-1 fleet (version %d, kind %q)", p.Version, p.Kind)
	}
	f := NewFleet()
	for key, raw := range p.Wrappers {
		w, err := Load(raw, opt)
		if err != nil {
			return nil, fmt.Errorf("wrapper: fleet entry %q: %w", key, err)
		}
		f.Add(key, w)
	}
	return f, nil
}
