package wrapper

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"resilex/internal/machine"
)

// Fleet is a registry of named wrappers — one per site — with shared
// persistence: the operating unit of a shopbot that harvests many vendors.
// A Fleet maps a site key (e.g. the vendor's hostname) to its trained
// wrapper; ExtractFrom dispatches by key and Probe tries every wrapper when
// the key is unknown.
//
// A Fleet is safe for concurrent use: lookups and extractions take a read
// lock, Add/Remove take the write lock. Wrappers themselves are immutable
// once trained, so extraction never blocks extraction.
type Fleet struct {
	mu       sync.RWMutex
	wrappers map[string]*Wrapper
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{wrappers: make(map[string]*Wrapper)}
}

// Add registers (or replaces) the wrapper for a site key.
func (f *Fleet) Add(key string, w *Wrapper) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wrappers[key] = w
}

// Get returns the wrapper for the key, or nil.
func (f *Fleet) Get(key string) *Wrapper {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.wrappers[key]
}

// Remove deletes a site's wrapper.
func (f *Fleet) Remove(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.wrappers, key)
}

// Len reports the number of registered wrappers.
func (f *Fleet) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.wrappers)
}

// Keys returns the registered site keys in sorted order.
func (f *Fleet) Keys() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.keysLocked()
}

func (f *Fleet) keysLocked() []string {
	out := make([]string, 0, len(f.wrappers))
	for k := range f.wrappers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExtractFrom runs the named site's wrapper on the page. Unregistered keys
// fail with an error wrapping ErrUnknownKey.
func (f *Fleet) ExtractFrom(key, html string) (Region, error) {
	return f.ExtractFromContext(context.Background(), key, html)
}

// ExtractFromContext is ExtractFrom bounded by ctx.
func (f *Fleet) ExtractFromContext(ctx context.Context, key, html string) (Region, error) {
	w := f.Get(key)
	if w == nil {
		return Region{}, fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	return w.ExtractContext(ctx, html)
}

// Probe tries every wrapper on the page and returns the keys that extract
// successfully, sorted, with their regions — the recovery path when a page
// arrives without provenance. An unambiguous match (exactly one key) is the
// common case for distinct vendors. Wrappers are tried in deterministic
// (sorted) key order, so repeated probes of the same fleet do identical work.
func (f *Fleet) Probe(html string) map[string]Region {
	out, _ := f.ProbeContext(context.Background(), html)
	return out
}

// ProbeContext is Probe bounded by ctx: it stops trying further wrappers
// once the context expires and reports the partial claims alongside an error
// wrapping machine.ErrDeadline.
func (f *Fleet) ProbeContext(ctx context.Context, html string) (map[string]Region, error) {
	f.mu.RLock()
	keys := f.keysLocked()
	snapshot := make(map[string]*Wrapper, len(keys))
	for _, k := range keys {
		snapshot[k] = f.wrappers[k]
	}
	f.mu.RUnlock()
	out := map[string]Region{}
	for _, key := range keys {
		if err := (machine.Options{Ctx: ctx}).Err(); err != nil {
			return out, fmt.Errorf("wrapper: probe: %w", err)
		}
		if r, err := snapshot[key].ExtractContext(ctx, html); err == nil {
			out[key] = r
		}
	}
	return out, nil
}

// fleetPersisted is the JSON schema of a saved fleet.
type fleetPersisted struct {
	Version  int                        `json:"version"`
	Kind     string                     `json:"kind"` // "fleet"
	Wrappers map[string]json.RawMessage `json:"wrappers"`
}

// MarshalJSON persists every wrapper in the fleet.
func (f *Fleet) MarshalJSON() ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := fleetPersisted{Version: 1, Kind: "fleet", Wrappers: map[string]json.RawMessage{}}
	for key, w := range f.wrappers {
		data, err := w.MarshalJSON()
		if err != nil {
			return nil, fmt.Errorf("wrapper: fleet entry %q: %w", key, err)
		}
		out.Wrappers[key] = data
	}
	return json.Marshal(out)
}

// LoadFleet restores a fleet persisted with MarshalJSON. Undecodable
// payloads are classified under ErrMalformedInput.
func LoadFleet(data []byte, opt machine.Options) (*Fleet, error) {
	var p fleetPersisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding fleet: %v", ErrMalformedInput, err)
	}
	if p.Version != 1 || p.Kind != "fleet" {
		return nil, fmt.Errorf("%w: not a version-1 fleet (version %d, kind %q)", ErrMalformedInput, p.Version, p.Kind)
	}
	f := NewFleet()
	for key, raw := range p.Wrappers {
		w, err := Load(raw, opt)
		if err != nil {
			return nil, fmt.Errorf("wrapper: fleet entry %q: %w", key, err)
		}
		f.Add(key, w)
	}
	return f, nil
}
