package wrapper

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"resilex/internal/machine"
)

// fakeClock is an injectable deterministic clock for breaker-cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// markerByAttr is the test drift oracle: pages carrying data-target can be
// marked, others cannot.
func markerByAttr(html string) (Target, bool) {
	if strings.Contains(html, MarkerAttr) {
		return TargetMarker(), true
	}
	return Target{}, false
}

// supervisorFixture returns a supervisor over a one-site fleet ("vs", the
// Figure 1 wrapper) with a deterministic clock and no real sleeping.
func supervisorFixture(t *testing.T, cfg SupervisorConfig) (*Supervisor, *fakeClock) {
	t.Helper()
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	f.Add("vs", w)
	clock := newFakeClock()
	cfg.Now = clock.Now
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {}
	}
	return NewSupervisor(f, cfg), clock
}

func TestSupervisorRungWrapper(t *testing.T) {
	s, _ := supervisorFixture(t, SupervisorConfig{})
	out, err := s.Extract(context.Background(), "vs", fig1Novel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungWrapper || out.Key != "vs" {
		t.Fatalf("rung = %v, key = %q", out.Rung, out.Key)
	}
	if !strings.Contains(out.Region.Source, `type="text"`) {
		t.Errorf("extracted %q", out.Region.Source)
	}
	h := s.Health("vs")
	if h.Breaker != BreakerClosed || h.Extractions != 1 || h.Failures != 0 {
		t.Errorf("health = %+v", h)
	}
}

func TestSupervisorRungRefresh(t *testing.T) {
	s, _ := supervisorFixture(t, SupervisorConfig{Marker: markerByAttr})
	// fig1Future breaks the trained wrapper; the marker rescues it.
	out, err := s.Extract(context.Background(), "vs", fig1Future)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungRefresh || out.Key != "vs" {
		t.Fatalf("rung = %v, key = %q", out.Rung, out.Key)
	}
	if !strings.Contains(out.Region.Source, `type="text"`) {
		t.Errorf("extracted %q", out.Region.Source)
	}
	h := s.Health("vs")
	if h.Refreshes != 1 || h.Breaker != BreakerClosed {
		t.Errorf("health = %+v", h)
	}
	// The widened wrapper was swapped into the fleet: the same page now
	// serves at full fidelity, and the old layouts still extract.
	out2, err := s.Extract(context.Background(), "vs", fig1Future)
	if err != nil || out2.Rung != RungWrapper {
		t.Fatalf("after swap: rung = %v, err = %v", out2.Rung, err)
	}
	if _, err := s.Extract(context.Background(), "vs", fig1Top); err != nil {
		t.Errorf("old layout regressed after refresh swap: %v", err)
	}
}

func TestSupervisorRungProbe(t *testing.T) {
	s, _ := supervisorFixture(t, SupervisorConfig{})
	// Unknown site key, but a fleet wrapper claims the page unambiguously.
	out, err := s.Extract(context.Background(), "ghost", fig1Novel)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rung != RungProbe || out.Key != "vs" {
		t.Fatalf("rung = %v, key = %q", out.Rung, out.Key)
	}
}

func TestSupervisorMissReport(t *testing.T) {
	s, _ := supervisorFixture(t, SupervisorConfig{})
	ctx := context.Background()

	// Known key, unparseable page: the full ladder is attempted.
	_, err := s.Extract(ctx, "vs", `<i>junk</i>`)
	var miss *MissReport
	if !errors.As(err, &miss) {
		t.Fatalf("err = %v, want *MissReport", err)
	}
	if !errors.Is(err, ErrNoMatch) {
		t.Errorf("miss does not unwrap to ErrNoMatch: %v", err)
	}
	want := []Rung{RungWrapper, RungProbe, RungMiss}
	if len(miss.Attempted) != len(want) {
		t.Fatalf("attempted = %v", miss.Attempted)
	}
	for i, r := range want {
		if miss.Attempted[i] != r {
			t.Fatalf("attempted = %v, want %v", miss.Attempted, want)
		}
	}

	// Unknown key: rung 1 is skipped and the primary cause is ErrUnknownKey.
	_, err = s.Extract(ctx, "ghost", `<i>junk</i>`)
	if !errors.As(err, &miss) || !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown key: err = %v", err)
	}

	// Empty page: the miss is classified as malformed input.
	_, err = s.Extract(ctx, "vs", "   ")
	if !errors.As(err, &miss) || !errors.Is(err, ErrMalformedInput) {
		t.Errorf("empty page: err = %v", err)
	}
	if s.Health("vs").Misses == 0 {
		t.Error("misses not counted")
	}
}

func TestSupervisorBreakerLifecycle(t *testing.T) {
	s, clock := supervisorFixture(t, SupervisorConfig{
		BreakerThreshold: 3,
		Cooldown:         time.Minute,
	})
	ctx := context.Background()

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := s.Extract(ctx, "vs", `<i>junk</i>`); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if h := s.Health("vs"); h.Breaker != BreakerOpen || h.ConsecutiveFailures != 3 {
		t.Fatalf("health after threshold = %+v", h)
	}

	// While open, the wrapper is quarantined: rung 1 is not attempted even
	// for a page it would have extracted.
	_, err := s.Extract(ctx, "vs", `<i>junk</i>`)
	var miss *MissReport
	if !errors.As(err, &miss) || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined err = %v", err)
	}
	for _, r := range miss.Attempted {
		if r == RungWrapper {
			t.Fatal("rung 1 ran while quarantined")
		}
	}

	// After the cooldown the breaker half-opens; a successful trial closes it.
	clock.Advance(2 * time.Minute)
	out, err := s.Extract(ctx, "vs", fig1Novel)
	if err != nil || out.Rung != RungWrapper {
		t.Fatalf("half-open trial: %v, %v", out, err)
	}
	if h := s.Health("vs"); h.Breaker != BreakerClosed || h.ConsecutiveFailures != 0 {
		t.Errorf("health after recovery = %+v", h)
	}
}

func TestSupervisorHalfOpenTrialFailureReopens(t *testing.T) {
	s, clock := supervisorFixture(t, SupervisorConfig{
		BreakerThreshold: 2,
		Cooldown:         time.Minute,
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		s.Extract(ctx, "vs", `<i>junk</i>`)
	}
	if s.Health("vs").Breaker != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	clock.Advance(2 * time.Minute)
	// The half-open trial fails: one strike re-opens immediately, without
	// needing a full threshold of failures.
	s.Extract(ctx, "vs", `<i>junk</i>`)
	if h := s.Health("vs"); h.Breaker != BreakerOpen {
		t.Errorf("health after failed trial = %+v", h)
	}
}

func TestSupervisorProbeSuccessHalfOpens(t *testing.T) {
	s, _ := supervisorFixture(t, SupervisorConfig{BreakerThreshold: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		s.Extract(ctx, "vs", `<i>junk</i>`)
	}
	if s.Health("vs").Breaker != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	// A quarantined site's wrapper claiming a page during the probe rung is
	// evidence of life: the breaker half-opens and the claim serves the
	// request.
	out, err := s.Extract(ctx, "vs", fig1Novel)
	if err != nil || out.Rung != RungProbe || out.Key != "vs" {
		t.Fatalf("probe serve: %+v, %v", out, err)
	}
	if h := s.Health("vs"); h.Breaker != BreakerHalfOpen {
		t.Fatalf("breaker = %v after probe claim, want half-open", h.Breaker)
	}
	// The next request is the trial; success closes the breaker.
	out, err = s.Extract(ctx, "vs", fig1Novel)
	if err != nil || out.Rung != RungWrapper {
		t.Fatalf("trial: %+v, %v", out, err)
	}
	if h := s.Health("vs"); h.Breaker != BreakerClosed {
		t.Errorf("breaker = %v after trial, want closed", h.Breaker)
	}
}

func TestSupervisorRefreshRetryBackoff(t *testing.T) {
	var slept []time.Duration
	s, _ := supervisorFixture(t, SupervisorConfig{
		Marker:          markerByAttr,
		RefreshAttempts: 3,
		RefreshBackoff:  10 * time.Millisecond,
		Sleep:           func(d time.Duration) { slept = append(slept, d) },
		// Rand 0.5 makes the jitter multiplier exactly 1, keeping the
		// doubling sequence deterministic.
		Rand: func() float64 { return 0.5 },
	})
	// The page fails the wrapper and the marker marks a P element — the
	// refresh rejects the symbol mismatch every time, a retryable failure.
	_, err := s.Extract(context.Background(), "vs", `<p data-target></p>`)
	var miss *MissReport
	if !errors.As(err, &miss) {
		t.Fatalf("err = %v", err)
	}
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoff sleeps = %v, want [10ms 20ms]", slept)
	}
}

func TestSupervisorRefreshBudgetNotRetried(t *testing.T) {
	var slept int
	s, _ := supervisorFixture(t, SupervisorConfig{
		Marker:          markerByAttr,
		RefreshAttempts: 3,
		RefreshOptions:  machine.Options{MaxStates: 2},
		Sleep:           func(time.Duration) { slept++ },
	})
	// The refresh rung is starved by RefreshOptions: a budget failure is
	// deterministic, so it must not be retried.
	_, err := s.Extract(context.Background(), "vs", fig1Future)
	var miss *MissReport
	if !errors.As(err, &miss) {
		t.Fatalf("err = %v", err)
	}
	if slept != 0 {
		t.Errorf("budget failure retried %d times", slept)
	}
	// The serving wrapper is untouched by the failed refresh.
	if out, err := s.Extract(context.Background(), "vs", fig1Novel); err != nil || out.Rung != RungWrapper {
		t.Errorf("serving wrapper damaged: %+v, %v", out, err)
	}
}

func TestSupervisorHealthReport(t *testing.T) {
	s, _ := supervisorFixture(t, SupervisorConfig{})
	s.Extract(context.Background(), "vs", fig1Novel)
	s.Extract(context.Background(), "ghost", `<i>junk</i>`)
	rep := s.HealthReport()
	if len(rep) != 2 {
		t.Fatalf("report keys = %d", len(rep))
	}
	if rep["vs"].Extractions != 1 || rep["ghost"].Misses != 1 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRungAndBreakerStrings(t *testing.T) {
	for want, got := range map[string]string{
		"wrapper":   RungWrapper.String(),
		"refresh":   RungRefresh.String(),
		"probe":     RungProbe.String(),
		"miss":      RungMiss.String(),
		"closed":    BreakerClosed.String(),
		"open":      BreakerOpen.String(),
		"half-open": BreakerHalfOpen.String(),
	} {
		if want != got {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if Rung(99).String() == "" || BreakerState(99).String() == "" {
		t.Error("out-of-range String() empty")
	}
}
