package wrapper

import (
	"fmt"
	"strings"
)

// LabeledPage is a page with its expected extraction, for wrapper scoring.
type LabeledPage struct {
	HTML   string
	Target Target
}

// Outcome classifies one page's evaluation result.
type Outcome int

// Evaluation outcomes.
const (
	Hit      Outcome = iota // extracted exactly the labeled element
	Miss                    // expression did not parse the page
	Wrong                   // parsed, but extracted a different element
	BadLabel                // the label itself could not be resolved
)

// String names the outcome for logs and reports.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Wrong:
		return "wrong"
	case BadLabel:
		return "bad-label"
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// PageResult is the evaluation of one labeled page.
type PageResult struct {
	Outcome Outcome
	Got     Region // valid when Outcome is Hit or Wrong
	Want    int    // labeled token index; -1 when BadLabel
	Detail  string
}

// Report aggregates an evaluation run.
type Report struct {
	Pages []PageResult
}

// Hits counts exact extractions.
func (r Report) Hits() int { return r.count(Hit) }

// Misses counts unparsed pages.
func (r Report) Misses() int { return r.count(Miss) }

// Wrongs counts mis-extractions — the dangerous failure mode: the robot
// believes it found the element but grabbed the wrong one.
func (r Report) Wrongs() int { return r.count(Wrong) }

func (r Report) count(o Outcome) int {
	n := 0
	for _, p := range r.Pages {
		if p.Outcome == o {
			n++
		}
	}
	return n
}

// Rate returns the hit fraction over resolvable labels, in [0,1]; 0 when no
// label resolved.
func (r Report) Rate() float64 {
	valid := 0
	for _, p := range r.Pages {
		if p.Outcome != BadLabel {
			valid++
		}
	}
	if valid == 0 {
		return 0
	}
	return float64(r.Hits()) / float64(valid)
}

// String renders a one-line summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d pages: %d hit, %d miss, %d wrong", len(r.Pages), r.Hits(), r.Misses(), r.Wrongs())
	if bad := r.count(BadLabel); bad > 0 {
		fmt.Fprintf(&b, ", %d bad-label", bad)
	}
	fmt.Fprintf(&b, " (%.1f%%)", 100*r.Rate())
	return b.String()
}

// TupleLabeledPage is a page with its expected slot extractions.
type TupleLabeledPage struct {
	HTML    string
	Targets []Target // one per slot, in order
}

// EvaluateTuple scores a tuple wrapper against labeled pages: a Hit
// requires every slot to land on its labeled element.
func (w *TupleWrapper) EvaluateTuple(pages []TupleLabeledPage) Report {
	var rep Report
	for _, pg := range pages {
		doc := w.mapper.Map(pg.HTML)
		if len(pg.Targets) != w.Arity() {
			rep.Pages = append(rep.Pages, PageResult{Outcome: BadLabel, Want: -1,
				Detail: fmt.Sprintf("label has %d targets, wrapper extracts %d", len(pg.Targets), w.Arity())})
			continue
		}
		want := make([]int, len(pg.Targets))
		bad := false
		for j, tg := range pg.Targets {
			idx, err := resolveTarget(doc, Sample{HTML: pg.HTML, Target: tg}, w.tab)
			if err != nil {
				rep.Pages = append(rep.Pages, PageResult{Outcome: BadLabel, Want: -1, Detail: err.Error()})
				bad = true
				break
			}
			want[j] = idx
		}
		if bad {
			continue
		}
		vector, ok, err := w.tuple.Extract(doc.Syms)
		if err != nil || !ok {
			detail := "expression does not parse the page"
			if err != nil {
				detail = err.Error()
			}
			rep.Pages = append(rep.Pages, PageResult{Outcome: Miss, Want: want[0], Detail: detail})
			continue
		}
		allMatch := true
		for j := range vector {
			if vector[j] != want[j] {
				allMatch = false
				break
			}
		}
		got := Region{TokenIndex: vector[0], Span: doc.SpanOf(vector[0]), Source: doc.Source(vector[0])}
		if allMatch {
			rep.Pages = append(rep.Pages, PageResult{Outcome: Hit, Want: want[0], Got: got})
		} else {
			rep.Pages = append(rep.Pages, PageResult{Outcome: Wrong, Want: want[0], Got: got,
				Detail: fmt.Sprintf("extracted %v, labeled %v", vector, want)})
		}
	}
	return rep
}

// Evaluate scores the wrapper against labeled pages. It never returns an
// error: label-resolution failures are reported per page as BadLabel.
func (w *Wrapper) Evaluate(pages []LabeledPage) Report {
	var rep Report
	for _, pg := range pages {
		doc := w.mapper.Map(pg.HTML)
		want, err := resolveTarget(doc, Sample{HTML: pg.HTML, Target: pg.Target}, w.tab)
		if err != nil {
			rep.Pages = append(rep.Pages, PageResult{Outcome: BadLabel, Want: -1, Detail: err.Error()})
			continue
		}
		pos, ok := w.matcher.Find(doc.Syms)
		switch {
		case !ok:
			rep.Pages = append(rep.Pages, PageResult{Outcome: Miss, Want: want, Detail: "expression does not parse the page"})
		case pos == want:
			rep.Pages = append(rep.Pages, PageResult{
				Outcome: Hit, Want: want,
				Got: Region{TokenIndex: pos, Span: doc.SpanOf(pos), Source: doc.Source(pos)},
			})
		default:
			rep.Pages = append(rep.Pages, PageResult{
				Outcome: Wrong, Want: want,
				Got:    Region{TokenIndex: pos, Span: doc.SpanOf(pos), Source: doc.Source(pos)},
				Detail: fmt.Sprintf("extracted token %d, labeled %d", pos, want),
			})
		}
	}
	return rep
}
