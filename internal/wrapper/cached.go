package wrapper

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/machine"
)

// LoadCached is Load backed by a compiled-artifact cache: the expensive part
// of restoring a persisted wrapper — reparsing the expression and
// determinizing its components — is looked up by content address and
// compiled at most once per distinct expression, no matter how many
// concurrent requests carry it (see extract.Cache). The returned wrapper
// shares the cached symbol table, expression and matcher (all safe for
// concurrent use) and owns only its tokenizer configuration.
//
// The cache may be any ArtifactCache tier stack — the in-memory
// *extract.Cache or an *extract.TieredCache whose disk tier makes restored
// wrappers survive process restarts. A nil cache degrades to plain Load.
// Error classification matches Load: undecodable payloads are
// ErrMalformedInput; budget and deadline exhaustion during a cold compile
// pass through wrapping machine.ErrBudget and machine.ErrDeadline.
func LoadCached(data []byte, opt machine.Options, cache extract.ArtifactCache) (*Wrapper, error) {
	return LoadCachedCtx(context.Background(), data, opt, cache)
}

// ctxArtifactCache is the optional context-aware load surface of a cache
// tier stack (extract.TieredCache.LoadCtx): the lookup joins the request's
// trace and attributes the satisfying tier.
type ctxArtifactCache interface {
	LoadCtx(ctx context.Context, src string, sigmaNames []string, opt machine.Options) (*extract.Compiled, error)
}

// LoadCachedCtx is LoadCached with the caller's context threaded through to
// the cache, so tier stacks that implement a context-aware load record the
// lookup (tier, trace span) against the request that triggered it.
func LoadCachedCtx(ctx context.Context, data []byte, opt machine.Options, cache extract.ArtifactCache) (*Wrapper, error) {
	if cache == nil {
		return Load(data, opt)
	}
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding wrapper: %v", ErrMalformedInput, err)
	}
	if p.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported wrapper version %d", ErrMalformedInput, p.Version)
	}
	var comp *extract.Compiled
	var err error
	if cc, ok := cache.(ctxArtifactCache); ok {
		comp, err = cc.LoadCtx(ctx, p.Expr, p.Sigma, opt)
	} else {
		comp, err = cache.Load(p.Expr, p.Sigma, opt)
	}
	if err != nil {
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			return nil, fmt.Errorf("wrapper: reparsing expression: %w", err)
		}
		return nil, fmt.Errorf("%w: reparsing expression: %v", ErrMalformedInput, err)
	}
	cfg := Config{DropEndTags: p.DropEndTags, KeepText: p.KeepText, AttrKeys: p.AttrKeys, Skip: p.Skip, Options: opt}
	return &Wrapper{
		sbox: &streamBox{},
		tab:  comp.Tab, mapper: cfg.mapper(comp.Tab), expr: comp.Expr, matcher: comp.Matcher,
		strategy: p.Strategy, cfg: cfg,
	}, nil
}

// LoadFleetCached is LoadFleet with every member restored through LoadCached,
// so fleets that share expressions across sites — or fleets reloaded on every
// deploy — compile each distinct expression once.
func LoadFleetCached(data []byte, opt machine.Options, cache extract.ArtifactCache) (*Fleet, error) {
	var p fleetPersisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding fleet: %v", ErrMalformedInput, err)
	}
	if p.Version != 1 || p.Kind != "fleet" {
		return nil, fmt.Errorf("%w: not a version-1 fleet (version %d, kind %q)", ErrMalformedInput, p.Version, p.Kind)
	}
	f := NewFleet()
	for key, raw := range p.Wrappers {
		w, err := LoadCached(raw, opt, cache)
		if err != nil {
			return nil, fmt.Errorf("wrapper: fleet entry %q: %w", key, err)
		}
		f.Add(key, w)
	}
	return f, nil
}
