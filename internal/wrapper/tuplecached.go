package wrapper

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/spanner"
)

// LoadTupleCached is LoadTuple backed by a compiled-artifact cache tier
// stack: the reparse + determinization of the k-ary expression is looked up
// by content address (extract.KeyTuple, domain-separated from single-pivot
// keys) and compiled at most once per distinct expression. The returned
// wrapper shares the cached symbol table and tuple and owns only its
// tokenizer configuration. A nil cache degrades to plain LoadTuple; error
// classification matches it.
func LoadTupleCached(data []byte, opt machine.Options, cache extract.TupleArtifactCache) (*TupleWrapper, error) {
	return LoadTupleCachedCtx(context.Background(), data, opt, cache)
}

// ctxTupleArtifactCache is the optional context-aware tuple load surface
// (extract.TieredCache.LoadTupleCtx).
type ctxTupleArtifactCache interface {
	LoadTupleCtx(ctx context.Context, src string, sigmaNames []string, opt machine.Options) (*extract.CompiledTuple, error)
}

// LoadTupleCachedCtx is LoadTupleCached with the caller's context threaded
// through to the cache, mirroring LoadCachedCtx.
func LoadTupleCachedCtx(ctx context.Context, data []byte, opt machine.Options, cache extract.TupleArtifactCache) (*TupleWrapper, error) {
	if cache == nil {
		return LoadTuple(data, opt)
	}
	var p tuplePersisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding tuple wrapper: %v", ErrMalformedInput, err)
	}
	if p.Version != 1 || p.Kind != "tuple" {
		return nil, fmt.Errorf("%w: not a version-1 tuple wrapper (version %d, kind %q)", ErrMalformedInput, p.Version, p.Kind)
	}
	var comp *extract.CompiledTuple
	var err error
	if cc, ok := cache.(ctxTupleArtifactCache); ok {
		comp, err = cc.LoadTupleCtx(ctx, p.Expr, p.Sigma, opt)
	} else {
		comp, err = cache.LoadTuple(p.Expr, p.Sigma, opt)
	}
	if err != nil {
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			return nil, fmt.Errorf("wrapper: reparsing tuple expression: %w", err)
		}
		return nil, fmt.Errorf("%w: reparsing tuple expression: %v", ErrMalformedInput, err)
	}
	cfg := Config{DropEndTags: p.DropEndTags, KeepText: p.KeepText, AttrKeys: p.AttrKeys, Skip: p.Skip, Options: opt}
	return &TupleWrapper{tab: comp.Tab, mapper: cfg.mapper(comp.Tab), tuple: comp.Tuple, cfg: cfg}, nil
}

// program returns the wrapper's compiled multi-split spanner program,
// building it on first use. The program is immutable and shared by every
// subsequent ExtractAll; compile failure is sticky only for this wrapper
// instance.
func (w *TupleWrapper) program() (*spanner.Program, error) {
	w.prog.once.Do(func() {
		w.prog.p, w.prog.err = spanner.Compile(w.tuple, w.cfg.Options)
	})
	return w.prog.p, w.prog.err
}

// ExtractAll runs the tuple wrapper as a document spanner: every extraction
// vector on the page, one []Region per record, in document order. Where
// Extract demands the unique vector (and errors on ambiguity), ExtractAll
// embraces multiplicity — the record workload. A page with no records
// returns an empty slice and no error; budget and deadline exhaustion
// return errors wrapping machine.ErrBudget / machine.ErrDeadline.
func (w *TupleWrapper) ExtractAll(html string) ([][]Region, error) {
	return w.ExtractAllContext(context.Background(), html)
}

// ExtractAllContext is ExtractAll bounded by ctx in addition to the
// wrapper's own training options.
func (w *TupleWrapper) ExtractAllContext(ctx context.Context, html string) ([][]Region, error) {
	prog, err := w.program()
	if err != nil {
		return nil, err
	}
	doc := w.mapper.Map(html)
	m, err := prog.RunContext(ctx, doc.Syms)
	if err != nil {
		return nil, err
	}
	records := [][]Region{}
	for {
		vec, ok, err := m.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return records, nil
		}
		rec := make([]Region, len(vec))
		for j, pos := range vec {
			rec[j] = Region{TokenIndex: pos, Span: doc.SpanOf(pos), Source: doc.Source(pos)}
		}
		records = append(records, rec)
	}
}

// TupleFleet is a registry of named tuple wrappers — the k-ary counterpart
// of Fleet, with the same concurrency contract: lookups take a read lock,
// Add/Remove the write lock, and wrappers are immutable once built.
type TupleFleet struct {
	mu       sync.RWMutex
	wrappers map[string]*TupleWrapper
}

// NewTupleFleet returns an empty tuple fleet.
func NewTupleFleet() *TupleFleet {
	return &TupleFleet{wrappers: make(map[string]*TupleWrapper)}
}

// Add registers (or replaces) the tuple wrapper for a site key.
func (f *TupleFleet) Add(key string, w *TupleWrapper) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.wrappers[key] = w
}

// Get returns the tuple wrapper for the key, or nil.
func (f *TupleFleet) Get(key string) *TupleWrapper {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.wrappers[key]
}

// Remove deletes a site's tuple wrapper.
func (f *TupleFleet) Remove(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.wrappers, key)
}

// Len reports the number of registered tuple wrappers.
func (f *TupleFleet) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.wrappers)
}

// Keys returns the registered site keys in sorted order.
func (f *TupleFleet) Keys() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.wrappers))
	for k := range f.wrappers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
