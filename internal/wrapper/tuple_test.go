package wrapper

import (
	"errors"
	"strings"
	"testing"

	"resilex/internal/machine"
)

const tupleSample1 = `<h1>Parts List</h1>
<table>
<tr><td data-target>bolt M4</td><td data-target>$0.10</td></tr>
</table>`

const tupleSample2 = `<p>updated daily</p>
<table>
<tr><th>name</th><th>price</th></tr>
<tr><td data-target>bolt M4</td><td data-target>$0.12</td></tr>
</table>`

const tupleLive = `<h1>Parts List</h1><p>new!</p>
<table>
<tr><th>name</th><th>price</th></tr>
<tr><td>nut M4</td><td>$0.08</td></tr>
</table>`

func TestTrainTupleEndToEnd(t *testing.T) {
	w, err := TrainTuple([]Sample{
		{HTML: tupleSample1},
		{HTML: tupleSample2},
	}, Config{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	if w.Arity() != 2 {
		t.Fatalf("arity = %d", w.Arity())
	}
	regions, err := w.Extract(tupleLive)
	if err != nil {
		t.Fatalf("live extract: %v", err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	// Both slots are TD cells of the data row.
	for j, r := range regions {
		if !strings.HasPrefix(r.Source, "<td") {
			t.Errorf("slot %d = %q", j, r.Source)
		}
	}
	if regions[0].Span.Start >= regions[1].Span.Start {
		t.Error("slots out of order")
	}
}

func TestTrainTupleErrors(t *testing.T) {
	if _, err := TrainTuple(nil, Config{}); err == nil {
		t.Error("empty training set accepted")
	}
	// No marks at all.
	if _, err := TrainTuple([]Sample{{HTML: `<p></p>`}}, Config{}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("no marks: %v", err)
	}
	// Arity mismatch across samples.
	_, err := TrainTuple([]Sample{
		{HTML: `<td data-target></td><td data-target></td>`},
		{HTML: `<td data-target></td>`},
	}, Config{})
	if err == nil {
		t.Error("arity mismatch accepted")
	}
	// Marked tag filtered out.
	if _, err := TrainTuple([]Sample{{HTML: `<br data-target>`}}, Config{Skip: []string{"BR"}}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("filtered mark: %v", err)
	}
}

func TestTrainTupleMiss(t *testing.T) {
	w, err := TrainTuple([]Sample{{HTML: tupleSample1}}, Config{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Extract(`<p>nothing</p>`); !errors.Is(err, ErrNotExtracted) {
		t.Errorf("err = %v", err)
	}
}

func TestTuplePersistenceRoundTrip(t *testing.T) {
	w, err := TrainTuple([]Sample{
		{HTML: tupleSample1},
		{HTML: tupleSample2},
	}, Config{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !IsTuplePayload(data) {
		t.Error("payload not recognized as tuple")
	}
	w2, err := LoadTuple(data, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err1 := w.Extract(tupleLive)
	r2, err2 := w2.Extract(tupleLive)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("errs: %v vs %v", err1, err2)
	}
	for j := range r1 {
		if r1[j].Span != r2[j].Span {
			t.Errorf("slot %d differs after reload", j)
		}
	}
	// A plain wrapper payload is rejected by LoadTuple and vice versa.
	plain, err := Train([]Sample{{HTML: `<form><input data-target></form>`}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := plain.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if IsTuplePayload(pd) {
		t.Error("plain wrapper recognized as tuple")
	}
	if _, err := LoadTuple(pd, machine.Options{}); err == nil {
		t.Error("LoadTuple accepted a plain wrapper")
	}
}

func TestTupleRefresh(t *testing.T) {
	w, err := TrainTuple([]Sample{{HTML: tupleSample1}}, Config{KeepText: true})
	if err != nil {
		t.Fatal(err)
	}
	// The single-sample wrapper misses the header-row layout.
	if _, err := w.Extract(tupleLive); !errors.Is(err, ErrNotExtracted) {
		t.Skipf("single-sample wrapper unexpectedly handles the live page: %v", err)
	}
	w2, err := w.Refresh(Sample{HTML: tupleSample2})
	if err != nil {
		t.Fatal(err)
	}
	regions, err := w2.Extract(tupleLive)
	if err != nil {
		t.Fatalf("refreshed tuple wrapper: %v", err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	// Training pages still extract.
	if _, err := w2.Extract(tupleSample1); err != nil {
		t.Errorf("original sample regressed: %v", err)
	}
	// Restored wrappers cannot refresh.
	data, err := w2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	w3, err := LoadTuple(data, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w3.Refresh(Sample{HTML: tupleSample1}); err == nil {
		t.Error("provenance-free tuple wrapper refreshed")
	}
	// Arity mismatch in the new sample.
	if _, err := w2.Refresh(Sample{HTML: `<td data-target>x</td>`}); err == nil {
		t.Error("arity-mismatched refresh accepted")
	}
}
