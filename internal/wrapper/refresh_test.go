package wrapper

import (
	"errors"
	"strings"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
)

// A radically different future layout the original wrapper cannot parse.
const fig1Future = `<div class="search"><span>find parts</span>
<form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
</form></div>`

func TestRefreshLearnsNewLayout(t *testing.T) {
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	// The future page breaks the wrapper (no H1 anchor, SPAN/DIV tags).
	if _, err := w.Extract(fig1Future); !errors.Is(err, ErrNotExtracted) {
		t.Fatalf("future page unexpectedly parsed: %v", err)
	}
	// One marked sample refreshes it.
	w2, err := w.Refresh(Sample{HTML: fig1Future, Target: TargetMarker()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w2.Strategy(), "refreshed") {
		t.Errorf("strategy = %q", w2.Strategy())
	}
	r, err := w2.Extract(fig1Future)
	if err != nil || !strings.Contains(r.Source, `type="text"`) {
		t.Fatalf("refreshed wrapper on future page: %q, %v", r.Source, err)
	}
	// Monotonicity (⪯): the original pages still extract identically.
	for i, page := range []string{fig1Top, fig1Bottom, fig1Novel} {
		r1, err1 := w.Extract(page)
		r2, err2 := w2.Extract(page)
		if err1 == nil && (err2 != nil || r1.Span != r2.Span) {
			t.Errorf("page %d regressed after refresh: %v/%v vs %v/%v", i, r1, err1, r2, err2)
		}
	}
}

func TestRefreshErrors(t *testing.T) {
	w, err := Train([]Sample{{HTML: fig1Top, Target: TargetMarker()}}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	// Unresolvable target.
	if _, err := w.Refresh(Sample{HTML: `<p></p>`, Target: TargetMarker()}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("err = %v", err)
	}
	// Mark symbol mismatch: wrapper extracts INPUT, sample marks P.
	if _, err := w.Refresh(Sample{HTML: `<p data-target></p>`, Target: TargetMarker()}); err == nil {
		t.Error("mismatched mark accepted")
	}
	// A genuinely conflicting sample: identical context, different target.
	// The original marks the 2nd input; refresh with the SAME page but the
	// 1st input marked must fail as ambiguous.
	conflict := strings.Replace(
		strings.Replace(fig1Top, ` name="value" data-target`, ` name="value"`, 1),
		`type="image" align="left" src="search.gif"`,
		`type="image" align="left" src="search.gif" data-target`, 1)
	if _, err := w.Refresh(Sample{HTML: conflict, Target: TargetMarker()}); !errors.Is(err, extract.ErrAmbiguous) {
		t.Errorf("conflicting sample: err = %v, want ErrAmbiguous", err)
	}
}

// TestRefreshBudgetExhaustion starves a refresh with a tiny state budget:
// the refresh must fail with a typed budget error — never panic — and the
// original wrapper must keep serving untouched.
func TestRefreshBudgetExhaustion(t *testing.T) {
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	starved := w.WithOptions(machine.Options{MaxStates: 2})
	_, err = starved.Refresh(Sample{HTML: fig1Future, Target: TargetMarker()})
	if !errors.Is(err, machine.ErrBudget) {
		t.Fatalf("starved refresh: err = %v, want ErrBudget", err)
	}
	// Both the original and the starved copy still extract (the compiled
	// matcher is shared and was never invalidated).
	for name, wr := range map[string]*Wrapper{"original": w, "starved": starved} {
		if r, err := wr.Extract(fig1Top); err != nil || !strings.Contains(r.Source, `type="text"`) {
			t.Errorf("%s wrapper damaged: %q, %v", name, r.Source, err)
		}
	}
}
