package wrapper

import "errors"

// The runtime error taxonomy. Every failure a caller can provoke with input
// — as opposed to an internal invariant breaking — is classified under one
// of these sentinels, so operators can route outcomes with errors.Is:
//
//	ErrNoMatch          the wrapper parsed the page but found no extraction
//	ErrMalformedInput   the input (page or persisted JSON) is unusable
//	ErrUnknownKey       the fleet has no wrapper registered for the site
//	ErrQuarantined      the site's circuit breaker is open
//	machine.ErrBudget   a construction exceeded its state budget
//	machine.ErrDeadline a construction or extraction ran out of time
//	extract.ErrAmbiguous a refresh sample conflicts with the wrapper
//
// ErrInternal never classifies caller mistakes: it is the recover() backstop
// wrapping a panic that escaped the library's own invariants, converted to
// an error so a serving process survives it.
var (
	// ErrNoMatch is the canonical name for ErrNotExtracted: the page
	// tokenized fine but the wrapper's expression does not parse it.
	ErrNoMatch = ErrNotExtracted

	// ErrMalformedInput classifies unusable input: persisted wrapper/fleet
	// JSON that does not decode, or pages that yield no tokens at all.
	ErrMalformedInput = errors.New("wrapper: malformed input")

	// ErrUnknownKey is returned by Fleet.ExtractFrom for unregistered sites.
	ErrUnknownKey = errors.New("wrapper: no wrapper registered for site")

	// ErrQuarantined is returned by the Supervisor while a site's circuit
	// breaker is open and the ladder found no fallback.
	ErrQuarantined = errors.New("wrapper: site quarantined by circuit breaker")

	// ErrInternal wraps a recovered panic from the extraction pipeline.
	ErrInternal = errors.New("wrapper: internal error (recovered panic)")
)
