package wrapper

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"resilex/internal/htmltok"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/perturb"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// The Figure 1 pages as HTML (faithful to the paper, minus typos).
const fig1Top = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

const fig1Bottom = `<table>
<tr><th><img src="supplier.gif"></th></tr>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>`

// A third variant no wrapper saw during training: extra rows, extra link.
const fig1Novel = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="deals.html">Hot Deals</a></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" />
<input type="radio" name="attr" value="1"> Keywords
</form></td></tr>
<tr><td>fine print</td></tr>
</table>`

func fig1Config() Config {
	return Config{Skip: []string{"BR"}}
}

// TestFigure1EndToEnd is experiment E1 at the HTML level: train on both
// Figure 1 pages, extract from each and from a novel variant.
func TestFigure1EndToEnd(t *testing.T) {
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.Strategy(), "+maximized") {
		t.Errorf("strategy = %q, expected a maximized wrapper", w.Strategy())
	}
	for i, page := range []string{fig1Top, fig1Bottom, fig1Novel} {
		r, err := w.Extract(page)
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		if !strings.Contains(r.Source, `type="text"`) {
			t.Errorf("page %d extracted %q, want the text input", i, r.Source)
		}
	}
}

func TestTargetSelectors(t *testing.T) {
	// ByIndex
	w, err := Train([]Sample{{HTML: fig1Top, Target: TargetIndex(6)}}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.Extract(fig1Top)
	if err != nil || !strings.Contains(r.Source, `type="text"`) {
		t.Errorf("ByIndex: %q, %v", r.Source, err)
	}
	// ByTag occurrence (second INPUT, 0-based 1).
	w, err = Train([]Sample{{HTML: fig1Top, Target: TargetTag("INPUT", 1)}}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	r, err = w.Extract(fig1Top)
	if err != nil || !strings.Contains(r.Source, `type="text"`) {
		t.Errorf("ByTag: %q, %v", r.Source, err)
	}
}

func TestTargetErrors(t *testing.T) {
	cases := []Sample{
		{HTML: `<p></p>`, Target: TargetMarker()},
		{HTML: `<p></p>`, Target: TargetIndex(10)},
		{HTML: `<p></p>`, Target: TargetTag("FORM", 0)},
		{HTML: `<p></p><p></p>`, Target: TargetTag("P", 5)},
	}
	for i, s := range cases {
		if _, err := Train([]Sample{s}, Config{}); !errors.Is(err, ErrNoTarget) {
			t.Errorf("case %d: err = %v, want ErrNoTarget", i, err)
		}
	}
	// Marked tag filtered out by Skip.
	s := Sample{HTML: `<br data-target>`, Target: TargetMarker()}
	if _, err := Train([]Sample{s}, Config{Skip: []string{"BR"}}); !errors.Is(err, ErrNoTarget) {
		t.Errorf("filtered marker: %v", err)
	}
}

func TestExtractFailure(t *testing.T) {
	w, err := Train([]Sample{{HTML: fig1Top, Target: TargetMarker()}}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Extract(`<html><body>nothing here</body></html>`); !errors.Is(err, ErrNotExtracted) {
		t.Errorf("err = %v, want ErrNotExtracted", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Load(data, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Strategy() != w.Strategy() {
		t.Errorf("strategy changed: %q vs %q", w2.Strategy(), w.Strategy())
	}
	for i, page := range []string{fig1Top, fig1Bottom, fig1Novel} {
		r1, err1 := w.Extract(page)
		r2, err2 := w2.Extract(page)
		if (err1 == nil) != (err2 == nil) || (err1 == nil && r1.Span != r2.Span) {
			t.Errorf("page %d: loaded wrapper differs: %v/%v %v/%v", i, r1, err1, r2, err2)
		}
	}
	// Corrupt payloads.
	if _, err := Load([]byte(`{`), machine.Options{}); err == nil {
		t.Error("corrupt JSON accepted")
	}
	if _, err := Load([]byte(`{"version":9}`), machine.Options{}); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := Load([]byte(`{"version":1,"expr":"(((","sigma":["P"]}`), machine.Options{}); err == nil {
		t.Error("bad expression accepted")
	}
}

// TestResilienceOrdering is experiment E8 in miniature: over seeded
// perturbations, the maximized wrapper survives at least as often as the
// merged one, which survives at least as often as the rigid one — and the
// gaps are strict in aggregate.
func TestResilienceOrdering(t *testing.T) {
	tab := symtab.NewTable()
	base, err := rx.ParseWord("P H1 /H1 P FORM INPUT INPUT P INPUT INPUT /FORM", tab)
	if err != nil {
		t.Fatal(err)
	}
	target := 6
	variant, err := rx.ParseWord("TABLE TR TD FORM INPUT INPUT P INPUT INPUT /FORM /TD /TR /TABLE", tab)
	if err != nil {
		t.Fatal(err)
	}
	variantTarget := 5
	p := perturb.New(tab, 11)
	sigma := symtab.NewAlphabet(base...).Union(symtab.NewAlphabet(variant...)).Union(p.Alphabet())

	examples := []learn.Example{
		{Doc: base, Target: target},
		{Doc: variant, Target: variantTarget},
	}
	rigid, err := TrainTokens(tab, examples[:1], sigma, Config{SkipMaximize: true})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := TrainTokens(tab, examples, sigma, Config{SkipMaximize: true})
	if err != nil {
		t.Fatal(err)
	}
	maxed, err := TrainTokens(tab, examples, sigma, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// One shared corpus of perturbed pages so all wrappers face identical
	// documents.
	type trial struct {
		doc []symtab.Symbol
		tgt int
	}
	var corpus []trial
	for i := 0; i < 200; i++ {
		doc, tgt, _ := p.Apply(base, target, 1+i%4)
		corpus = append(corpus, trial{doc, tgt})
	}
	score := func(w *Wrapper) int {
		hits := 0
		for _, tr := range corpus {
			if got, ok := w.ExtractTokens(tr.doc); ok && got == tr.tgt {
				hits++
			}
		}
		return hits
	}
	r, m, x := score(rigid), score(merged), score(maxed)
	t.Logf("resilience hits/200: rigid=%d merged=%d maximized=%d", r, m, x)
	if !(r <= m && m <= x) {
		t.Errorf("ordering violated: rigid=%d merged=%d maximized=%d", r, m, x)
	}
	if x <= r {
		t.Errorf("maximization gained nothing: rigid=%d maximized=%d", r, x)
	}
	if x < 150 {
		t.Errorf("maximized wrapper too fragile: %d/200", x)
	}
}

func TestWrapperAccessors(t *testing.T) {
	w, err := Train([]Sample{{HTML: fig1Top, Target: TargetMarker()}}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	if w.Table() == nil || w.String() == "" {
		t.Error("accessors broken")
	}
	if w.Expr().P() != w.Table().Lookup("INPUT") {
		t.Error("marked symbol should be INPUT")
	}
}

// End-to-end HTML resilience: the trained wrapper must keep extracting the
// exact byte region of the target as the page source is edited (experiment
// E8 with the full stack in the loop).
func TestHTMLResilienceEndToEnd(t *testing.T) {
	cfg := fig1Config()
	// Σ must include the redesign vocabulary the perturber can introduce.
	cfg.ExtraTags = []string{"P", "/P", "HR", "A", "/A", "IMG", "H2", "/H2",
		"DIV", "/DIV", "TR", "/TR", "TD", "/TD", "TABLE", "/TABLE"}
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fig1Top
	target, ok := perturb.FindTag(base, "INPUT", 1)
	if !ok {
		t.Fatal("target input not found")
	}
	hits, total := 0, 0
	for seed := int64(0); seed < 100; seed++ {
		p := perturb.NewHTML(seed)
		page, want := p.Apply(base, target, 1+int(seed)%4)
		total++
		r, err := w.Extract(page)
		if err != nil {
			continue
		}
		if r.Span == (htmltok.Span{Start: want.Start, End: want.End}) {
			hits++
		}
	}
	// Some edit sequences delete the H1 header both training pages share —
	// the wrapper's learned anchor — which no regular wrapper can survive;
	// those misses are inherent, not bugs. The bar is therefore below 100%.
	if hits < total*3/4 {
		t.Errorf("HTML resilience %d/%d", hits, total)
	}
}

// Trained wrappers are immutable after construction; concurrent extraction
// must be race-free (run tests with -race to enforce).
func TestConcurrentExtraction(t *testing.T) {
	w, err := Train([]Sample{
		{HTML: fig1Top, Target: TargetMarker()},
		{HTML: fig1Bottom, Target: TargetMarker()},
	}, fig1Config())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	pages := []string{fig1Top, fig1Bottom, fig1Novel}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				page := pages[(g+i)%len(pages)]
				if _, err := w.Extract(page); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
