// Package wrapper assembles the full resilient-extraction pipeline of the
// paper: tokenize sample HTML pages (internal/htmltok), induce an initial
// unambiguous extraction expression from the marked examples
// (internal/learn), maximize it for resilience (internal/extract, Section
// 6), and compile a matcher that maps extraction results back to byte
// regions of the live page.
//
// Around the single trained Wrapper sit the operational layers: Fleet
// keys wrappers by site and extracts in parallel batches on a worker pool
// (ExtractBatch, deterministic result ordering); LoadCached and
// LoadFleetCached restore persisted wrappers through the shared
// extract.Cache so identical expressions compile once per process; and
// Supervisor is the self-healing runtime — a per-request degradation
// ladder (wrapper → refresh → probe → miss) behind per-site circuit
// breakers, with its decisions observable via Telemetry.
package wrapper

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// MarkerAttr is the HTML attribute wrapgen-style training samples use to
// mark the target element: <input data-target ...>.
const MarkerAttr = "data-target"

// Target selects the element of interest in a training sample.
type Target struct {
	// ByIndex selects a token index directly when >= 0. Takes precedence.
	ByIndex int
	// Tag and Occurrence select the n-th (0-based) occurrence of the named
	// tag's symbol when ByIndex < 0. Tag must be the upper-case name.
	Tag        string
	Occurrence int
	// ByMarker selects the tag carrying the data-target attribute.
	ByMarker bool
}

// TargetIndex returns Target selecting a token index.
func TargetIndex(i int) Target { return Target{ByIndex: i} }

// TargetTag returns a Target selecting the n-th occurrence of tag.
func TargetTag(tag string, n int) Target { return Target{ByIndex: -1, Tag: tag, Occurrence: n} }

// TargetMarker returns a Target selecting the data-target-marked element.
func TargetMarker() Target { return Target{ByIndex: -1, ByMarker: true} }

// Sample is one training page with its marked target.
type Sample struct {
	HTML   string
	Target Target
}

// Config controls training.
type Config struct {
	// KeepEndTags, KeepText, AttrKeys and Skip configure the tokenizer; see
	// htmltok.Mapper. End tags are kept by default.
	DropEndTags bool
	KeepText    bool
	AttrKeys    []string
	Skip        []string
	// ExtraTags extends Σ with tags not present in any sample, so later
	// pages using them stay within the wrapper's alphabet.
	ExtraTags []string
	// SkipMaximize trains a merged-but-unmaximized wrapper (used by the
	// resilience ablation).
	SkipMaximize bool
	// Options bounds automaton construction; the zero value uses the
	// default budget.
	Options machine.Options
}

// Wrapper is a trained, compiled extractor. Create with Train or Load.
type Wrapper struct {
	tab      *symtab.Table
	mapper   *htmltok.Mapper
	expr     extract.Expr
	matcher  *extract.Matcher
	strategy string
	cfg      Config

	// sbox lazily compiles the one-pass streaming matcher (see Stream);
	// shared by all copies of the wrapper.
	sbox *streamBox

	// Training provenance, kept so Refresh can re-induce; nil for wrappers
	// restored with Load.
	examples []learn.Example
	sigma    symtab.Alphabet
}

// Region is an extraction result on a live page.
type Region struct {
	TokenIndex int
	Span       htmltok.Span
	Source     string // the page text of the extracted element
}

// Errors.
var (
	ErrNoTarget     = errors.New("wrapper: target not found in sample")
	ErrNotExtracted = errors.New("wrapper: expression does not parse the page")
)

func (c Config) mapper(tab *symtab.Table) *htmltok.Mapper {
	m := htmltok.NewMapper(tab)
	m.KeepEndTags = !c.DropEndTags
	m.KeepText = c.KeepText
	m.AttrKeys = c.AttrKeys
	if len(c.Skip) > 0 {
		m.Skip = map[string]bool{}
		for _, s := range c.Skip {
			m.Skip[s] = true
		}
	}
	return m
}

// Train builds a wrapper from marked samples: tokenize → induce → maximize
// → compile. The returned wrapper records which induction strategy and
// maximization path were used (see Strategy).
func Train(samples []Sample, cfg Config) (*Wrapper, error) {
	if len(samples) == 0 {
		return nil, learn.ErrNoExamples
	}
	tab := symtab.NewTable()
	mapper := cfg.mapper(tab)
	var examples []learn.Example
	var sigma symtab.Alphabet
	for i, s := range samples {
		doc := mapper.Map(s.HTML)
		idx, err := resolveTarget(doc, s, tab)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		examples = append(examples, learn.Example{Doc: doc.Syms, Target: idx})
		sigma = sigma.Union(doc.Alphabet())
	}
	for _, t := range cfg.ExtraTags {
		sigma = sigma.With(tab.Intern(t))
	}
	return trainExamples(tab, mapper, examples, sigma, cfg)
}

// TrainTokens builds a wrapper directly from token-level examples sharing
// the given symbol table; used by the synthetic-workload experiments.
func TrainTokens(tab *symtab.Table, examples []learn.Example, sigma symtab.Alphabet, cfg Config) (*Wrapper, error) {
	return trainExamples(tab, cfg.mapper(tab), examples, sigma, cfg)
}

func trainExamples(tab *symtab.Table, mapper *htmltok.Mapper, examples []learn.Example, sigma symtab.Alphabet, cfg Config) (*Wrapper, error) {
	res, err := learn.Induce(examples, sigma, cfg.Options)
	if err != nil {
		return nil, err
	}
	expr := res.Expr
	strategy := res.Strategy
	if !cfg.SkipMaximize {
		maxed, err := extract.Maximize(expr)
		switch {
		case err == nil:
			expr = maxed
			strategy += "+maximized"
		case errors.Is(err, extract.ErrNotApplicable) || errors.Is(err, extract.ErrUnbounded):
			// Keep the unmaximized induced expression; it is still correct
			// on the training distribution, only less resilient.
			strategy += "+unmaximized"
		default:
			return nil, err
		}
	}
	m, err := expr.Compile()
	if err != nil {
		return nil, err
	}
	return &Wrapper{
		sbox: &streamBox{},
		tab:  tab, mapper: mapper, expr: expr, matcher: m, strategy: strategy, cfg: cfg,
		examples: examples, sigma: sigma,
	}, nil
}

func resolveTarget(doc htmltok.Document, s Sample, tab *symtab.Table) (int, error) {
	t := s.Target
	if t.ByIndex >= 0 {
		if t.ByIndex >= len(doc.Syms) {
			return 0, fmt.Errorf("%w: index %d out of %d tokens", ErrNoTarget, t.ByIndex, len(doc.Syms))
		}
		return t.ByIndex, nil
	}
	if t.ByMarker {
		for _, raw := range htmltok.Scan(s.HTML) {
			if _, ok := raw.Attr(MarkerAttr); !ok {
				continue
			}
			for i, span := range doc.Spans {
				if span.Start == raw.Start && span.End == raw.End {
					return i, nil
				}
			}
			return 0, fmt.Errorf("%w: marked tag was filtered out by the tokenizer config", ErrNoTarget)
		}
		return 0, fmt.Errorf("%w: no tag carries %s", ErrNoTarget, MarkerAttr)
	}
	sym := tab.Lookup(t.Tag)
	if sym == symtab.None {
		return 0, fmt.Errorf("%w: tag %s never occurs", ErrNoTarget, t.Tag)
	}
	idx := doc.Find(sym, t.Occurrence)
	if idx < 0 {
		return 0, fmt.Errorf("%w: occurrence %d of %s not present", ErrNoTarget, t.Occurrence, t.Tag)
	}
	return idx, nil
}

// Extract runs the wrapper on a live page and returns the extracted region.
func (w *Wrapper) Extract(html string) (Region, error) {
	return w.ExtractContext(context.Background(), html)
}

// ExtractContext is Extract bounded by ctx: an expired or cancelled context
// fails fast with an error wrapping machine.ErrDeadline before any
// tokenization or matching work is done. Tokenization and matching are
// linear in the page, so the entry check bounds the whole call.
func (w *Wrapper) ExtractContext(ctx context.Context, html string) (Region, error) {
	if err := (machine.Options{Ctx: ctx}).Err(); err != nil {
		return Region{}, fmt.Errorf("wrapper: extract: %w", err)
	}
	doc := w.mapper.Map(html)
	pos, ok := w.matcher.Find(doc.Syms)
	if !ok {
		return Region{}, ErrNotExtracted
	}
	return Region{TokenIndex: pos, Span: doc.SpanOf(pos), Source: doc.Source(pos)}, nil
}

// WithOptions returns a copy of the wrapper whose subsequent Refresh and
// construction work runs under opt (budget and/or deadline). The compiled
// matcher is shared; extraction behavior is unchanged. The fault-injection
// harness uses this to starve a single refresh without rebuilding wrappers.
func (w *Wrapper) WithOptions(opt machine.Options) *Wrapper {
	c := *w
	c.cfg.Options = opt
	return &c
}

// ExtractTokens runs the wrapper on a pre-tokenized document.
func (w *Wrapper) ExtractTokens(doc []symtab.Symbol) (int, bool) {
	return w.matcher.Find(doc)
}

// Expr returns the wrapper's extraction expression.
func (w *Wrapper) Expr() extract.Expr { return w.expr }

// Table returns the wrapper's symbol table.
func (w *Wrapper) Table() *symtab.Table { return w.tab }

// Strategy describes how the wrapper was obtained, e.g.
// "merge-prefixes+maximized".
func (w *Wrapper) Strategy() string { return w.strategy }

// String renders the underlying extraction expression.
func (w *Wrapper) String() string { return w.expr.String(w.tab) }

// persisted is the JSON schema of a saved wrapper.
type persisted struct {
	Version     int      `json:"version"`
	Expr        string   `json:"expr"`
	Sigma       []string `json:"sigma"`
	Strategy    string   `json:"strategy"`
	DropEndTags bool     `json:"dropEndTags,omitempty"`
	KeepText    bool     `json:"keepText,omitempty"`
	AttrKeys    []string `json:"attrKeys,omitempty"`
	Skip        []string `json:"skip,omitempty"`
}

// MarshalJSON persists the wrapper: the expression in concrete syntax plus
// the alphabet and tokenizer configuration.
func (w *Wrapper) MarshalJSON() ([]byte, error) {
	names := make([]string, 0, w.expr.Sigma().Len())
	for _, s := range w.expr.Sigma().Symbols() {
		names = append(names, w.tab.Name(s))
	}
	return json.Marshal(persisted{
		Version:     1,
		Expr:        w.expr.String(w.tab),
		Sigma:       names,
		Strategy:    w.strategy,
		DropEndTags: w.cfg.DropEndTags,
		KeepText:    w.cfg.KeepText,
		AttrKeys:    w.cfg.AttrKeys,
		Skip:        w.cfg.Skip,
	})
}

// Load restores a wrapper persisted with MarshalJSON. Undecodable or
// wrong-version payloads are classified under ErrMalformedInput.
func Load(data []byte, opt machine.Options) (*Wrapper, error) {
	var p persisted
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: decoding wrapper: %v", ErrMalformedInput, err)
	}
	if p.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported wrapper version %d", ErrMalformedInput, p.Version)
	}
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll(p.Sigma...)...)
	expr, err := extract.Parse(p.Expr, tab, sigma, opt)
	if err != nil {
		// Exhaustion during reparse is the caller's budget/deadline, not a
		// corrupt payload — keep those sentinels detectable.
		if errors.Is(err, machine.ErrBudget) || errors.Is(err, machine.ErrDeadline) {
			return nil, fmt.Errorf("wrapper: reparsing expression: %w", err)
		}
		return nil, fmt.Errorf("%w: reparsing expression: %v", ErrMalformedInput, err)
	}
	m, err := expr.Compile()
	if err != nil {
		return nil, err
	}
	cfg := Config{DropEndTags: p.DropEndTags, KeepText: p.KeepText, AttrKeys: p.AttrKeys, Skip: p.Skip, Options: opt}
	return &Wrapper{
		sbox: &streamBox{},
		tab:  tab, mapper: cfg.mapper(tab), expr: expr, matcher: m,
		strategy: p.Strategy, cfg: cfg,
	}, nil
}
