package perturb

import (
	"testing"

	"resilex/internal/rx"
	"resilex/internal/symtab"
)

func setup(t *testing.T) (*symtab.Table, []symtab.Symbol, int) {
	t.Helper()
	tab := symtab.NewTable()
	doc, err := rx.ParseWord("P H1 /H1 P FORM INPUT INPUT P INPUT INPUT /FORM", tab)
	if err != nil {
		t.Fatal(err)
	}
	return tab, doc, 6 // second INPUT
}

func TestApplyTracksTarget(t *testing.T) {
	tab, doc, target := setup(t)
	input := tab.Lookup("INPUT")
	for seed := int64(0); seed < 50; seed++ {
		p := New(tab, seed)
		for _, n := range []int{0, 1, 3, 8} {
			out, nt, edits := p.Apply(doc, target, n)
			if nt < 0 || nt >= len(out) {
				t.Fatalf("seed %d n %d: target %d out of range %d", seed, n, nt, len(out))
			}
			if out[nt] != input {
				t.Fatalf("seed %d n %d: tracked target is %s, want INPUT (edits %v)",
					seed, n, tab.Name(out[nt]), edits)
			}
			if n == 0 && (len(edits) != 0 || len(out) != len(doc)) {
				t.Fatal("zero edits changed the document")
			}
		}
	}
}

// The identity "second INPUT of the first FORM" must be preserved by every
// edit: count INPUTs between the first FORM and the target.
func TestApplyPreservesTargetIdentity(t *testing.T) {
	tab, doc, target := setup(t)
	form, input := tab.Lookup("FORM"), tab.Lookup("INPUT")
	identity := func(d []symtab.Symbol, tgt int) (int, bool) {
		firstForm := -1
		for i, s := range d {
			if s == form {
				firstForm = i
				break
			}
		}
		if firstForm < 0 || tgt <= firstForm {
			return 0, false
		}
		count := 0
		for i := firstForm + 1; i <= tgt; i++ {
			if d[i] == input {
				count++
			}
		}
		return count, true
	}
	wantOrd, ok := identity(doc, target)
	if !ok || wantOrd != 2 {
		t.Fatalf("baseline identity = %d, %v", wantOrd, ok)
	}
	for seed := int64(0); seed < 100; seed++ {
		p := New(tab, seed)
		out, nt, edits := p.Apply(doc, target, 5)
		ord, ok := identity(out, nt)
		if !ok || ord != wantOrd {
			t.Fatalf("seed %d: identity became %d (%v); edits %v\ndoc: %s",
				seed, ord, ok, edits, tab.String(out))
		}
	}
}

func TestApplyDeterministic(t *testing.T) {
	tab, doc, target := setup(t)
	a1, t1, _ := New(tab, 7).Apply(doc, target, 6)
	a2, t2, _ := New(tab, 7).Apply(doc, target, 6)
	if t1 != t2 || tab.String(a1) != tab.String(a2) {
		t.Error("same seed produced different perturbations")
	}
	b, _, _ := New(tab, 8).Apply(doc, target, 6)
	if tab.String(a1) == tab.String(b) {
		t.Error("different seeds produced identical perturbations (suspicious)")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	tab, doc, target := setup(t)
	orig := tab.String(doc)
	p := New(tab, 3)
	p.Apply(doc, target, 10)
	if tab.String(doc) != orig {
		t.Error("input document mutated")
	}
}

func TestDeleteRespectsReserved(t *testing.T) {
	tab := symtab.NewTable()
	doc, err := rx.ParseWord("FORM INPUT INPUT /FORM", tab)
	if err != nil {
		t.Fatal(err)
	}
	p := New(tab, 1)
	// Restrict to deletion only.
	p.Snippets = p.Snippets[:1]
	for i := 0; i < 20; i++ {
		at, ok := p.pickDeletable(doc, 2)
		if !ok {
			// Every token is reserved or the target: correct.
			continue
		}
		t.Fatalf("picked deletable %d in all-reserved document", at)
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		InsertSnippet: "insert-snippet",
		DeleteToken:   "delete-token",
		WrapTarget:    "wrap-target",
		AppendSibling: "append-sibling",
		Op(99):        "op(99)",
	}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String = %q, want %q", int(op), got, want)
		}
	}
}

func TestAlphabetCoversVocabulary(t *testing.T) {
	tab := symtab.NewTable()
	p := New(tab, 0)
	a := p.Alphabet()
	for _, name := range []string{"P", "A", "/A", "TABLE", "DIV", "FORM", "INPUT"} {
		s := tab.Lookup(name)
		if s == symtab.None || !a.Contains(s) {
			t.Errorf("alphabet missing %s", name)
		}
	}
}
