package perturb

import (
	"math/rand"
	"sort"
	"strings"

	"resilex/internal/htmltok"
)

// HTMLPerturber applies the Section 3 change model directly to HTML source
// text, tracking the target element by byte span. Unlike Perturber (token
// level), this exercises the full wrapper stack — tokenizer, spans,
// extraction — so end-to-end studies measure exactly what a deployed robot
// would see.
type HTMLPerturber struct {
	rng *rand.Rand
	// Snippets are benign HTML fragments for insertion; none may contain
	// form/input markup (it would change the target's identity).
	Snippets []string
	// Wrappers are prefix/suffix pairs for embedding.
	Wrappers [][2]string
	// Siblings are fragments appended at document end; forms allowed.
	Siblings []string
}

// NewHTML returns a seeded HTML perturber with the standard vocabulary.
func NewHTML(seed int64) *HTMLPerturber {
	return &HTMLPerturber{
		rng: rand.New(rand.NewSource(seed)),
		Snippets: []string{
			`<p>`,
			`<hr>`,
			`<a href="x.html">more</a>`,
			`<img src="banner.gif">`,
			`<h2>Section</h2>`,
			`<tr><td>filler</td></tr>`,
			`<div><p>note</div>`,
		},
		Wrappers: [][2]string{
			{`<table><tr><td>`, `</td></tr></table>`},
			{`<div>`, `</div>`},
			{`<tr><td>`, `</td></tr>`},
		},
		Siblings: []string{
			`<form action="other.cgi"><input type="text" name="other"></form>`,
			`<table><tr><td><a href="legal.html">fine print</a></td></tr></table>`,
			`<p><a href="contact.html">contact</a>`,
		},
	}
}

// Apply performs n random edits on the page, returning the perturbed HTML
// and the new byte span of the target element. The target is identified by
// its byte span in the input and must be a single tag.
func (p *HTMLPerturber) Apply(html string, target htmltok.Span, n int) (string, htmltok.Span) {
	for i := 0; i < n; i++ {
		html, target = p.one(html, target)
	}
	return html, target
}

func (p *HTMLPerturber) one(html string, target htmltok.Span) (string, htmltok.Span) {
	// Candidate edit positions: tag boundaries outside the target.
	toks := htmltok.Scan(html)
	var cuts []int
	for _, t := range toks {
		if t.End <= target.Start || t.Start >= target.End {
			cuts = append(cuts, t.Start, t.End)
		}
	}
	cuts = append(cuts, 0, len(html))
	sort.Ints(cuts)
	cuts = dedupInts(cuts)
	// Remove cut points inside the target tag.
	var ok []int
	for _, c := range cuts {
		if c <= target.Start || c >= target.End {
			ok = append(ok, c)
		}
	}
	cuts = ok

	switch p.rng.Intn(4) {
	case 0: // insert a snippet at a random boundary
		snip := p.Snippets[p.rng.Intn(len(p.Snippets))]
		at := cuts[p.rng.Intn(len(cuts))]
		return splice(html, at, snip, target)
	case 1: // delete one benign element (never the target, never form/input)
		var deletable []htmltok.Token
		for _, t := range toks {
			if t.Start >= target.Start && t.Start < target.End {
				continue
			}
			switch t.Kind {
			case htmltok.StartTag, htmltok.EndTag, htmltok.SelfClosingTag:
				if t.Name == "FORM" || t.Name == "INPUT" {
					continue
				}
				deletable = append(deletable, t)
			}
		}
		if len(deletable) == 0 {
			return html, target
		}
		d := deletable[p.rng.Intn(len(deletable))]
		out := html[:d.Start] + html[d.End:]
		shift := d.End - d.Start
		if d.End <= target.Start {
			return out, htmltok.Span{Start: target.Start - shift, End: target.End - shift}
		}
		return out, target
	case 2: // wrap a region containing the target
		wr := p.Wrappers[p.rng.Intn(len(p.Wrappers))]
		lo := pickAtMost(cuts, target.Start, p.rng)
		hi := pickAtLeast(cuts, target.End, p.rng)
		out := html[:lo] + wr[0] + html[lo:hi] + wr[1] + html[hi:]
		return out, htmltok.Span{Start: target.Start + len(wr[0]), End: target.End + len(wr[0])}
	default: // append a sibling fragment
		sib := p.Siblings[p.rng.Intn(len(p.Siblings))]
		return html + sib, target
	}
}

func splice(html string, at int, snip string, target htmltok.Span) (string, htmltok.Span) {
	out := html[:at] + snip + html[at:]
	if at <= target.Start {
		return out, htmltok.Span{Start: target.Start + len(snip), End: target.End + len(snip)}
	}
	return out, target
}

func dedupInts(xs []int) []int {
	w := 0
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			xs[w] = x
			w++
		}
	}
	return xs[:w]
}

// pickAtMost picks a random cut ≤ bound.
func pickAtMost(cuts []int, bound int, rng *rand.Rand) int {
	var c []int
	for _, x := range cuts {
		if x <= bound {
			c = append(c, x)
		}
	}
	if len(c) == 0 {
		return 0
	}
	return c[rng.Intn(len(c))]
}

// pickAtLeast picks a random cut ≥ bound.
func pickAtLeast(cuts []int, bound int, rng *rand.Rand) int {
	var c []int
	for _, x := range cuts {
		if x >= bound {
			c = append(c, x)
		}
	}
	if len(c) == 0 {
		return bound
	}
	return c[rng.Intn(len(c))]
}

// FindTag returns the byte span of the n-th (0-based) occurrence of the
// upper-case tag in the page, for seeding Apply.
func FindTag(html, tag string, n int) (htmltok.Span, bool) {
	seen := 0
	for _, t := range htmltok.Scan(html) {
		if (t.Kind == htmltok.StartTag || t.Kind == htmltok.SelfClosingTag) &&
			strings.EqualFold(t.Name, tag) {
			if seen == n {
				return htmltok.Span{Start: t.Start, End: t.End}, true
			}
			seen++
		}
	}
	return htmltok.Span{}, false
}
