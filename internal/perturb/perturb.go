// Package perturb implements the document change model of the paper's
// Section 3: "the most typical changes are insertion or deletion of HTML
// elements before or after the object of interest and embedding of the
// object inside some other HTML element". It generates random, seeded,
// reproducible variants of a tokenized page while tracking where the target
// token moves, so the resilience experiments can score wrappers against
// ground truth.
//
// The paper's own evaluation pages (a live "web-based information
// harvesting system") are not available; this generator is the documented
// substitution — it exercises exactly the failure mode the paper motivates.
package perturb

import (
	"fmt"
	"math/rand"

	"resilex/internal/symtab"
)

// Op is one kind of page edit.
type Op int

// Edit kinds, mirroring Section 3's list.
const (
	// InsertSnippet inserts a benign balanced fragment (a table row, a link,
	// a paragraph…) at a random position.
	InsertSnippet Op = iota
	// DeleteToken removes one non-structural token that is not the target.
	DeleteToken
	// WrapTarget embeds the region around the target inside a new container
	// element (the Figure 1 "form moved into a table" redesign).
	WrapTarget
	// AppendSibling adds a sibling fragment at the end of the document
	// (e.g. a whole extra form after the one of interest).
	AppendSibling
	numOps
)

// String names the edit kind.
func (o Op) String() string {
	switch o {
	case InsertSnippet:
		return "insert-snippet"
	case DeleteToken:
		return "delete-token"
	case WrapTarget:
		return "wrap-target"
	case AppendSibling:
		return "append-sibling"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Edit records one applied perturbation for diagnostics.
type Edit struct {
	Op  Op
	At  int // token index the edit applied at (document coordinates before the edit)
	Len int // tokens inserted (positive) or removed (negative)
}

// Perturber generates perturbed variants. Construct with New; the zero
// value is unusable.
type Perturber struct {
	rng *rand.Rand
	tab *symtab.Table

	// Snippets are the balanced fragments insertion draws from. They must
	// not contain Reserved symbols or the identity of the target (e.g. "the
	// second INPUT of the first FORM") would change, making the ground
	// truth ill-defined rather than the wrapper wrong.
	Snippets [][]symtab.Symbol
	// Wrappers are (prefix, suffix) pairs used by WrapTarget.
	Wrappers [][2][]symtab.Symbol
	// Siblings are fragments AppendSibling draws from; unlike Snippets they
	// may contain reserved symbols (a whole sibling form after the target's
	// form is a change the paper explicitly hopes to survive).
	Siblings [][]symtab.Symbol
	// Reserved symbols are never deleted.
	Reserved map[symtab.Symbol]bool
}

// New returns a Perturber over the standard HTML snippet vocabulary with
// FORM/INPUT reserved, seeded deterministically.
func New(tab *symtab.Table, seed int64) *Perturber {
	w := func(names ...string) []symtab.Symbol { return tab.InternAll(names...) }
	return &Perturber{
		rng: rand.New(rand.NewSource(seed)),
		tab: tab,
		Snippets: [][]symtab.Symbol{
			w("P"),
			w("BR"),
			w("HR"),
			w("A", "/A"),
			w("IMG"),
			w("H1", "/H1"),
			w("TR", "TD", "/TD", "/TR"),
			w("TR", "TD", "A", "/A", "/TD", "/TR"),
			w("DIV", "P", "/DIV"),
			w("TABLE", "TR", "TD", "/TD", "/TR", "/TABLE"),
		},
		Wrappers: [][2][]symtab.Symbol{
			{w("TABLE", "TR", "TD"), w("/TD", "/TR", "/TABLE")},
			{w("DIV"), w("/DIV")},
			{w("TR", "TD"), w("/TD", "/TR")},
		},
		Siblings: [][]symtab.Symbol{
			w("FORM", "INPUT", "/FORM"),
			w("TABLE", "TR", "TD", "/TD", "/TR", "/TABLE"),
			w("FORM", "INPUT", "INPUT", "INPUT", "/FORM"),
			w("P", "A", "/A"),
		},
		Reserved: map[symtab.Symbol]bool{
			tab.Intern("FORM"):  true,
			tab.Intern("/FORM"): true,
			tab.Intern("INPUT"): true,
		},
	}
}

// Rand exposes the perturber's seeded source so callers can interleave
// their own deterministic choices.
func (p *Perturber) Rand() *rand.Rand { return p.rng }

// Apply performs n random edits on doc, returning the perturbed document,
// the new index of the target token, and the edit log. The input is not
// modified. Inserts never land strictly between the target's FORM and the
// target in a way that changes the target's identity: snippets contain no
// reserved symbols, and the target index is tracked through every edit.
func (p *Perturber) Apply(doc []symtab.Symbol, target int, n int) ([]symtab.Symbol, int, []Edit) {
	out := append([]symtab.Symbol(nil), doc...)
	var edits []Edit
	for i := 0; i < n; i++ {
		op := Op(p.rng.Intn(int(numOps)))
		switch op {
		case InsertSnippet:
			snip := p.Snippets[p.rng.Intn(len(p.Snippets))]
			at := p.rng.Intn(len(out) + 1)
			out = insert(out, at, snip)
			if at <= target {
				target += len(snip)
			}
			edits = append(edits, Edit{Op: op, At: at, Len: len(snip)})
		case DeleteToken:
			at, ok := p.pickDeletable(out, target)
			if !ok {
				continue
			}
			out = append(out[:at], out[at+1:]...)
			if at < target {
				target--
			}
			edits = append(edits, Edit{Op: op, At: at, Len: -1})
		case WrapTarget:
			wr := p.Wrappers[p.rng.Intn(len(p.Wrappers))]
			// Wrap a region [lo, hi) containing the target.
			lo := 0
			if target > 0 {
				lo = p.rng.Intn(target + 1)
			}
			hi := target + 1 + p.rng.Intn(len(out)-target)
			grown := make([]symtab.Symbol, 0, len(out)+len(wr[0])+len(wr[1]))
			grown = append(grown, out[:lo]...)
			grown = append(grown, wr[0]...)
			grown = append(grown, out[lo:hi]...)
			grown = append(grown, wr[1]...)
			grown = append(grown, out[hi:]...)
			out = grown
			target += len(wr[0])
			edits = append(edits, Edit{Op: op, At: lo, Len: len(wr[0]) + len(wr[1])})
		case AppendSibling:
			sib := p.Siblings[p.rng.Intn(len(p.Siblings))]
			edits = append(edits, Edit{Op: op, At: len(out), Len: len(sib)})
			out = append(out, sib...)
		}
	}
	return out, target, edits
}

func insert(doc []symtab.Symbol, at int, snip []symtab.Symbol) []symtab.Symbol {
	out := make([]symtab.Symbol, 0, len(doc)+len(snip))
	out = append(out, doc[:at]...)
	out = append(out, snip...)
	out = append(out, doc[at:]...)
	return out
}

// pickDeletable chooses a random index that is neither the target nor a
// reserved symbol; ok=false when none exists.
func (p *Perturber) pickDeletable(doc []symtab.Symbol, target int) (int, bool) {
	var candidates []int
	for i, s := range doc {
		if i != target && !p.Reserved[s] {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[p.rng.Intn(len(candidates))], true
}

// Alphabet returns every symbol the perturber can introduce — callers must
// include it in the wrapper's Σ so that novel-but-known tags are "changes"
// rather than out-of-alphabet noise.
func (p *Perturber) Alphabet() symtab.Alphabet {
	var syms []symtab.Symbol
	for _, s := range p.Snippets {
		syms = append(syms, s...)
	}
	for _, w := range p.Wrappers {
		syms = append(syms, w[0]...)
		syms = append(syms, w[1]...)
	}
	for _, s := range p.Siblings {
		syms = append(syms, s...)
	}
	return symtab.NewAlphabet(syms...)
}
