package perturb

import (
	"strings"
	"testing"

	"resilex/internal/htmltok"
)

const basePage = `<p><h1>Virtual Supplier</h1><form action="s.cgi">` +
	`<input type="image"><input type="text" name="q"><input type="radio"></form>`

func targetSpan(t *testing.T) htmltok.Span {
	t.Helper()
	sp, ok := FindTag(basePage, "INPUT", 1)
	if !ok {
		t.Fatal("target not found")
	}
	return sp
}

func TestFindTag(t *testing.T) {
	sp, ok := FindTag(basePage, "INPUT", 1)
	if !ok || !strings.Contains(basePage[sp.Start:sp.End], `type="text"`) {
		t.Fatalf("FindTag = %v %v (%q)", sp, ok, basePage[sp.Start:sp.End])
	}
	if _, ok := FindTag(basePage, "INPUT", 9); ok {
		t.Error("found nonexistent occurrence")
	}
	if _, ok := FindTag(basePage, "ZZZ", 0); ok {
		t.Error("found nonexistent tag")
	}
	// Case-insensitive.
	if _, ok := FindTag(basePage, "input", 0); !ok {
		t.Error("case-insensitive lookup failed")
	}
}

// The tracked span must always point at the same element text.
func TestHTMLApplyTracksTarget(t *testing.T) {
	want := basePage[targetSpan(t).Start:targetSpan(t).End]
	for seed := int64(0); seed < 60; seed++ {
		p := NewHTML(seed)
		for _, n := range []int{0, 1, 3, 6} {
			out, sp := p.Apply(basePage, targetSpan(t), n)
			if sp.Start < 0 || sp.End > len(out) || sp.Start >= sp.End {
				t.Fatalf("seed %d n %d: bad span %v (len %d)", seed, n, sp, len(out))
			}
			if got := out[sp.Start:sp.End]; got != want {
				t.Fatalf("seed %d n %d: span drifted to %q\npage: %s", seed, n, got, out)
			}
		}
	}
}

// Identity preservation: the target stays the second INPUT of the first FORM.
func TestHTMLApplyPreservesIdentity(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := NewHTML(seed)
		out, sp := p.Apply(basePage, targetSpan(t), 4)
		// Find the first FORM in the perturbed page, then its second INPUT.
		toks := htmltok.Scan(out)
		formAt := -1
		inputs := 0
		var second htmltok.Span
		for _, tok := range toks {
			if formAt < 0 && tok.Kind == htmltok.StartTag && tok.Name == "FORM" {
				formAt = tok.Start
				continue
			}
			if formAt >= 0 && (tok.Kind == htmltok.StartTag || tok.Kind == htmltok.SelfClosingTag) && tok.Name == "INPUT" {
				inputs++
				if inputs == 2 {
					second = htmltok.Span{Start: tok.Start, End: tok.End}
					break
				}
			}
		}
		if second != sp {
			t.Fatalf("seed %d: identity drifted: tracked %v, actual second-input-of-first-form %v\npage: %s",
				seed, sp, second, out)
		}
	}
}

func TestHTMLApplyDeterministic(t *testing.T) {
	a1, s1 := NewHTML(5).Apply(basePage, targetSpan(t), 5)
	a2, s2 := NewHTML(5).Apply(basePage, targetSpan(t), 5)
	if a1 != a2 || s1 != s2 {
		t.Error("same seed, different result")
	}
}
