// Package cluster turns the single-node serving path into a shardable
// fleet: a consistent-hash ring places wrapper keys on shard nodes with a
// configurable replication factor, a membership layer polls each shard's
// /healthz with the supervisor-style breaker pattern and marks nodes
// up/down with observable transitions, and a router front-end proxies
// extraction and wrapper mutations to the owning shard — failing over to
// the next replica on error or timeout, optionally hedging tail requests,
// and fanning wrapper PUTs/DELETEs out to every owner over a checksummed
// codec frame so a node loss keeps every key servable.
//
// The pieces compose without a coordination service: placement is a pure
// function of the peer list (every router instance computes identical
// owners), health is learned locally from probes and live traffic, and
// durability comes from each shard's own persistent registry (internal
// /serve's -cache-dir tier) rather than from consensus. The follow-ups
// that do need coordination — rebalancing on membership change, cross-
// shard batch fan-out — are ROADMAP items, not silent behavior.
package cluster
