package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicPlacement(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r1 := NewRing(0)
	r1.Add(nodes...)
	// A second ring built in a different insertion order must agree on every
	// placement: placement is a pure function of the member set.
	r2 := NewRing(0)
	r2.Add(nodes[3], nodes[1], nodes[0], nodes[2])
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("site-%d", i)
		o1 := r1.Owners(key, 2)
		o2 := r2.Owners(key, 2)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("placement of %q differs across build orders: %v vs %v", key, o1, o2)
		}
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("owners of %q = %v, want 2 distinct nodes", key, o1)
		}
	}
}

func TestRingOwnersBounds(t *testing.T) {
	r := NewRing(8)
	if got := r.Owners("key", 2); got != nil {
		t.Fatalf("empty ring owners = %v, want nil", got)
	}
	r.Add("http://a:1", "http://b:1")
	// Asking for more replicas than members returns every member once.
	owners := r.Owners("key", 5)
	if len(owners) != 2 || owners[0] == owners[1] {
		t.Fatalf("owners = %v, want both nodes once", owners)
	}
	if got := r.Owners("key", 0); got != nil {
		t.Fatalf("zero replicas = %v, want nil", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0) // default vnode count
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r.Add(nodes...)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	// With 128 vnodes per member a 4-node ring should be reasonably even;
	// alarm only on gross skew (a broken hash collapses to one node).
	for _, n := range nodes {
		if counts[n] < keys/4/3 {
			t.Errorf("node %s owns %d/%d keys — ring badly skewed: %v", n, counts[n], keys, counts)
		}
	}
}

// TestRingMinimalMovement: removing one of four nodes must only move the
// keys that node owned — consistent hashing's defining property.
func TestRingMinimalMovement(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(0)
	r.Add(nodes...)
	const keys = 2000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owners(fmt.Sprintf("key-%d", i), 1)[0]
	}
	r.Remove("http://c:1")
	moved := 0
	for i := range before {
		after := r.Owners(fmt.Sprintf("key-%d", i), 1)[0]
		if after == "http://c:1" {
			t.Fatalf("key-%d still places on the removed node", i)
		}
		if after != before[i] {
			if before[i] != "http://c:1" {
				t.Fatalf("key-%d moved from %s to %s although its owner survived", i, before[i], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved after removing a node that owned ~25% of them")
	}
}

func TestRingNodes(t *testing.T) {
	r := NewRing(4)
	r.Add("http://b:1", "http://a:1")
	if got := r.Nodes(); !reflect.DeepEqual(got, []string{"http://a:1", "http://b:1"}) {
		t.Fatalf("Nodes() = %v, want sorted members", got)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
	r.Add("http://a:1") // idempotent re-add
	if r.Len() != 2 {
		t.Fatalf("Len() after re-add = %d, want 2", r.Len())
	}
}
