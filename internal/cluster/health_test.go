package cluster

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"resilex/internal/obs"
)

func TestMembershipThresholdAndReadmission(t *testing.T) {
	o := obs.New()
	m := NewMembership([]string{"n1", "n2"}, MembershipConfig{
		FailureThreshold: 3,
		Observer:         o,
	})
	if !m.Up("n1") || m.UpCount() != 2 {
		t.Fatal("nodes must start up")
	}

	// Two failures: still up (breaker not yet tripped).
	m.ReportFailure("n1", errors.New("boom"))
	m.ReportFailure("n1", errors.New("boom"))
	if !m.Up("n1") {
		t.Fatal("n1 down before hitting the threshold")
	}
	// Third consecutive failure trips it.
	m.ReportFailure("n1", errors.New("boom"))
	if m.Up("n1") || m.UpCount() != 1 {
		t.Fatal("n1 must be down after 3 consecutive failures")
	}

	snap := o.Metrics.Snapshot()
	down := obs.WithLabels("cluster_node_transitions_total", "node", "n1", "from", "up", "to", "down")
	if snap.Counters[down] != 1 {
		t.Errorf("transition counter = %d, want 1", snap.Counters[down])
	}
	if g := snap.Gauges["cluster_ring_nodes_up"]; g != 1 {
		t.Errorf("cluster_ring_nodes_up = %d, want 1", g)
	}
	if g := snap.Gauges[obs.WithLabels("cluster_node_up", "node", "n1")]; g != 0 {
		t.Errorf("cluster_node_up{node=n1} = %d, want 0", g)
	}

	// A success (probe or live traffic) readmits the node.
	m.ReportSuccess("n1")
	if !m.Up("n1") || m.UpCount() != 2 {
		t.Fatal("n1 must be up again after a success")
	}

	// An interleaved success resets the consecutive count: two failures, a
	// success, two more failures must NOT trip the breaker.
	m.ReportFailure("n2", nil)
	m.ReportFailure("n2", nil)
	m.ReportSuccess("n2")
	m.ReportFailure("n2", nil)
	m.ReportFailure("n2", nil)
	if !m.Up("n2") {
		t.Fatal("n2 down although failures were not consecutive")
	}
}

func TestMembershipOrder(t *testing.T) {
	m := NewMembership([]string{"a", "b", "c"}, MembershipConfig{FailureThreshold: 1})
	m.ReportFailure("a", errors.New("dead"))
	got := m.Order([]string{"a", "b", "c"})
	if !reflect.DeepEqual(got, []string{"b", "c", "a"}) {
		t.Fatalf("Order = %v, want down node last", got)
	}
	// Unknown nodes are treated as up (membership only vetoes).
	got = m.Order([]string{"x", "a"})
	if !reflect.DeepEqual(got, []string{"x", "a"}) {
		t.Fatalf("Order with unknown = %v", got)
	}
}

func TestMembershipPollOnce(t *testing.T) {
	healthy := map[string]bool{"n1": true, "n2": false}
	m := NewMembership([]string{"n1", "n2"}, MembershipConfig{
		FailureThreshold: 1,
		Probe: func(ctx context.Context, node string) error {
			if healthy[node] {
				return nil
			}
			return errors.New("unreachable")
		},
	})
	m.PollOnce(context.Background())
	if !m.Up("n1") || m.Up("n2") {
		t.Fatalf("after poll: n1 up=%v n2 up=%v, want true/false", m.Up("n1"), m.Up("n2"))
	}

	// The node recovers; the next poll is the half-open trial that readmits.
	healthy["n2"] = true
	m.PollOnce(context.Background())
	if !m.Up("n2") {
		t.Fatal("n2 not readmitted after a successful probe")
	}

	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Node != "n1" || snap[1].Node != "n2" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[1].State != "up" {
		t.Fatalf("n2 state = %s, want up", snap[1].State)
	}
}

// TestJitteredBounds: the jittered interval stays within ±jitter·d and
// degenerate inputs pass through unchanged — the poll schedule must never
// collapse to zero or go negative.
func TestJitteredBounds(t *testing.T) {
	d := time.Second
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		got := Jittered(d, 0.1, func() float64 { return r })
		lo, hi := time.Duration(float64(d)*0.9), time.Duration(float64(d)*1.1)
		if got < lo || got > hi {
			t.Errorf("Jittered(1s, 0.1, r=%v) = %v, want within [%v, %v]", r, got, lo, hi)
		}
	}
	if got := Jittered(d, 0.1, func() float64 { return 0.5 }); got != d {
		t.Errorf("midpoint jitter = %v, want exactly %v", got, d)
	}
	if got := Jittered(d, 0, nil); got != d {
		t.Errorf("zero jitter = %v, want %v", got, d)
	}
	if got := Jittered(0, 0.1, func() float64 { return 0 }); got != 0 {
		t.Errorf("zero interval = %v, want 0", got)
	}
	// Full jitter with the worst draw must not zero the schedule.
	if got := Jittered(d, 1, func() float64 { return 0 }); got <= 0 {
		t.Errorf("full jitter worst draw = %v, want > 0", got)
	}
}

// TestMembershipRunJittered: Run keeps polling with jitter enabled — the
// jittered timer must re-arm after every poll.
func TestMembershipRunJittered(t *testing.T) {
	var mu sync.Mutex
	polls := 0
	m := NewMembership([]string{"http://n1"}, MembershipConfig{
		Interval: time.Millisecond,
		Jitter:   0.5,
		Probe: func(ctx context.Context, node string) error {
			mu.Lock()
			polls++
			mu.Unlock()
			return nil
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	m.Run(ctx)
	mu.Lock()
	defer mu.Unlock()
	if polls < 3 {
		t.Fatalf("polls = %d, want at least 3 (timer must re-arm)", polls)
	}
}
