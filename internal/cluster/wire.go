package cluster

import (
	"fmt"

	"resilex/internal/codec"
)

// The replication wire format: every wrapper mutation the router fans out
// to a key's owners travels as one codec frame — magic, version, varint
// framing, SHA-256 checksum — so a truncated or bit-flipped body is
// rejected by the shard before it can corrupt a registry, exactly the
// corruption policy the disk tier already applies to artifacts at rest.
//
// Format version 2 is the versioned-record frame: each operation carries a
// record version number so canary, promote and rollback replicate through
// the same apply path as put/delete, and a receiver can detect stale or
// conflicting rollout operations. Version-1 frames (put/delete, no record
// version) are still decoded for rolling upgrades.
const (
	// OpMagic is the frame magic of a replicated wrapper operation.
	OpMagic = "RXCL"
	// OpVersion is the current operation format version.
	OpVersion byte = 2
	// opVersionLegacy is the pre-versioned-record format still accepted on
	// decode: put/delete only, no record version field.
	opVersionLegacy byte = 1
	// OpContentType is the Content-Type of a framed operation body.
	OpContentType = "application/x-resilex-frame"
)

// OpKind discriminates replicated wrapper operations.
type OpKind byte

// Replicated operation kinds.
const (
	// OpPut registers (or replaces) the active wrapper under Op.Key from
	// Op.Payload, the persisted wrapper JSON.
	OpPut OpKind = 1
	// OpDelete removes the wrapper under Op.Key; Payload is empty. The
	// registry keeps a versioned tombstone so a later re-PUT resurrects the
	// key with a strictly higher version.
	OpDelete OpKind = 2
	// OpCanary stages Op.Payload as the canary version for Op.Key without
	// touching the active wrapper.
	OpCanary OpKind = 3
	// OpPromote makes the staged canary the active wrapper. Op.Version, when
	// non-zero, must match the staged canary's version (a guard against
	// promoting a canary the sender never saw); zero promotes whatever is
	// staged. Payload is empty.
	OpPromote OpKind = 4
	// OpRollback discards the staged canary (or, after a promote, reverts the
	// active wrapper to the prior version). Op.Version, when non-zero, names
	// the canary version being rolled back. Payload is empty.
	OpRollback OpKind = 5
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpCanary:
		return "canary"
	case OpPromote:
		return "promote"
	case OpRollback:
		return "rollback"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one replicated wrapper mutation. Version is the record version the
// operation refers to: assigned by the receiver when zero (put/canary), a
// guard when non-zero (promote/rollback).
type Op struct {
	Kind    OpKind
	Key     string
	Version uint64
	Payload []byte
}

// EncodeOp frames an operation for the wire.
func EncodeOp(op Op) []byte {
	var w codec.Writer
	w.Uint(uint64(op.Kind))
	w.String(op.Key)
	w.Uint(op.Version)
	w.Bytes2(op.Payload)
	return codec.Seal(OpMagic, OpVersion, w.Bytes())
}

// DecodeOp verifies a framed operation and returns it. Every failure wraps
// codec.ErrMalformedInput; IsOpFrame distinguishes "not an op frame at all"
// for callers that want to answer 415 rather than 400. Version-1 frames
// decode with Version 0 and only the put/delete kinds.
func DecodeOp(blob []byte) (Op, error) {
	_, fv, ok := codec.Sniff(blob)
	if ok && fv == opVersionLegacy {
		return decodeLegacyOp(blob)
	}
	payload, err := codec.Open(OpMagic, OpVersion, blob)
	if err != nil {
		return Op{}, err
	}
	r := codec.NewReader(payload)
	op := Op{
		Kind:    OpKind(r.Uint()),
		Key:     r.String(),
		Version: r.Uint(),
		Payload: r.Bytes2(),
	}
	if err := r.Done(); err != nil {
		return Op{}, err
	}
	return op, validateOp(op)
}

func decodeLegacyOp(blob []byte) (Op, error) {
	payload, err := codec.Open(OpMagic, opVersionLegacy, blob)
	if err != nil {
		return Op{}, err
	}
	r := codec.NewReader(payload)
	op := Op{
		Kind:    OpKind(r.Uint()),
		Key:     r.String(),
		Payload: r.Bytes2(),
	}
	if err := r.Done(); err != nil {
		return Op{}, err
	}
	if op.Kind != OpPut && op.Kind != OpDelete {
		return Op{}, fmt.Errorf("%w: unknown legacy op kind %d", codec.ErrMalformedInput, op.Kind)
	}
	return op, validateOp(op)
}

func validateOp(op Op) error {
	if op.Key == "" {
		return fmt.Errorf("%w: op with empty key", codec.ErrMalformedInput)
	}
	switch op.Kind {
	case OpPut, OpCanary:
		if len(op.Payload) == 0 {
			return fmt.Errorf("%w: %s op with empty payload", codec.ErrMalformedInput, op.Kind)
		}
	case OpDelete, OpPromote, OpRollback:
		if len(op.Payload) != 0 {
			return fmt.Errorf("%w: %s op with %d-byte payload", codec.ErrMalformedInput, op.Kind, len(op.Payload))
		}
	default:
		return fmt.Errorf("%w: unknown op kind %d", codec.ErrMalformedInput, op.Kind)
	}
	return nil
}

// IsOpFrame reports whether the blob even claims to be an op frame (right
// magic, any version), without verifying it.
func IsOpFrame(blob []byte) bool {
	magic, _, ok := codec.Sniff(blob)
	return ok && magic == OpMagic
}
