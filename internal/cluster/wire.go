package cluster

import (
	"fmt"

	"resilex/internal/codec"
)

// The replication wire format: every wrapper mutation the router fans out
// to a key's owners travels as one codec frame — magic, version, varint
// framing, SHA-256 checksum — so a truncated or bit-flipped body is
// rejected by the shard before it can corrupt a registry, exactly the
// corruption policy the disk tier already applies to artifacts at rest.
const (
	// OpMagic is the frame magic of a replicated wrapper operation.
	OpMagic = "RXCL"
	// OpVersion is the current operation format version.
	OpVersion byte = 1
	// OpContentType is the Content-Type of a framed operation body.
	OpContentType = "application/x-resilex-frame"
)

// OpKind discriminates replicated wrapper operations.
type OpKind byte

// Replicated operation kinds.
const (
	// OpPut registers (or replaces) a wrapper under Op.Key from Op.Payload,
	// the persisted wrapper JSON.
	OpPut OpKind = 1
	// OpDelete removes the wrapper under Op.Key; Payload is empty.
	OpDelete OpKind = 2
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one replicated wrapper mutation.
type Op struct {
	Kind    OpKind
	Key     string
	Payload []byte
}

// EncodeOp frames an operation for the wire.
func EncodeOp(op Op) []byte {
	var w codec.Writer
	w.Uint(uint64(op.Kind))
	w.String(op.Key)
	w.Bytes2(op.Payload)
	return codec.Seal(OpMagic, OpVersion, w.Bytes())
}

// DecodeOp verifies a framed operation and returns it. Every failure wraps
// codec.ErrMalformedInput; IsOpFrame distinguishes "not an op frame at all"
// for callers that want to answer 415 rather than 400.
func DecodeOp(blob []byte) (Op, error) {
	payload, err := codec.Open(OpMagic, OpVersion, blob)
	if err != nil {
		return Op{}, err
	}
	r := codec.NewReader(payload)
	op := Op{
		Kind:    OpKind(r.Uint()),
		Key:     r.String(),
		Payload: r.Bytes2(),
	}
	if err := r.Done(); err != nil {
		return Op{}, err
	}
	if op.Kind != OpPut && op.Kind != OpDelete {
		return Op{}, fmt.Errorf("%w: unknown op kind %d", codec.ErrMalformedInput, op.Kind)
	}
	if op.Key == "" {
		return Op{}, fmt.Errorf("%w: op with empty key", codec.ErrMalformedInput)
	}
	return op, nil
}

// IsOpFrame reports whether the blob even claims to be an op frame (right
// magic, any version), without verifying it.
func IsOpFrame(blob []byte) bool {
	magic, _, ok := codec.Sniff(blob)
	return ok && magic == OpMagic
}
