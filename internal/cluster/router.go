package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"resilex/internal/obs"
)

// defaultMaxBody bounds request bodies the router will buffer for proxying.
const defaultMaxBody = 64 << 20

// RouterConfig tunes the failover-aware router front-end.
type RouterConfig struct {
	// Peers are the shard base URLs (e.g. http://10.0.0.1:8093). At least
	// one is required; trailing slashes are stripped.
	Peers []string
	// Replicas is the replication factor R: how many owners each wrapper
	// key has. Wrapper PUTs/DELETEs are written to all R owners; extraction
	// fails over along the same list. Default 2, capped at len(Peers).
	Replicas int
	// VirtualNodes is the per-node vnode count of the placement ring;
	// <= 0 selects DefaultVirtualNodes.
	VirtualNodes int
	// HedgeAfter, when positive, hedges tail extract requests: if the
	// primary owner has not answered within this delay, a duplicate is
	// raced against the next replica and the first success wins. Mutating
	// routes are never hedged.
	HedgeAfter time.Duration
	// ProxyTimeout bounds each individual proxy attempt (each failover leg
	// separately). Default 5s.
	ProxyTimeout time.Duration
	// MaxBodyBytes bounds request bodies; 0 selects 64 MiB.
	MaxBodyBytes int64
	// Membership tunes the health layer; its Observer defaults to the
	// router's.
	Membership MembershipConfig
	// Observer receives the routing telemetry (cluster_route_total,
	// cluster_failover_total, cluster_hedge_total, and the membership
	// gauges). nil disables observation.
	Observer *obs.Observer
	// Client issues the proxy requests. Default: a fresh http.Client;
	// per-attempt contexts bound it.
	Client *http.Client
}

// Router is the cluster front-end: it owns the placement ring and the
// membership view, proxies POST /extract to the owning shard with failover
// and optional hedging, and replicates PUT/DELETE /wrappers/{key} to every
// owner. Safe for concurrent use.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	health *Membership
	obs    *obs.Observer
	client *http.Client
}

// NewRouter builds a router over the peer set.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: router needs at least one peer")
	}
	peers := make([]string, len(cfg.Peers))
	for i, p := range cfg.Peers {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p == "" {
			return nil, errors.New("cluster: empty peer URL")
		}
		peers[i] = p
	}
	cfg.Peers = peers
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(peers) {
		cfg.Replicas = len(peers)
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 5 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	if cfg.Membership.Observer == nil {
		cfg.Membership.Observer = cfg.Observer
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	ring := NewRing(cfg.VirtualNodes)
	ring.Add(peers...)
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		health: NewMembership(peers, cfg.Membership),
		obs:    cfg.Observer,
		client: client,
	}
	return rt, nil
}

// Ring exposes the placement ring (read-only use expected).
func (rt *Router) Ring() *Ring { return rt.ring }

// Health exposes the membership layer.
func (rt *Router) Health() *Membership { return rt.health }

// Replicas reports the effective replication factor.
func (rt *Router) Replicas() int { return rt.cfg.Replicas }

// Run polls shard health until ctx is canceled. Callers that only want
// passive (traffic-driven) detection can skip it.
func (rt *Router) Run(ctx context.Context) { rt.health.Run(ctx) }

// Mux mounts the routing endpoints on top of the observability handler, so
// one router address serves traffic, /healthz and /metrics. The router's
// GET /debug/traces/{id} assembles the cross-process view: its own spans
// merged with each peer's half of the trace.
func (rt *Router) Mux() *http.ServeMux {
	mux := obs.HandlerWith(rt.obs, rt.mergeTrace)
	mux.HandleFunc("POST /extract", rt.handleExtract)
	mux.HandleFunc("PUT /wrappers/{key}", rt.handlePutWrapper)
	mux.HandleFunc("DELETE /wrappers/{key}", rt.handleDeleteWrapper)
	mux.HandleFunc("PUT /wrappers/{key}/canary", rt.handleCanaryWrapper)
	mux.HandleFunc("POST /wrappers/{key}/promote", rt.handleRollout("promote", OpPromote))
	mux.HandleFunc("POST /wrappers/{key}/rollback", rt.handleRollout("rollback", OpRollback))
	mux.HandleFunc("GET /wrappers/{key}/versions", rt.handleVersions)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// routeOutcome counts one routed request by outcome: ok, error (no owner
// could serve it), cross_shard (batch spans shards), reject (oversized,
// wrong media type, or undecodable).
func (rt *Router) routeOutcome(outcome string) {
	rt.obs.Counter(obs.WithLabels("cluster_route_total", "outcome", outcome)).Inc()
}

// traceContext establishes the request's trace position at the cluster
// ingress: joining a trace propagated by the client or minting a fresh trace
// ID, echoed in the response header so the caller can fetch the assembled
// trace from this router's GET /debug/traces/{id}.
func (rt *Router) traceContext(w http.ResponseWriter, r *http.Request) (context.Context, obs.TraceContext) {
	tc := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	if tc.TraceID == "" {
		tc.TraceID = obs.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, tc.TraceID)
	return obs.ContextWithTrace(obs.NewContext(r.Context(), rt.obs), tc), tc
}

// mergeTrace assembles the cross-process view of one trace: the router's
// local spans plus each peer's half, fetched from the peers'
// /debug/traces/{id} endpoints and deduplicated by span ID. Peers that are
// down or don't know the trace contribute nothing — assembly is best-effort
// on read, with no write-path coordination.
func (rt *Router) mergeTrace(id string, local []obs.SpanRecord) []obs.SpanRecord {
	type fetched struct {
		spans []obs.SpanRecord
	}
	peers := rt.cfg.Peers
	results := make([]fetched, len(peers))
	var wg sync.WaitGroup
	for i, node := range peers {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProxyTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/debug/traces/"+url.PathEscape(id), nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var body struct {
				Spans []obs.SpanRecord `json:"spans"`
			}
			if err := json.NewDecoder(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes)).Decode(&body); err != nil {
				return
			}
			results[i].spans = body.Spans
		}(i, node)
	}
	wg.Wait()
	seen := make(map[int64]bool, len(local))
	out := local
	for _, s := range local {
		seen[s.ID] = true
	}
	for _, f := range results {
		for _, s := range f.spans {
			if s.TraceID == id && !seen[s.ID] {
				seen[s.ID] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// readBody drains a size-bounded request body and enforces the declared
// media type. A false return means the response has been written (413 on an
// oversized body, 415 on a foreign Content-Type) and counted as a reject.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request, wantType string) ([]byte, bool) {
	if !checkContentType(w, r, wantType) {
		rt.routeOutcome("reject")
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.routeOutcome("reject")
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSONError(w, status, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return body, true
}

// checkContentType enforces the declared media type when one is present; an
// absent Content-Type is accepted as the expected one. On mismatch it
// answers 415 and returns false.
func checkContentType(w http.ResponseWriter, r *http.Request, want string) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != want {
		writeJSONError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("unsupported Content-Type %q, want %s", ct, want))
		return false
	}
	return true
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleExtract routes a batch to the shard owning its keys, with failover
// across the key's replicas and optional hedging. Batches whose keys place
// on different primaries are rejected (cross-shard fan-out is a ROADMAP
// follow-up, not silent partial behavior).
func (rt *Router) handleExtract(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, "application/json")
	if !ok {
		return
	}
	var req struct {
		Docs []struct {
			Key string `json:"key"`
		} `json:"docs"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		rt.routeOutcome("reject")
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Docs) == 0 {
		rt.routeOutcome("ok")
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"results":[]}`)
		return
	}
	owners, err := rt.placeBatch(req.Docs)
	if err != nil {
		rt.routeOutcome("cross_shard")
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	ctx, tc := rt.traceContext(w, r)
	ctx, sp := rt.obs.StartSpan(ctx, "router.extract")
	sp.SetAttr("docs", int64(len(req.Docs)))
	start := time.Now()
	res, err := rt.extract(ctx, rt.health.Order(owners), body)
	elapsed := time.Since(start)
	if err != nil {
		sp.SetError(err)
		sp.End()
		rt.obs.Histogram("cluster_route_duration_us").ObserveExemplar(elapsed.Microseconds(), tc.TraceID)
		rt.routeOutcome("error")
		writeJSONError(w, http.StatusBadGateway, fmt.Errorf("no replica could serve the batch: %w", err))
		return
	}
	sp.SetStr("node", res.node)
	sp.End()
	rt.obs.Histogram("cluster_route_duration_us").ObserveExemplar(elapsed.Microseconds(), tc.TraceID)
	rt.routeOutcome("ok")
	relay(w, res)
}

// placeBatch maps a batch to its owner list: the owners of the first key,
// after checking that every key in the batch has the same primary owner.
func (rt *Router) placeBatch(docs []struct {
	Key string `json:"key"`
}) ([]string, error) {
	owners := rt.ring.Owners(docs[0].Key, rt.cfg.Replicas)
	if len(owners) == 0 {
		return nil, errors.New("cluster: placement ring is empty")
	}
	seen := map[string]bool{docs[0].Key: true}
	for _, d := range docs[1:] {
		if seen[d.Key] {
			continue
		}
		seen[d.Key] = true
		other := rt.ring.Owners(d.Key, 1)
		if len(other) == 0 || other[0] != owners[0] {
			return nil, fmt.Errorf("cluster: batch spans shards (%q on %s, %q on %s); split the batch per shard — cross-shard fan-out is a planned follow-up",
				docs[0].Key, owners[0], d.Key, other[0])
		}
	}
	return owners, nil
}

// proxyResult is one relayed shard response.
type proxyResult struct {
	status      int
	contentType string
	body        []byte
	node        string
}

func relay(w http.ResponseWriter, res *proxyResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// extract runs the failover chain over the ordered owners, hedging with the
// first replica when the primary is slow and hedging is enabled.
func (rt *Router) extract(ctx context.Context, ordered []string, body []byte) (*proxyResult, error) {
	if rt.cfg.HedgeAfter <= 0 || len(ordered) < 2 {
		return rt.attemptChain(ctx, http.MethodPost, "/extract", "application/json", body, ordered)
	}
	type chainResult struct {
		res *proxyResult
		err error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan chainResult, 2)
	run := func(chain []string) {
		res, err := rt.attemptChain(cctx, http.MethodPost, "/extract", "application/json", body, chain)
		resc <- chainResult{res, err}
	}
	go run(ordered)
	pending := 1
	hedged := false
	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()
	var lastErr error
	for pending > 0 {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				rt.obs.Counter("cluster_hedge_total").Inc()
				pending++
				go run(ordered[1:])
			}
		case cr := <-resc:
			pending--
			if cr.err == nil {
				return cr.res, nil
			}
			lastErr = cr.err
		}
	}
	return nil, lastErr
}

// attemptChain tries each node in order until one answers without a
// transport error or 5xx, feeding the outcome of every attempt back into
// the membership view. Each advance past the first node is one failover.
func (rt *Router) attemptChain(ctx context.Context, method, path, contentType string, body []byte, chain []string) (*proxyResult, error) {
	var lastErr error
	for i, node := range chain {
		if i > 0 {
			rt.obs.Counter("cluster_failover_total").Inc()
		}
		res, err := rt.try(ctx, node, method, path, contentType, body)
		if err != nil {
			rt.reportAttempt(node, err)
			lastErr = err
			if ctx.Err() != nil {
				return nil, lastErr
			}
			continue
		}
		rt.health.ReportSuccess(node)
		return res, nil
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no owners to try")
	}
	return nil, lastErr
}

// statusError is a proxy attempt the shard answered with a 5xx. It still
// fails the attempt (the request fails over to the next replica) but must
// not count against the node's membership breaker: the node is reachable
// and answering, and a 5xx can be a per-request verdict on the payload —
// e.g. a 503 construction-budget rejection of one pathological wrapper.
// Were it a passive failure, a client replaying such a request could walk a
// healthy shard's breaker down. Liveness of answering-but-erroring nodes is
// the active /healthz prober's call, not traffic's.
type statusError struct {
	node, path string
	status     int
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: %s%s: status %d", e.node, e.path, e.status)
}

// reportAttempt feeds one failed proxy attempt into the membership view:
// transport-level failures (unreachable, timeout, torn response) count
// toward the breaker, while an answered 5xx proves the node alive.
func (rt *Router) reportAttempt(node string, err error) {
	var se *statusError
	if errors.As(err, &se) {
		rt.health.ReportSuccess(node)
		return
	}
	rt.health.ReportFailure(node, err)
}

// try is one bounded proxy attempt, recorded as a "router.attempt" child
// span naming the target node and counted per node in
// cluster_route_attempts_total{node=…,outcome=…} so failover hot spots are
// attributable. When ctx carries a trace, the attempt's position propagates
// to the shard in the X-Resilex-Trace header — the shard's spans parent to
// this attempt. A response is a failure only when the shard is unreachable
// or answering 5xx — 4xx means the shard is healthy and the client is
// wrong, which must not trigger failover.
func (rt *Router) try(ctx context.Context, node, method, path, contentType string, body []byte) (*proxyResult, error) {
	ctx, sp := rt.obs.StartSpan(ctx, "router.attempt")
	sp.SetStr("node", node)
	sp.SetStr("path", path)
	outcome := "ok"
	defer func() {
		rt.obs.Counter(obs.WithLabels("cluster_route_attempts_total", "node", node, "outcome", outcome)).Inc()
		sp.End()
	}()
	fail := func(err error) (*proxyResult, error) {
		sp.SetError(err)
		return nil, err
	}
	actx, cancel := context.WithTimeout(ctx, rt.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, node+path, bytes.NewReader(body))
	if err != nil {
		outcome = "transport"
		return fail(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if tc := obs.TraceFromContext(ctx); tc.TraceID != "" {
		req.Header.Set(obs.TraceHeader, obs.FormatTraceHeader(tc))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		outcome = "transport"
		return fail(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		outcome = "transport"
		return fail(err)
	}
	if resp.StatusCode >= 500 {
		outcome = "status_5xx"
		return fail(&statusError{node: node, path: path, status: resp.StatusCode})
	}
	return &proxyResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        b,
		node:        node,
	}, nil
}

// replicaOutcome is one owner's result for a replicated mutation.
type replicaOutcome struct {
	Node   string `json:"node"`
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// replicate fans one framed operation out to every owner concurrently and
// reports each owner's outcome, feeding the membership view as it goes. The
// fan-out is one "router.replicate" span; each owner write is a child
// "router.attempt" span naming the node (see try).
func (rt *Router) replicate(ctx context.Context, owners []string, op Op) []replicaOutcome {
	ctx, sp := rt.obs.StartSpan(ctx, "router.replicate")
	sp.SetStr("op", op.Kind.String())
	sp.SetStr("key", op.Key)
	sp.SetAttr("owners", int64(len(owners)))
	defer sp.End()
	frame := EncodeOp(op)
	out := make([]replicaOutcome, len(owners))
	var wg sync.WaitGroup
	for i, node := range owners {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			res, err := rt.try(ctx, node, http.MethodPost, "/cluster/apply", OpContentType, frame)
			if err != nil {
				rt.reportAttempt(node, err)
				out[i] = replicaOutcome{Node: node, Error: err.Error()}
				return
			}
			rt.health.ReportSuccess(node)
			out[i] = replicaOutcome{Node: node, Status: res.status}
		}(i, node)
	}
	wg.Wait()
	for _, o := range out {
		result := "ok"
		if o.Error != "" || o.Status >= 400 {
			result = "error"
		}
		rt.obs.Counter(obs.WithLabels("cluster_replicate_total",
			"op", op.Kind.String(), "outcome", result)).Inc()
	}
	return out
}

// handlePutWrapper writes the registration to all R owners of the key. The
// PUT succeeds if at least one owner applied it (every key stays servable
// through a node loss); owners that were down record an error in the
// response so a deploy can alarm on incomplete replication and re-PUT.
func (rt *Router) handlePutWrapper(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := rt.readBody(w, r, "application/json")
	if !ok {
		return
	}
	owners := rt.ring.Owners(key, rt.cfg.Replicas)
	ctx, _ := rt.traceContext(w, r)
	outcomes := rt.replicate(ctx, owners, Op{Kind: OpPut, Key: key, Payload: body})
	applied, firstErr := summarize(outcomes, http.StatusCreated)
	if applied == 0 {
		rt.routeOutcome("error")
		writeJSONError(w, statusOf(firstErr, http.StatusBadGateway), fmt.Errorf("no owner accepted the registration: %s", firstErr))
		return
	}
	rt.routeOutcome("ok")
	writeJSONStatus(w, http.StatusCreated, map[string]any{
		"key": key, "replicated": applied, "owners": outcomes,
	})
}

// handleDeleteWrapper deletes the key from all its owners: 200 when any
// owner deleted it, 404 when every reachable owner reported it unknown.
func (rt *Router) handleDeleteWrapper(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	owners := rt.ring.Owners(key, rt.cfg.Replicas)
	ctx, _ := rt.traceContext(w, r)
	outcomes := rt.replicate(ctx, owners, Op{Kind: OpDelete, Key: key})
	applied, firstErr := summarize(outcomes, http.StatusOK)
	if applied > 0 {
		rt.routeOutcome("ok")
		writeJSONStatus(w, http.StatusOK, map[string]any{
			"key": key, "deleted": applied, "owners": outcomes,
		})
		return
	}
	allUnknown := len(outcomes) > 0
	for _, o := range outcomes {
		if o.Error != "" || o.Status != http.StatusNotFound {
			allUnknown = false
		}
	}
	if allUnknown {
		rt.routeOutcome("ok")
		writeJSONError(w, http.StatusNotFound, fmt.Errorf("no wrapper registered for %q", key))
		return
	}
	rt.routeOutcome("error")
	writeJSONError(w, statusOf(firstErr, http.StatusBadGateway), fmt.Errorf("no owner could delete: %s", firstErr))
}

// handleCanaryWrapper replicates a canary registration to all R owners of
// the key, exactly like a PUT — the canary is staged next to each owner's
// active version and starts receiving its traffic fraction there.
func (rt *Router) handleCanaryWrapper(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, ok := rt.readBody(w, r, "application/json")
	if !ok {
		return
	}
	owners := rt.ring.Owners(key, rt.cfg.Replicas)
	ctx, _ := rt.traceContext(w, r)
	outcomes := rt.replicate(ctx, owners, Op{Kind: OpCanary, Key: key, Payload: body})
	applied, firstErr := summarize(outcomes, http.StatusCreated)
	if applied == 0 {
		rt.routeOutcome("error")
		writeJSONError(w, statusOf(firstErr, http.StatusBadGateway), fmt.Errorf("no owner staged the canary: %s", firstErr))
		return
	}
	rt.routeOutcome("ok")
	writeJSONStatus(w, http.StatusCreated, map[string]any{
		"key": key, "replicated": applied, "owners": outcomes,
	})
}

// handleRollout builds the promote/rollback handler: the decision replicates
// to all owners through the same framed apply path as registrations, with
// the optional ?version=N guard carried in the op.
func (rt *Router) handleRollout(name string, kind OpKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		var version uint64
		if q := r.URL.Query().Get("version"); q != "" {
			v, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				rt.routeOutcome("reject")
				writeJSONError(w, http.StatusBadRequest, fmt.Errorf("bad version %q: %w", q, err))
				return
			}
			version = v
		}
		owners := rt.ring.Owners(key, rt.cfg.Replicas)
		ctx, _ := rt.traceContext(w, r)
		outcomes := rt.replicate(ctx, owners, Op{Kind: kind, Key: key, Version: version})
		applied, firstErr := summarize(outcomes, http.StatusOK)
		if applied == 0 {
			rt.routeOutcome("error")
			writeJSONError(w, statusOf(firstErr, http.StatusBadGateway), fmt.Errorf("no owner applied the %s: %s", name, firstErr))
			return
		}
		rt.routeOutcome("ok")
		writeJSONStatus(w, http.StatusOK, map[string]any{
			"key": key, name: applied, "owners": outcomes,
		})
	}
}

// handleVersions proxies the version-state read to the key's owners with
// failover, so rollout tooling can poll one router address.
func (rt *Router) handleVersions(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	owners := rt.ring.Owners(key, rt.cfg.Replicas)
	if len(owners) == 0 {
		rt.routeOutcome("error")
		writeJSONError(w, http.StatusBadGateway, errors.New("cluster: placement ring is empty"))
		return
	}
	res, err := rt.attemptChain(r.Context(), http.MethodGet, "/wrappers/"+url.PathEscape(key)+"/versions", "", nil, rt.health.Order(owners))
	if err != nil {
		rt.routeOutcome("error")
		writeJSONError(w, http.StatusBadGateway, fmt.Errorf("no replica could report versions: %w", err))
		return
	}
	rt.routeOutcome("ok")
	relay(w, res)
}

// summarize counts owners that answered with the wanted success status and
// collects the first failure detail for error reporting.
func summarize(outcomes []replicaOutcome, want int) (applied int, firstErr string) {
	for _, o := range outcomes {
		switch {
		case o.Error == "" && o.Status == want:
			applied++
		case firstErr == "":
			if o.Error != "" {
				firstErr = o.Node + ": " + o.Error
			} else {
				firstErr = fmt.Sprintf("%s: status %d", o.Node, o.Status)
			}
		}
	}
	if firstErr == "" {
		firstErr = "no owners"
	}
	return applied, firstErr
}

// statusOf maps an owner failure summary to a router status: client errors
// from the shard (a 4xx in the summary) pass through as 400-class, the
// rest is a gateway failure.
func statusOf(firstErr string, fallback int) int {
	if strings.Contains(firstErr, "status 4") {
		return http.StatusBadRequest
	}
	return fallback
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleHealthz reports the router's own liveness plus its view of the
// ring: member count, up count, replication factor, and per-node health.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodes := rt.health.Snapshot()
	up := 0
	for _, n := range nodes {
		if n.State == NodeUp.String() {
			up++
		}
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"mode":     "router",
		"replicas": rt.cfg.Replicas,
		"ring":     map[string]any{"nodes": rt.ring.Len(), "up": up},
		"nodes":    nodes,
	})
}

// Owners exposes placement for operational tooling: the ordered owner list
// of one key under the current ring.
func (rt *Router) Owners(key string) []string {
	return rt.ring.Owners(key, rt.cfg.Replicas)
}
