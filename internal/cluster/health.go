package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"resilex/internal/obs"
)

// NodeState is a shard node's availability as the membership layer sees it.
// The states mirror the per-site circuit breaker of wrapper.Supervisor:
// NodeUp is a closed breaker (route normally), NodeDown is an open one
// (skip the node, keep probing), and the first successful probe of a down
// node readmits it — the half-open trial collapsed into the poll loop,
// since a health probe is already exactly one cheap trial request.
type NodeState int

// Node availability states.
const (
	NodeUp NodeState = iota
	NodeDown
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// MembershipConfig tunes the health layer. The zero value is usable.
type MembershipConfig struct {
	// FailureThreshold is the number of consecutive probe or proxy failures
	// that marks a node down. Default 3.
	FailureThreshold int
	// Interval is the health-poll period. Default 1s.
	Interval time.Duration
	// ProbeTimeout bounds each individual probe. Default 500ms.
	ProbeTimeout time.Duration
	// Probe checks one node; nil defaults to an HTTP GET of node+"/healthz"
	// where any response below 500 counts as alive (a shard that answers
	// 4xx is misconfigured but reachable — routing to it beats dropping it).
	Probe func(ctx context.Context, node string) error
	// Jitter spreads each poll interval uniformly within ±Jitter·Interval,
	// so a fleet of routers restarted together does not probe every shard in
	// lockstep (thundering herd). 0 selects the default 0.1; negative
	// disables jitter. Values above 1 are clamped to 1.
	Jitter float64
	// Now is injectable for deterministic tests. Default time.Now.
	Now func() time.Time
	// Rand is the jitter source, injectable for deterministic tests: a
	// function returning a uniform float64 in [0, 1). Default math/rand.
	Rand func() float64
	// Observer receives the membership telemetry: the cluster_ring_nodes /
	// cluster_ring_nodes_up gauges, per-node cluster_node_up gauges, and
	// cluster_node_transitions_total counters. nil disables observation.
	Observer *obs.Observer
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.Probe == nil {
		client := &http.Client{}
		c.Probe = func(ctx context.Context, node string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
			if err != nil {
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				return fmt.Errorf("cluster: %s /healthz: status %d", node, resp.StatusCode)
			}
			return nil
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// Jittered spreads d uniformly within ±jitter·d using r as the randomness
// source: d · (1 + (2r−1)·jitter). With jitter 0 (or a degenerate result)
// the input is returned unchanged — the schedule never collapses to zero.
func Jittered(d time.Duration, jitter float64, r func() float64) time.Duration {
	if jitter <= 0 || d <= 0 {
		return d
	}
	j := time.Duration(float64(d) * (1 + (2*r()-1)*jitter))
	if j <= 0 {
		return d
	}
	return j
}

// nodeHealth is the per-node breaker record.
type nodeHealth struct {
	state       NodeState
	consecutive int // consecutive failures while up
	lastErr     string
	lastChange  time.Time
}

// NodeHealth is the externally visible snapshot of one node.
type NodeHealth struct {
	Node                string    `json:"node"`
	State               string    `json:"state"`
	ConsecutiveFailures int       `json:"consecutiveFailures"`
	LastError           string    `json:"lastError,omitempty"`
	LastTransition      time.Time `json:"lastTransition"`
}

// Membership tracks shard availability for the router: every node starts
// up, consecutive failures (probes or live proxy attempts, both count) past
// the threshold mark it down with an observable transition, and any
// successful probe or proxy marks it back up. Safe for concurrent use; the
// router reports outcomes from request goroutines while Run polls.
type Membership struct {
	cfg MembershipConfig

	mu    sync.Mutex
	nodes map[string]*nodeHealth
}

// NewMembership tracks the given nodes, all initially up.
func NewMembership(nodes []string, cfg MembershipConfig) *Membership {
	m := &Membership{cfg: cfg.withDefaults(), nodes: map[string]*nodeHealth{}}
	now := m.cfg.Now()
	for _, n := range nodes {
		m.nodes[n] = &nodeHealth{state: NodeUp, lastChange: now}
	}
	o := m.cfg.Observer
	o.Gauge("cluster_ring_nodes").Set(int64(len(m.nodes)))
	o.Gauge("cluster_ring_nodes_up").Set(int64(len(m.nodes)))
	for _, n := range nodes {
		o.Gauge(obs.WithLabels("cluster_node_up", "node", n)).Set(1)
	}
	return m
}

// Up reports whether the node is currently routable. Unknown nodes are up:
// the membership layer only ever vetoes, never invents members.
func (m *Membership) Up(node string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.nodes[node]
	return !ok || st.state == NodeUp
}

// UpCount reports how many tracked nodes are up.
func (m *Membership) UpCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.nodes {
		if st.state == NodeUp {
			n++
		}
	}
	return n
}

// Order arranges an owner list for failover: up nodes first (preserving
// ring order), down nodes appended as a last resort — a down mark is a
// routing hint, not a ban, because when every owner is down trying one
// anyway is strictly better than refusing the request.
func (m *Membership) Order(owners []string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	up := make([]string, 0, len(owners))
	var down []string
	for _, n := range owners {
		if st, ok := m.nodes[n]; ok && st.state == NodeDown {
			down = append(down, n)
		} else {
			up = append(up, n)
		}
	}
	return append(up, down...)
}

// ReportSuccess records a successful probe or proxy to the node, marking a
// down node back up.
func (m *Membership) ReportSuccess(node string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.nodes[node]
	if !ok {
		return
	}
	st.consecutive = 0
	st.lastErr = ""
	m.transitionLocked(node, st, NodeUp)
}

// ReportFailure records a failed probe or proxy to the node; the
// FailureThreshold-th consecutive failure marks it down.
func (m *Membership) ReportFailure(node string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.nodes[node]
	if !ok {
		return
	}
	st.consecutive++
	if err != nil {
		st.lastErr = err.Error()
	}
	if st.consecutive >= m.cfg.FailureThreshold {
		m.transitionLocked(node, st, NodeDown)
	}
}

// transitionLocked moves a node to the target state (no-op when already
// there), emitting the transition counter, the per-node gauge, the up-count
// gauge and an event. Caller holds m.mu.
func (m *Membership) transitionLocked(node string, st *nodeHealth, to NodeState) {
	if st.state == to {
		return
	}
	from := st.state
	st.state = to
	st.lastChange = m.cfg.Now()
	o := m.cfg.Observer
	o.Counter(obs.WithLabels("cluster_node_transitions_total",
		"node", node, "from", from.String(), "to", to.String())).Inc()
	upGauge := int64(1)
	if to == NodeDown {
		upGauge = 0
	}
	o.Gauge(obs.WithLabels("cluster_node_up", "node", node)).Set(upGauge)
	up := int64(0)
	for _, s := range m.nodes {
		if s.state == NodeUp {
			up++
		}
	}
	o.Gauge("cluster_ring_nodes_up").Set(up)
	o.Event("cluster.node", "node", node, "from", from.String(), "to", to.String())
}

// PollOnce probes every node concurrently and reports the results. Down
// nodes are probed too — that probe is the breaker's half-open trial, and
// its success readmits the node.
func (m *Membership) PollOnce(ctx context.Context) {
	m.mu.Lock()
	nodes := make([]string, 0, len(m.nodes))
	for n := range m.nodes {
		nodes = append(nodes, n)
	}
	m.mu.Unlock()
	sort.Strings(nodes)
	var wg sync.WaitGroup
	for _, node := range nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
			defer cancel()
			if err := m.cfg.Probe(pctx, node); err != nil {
				m.ReportFailure(node, err)
			} else {
				m.ReportSuccess(node)
			}
		}(node)
	}
	wg.Wait()
}

// Run polls roughly every Interval until ctx is canceled. Each wait is
// jittered within ±Jitter·Interval so a fleet of routers restarted at the
// same instant desynchronizes instead of probing every shard in lockstep.
func (m *Membership) Run(ctx context.Context) {
	t := time.NewTimer(Jittered(m.cfg.Interval, m.cfg.Jitter, m.cfg.Rand))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.PollOnce(ctx)
			t.Reset(Jittered(m.cfg.Interval, m.cfg.Jitter, m.cfg.Rand))
		}
	}
}

// Snapshot returns every node's health, sorted by node, for /healthz.
func (m *Membership) Snapshot() []NodeHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeHealth, 0, len(m.nodes))
	for node, st := range m.nodes {
		out = append(out, NodeHealth{
			Node:                node,
			State:               st.state.String(),
			ConsecutiveFailures: st.consecutive,
			LastError:           st.lastErr,
			LastTransition:      st.lastChange,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
