package cluster

import (
	"bytes"
	"errors"
	"testing"

	"resilex/internal/codec"
)

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []Op{
		{Kind: OpPut, Key: "site-a", Payload: []byte(`{"strategy":"lr"}`)},
		{Kind: OpDelete, Key: "site-b"},
		{Kind: OpCanary, Key: "site-a", Version: 7, Payload: []byte(`{"strategy":"lr2"}`)},
		{Kind: OpPromote, Key: "site-a", Version: 7},
		{Kind: OpRollback, Key: "site-a", Version: 7},
		{Kind: OpPromote, Key: "site-a"}, // version 0: promote whatever is staged
	} {
		frame := EncodeOp(op)
		if !IsOpFrame(frame) {
			t.Fatalf("%v: frame not recognized as op frame", op.Kind)
		}
		got, err := DecodeOp(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", op.Kind, err)
		}
		if got.Kind != op.Kind || got.Key != op.Key || got.Version != op.Version ||
			!bytes.Equal(got.Payload, op.Payload) {
			t.Fatalf("round trip: got %+v, want %+v", got, op)
		}
	}
}

// A version-1 frame (pre-versioned-record) must still decode during a
// rolling upgrade: put/delete only, record version 0.
func TestOpDecodeLegacyFrame(t *testing.T) {
	encodeLegacy := func(op Op) []byte {
		var w codec.Writer
		w.Uint(uint64(op.Kind))
		w.String(op.Key)
		w.Bytes2(op.Payload)
		return codec.Seal(OpMagic, opVersionLegacy, w.Bytes())
	}
	got, err := DecodeOp(encodeLegacy(Op{Kind: OpPut, Key: "k", Payload: []byte("p")}))
	if err != nil {
		t.Fatalf("legacy put: %v", err)
	}
	if got.Kind != OpPut || got.Key != "k" || got.Version != 0 || string(got.Payload) != "p" {
		t.Fatalf("legacy put decoded as %+v", got)
	}
	if _, err := DecodeOp(encodeLegacy(Op{Kind: OpDelete, Key: "k"})); err != nil {
		t.Fatalf("legacy delete: %v", err)
	}
	// Canary and beyond do not exist in the legacy format.
	if _, err := DecodeOp(encodeLegacy(Op{Kind: OpCanary, Key: "k", Payload: []byte("p")})); !errors.Is(err, codec.ErrMalformedInput) {
		t.Fatalf("legacy canary: err = %v, want ErrMalformedInput", err)
	}
}

func TestOpDecodeRejectsCorruption(t *testing.T) {
	frame := EncodeOp(Op{Kind: OpPut, Key: "k", Payload: []byte("payload")})

	// A flipped payload byte breaks the checksum, but the frame still sniffs
	// as ours — exactly the 415-vs-400 split the apply endpoint relies on.
	torn := append([]byte(nil), frame...)
	torn[len(torn)-1] ^= 0x01
	if !IsOpFrame(torn) {
		t.Fatal("corrupt frame should still sniff as an op frame")
	}
	if _, err := DecodeOp(torn); !errors.Is(err, codec.ErrMalformedInput) {
		t.Fatalf("corrupt frame: err = %v, want ErrMalformedInput", err)
	}

	if _, err := DecodeOp(frame[:len(frame)/2]); err == nil {
		t.Fatal("truncated frame decoded")
	}
	if IsOpFrame([]byte("xx")) || IsOpFrame([]byte(`{"json":true}`)) {
		t.Fatal("foreign bodies must not sniff as op frames")
	}

	// A structurally valid frame violating op invariants is malformed, not
	// silently accepted.
	bad := func(op Op) {
		t.Helper()
		if _, err := DecodeOp(EncodeOp(op)); !errors.Is(err, codec.ErrMalformedInput) {
			t.Fatalf("op %+v: err = %v, want ErrMalformedInput", op, err)
		}
	}
	bad(Op{Kind: OpKind(9), Key: "k"})
	bad(Op{Kind: OpPut, Key: ""})
	bad(Op{Kind: OpPut, Key: "k"})                            // put without payload
	bad(Op{Kind: OpCanary, Key: "k"})                         // canary without payload
	bad(Op{Kind: OpPromote, Key: "k", Payload: []byte("x")})  // promote carries no payload
	bad(Op{Kind: OpRollback, Key: "k", Payload: []byte("x")}) // neither does rollback
	bad(Op{Kind: OpDelete, Key: "k", Payload: []byte("x")})
}

func TestOpVersionSkew(t *testing.T) {
	var w codec.Writer
	w.Uint(uint64(OpPut))
	w.String("k")
	w.Uint(0)
	w.Bytes2([]byte("p"))
	blob := codec.Seal(OpMagic, OpVersion+1, w.Bytes())
	if !IsOpFrame(blob) {
		t.Fatal("future-version frame should still sniff as ours")
	}
	if _, err := DecodeOp(blob); !errors.Is(err, codec.ErrVersionMismatch) {
		t.Fatalf("version skew: err = %v, want ErrVersionMismatch", err)
	}
}
