package cluster

import (
	"bytes"
	"errors"
	"testing"

	"resilex/internal/codec"
)

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []Op{
		{Kind: OpPut, Key: "site-a", Payload: []byte(`{"strategy":"lr"}`)},
		{Kind: OpDelete, Key: "site-b"},
	} {
		frame := EncodeOp(op)
		if !IsOpFrame(frame) {
			t.Fatalf("%v: frame not recognized as op frame", op.Kind)
		}
		got, err := DecodeOp(frame)
		if err != nil {
			t.Fatalf("%v: decode: %v", op.Kind, err)
		}
		if got.Kind != op.Kind || got.Key != op.Key || !bytes.Equal(got.Payload, op.Payload) {
			t.Fatalf("round trip: got %+v, want %+v", got, op)
		}
	}
}

func TestOpDecodeRejectsCorruption(t *testing.T) {
	frame := EncodeOp(Op{Kind: OpPut, Key: "k", Payload: []byte("payload")})

	// A flipped payload byte breaks the checksum, but the frame still sniffs
	// as ours — exactly the 415-vs-400 split the apply endpoint relies on.
	torn := append([]byte(nil), frame...)
	torn[len(torn)-1] ^= 0x01
	if !IsOpFrame(torn) {
		t.Fatal("corrupt frame should still sniff as an op frame")
	}
	if _, err := DecodeOp(torn); !errors.Is(err, codec.ErrMalformedInput) {
		t.Fatalf("corrupt frame: err = %v, want ErrMalformedInput", err)
	}

	if _, err := DecodeOp(frame[:len(frame)/2]); err == nil {
		t.Fatal("truncated frame decoded")
	}
	if IsOpFrame([]byte("xx")) || IsOpFrame([]byte(`{"json":true}`)) {
		t.Fatal("foreign bodies must not sniff as op frames")
	}

	// A structurally valid frame with an unknown kind or empty key is
	// malformed, not silently accepted.
	bad := func(op Op) {
		t.Helper()
		var w codec.Writer
		w.Uint(uint64(op.Kind))
		w.String(op.Key)
		w.Bytes2(op.Payload)
		blob := codec.Seal(OpMagic, OpVersion, w.Bytes())
		if _, err := DecodeOp(blob); !errors.Is(err, codec.ErrMalformedInput) {
			t.Fatalf("op %+v: err = %v, want ErrMalformedInput", op, err)
		}
	}
	bad(Op{Kind: OpKind(9), Key: "k"})
	bad(Op{Kind: OpPut, Key: ""})
}

func TestOpVersionSkew(t *testing.T) {
	var w codec.Writer
	w.Uint(uint64(OpPut))
	w.String("k")
	w.Bytes2(nil)
	blob := codec.Seal(OpMagic, OpVersion+1, w.Bytes())
	if !IsOpFrame(blob) {
		t.Fatal("future-version frame should still sniff as ours")
	}
	if _, err := DecodeOp(blob); !errors.Is(err, codec.ErrVersionMismatch) {
		t.Fatalf("version skew: err = %v, want ErrVersionMismatch", err)
	}
}
