package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the per-node vnode count when RingConfig leaves it
// zero: enough points that a 4-node ring splits the key space within a few
// percent of evenly, cheap enough that ring rebuilds stay sub-millisecond.
const DefaultVirtualNodes = 128

// Ring is a consistent-hash ring assigning wrapper keys to shard nodes.
// Each node contributes vnodes virtual points; a key is owned by the first
// n distinct nodes clockwise from the key's hash. Placement is a pure
// function of the member set, the vnode count and the key — every router
// (and every restart of the same router) computes identical owners, which
// is what lets replication and failover agree on where a key lives without
// any coordination service.
//
// A Ring is safe for concurrent use: Owners takes a read lock, Add/Remove
// rebuild the point slice under the write lock.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]struct{}
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring. vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, members: map[string]struct{}{}}
}

// ringHash is the placement hash: SHA-256 truncated to 64 bits. A keyed
// cryptographic hash is overkill for placement, but it is deterministic
// across processes and architectures and free of the clumping a weak string
// hash shows on near-identical vnode labels — and placement runs once per
// request, not per token.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts nodes into the ring (already-present nodes are no-ops).
func (r *Ring) Add(nodes ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for _, n := range nodes {
		if _, ok := r.members[n]; !ok {
			r.members[n] = struct{}{}
			changed = true
		}
	}
	if changed {
		r.rebuildLocked()
	}
}

// Remove deletes a node; keys it owned move to their next clockwise owners
// while every other key keeps its placement (the consistent-hashing
// property the vnode layout exists for).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[node]; !ok {
		return
	}
	delete(r.members, node)
	r.rebuildLocked()
}

func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for node := range r.members {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{ringHash(node + "#" + strconv.Itoa(i)), node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode labels is vanishingly rare but
		// must not make placement depend on map iteration order.
		return r.points[i].node < r.points[j].node
	})
}

// Len reports the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Nodes returns the member nodes in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owners returns the first n distinct nodes clockwise from the key's hash:
// the key's primary owner followed by its failover replicas, in the order a
// router should try them. Fewer than n members returns every member (still
// in ring order for this key). An empty ring returns nil.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
