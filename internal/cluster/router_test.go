package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"resilex/internal/obs"
)

// fakeShard is an in-process stand-in for a `serve -mode shard` node: it
// answers /extract with its own id (so tests can see who served a request),
// records every replicated op applied to it, and reports health.
type fakeShard struct {
	id    string
	srv   *httptest.Server
	delay time.Duration // extract latency, for hedging tests

	mu       sync.Mutex
	applied  []Op
	wrappers map[string]bool
	canaries map[string]uint64
}

func newFakeShard(t *testing.T, id string) *fakeShard {
	t.Helper()
	s := &fakeShard{id: id, wrappers: map[string]bool{}, canaries: map[string]uint64{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /extract", func(w http.ResponseWriter, r *http.Request) {
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"results":[],"servedBy":%q}`, s.id)
	})
	mux.HandleFunc("POST /cluster/apply", func(w http.ResponseWriter, r *http.Request) {
		blob, _ := io.ReadAll(r.Body)
		op, err := DecodeOp(blob)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.applied = append(s.applied, op)
		switch op.Kind {
		case OpPut:
			s.wrappers[op.Key] = true
			w.WriteHeader(http.StatusCreated)
		case OpDelete:
			if !s.wrappers[op.Key] {
				http.Error(w, "unknown", http.StatusNotFound)
				return
			}
			delete(s.wrappers, op.Key)
			w.WriteHeader(http.StatusOK)
		case OpCanary:
			if !s.wrappers[op.Key] {
				http.Error(w, "no active wrapper", http.StatusNotFound)
				return
			}
			v := op.Version
			if v == 0 {
				v = 2
			}
			s.canaries[op.Key] = v
			w.WriteHeader(http.StatusCreated)
		case OpPromote, OpRollback:
			v, staged := s.canaries[op.Key]
			if !staged {
				http.Error(w, "no canary", http.StatusNotFound)
				return
			}
			if op.Version != 0 && op.Version != v {
				http.Error(w, "version conflict", http.StatusConflict)
				return
			}
			delete(s.canaries, op.Key)
			w.WriteHeader(http.StatusOK)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *fakeShard) url() string { return s.srv.URL }

func (s *fakeShard) appliedOps() []Op {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Op(nil), s.applied...)
}

// testCluster boots n fake shards and a router over them.
func testCluster(t *testing.T, n int, tune func(*RouterConfig)) (*Router, []*fakeShard, *obs.Observer) {
	t.Helper()
	shards := make([]*fakeShard, n)
	peers := make([]string, n)
	for i := range shards {
		shards[i] = newFakeShard(t, fmt.Sprintf("shard-%d", i))
		peers[i] = shards[i].url()
	}
	o := obs.New()
	cfg := RouterConfig{Peers: peers, Replicas: 2, Observer: o, ProxyTimeout: 2 * time.Second}
	if tune != nil {
		tune(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, shards, o
}

func shardByURL(shards []*fakeShard, url string) *fakeShard {
	for _, s := range shards {
		if s.url() == url {
			return s
		}
	}
	return nil
}

func extractBody(keys ...string) []byte {
	type doc struct {
		Key  string `json:"key"`
		HTML string `json:"html"`
	}
	docs := make([]doc, len(keys))
	for i, k := range keys {
		docs[i] = doc{Key: k, HTML: "<p>x</p>"}
	}
	b, _ := json.Marshal(map[string]any{"docs": docs})
	return b
}

func routerDo(t *testing.T, rt *Router, method, path string, body []byte, contentType string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	rt.Mux().ServeHTTP(rec, req)
	return rec
}

func TestRouterRoutesToOwner(t *testing.T) {
	rt, shards, _ := testCluster(t, 3, nil)
	key := "site-route"
	owners := rt.Owners(key)
	rec := routerDo(t, rt, "POST", "/extract", extractBody(key), "application/json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		ServedBy string `json:"servedBy"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if want := shardByURL(shards, owners[0]).id; resp.ServedBy != want {
		t.Fatalf("served by %s, want primary owner %s", resp.ServedBy, want)
	}
}

// TestRouterFailoverStaleMembership is the killed-between-placement-and-proxy
// case: the primary owner dies and the membership view has NOT noticed (no
// poll has run), so the router places the request on the dead node and must
// recover by failing over to the next replica mid-request.
func TestRouterFailoverStaleMembership(t *testing.T) {
	rt, shards, o := testCluster(t, 3, nil)
	key := "site-failover"
	owners := rt.Owners(key)
	primary := shardByURL(shards, owners[0])
	replica := shardByURL(shards, owners[1])

	// Kill the primary. Membership still believes it is up.
	primary.srv.Close()
	if !rt.Health().Up(owners[0]) {
		t.Fatal("membership noticed the kill early; test premise broken")
	}

	rec := routerDo(t, rt, "POST", "/extract", extractBody(key), "application/json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		ServedBy string `json:"servedBy"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ServedBy != replica.id {
		t.Fatalf("served by %s, want replica %s", resp.ServedBy, replica.id)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["cluster_failover_total"] < 1 {
		t.Error("failover not counted")
	}
	if snap.Counters[obs.WithLabels("cluster_route_total", "outcome", "ok")] < 1 {
		t.Error("ok route not counted")
	}
}

// TestRouterFailoverConcurrent hammers the failover path from many
// goroutines (run under -race in CI): every request must succeed even
// though the primary owner is dead and the membership view is stale, and
// after enough passive failure reports the membership must mark the node
// down so later requests skip it entirely.
func TestRouterFailoverConcurrent(t *testing.T) {
	rt, shards, _ := testCluster(t, 3, func(cfg *RouterConfig) {
		cfg.Membership.FailureThreshold = 3
	})
	key := "site-concurrent"
	owners := rt.Owners(key)
	primary := shardByURL(shards, owners[0])
	primary.srv.Close()

	const n = 16
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := routerDo(t, rt, "POST", "/extract", extractBody(key), "application/json")
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (zero failed requests through a shard kill)", i, code)
		}
	}
	if rt.Health().Up(owners[0]) {
		t.Error("dead primary still marked up after repeated passive failures")
	}
	// With the node marked down, Order must route around it up front.
	ordered := rt.Health().Order(owners)
	if ordered[0] == owners[0] {
		t.Errorf("dead node still ordered first: %v", ordered)
	}
}

func TestRouterCrossShardBatchRejected(t *testing.T) {
	rt, _, o := testCluster(t, 3, nil)
	// Find two keys whose primary owners differ (must exist on a 3-node ring).
	var k1, k2 string
	for i := 0; i < 1000 && k2 == ""; i++ {
		k := fmt.Sprintf("key-%d", i)
		switch {
		case k1 == "":
			k1 = k
		case rt.Owners(k)[0] != rt.Owners(k1)[0]:
			k2 = k
		}
	}
	if k2 == "" {
		t.Fatal("could not find keys on distinct shards")
	}
	rec := routerDo(t, rt, "POST", "/extract", extractBody(k1, k2), "application/json")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("cross-shard batch: status %d, want 400: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "spans shards") {
		t.Errorf("error %s does not explain the cross-shard rejection", rec.Body)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters[obs.WithLabels("cluster_route_total", "outcome", "cross_shard")] != 1 {
		t.Error("cross_shard outcome not counted")
	}

	// Same key repeated — and distinct keys sharing a primary — are fine.
	rec = routerDo(t, rt, "POST", "/extract", extractBody(k1, k1, k1), "application/json")
	if rec.Code != http.StatusOK {
		t.Fatalf("same-key batch: status %d: %s", rec.Code, rec.Body)
	}
}

func TestRouterHedging(t *testing.T) {
	rt, shards, o := testCluster(t, 3, func(cfg *RouterConfig) {
		cfg.HedgeAfter = 30 * time.Millisecond
	})
	key := "site-hedge"
	owners := rt.Owners(key)
	primary := shardByURL(shards, owners[0])
	replica := shardByURL(shards, owners[1])
	primary.delay = 500 * time.Millisecond // straggler, alive

	start := time.Now()
	rec := routerDo(t, rt, "POST", "/extract", extractBody(key), "application/json")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		ServedBy string `json:"servedBy"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ServedBy != replica.id {
		t.Fatalf("served by %s, want hedged replica %s", resp.ServedBy, replica.id)
	}
	if took := time.Since(start); took >= 500*time.Millisecond {
		t.Errorf("hedged request took %v — waited for the straggler", took)
	}
	if o.Metrics.Snapshot().Counters["cluster_hedge_total"] != 1 {
		t.Error("hedge not counted")
	}
}

func TestRouterReplicatesPutAndDelete(t *testing.T) {
	rt, shards, o := testCluster(t, 3, nil)
	key := "site-repl"
	owners := rt.Owners(key)
	payload := []byte(`{"strategy":"lr"}`)

	rec := routerDo(t, rt, "PUT", "/wrappers/"+key, payload, "application/json")
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT: status %d: %s", rec.Code, rec.Body)
	}
	var put struct {
		Replicated int `json:"replicated"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &put); err != nil {
		t.Fatal(err)
	}
	if put.Replicated != 2 {
		t.Fatalf("replicated = %d, want 2", put.Replicated)
	}
	for _, owner := range owners {
		s := shardByURL(shards, owner)
		ops := s.appliedOps()
		if len(ops) != 1 || ops[0].Kind != OpPut || ops[0].Key != key || !bytes.Equal(ops[0].Payload, payload) {
			t.Errorf("owner %s applied %+v, want one put of %s", s.id, ops, key)
		}
	}
	// The non-owner shard saw nothing.
	for _, s := range shards {
		if s.url() != owners[0] && s.url() != owners[1] && len(s.appliedOps()) != 0 {
			t.Errorf("non-owner %s applied %+v", s.id, s.appliedOps())
		}
	}

	rec = routerDo(t, rt, "DELETE", "/wrappers/"+key, nil, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE: status %d: %s", rec.Code, rec.Body)
	}
	// A second delete: every owner answers 404, so the router answers 404.
	rec = routerDo(t, rt, "DELETE", "/wrappers/"+key, nil, "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second DELETE: status %d, want 404: %s", rec.Code, rec.Body)
	}
	snap := o.Metrics.Snapshot()
	if n := snap.Counters[obs.WithLabels("cluster_replicate_total", "op", "put", "outcome", "ok")]; n != 2 {
		t.Errorf("put replicate ok = %d, want 2", n)
	}
}

// TestRouterPutSurvivesOwnerLoss: with R=2 a PUT still lands when one owner
// is dead — degraded (replicated=1) but servable, reported in the response.
func TestRouterPutSurvivesOwnerLoss(t *testing.T) {
	rt, shards, _ := testCluster(t, 3, nil)
	key := "site-degraded"
	owners := rt.Owners(key)
	shardByURL(shards, owners[1]).srv.Close()

	rec := routerDo(t, rt, "PUT", "/wrappers/"+key, []byte(`{}`), "application/json")
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT with one dead owner: status %d: %s", rec.Code, rec.Body)
	}
	var put struct {
		Replicated int              `json:"replicated"`
		Owners     []replicaOutcome `json:"owners"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &put); err != nil {
		t.Fatal(err)
	}
	if put.Replicated != 1 {
		t.Fatalf("replicated = %d, want 1", put.Replicated)
	}
	sawErr := false
	for _, o := range put.Owners {
		if o.Error != "" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Errorf("degraded replication not reported: %+v", put.Owners)
	}
}

func TestRouterRejects(t *testing.T) {
	rt, _, o := testCluster(t, 2, func(cfg *RouterConfig) {
		cfg.MaxBodyBytes = 512
	})
	big := make([]byte, 2048)
	if rec := routerDo(t, rt, "POST", "/extract", big, "application/json"); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized: status %d, want 413", rec.Code)
	}
	if rec := routerDo(t, rt, "POST", "/extract", []byte(`{}`), "text/plain"); rec.Code != http.StatusUnsupportedMediaType {
		t.Errorf("foreign type: status %d, want 415", rec.Code)
	}
	if rec := routerDo(t, rt, "POST", "/extract", []byte(`{`), "application/json"); rec.Code != http.StatusBadRequest {
		t.Errorf("undecodable: status %d, want 400", rec.Code)
	}
	snap := o.Metrics.Snapshot()
	if n := snap.Counters[obs.WithLabels("cluster_route_total", "outcome", "reject")]; n != 3 {
		t.Errorf("reject outcomes = %d, want 3", n)
	}
}

func TestRouterHealthz(t *testing.T) {
	rt, shards, _ := testCluster(t, 2, func(cfg *RouterConfig) {
		cfg.Membership.FailureThreshold = 1
	})
	shards[1].srv.Close()
	rt.Health().ReportFailure(shards[1].url(), fmt.Errorf("closed"))

	rec := routerDo(t, rt, "GET", "/healthz", nil, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var h struct {
		Mode     string `json:"mode"`
		Replicas int    `json:"replicas"`
		Ring     struct {
			Nodes int `json:"nodes"`
			Up    int `json:"up"`
		} `json:"ring"`
		Nodes []NodeHealth `json:"nodes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Mode != "router" || h.Replicas != 2 || h.Ring.Nodes != 2 || h.Ring.Up != 1 || len(h.Nodes) != 2 {
		t.Errorf("healthz = %+v", h)
	}
}

// TestRouterReplicatesCanaryRollout drives the canary → promote lifecycle
// through the router: both ops must reach every owner of the key as framed
// versioned records, and a version-guarded promote must carry the guard.
func TestRouterReplicatesCanaryRollout(t *testing.T) {
	rt, shards, _ := testCluster(t, 3, nil)
	// Register the active wrapper first — a canary needs one to stage next to.
	if rec := routerDo(t, rt, "PUT", "/wrappers/site-a", []byte(`{"v":1}`), "application/json"); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d: %s", rec.Code, rec.Body)
	}
	if rec := routerDo(t, rt, "PUT", "/wrappers/site-a/canary", []byte(`{"v":2}`), "application/json"); rec.Code != http.StatusCreated {
		t.Fatalf("canary: %d: %s", rec.Code, rec.Body)
	}
	// A promote guarded on a version no owner staged conflicts everywhere.
	if rec := routerDo(t, rt, "POST", "/wrappers/site-a/promote?version=99", nil, ""); rec.Code == http.StatusOK {
		t.Fatalf("stale promote succeeded: %s", rec.Body)
	}
	if rec := routerDo(t, rt, "POST", "/wrappers/site-a/promote", nil, ""); rec.Code != http.StatusOK {
		t.Fatalf("promote: %d: %s", rec.Code, rec.Body)
	}
	owners := rt.Owners("site-a")
	if len(owners) != 2 {
		t.Fatalf("owners = %v", owners)
	}
	for _, node := range owners {
		sh := shardByURL(shards, node)
		var kinds []OpKind
		for _, op := range sh.appliedOps() {
			kinds = append(kinds, op.Kind)
		}
		want := []OpKind{OpPut, OpCanary, OpPromote, OpPromote}
		if fmt.Sprint(kinds) != fmt.Sprint(want) {
			t.Errorf("%s applied %v, want %v", sh.id, kinds, want)
		}
	}
	// Stage another canary and roll it back through the router.
	if rec := routerDo(t, rt, "PUT", "/wrappers/site-a/canary", []byte(`{"v":3}`), "application/json"); rec.Code != http.StatusCreated {
		t.Fatalf("second canary: %d", rec.Code)
	}
	if rec := routerDo(t, rt, "POST", "/wrappers/site-a/rollback", nil, ""); rec.Code != http.StatusOK {
		t.Fatalf("rollback: %d: %s", rec.Code, rec.Body)
	}
	for _, node := range owners {
		ops := shardByURL(shards, node).appliedOps()
		if last := ops[len(ops)-1]; last.Kind != OpRollback {
			t.Errorf("%s last op = %v, want rollback", node, last.Kind)
		}
	}
}

// erroringShard answers every request with the given status — a reachable
// node that keeps failing at the application layer.
func erroringShard(t *testing.T, status int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "application-level failure", status)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRouterShard5xxDoesNotPoisonMembership is the breaker-poisoning
// regression test: a shard that answers 5xx at the application layer (e.g. a
// 503 construction-budget rejection of one client's pathological wrapper) is
// reachable and must stay Up — only transport-level failures may walk the
// membership breaker down. Requests still fail over away from the 5xx answer.
func TestRouterShard5xxDoesNotPoisonMembership(t *testing.T) {
	bad := erroringShard(t, http.StatusServiceUnavailable)
	good := newFakeShard(t, "good")
	o := obs.New()
	rt, err := NewRouter(RouterConfig{
		Peers:    []string{bad.URL, good.url()},
		Replicas: 2,
		Observer: o,
		Membership: MembershipConfig{
			FailureThreshold: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A storm of replicated mutations: the bad owner answers 503 every time.
	for i := 0; i < 10; i++ {
		rec := routerDo(t, rt, "PUT", "/wrappers/k", []byte(`{"v":1}`), "application/json")
		if rec.Code != http.StatusCreated {
			t.Fatalf("PUT %d: %d: %s (one healthy owner must carry it)", i, rec.Code, rec.Body)
		}
	}
	// And an extract storm, which runs the failover chain through the 5xx
	// node whenever it is primary.
	for i := 0; i < 10; i++ {
		if rec := routerDo(t, rt, "POST", "/extract", extractBody("k"), "application/json"); rec.Code != http.StatusOK {
			t.Fatalf("extract %d: %d: %s", i, rec.Code, rec.Body)
		}
	}
	if !rt.Health().Up(bad.URL) {
		t.Fatal("an answering 5xx shard was marked down by passive traffic")
	}
	if up := rt.Health().UpCount(); up != 2 {
		t.Fatalf("UpCount = %d, want 2", up)
	}
}

// TestRouterClient4xxDoesNotPoisonMembership: relayed client errors (404
// deletes, 400 bodies) are verdicts on the client, not the shard — a client
// replaying bad requests must not walk a healthy owner's breaker down.
func TestRouterClient4xxDoesNotPoisonMembership(t *testing.T) {
	rt, _, _ := testCluster(t, 2, func(cfg *RouterConfig) {
		cfg.Membership.FailureThreshold = 2
	})
	for i := 0; i < 8; i++ {
		// Unknown key: every owner answers 404.
		if rec := routerDo(t, rt, "DELETE", "/wrappers/nosuch", nil, ""); rec.Code != http.StatusNotFound {
			t.Fatalf("DELETE %d: %d", i, rec.Code)
		}
	}
	if up := rt.Health().UpCount(); up != 2 {
		t.Fatalf("UpCount = %d after 4xx storm, want 2", up)
	}
}

// TestRouterProxiesVersions: the version-state read proxies to an owner.
func TestRouterVersionsProxied(t *testing.T) {
	rt, shards, _ := testCluster(t, 2, nil)
	for _, sh := range shards {
		sh.srv.Config.Handler.(*http.ServeMux).HandleFunc("GET /wrappers/{key}/versions",
			func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprintf(w, `{"key":%q,"servedBy":%q}`, r.PathValue("key"), sh.id)
			})
	}
	rec := routerDo(t, rt, "GET", "/wrappers/site-a/versions", nil, "")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"key":"site-a"`) {
		t.Fatalf("versions proxy: %d: %s", rec.Code, rec.Body)
	}
}
