package cluster

import (
	"bytes"
	"errors"
	"testing"

	"resilex/internal/codec"
)

func encodeLegacyOp(op Op) []byte {
	var w codec.Writer
	w.Uint(uint64(op.Kind))
	w.String(op.Key)
	w.Bytes2(op.Payload)
	return codec.Seal(OpMagic, opVersionLegacy, w.Bytes())
}

// TestMixedVersionSpoolReplay pins the rolling-upgrade replay contract: an
// op spool written partly by a version-1 sender (put/delete, no record
// version) and partly by a version-2 sender (versioned records, rollout
// kinds) splits frame by frame with codec.NextFrame and decodes in order
// with cluster.DecodeOp — and replaying the mixture through the registry's
// version-assignment rule never regresses the version counter, because
// legacy frames carry version 0 ("assign the next one") rather than a stale
// absolute number.
func TestMixedVersionSpoolReplay(t *testing.T) {
	p1, p2, p3 := []byte(`{"v":"one"}`), []byte(`{"v":"two"}`), []byte(`{"v":"three"}`)
	want := []struct {
		op     Op
		legacy bool
	}{
		{op: Op{Kind: OpPut, Key: "vs", Payload: p1}, legacy: true},
		{op: Op{Kind: OpPut, Key: "vs", Version: 2, Payload: p2}},
		{op: Op{Kind: OpCanary, Key: "vs", Version: 3, Payload: p3}},
		{op: Op{Kind: OpDelete, Key: "other"}, legacy: true},
		{op: Op{Kind: OpPromote, Key: "vs", Version: 3}},
		{op: Op{Kind: OpPut, Key: "vs", Payload: p1}, legacy: true},
		{op: Op{Kind: OpRollback, Key: "vs"}},
	}
	var spool []byte
	for _, rec := range want {
		if rec.legacy {
			spool = append(spool, encodeLegacyOp(rec.op)...)
		} else {
			spool = append(spool, EncodeOp(rec.op)...)
		}
	}

	var got []Op
	versions := map[string]uint64{}
	for rest := spool; len(rest) > 0; {
		frame, tail, err := codec.NextFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: NextFrame: %v", len(got), err)
		}
		rest = tail
		op, err := DecodeOp(frame)
		if err != nil {
			t.Fatalf("frame %d: DecodeOp: %v", len(got), err)
		}
		got = append(got, op)
		// The registry's assignment rule: version 0 means "assign the next
		// one", non-zero is the sender's record version. Either way the
		// per-key counter must only move forward.
		if op.Kind == OpPut || op.Kind == OpCanary || op.Kind == OpDelete {
			next := op.Version
			if next == 0 {
				next = versions[op.Key] + 1
			}
			if next <= versions[op.Key] {
				t.Fatalf("frame %d (%v %q): version regressed %d → %d",
					len(got)-1, op.Kind, op.Key, versions[op.Key], next)
			}
			versions[op.Key] = next
		}
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}
	for i, rec := range want {
		wop := rec.op
		if rec.legacy {
			wop.Version = 0 // the legacy format has no record-version field
		}
		g := got[i]
		if g.Kind != wop.Kind || g.Key != wop.Key || g.Version != wop.Version ||
			!bytes.Equal(g.Payload, wop.Payload) {
			t.Errorf("op %d: got %+v, want %+v", i, g, wop)
		}
	}
	// The mixed history lands on version 4 for "vs": legacy put 1, v2 put 2,
	// canary 3, legacy put 4 — proof the v1 frames slotted into the v2
	// numbering instead of restarting it.
	if versions["vs"] != 4 {
		t.Errorf(`replayed version for "vs" = %d, want 4`, versions["vs"])
	}

	// A spool torn mid-frame replays its intact prefix and then stops with
	// ErrMalformedInput — no resynchronization on garbage.
	torn := spool[:len(spool)-3]
	n := 0
	for rest := torn; ; n++ {
		frame, tail, err := codec.NextFrame(rest)
		if err != nil {
			if !errors.Is(err, codec.ErrMalformedInput) {
				t.Fatalf("torn spool: err = %v, want ErrMalformedInput", err)
			}
			break
		}
		if _, err := DecodeOp(frame); err != nil {
			t.Fatalf("torn spool frame %d: %v", n, err)
		}
		rest = tail
	}
	if n != len(want)-1 {
		t.Fatalf("torn spool replayed %d intact frames, want %d", n, len(want)-1)
	}

	// Frames of a foreign magic interleave at the NextFrame layer (it reads
	// only the header) and are filtered with IsOpFrame before DecodeOp.
	mixed := append(codec.Seal("RXOT", 1, []byte("artifact blob")), EncodeOp(want[0].op)...)
	frame, tail, err := codec.NextFrame(mixed)
	if err != nil {
		t.Fatalf("foreign frame: NextFrame: %v", err)
	}
	if IsOpFrame(frame) {
		t.Fatal("foreign-magic frame sniffed as an op frame")
	}
	frame, _, err = codec.NextFrame(tail)
	if err != nil {
		t.Fatalf("frame after foreign: NextFrame: %v", err)
	}
	if !IsOpFrame(frame) {
		t.Fatal("op frame after a foreign frame not recognized")
	}
	if _, err := DecodeOp(frame); err != nil {
		t.Fatalf("op frame after a foreign frame: %v", err)
	}
}
