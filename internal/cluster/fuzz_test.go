package cluster

import (
	"bytes"
	"errors"
	"testing"

	"resilex/internal/codec"
)

// FuzzDecodeVersionRecord drives DecodeOp — the versioned-record frame every
// canary/promote/rollback replication travels as — with arbitrary bytes.
// The invariants: no panic, no unbounded allocation, and every accepted
// frame is internally consistent (valid kind, non-empty key, payload
// presence matching the kind) and re-encodes to a decodable frame. A frame
// that fails any structural check must classify under ErrMalformedInput so
// the apply endpoint can answer 400 instead of applying a torn operation
// partially.
func FuzzDecodeVersionRecord(f *testing.F) {
	f.Add(EncodeOp(Op{Kind: OpPut, Key: "site", Payload: []byte(`{"version":1}`)}))
	f.Add(EncodeOp(Op{Kind: OpDelete, Key: "site"}))
	f.Add(EncodeOp(Op{Kind: OpCanary, Key: "site", Version: 3, Payload: []byte(`{}`)}))
	f.Add(EncodeOp(Op{Kind: OpPromote, Key: "site", Version: 3}))
	f.Add(EncodeOp(Op{Kind: OpRollback, Key: "site", Version: 3}))
	// A legacy (version-1) put frame.
	legacy := func() []byte {
		var w codec.Writer
		w.Uint(uint64(OpPut))
		w.String("site")
		w.Bytes2([]byte(`{}`))
		return codec.Seal(OpMagic, opVersionLegacy, w.Bytes())
	}
	f.Add(legacy())
	// Torn and corrupt variants.
	whole := EncodeOp(Op{Kind: OpCanary, Key: "site", Version: 9, Payload: []byte(`{"x":1}`)})
	f.Add(whole[:len(whole)/2])
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("RXCL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		op, err := DecodeOp(blob)
		if err != nil {
			if !errors.Is(err, codec.ErrMalformedInput) {
				t.Fatalf("decode error %v does not classify under ErrMalformedInput", err)
			}
			return
		}
		// Accepted frames satisfy the op invariants...
		if op.Key == "" {
			t.Fatalf("accepted op with empty key: %+v", op)
		}
		switch op.Kind {
		case OpPut, OpCanary:
			if len(op.Payload) == 0 {
				t.Fatalf("accepted %v without payload", op.Kind)
			}
		case OpDelete, OpPromote, OpRollback:
			if len(op.Payload) != 0 {
				t.Fatalf("accepted %v with payload", op.Kind)
			}
		default:
			t.Fatalf("accepted unknown kind %d", op.Kind)
		}
		// ...and survive a re-encode round trip (legacy frames re-encode as
		// current-version frames with record version 0 — same operation).
		again, err := DecodeOp(EncodeOp(op))
		if err != nil {
			t.Fatalf("re-encode of accepted op failed to decode: %v", err)
		}
		if again.Kind != op.Kind || again.Key != op.Key || again.Version != op.Version ||
			!bytes.Equal(again.Payload, op.Payload) {
			t.Fatalf("re-encode round trip: got %+v, want %+v", again, op)
		}
	})
}
