package rx

// Simplify rewrites the AST with language-preserving algebraic rules until
// a fixpoint, shrinking the expressions produced by DFA→regex state
// elimination into something a human can read. The rules are purely
// syntactic (no automaton construction) and each preserves L(·) exactly:
//
//	ε | E        → E?                E? when ε ∈ L(E) → E
//	E·E*         → E+                E*·E  → E+
//	E*·E*        → E*                E+·E* → E+ (and mirror)
//	(E | F···)?  class/ε merging     a | b → [a b]   (via Union ctor)
//	common prefix/suffix factoring of unions: ab | ac → a(b|c)
//	X? Y where L(Y) ⊆ L(X?Y) collapses are NOT attempted (needs automata)
//
// Simplify never grows the node count; it returns the input when no rule
// applies.
func Simplify(n *Node) *Node {
	// Every productive rewrite shrinks Size or keeps it while reaching a
	// fixpoint; the iteration cap is a safety net against rule interactions.
	for iter := 0; iter < 100; iter++ {
		next := simplifyOnce(n)
		if next == n || Equal(next, n) || next.Size() > n.Size() {
			return n
		}
		n = next
	}
	return n
}

func simplifyOnce(n *Node) *Node {
	// Bottom-up.
	subs := make([]*Node, len(n.Subs))
	changed := false
	for i, s := range n.Subs {
		subs[i] = simplifyOnce(s)
		if subs[i] != s {
			changed = true
		}
	}
	if changed {
		switch n.Op {
		case OpConcat:
			n = Concat(subs...)
		case OpUnion:
			n = Union(subs...)
		case OpStar:
			n = Star(subs[0])
		case OpPlus:
			n = Plus(subs[0])
		case OpOpt:
			n = Opt(subs[0])
		case OpIntersect:
			n = Intersect(subs[0], subs[1])
		case OpDiff:
			n = Diff(subs[0], subs[1])
		case OpComplement:
			n = Complement(subs[0])
		}
	}
	switch n.Op {
	case OpUnion:
		return simplifyUnion(n)
	case OpConcat:
		return simplifyConcat(n)
	case OpOpt:
		// E? with ε ∈ L(E) → E.
		if eps, ok := n.Subs[0].MatchesEpsilon(); ok && eps {
			return n.Subs[0]
		}
	}
	return n
}

// simplifyUnion applies ε-absorption and common prefix/suffix factoring.
func simplifyUnion(n *Node) *Node {
	subs := n.Subs
	// ε | E → E? (fold ε into an Opt around the rest).
	hasEps := false
	var rest []*Node
	for _, s := range subs {
		if s.Op == OpEpsilon {
			hasEps = true
			continue
		}
		rest = append(rest, s)
	}
	if hasEps && len(rest) > 0 {
		return Opt(Union(rest...))
	}
	// Common prefix factoring: a·X | a·Y → a·(X|Y). Operate on adjacentable
	// pairs; the Union constructor re-normalizes.
	for i := 0; i < len(subs); i++ {
		for j := i + 1; j < len(subs); j++ {
			if f, ok := factorPair(subs[i], subs[j]); ok {
				var out []*Node
				for k, s := range subs {
					if k != i && k != j {
						out = append(out, s)
					}
				}
				out = append(out, f)
				return Union(out...)
			}
		}
	}
	return n
}

// factorPair factors two union operands by their longest common prefix and
// suffix of concatenation factors; ok=false when they share neither.
func factorPair(a, b *Node) (*Node, bool) {
	fa, fb := factorsOf(a), factorsOf(b)
	pre := 0
	for pre < len(fa) && pre < len(fb) && Equal(fa[pre], fb[pre]) {
		pre++
	}
	suf := 0
	for suf < len(fa)-pre && suf < len(fb)-pre &&
		Equal(fa[len(fa)-1-suf], fb[len(fb)-1-suf]) {
		suf++
	}
	if pre == 0 && suf == 0 {
		return nil, false
	}
	midA := Concat(fa[pre : len(fa)-suf]...)
	midB := Concat(fb[pre : len(fb)-suf]...)
	var parts []*Node
	parts = append(parts, fa[:pre]...)
	parts = append(parts, Union(midA, midB))
	parts = append(parts, fa[len(fa)-suf:]...)
	return Concat(parts...), true
}

func factorsOf(n *Node) []*Node {
	if n.Op == OpConcat {
		return n.Subs
	}
	return []*Node{n}
}

// simplifyConcat merges adjacent iteration factors over equal bodies:
// E·E* → E+, E*·E → E+, E*·E* → E*, E+·E* → E+, E*·E+ → E+, E?·E* → E*,
// E*·E? → E*.
func simplifyConcat(n *Node) *Node {
	subs := n.Subs
	for i := 0; i+1 < len(subs); i++ {
		merged, ok := mergeIter(subs[i], subs[i+1])
		if !ok {
			continue
		}
		out := make([]*Node, 0, len(subs)-1)
		out = append(out, subs[:i]...)
		out = append(out, merged)
		out = append(out, subs[i+2:]...)
		return Concat(out...)
	}
	// Multi-factor bodies: the Concat constructor flattens (p q)(p q)* into
	// [p, q, (p q)*], so also match a run of factors equal to an adjacent
	// star's body: B₁…Bₖ·(B₁…Bₖ)* → (B₁…Bₖ)+ and the mirror image.
	for i, s := range subs {
		if s.Op != OpStar {
			continue
		}
		bf := factorsOf(s.Subs[0])
		k := len(bf)
		if k < 2 {
			continue // single-factor case handled by mergeIter above
		}
		if i >= k && equalRun(subs[i-k:i], bf) {
			out := make([]*Node, 0, len(subs)-k)
			out = append(out, subs[:i-k]...)
			out = append(out, Plus(s.Subs[0]))
			out = append(out, subs[i+1:]...)
			return Concat(out...)
		}
		if i+k < len(subs) && equalRun(subs[i+1:i+1+k], bf) {
			out := make([]*Node, 0, len(subs)-k)
			out = append(out, subs[:i]...)
			out = append(out, Plus(s.Subs[0]))
			out = append(out, subs[i+1+k:]...)
			return Concat(out...)
		}
	}
	return n
}

func equalRun(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func body(n *Node) (*Node, Op) {
	switch n.Op {
	case OpStar, OpPlus, OpOpt:
		return n.Subs[0], n.Op
	}
	return n, OpClass // OpClass stands for "bare" here
}

func mergeIter(a, b *Node) (*Node, bool) {
	ba, oa := body(a)
	bb, ob := body(b)
	if !Equal(ba, bb) {
		return nil, false
	}
	bare := func(o Op) bool { return o == OpClass }
	switch {
	case bare(oa) && ob == OpStar: // E·E* → E+
		return Plus(ba), true
	case oa == OpStar && bare(ob): // E*·E → E+
		return Plus(ba), true
	case oa == OpStar && ob == OpStar: // E*·E* → E*
		return Star(ba), true
	case oa == OpPlus && ob == OpStar, oa == OpStar && ob == OpPlus: // E+·E* → E+
		return Plus(ba), true
	case oa == OpOpt && ob == OpStar, oa == OpStar && ob == OpOpt: // E?·E* → E*
		return Star(ba), true
	}
	return nil, false
}
