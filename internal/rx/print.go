package rx

import (
	"strings"

	"resilex/internal/symtab"
)

// Print renders the AST in the package's concrete syntax using names from
// tab. The output reparses to a structurally equal AST (given the same Σ).
func Print(n *Node, tab *symtab.Table) string {
	var b strings.Builder
	printer{tab: tab}.print(&b, n, precUnion)
	return b.String()
}

// PrintSigma renders the AST like Print, but abbreviates symbol classes
// against the alphabet sigma: a class equal to Σ prints as "." and a class
// missing fewer than half of Σ prints in negated form "[^ …]". This matches
// the paper's Tags / (Tags − FORM) notation.
func PrintSigma(n *Node, tab *symtab.Table, sigma symtab.Alphabet) string {
	var b strings.Builder
	printer{tab: tab, sigma: sigma, useSigma: true}.print(&b, n, precUnion)
	return b.String()
}

// Operator precedence, loosest to tightest. Diff and Intersect sit between
// union and concatenation (see parse.go).
const (
	precUnion = iota
	precDiff
	precIsect
	precConcat
	precPostfix
)

type printer struct {
	tab      *symtab.Table
	sigma    symtab.Alphabet
	useSigma bool
}

func (p printer) print(b *strings.Builder, n *Node, outer int) {
	switch n.Op {
	case OpEmpty:
		b.WriteString("#empty")
	case OpEpsilon:
		b.WriteString("#eps")
	case OpClass:
		p.printClass(b, n.Class)
	case OpConcat:
		p.wrap(b, outer, precConcat, func() {
			for i, s := range n.Subs {
				if i > 0 {
					b.WriteByte(' ')
				}
				p.print(b, s, precConcat+1)
			}
		})
	case OpUnion:
		p.wrap(b, outer, precUnion, func() {
			for i, s := range n.Subs {
				if i > 0 {
					b.WriteString(" | ")
				}
				p.print(b, s, precUnion+1)
			}
		})
	case OpStar:
		p.print(b, n.Subs[0], precPostfix)
		b.WriteByte('*')
	case OpPlus:
		p.print(b, n.Subs[0], precPostfix)
		b.WriteByte('+')
	case OpOpt:
		p.print(b, n.Subs[0], precPostfix)
		b.WriteByte('?')
	case OpIntersect:
		p.wrap(b, outer, precIsect, func() {
			p.print(b, n.Subs[0], precIsect)
			b.WriteString(" & ")
			p.print(b, n.Subs[1], precIsect+1)
		})
	case OpDiff:
		p.wrap(b, outer, precDiff, func() {
			p.print(b, n.Subs[0], precDiff)
			b.WriteString(" - ")
			p.print(b, n.Subs[1], precDiff+1)
		})
	case OpComplement:
		// '!x' parses as an atom, but a postfix operator grabs the whole
		// complement: '!e*' means !(e*). When a complement is itself the
		// operand of a postfix operator it must be parenthesized.
		if outer >= precPostfix {
			b.WriteString("(!")
			p.print(b, n.Subs[0], precPostfix+1)
			b.WriteByte(')')
			return
		}
		b.WriteByte('!')
		p.print(b, n.Subs[0], precPostfix+1)
	default:
		b.WriteString("<?>")
	}
}

// wrap emits parentheses when the node's precedence is looser than the
// context requires. Postfix operands always need explicit grouping below
// precPostfix, handled by callers passing precPostfix/precPostfix+1.
func (p printer) wrap(b *strings.Builder, outer, inner int, body func()) {
	if inner < outer {
		b.WriteByte('(')
		body()
		b.WriteByte(')')
		return
	}
	body()
}

func (p printer) printClass(b *strings.Builder, set symtab.Alphabet) {
	if set.Len() == 1 {
		b.WriteString(QuoteName(p.tab.Name(set.Symbols()[0])))
		return
	}
	if p.useSigma && !p.sigma.IsEmpty() {
		if set.Equal(p.sigma) {
			b.WriteByte('.')
			return
		}
		missing := p.sigma.Minus(set)
		if set.SubsetOf(p.sigma) && missing.Len() > 0 && missing.Len() < set.Len() {
			b.WriteString("[^")
			for _, s := range missing.Symbols() {
				b.WriteByte(' ')
				b.WriteString(QuoteName(p.tab.Name(s)))
			}
			b.WriteString(" ]")
			return
		}
	}
	b.WriteByte('[')
	for i, s := range set.Symbols() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(QuoteName(p.tab.Name(s)))
	}
	b.WriteByte(']')
}

// QuoteName renders a token name in the concrete syntax: plain identifiers
// (letters, digits, '_', '/') pass through; anything else is single-quoted
// with embedded quotes doubled, matching the lexer's quoted-identifier form.
func QuoteName(name string) string {
	plain := name != ""
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c == '_' || c == '/' ||
			'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9') {
			plain = false
			break
		}
	}
	if plain {
		return name
	}
	return "'" + strings.ReplaceAll(name, "'", "''") + "'"
}
