package rx

import (
	"testing"

	"resilex/internal/symtab"
)

// FuzzParse asserts the parser never panics and that successful parses
// round-trip through Print.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p", "p q | r*", "(p | q)+ [a b] [^ c] #eps #empty",
		"p - q & r", "!(p q)*", "((((", "p |", "<p>", "# #x", "a<b>c",
		"p* <p> .*", "] [ ^", "p?*+", "FORM /FORM INPUT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tab := symtab.NewTable()
		n, err := Parse(src, tab, symtab.Alphabet{})
		if err != nil {
			return
		}
		out := Print(n, tab)
		n2, err := Parse(out, tab, symtab.Alphabet{})
		if err != nil {
			t.Fatalf("printed form %q of %q does not reparse: %v", out, src, err)
		}
		if !Equal(n, n2) {
			t.Fatalf("round trip changed AST: %q -> %q", src, out)
		}
		// Simplify must not panic and must not grow the AST.
		if s := Simplify(n); s.Size() > n.Size() {
			t.Fatalf("Simplify grew %q", src)
		}
	})
}

// FuzzParseMarked asserts marked parsing never panics and enforces the
// single-top-level-mark contract.
func FuzzParseMarked(f *testing.F) {
	for _, s := range []string{"q <p> .*", "<p>", "a | <p>", "(<p>)", "<p> <q>", "#empty <p>"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tab := symtab.NewTable()
		m, err := ParseMarked(src, tab, symtab.Alphabet{})
		if err != nil {
			return
		}
		if m.Left == nil || m.Right == nil {
			t.Fatal("nil component on success")
		}
		if !m.Sigma.Contains(m.P) {
			t.Fatal("sigma missing the marked symbol")
		}
	})
}
