package rx

import (
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a stable, total serialization of the AST: two nodes
// have equal fingerprints iff they are structurally Equal after
// canonicalization of union operand order. Used as the state identity in
// the derivative-based DFA construction, where termination rests on
// derivatives being finite modulo associativity/commutativity/idempotence
// of union (Brzozowski's theorem) — properties the constructors plus this
// canonical ordering provide.
func Fingerprint(n *Node) string {
	var b strings.Builder
	fingerprint(Canonicalize(n), &b)
	return b.String()
}

func fingerprint(n *Node, b *strings.Builder) {
	fmt.Fprintf(b, "%d", int(n.Op))
	if n.Op == OpClass {
		b.WriteByte('{')
		for _, s := range n.Class.Symbols() {
			fmt.Fprintf(b, "%d,", s)
		}
		b.WriteByte('}')
	}
	if len(n.Subs) > 0 {
		b.WriteByte('(')
		for _, s := range n.Subs {
			fingerprint(s, b)
			b.WriteByte(';')
		}
		b.WriteByte(')')
	}
}

// Canonicalize returns an AST equal to n up to reordering of union
// operands, with unions sorted by fingerprint. Shared subtrees may be
// returned unchanged.
func Canonicalize(n *Node) *Node {
	subs := make([]*Node, len(n.Subs))
	changed := false
	for i, s := range n.Subs {
		subs[i] = Canonicalize(s)
		if subs[i] != s {
			changed = true
		}
	}
	if n.Op == OpUnion {
		keys := make([]string, len(subs))
		for i, s := range subs {
			var b strings.Builder
			fingerprint(s, &b)
			keys[i] = b.String()
		}
		if !sort.StringsAreSorted(keys) {
			idx := make([]int, len(subs))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
			sorted := make([]*Node, len(subs))
			for i, j := range idx {
				sorted[i] = subs[j]
			}
			subs = sorted
			changed = true
		}
	}
	if !changed {
		return n
	}
	out := &Node{Op: n.Op, Class: n.Class, Subs: subs}
	return out
}
