// Package rx implements regular expressions over token alphabets.
//
// Expressions are abstract syntax trees over interned symbols
// (internal/symtab). Beyond the classical operators (∅, ε, symbol classes,
// concatenation, union, Kleene star) the AST supports the extended
// operators the paper uses as meta-notation — intersection, difference and
// complement — which internal/machine compiles via product automata, so
// expressions such as (Σ−p)* − E can be written and printed directly.
package rx

import (
	"fmt"
	"sort"
	"strings"

	"resilex/internal/symtab"
)

// Op identifies the operator at an AST node.
type Op int

// Operators. OpClass covers both single literals (singleton class) and the
// paper's (Σ−p) style classes. OpIntersect, OpDiff and OpComplement are the
// extended (non-Kleene) operators.
const (
	OpEmpty      Op = iota // ∅ — the empty language
	OpEpsilon              // ε — the singleton language {ε}
	OpClass                // one symbol drawn from a set
	OpConcat               // E1 · E2 · … · En
	OpUnion                // E1 | E2 | … | En
	OpStar                 // E*
	OpPlus                 // E+
	OpOpt                  // E?
	OpIntersect            // E1 & E2
	OpDiff                 // E1 − E2
	OpComplement           // !E (relative to a compile-time Σ)
)

// String names the operator for diagnostics.
func (op Op) String() string {
	switch op {
	case OpEmpty:
		return "empty"
	case OpEpsilon:
		return "epsilon"
	case OpClass:
		return "class"
	case OpConcat:
		return "concat"
	case OpUnion:
		return "union"
	case OpStar:
		return "star"
	case OpPlus:
		return "plus"
	case OpOpt:
		return "opt"
	case OpIntersect:
		return "intersect"
	case OpDiff:
		return "diff"
	case OpComplement:
		return "complement"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Node is an immutable regular-expression AST node. Construct nodes with the
// package constructors, which perform light algebraic simplification; do not
// mutate a Node after creation.
type Node struct {
	Op    Op
	Class symtab.Alphabet // OpClass only: the admissible symbols
	Subs  []*Node         // operands (OpConcat/OpUnion: n-ary; unary ops: one; OpIntersect/OpDiff: two)
}

var (
	emptyNode   = &Node{Op: OpEmpty}
	epsilonNode = &Node{Op: OpEpsilon}
)

// Empty returns ∅.
func Empty() *Node { return emptyNode }

// Epsilon returns ε.
func Epsilon() *Node { return epsilonNode }

// Sym returns the literal expression matching exactly the symbol s.
func Sym(s symtab.Symbol) *Node {
	return &Node{Op: OpClass, Class: symtab.NewAlphabet(s)}
}

// Class returns an expression matching any one symbol of the set. An empty
// set yields ∅.
func Class(set symtab.Alphabet) *Node {
	if set.IsEmpty() {
		return emptyNode
	}
	return &Node{Op: OpClass, Class: set}
}

// AnyOf is shorthand for Class over the listed symbols.
func AnyOf(syms ...symtab.Symbol) *Node {
	return Class(symtab.NewAlphabet(syms...))
}

// Concat returns E1·E2·…·En, flattening nested concatenations, dropping ε
// operands, and collapsing to ∅ if any operand is ∅.
func Concat(subs ...*Node) *Node {
	var flat []*Node
	for _, s := range subs {
		switch s.Op {
		case OpEmpty:
			return emptyNode
		case OpEpsilon:
			// identity
		case OpConcat:
			flat = append(flat, s.Subs...)
		default:
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return epsilonNode
	case 1:
		return flat[0]
	}
	return &Node{Op: OpConcat, Subs: flat}
}

// Union returns E1|E2|…|En, flattening nested unions, dropping ∅ operands,
// merging sibling classes, and deduplicating structurally equal operands.
func Union(subs ...*Node) *Node {
	var flat []*Node
	var classes symtab.Alphabet
	haveClass := false
	var collect func(*Node)
	collect = func(s *Node) {
		switch s.Op {
		case OpEmpty:
			// identity
		case OpUnion:
			for _, sub := range s.Subs {
				collect(sub)
			}
		case OpClass:
			classes = classes.Union(s.Class)
			haveClass = true
		default:
			flat = append(flat, s)
		}
	}
	for _, s := range subs {
		collect(s)
	}
	if haveClass {
		flat = append(flat, Class(classes))
	}
	// Structural dedup (quadratic; unions stay small in practice).
	var uniq []*Node
	for _, s := range flat {
		dup := false
		for _, u := range uniq {
			if Equal(s, u) {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, s)
		}
	}
	switch len(uniq) {
	case 0:
		return emptyNode
	case 1:
		return uniq[0]
	}
	return &Node{Op: OpUnion, Subs: uniq}
}

// Star returns E*. (E*)* = E*, ∅* = ε* = ε, (E+)* = E*, (E?)* = E*.
func Star(sub *Node) *Node {
	switch sub.Op {
	case OpEmpty, OpEpsilon:
		return epsilonNode
	case OpStar:
		return sub
	case OpPlus, OpOpt:
		return Star(sub.Subs[0])
	}
	return &Node{Op: OpStar, Subs: []*Node{sub}}
}

// Plus returns E+. ∅+ = ∅, ε+ = ε, (E*)+ = E*, (E?)+ = E*.
func Plus(sub *Node) *Node {
	switch sub.Op {
	case OpEmpty:
		return emptyNode
	case OpEpsilon:
		return epsilonNode
	case OpStar:
		return sub
	case OpOpt:
		return Star(sub.Subs[0])
	case OpPlus:
		return sub
	}
	return &Node{Op: OpPlus, Subs: []*Node{sub}}
}

// Opt returns E?. ∅? = ε, ε? = ε, (E*)? = E*, (E+)? = E*, (E?)? = E?.
func Opt(sub *Node) *Node {
	switch sub.Op {
	case OpEmpty, OpEpsilon:
		return epsilonNode
	case OpStar:
		return sub
	case OpPlus:
		return Star(sub.Subs[0])
	case OpOpt:
		return sub
	}
	return &Node{Op: OpOpt, Subs: []*Node{sub}}
}

// Intersect returns E1 & E2. ∅ absorbs.
func Intersect(a, b *Node) *Node {
	if a.Op == OpEmpty || b.Op == OpEmpty {
		return emptyNode
	}
	if Equal(a, b) {
		return a
	}
	return &Node{Op: OpIntersect, Subs: []*Node{a, b}}
}

// Diff returns E1 − E2 (language difference). E − ∅ = E, ∅ − E = ∅, E − E = ∅.
func Diff(a, b *Node) *Node {
	if a.Op == OpEmpty {
		return emptyNode
	}
	if b.Op == OpEmpty {
		return a
	}
	if Equal(a, b) {
		return emptyNode
	}
	return &Node{Op: OpDiff, Subs: []*Node{a, b}}
}

// Complement returns !E, the complement relative to the Σ* fixed when the
// expression is compiled. !!E = E.
func Complement(a *Node) *Node {
	if a.Op == OpComplement {
		return a.Subs[0]
	}
	return &Node{Op: OpComplement, Subs: []*Node{a}}
}

// Repeat returns E·E·…·E (n times); n = 0 yields ε.
func Repeat(sub *Node, n int) *Node {
	if n < 0 {
		panic("rx: negative repeat count")
	}
	subs := make([]*Node, n)
	for i := range subs {
		subs[i] = sub
	}
	return Concat(subs...)
}

// Word returns the literal concatenation of the given symbols; empty input
// yields ε.
func Word(syms ...symtab.Symbol) *Node {
	subs := make([]*Node, len(syms))
	for i, s := range syms {
		subs[i] = Sym(s)
	}
	return Concat(subs...)
}

// ReverseNode returns an AST for the reversal of the language: concatenation
// operands flip order; union, intersection, difference, complement and the
// iteration operators commute with reversal (rev(Σ*) = Σ* makes complement
// safe). Used to run left-side algorithms on right-side context.
func ReverseNode(n *Node) *Node {
	switch n.Op {
	case OpConcat:
		subs := make([]*Node, len(n.Subs))
		for i, s := range n.Subs {
			subs[len(n.Subs)-1-i] = ReverseNode(s)
		}
		return Concat(subs...)
	case OpUnion:
		subs := make([]*Node, len(n.Subs))
		for i, s := range n.Subs {
			subs[i] = ReverseNode(s)
		}
		return Union(subs...)
	case OpStar:
		return Star(ReverseNode(n.Subs[0]))
	case OpPlus:
		return Plus(ReverseNode(n.Subs[0]))
	case OpOpt:
		return Opt(ReverseNode(n.Subs[0]))
	case OpIntersect:
		return Intersect(ReverseNode(n.Subs[0]), ReverseNode(n.Subs[1]))
	case OpDiff:
		return Diff(ReverseNode(n.Subs[0]), ReverseNode(n.Subs[1]))
	case OpComplement:
		return Complement(ReverseNode(n.Subs[0]))
	}
	return n
}

// Equal reports structural equality of two ASTs (after constructor
// normalization; it is not semantic language equality).
func Equal(a, b *Node) bool {
	if a == b {
		return true
	}
	if a.Op != b.Op || len(a.Subs) != len(b.Subs) {
		return false
	}
	if a.Op == OpClass && !a.Class.Equal(b.Class) {
		return false
	}
	for i := range a.Subs {
		if !Equal(a.Subs[i], b.Subs[i]) {
			return false
		}
	}
	return true
}

// Size is the number of AST nodes, counting a k-symbol class as one node.
// Used as the input-size measure in the complexity experiments.
func (n *Node) Size() int {
	size := 1
	for _, s := range n.Subs {
		size += s.Size()
	}
	return size
}

// HasExtendedOps reports whether the AST contains intersection, difference
// or complement nodes (which require product/complement automaton
// constructions rather than plain Thompson steps).
func (n *Node) HasExtendedOps() bool {
	switch n.Op {
	case OpIntersect, OpDiff, OpComplement:
		return true
	}
	for _, s := range n.Subs {
		if s.HasExtendedOps() {
			return true
		}
	}
	return false
}

// Symbols returns the set of symbols mentioned anywhere in the AST. Note
// this is a syntactic alphabet; the semantic Σ of a language may be larger.
func (n *Node) Symbols() symtab.Alphabet {
	var acc symtab.Alphabet
	n.walkSymbols(&acc)
	return acc
}

func (n *Node) walkSymbols(acc *symtab.Alphabet) {
	if n.Op == OpClass {
		*acc = acc.Union(n.Class)
	}
	for _, s := range n.Subs {
		s.walkSymbols(acc)
	}
}

// Walk calls fn for every node in the AST in preorder. If fn returns false
// the node's children are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, s := range n.Subs {
		s.Walk(fn)
	}
}

// MatchesEpsilon reports whether ε ∈ L(n), computed syntactically where
// possible. For extended operators the answer requires automaton
// construction, so this returns (value, ok=false) when it cannot decide.
func (n *Node) MatchesEpsilon() (bool, bool) {
	switch n.Op {
	case OpEmpty, OpClass:
		return false, true
	case OpEpsilon, OpStar, OpOpt:
		return true, true
	case OpPlus:
		return n.Subs[0].MatchesEpsilon()
	case OpConcat:
		for _, s := range n.Subs {
			v, ok := s.MatchesEpsilon()
			if !ok {
				return false, false
			}
			if !v {
				return false, true
			}
		}
		return true, true
	case OpUnion:
		sawUnknown := false
		for _, s := range n.Subs {
			v, ok := s.MatchesEpsilon()
			if !ok {
				sawUnknown = true
				continue
			}
			if v {
				return true, true
			}
		}
		return false, !sawUnknown
	}
	return false, false
}

// SortSubs returns the operands of a union sorted by their printed form,
// producing a deterministic order for golden tests. Other ops are returned
// unchanged.
func SortSubs(n *Node, tab *symtab.Table) *Node {
	if n.Op != OpUnion {
		return n
	}
	subs := make([]*Node, len(n.Subs))
	copy(subs, n.Subs)
	sort.Slice(subs, func(i, j int) bool {
		return Print(subs[i], tab) < Print(subs[j], tab)
	})
	return &Node{Op: OpUnion, Subs: subs}
}

// GoString renders a debug view of the AST shape (ops only).
func (n *Node) GoString() string {
	var b strings.Builder
	var rec func(*Node)
	rec = func(n *Node) {
		b.WriteString(n.Op.String())
		if len(n.Subs) > 0 {
			b.WriteByte('(')
			for i, s := range n.Subs {
				if i > 0 {
					b.WriteByte(' ')
				}
				rec(s)
			}
			b.WriteByte(')')
		}
	}
	rec(n)
	return b.String()
}
