package rx

import (
	"math/rand"
	"testing"

	"resilex/internal/symtab"
)

func TestSimplifyRules(t *testing.T) {
	tab := symtab.NewTable()
	cases := []struct{ in, want string }{
		{"#eps | p", "p?"},
		{"#eps | p | q", "[p q]?"},
		{"p p*", "p+"},
		{"p* p", "p+"},
		{"p* p*", "p*"},
		{"p+ p*", "p+"},
		{"p* p+", "p+"},
		{"p? p*", "p*"},
		{"p* p?", "p*"},
		{"(p q) (p q)*", "(p q)+"},
		{"p q | p r", "p (q | r)"},
		{"p q r | p p r", "p (q | p) r"},
		{"(p*)?", "p*"},
		{"q | p q", "p? q"},
		{"p q p* | p r p*", "p (q | r) p*"},
	}
	for _, c := range cases {
		in, err := Parse(c.in, tab, symtab.Alphabet{})
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		want, err := Parse(c.want, tab, symtab.Alphabet{})
		if err != nil {
			t.Fatalf("parse %q: %v", c.want, err)
		}
		got := Simplify(in)
		if !Equal(got, want) {
			t.Errorf("Simplify(%q) = %s, want %s", c.in, Print(got, tab), Print(want, tab))
		}
	}
}

func TestSimplifyNoRule(t *testing.T) {
	tab := symtab.NewTable()
	for _, src := range []string{"p", "p q", "p | q r", "p*", "(p | q)* p"} {
		n := MustParse(src, tab, symtab.Alphabet{})
		if got := Simplify(n); !Equal(got, n) {
			t.Errorf("Simplify(%q) changed a normal form to %s", src, Print(got, tab))
		}
	}
}

func TestSimplifyNeverGrows(t *testing.T) {
	tab := symtab.NewTable()
	syms := tab.InternAll("p", "q")
	rng := rand.New(rand.NewSource(31))
	gen := func(depth int) *Node { return genRandom(rng, syms, depth) }
	for i := 0; i < 300; i++ {
		n := gen(4)
		s := Simplify(n)
		if s.Size() > n.Size() {
			t.Fatalf("Simplify grew %s (%d) to %s (%d)",
				Print(n, tab), n.Size(), Print(s, tab), s.Size())
		}
	}
}

// genRandom mirrors the generator in extract's property tests; kept local to
// avoid an import cycle.
func genRandom(rng *rand.Rand, syms []symtab.Symbol, depth int) *Node {
	if depth <= 0 {
		if rng.Intn(4) == 0 {
			return Epsilon()
		}
		return Sym(syms[rng.Intn(len(syms))])
	}
	switch rng.Intn(8) {
	case 0, 1, 2:
		return Concat(genRandom(rng, syms, depth-1), genRandom(rng, syms, depth-1))
	case 3, 4:
		return Union(genRandom(rng, syms, depth-1), genRandom(rng, syms, depth-1))
	case 5:
		return Star(genRandom(rng, syms, depth-1))
	case 6:
		return Opt(genRandom(rng, syms, depth-1))
	default:
		return Sym(syms[rng.Intn(len(syms))])
	}
}
