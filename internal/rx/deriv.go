package rx

import "resilex/internal/symtab"

// Brzozowski derivatives: a third, fully syntactic semantics for the AST,
// independent of the automata in internal/machine. Unlike Thompson
// compilation, derivatives handle the extended operators (∩, −, ¬) without
// any product construction, so they double as an oracle for the automata
// engine (see machine's cross-check tests) and as a direct matcher for
// one-off membership queries.
//
// Complement is interpreted relative to an explicit Σ, passed to Derive so
// that ¬E behaves identically to the compiled form.

// Nullable reports whether ε ∈ L(n). It is total — defined for every
// operator — by structural recursion (ν in Brzozowski's notation).
func Nullable(n *Node) bool {
	switch n.Op {
	case OpEpsilon, OpStar, OpOpt:
		return true
	case OpEmpty, OpClass:
		return false
	case OpPlus:
		return Nullable(n.Subs[0])
	case OpConcat:
		for _, s := range n.Subs {
			if !Nullable(s) {
				return false
			}
		}
		return true
	case OpUnion:
		for _, s := range n.Subs {
			if Nullable(s) {
				return true
			}
		}
		return false
	case OpIntersect:
		return Nullable(n.Subs[0]) && Nullable(n.Subs[1])
	case OpDiff:
		return Nullable(n.Subs[0]) && !Nullable(n.Subs[1])
	case OpComplement:
		return !Nullable(n.Subs[0])
	}
	return false
}

// Derive returns the Brzozowski derivative ∂_sym(n): the expression whose
// language is { w | sym·w ∈ L(n) }. sigma is the alphabet complements are
// taken against.
func Derive(n *Node, sym symtab.Symbol, sigma symtab.Alphabet) *Node {
	switch n.Op {
	case OpEmpty, OpEpsilon:
		return Empty()
	case OpClass:
		if n.Class.Contains(sym) {
			return Epsilon()
		}
		return Empty()
	case OpConcat:
		// ∂(E1·R) = ∂E1·R  |  ν(E1)·∂R, generalized to n-ary.
		var alts []*Node
		for i, s := range n.Subs {
			d := Derive(s, sym, sigma)
			rest := append([]*Node{d}, n.Subs[i+1:]...)
			alts = append(alts, Concat(rest...))
			if !Nullable(s) {
				break
			}
		}
		return Union(alts...)
	case OpUnion:
		alts := make([]*Node, len(n.Subs))
		for i, s := range n.Subs {
			alts[i] = Derive(s, sym, sigma)
		}
		return Union(alts...)
	case OpStar:
		return Concat(Derive(n.Subs[0], sym, sigma), n)
	case OpPlus:
		return Concat(Derive(n.Subs[0], sym, sigma), Star(n.Subs[0]))
	case OpOpt:
		return Derive(n.Subs[0], sym, sigma)
	case OpIntersect:
		return Intersect(Derive(n.Subs[0], sym, sigma), Derive(n.Subs[1], sym, sigma))
	case OpDiff:
		return Diff(Derive(n.Subs[0], sym, sigma), Derive(n.Subs[1], sym, sigma))
	case OpComplement:
		if !sigma.Contains(sym) {
			// sym ∉ Σ: no word of Σ* starts with it, so the derivative of
			// the complement (taken within Σ*) is empty.
			return Empty()
		}
		return Complement(Derive(n.Subs[0], sym, sigma))
	}
	return Empty()
}

// Matches reports word ∈ L(n) by iterated derivation — no automaton is
// built. Symbols outside sigma reject unless n itself can consume them
// (classes never contain them when built from Parse, so in practice they
// reject).
func Matches(n *Node, word []symtab.Symbol, sigma symtab.Alphabet) bool {
	for _, sym := range word {
		n = Derive(n, sym, sigma)
		if n.Op == OpEmpty {
			return false
		}
	}
	return Nullable(n)
}
