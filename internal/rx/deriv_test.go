package rx

import (
	"testing"

	"resilex/internal/symtab"
)

func TestNullable(t *testing.T) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll("p", "q")...)
	cases := []struct {
		src  string
		want bool
	}{
		{"#eps", true},
		{"#empty", false},
		{"p", false},
		{"p*", true},
		{"p+", false},
		{"p?", true},
		{"p* q*", true},
		{"p* q", false},
		{"p | #eps", true},
		{"p & p*", false},
		{"p* & q*", true},
		{"p* - #eps", false},
		{"p* - q", true},
		{"!p", true},
		{"!(p*)", false},
		{"!(p q)", true},
	}
	for _, c := range cases {
		n := MustParse(c.src, tab, sigma)
		if got := Nullable(n); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestDeriveBasics(t *testing.T) {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)
	word := func(s string) []symtab.Symbol {
		w, err := ParseWord(s, tab)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	cases := []struct {
		src    string
		accept []string
		reject []string
	}{
		{"p q", []string{"p q"}, []string{"", "p", "q p", "p q q"}},
		{"(p q)*", []string{"", "p q", "p q p q"}, []string{"p", "q"}},
		{"p* q", []string{"q", "p q", "p p q"}, []string{"", "p"}},
		{"p | q q", []string{"p", "q q"}, []string{"q", "p p"}},
		{"(p | q)* & !(q .*)", []string{"", "p", "p q"}, []string{"q", "q p"}},
		{".* - p*", []string{"q", "p q"}, []string{"", "p", "p p"}},
		{"!(p* q)", []string{"", "p", "q q"}, []string{"q", "p q"}},
	}
	for _, c := range cases {
		n := MustParse(c.src, tab, sigma)
		for _, w := range c.accept {
			if !Matches(n, word(w), sigma) {
				t.Errorf("%q should match %q", c.src, w)
			}
		}
		for _, w := range c.reject {
			if Matches(n, word(w), sigma) {
				t.Errorf("%q should reject %q", c.src, w)
			}
		}
	}
}

func TestDeriveForeignSymbol(t *testing.T) {
	tab := symtab.NewTable()
	p := tab.Intern("p")
	outside := tab.Intern("zzz")
	sigma := symtab.NewAlphabet(p)
	n := MustParse("!#empty", tab, sigma) // Σ*
	if Matches(n, []symtab.Symbol{outside}, sigma) {
		t.Error("complement accepted a word outside Σ*")
	}
	if !Matches(n, []symtab.Symbol{p}, sigma) {
		t.Error("Σ* rejected p")
	}
}

// ∂ and ν satisfy the fundamental identity: w ∈ L(E) ⟺ ν(∂_w E).
// Checked for every prefix order along random words.
func TestDeriveStepwise(t *testing.T) {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)
	n := MustParse("(p q | q)* p?", tab, sigma)
	w := []symtab.Symbol{p, q, q, p}
	cur := n
	for i, sym := range w {
		cur = Derive(cur, sym, sigma)
		// The derivative's language must contain exactly the suffixes.
		wantFull := Matches(n, w, sigma)
		gotSuffix := Matches(cur, w[i+1:], sigma)
		if wantFull != gotSuffix {
			t.Fatalf("step %d: suffix match %v, full match %v", i, gotSuffix, wantFull)
		}
	}
}
