package rx

import (
	"math/rand"
	"strings"
	"testing"

	"resilex/internal/symtab"
)

func TestParseBasics(t *testing.T) {
	tab := symtab.NewTable()
	cases := []struct {
		src  string
		want string // via GoString shape
	}{
		{"p", "class"},
		{"p q", "concat(class class)"},
		{"p | q", "class"}, // classes merge
		{"p q | q p", "union(concat(class class) concat(class class))"},
		{"p*", "star(class)"},
		{"p+", "plus(class)"},
		{"p?", "opt(class)"},
		{"(p q)*", "star(concat(class class))"},
		{"#eps", "epsilon"},
		{"#empty", "empty"},
		{"#eps p", "class"},
		{"[p q]", "class"},
		{"p - q", "diff(class class)"},
		{"p & q", "intersect(class class)"},
		{"!p", "complement(class)"},
		{"!p*", "complement(star(class))"},
	}
	for _, c := range cases {
		n, err := Parse(c.src, tab, symtab.Alphabet{})
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := n.GoString(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseDotAndNegClass(t *testing.T) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll("a", "b", "c")...)
	n, err := Parse(". - b", tab, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpDiff || n.Subs[0].Op != OpClass || n.Subs[0].Class.Len() != 3 {
		t.Errorf("dot did not expand to sigma: %#v", n)
	}
	n, err = Parse("[^ b]", tab, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpClass || n.Class.Len() != 2 || n.Class.Contains(tab.Lookup("b")) {
		t.Errorf("[^ b] = %#v", n)
	}
	// Σ is inferred as union of provided sigma and mentioned idents.
	n, err = Parse("d .", tab, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if n.Subs[1].Class.Len() != 4 {
		t.Errorf("inferred sigma = %v, want 4 symbols", n.Subs[1].Class.Symbols())
	}
}

func TestParsePrecedence(t *testing.T) {
	tab := symtab.NewTable()
	// union is loosest: a b | c d & e - f groups as (a b) | (((c d) & e) - f)?
	// precedence: | < - < & < concat, so "c d & e - f" = ((c d) & e) - f... no:
	// diff binds looser than &: diff := isect (- isect)*, so c d & e - f = ((c d)&e) - f.
	n, err := Parse("a b | c d & e - f", tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpUnion {
		t.Fatalf("top = %v", n.Op)
	}
	right := n.Subs[1]
	if right.Op != OpDiff {
		t.Fatalf("right = %#v", right)
	}
	if right.Subs[0].Op != OpIntersect {
		t.Fatalf("right.left = %#v", right.Subs[0])
	}
}

func TestParseErrors(t *testing.T) {
	tab := symtab.NewTable()
	bad := []string{
		"",
		"(p",
		"p)",
		"| p",
		"p |",
		"[p",
		"#nope",
		"p $ q",
		"<p> q",   // mark outside ParseMarked
		"p - - q", // missing operand
		"*",
	}
	for _, src := range bad {
		if _, err := Parse(src, tab, symtab.Alphabet{}); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseMarked(t *testing.T) {
	tab := symtab.NewTable()
	m, err := ParseMarked("q p <p> .*", tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name(m.P) != "p" {
		t.Errorf("P = %q", tab.Name(m.P))
	}
	if m.Left.GoString() != "concat(class class)" {
		t.Errorf("Left = %s", m.Left.GoString())
	}
	if m.Right.GoString() != "star(class)" {
		t.Errorf("Right = %s", m.Right.GoString())
	}
	if !m.Sigma.Contains(m.P) {
		t.Error("Sigma missing p")
	}

	// mark at start and end
	m, err = ParseMarked("<p> q*", tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Left.Op != OpEpsilon {
		t.Errorf("Left = %#v, want epsilon", m.Left)
	}
	m, err = ParseMarked("q* <p>", tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Right.Op != OpEpsilon {
		t.Errorf("Right = %#v, want epsilon", m.Right)
	}
	// bare mark
	m, err = ParseMarked("<p>", tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Left.Op != OpEpsilon || m.Right.Op != OpEpsilon {
		t.Errorf("bare mark: %#v %#v", m.Left, m.Right)
	}
}

func TestParseMarkedErrors(t *testing.T) {
	tab := symtab.NewTable()
	bad := []string{
		"p q",           // no mark
		"<p> q <p>",     // two marks
		"( <p> ) q",     // mark inside parens
		"a | <p> b",     // mark under union
		"<p q>",         // not a single identifier
		"<>",            // empty mark
		"< p > | <q> r", // two marks, one nested
	}
	for _, src := range bad {
		if _, err := ParseMarked(src, tab, symtab.Alphabet{}); err == nil {
			t.Errorf("ParseMarked(%q) succeeded, want error", src)
		}
	}
}

func TestParseWord(t *testing.T) {
	tab := symtab.NewTable()
	w, err := ParseWord("P H1 /H1 P FORM", tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	if tab.String(w) != "P H1 /H1 P FORM" {
		t.Errorf("roundtrip = %q", tab.String(w))
	}
	if _, err := ParseWord("a b*", tab); err == nil {
		t.Error("ParseWord with operator char succeeded")
	}
	w, err = ParseWord("   ", tab)
	if err != nil || len(w) != 0 {
		t.Errorf("blank word: %v %v", w, err)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	tab := symtab.NewTable()
	_, err := Parse("p $ q", tab, symtab.Alphabet{})
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "offset 2") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	tab := symtab.NewTable()
	srcs := []string{
		"p",
		"p q r",
		"p q | q p | r",
		"(p | q r)* p",
		"p+ q? (r p)*",
		"#eps | p",
		"#empty",
		"[p q r]",
		"p - q r",
		"(p - q) & r*",
		"!(p q)*",
		"((p | q) (r | p))+",
	}
	for _, src := range srcs {
		n, err := Parse(src, tab, symtab.Alphabet{})
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out := Print(n, tab)
		n2, err := Parse(out, tab, symtab.Alphabet{})
		if err != nil {
			t.Fatalf("reparse of %q (printed from %q): %v", out, src, err)
		}
		if !Equal(n, n2) {
			t.Errorf("roundtrip %q -> %q -> %s != %s", src, out, n2.GoString(), n.GoString())
		}
	}
}

func TestPrintSigmaAbbreviations(t *testing.T) {
	tab := symtab.NewTable()
	syms := tab.InternAll("a", "b", "c", "d", "p")
	sigma := symtab.NewAlphabet(syms...)
	full := Class(sigma)
	if got := PrintSigma(full, tab, sigma); got != "." {
		t.Errorf("full class = %q, want .", got)
	}
	noP := Class(sigma.Without(tab.Lookup("p")))
	if got := PrintSigma(noP, tab, sigma); got != "[^ p ]" {
		t.Errorf("sigma-p = %q", got)
	}
	small := AnyOf(tab.Lookup("a"), tab.Lookup("b"))
	if got := PrintSigma(small, tab, sigma); got != "[a b]" {
		t.Errorf("small class = %q", got)
	}
	// Plain Print never abbreviates.
	if got := Print(full, tab); got != "[a b c d p]" {
		t.Errorf("Print full = %q", got)
	}
}

func TestSigmaHelper(t *testing.T) {
	tab := symtab.NewTable()
	base := symtab.NewAlphabet(tab.Intern("x"))
	got, err := Sigma("a b* | c", tab, base)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("Sigma = %v, want 4 symbols", got.Symbols())
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	tab := symtab.NewTable()
	n, err := Parse(`'#text' 'INPUT[type=radio]'*`, tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Lookup("#text") == symtab.None || tab.Lookup("INPUT[type=radio]") == symtab.None {
		t.Fatal("quoted names not interned verbatim")
	}
	// Printing re-quotes and the output reparses to the same AST.
	out := Print(n, tab)
	n2, err := Parse(out, tab, symtab.Alphabet{})
	if err != nil {
		t.Fatalf("reparse of %q: %v", out, err)
	}
	if !Equal(n, n2) {
		t.Errorf("quoted round trip: %q", out)
	}
	// Embedded quote via doubling.
	n, err = Parse(`'don''t'`, tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Lookup("don't") == symtab.None {
		t.Error("doubled quote not unescaped")
	}
	if got := Print(n, tab); got != `'don''t'` {
		t.Errorf("requoting = %q", got)
	}
	// Marked quoted symbol.
	m, err := ParseMarked(`q <'#text'> .*`, tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name(m.P) != "#text" {
		t.Errorf("marked quoted symbol = %q", tab.Name(m.P))
	}
	// Errors.
	for _, bad := range []string{`'unterminated`, `''`, `'a' <`} {
		if _, err := Parse(bad, tab, symtab.Alphabet{}); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestQuoteName(t *testing.T) {
	cases := map[string]string{
		"FORM":             "FORM",
		"/FORM":            "/FORM",
		"h1":               "h1",
		"#text":            "'#text'",
		"INPUT[type=text]": "'INPUT[type=text]'",
		"don't":            "'don''t'",
		"":                 "''",
		"a b":              "'a b'",
	}
	for in, want := range cases {
		if got := QuoteName(in); got != want {
			t.Errorf("QuoteName(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: Print∘Parse is the identity on ASTs, for random ASTs including
// classes and extended operators.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	tab := symtab.NewTable()
	syms := tab.InternAll("p", "q", "r")
	rng := rand.New(rand.NewSource(4242))
	var gen func(d int) *Node
	gen = func(d int) *Node {
		if d <= 0 {
			switch rng.Intn(5) {
			case 0:
				return Epsilon()
			case 1:
				return AnyOf(syms[rng.Intn(3)], syms[rng.Intn(3)])
			default:
				return Sym(syms[rng.Intn(3)])
			}
		}
		switch rng.Intn(11) {
		case 0, 1, 2:
			return Concat(gen(d-1), gen(d-1))
		case 3, 4:
			return Union(gen(d-1), gen(d-1))
		case 5:
			return Star(gen(d - 1))
		case 6:
			return Plus(gen(d - 1))
		case 7:
			return Opt(gen(d - 1))
		case 8:
			return Intersect(gen(d-1), gen(d-1))
		case 9:
			return Diff(gen(d-1), gen(d-1))
		default:
			return Complement(gen(d - 1))
		}
	}
	for i := 0; i < 500; i++ {
		n := gen(4)
		out := Print(n, tab)
		n2, err := Parse(out, tab, symtab.Alphabet{})
		if err != nil {
			t.Fatalf("reparse of %q: %v", out, err)
		}
		if !Equal(n, n2) {
			t.Fatalf("roundtrip changed AST:\n  printed %q\n  got %s\n  want %s",
				out, n2.GoString(), n.GoString())
		}
	}
}

func TestParseMultiMarked(t *testing.T) {
	tab := symtab.NewTable()
	m, err := ParseMultiMarked("q <p> [^ p]* <r> .*", tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Marks) != 2 || tab.Name(m.Marks[0]) != "p" || tab.Name(m.Marks[1]) != "r" {
		t.Fatalf("marks = %v", m.Marks)
	}
	if len(m.Segments) != 3 {
		t.Fatalf("segments = %d", len(m.Segments))
	}
	if m.Segments[0].GoString() != "class" || m.Segments[2].GoString() != "star(class)" {
		t.Errorf("segments = %s / %s", m.Segments[0].GoString(), m.Segments[2].GoString())
	}
	for _, mk := range m.Marks {
		if !m.Sigma.Contains(mk) {
			t.Error("sigma missing a mark")
		}
	}
	// Single mark still works through the multi parser.
	m, err = ParseMultiMarked("<p>", tab, symtab.Alphabet{})
	if err != nil || len(m.Marks) != 1 || len(m.Segments) != 2 {
		t.Errorf("bare mark: %+v, %v", m, err)
	}
	// Adjacent marks: empty middle segment.
	m, err = ParseMultiMarked("q <p> <r> q", tab, symtab.Alphabet{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Segments[1].Op != OpEpsilon {
		t.Errorf("middle segment = %s", m.Segments[1].GoString())
	}
}

func TestParseMultiMarkedErrors(t *testing.T) {
	tab := symtab.NewTable()
	for _, src := range []string{
		"p q",             // no marks
		"(q <p>) r",       // nested
		"a | <p> b",       // under union
		"q (<p> | r) <s>", // one nested one top — nested rejected
	} {
		if _, err := ParseMultiMarked(src, tab, symtab.Alphabet{}); err == nil {
			t.Errorf("ParseMultiMarked(%q) succeeded", src)
		}
	}
}
