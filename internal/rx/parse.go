package rx

import (
	"fmt"
	"strings"

	"resilex/internal/symtab"
)

// Concrete syntax
//
//	union    := diff ('|' diff)*
//	diff     := isect ('-' isect)*
//	isect    := concat ('&' concat)*
//	concat   := postfix postfix …
//	postfix  := atom ('*' | '+' | '?')*
//	atom     := IDENT            a single token symbol, e.g. FORM, /FORM, H1
//	          | '.'              any symbol of Σ (the paper's "Tags")
//	          | '#eps'           ε
//	          | '#empty'         ∅
//	          | '[' IDENT… ']'   any of the listed symbols
//	          | '[^' IDENT… ']'  any symbol of Σ except those listed (Σ−p)
//	          | '!' atom         complement w.r.t. Σ*
//	          | '(' union ')'
//
// IDENT is a maximal run of letters, digits, '_' and '/'. Tokens are
// whitespace separated where ambiguity would otherwise arise (HTML tag names
// never contain operator characters, so in practice whitespace between tags
// suffices).
//
// The marked-occurrence form of the paper, E1⟨p⟩E2, is written with angle
// brackets: "P H1 /H1 P FORM INPUT <INPUT> . *" marks the second INPUT.

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tDot
	tEps
	tEmpty
	tStar
	tPlus
	tOpt
	tBang
	tPipe
	tAmp
	tMinus
	tLParen
	tRParen
	tLBracket
	tLBracketNeg
	tRBracket
	tLAngle
	tRAngle
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// SyntaxError describes a parse failure with a byte offset into the source.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error formats the syntax error with its byte offset.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rx: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	emit := func(k tokKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos})
	}
	isIdentChar := func(c byte) bool {
		return c == '_' || c == '/' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '.':
			emit(tDot, ".", i)
			i++
		case c == '*':
			emit(tStar, "*", i)
			i++
		case c == '+':
			emit(tPlus, "+", i)
			i++
		case c == '?':
			emit(tOpt, "?", i)
			i++
		case c == '!':
			emit(tBang, "!", i)
			i++
		case c == '|':
			emit(tPipe, "|", i)
			i++
		case c == '&':
			emit(tAmp, "&", i)
			i++
		case c == '-':
			emit(tMinus, "-", i)
			i++
		case c == '(':
			emit(tLParen, "(", i)
			i++
		case c == ')':
			emit(tRParen, ")", i)
			i++
		case c == '[':
			if i+1 < len(src) && src[i+1] == '^' {
				emit(tLBracketNeg, "[^", i)
				i += 2
			} else {
				emit(tLBracket, "[", i)
				i++
			}
		case c == ']':
			emit(tRBracket, "]", i)
			i++
		case c == '<':
			emit(tLAngle, "<", i)
			i++
		case c == '>':
			emit(tRAngle, ">", i)
			i++
		case c == '\'':
			// Quoted identifier: arbitrary token names ('' = literal quote).
			// Needed for generated symbols like '#text' or
			// 'INPUT[type=radio]' that contain operator characters.
			var name strings.Builder
			j := i + 1
			closed := false
			for j < len(src) {
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						name.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				name.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, &SyntaxError{Pos: i, Msg: "unterminated quoted identifier"}
			}
			if name.Len() == 0 {
				return nil, &SyntaxError{Pos: i, Msg: "empty quoted identifier"}
			}
			emit(tIdent, name.String(), i)
			i = j
		case c == '#':
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			word := src[i:j]
			switch word {
			case "#eps":
				emit(tEps, word, i)
			case "#empty":
				emit(tEmpty, word, i)
			default:
				return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unknown keyword %q (want #eps or #empty)", word)}
			}
			i = j
		case isIdentChar(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			emit(tIdent, src[i:j], i)
			i = j
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	emit(tEOF, "", len(src))
	return toks, nil
}

type parser struct {
	toks  []token
	pos   int
	tab   *symtab.Table
	sigma symtab.Alphabet

	// marked-symbol capture (ParseMarked / ParseMultiMarked)
	allowMark  bool
	allowMulti bool
	markSym    symtab.Symbol
	markSeen   bool
	// left side accumulated up to (and excluding) the mark; valid only when
	// the mark occurs at concat top level.
	markDepth int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses src into an AST. Symbols are interned into tab. The semantic
// alphabet used to resolve '.', negated classes and complements is the union
// of sigma and every identifier mentioned in src; pass the zero Alphabet to
// infer Σ purely from the expression.
func Parse(src string, tab *symtab.Table, sigma symtab.Alphabet) (*Node, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	full := inferSigma(toks, tab, sigma)
	p := &parser{toks: toks, tab: tab, sigma: full}
	n, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, p.errf(t.pos, "unexpected %q after expression", t.text)
	}
	return n, nil
}

// Sigma returns the alphabet Parse would use for src: sigma ∪ {identifiers
// mentioned in src}.
func Sigma(src string, tab *symtab.Table, sigma symtab.Alphabet) (symtab.Alphabet, error) {
	toks, err := lex(src)
	if err != nil {
		return symtab.Alphabet{}, err
	}
	return inferSigma(toks, tab, sigma), nil
}

func inferSigma(toks []token, tab *symtab.Table, sigma symtab.Alphabet) symtab.Alphabet {
	syms := sigma.Symbols()
	for _, t := range toks {
		if t.kind == tIdent {
			syms = append(syms, tab.Intern(t.text))
		}
	}
	return symtab.NewAlphabet(syms...)
}

func (p *parser) parseUnion() (*Node, error) {
	n, err := p.parseDiff()
	if err != nil {
		return nil, err
	}
	subs := []*Node{n}
	for p.peek().kind == tPipe {
		p.next()
		m, err := p.parseDiff()
		if err != nil {
			return nil, err
		}
		subs = append(subs, m)
	}
	if len(subs) == 1 {
		return n, nil
	}
	return Union(subs...), nil
}

func (p *parser) parseDiff() (*Node, error) {
	n, err := p.parseIsect()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tMinus {
		p.next()
		m, err := p.parseIsect()
		if err != nil {
			return nil, err
		}
		n = Diff(n, m)
	}
	return n, nil
}

func (p *parser) parseIsect() (*Node, error) {
	n, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tAmp {
		p.next()
		m, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		n = Intersect(n, m)
	}
	return n, nil
}

func startsAtom(k tokKind) bool {
	switch k {
	case tIdent, tDot, tEps, tEmpty, tBang, tLParen, tLBracket, tLBracketNeg, tLAngle:
		return true
	}
	return false
}

func (p *parser) parseConcat() (*Node, error) {
	var subs []*Node
	for startsAtom(p.peek().kind) {
		n, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	if len(subs) == 0 {
		return nil, p.errf(p.peek().pos, "expected expression, got %q", p.peek().text)
	}
	// A marked-symbol placeholder must survive to splitAtMark, so bypass the
	// simplifying constructor (which would let ∅ absorb it) and keep a raw
	// concatenation node.
	for _, s := range subs {
		if s.Op == opMark {
			if len(subs) == 1 {
				return s, nil
			}
			return &Node{Op: OpConcat, Subs: subs}, nil
		}
	}
	return Concat(subs...), nil
}

func (p *parser) parsePostfix() (*Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tStar:
			p.next()
			n = Star(n)
		case tPlus:
			p.next()
			n = Plus(n)
		case tOpt:
			p.next()
			n = Opt(n)
		default:
			return n, nil
		}
	}
}

func (p *parser) parseAtom() (*Node, error) {
	t := p.next()
	switch t.kind {
	case tIdent:
		return Sym(p.tab.Intern(t.text)), nil
	case tDot:
		return Class(p.sigma), nil
	case tEps:
		return Epsilon(), nil
	case tEmpty:
		return Empty(), nil
	case tBang:
		sub, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		return Complement(sub), nil
	case tLParen:
		p.markDepth++
		n, err := p.parseUnion()
		p.markDepth--
		if err != nil {
			return nil, err
		}
		if tt := p.peek(); tt.kind != tRParen {
			return nil, p.errf(tt.pos, "expected ')', got %q", tt.text)
		}
		p.next()
		return n, nil
	case tLBracket, tLBracketNeg:
		var listed []symtab.Symbol
		for p.peek().kind == tIdent {
			listed = append(listed, p.tab.Intern(p.next().text))
		}
		if tt := p.peek(); tt.kind != tRBracket {
			return nil, p.errf(tt.pos, "expected ']' or identifier, got %q", tt.text)
		}
		p.next()
		set := symtab.NewAlphabet(listed...)
		if t.kind == tLBracketNeg {
			set = p.sigma.Minus(set)
		}
		return Class(set), nil
	case tLAngle:
		if !p.allowMark {
			return nil, p.errf(t.pos, "marked symbol '<…>' is only valid in extraction expressions (use ParseMarked)")
		}
		if p.markSeen && !p.allowMulti {
			return nil, p.errf(t.pos, "extraction expression has more than one marked symbol")
		}
		if p.markDepth != 0 {
			return nil, p.errf(t.pos, "marked symbol must appear at the top level, not inside parentheses")
		}
		id := p.next()
		if id.kind != tIdent {
			return nil, p.errf(id.pos, "expected identifier inside '<…>', got %q", id.text)
		}
		if tt := p.peek(); tt.kind != tRAngle {
			return nil, p.errf(tt.pos, "expected '>', got %q", tt.text)
		}
		p.next()
		p.markSeen = true
		p.markSym = p.tab.Intern(id.text)
		// The placeholder carries its symbol so multi-mark splitting can
		// recover the mark sequence in order.
		return &Node{Op: opMark, Class: symtab.NewAlphabet(p.markSym)}, nil
	}
	return nil, p.errf(t.pos, "expected expression, got %q", t.text)
}

// opMark is a private placeholder used only during ParseMarked; it never
// escapes this package.
const opMark Op = -1

// Marked is a parsed extraction expression E1⟨p⟩E2 in AST form. The extract
// package converts it into its Expr type.
type Marked struct {
	Left  *Node
	P     symtab.Symbol
	Right *Node
	Sigma symtab.Alphabet
}

// ParseMarked parses an extraction expression of the form "E1 <p> E2". The
// marked symbol must occur exactly once, at the top level of the outermost
// concatenation (the form the paper defines). Σ is inferred as in Parse and
// always includes p.
func ParseMarked(src string, tab *symtab.Table, sigma symtab.Alphabet) (*Marked, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	full := inferSigma(toks, tab, sigma)
	p := &parser{toks: toks, tab: tab, sigma: full, allowMark: true}
	n, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, p.errf(t.pos, "unexpected %q after expression", t.text)
	}
	if !p.markSeen {
		return nil, &SyntaxError{Pos: len(src), Msg: "extraction expression has no marked symbol '<…>'"}
	}
	left, right, err := splitAtMark(n)
	if err != nil {
		return nil, err
	}
	return &Marked{Left: left, P: p.markSym, Right: right, Sigma: full.With(p.markSym)}, nil
}

func splitAtMark(n *Node) (left, right *Node, err error) {
	if n.Op == opMark {
		return Epsilon(), Epsilon(), nil
	}
	if n.Op != OpConcat {
		return nil, nil, &SyntaxError{Msg: "marked symbol must split the expression into E1 <p> E2 at the top level"}
	}
	for i, s := range n.Subs {
		if s.Op == opMark {
			return Concat(n.Subs[:i]...), Concat(n.Subs[i+1:]...), nil
		}
	}
	return nil, nil, &SyntaxError{Msg: "marked symbol must appear at the top level of the expression"}
}

// MultiMarked is a parsed tuple extraction expression
// E0⟨p1⟩E1⟨p2⟩…⟨pk⟩Ek: len(Segments) = len(Marks)+1.
type MultiMarked struct {
	Segments []*Node
	Marks    []symtab.Symbol
	Sigma    symtab.Alphabet
}

// ParseMultiMarked parses a tuple extraction expression with one or more
// marked symbols, e.g. "FORM <INPUT> [^ /FORM]* <INPUT> .*". Marks must
// appear at the top level of the outermost concatenation.
func ParseMultiMarked(src string, tab *symtab.Table, sigma symtab.Alphabet) (*MultiMarked, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	full := inferSigma(toks, tab, sigma)
	p := &parser{toks: toks, tab: tab, sigma: full, allowMark: true, allowMulti: true}
	n, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, p.errf(t.pos, "unexpected %q after expression", t.text)
	}
	if !p.markSeen {
		return nil, &SyntaxError{Pos: len(src), Msg: "tuple extraction expression has no marked symbol '<…>'"}
	}
	m := &MultiMarked{Sigma: full}
	var factors []*Node
	if n.Op == opMark {
		factors = []*Node{n}
	} else if n.Op == OpConcat {
		factors = n.Subs
	} else {
		return nil, &SyntaxError{Msg: "marked symbols must appear at the top level of the expression"}
	}
	var cur []*Node
	for _, f := range factors {
		if f.Op != opMark {
			cur = append(cur, f)
			continue
		}
		m.Segments = append(m.Segments, Concat(cur...))
		sym := f.Class.Symbols()[0]
		m.Marks = append(m.Marks, sym)
		m.Sigma = m.Sigma.With(sym)
		cur = nil
	}
	m.Segments = append(m.Segments, Concat(cur...))
	return m, nil
}

// MustParse is Parse that panics on error; intended for tests and examples.
func MustParse(src string, tab *symtab.Table, sigma symtab.Alphabet) *Node {
	n, err := Parse(src, tab, sigma)
	if err != nil {
		panic(err)
	}
	return n
}

// ParseWord interprets src as a plain whitespace-separated token string (no
// operators) and returns the symbol sequence. This is the document-side
// input format: pages are strings, not expressions.
func ParseWord(src string, tab *symtab.Table) ([]symtab.Symbol, error) {
	var out []symtab.Symbol
	for _, f := range strings.Fields(src) {
		for _, c := range []byte(f) {
			isIdent := c == '_' || c == '/' ||
				('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
			if !isIdent {
				return nil, fmt.Errorf("rx: token %q contains non-identifier character %q", f, c)
			}
		}
		out = append(out, tab.Intern(f))
	}
	return out, nil
}
