package rx

import (
	"testing"

	"resilex/internal/symtab"
)

func sym3() (*symtab.Table, symtab.Symbol, symtab.Symbol, symtab.Symbol) {
	tab := symtab.NewTable()
	return tab, tab.Intern("p"), tab.Intern("q"), tab.Intern("r")
}

func TestConcatSimplification(t *testing.T) {
	_, p, q, _ := sym3()
	a, b := Sym(p), Sym(q)
	if got := Concat(); got.Op != OpEpsilon {
		t.Errorf("Concat() = %#v, want epsilon", got)
	}
	if got := Concat(a); got != a {
		t.Errorf("Concat(a) != a")
	}
	if got := Concat(a, Epsilon(), b); got.Op != OpConcat || len(got.Subs) != 2 {
		t.Errorf("Concat drops epsilon: %#v", got)
	}
	if got := Concat(a, Empty(), b); got.Op != OpEmpty {
		t.Errorf("Concat with empty = %#v, want empty", got)
	}
	// flattening
	if got := Concat(Concat(a, b), a); len(got.Subs) != 3 {
		t.Errorf("Concat flatten: %#v", got)
	}
}

func TestUnionSimplification(t *testing.T) {
	_, p, q, _ := sym3()
	a, b := Sym(p), Sym(q)
	if got := Union(); got.Op != OpEmpty {
		t.Errorf("Union() = %#v, want empty", got)
	}
	if got := Union(a, Empty()); got.Op != OpClass || !got.Class.Contains(p) {
		t.Errorf("Union(a, empty) = %#v, want a", got)
	}
	// sibling classes merge
	if got := Union(a, b); got.Op != OpClass || got.Class.Len() != 2 {
		t.Errorf("Union(p,q) = %#v, want class{p,q}", got)
	}
	// dedup of non-class operands
	ab := Concat(a, b)
	if got := Union(ab, Concat(a, b)); got.Op == OpUnion {
		t.Errorf("Union dedup failed: %#v", got)
	}
	// flattening
	u := Union(Concat(a, b), Union(Concat(b, a), Star(a)))
	if u.Op != OpUnion || len(u.Subs) != 3 {
		t.Errorf("Union flatten: %#v", u)
	}
}

func TestStarPlusOpt(t *testing.T) {
	_, p, _, _ := sym3()
	a := Sym(p)
	if got := Star(Star(a)); got.Op != OpStar || got.Subs[0] != a {
		t.Errorf("(a*)* = %#v", got)
	}
	if got := Star(Empty()); got.Op != OpEpsilon {
		t.Errorf("empty* = %#v", got)
	}
	if got := Star(Epsilon()); got.Op != OpEpsilon {
		t.Errorf("eps* = %#v", got)
	}
	if got := Star(Plus(a)); got.Op != OpStar {
		t.Errorf("(a+)* = %#v", got)
	}
	if got := Plus(Star(a)); got.Op != OpStar {
		t.Errorf("(a*)+ = %#v", got)
	}
	if got := Plus(Empty()); got.Op != OpEmpty {
		t.Errorf("empty+ = %#v", got)
	}
	if got := Opt(Plus(a)); got.Op != OpStar {
		t.Errorf("(a+)? = %#v", got)
	}
	if got := Opt(Empty()); got.Op != OpEpsilon {
		t.Errorf("empty? = %#v", got)
	}
}

func TestExtendedConstructors(t *testing.T) {
	_, p, q, _ := sym3()
	a, b := Sym(p), Sym(q)
	if got := Intersect(a, Empty()); got.Op != OpEmpty {
		t.Errorf("a & empty = %#v", got)
	}
	if got := Intersect(a, a); got != a {
		t.Errorf("a & a = %#v", got)
	}
	if got := Diff(a, Empty()); got != a {
		t.Errorf("a - empty = %#v", got)
	}
	if got := Diff(Empty(), a); got.Op != OpEmpty {
		t.Errorf("empty - a = %#v", got)
	}
	if got := Diff(Concat(a, b), Concat(a, b)); got.Op != OpEmpty {
		t.Errorf("E - E = %#v", got)
	}
	if got := Complement(Complement(a)); got != a {
		t.Errorf("!!a = %#v", got)
	}
}

func TestRepeatAndWord(t *testing.T) {
	_, p, q, _ := sym3()
	if got := Repeat(Sym(p), 0); got.Op != OpEpsilon {
		t.Errorf("p^0 = %#v", got)
	}
	if got := Repeat(Sym(p), 3); got.Op != OpConcat || len(got.Subs) != 3 {
		t.Errorf("p^3 = %#v", got)
	}
	if got := Word(p, q, p); got.Op != OpConcat || len(got.Subs) != 3 {
		t.Errorf("Word = %#v", got)
	}
	if got := Word(); got.Op != OpEpsilon {
		t.Errorf("Word() = %#v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Repeat(-1) did not panic")
		}
	}()
	Repeat(Sym(p), -1)
}

func TestEqual(t *testing.T) {
	_, p, q, _ := sym3()
	a, b := Sym(p), Sym(q)
	cases := []struct {
		x, y *Node
		want bool
	}{
		{Concat(a, b), Concat(a, b), true},
		{Concat(a, b), Concat(b, a), false},
		{Star(a), Star(a), true},
		{Star(a), Plus(a), false},
		{AnyOf(p, q), AnyOf(q, p), true},
		{Epsilon(), Epsilon(), true},
		{Empty(), Epsilon(), false},
	}
	for i, c := range cases {
		if got := Equal(c.x, c.y); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
}

func TestSizeAndSymbols(t *testing.T) {
	_, p, q, r := sym3()
	e := Union(Concat(Sym(p), Sym(q)), Star(Sym(r)))
	if got := e.Size(); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	syms := e.Symbols()
	if syms.Len() != 3 || !syms.Contains(p) || !syms.Contains(q) || !syms.Contains(r) {
		t.Errorf("Symbols = %v", syms.Symbols())
	}
}

func TestMatchesEpsilon(t *testing.T) {
	_, p, q, _ := sym3()
	cases := []struct {
		e        *Node
		want, ok bool
	}{
		{Epsilon(), true, true},
		{Empty(), false, true},
		{Sym(p), false, true},
		{Star(Sym(p)), true, true},
		{Plus(Sym(p)), false, true},
		{Opt(Sym(p)), true, true},
		{Concat(Star(Sym(p)), Star(Sym(q))), true, true},
		{Concat(Star(Sym(p)), Sym(q)), false, true},
		{Union(Sym(p), Epsilon()), true, true},
		{Union(Sym(p), Sym(q)), false, true},
		{Intersect(Star(Sym(p)), Star(Sym(q))), false, false}, // undecidable syntactically
	}
	for i, c := range cases {
		got, ok := c.e.MatchesEpsilon()
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("case %d: MatchesEpsilon = (%v,%v), want (%v,%v)", i, got, ok, c.want, c.ok)
		}
	}
}

func TestHasExtendedOps(t *testing.T) {
	_, p, q, _ := sym3()
	if Concat(Sym(p), Star(Sym(q))).HasExtendedOps() {
		t.Error("plain expression reported extended ops")
	}
	if !Concat(Sym(p), Diff(Star(Sym(q)), Sym(p))).HasExtendedOps() {
		t.Error("diff not detected")
	}
	if !Complement(Sym(p)).HasExtendedOps() {
		t.Error("complement not detected")
	}
}

func TestWalk(t *testing.T) {
	_, p, q, _ := sym3()
	e := Concat(Sym(p), Star(Sym(q)))
	count := 0
	e.Walk(func(*Node) bool { count++; return true })
	if count != e.Size() {
		t.Errorf("Walk visited %d nodes, Size = %d", count, e.Size())
	}
	// pruning
	count = 0
	e.Walk(func(n *Node) bool { count++; return n.Op != OpStar })
	if count != 3 { // concat, p, star (star's child pruned)
		t.Errorf("pruned Walk visited %d", count)
	}
}

func TestReverseNode(t *testing.T) {
	tab := symtab.NewTable()
	cases := []struct{ in, want string }{
		{"p q r", "r q p"},
		{"(p q)* r", "r (q p)*"},
		{"p | q r", "p | r q"},
		{"(p q)+ (r | p q)?", "(r | q p)? (q p)+"},
		{"!(p q)", "!(q p)"},
		{"(p q) - (q p)", "q p - p q"},
		{"#eps", "#eps"},
		{"#empty", "#empty"},
	}
	for _, c := range cases {
		n := MustParse(c.in, tab, symtab.Alphabet{})
		want := MustParse(c.want, tab, symtab.Alphabet{})
		if got := ReverseNode(n); !Equal(got, want) {
			t.Errorf("ReverseNode(%q) = %s, want %s", c.in, Print(got, tab), Print(want, tab))
		}
	}
	// Involution.
	n := MustParse("(p | q r)* p+ !q", tab, symtab.Alphabet{})
	if !Equal(ReverseNode(ReverseNode(n)), n) {
		t.Error("double reversal changed the AST")
	}
}
