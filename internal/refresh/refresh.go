// Package refresh is the continuous wrapper-maintenance loop: a background
// drift watcher that samples live pages per site off the request path,
// detects extraction degradation, re-runs the induce→maximize pipeline of
// internal/learn over freshly marked samples under the existing
// state/deadline budgets, and canary-deploys the resulting wrapper through
// the versioned registry.
//
// The controller closes the maintenance loop of Algorithm 6.2
// operationally: where wrapper.Supervisor reacts to failures on the request
// path (rung ladder, per-site breakers), the refresh pipeline acts *before*
// users see them — sampled pages that stop parsing trigger re-induction,
// the candidate serves a configured fraction of live traffic as a canary,
// and promotion is metric-gated: the canary's extraction-success rate over
// the observation window must be at least the active version's. A canary
// that regresses is rolled back automatically; because a canary miss falls
// back to the active wrapper inside the serving path, the whole experiment
// loses zero requests either way.
//
// The package talks to the serving layer through the small Deployment
// surface (satisfied structurally by serve.Server), so it can be driven
// against a fake in tests and composed into any process that owns a
// versioned registry.
package refresh

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"resilex/internal/machine"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// Deployment is the controller's view of a serving stack with a versioned
// registry. serve.Server implements it.
type Deployment interface {
	// Sites lists every key with an active wrapper.
	Sites() []string
	// ActivePayload returns the persisted JSON of the site's active version,
	// or nil when none is recorded.
	ActivePayload(site string) []byte
	// Extract runs the site's active wrapper over one page (the drift probe).
	Extract(site, html string) error
	// HasCanary reports whether a canary is staged for the site.
	HasCanary(site string) bool
	// DeployCanary stages payload as the site's canary version.
	DeployCanary(site string, payload []byte) (uint64, error)
	// CanaryStats reports the observation window since the canary deploy.
	CanaryStats(site string) (canaryOK, canaryErr, activeOK, activeErr uint64)
	// Promote makes the staged canary active (version 0 = whatever is staged).
	Promote(site string, version uint64) error
	// Rollback discards the staged canary (version 0 = whatever is staged).
	Rollback(site string, version uint64) error
}

// Sampler supplies recent live pages for a site, off the request path — a
// spool directory an ingest process drops pages into, a capture buffer, or
// a scripted feed in tests.
type Sampler interface {
	Sample(site string) ([]string, error)
}

// SamplerFunc adapts a function to the Sampler interface.
type SamplerFunc func(site string) ([]string, error)

// Sample calls f.
func (f SamplerFunc) Sample(site string) ([]string, error) { return f(site) }

// Config tunes a Controller. Sampler is required; everything else has a
// production-shaped default.
type Config struct {
	// Sampler supplies the per-site page samples driving drift detection.
	Sampler Sampler
	// Marker marks the extraction target on a sampled page for
	// re-induction, mirroring SupervisorConfig.Marker: an operator queue, a
	// weak heuristic, or the data-target attribute. The default accepts
	// pages carrying wrapper.MarkerAttr and skips the rest.
	Marker func(html string) (wrapper.Target, bool)
	// Interval is the watch period of Run. Default 30s.
	Interval time.Duration
	// Jitter spreads each interval uniformly within ±Jitter·Interval so a
	// fleet of controllers does not sample in lockstep. 0 selects the
	// default 0.1; negative disables.
	Jitter float64
	// MinSamples is the smallest sample set worth judging drift on.
	// Default 3.
	MinSamples int
	// DriftThreshold is the sampled miss rate at which re-induction
	// triggers. Default 0.5.
	DriftThreshold float64
	// MinCanaryObservations is how many canary-routed extractions the
	// observation window needs before the promote/rollback verdict.
	// Default 20.
	MinCanaryObservations uint64
	// Options is the construction budget for re-induction — the same
	// state/deadline levers the serving path compiles under.
	Options machine.Options
	// Observer receives the refresh_* telemetry. nil disables observation.
	Observer *obs.Observer
	// Rand is the jitter source, injectable for deterministic tests.
	// Default math/rand.
	Rand func() float64
}

func (c Config) withDefaults() Config {
	if c.Marker == nil {
		c.Marker = func(html string) (wrapper.Target, bool) {
			if strings.Contains(html, wrapper.MarkerAttr) {
				return wrapper.TargetMarker(), true
			}
			return wrapper.Target{}, false
		}
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 1 {
		c.Jitter = 1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.5
	}
	if c.MinCanaryObservations == 0 {
		c.MinCanaryObservations = 20
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	return c
}

// Controller is the drift watcher. One controller watches every site of one
// deployment; Tick is one deterministic pass (what the benchmark drives),
// Run loops with jitter until the context is canceled.
type Controller struct {
	deploy Deployment
	cfg    Config
	obs    *obs.Observer
}

// New builds a controller over the deployment.
func New(deploy Deployment, cfg Config) (*Controller, error) {
	if deploy == nil {
		return nil, fmt.Errorf("refresh: nil deployment")
	}
	if cfg.Sampler == nil {
		return nil, fmt.Errorf("refresh: a Sampler is required")
	}
	cfg = cfg.withDefaults()
	return &Controller{deploy: deploy, cfg: cfg, obs: cfg.Observer}, nil
}

// Run watches until ctx is canceled, pausing a jittered Interval between
// passes.
func (c *Controller) Run(ctx context.Context) {
	for {
		d := c.cfg.Interval
		if c.cfg.Jitter > 0 {
			j := time.Duration(float64(d) * (1 + (2*c.cfg.Rand()-1)*c.cfg.Jitter))
			if j > 0 {
				d = j
			}
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		c.Tick(ctx)
	}
}

// Tick runs one watch pass over every site: judge any canary whose
// observation window is mature, and otherwise sample for drift and
// canary-deploy a re-induced wrapper when degradation crosses the
// threshold. Deterministic — no clocks, no randomness — so tests and the
// E19 benchmark drive the pipeline tick by tick.
func (c *Controller) Tick(ctx context.Context) {
	c.obs.Counter("refresh_tick_total").Inc()
	// Each pass is its own trace, so a rollout decision is reconstructable
	// end to end from GET /debug/traces/{id} exactly like a served request.
	ctx = obs.ContextWithTrace(obs.NewContext(ctx, c.obs), obs.TraceContext{TraceID: obs.NewTraceID()})
	ctx, sp := c.obs.StartSpan(ctx, "refresh.tick")
	defer sp.End()
	for _, site := range c.deploy.Sites() {
		if ctx.Err() != nil {
			return
		}
		sctx, ssp := c.obs.StartSpan(ctx, "refresh.site")
		ssp.SetStr("site", site)
		c.checkSite(sctx, site)
		ssp.End()
	}
}

func (c *Controller) checkSite(ctx context.Context, site string) {
	if c.deploy.HasCanary(site) {
		c.judgeCanary(site)
		return
	}
	samples, err := c.cfg.Sampler.Sample(site)
	if err != nil {
		c.count("refresh_sample_errors_total", "site", site)
		return
	}
	c.obs.Counter(obs.WithLabels("refresh_sample_total", "site", site)).Add(int64(len(samples)))
	if len(samples) < c.cfg.MinSamples {
		c.count("refresh_skip_total", "reason", "insufficient_samples")
		return
	}
	misses := 0
	for _, page := range samples {
		if c.deploy.Extract(site, page) != nil {
			misses++
		}
	}
	rate := float64(misses) / float64(len(samples))
	c.obs.Gauge(obs.WithLabels("refresh_drift_rate_pct", "site", site)).Set(int64(rate * 100))
	if rate < c.cfg.DriftThreshold {
		return
	}
	c.count("refresh_drift_detected_total", "site", site)
	c.induceAndDeploy(ctx, site, samples)
}

// induceAndDeploy marks the drifted samples, re-runs induction + pivot
// maximization over them under the configured budget, and stages the result
// as the site's canary. The candidate's tokenizer configuration is carried
// over from the active version's persisted payload; its alphabet comes from
// the samples alone, so the candidate commits to the *new* layout family —
// a candidate induced from unrepresentative samples will miss live pages,
// lose the canary comparison, and be rolled back, which is the safety the
// canary gate exists to provide.
func (c *Controller) induceAndDeploy(ctx context.Context, site string, pages []string) {
	var samples []wrapper.Sample
	for _, page := range pages {
		target, ok := c.cfg.Marker(page)
		if !ok {
			continue
		}
		samples = append(samples, wrapper.Sample{HTML: page, Target: target})
	}
	if len(samples) < c.cfg.MinSamples {
		c.count("refresh_skip_total", "reason", "unmarked_samples")
		return
	}
	cfg := c.trainConfig(site)
	cfg.Options = c.cfg.Options.WithContext(ctx)
	cand, err := wrapper.Train(samples, cfg)
	if err != nil {
		c.count("refresh_induce_total", "outcome", "error")
		c.obs.Event("refresh.induce.error", "site", site, "error", err.Error())
		return
	}
	payload, err := cand.MarshalJSON()
	if err != nil {
		c.count("refresh_induce_total", "outcome", "error")
		return
	}
	c.count("refresh_induce_total", "outcome", "ok")
	version, err := c.deploy.DeployCanary(site, payload)
	if err != nil {
		c.count("refresh_deploy_total", "outcome", "error")
		c.obs.Event("refresh.deploy.error", "site", site, "error", err.Error())
		return
	}
	c.count("refresh_deploy_total", "outcome", "ok")
	c.obs.Event("refresh.canary", "site", site, "version", fmt.Sprint(version))
}

// trainConfig recovers the tokenizer configuration of the site's active
// version from its persisted payload, so the candidate tokenizes pages the
// same way. The alphabet is deliberately NOT carried over (no ExtraTags):
// Σ comes from the drifted samples, committing the candidate to the new
// layout family.
func (c *Controller) trainConfig(site string) wrapper.Config {
	var cfg struct {
		DropEndTags bool     `json:"dropEndTags"`
		KeepText    bool     `json:"keepText"`
		AttrKeys    []string `json:"attrKeys"`
		Skip        []string `json:"skip"`
	}
	if payload := c.deploy.ActivePayload(site); payload != nil {
		_ = json.Unmarshal(payload, &cfg) // best effort; zero config is valid
	}
	return wrapper.Config{
		DropEndTags: cfg.DropEndTags,
		KeepText:    cfg.KeepText,
		AttrKeys:    cfg.AttrKeys,
		Skip:        cfg.Skip,
	}
}

// judgeCanary renders the promote/rollback verdict once the observation
// window is mature: promote when the canary's extraction-success rate is at
// least the active version's over the same window, roll back otherwise.
// With no active-routed observations to compare against (e.g. a traffic
// fraction of 1), the canary must clear the drift threshold on its own.
func (c *Controller) judgeCanary(site string) {
	canaryOK, canaryErr, activeOK, activeErr := c.deploy.CanaryStats(site)
	canaryObs := canaryOK + canaryErr
	if canaryObs < c.cfg.MinCanaryObservations {
		c.count("refresh_skip_total", "reason", "immature_window")
		return
	}
	canaryRate := float64(canaryOK) / float64(canaryObs)
	promote := false
	if activeObs := activeOK + activeErr; activeObs > 0 {
		promote = canaryRate >= float64(activeOK)/float64(activeObs)
	} else {
		promote = canaryRate >= c.cfg.DriftThreshold
	}
	if promote {
		if err := c.deploy.Promote(site, 0); err != nil {
			c.count("refresh_judge_total", "outcome", "promote_error")
			return
		}
		c.count("refresh_judge_total", "outcome", "promote")
		c.obs.Event("refresh.promote", "site", site)
		return
	}
	if err := c.deploy.Rollback(site, 0); err != nil {
		c.count("refresh_judge_total", "outcome", "rollback_error")
		return
	}
	c.count("refresh_judge_total", "outcome", "rollback")
	c.obs.Event("refresh.rollback", "site", site)
}

func (c *Controller) count(name, k, v string) {
	c.obs.Counter(obs.WithLabels(name, k, v)).Inc()
}
