package refresh

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// The judge edge-case scenarios: timelines of operator actions, traffic
// windows, and controller passes played against a registry-faithful fake
// under a virtual clock. The clock never sleeps — it only timestamps the
// action log, so each scenario's expectation reads as a deterministic
// transcript of who did what when.

// vclock is the scenarios' virtual time source: a monotonically advancing
// offset from the scenario start, used to stamp the deployment's action log.
type vclock struct {
	now time.Duration
}

func (c *vclock) advanceTo(at time.Duration) {
	if at > c.now {
		c.now = at
	}
}

func (c *vclock) stamp(action string) string {
	return fmt.Sprintf("%s %s", c.now, action)
}

// slotDeploy is a Deployment modeling the versioned registry's slot
// semantics exactly as serve.Server implements them (promoteWrapper /
// rollbackWrapper): promote requires a staged canary and shifts
// active→prior; rollback prefers the canary slot and otherwise reverts
// active to prior. Versions are labels, not real wrappers — the judge path
// never extracts, so the state machine is all that matters.
type slotDeploy struct {
	clk                   *vclock
	active, prior, canary string // version labels; "" = empty slot
	stats                 [4]uint64

	// onStats, when set, runs inside CanaryStats — the hook that models an
	// operator action landing between the controller's window read and its
	// verdict call.
	onStats func(d *slotDeploy)

	log []string
}

func (d *slotDeploy) Sites() []string                  { return []string{"vs"} }
func (d *slotDeploy) ActivePayload(site string) []byte { return nil }
func (d *slotDeploy) Extract(site, html string) error  { return nil }
func (d *slotDeploy) HasCanary(site string) bool       { return d.canary != "" }

func (d *slotDeploy) DeployCanary(site string, payload []byte) (uint64, error) {
	d.canary = string(payload)
	return 2, nil
}

func (d *slotDeploy) CanaryStats(site string) (uint64, uint64, uint64, uint64) {
	if hook := d.onStats; hook != nil {
		d.onStats = nil
		hook(d)
	}
	return d.stats[0], d.stats[1], d.stats[2], d.stats[3]
}

func (d *slotDeploy) Promote(site string, version uint64) error {
	if d.canary == "" {
		return fmt.Errorf("no canary staged for %q", site)
	}
	d.prior, d.active, d.canary = d.active, d.canary, ""
	d.log = append(d.log, d.clk.stamp("promote→"+d.active))
	return nil
}

func (d *slotDeploy) Rollback(site string, version uint64) error {
	switch {
	case d.canary != "":
		d.canary = ""
		d.log = append(d.log, d.clk.stamp("rollback-canary"))
	case d.prior != "" && d.active != "":
		d.active, d.prior = d.prior, ""
		d.log = append(d.log, d.clk.stamp("rollback-prior→"+d.active))
	default:
		return fmt.Errorf("nothing to roll back for %q", site)
	}
	return nil
}

// judgeStep is one timeline event: advance the virtual clock to at, apply
// the window/hook mutations, and optionally run one controller pass.
type judgeStep struct {
	at     time.Duration
	stats  *[4]uint64          // overwrite the observation window
	manual func(d *slotDeploy) // operator action racing the next stats read
	tick   bool
}

func TestJudgeEdgeCases(t *testing.T) {
	window := func(canaryOK, canaryErr, activeOK, activeErr uint64) *[4]uint64 {
		return &[4]uint64{canaryOK, canaryErr, activeOK, activeErr}
	}
	cases := []struct {
		name       string
		steps      []judgeStep
		wantLog    []string
		wantActive string
		wantPrior  string
		wantCanary string
	}{
		{
			// Maturity is counted in canary-routed observations, not wall
			// time: a staged canary that never sees traffic is never judged,
			// no matter how many intervals pass. The rollout neither promotes
			// a wrapper nothing has exercised nor discards it while it still
			// might get traffic.
			name: "zero-traffic window never matures",
			steps: []judgeStep{
				{at: 30 * time.Second, tick: true},
				{at: 60 * time.Second, tick: true},
				{at: time.Hour, tick: true},
			},
			wantLog:    nil,
			wantActive: "v1",
			wantCanary: "v2",
		},
		{
			// An exact tie — identical non-perfect success rates on both
			// arms — promotes: the candidate was induced from fresher
			// samples, so at equal quality the newer wrapper wins (the >=
			// in judgeCanary is deliberate, not an off-by-one).
			name: "identical canary and active scores promote",
			steps: []judgeStep{
				{at: 5 * time.Minute, stats: window(15, 5, 15, 5), tick: true},
			},
			wantLog:    []string{"5m0s promote→v2"},
			wantActive: "v2",
			wantPrior:  "v1",
		},
		{
			// Both arms at zero success also tie, and the tie still goes to
			// the canary: rate 0 >= rate 0. A site that is broken either way
			// converges on the newer wrapper rather than oscillating.
			name: "all-failing tie still promotes",
			steps: []judgeStep{
				{at: 5 * time.Minute, stats: window(0, 20, 0, 20), tick: true},
			},
			wantLog:    []string{"5m0s promote→v2"},
			wantActive: "v2",
			wantPrior:  "v1",
		},
		{
			// An operator promotes manually between the controller's stats
			// read and its verdict. The losing stats still produce a
			// rollback, which now finds no canary staged and falls through
			// to the registry's prior-path: the manual promote is undone and
			// v1 is active again. The stale verdict winning the race is the
			// designed outcome — the window said v2 regresses, and a manual
			// promote does not outrank the measurement. Operators who want
			// to overrule the judge stop the controller first.
			name: "rollback after concurrent manual promote reverts it",
			steps: []judgeStep{
				{
					at:    5 * time.Minute,
					stats: window(2, 18, 20, 0),
					manual: func(d *slotDeploy) {
						if err := d.Promote("vs", 0); err != nil {
							t.Errorf("manual promote: %v", err)
						}
					},
					tick: true,
				},
			},
			wantLog:    []string{"5m0s promote→v2", "5m0s rollback-prior→v1"},
			wantActive: "v1",
		},
		{
			// The same race where the window favors the canary: the
			// controller's promote verdict arrives after the operator
			// already promoted. With no canary staged the second promote
			// errors inside the deployment and the controller contains it —
			// the registry keeps the operator's state, nothing double-shifts
			// into prior.
			name: "promote after concurrent manual promote is contained",
			steps: []judgeStep{
				{
					at:    5 * time.Minute,
					stats: window(20, 0, 0, 20),
					manual: func(d *slotDeploy) {
						if err := d.Promote("vs", 0); err != nil {
							t.Errorf("manual promote: %v", err)
						}
					},
					tick: true,
				},
			},
			wantLog:    []string{"5m0s promote→v2"},
			wantActive: "v2",
			wantPrior:  "v1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &vclock{}
			d := &slotDeploy{clk: clk, active: "v1", canary: "v2"}
			c, err := New(d, Config{
				Sampler: SamplerFunc(func(site string) ([]string, error) { return nil, nil }),
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for _, step := range tc.steps {
				clk.advanceTo(step.at)
				if step.stats != nil {
					d.stats = *step.stats
				}
				if step.manual != nil {
					d.onStats = step.manual
				}
				if step.tick {
					c.Tick(context.Background())
				}
			}
			if !reflect.DeepEqual(d.log, tc.wantLog) {
				t.Errorf("action log = %q, want %q", d.log, tc.wantLog)
			}
			if d.active != tc.wantActive || d.prior != tc.wantPrior || d.canary != tc.wantCanary {
				t.Errorf("final slots active=%q prior=%q canary=%q, want active=%q prior=%q canary=%q",
					d.active, d.prior, d.canary, tc.wantActive, tc.wantPrior, tc.wantCanary)
			}
		})
	}
}
