package refresh

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"resilex/internal/machine"
	"resilex/internal/wrapper"
)

// The base layout family the active wrapper is trained on (the E1⟨p⟩E2
// fixtures used across the serve tests).
const pageTop = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

const pageBottom = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>`

// driftPage builds one page of the redesigned (div/span) family, outside
// the base wrapper's alphabet.
func driftPage(n int) string {
	return fmt.Sprintf(`<div class="search"><span>find parts %d</span>
<form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
</form></div>`, n)
}

func driftPages(n int) []string {
	pages := make([]string, n)
	for i := range pages {
		pages[i] = driftPage(i)
	}
	return pages
}

// fakeDeploy implements Deployment over real wrappers, recording the
// controller's rollout decisions.
type fakeDeploy struct {
	site    string
	active  *wrapper.Wrapper
	payload []byte

	canary        []byte
	canaryWrapper *wrapper.Wrapper
	deployErr     error

	stats      [4]uint64 // canaryOK, canaryErr, activeOK, activeErr
	promotes   int
	rollbacks  int
	lastAction string
}

func newFakeDeploy(t *testing.T) *fakeDeploy {
	t.Helper()
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: pageTop, Target: wrapper.TargetMarker()},
		{HTML: pageBottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{})
	if err != nil {
		t.Fatalf("train active: %v", err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		t.Fatalf("marshal active: %v", err)
	}
	return &fakeDeploy{site: "vs", active: w, payload: payload}
}

func (d *fakeDeploy) Sites() []string                  { return []string{d.site} }
func (d *fakeDeploy) ActivePayload(site string) []byte { return d.payload }
func (d *fakeDeploy) HasCanary(site string) bool       { return d.canary != nil }

func (d *fakeDeploy) Extract(site, html string) error {
	_, err := d.active.Extract(html)
	return err
}

func (d *fakeDeploy) DeployCanary(site string, payload []byte) (uint64, error) {
	if d.deployErr != nil {
		return 0, d.deployErr
	}
	w, err := wrapper.Load(payload, machine.Options{})
	if err != nil {
		return 0, err
	}
	d.canary = payload
	d.canaryWrapper = w
	return 2, nil
}

func (d *fakeDeploy) CanaryStats(site string) (uint64, uint64, uint64, uint64) {
	return d.stats[0], d.stats[1], d.stats[2], d.stats[3]
}

func (d *fakeDeploy) Promote(site string, version uint64) error {
	d.promotes++
	d.lastAction = "promote"
	d.active = d.canaryWrapper
	d.payload = d.canary
	d.canary, d.canaryWrapper = nil, nil
	return nil
}

func (d *fakeDeploy) Rollback(site string, version uint64) error {
	d.rollbacks++
	d.lastAction = "rollback"
	d.canary, d.canaryWrapper = nil, nil
	return nil
}

func newController(t *testing.T, d Deployment, pages []string) *Controller {
	t.Helper()
	c, err := New(d, Config{
		Sampler: SamplerFunc(func(site string) ([]string, error) { return pages, nil }),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestTickDetectsDriftAndDeploysCanary(t *testing.T) {
	d := newFakeDeploy(t)
	drift := driftPages(4)
	c := newController(t, d, drift)

	c.Tick(context.Background())

	if d.canary == nil {
		t.Fatal("drifted samples did not trigger a canary deploy")
	}
	// The candidate was induced from the drifted family: it extracts every
	// sampled page and — because Σ comes from the samples alone — none of
	// the old family.
	for i, page := range drift {
		if _, err := d.canaryWrapper.Extract(page); err != nil {
			t.Fatalf("candidate misses drift sample %d: %v", i, err)
		}
	}
	if _, err := d.canaryWrapper.Extract(pageTop); err == nil {
		t.Fatal("candidate unexpectedly extracts the old layout family")
	}
}

func TestTickNoDriftLeavesDeploymentAlone(t *testing.T) {
	d := newFakeDeploy(t)
	c := newController(t, d, []string{pageTop, pageBottom, pageTop})

	c.Tick(context.Background())

	if d.canary != nil {
		t.Fatal("healthy samples triggered a canary deploy")
	}
}

func TestTickBelowMinSamplesSkips(t *testing.T) {
	d := newFakeDeploy(t)
	c := newController(t, d, driftPages(2)) // MinSamples defaults to 3

	c.Tick(context.Background())

	if d.canary != nil {
		t.Fatal("canary deployed from an undersized sample set")
	}
}

func TestTickBelowDriftThresholdSkips(t *testing.T) {
	d := newFakeDeploy(t)
	// 1 miss out of 4 = 25% drift, below the 0.5 threshold.
	c := newController(t, d, []string{pageTop, pageBottom, pageTop, driftPage(0)})

	c.Tick(context.Background())

	if d.canary != nil {
		t.Fatal("canary deployed below the drift threshold")
	}
}

func TestTickUnmarkedSamplesSkipInduction(t *testing.T) {
	d := newFakeDeploy(t)
	// Pages drift (the active wrapper misses them) but carry no data-target
	// marker, so there is nothing to re-induce from.
	pages := []string{
		`<div><span>one</span></div>`,
		`<div><span>two</span></div>`,
		`<div><span>three</span></div>`,
	}
	c := newController(t, d, pages)

	c.Tick(context.Background())

	if d.canary != nil {
		t.Fatal("canary deployed from unmarked samples")
	}
}

func TestTickJudgesMatureCanary(t *testing.T) {
	cases := []struct {
		name  string
		stats [4]uint64 // canaryOK, canaryErr, activeOK, activeErr
		want  string
	}{
		{"canary beats failing active", [4]uint64{20, 0, 0, 20}, "promote"},
		{"canary matches healthy active", [4]uint64{20, 0, 20, 0}, "promote"},
		{"canary loses to active", [4]uint64{0, 20, 20, 0}, "rollback"},
		{"no active traffic, healthy canary", [4]uint64{20, 0, 0, 0}, "promote"},
		{"no active traffic, failing canary", [4]uint64{1, 19, 0, 0}, "rollback"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newFakeDeploy(t)
			if _, err := d.DeployCanary(d.site, d.payload); err != nil {
				t.Fatalf("stage canary: %v", err)
			}
			d.stats = tc.stats
			c := newController(t, d, nil)

			c.Tick(context.Background())

			if d.lastAction != tc.want {
				t.Fatalf("judge verdict = %q, want %q", d.lastAction, tc.want)
			}
			if d.canary != nil {
				t.Fatal("verdict did not clear the canary slot")
			}
		})
	}
}

func TestTickLeavesImmatureCanaryAlone(t *testing.T) {
	d := newFakeDeploy(t)
	if _, err := d.DeployCanary(d.site, d.payload); err != nil {
		t.Fatalf("stage canary: %v", err)
	}
	d.stats = [4]uint64{5, 0, 0, 5} // 5 observations < MinCanaryObservations 20
	c := newController(t, d, nil)

	c.Tick(context.Background())

	if d.promotes != 0 || d.rollbacks != 0 {
		t.Fatalf("immature window judged: promotes=%d rollbacks=%d", d.promotes, d.rollbacks)
	}
	if d.canary == nil {
		t.Fatal("immature canary was cleared")
	}
}

func TestTickSamplerErrorIsContained(t *testing.T) {
	d := newFakeDeploy(t)
	c, err := New(d, Config{
		Sampler: SamplerFunc(func(site string) ([]string, error) {
			return nil, errors.New("spool offline")
		}),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	c.Tick(context.Background()) // must not panic or deploy

	if d.canary != nil {
		t.Fatal("canary deployed despite sampler error")
	}
}

func TestRunTicksUntilCanceled(t *testing.T) {
	d := newFakeDeploy(t)
	var ticks atomic.Int64
	c, err := New(d, Config{
		Sampler: SamplerFunc(func(site string) ([]string, error) {
			ticks.Add(1)
			return nil, nil
		}),
		Interval: time.Millisecond,
		Rand:     func() float64 { return 0.5 },
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	c.Run(ctx)
	if ticks.Load() < 3 {
		t.Fatalf("Run ticked %d times in 100ms at a 1ms interval", ticks.Load())
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, Config{Sampler: SamplerFunc(func(string) ([]string, error) { return nil, nil })}); err == nil {
		t.Fatal("nil deployment accepted")
	}
	if _, err := New(newFakeDeploy(t), Config{}); err == nil {
		t.Fatal("nil sampler accepted")
	}
}

func TestDirSampler(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "vs")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Written out of order; sampled in name order. The .txt file and the
	// subdirectory are ignored.
	for name, body := range map[string]string{
		"b.html": "page-b", "a.html": "page-a", "notes.txt": "ignored",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "sub.html"), 0o755); err != nil {
		t.Fatal(err)
	}
	s := NewDirSampler(root)

	pages, err := s.Sample("vs")
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(pages) != 2 || pages[0] != "page-a" || pages[1] != "page-b" {
		t.Fatalf("Sample = %q, want [page-a page-b]", pages)
	}

	if pages, err := s.Sample("absent"); err != nil || len(pages) != 0 {
		t.Fatalf("missing spool dir: pages=%v err=%v, want empty, nil", pages, err)
	}

	for _, key := range []string{"", "..", "a/b", ".hidden"} {
		if _, err := s.Sample(key); err == nil {
			t.Fatalf("unsafe key %q accepted", key)
		}
	}
}
