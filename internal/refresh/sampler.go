package refresh

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirSampler reads samples from a spool directory: an ingest process (or an
// operator, or the smoke script) drops recent live pages into
// root/<site>/*.html and the controller picks them up on its next tick.
// Files are read in name order so a fixed spool yields a deterministic
// sample set.
type DirSampler struct {
	root string
}

// NewDirSampler samples from root/<site>/*.html.
func NewDirSampler(root string) *DirSampler { return &DirSampler{root: root} }

// Sample reads every .html file under the site's spool directory. A missing
// directory is an empty sample, not an error — sites without a spool simply
// never drift. Site keys that would escape the spool root are rejected.
func (s *DirSampler) Sample(site string) ([]string, error) {
	if site == "" || site != filepath.Base(site) || strings.HasPrefix(site, ".") {
		return nil, fmt.Errorf("refresh: unsafe spool key %q", site)
	}
	dir := filepath.Join(s.root, site)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".html") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	pages := make([]string, 0, len(names))
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		pages = append(pages, string(data))
	}
	return pages, nil
}
