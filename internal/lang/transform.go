package lang

import (
	"fmt"

	"resilex/internal/machine"
	"resilex/internal/symtab"
)

// Reverse returns { reverse(w) | w ∈ L }. Every notion in the paper
// (unambiguity, maximality, factoring) is mirror-symmetric under reversal,
// which is how the right-filtering maximization is obtained from Algorithm
// 6.2.
func (l Language) Reverse() (Language, error) {
	return FromNFA(machine.FromDFA(l.min).Reverse(), l.opt)
}

// Prefixes returns { α | ∃β, α·β ∈ L } = L/Σ*, the prefix closure.
func (l Language) Prefixes() (Language, error) {
	return l.RightFactor(Universal(l.sigma, l.opt))
}

// Suffixes returns { β | ∃α, α·β ∈ L } = Σ*\L, the suffix closure.
func (l Language) Suffixes() (Language, error) {
	return l.LeftFactor(Universal(l.sigma, l.opt))
}

// Infixes returns { γ | ∃α,β, α·γ·β ∈ L }, the factor (infix) closure.
func (l Language) Infixes() (Language, error) {
	p, err := l.Prefixes()
	if err != nil {
		return Language{}, err
	}
	return p.Suffixes()
}

// MarkedPrefixes returns F = L/(p·Σ*) — the prefixes of L-words that end
// immediately before an occurrence of p. This is the F of Algorithm 6.2.
func (l Language) MarkedPrefixes(p symtab.Symbol) (Language, error) {
	pl, err := Single([]symtab.Symbol{p}, l.sigma.With(p), l.opt)
	if err != nil {
		return Language{}, err
	}
	by, err := pl.Concat(Universal(l.sigma.With(p), l.opt))
	if err != nil {
		return Language{}, err
	}
	return l.RightFactor(by)
}

// ReplaceOne returns { u·c·v | u·p·v ∈ L }, a language over Σ ∪ {c}: every
// member of L with exactly one occurrence of p replaced by the fresh marker
// c. This is the language-level form of the substitution in Proposition 5.5
// (it agrees with the syntactic (p ↦ p|c) substitution once intersected with
// the exactly-one-c language, and is well defined even for extended
// operators where syntactic substitution is not).
func (l Language) ReplaceOne(p, c symtab.Symbol) (Language, error) {
	if l.sigma.Contains(c) {
		return Language{}, fmt.Errorf("lang: marker symbol already in Σ")
	}
	if !l.sigma.Contains(p) {
		// No occurrences of p to replace.
		return Empty(l.sigma.With(c), l.opt), nil
	}
	d := l.min
	n := d.NumStates()
	sigma := l.sigma.With(c)
	// Two copies of the DFA: states [0,n) have not crossed the marker,
	// states [n,2n) have. A c-edge jumps from copy 1 following the p
	// transition; p and the rest of Σ behave normally in both copies.
	out := &machine.NFA{
		Sigma:  sigma,
		Start:  []int{d.Start},
		Accept: make([]bool, 2*n),
		Eps:    make([][]int, 2*n),
		Edges:  make([][]machine.Edge, 2*n),
	}
	for s := 0; s < n; s++ {
		for k, sym := range d.Symbols() {
			t := d.Trans[s][k]
			out.Edges[s] = append(out.Edges[s], machine.Edge{On: symtab.NewAlphabet(sym), To: t})
			out.Edges[n+s] = append(out.Edges[n+s], machine.Edge{On: symtab.NewAlphabet(sym), To: n + t})
			if sym == p {
				out.Edges[s] = append(out.Edges[s], machine.Edge{On: symtab.NewAlphabet(c), To: n + t})
			}
		}
		out.Accept[n+s] = d.Accept[s]
	}
	return FromNFA(out, l.opt)
}
