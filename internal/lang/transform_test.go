package lang

import (
	"testing"

	"resilex/internal/machine"
	"resilex/internal/symtab"
)

func TestReverse(t *testing.T) {
	e := newEnv()
	l := e.lang(t, "p q r*")
	r, err := l.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(e.lang(t, "r* q p")) {
		t.Errorf("Reverse wrong: %v", r.Words(4))
	}
	rr, err := r.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Equal(l) {
		t.Error("double reverse")
	}
	// Palindromic-by-construction language unchanged.
	l = e.lang(t, "(p | q p q)")
	r, err = l.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(l) {
		t.Error("symmetric language changed under reversal")
	}
}

func TestReplaceOne(t *testing.T) {
	e := newEnv()
	c := e.tab.Intern("c")
	l := e.lang(t, "q p q p")
	m, err := l.ReplaceOne(e.p, c)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sigma().Contains(c) {
		t.Fatal("marker not in result alphabet")
	}
	// Enumeration is length-then-symbol-id order; c is interned after p.
	want := [][]symtab.Symbol{e.word(t, "q p q c"), e.word(t, "q c q p")}
	words := m.Words(4)
	if len(words) != len(want) {
		t.Fatalf("ReplaceOne = %d words %v, want 2", len(words), words)
	}
	for i := range want {
		if e.tab.String(words[i]) != e.tab.String(want[i]) {
			t.Errorf("ReplaceOne[%d] = %q, want %q", i, e.tab.String(words[i]), e.tab.String(want[i]))
		}
	}
	// No p at all ⇒ empty result.
	m, err = e.lang(t, "q q").ReplaceOne(e.p, c)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsEmpty() {
		t.Error("ReplaceOne on p-free language not empty")
	}
	// Marker already in Σ is rejected.
	if _, err := l.ReplaceOne(e.p, e.q); err == nil {
		t.Error("ReplaceOne with in-alphabet marker accepted")
	}
	// p outside Σ ⇒ empty.
	outside := symtab.Symbol(57)
	m, err = l.ReplaceOne(outside, c)
	if err != nil || !m.IsEmpty() {
		t.Errorf("ReplaceOne with foreign p = %v, %v", m.Words(3), err)
	}
}

func TestReplaceOneInfinite(t *testing.T) {
	e := newEnv()
	c := e.tab.Intern("c")
	l := e.lang(t, "p*")
	m, err := l.ReplaceOne(e.p, c)
	if err != nil {
		t.Fatal(err)
	}
	// Members: all p^i c p^j. Check a few.
	if !m.Contains([]symtab.Symbol{c}) {
		t.Error("missing c")
	}
	if !m.Contains([]symtab.Symbol{e.p, c, e.p}) {
		t.Error("missing p c p")
	}
	if m.Contains([]symtab.Symbol{c, c}) {
		t.Error("contains double marker")
	}
	if m.Contains([]symtab.Symbol{e.p}) {
		t.Error("contains unmarked word")
	}
}

func TestReverseFactorDuality(t *testing.T) {
	// (L/by)ᴿ = byᴿ \ Lᴿ — the duality the right-filtering maximization
	// leans on.
	e := newEnv()
	l := e.lang(t, "p q r | p r r")
	by := e.lang(t, "r | r r")
	rf, err := l.RightFactor(by)
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := rf.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	lr, err := l.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	byr, err := by.Reverse()
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := lr.LeftFactor(byr)
	if err != nil {
		t.Fatal(err)
	}
	if !lhs.Equal(rhs) {
		t.Errorf("duality failed: %v vs %v", lhs.Words(4), rhs.Words(4))
	}
}

func TestReverseBudgetPlumbed(t *testing.T) {
	// Reversal determinizes; ensure options are carried (tiny budget fails
	// on a language whose reverse DFA is large).
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	sigma := symtab.NewAlphabet(p, q)
	// (p|q)* p (p|q)^10 reversed has a small DFA; forward has 2^11. Use the
	// forward-exponential one as the *result* of reversal.
	src := "(p | q)"
	for i := 0; i < 10; i++ {
		src += " (p | q)"
	}
	src += " p (p | q)*" // reverse of this is the hard family
	l, err := Parse(src, tab, sigma, machine.Options{MaxStates: 64})
	if err == nil {
		_, err = l.Reverse()
	}
	if err == nil {
		t.Skip("automaton unexpectedly small; budget not exercised")
	}
}

func TestPrefixSuffixInfixClosures(t *testing.T) {
	e := newEnv()
	l := e.lang(t, "p q r")
	pre, err := l.Prefixes()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "p", "p q", "p q r"} {
		if !pre.Contains(e.word(t, w)) {
			t.Errorf("Prefixes missing %q", w)
		}
	}
	if pre.Contains(e.word(t, "q")) {
		t.Error("Prefixes contains non-prefix")
	}
	suf, err := l.Suffixes()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "r", "q r", "p q r"} {
		if !suf.Contains(e.word(t, w)) {
			t.Errorf("Suffixes missing %q", w)
		}
	}
	inf, err := l.Infixes()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "q", "p q", "q r", "p q r"} {
		if !inf.Contains(e.word(t, w)) {
			t.Errorf("Infixes missing %q", w)
		}
	}
	if inf.Contains(e.word(t, "p r")) {
		t.Error("Infixes contains non-factor")
	}
	// Closures are idempotent.
	pre2, err := pre.Prefixes()
	if err != nil {
		t.Fatal(err)
	}
	if !pre2.Equal(pre) {
		t.Error("Prefixes not idempotent")
	}
}

func TestMarkedPrefixes(t *testing.T) {
	e := newEnv()
	// Example 4.7 / Algorithm 6.2 trace: F({qp}) = {q}.
	l := e.lang(t, "q p")
	f, err := l.MarkedPrefixes(e.p)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(e.lang(t, "q")) {
		t.Errorf("MarkedPrefixes = %v", f.Words(3))
	}
	// Multiple p's: F(q p q p) = {q, q p q}.
	l = e.lang(t, "q p q p")
	f, err = l.MarkedPrefixes(e.p)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(e.lang(t, "q | q p q")) {
		t.Errorf("MarkedPrefixes = %v", f.Words(4))
	}
	// No p at all: empty.
	f, err = e.lang(t, "q q").MarkedPrefixes(e.p)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsEmpty() {
		t.Error("MarkedPrefixes of p-free language not empty")
	}
}
