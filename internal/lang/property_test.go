package lang

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// randomLang draws a random small language for algebra property tests.
type randomLang struct{ n *rx.Node }

func (randomLang) Generate(rng *rand.Rand, size int) reflect.Value {
	tab := symtab.NewTable()
	syms := tab.InternAll("p", "q")
	var gen func(d int) *rx.Node
	gen = func(d int) *rx.Node {
		if d <= 0 {
			if rng.Intn(4) == 0 {
				return rx.Epsilon()
			}
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
		switch rng.Intn(7) {
		case 0, 1:
			return rx.Concat(gen(d-1), gen(d-1))
		case 2, 3:
			return rx.Union(gen(d-1), gen(d-1))
		case 4:
			return rx.Star(gen(d - 1))
		case 5:
			return rx.Opt(gen(d - 1))
		default:
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
	}
	return reflect.ValueOf(randomLang{gen(3)})
}

func langEnv() (symtab.Alphabet, *quick.Config) {
	tab := symtab.NewTable()
	sigma := symtab.NewAlphabet(tab.InternAll("p", "q")...)
	return sigma, &quick.Config{MaxCount: 50}
}

func toLang(t *testing.T, v randomLang, sigma symtab.Alphabet) Language {
	t.Helper()
	l, err := FromRegex(v.n, sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Boolean algebra laws on the canonical Language representation.
func TestQuickBooleanAlgebra(t *testing.T) {
	sigma, cfg := langEnv()
	prop := func(a, b, c randomLang) bool {
		x, y, z := toLang(t, a, sigma), toLang(t, b, sigma), toLang(t, c, sigma)
		// De Morgan: ¬(x ∪ y) = ¬x ∩ ¬y
		u, _ := x.Union(y)
		lhs := u.Complement()
		i, _ := x.Complement().Intersect(y.Complement())
		if !lhs.Equal(i) {
			t.Log("De Morgan failed")
			return false
		}
		// Distribution: x ∩ (y ∪ z) = (x∩y) ∪ (x∩z)
		yz, _ := y.Union(z)
		l2, _ := x.Intersect(yz)
		xy, _ := x.Intersect(y)
		xz, _ := x.Intersect(z)
		r2, _ := xy.Union(xz)
		if !l2.Equal(r2) {
			t.Log("distribution failed")
			return false
		}
		// Difference: x − y = x ∩ ¬y
		d, _ := x.Minus(y)
		viaC, _ := x.Intersect(y.Complement())
		if !d.Equal(viaC) {
			t.Log("difference identity failed")
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Kleene algebra laws touching concatenation and star.
func TestQuickKleeneLaws(t *testing.T) {
	sigma, cfg := langEnv()
	eps := EpsilonOnly(sigma, machine.Options{})
	empty := Empty(sigma, machine.Options{})
	prop := func(a, b randomLang) bool {
		x, y := toLang(t, a, sigma), toLang(t, b, sigma)
		// x·ε = x, x·∅ = ∅
		xe, _ := x.Concat(eps)
		if !xe.Equal(x) {
			return false
		}
		x0, _ := x.Concat(empty)
		if !x0.IsEmpty() {
			return false
		}
		// (x ∪ y)·z distributes over union from the right: (x∪y)·y = xy ∪ yy
		u, _ := x.Union(y)
		uy, _ := u.Concat(y)
		xy, _ := x.Concat(y)
		yy, _ := y.Concat(y)
		ry, _ := xy.Union(yy)
		if !uy.Equal(ry) {
			return false
		}
		// x* = ε ∪ x·x*
		xs, _ := x.Star()
		xxs, _ := x.Concat(xs)
		unroll, _ := eps.Union(xxs)
		return xs.Equal(unroll)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Factoring interacts with concatenation: (x·y)/y ⊇ x (not equality in
// general), and y\(y·x) ⊇ x.
func TestQuickFactoringContainment(t *testing.T) {
	sigma, cfg := langEnv()
	prop := func(a, b randomLang) bool {
		x, y := toLang(t, a, sigma), toLang(t, b, sigma)
		if y.IsEmpty() {
			return true // factoring by ∅ yields ∅; containment vacuous only if x empty
		}
		xy, _ := x.Concat(y)
		f, _ := xy.RightFactor(y)
		if sub, _ := x.SubsetOf(f); !sub {
			t.Log("(x·y)/y ⊉ x")
			return false
		}
		yx, _ := y.Concat(x)
		g, _ := yx.LeftFactor(y)
		if sub, _ := x.SubsetOf(g); !sub {
			t.Log("y\\(y·x) ⊉ x")
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
