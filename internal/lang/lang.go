// Package lang provides the regular-language value type the paper's
// constructions manipulate: a Boolean algebra over an explicit finite
// alphabet Σ, concatenation and iteration, the prefix/suffix factoring
// operators of Definition 5.1, the finite sequence filtering operator
// E‖p,n of Definition 6.1, and the boundedness analysis behind Algorithm
// 6.2's applicability condition.
//
// A Language is an immutable value canonicalized to a minimal DFA, so
// equality and containment are cheap and deterministic. Operations that
// determinize may exceed a state budget and return an error wrapping
// machine.ErrBudget — this is the PSPACE obstruction of Theorem 5.12
// surfacing, not a bug.
package lang

import (
	"fmt"

	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// Language is a regular language over an explicit alphabet, canonically
// represented by its minimal complete DFA. The zero value is not useful;
// construct languages with the package constructors.
type Language struct {
	sigma symtab.Alphabet
	min   *machine.DFA
	opt   machine.Options
}

// Sigma returns the alphabet Σ the language is defined over.
func (l Language) Sigma() symtab.Alphabet { return l.sigma }

// DFA exposes the canonical minimal DFA (do not mutate).
func (l Language) DFA() *machine.DFA { return l.min }

// States reports the number of states of the minimal DFA — the canonical
// size measure used by the experiments.
func (l Language) States() int { return l.min.NumStates() }

// Options returns the state budget options carried by this language.
func (l Language) Options() machine.Options { return l.opt }

// WithOptions returns the same language carrying different construction
// options (budget and/or deadline) for subsequent operations.
func (l Language) WithOptions(opt machine.Options) Language {
	l.opt = opt
	return l
}

func fromDFA(d *machine.DFA, opt machine.Options) (Language, error) {
	min, err := machine.MinimizeOpt(d, opt)
	if err != nil {
		return Language{}, err
	}
	return Language{sigma: d.Sigma, min: min, opt: opt}, nil
}

// FromDFA canonicalizes an already-deterministic automaton into a Language
// without re-determinizing: only the (polynomial) minimization runs. This is
// the general restore path for DFAs of unknown provenance — a decoded DFA
// re-enters the Language invariant (canonical minimal form) at polynomial
// cost, so warm starts never pay the worst-case exponential subset
// construction again.
func FromDFA(d *machine.DFA, opt machine.Options) (Language, error) {
	return fromDFA(d, opt)
}

// FromMinimalDFA wraps a DFA that is already in canonical minimal form —
// one this package minimized earlier and that was restored verbatim, as
// internal/codec's checksum guarantees for persisted artifacts. No
// construction runs at all, which is what makes artifact decode linear.
// Callers who cannot vouch for canonical minimality must use FromDFA: a
// non-minimal machine here would break the Language invariant that equal
// languages have structurally equal minimal DFAs.
func FromMinimalDFA(d *machine.DFA, opt machine.Options) Language {
	return Language{sigma: d.Sigma, min: d, opt: opt}
}

// FromNFA canonicalizes an NFA into a Language.
func FromNFA(n *machine.NFA, opt machine.Options) (Language, error) {
	d, err := machine.Determinize(n, opt)
	if err != nil {
		return Language{}, err
	}
	return fromDFA(d, opt)
}

// FromRegex compiles a regular-expression AST over sigma.
func FromRegex(e *rx.Node, sigma symtab.Alphabet, opt machine.Options) (Language, error) {
	n, err := machine.Compile(e, sigma, opt)
	if err != nil {
		return Language{}, err
	}
	return FromNFA(n, opt)
}

// Parse compiles the concrete syntax of internal/rx over sigma ∪ {mentioned
// identifiers}.
func Parse(src string, tab *symtab.Table, sigma symtab.Alphabet, opt machine.Options) (Language, error) {
	e, err := rx.Parse(src, tab, sigma)
	if err != nil {
		return Language{}, err
	}
	full, err := rx.Sigma(src, tab, sigma)
	if err != nil {
		return Language{}, err
	}
	return FromRegex(e, full, opt)
}

// Empty returns ∅ over sigma. The construction is constant-size, so it runs
// without the options' time bound and its error path is a true invariant.
func Empty(sigma symtab.Alphabet, opt machine.Options) Language {
	n, _ := machine.Compile(rx.Empty(), sigma, opt.WithoutContext())
	l, err := FromNFA(n, opt.WithoutContext())
	if err != nil {
		panic(err) // cannot happen: two-state automaton, no deadline
	}
	l.opt = opt
	return l
}

// EpsilonOnly returns {ε} over sigma.
func EpsilonOnly(sigma symtab.Alphabet, opt machine.Options) Language {
	n, _ := machine.Compile(rx.Epsilon(), sigma, opt.WithoutContext())
	l, err := FromNFA(n, opt.WithoutContext())
	if err != nil {
		panic(err) // cannot happen: two-state automaton, no deadline
	}
	l.opt = opt
	return l
}

// Universal returns Σ*.
func Universal(sigma symtab.Alphabet, opt machine.Options) Language {
	n, _ := machine.Compile(rx.Star(rx.Class(sigma)), sigma, opt.WithoutContext())
	l, err := FromNFA(n, opt.WithoutContext())
	if err != nil {
		panic(err) // cannot happen: one-state automaton, no deadline
	}
	l.opt = opt
	return l
}

// Single returns {w} for a single word.
func Single(word []symtab.Symbol, sigma symtab.Alphabet, opt machine.Options) (Language, error) {
	for _, s := range word {
		if !sigma.Contains(s) {
			return Language{}, fmt.Errorf("lang: word symbol %d outside Σ", s)
		}
	}
	return FromNFA(machine.FromWord(word, sigma), opt)
}

// FromWords returns the finite language of the given words.
func FromWords(words [][]symtab.Symbol, sigma symtab.Alphabet, opt machine.Options) (Language, error) {
	for _, w := range words {
		for _, s := range w {
			if !sigma.Contains(s) {
				return Language{}, fmt.Errorf("lang: word symbol %d outside Σ", s)
			}
		}
	}
	return FromNFA(machine.WordsNFA(words, sigma), opt)
}

// withSigma re-homes the language over a (super-)alphabet: new symbols lead
// to a dead state, preserving the word set.
func (l Language) withSigma(sigma symtab.Alphabet) Language {
	if l.sigma.Equal(sigma) {
		return l
	}
	if !l.sigma.SubsetOf(sigma) {
		panic("lang: alphabet shrink would change the language")
	}
	n := machine.FromDFA(l.min)
	n.Sigma = sigma
	out, err := FromNFA(n, l.opt.WithoutContext())
	if err != nil {
		panic(err) // determinizing a DFA re-homed over a larger Σ cannot blow up
	}
	out.opt = l.opt
	return out
}

// align promotes both operands to the union alphabet.
func align(a, b Language) (Language, Language) {
	if a.sigma.Equal(b.sigma) {
		return a, b
	}
	u := a.sigma.Union(b.sigma)
	return a.withSigma(u), b.withSigma(u)
}

func (l Language) product(o Language, op func(bool, bool) bool) (Language, error) {
	a, b := align(l, o)
	d, err := machine.Product(a.min, b.min, op, l.opt)
	if err != nil {
		return Language{}, err
	}
	return fromDFA(d, l.opt)
}

// Union returns L ∪ M.
func (l Language) Union(o Language) (Language, error) {
	return l.product(o, func(x, y bool) bool { return x || y })
}

// Intersect returns L ∩ M.
func (l Language) Intersect(o Language) (Language, error) {
	return l.product(o, func(x, y bool) bool { return x && y })
}

// Minus returns L − M.
func (l Language) Minus(o Language) (Language, error) {
	return l.product(o, func(x, y bool) bool { return x && !y })
}

// Complement returns Σ* − L: a linear flip of the (already minimal) accept
// set, so it runs without the options' time bound.
func (l Language) Complement() Language {
	out, err := fromDFA(l.min.Complement(), l.opt.WithoutContext())
	if err != nil {
		panic(err) // cannot happen: no deadline, no determinization
	}
	out.opt = l.opt
	return out
}

// Concat returns L·M.
func (l Language) Concat(o Language) (Language, error) {
	a, b := align(l, o)
	n := machine.ConcatNFA(machine.FromDFA(a.min), machine.FromDFA(b.min))
	return FromNFA(n, l.opt)
}

// Star returns L*.
func (l Language) Star() (Language, error) {
	e := machine.ToRegex(l.min)
	return FromRegex(rx.Star(e), l.sigma, l.opt)
}

// IsEmpty reports L = ∅.
func (l Language) IsEmpty() bool { return l.min.IsEmpty() }

// IsUniversal reports L = Σ*.
func (l Language) IsUniversal() bool { return l.min.IsUniversal() }

// Contains reports w ∈ L.
func (l Language) Contains(word []symtab.Symbol) bool { return l.min.Accepts(word) }

// ContainsEpsilon reports ε ∈ L.
func (l Language) ContainsEpsilon() bool { return l.min.Accept[l.min.Start] }

// Equal reports L = M (canonical minimal DFAs over the aligned alphabet).
func (l Language) Equal(o Language) bool {
	a, b := align(l, o)
	return machine.StructurallyEqual(a.min, b.min)
}

// SubsetOf reports L ⊆ M.
func (l Language) SubsetOf(o Language) (bool, error) {
	a, b := align(l, o)
	return machine.Subset(a.min, b.min, l.opt)
}

// Witness returns a shortest member, or ok=false for ∅.
func (l Language) Witness() ([]symtab.Symbol, bool) { return l.min.Witness() }

// CounterExample returns a shortest word distinguishing L from M.
func (l Language) CounterExample(o Language) ([]symtab.Symbol, bool, error) {
	a, b := align(l, o)
	return machine.CounterExample(a.min, b.min, l.opt)
}

// Words enumerates all members up to maxLen (test oracle; exponential).
func (l Language) Words(maxLen int) [][]symtab.Symbol { return l.min.Enumerate(maxLen) }

// Regex renders the language as a regular-expression AST via state
// elimination of the minimal DFA.
func (l Language) Regex() *rx.Node { return machine.ToRegex(l.min) }

// LeftFactor returns by\L = { α | ∃β ∈ L(by), β·α ∈ L } — the prefix
// factoring of Definition 5.1, computed in polynomial time (Lemma 5.2).
func (l Language) LeftFactor(by Language) (Language, error) {
	a, b := align(l, by)
	return FromNFA(machine.LeftQuotient(machine.FromDFA(a.min), machine.FromDFA(b.min)), l.opt)
}

// RightFactor returns L/by = { α | ∃β ∈ L(by), α·β ∈ L } — the suffix
// factoring of Definition 5.1.
func (l Language) RightFactor(by Language) (Language, error) {
	a, b := align(l, by)
	return FromNFA(machine.RightQuotient(machine.FromDFA(a.min), machine.FromDFA(b.min)), l.opt)
}

// FilterCount implements the finite sequence filtering operator E‖p,n of
// Definition 6.1: the members of L containing exactly n occurrences of p.
func (l Language) FilterCount(p symtab.Symbol, n int) (Language, error) {
	if n < 0 {
		return Language{}, fmt.Errorf("lang: negative filter count %d", n)
	}
	sigma := l.sigma.With(p)
	noP := rx.Star(rx.Class(sigma.Without(p)))
	e := noP
	for i := 0; i < n; i++ {
		e = rx.Concat(e, rx.Sym(p), noP)
	}
	counter, err := FromRegex(e, sigma, l.opt)
	if err != nil {
		return Language{}, err
	}
	return l.Intersect(counter)
}

// MaxOccurrences returns the largest number of occurrences of p over all
// members of L, and bounded=false when that number is unbounded (some member
// family pumps p). For L = ∅ it returns (0, true) vacuously with empty=true.
//
// This decides the applicability condition of Algorithm 6.2 ("E matches a
// bounded number of p's", Lemma 6.4(4,5)) in time linear in the DFA: p is
// unbounded iff some useful p-transition lies on a cycle of useful states;
// otherwise the maximum is a longest-path count over the condensation DAG.
func (l Language) MaxOccurrences(p symtab.Symbol) (max int, bounded bool) {
	d := l.min
	if !l.sigma.Contains(p) {
		return 0, true
	}
	useful := usefulStates(d)
	if d.IsEmpty() {
		return 0, true
	}
	// SCCs over useful states (iterative Tarjan).
	scc := sccIDs(d, useful)
	// A p-edge within one SCC ⇒ unbounded.
	n := d.NumStates()
	for s := 0; s < n; s++ {
		if !useful[s] {
			continue
		}
		t := d.Step(s, p)
		if t >= 0 && useful[t] && scc[s] == scc[t] {
			return 0, false
		}
	}
	// No p-transition lies on a cycle, so "max p's from state s to an
	// accepting state" is a well-defined longest-path problem with
	// nonnegative weights and no positive-weight cycle; Bellman-Ford-style
	// relaxation converges in at most |states| sweeps.
	const negInf = -1 << 30
	best := make([]int, n)
	for s := range best {
		if useful[s] && d.Accept[s] {
			best[s] = 0
		} else {
			best[s] = negInf
		}
	}
	for sweep := 0; ; sweep++ {
		changed := false
		for s := 0; s < n; s++ {
			if !useful[s] {
				continue
			}
			for k, sym := range d.Symbols() {
				t := d.Trans[s][k]
				if !useful[t] || best[t] == negInf {
					continue
				}
				w := 0
				if sym == p {
					w = 1
				}
				if best[t]+w > best[s] {
					best[s] = best[t] + w
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if sweep > n+1 {
			panic("lang: MaxOccurrences failed to converge (positive cycle despite SCC check)")
		}
	}
	if !useful[d.Start] || best[d.Start] < 0 {
		return 0, true
	}
	return best[d.Start], true
}

// BoundedOccurrences reports whether every member of L contains at most a
// bounded number of p's; when bounded, bound is the least n such that
// L‖p,m = ∅ for all m > n (so the Algorithm 6.2 loop runs n+1 times).
func (l Language) BoundedOccurrences(p symtab.Symbol) (bound int, bounded bool) {
	return l.MaxOccurrences(p)
}

func usefulStates(d *machine.DFA) []bool {
	n := d.NumStates()
	reach := make([]bool, n)
	stack := []int{d.Start}
	reach[d.Start] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for k := range d.Symbols() {
			t := d.Trans[s][k]
			if !reach[t] {
				reach[t] = true
				stack = append(stack, t)
			}
		}
	}
	// live: can reach accept
	radj := make([][]int, n)
	for s := 0; s < n; s++ {
		for k := range d.Symbols() {
			radj[d.Trans[s][k]] = append(radj[d.Trans[s][k]], s)
		}
	}
	live := make([]bool, n)
	stack = stack[:0]
	for s := 0; s < n; s++ {
		if d.Accept[s] {
			live[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pr := range radj[s] {
			if !live[pr] {
				live[pr] = true
				stack = append(stack, pr)
			}
		}
	}
	useful := make([]bool, n)
	for s := 0; s < n; s++ {
		useful[s] = reach[s] && live[s]
	}
	return useful
}

// sccIDs computes strongly connected component ids over the useful subgraph
// with an iterative Tarjan; ids are assigned in reverse topological order.
func sccIDs(d *machine.DFA, useful []bool) []int {
	n := d.NumStates()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int
	counter, nComp := 0, 0
	type frame struct{ v, ei int }
	succs := func(v int) []int {
		var out []int
		for k := range d.Symbols() {
			t := d.Trans[v][k]
			if useful[t] {
				out = append(out, t)
			}
		}
		return out
	}
	for root := 0; root < n; root++ {
		if !useful[root] || index[root] != unvisited {
			continue
		}
		var frames []frame
		frames = append(frames, frame{root, 0})
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			ss := succs(f.v)
			if f.ei < len(ss) {
				w := ss[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// finish v
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				pv := frames[len(frames)-1].v
				if low[v] < low[pv] {
					low[pv] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}
