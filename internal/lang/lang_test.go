package lang

import (
	"math/rand"
	"testing"

	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

type env struct {
	tab   *symtab.Table
	p, q  symtab.Symbol
	r     symtab.Symbol
	sigma symtab.Alphabet
}

func newEnv() env {
	tab := symtab.NewTable()
	p, q, r := tab.Intern("p"), tab.Intern("q"), tab.Intern("r")
	return env{tab, p, q, r, symtab.NewAlphabet(p, q, r)}
}

func (e env) lang(t *testing.T, src string) Language {
	t.Helper()
	l, err := Parse(src, e.tab, e.sigma, machine.Options{})
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return l
}

func (e env) word(t *testing.T, src string) []symtab.Symbol {
	t.Helper()
	w, err := rx.ParseWord(src, e.tab)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBasicAlgebra(t *testing.T) {
	e := newEnv()
	a := e.lang(t, "p* q")
	b := e.lang(t, "q | p q")

	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"q", "p q", "p p q"} {
		if !u.Contains(e.word(t, w)) {
			t.Errorf("union missing %q", w)
		}
	}
	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if !i.Equal(b) {
		t.Error("a ∩ b should equal b (b ⊆ a)")
	}
	m, err := a.Minus(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Contains(e.word(t, "q")) || m.Contains(e.word(t, "p q")) || !m.Contains(e.word(t, "p p q")) {
		t.Error("minus wrong")
	}
	c := a.Complement()
	if c.Contains(e.word(t, "q")) || !c.Contains(e.word(t, "r")) || !c.Contains(nil) {
		t.Error("complement wrong")
	}
	if !a.Complement().Complement().Equal(a) {
		t.Error("double complement")
	}
}

func TestConcatStar(t *testing.T) {
	e := newEnv()
	a := e.lang(t, "p | p q")
	b := e.lang(t, "r")
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(e.lang(t, "p r | p q r")) {
		t.Error("concat wrong")
	}
	s, err := a.Star()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(e.lang(t, "(p | p q)*")) {
		t.Error("star wrong")
	}
}

func TestPredicates(t *testing.T) {
	e := newEnv()
	if !e.lang(t, "#empty").IsEmpty() || e.lang(t, "#eps").IsEmpty() {
		t.Error("IsEmpty")
	}
	if !e.lang(t, ".*").IsUniversal() || e.lang(t, "p*").IsUniversal() {
		t.Error("IsUniversal")
	}
	if !e.lang(t, "p?").ContainsEpsilon() || e.lang(t, "p").ContainsEpsilon() {
		t.Error("ContainsEpsilon")
	}
	sub, err := e.lang(t, "p q").SubsetOf(e.lang(t, "p .*"))
	if err != nil || !sub {
		t.Error("SubsetOf")
	}
	w, ok := e.lang(t, "p p | q").Witness()
	if !ok || e.tab.String(w) != "q" {
		t.Errorf("Witness = %q", e.tab.String(w))
	}
	cex, ok, err := e.lang(t, "p*").CounterExample(e.lang(t, "p* | q"))
	if err != nil || !ok || e.tab.String(cex) != "q" {
		t.Errorf("CounterExample = %q %v %v", e.tab.String(cex), ok, err)
	}
}

func TestAlphabetPromotion(t *testing.T) {
	tab := symtab.NewTable()
	p, q := tab.Intern("p"), tab.Intern("q")
	a, err := Parse("p*", tab, symtab.NewAlphabet(p), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("q", tab, symtab.NewAlphabet(q), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Sigma().Equal(symtab.NewAlphabet(p, q)) {
		t.Errorf("promoted sigma = %v", u.Sigma().Symbols())
	}
	if !u.Contains([]symtab.Symbol{q}) || !u.Contains([]symtab.Symbol{p, p}) {
		t.Error("promoted union wrong")
	}
	// Complement after promotion is relative to the larger alphabet.
	if c := a.withSigma(symtab.NewAlphabet(p, q)).Complement(); !c.Contains([]symtab.Symbol{q}) {
		t.Error("promotion lost alphabet")
	}
}

func TestFactoringDefinition51(t *testing.T) {
	e := newEnv()
	// Worked example: (p q r) left-factored by (p q) = {r}.
	l := e.lang(t, "p q r")
	by := e.lang(t, "p q")
	f, err := l.LeftFactor(by)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(e.lang(t, "r")) {
		t.Errorf("left factor = %v", f.Words(4))
	}
	// Right: (p q r)/(q r) = {p}.
	f, err = l.RightFactor(e.lang(t, "q r"))
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(e.lang(t, "p")) {
		t.Errorf("right factor = %v", f.Words(4))
	}
	// Factoring by a disjoint language is empty.
	f, err = l.LeftFactor(e.lang(t, "r r"))
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsEmpty() {
		t.Error("factor by non-prefix not empty")
	}
	// (E·p)\E for E = q p: strings γ with (some α∈E) α·p·γ ∈ E — empty here.
	E := e.lang(t, "q p")
	Ep, err := E.Concat(e.lang(t, "p"))
	if err != nil {
		t.Fatal(err)
	}
	f, err = E.LeftFactor(Ep)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsEmpty() {
		t.Error("(E·p)\\E for unambiguous-style E should be empty")
	}
}

// TestLemma63Identities validates the factoring algebra the correctness
// proofs lean on (experiment E12), over a grid of small random languages.
func TestLemma63Identities(t *testing.T) {
	e := newEnv()
	exprs := []string{
		"p*", "q p*", "(p | q)*", "p q | r", "p* q p*", ".* p", "#eps", "(q p)*",
	}
	langs := make([]Language, len(exprs))
	for i, s := range exprs {
		langs[i] = e.lang(t, s)
	}
	pSigmaStar := e.lang(t, "p .*")
	for _, E := range langs {
		for _, E1 := range langs {
			for _, E2 := range langs {
				// (1) (E1 + E2)/E = E1/E + E2/E
				u, _ := E1.Union(E2)
				lhs, _ := u.RightFactor(E)
				a, _ := E1.RightFactor(E)
				b, _ := E2.RightFactor(E)
				rhs, _ := a.Union(b)
				if !lhs.Equal(rhs) {
					t.Fatalf("identity (1) failed")
				}
				// (2) E\(E1 + E2) = E\E1 + E\E2
				lhs, _ = u.LeftFactor(E)
				a, _ = E1.LeftFactor(E)
				b, _ = E2.LeftFactor(E)
				rhs, _ = a.Union(b)
				if !lhs.Equal(rhs) {
					t.Fatalf("identity (2) failed")
				}
				// (5) (E1·E2)/(p·Σ*) = E1/(p·Σ*) + E1·(E2/(p·Σ*))
				cat, _ := E1.Concat(E2)
				lhs, _ = cat.RightFactor(pSigmaStar)
				a, _ = E1.RightFactor(pSigmaStar)
				b2, _ := E2.RightFactor(pSigmaStar)
				b, _ = E1.Concat(b2)
				rhs, _ = a.Union(b)
				if !lhs.Equal(rhs) {
					t.Fatalf("identity (5) failed for %v, %v", E1.Regex(), E2.Regex())
				}
			}
		}
	}
}

// Lemma 6.3(7): if E1 ⊆ E2/(p·Σ*)… — we test the monotonicity form: if
// L1 ⊆ L2 then L1/F ⊆ L2/F and F\L1 ⊆ F\L2.
func TestFactoringMonotone(t *testing.T) {
	e := newEnv()
	small := e.lang(t, "q p")
	big := e.lang(t, "q p | q p p | r")
	f := e.lang(t, "p | #eps")
	a, _ := small.RightFactor(f)
	b, _ := big.RightFactor(f)
	if sub, _ := a.SubsetOf(b); !sub {
		t.Error("right factor not monotone")
	}
	a, _ = small.LeftFactor(f)
	b, _ = big.LeftFactor(f)
	if sub, _ := a.SubsetOf(b); !sub {
		t.Error("left factor not monotone")
	}
}

func TestFilterCount(t *testing.T) {
	e := newEnv()
	l := e.lang(t, "(p | q)*")
	for n := 0; n <= 3; n++ {
		f, err := l.FilterCount(e.p, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range f.Words(5) {
			count := 0
			for _, s := range w {
				if s == e.p {
					count++
				}
			}
			if count != n {
				t.Errorf("FilterCount(%d) contains %q", n, e.tab.String(w))
			}
		}
		if f.IsEmpty() {
			t.Errorf("FilterCount(%d) of (p|q)* empty", n)
		}
	}
	// Exactly-two-p language: filter at other counts is empty.
	l = e.lang(t, "q* p q* p q*")
	for n, wantEmpty := range map[int]bool{0: true, 1: true, 2: false, 3: true} {
		f, err := l.FilterCount(e.p, n)
		if err != nil {
			t.Fatal(err)
		}
		if f.IsEmpty() != wantEmpty {
			t.Errorf("FilterCount(%d).IsEmpty = %v, want %v", n, f.IsEmpty(), wantEmpty)
		}
	}
	if _, err := l.FilterCount(e.p, -1); err == nil {
		t.Error("negative filter count accepted")
	}
}

func TestMaxOccurrences(t *testing.T) {
	e := newEnv()
	cases := []struct {
		src     string
		bound   int
		bounded bool
	}{
		{"q*", 0, true},
		{"p", 1, true},
		{"q p q p q", 2, true},
		{"p p p | p", 3, true},
		{"p*", 0, false},
		{"(q p)*", 0, false},
		{"q* p q*", 1, true},
		{"#empty", 0, true},
		{"#eps", 0, true},
		{"(p | q) (p | q) (p | q)", 3, true},
		{"q* (p | #eps) q* (p | #eps)", 2, true},
		{".* p .*", 0, false}, // dot includes p
	}
	for _, c := range cases {
		l := e.lang(t, c.src)
		got, bounded := l.MaxOccurrences(e.p)
		if bounded != c.bounded || (bounded && got != c.bound) {
			t.Errorf("MaxOccurrences(%q, p) = (%d, %v), want (%d, %v)",
				c.src, got, bounded, c.bound, c.bounded)
		}
	}
	// Symbol outside sigma: trivially bounded by 0.
	l := e.lang(t, "q*")
	if got, bounded := l.MaxOccurrences(symtab.Symbol(99)); got != 0 || !bounded {
		t.Error("foreign symbol not trivially bounded")
	}
}

// Cross-check MaxOccurrences against FilterCount emptiness (Lemma 6.4(4,5)).
func TestBoundednessConsistency(t *testing.T) {
	e := newEnv()
	exprs := []string{
		"q*", "p", "q p q p q", "p p p | p", "q* p q*", "#eps",
		"(p | q) (p | q)", "q* (p | #eps) q* (p | #eps) q*",
	}
	for _, src := range exprs {
		l := e.lang(t, src)
		bound, bounded := l.MaxOccurrences(e.p)
		if !bounded {
			t.Fatalf("%q unexpectedly unbounded", src)
		}
		if !l.IsEmpty() {
			f, err := l.FilterCount(e.p, bound)
			if err != nil {
				t.Fatal(err)
			}
			if f.IsEmpty() {
				t.Errorf("%q: FilterCount at bound %d empty", src, bound)
			}
		}
		f, err := l.FilterCount(e.p, bound+1)
		if err != nil {
			t.Fatal(err)
		}
		if !f.IsEmpty() {
			t.Errorf("%q: FilterCount above bound %d non-empty", src, bound)
		}
	}
	// Unbounded cases: filters non-empty at every small n.
	for _, src := range []string{"p*", "(q p)*", "(p p q)*"} {
		l := e.lang(t, src)
		if _, bounded := l.MaxOccurrences(e.p); bounded {
			t.Fatalf("%q unexpectedly bounded", src)
		}
		for n := 0; n <= 4; n++ {
			f, err := l.FilterCount(e.p, n)
			if err != nil {
				t.Fatal(err)
			}
			_ = f
		}
	}
}

func TestRegexRoundTrip(t *testing.T) {
	e := newEnv()
	for _, src := range []string{"p* q | r", "(q p)*", "#empty", ".*", "p (q | r)* p"} {
		l := e.lang(t, src)
		back, err := FromRegex(l.Regex(), e.sigma, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(l) {
			t.Errorf("Regex round trip of %q failed: got %s", src, rx.Print(l.Regex(), e.tab))
		}
	}
}

func TestSingleAndFromWords(t *testing.T) {
	e := newEnv()
	w := e.word(t, "p q p")
	l, err := Single(w, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains(w) || l.Contains(e.word(t, "p q")) {
		t.Error("Single wrong")
	}
	if _, err := Single([]symtab.Symbol{99}, e.sigma, machine.Options{}); err == nil {
		t.Error("Single with foreign symbol accepted")
	}
	ws := [][]symtab.Symbol{e.word(t, "p"), e.word(t, "q q")}
	l, err = FromWords(ws, e.sigma, machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Contains(ws[0]) || !l.Contains(ws[1]) || l.Contains(e.word(t, "q")) {
		t.Error("FromWords wrong")
	}
}

func TestWordsSample(t *testing.T) {
	e := newEnv()
	l := e.lang(t, "p q*")
	words := l.Words(3)
	if len(words) != 3 {
		t.Fatalf("Words = %d", len(words))
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		w, ok := l.DFA().Sample(6, rng)
		if !ok || !l.Contains(w) {
			t.Fatal("Sample not a member")
		}
	}
}

func TestConstructors(t *testing.T) {
	e := newEnv()
	if !Empty(e.sigma, machine.Options{}).IsEmpty() {
		t.Error("Empty")
	}
	eps := EpsilonOnly(e.sigma, machine.Options{})
	if !eps.ContainsEpsilon() || eps.Contains(e.word(t, "p")) {
		t.Error("EpsilonOnly")
	}
	if !Universal(e.sigma, machine.Options{}).IsUniversal() {
		t.Error("Universal")
	}
}

func TestStatesMeasure(t *testing.T) {
	e := newEnv()
	if e.lang(t, ".*").States() != 1 {
		t.Error(".* should have 1 state")
	}
	if e.lang(t, "#empty").States() != 1 {
		t.Error("#empty should have 1 state")
	}
}

func TestErrorPaths(t *testing.T) {
	e := newEnv()
	// Foreign symbol in the AST relative to Σ.
	foreign := rx.Sym(e.tab.Intern("outside"))
	if _, err := FromRegex(foreign, e.sigma, machine.Options{}); err == nil {
		t.Error("FromRegex with foreign symbol succeeded")
	}
	// Parse syntax errors propagate.
	if _, err := Parse("(((", e.tab, e.sigma, machine.Options{}); err == nil {
		t.Error("Parse of garbage succeeded")
	}
	// Budget exhaustion propagates from determinization.
	src := "(p | q)* p"
	for i := 0; i < 12; i++ {
		src += " (p | q)"
	}
	if _, err := Parse(src, e.tab, symtab.NewAlphabet(e.p, e.q), machine.Options{MaxStates: 16}); err == nil {
		t.Error("budget not enforced through Parse")
	}
}
