package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"resilex/internal/extract"
	"resilex/internal/lang"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/perturb"
	"resilex/internal/rx"
	"resilex/internal/symtab"
	"resilex/internal/wrapper"
)

// Table is one experiment's printable result.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim the experiment validates
	Header []string
	Rows   [][]string
	// Phases carries the experiment's observed phase-counter deltas (subset
	// states explored, minimization passes, deadline polls, ...) when the
	// harness runs with an observer; see PhaseDelta.
	Phases map[string]int64 `json:",omitempty"`
}

// Format renders the table with aligned columns.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// E3Ambiguity measures the ambiguity-test runtime over expression size
// (Theorem 5.6: polynomial, quadratic in the expression).
func E3Ambiguity(sizes []int, trials int, seed int64) Table {
	e := NewEnv()
	rng := rand.New(rand.NewSource(seed))
	t := Table{
		ID:     "E3",
		Title:  "ambiguity testing vs expression size",
		Claim:  "Theorem 5.6: deciding ambiguity is polynomial (quadratic) time",
		Header: []string{"size", "dfa-states", "unambig µs/op", "ambig µs/op"},
	}
	for _, size := range sizes {
		var duA, duU time.Duration
		states := 0
		for i := 0; i < trials; i++ {
			xu := e.UnambiguousExpr(size, rng)
			xa := e.AmbiguousExpr(size, rng)
			states += xu.Size()
			start := time.Now()
			if ok, err := xu.Unambiguous(); err != nil || !ok {
				panic(fmt.Sprintf("E3: generator broke: %v %v", ok, err))
			}
			duU += time.Since(start)
			start = time.Now()
			if ok, err := xa.Unambiguous(); err != nil || ok {
				panic(fmt.Sprintf("E3: generator broke: %v %v", ok, err))
			}
			duA += time.Since(start)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(size),
			fmt.Sprint(states / trials),
			fmt.Sprintf("%.1f", float64(duU.Microseconds())/float64(trials)),
			fmt.Sprintf("%.1f", float64(duA.Microseconds())/float64(trials)),
		})
	}
	return t
}

// E4Maximality measures the determinization blow-up behind maximality
// testing on the Lemma 5.9 witness family (Theorem 5.12: PSPACE-complete).
func E4Maximality(ns []int) Table {
	e := NewEnv()
	t := Table{
		ID:     "E4",
		Title:  "maximality testing blow-up on (p|q)*·p·(p|q)^n",
		Claim:  "Theorem 5.12 via Lemma 5.9: testing maximality is PSPACE-complete; the witness family forces 2^(n+1) DFA states",
		Header: []string{"n", "nfa-states", "min-dfa-states", "2^(n+1)", "time ms"},
	}
	for _, n := range ns {
		expr, sigma := e.PSPACEWitness(n)
		start := time.Now()
		nfa, err := machine.Compile(expr, sigma, DefaultOptions)
		if err != nil {
			panic(err)
		}
		d, err := machine.Determinize(nfa, DefaultOptions)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(nfa.NumStates()), "budget!", fmt.Sprint(1 << (n + 1)), "-"})
			continue
		}
		m := machine.Minimize(d)
		el := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(nfa.NumStates()), fmt.Sprint(m.NumStates()),
			fmt.Sprint(1 << (n + 1)), ms(el),
		})
	}
	return t
}

// E5Nonunique demonstrates Example 4.7: two (in fact infinitely many)
// distinct maximal generalizations of qp⟨p⟩Σ*.
func E5Nonunique() Table {
	e := NewEnv()
	t := Table{
		ID:     "E5",
		Title:  "non-uniqueness of maximization for qp⟨p⟩Σ*",
		Claim:  "Example 4.7: maximization is not unique; an infinite family of maximal generalizations exists",
		Header: []string{"generalization", "unambiguous", "maximal", "distinct-from-first"},
	}
	in, err := extract.Parse("q p <p> .*", e.Tab, e.Sigma, DefaultOptions)
	if err != nil {
		panic(err)
	}
	algo, err := extract.LeftFilter(in)
	if err != nil {
		panic(err)
	}
	manual, err := extract.Parse("[^ p]* p [^ p]* <p> .*", e.Tab, e.Sigma, DefaultOptions)
	if err != nil {
		panic(err)
	}
	for i, x := range []extract.Expr{algo, manual} {
		u, _ := x.Unambiguous()
		m, _ := x.Maximal()
		distinct := "-"
		if i > 0 {
			distinct = fmt.Sprint(!x.Equal(algo))
		}
		t.Rows = append(t.Rows, []string{x.String(e.Tab), fmt.Sprint(u), fmt.Sprint(m), distinct})
	}
	return t
}

// E6LeftFilter measures Algorithm 6.2 over the p-bound n.
func E6LeftFilter(ns []int) Table {
	e := NewEnv()
	t := Table{
		ID:     "E6",
		Title:  "left-filtering maximization (Algorithm 6.2) vs p-bound n",
		Claim:  "Proposition 6.5: the output is maximal and unambiguous; the loop runs n+1 times",
		Header: []string{"n", "input-states", "output-states", "maximal", "time ms"},
	}
	for _, n := range ns {
		x := e.BoundedPExpr(n)
		start := time.Now()
		out, err := extract.LeftFilter(x)
		if err != nil {
			panic(err)
		}
		el := time.Since(start)
		m, err := out.Maximal()
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(x.Size()), fmt.Sprint(out.Size()),
			fmt.Sprint(m), ms(el),
		})
	}
	return t
}

// E7Pivot compares pivot maximization against plain left-filtering on the
// unbounded-p pivot family (where left-filtering must fail) and, on the
// Section 7 expression, compares the two algorithms' output sizes.
func E7Pivot(ks []int) Table {
	e := NewEnv()
	t := Table{
		ID:     "E7",
		Title:  "pivot maximization vs plain Algorithm 6.2",
		Claim:  "Section 6: pivoting is strictly more powerful (handles unbounded p); Section 7: direct Algorithm 6.2 output is much larger",
		Header: []string{"k (pivot blocks)", "left-filter", "pivot", "pivot-out-states", "time ms"},
	}
	for _, k := range ks {
		x := e.PivotExpr(k)
		_, lfErr := extract.LeftFilter(x)
		lf := "ok"
		if lfErr != nil {
			lf = "unbounded"
		}
		start := time.Now()
		out, err := extract.Pivot(x)
		el := time.Since(start)
		pv := "ok"
		states := "-"
		if err != nil {
			pv = err.Error()
		} else {
			states = fmt.Sprint(out.Size())
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(k), lf, pv, states, ms(el)})
	}
	return t
}

// E8Resilience scores the three wrapper variants (rigid, merged, maximized)
// over seeded perturbation corpora of increasing edit count — the paper's
// "preliminary experiments" claim rebuilt on the synthetic change model.
func E8Resilience(edits []int, trialsPerEdit int, seed int64) Table {
	tab := symtab.NewTable()
	t := Table{
		ID:     "E8",
		Title:  "wrapper resilience under the Section 3 change model",
		Claim:  "Section 1: maximized expressions provide resilient extraction; resilience orders rigid ≤ merged ≤ maximized",
		Header: []string{"edits", "rigid %", "merged %", "maximized %"},
	}
	base, err := rx.ParseWord("P H1 /H1 P FORM INPUT INPUT P INPUT INPUT /FORM", tab)
	if err != nil {
		panic(err)
	}
	target := 6
	variant, err := rx.ParseWord("TABLE TR TD FORM INPUT INPUT P INPUT INPUT /FORM /TD /TR /TABLE", tab)
	if err != nil {
		panic(err)
	}
	p := perturb.New(tab, seed)
	sigma := symtab.NewAlphabet(base...).Union(symtab.NewAlphabet(variant...)).Union(p.Alphabet())
	examples := []learn.Example{{Doc: base, Target: target}, {Doc: variant, Target: 5}}

	rigid, err := wrapper.TrainTokens(tab, examples[:1], sigma, wrapper.Config{SkipMaximize: true})
	if err != nil {
		panic(err)
	}
	merged, err := wrapper.TrainTokens(tab, examples, sigma, wrapper.Config{SkipMaximize: true})
	if err != nil {
		panic(err)
	}
	maxed, err := wrapper.TrainTokens(tab, examples, sigma, wrapper.Config{})
	if err != nil {
		panic(err)
	}
	for _, n := range edits {
		type trial struct {
			doc []symtab.Symbol
			tgt int
		}
		var corpus []trial
		for i := 0; i < trialsPerEdit; i++ {
			doc, tgt, _ := p.Apply(base, target, n)
			corpus = append(corpus, trial{doc, tgt})
		}
		pct := func(w *wrapper.Wrapper) string {
			hits := 0
			for _, tr := range corpus {
				if got, ok := w.ExtractTokens(tr.doc); ok && got == tr.tgt {
					hits++
				}
			}
			return fmt.Sprintf("%.1f", 100*float64(hits)/float64(len(corpus)))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), pct(rigid), pct(merged), pct(maxed)})
	}
	return t
}

// E8HTML is the HTML-level variant of E8: wrappers trained on pages from
// the synthetic catalog-site generator, scored on fresh pages from layout
// generators with increasingly different conventions (the "same site,
// ongoing redesigns" scenario).
func E8HTML(trainPages, testPages int, seed int64) Table {
	tab := symtab.NewTable()
	g := NewSiteGenerator(tab, seed)
	t := Table{
		ID:     "E8h",
		Title:  "wrapper generalization across generated catalog layouts",
		Claim:  "Section 1: maximized wrappers extract from layout variants never seen in training",
		Header: []string{"wrapper", "strategy", "fresh-page hits", "rate %"},
	}
	examples, sigma := g.TrainingSet(trainPages, 4)
	score := func(w *wrapper.Wrapper) (int, int) {
		hits := 0
		for i := 0; i < testPages; i++ {
			s := g.Generate(4)
			if pos, ok := w.ExtractTokens(s.Tokens); ok && pos == s.Target {
				hits++
			}
		}
		return hits, testPages
	}
	for _, row := range []struct {
		name string
		cfg  wrapper.Config
		exs  []learn.Example
	}{
		{"rigid (1 sample)", wrapper.Config{SkipMaximize: true}, examples[:1]},
		{"merged", wrapper.Config{SkipMaximize: true}, examples},
		{"maximized", wrapper.Config{}, examples},
	} {
		w, err := wrapper.TrainTokens(tab, row.exs, sigma, row.cfg)
		if err != nil {
			t.Rows = append(t.Rows, []string{row.name, "train-failed: " + err.Error(), "-", "-"})
			continue
		}
		hits, total := score(w)
		t.Rows = append(t.Rows, []string{
			row.name, w.Strategy(), fmt.Sprintf("%d/%d", hits, total),
			fmt.Sprintf("%.1f", 100*float64(hits)/float64(total)),
		})
	}
	return t
}

// E13Tuple exercises the multi-slot extension: induce a 2-slot tuple from
// marked examples, maximize it segment-wise, and score resilience under the
// perturbation model.
func E13Tuple(trials int, seed int64) Table {
	tab := symtab.NewTable()
	t := Table{
		ID:     "E13",
		Title:  "tuple (multi-slot) extraction — library extension",
		Claim:  "extension: the single-mark theory lifts to k-slot tuples (squared-automaton unambiguity, segment-wise maximization)",
		Header: []string{"wrapper", "unambiguous", "perturbed-page hits", "rate %"},
	}
	base, err := rx.ParseWord("P H1 /H1 FORM INPUT INPUT /FORM P", tab)
	if err != nil {
		panic(err)
	}
	targets := []int{4, 5}
	variant, err := rx.ParseWord("TABLE TR TD FORM INPUT INPUT /FORM /TD /TR /TABLE", tab)
	if err != nil {
		panic(err)
	}
	p := perturb.New(tab, seed)
	sigma := symtab.NewAlphabet(base...).Union(symtab.NewAlphabet(variant...)).Union(p.Alphabet())
	examples := []learn.TupleExample{
		{Doc: base, Targets: targets},
		{Doc: variant, Targets: []int{4, 5}},
	}
	induced, err := learn.InduceTuple(examples, sigma, DefaultOptions)
	if err != nil {
		panic(err)
	}
	maxed, err := extract.MaximizeTuple(induced)
	if err != nil {
		panic(err)
	}
	type trial struct {
		doc []symtab.Symbol
		t1  int
		t2  int
	}
	var corpus []trial
	for i := 0; i < trials; i++ {
		doc, t1, _ := p.Apply(base, targets[0], 1+i%4)
		// Track the second target too: re-locate it as the INPUT after t1.
		input := tab.Intern("INPUT")
		t2 := -1
		for j := t1 + 1; j < len(doc); j++ {
			if doc[j] == input {
				t2 = j
				break
			}
		}
		if t2 < 0 {
			continue
		}
		corpus = append(corpus, trial{doc, t1, t2})
	}
	for _, row := range []struct {
		name string
		tp   *extract.Tuple
	}{{"induced", induced}, {"maximized", maxed}} {
		unamb, err := row.tp.Unambiguous()
		if err != nil {
			panic(err)
		}
		hits := 0
		for _, tr := range corpus {
			v, ok, err := row.tp.Extract(tr.doc)
			if err == nil && ok && len(v) == 2 && v[0] == tr.t1 && v[1] == tr.t2 {
				hits++
			}
		}
		t.Rows = append(t.Rows, []string{
			row.name, fmt.Sprint(unamb), fmt.Sprintf("%d/%d", hits, len(corpus)),
			fmt.Sprintf("%.1f", 100*float64(hits)/float64(len(corpus))),
		})
	}
	return t
}

// E14Alphabet is the alphabet-coverage ablation behind the DTD feature
// (§8): identical training and scoring at several training-set sizes, with
// Σ either inferred from the samples alone or extended to the generator's
// full vocabulary (what a DTD declares). Pages using declared-but-unseen
// tags are unparseable in the samples-only configuration by construction;
// with enough samples the vocabulary is eventually covered anyway — the DTD
// gets there with fewer samples.
func E14Alphabet(trainSizes []int, testPages int, seed int64) Table {
	t := Table{
		ID:     "E14",
		Title:  "alphabet coverage: samples-only Σ vs declared (DTD-style) Σ",
		Claim:  "§8 DTD guidance: declaring the site vocabulary up front removes out-of-Σ misses at small training sizes",
		Header: []string{"training pages", "samples-only %", "declared-Σ %"},
	}
	for _, trainPages := range trainSizes {
		var rates [2]float64
		for i, declared := range []bool{false, true} {
			tab := symtab.NewTable()
			g := NewSiteGenerator(tab, seed)
			examples, sigma := g.TrainingSet(trainPages, 4)
			if !declared {
				sigma = symtab.Alphabet{}
				for _, ex := range examples {
					sigma = sigma.Union(symtab.NewAlphabet(ex.Doc...))
				}
			}
			w, err := wrapper.TrainTokens(tab, examples, sigma, wrapper.Config{})
			if err != nil {
				panic(err)
			}
			hits := 0
			for j := 0; j < testPages; j++ {
				s := g.Generate(4)
				if pos, ok := w.ExtractTokens(s.Tokens); ok && pos == s.Target {
					hits++
				}
			}
			rates[i] = 100 * float64(hits) / float64(testPages)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(trainPages),
			fmt.Sprintf("%.1f", rates[0]),
			fmt.Sprintf("%.1f", rates[1]),
		})
	}
	return t
}

// E10Factoring measures prefix/suffix factoring over expression depth
// (Lemma 5.2: polynomial time).
func E10Factoring(depths []int, trials int, seed int64) Table {
	e := NewEnv()
	rng := rand.New(rand.NewSource(seed))
	t := Table{
		ID:     "E10",
		Title:  "factoring E2\\E1 and E1/E2 vs expression depth",
		Claim:  "Lemma 5.2: factors are computable in polynomial time",
		Header: []string{"depth", "avg-states", "left µs/op", "right µs/op"},
	}
	opts := DefaultOptions
	for _, depth := range depths {
		var duL, duR time.Duration
		states := 0
		done := 0
		for i := 0; i < trials; i++ {
			l1, err := langOf(e, e.RandomRegex(depth, rng), opts)
			if err != nil {
				continue
			}
			l2, err := langOf(e, e.RandomRegex(depth, rng), opts)
			if err != nil {
				continue
			}
			states += l1.States() + l2.States()
			start := time.Now()
			if _, err := l1.LeftFactor(l2); err != nil {
				continue
			}
			duL += time.Since(start)
			start = time.Now()
			if _, err := l1.RightFactor(l2); err != nil {
				continue
			}
			duR += time.Since(start)
			done++
		}
		if done == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth), fmt.Sprint(states / (2 * done)),
			fmt.Sprintf("%.1f", float64(duL.Microseconds())/float64(done)),
			fmt.Sprintf("%.1f", float64(duR.Microseconds())/float64(done)),
		})
	}
	return t
}

// E11MiddleRow demonstrates the Section 8 limitation: wrappers trained on
// middle rows of small tables cannot track the middle of larger ones.
func E11MiddleRow(trainMax int, testSizes []int) Table {
	tab := symtab.NewTable()
	tr := tab.Intern("TR")
	t := Table{
		ID:     "E11",
		Title:  "middle-row extraction beyond the regular frontier",
		Claim:  "Section 8: TRⁿ⟨TR⟩TRⁿ is not regular; any regular wrapper fails beyond its training sizes",
		Header: []string{"table rows", "extracted middle?", "note"},
	}
	var examples []learn.Example
	for n := 1; n <= trainMax; n++ {
		doc := make([]symtab.Symbol, 2*n+1)
		for i := range doc {
			doc[i] = tr
		}
		examples = append(examples, learn.Example{Doc: doc, Target: n})
	}
	sigma := symtab.NewAlphabet(tr)
	w, err := wrapper.TrainTokens(tab, examples, sigma, wrapper.Config{})
	if err != nil {
		// Induction fails outright: the examples are inherently ambiguous —
		// itself a demonstration of the limitation.
		t.Rows = append(t.Rows, []string{"-", "-", "induction failed: " + err.Error()})
		return t
	}
	for _, rows := range testSizes {
		doc := make([]symtab.Symbol, rows)
		for i := range doc {
			doc[i] = tr
		}
		pos, ok := w.ExtractTokens(doc)
		note := ""
		if rows/2 <= trainMax {
			note = "(within training sizes)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(rows), fmt.Sprint(ok && pos == rows/2), note,
		})
	}
	return t
}

func langOf(e Env, n *rx.Node, opts machine.Options) (lang.Language, error) {
	return lang.FromRegex(n, e.Sigma, opts)
}
