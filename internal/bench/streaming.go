package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"resilex/internal/wrapper"
)

// e21FillerRow is the in-Σ padding row used to grow the Figure 1 bottom
// layout to arbitrary size without changing its extraction: every tag is one
// the trained wrapper already knows, so the page keeps parsing while the
// matcher keeps spawning (and killing) candidates.
const e21FillerRow = "<tr><td><a href=\"cust.html\">filler row</a></td></tr>\n"

// E21Streaming compares the materialized two-scan extraction path against
// the one-pass streaming path (wrapper.StreamExtractor) on Figure 1 pages
// padded to increasing sizes. Both paths are run warm for iters iterations
// per page size; throughput, per-op latency, and per-op heap traffic
// (mallocs and bytes, measured via runtime.MemStats deltas) land in the
// table. The streaming rows validate the two serve-path claims at bench
// scale: allocs/op and KB/op stay flat (zero, beyond MemStats measurement
// noise) as pages grow, where the materialized path's KB/op grows linearly
// with the page; and the streaming result is byte-identical to the
// materialized one on every page (checked each run).
func E21Streaming(iters int) Table {
	t := Table{
		ID:     "E21",
		Title:  "streaming extraction: one-pass zero-alloc path vs materialized two-scan",
		Claim:  "runtime extension: fusing tokenization into the one-pass product matcher serves chunked documents in O(1) memory beyond the match region with zero warm-path allocations; the materialized path's per-op heap traffic grows linearly with page size",
		Header: []string{"mode", "page KB", "MB/s", "µs/op", "allocs/op", "KB/op"},
	}
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}, Options: DefaultOptions})
	if err != nil {
		panic(err)
	}
	se, err := w.Stream()
	if err != nil {
		panic(err)
	}
	formAt := strings.Index(e15Bottom, "<tr><td><form")
	if formAt < 0 {
		panic("bench: e15Bottom lost its form row")
	}
	ctx := contextWithObserver()

	for _, filler := range []int{0, 1000, 25000} {
		var b strings.Builder
		b.WriteString(e15Bottom[:formAt])
		for i := 0; i < filler; i++ {
			b.WriteString(e21FillerRow)
		}
		b.WriteString(e15Bottom[formAt:])
		page := b.String()
		pageKB := fmt.Sprintf("%.1f", float64(len(page))/1024)

		want, err := w.Extract(page)
		if err != nil {
			panic(err)
		}
		rd := bytes.NewReader([]byte(page))
		got, err := se.ExtractReader(ctx, rd)
		if err != nil {
			panic(err)
		}
		if got != want {
			panic(fmt.Sprintf("bench: streaming %+v disagrees with materialized %+v on %d-byte page", got, want, len(page)))
		}

		row := func(mode string, op func()) {
			op() // warm: pools, lazy tables, symbol interning
			op()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < iters; i++ {
				op()
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			perOp := elapsed / time.Duration(iters)
			mbps := float64(len(page)) * float64(iters) / (1 << 20) / elapsed.Seconds()
			allocs := float64(after.Mallocs-before.Mallocs) / float64(iters)
			kb := float64(after.TotalAlloc-before.TotalAlloc) / float64(iters) / 1024
			t.Rows = append(t.Rows, []string{
				mode, pageKB,
				fmt.Sprintf("%.1f", mbps),
				fmt.Sprint(perOp.Microseconds()),
				fmt.Sprintf("%.1f", allocs),
				fmt.Sprintf("%.1f", kb),
			})
		}
		row("materialized", func() {
			if _, err := w.Extract(page); err != nil {
				panic(err)
			}
		})
		pageBytes := []byte(page)
		sink := 0
		row("streaming", func() {
			rd.Reset(pageBytes)
			if err := se.ExtractReaderTo(ctx, rd, func(sr wrapper.StreamRegion) error {
				sink += sr.TokenIndex
				return nil
			}); err != nil {
				panic(err)
			}
		})
		_ = sink
	}
	return t
}
