package bench

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"resilex/internal/extract"
	"resilex/internal/symtab"
)

// e17Case is one persisted wrapper in the E17 sweep: an expression, its
// alphabet, and a document length for the first request.
type e17Case struct {
	name   string
	src    string
	names  []string
	docLen int
}

// e17Cases mixes the realistic with the adversarial: the Figure 1 shopbot
// wrapper shape, and the subset-construction witness family
// (p|q)* p (p|q)^(n-1) whose minimal DFA has 2^n states — the expressions
// where cold compilation actually hurts and a persisted artifact pays off.
func e17Cases() []e17Case {
	html := []string{
		"P", "H1", "/H1", "FORM", "/FORM", "INPUT", "BR",
		"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "TH", "/TH", "IMG", "A", "/A",
	}
	cases := []e17Case{
		{"fig1 wrapper", "[^ FORM]* FORM [^ INPUT]* INPUT [^ INPUT]* <INPUT> .*", html, 200},
	}
	for _, n := range []int{8, 10, 12, 14} {
		// The whole witness sits in the left context, so its component DFA
		// is the full 2^n-state machine; the mark itself is cheap.
		src := "(p | q)* p"
		for i := 1; i < n; i++ {
			src += " (p | q)"
		}
		src += " <p> .*"
		cases = append(cases, e17Case{fmt.Sprintf("witness n=%d", n), src, []string{"p", "q"}, 200})
	}
	return cases
}

// E17Persistence measures first-request per-document latency for a wrapper
// the process has never served before, under the three states a serving
// process can be in:
//
//	cold       no cache anywhere: parse, determinize, minimize, build the
//	           matcher, then extract — what every restart used to cost
//	warm-disk  a fresh process over a populated -cache-dir: decode the
//	           persisted artifact (re-parse + re-minimize, no subset
//	           construction), then extract
//	warm-mem   the artifact already resident in the memory tier: a map hit,
//	           then extract
//
// Each latency is the median of trials runs; speedups are per row against
// the cold column of the same row, and the final row is the geometric mean
// across expressions. The claim is the tentpole contract: restoring from
// disk must beat recompiling by ≥5× on determinization-heavy wrappers,
// because decode skips exactly the exponential phase.
func E17Persistence(dir string, trials int, seed int64) Table {
	t := Table{
		ID:     "E17",
		Title:  "persistent artifact store: cold compile vs warm-disk vs warm-memory first request",
		Claim:  "runtime extension: decoding a persisted artifact skips subset construction; warm-disk first requests are ≥5× faster than cold compilation on determinization-heavy wrappers",
		Header: []string{"expression", "cold µs", "warm-disk µs", "warm-mem µs", "disk speedup ×", "mem speedup ×"},
	}
	if trials < 1 {
		trials = 1
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "resilex-e17-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	rng := rand.New(rand.NewSource(seed))
	diskGeo, memGeo := 0.0, 0.0
	for _, c := range e17Cases() {
		// One shared document per case so every mode answers the identical
		// first request.
		cold, err := extract.CompileArtifact(c.src, c.names, DefaultOptions)
		if err != nil {
			panic(err)
		}
		syms := cold.Expr.Sigma().Symbols()
		doc := make([]symtab.Symbol, c.docLen)
		for i := range doc {
			doc[i] = syms[rng.Intn(len(syms))]
		}
		key, err := extract.Key(c.src, c.names)
		if err != nil {
			panic(err)
		}
		disk, err := extract.NewDiskCache(filepath.Join(dir, "e17-"+key[:16]), -1, DefaultObserver)
		if err != nil {
			panic(err)
		}
		if err := disk.Put(key, cold); err != nil {
			panic(err)
		}

		coldDur := medianOf(trials, func() {
			c2, err := extract.CompileArtifact(c.src, c.names, DefaultOptions)
			if err != nil {
				panic(err)
			}
			c2.Matcher.All(doc)
		})
		diskDur := medianOf(trials, func() {
			// A restart: fresh memory tier over the surviving directory.
			tc := extract.NewTieredCache(extract.NewCache(4, DefaultObserver), disk)
			c2, err := tc.Load(c.src, c.names, DefaultOptions)
			if err != nil {
				panic(err)
			}
			c2.Matcher.All(doc)
		})
		warm := extract.NewTieredCache(extract.NewCache(4, DefaultObserver), disk)
		if _, err := warm.Load(c.src, c.names, DefaultOptions); err != nil {
			panic(err)
		}
		memDur := medianOf(trials, func() {
			c2, err := warm.Load(c.src, c.names, DefaultOptions)
			if err != nil {
				panic(err)
			}
			c2.Matcher.All(doc)
		})

		diskX := float64(coldDur) / float64(max(diskDur, time.Microsecond))
		memX := float64(coldDur) / float64(max(memDur, time.Microsecond))
		diskGeo += math.Log(diskX)
		memGeo += math.Log(memX)
		t.Rows = append(t.Rows, []string{
			c.name,
			fmt.Sprint(coldDur.Microseconds()),
			fmt.Sprint(diskDur.Microseconds()),
			fmt.Sprint(memDur.Microseconds()),
			fmt.Sprintf("%.1f", diskX),
			fmt.Sprintf("%.1f", memX),
		})
	}
	n := float64(len(t.Rows))
	t.Rows = append(t.Rows, []string{
		"geomean", "-", "-", "-",
		fmt.Sprintf("%.1f", math.Exp(diskGeo/n)),
		fmt.Sprintf("%.1f", math.Exp(memGeo/n)),
	})
	return t
}

// medianOf runs f trials times and returns the median duration — robust to
// one-off scheduler or GC interference without hiding steady-state cost.
func medianOf(trials int, f func()) time.Duration {
	durs := make([]time.Duration, trials)
	for i := range durs {
		s := time.Now()
		f()
		durs[i] = time.Since(s)
	}
	return pctile(durs, 0.5)
}
