package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"resilex/internal/obs"
	"resilex/internal/perturb"
	"resilex/internal/refresh"
	"resilex/internal/serve"
	"resilex/internal/wrapper"
)

// The E19 drift experiment drives the whole continuous-refresh pipeline —
// versioned registry, drift watcher, re-induction, stride-routed canary,
// metric-gated promotion — against a real serve.Server over HTTP, twice:
//
//   - benign drift: the site redesigns (perturbed e15Future pages land in
//     the sample spool AND in live traffic). The watcher detects the
//     degradation, re-induces a candidate from the drifted samples, and the
//     canary wins its observation window — promoted, with every request
//     answered throughout.
//
//   - semantic break: the spool captures an unrepresentative page family
//     (a bot-served alternate layout) while live traffic never changes. The
//     re-induced candidate misses real traffic; every canary-routed miss
//     falls back to the active wrapper inside the request, the canary loses
//     the window, and the watcher rolls it back — again with zero failed
//     requests and zero failed extractions.
//
// "Failed" is an HTTP status other than 200; extraction outcomes are
// tallied separately from the per-doc ok flags.

// e19AlienPage is one page of the unrepresentative family the regression
// scenario feeds the sampler: marked (so re-induction proceeds) but from a
// layout family live traffic never uses.
func e19AlienPage(n int) string {
	return fmt.Sprintf(`<ul class="catalog"><li>part group %d</li>
<li><form method="post" action="search.cgi">
<input type="text" size="15" name="value" data-target />
</form></li></ul>`, n)
}

// e19DriftPages perturbs the e15Future redesign into n distinct drifted
// pages, preserving the data-target marker (perturb.HTMLPerturber tracks
// the target span through every edit).
func e19DriftPages(seed int64, n int) []string {
	span, ok := perturb.FindTag(e15Future, "input", 1)
	if !ok {
		panic("drift bench: e15Future lost its marked input")
	}
	p := perturb.NewHTML(seed)
	pages := make([]string, n)
	for i := range pages {
		pages[i], _ = p.Apply(e15Future, span, i+1)
	}
	return pages
}

// e19Phase is what one traffic phase measured.
type e19Phase struct {
	label    string
	requests int
	failed   int // HTTP status != 200
	docs     int
	okDocs   int // per-doc ok flags in 200 responses
}

// e19Result is one scenario run: the traffic phases bracketing the two
// controller ticks, plus the rollout verdict read back from the versions
// endpoint and the refresh counters.
type e19Result struct {
	phases        []e19Phase
	outcome       string
	activeVersion uint64
	canaryObs     uint64 // canary-routed extractions in the observation window
	fallbacks     uint64
	deploys       int64
	promotes      int64
	rollbacks     int64
}

// runDriftBench boots one real serve.Server (canary fraction 0.25) behind
// httptest, registers the e15 wrapper as v1, wires a refresh.Controller to a
// scripted sample spool, and interleaves fixed-count traffic phases with
// explicit controller ticks: tick 1 sees the drifted spool and stages a
// canary, the canary phase fills the observation window, tick 2 renders the
// verdict. benign selects which pages the spool and the live traffic carry.
func runDriftBench(benign bool, reqs, docsPer int, seed int64) e19Result {
	o := obs.New()
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}, Options: DefaultOptions})
	if err != nil {
		panic(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		panic(err)
	}

	s, err := serve.New(serve.Config{
		CacheCap:       64,
		CanaryFraction: 0.25,
		Options:        DefaultOptions,
		Batch:          wrapper.BatchOptions{Workers: 1},
		Observer:       o,
	})
	if err != nil {
		panic(err)
	}
	front := httptest.NewServer(s.Mux())
	defer front.Close()
	client := &http.Client{}

	req, _ := http.NewRequest(http.MethodPut, front.URL+"/wrappers/vs", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		panic(fmt.Sprintf("drift bench: registering v1: status %d", resp.StatusCode))
	}

	// The spool and the live traffic. Benign drift: the site redesigned, so
	// both carry the same perturbed pages. Semantic break: the spool caught
	// an alien family while real traffic never moved.
	drifted := e19DriftPages(seed, 4)
	spool, traffic := drifted, drifted
	if !benign {
		spool = []string{e19AlienPage(0), e19AlienPage(1), e19AlienPage(2)}
		traffic = []string{e15Top, e15Bottom}
	}

	// One traffic phase routes reqs·docsPer/4 extractions to the canary
	// (stride 4 at fraction 0.25); requiring half of that keeps the window
	// mature after a single phase at any -quick scale.
	minObs := uint64(reqs * docsPer / 8)
	if minObs < 5 {
		minObs = 5
	}
	ctrl, err := refresh.New(s, refresh.Config{
		Sampler: refresh.SamplerFunc(func(site string) ([]string, error) {
			return spool, nil
		}),
		MinCanaryObservations: minObs,
		Options:               DefaultOptions,
		Observer:              o,
	})
	if err != nil {
		panic(err)
	}

	// Pre-marshal one request body cycling the traffic pages.
	var buf bytes.Buffer
	buf.WriteString(`{"docs":[`)
	for d := 0; d < docsPer; d++ {
		if d > 0 {
			buf.WriteByte(',')
		}
		doc, _ := json.Marshal(wrapper.BatchDoc{Key: "vs", HTML: traffic[d%len(traffic)]})
		buf.Write(doc)
	}
	buf.WriteString(`]}`)
	body := buf.Bytes()

	res := e19Result{}
	phase := func(label string) {
		ph := e19Phase{label: label}
		for i := 0; i < reqs; i++ {
			req, _ := http.NewRequest(http.MethodPost, front.URL+"/extract", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			ph.requests++
			ph.docs += docsPer
			if err != nil || resp.StatusCode != http.StatusOK {
				ph.failed++
				if resp != nil {
					resp.Body.Close()
				}
				continue
			}
			var out struct {
				Results []struct {
					OK bool `json:"ok"`
				} `json:"results"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				ph.failed++
				continue
			}
			for _, r := range out.Results {
				if r.OK {
					ph.okDocs++
				}
			}
		}
		res.phases = append(res.phases, ph)
	}

	ctx := context.Background()
	phase("v1")
	ctrl.Tick(ctx) // drift detection → canary deploy
	canaryOK, canaryErr, _, _ := s.CanaryStats("vs")
	if canaryOK+canaryErr != 0 {
		panic("drift bench: observation window not fresh after deploy")
	}
	phase("canary")
	canaryOK, canaryErr, _, _ = s.CanaryStats("vs")
	res.canaryObs = canaryOK + canaryErr
	ctrl.Tick(ctx) // window is mature → promote or rollback
	phase("after")

	vresp, err := client.Get(front.URL + "/wrappers/vs/versions")
	if err != nil {
		panic(err)
	}
	var status struct {
		LastOutcome string `json:"lastOutcome"`
		Active      struct {
			Version uint64 `json:"version"`
		} `json:"active"`
		Stats struct {
			Fallback uint64 `json:"fallback"`
		} `json:"stats"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&status); err != nil {
		panic(err)
	}
	vresp.Body.Close()
	res.outcome = status.LastOutcome
	res.activeVersion = status.Active.Version
	res.fallbacks = status.Stats.Fallback

	snap := o.Metrics.Snapshot()
	res.deploys = snap.Counters[obs.WithLabels("refresh_canary_deploy_total", "site", "vs")]
	res.promotes = snap.Counters[obs.WithLabels("refresh_promote_total", "site", "vs")]
	res.rollbacks = snap.Counters[obs.WithLabels("refresh_rollback_total", "site", "vs")]
	return res
}

// E19Drift measures the continuous-refresh pipeline end to end: benign
// drift must end promoted, a semantic break must end rolled back, and both
// must lose zero requests — TestE19RefreshZeroFailedRequests asserts the
// same properties independently of the emitted table.
func E19Drift(reqs, docsPer int, seed int64) Table {
	t := Table{
		ID:     "E19",
		Title:  "continuous refresh: drift watch, canary rollout, metric-gated promotion",
		Claim:  "refresh extension: benign drift re-induces and promotes a canary, a semantic break rolls back automatically, and either way every request is answered (0 failed)",
		Header: []string{"scenario", "phase", "requests", "failed", "docs ok", "verdict"},
	}
	for _, sc := range []struct {
		name   string
		benign bool
	}{
		{"benign drift", true},
		{"semantic break", false},
	} {
		res := runDriftBench(sc.benign, reqs, docsPer, seed)
		verdict := fmt.Sprintf("%s (v%d active, %d canary obs)",
			res.outcome, res.activeVersion, res.canaryObs)
		for i, ph := range res.phases {
			shown := ""
			if i == 0 {
				shown = sc.name
			}
			v := ""
			if i == len(res.phases)-1 {
				v = verdict
			}
			t.Rows = append(t.Rows, []string{
				shown, ph.label, fmt.Sprint(ph.requests), fmt.Sprint(ph.failed),
				fmt.Sprintf("%d/%d", ph.okDocs, ph.docs), v,
			})
		}
	}
	return t
}
