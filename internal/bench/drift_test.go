package bench

import "testing"

// TestE19RefreshZeroFailedRequests asserts the acceptance properties of the
// continuous-refresh pipeline directly, independent of the emitted bench
// table: benign drift ends promoted, a semantic break ends rolled back, and
// neither direction fails a single request.
func TestE19RefreshZeroFailedRequests(t *testing.T) {
	t.Run("benign drift promotes", func(t *testing.T) {
		res := runDriftBench(true, 30, 4, 1)
		if res.outcome != "promoted" {
			t.Fatalf("outcome = %q, want promoted", res.outcome)
		}
		if res.activeVersion != 2 {
			t.Errorf("active version = %d after promotion, want 2", res.activeVersion)
		}
		if res.deploys != 1 || res.promotes != 1 || res.rollbacks != 0 {
			t.Errorf("rollout counters deploys=%d promotes=%d rollbacks=%d, want 1/1/0",
				res.deploys, res.promotes, res.rollbacks)
		}
		if res.canaryObs < 20 {
			t.Errorf("observation window saw %d canary extractions, want >= 20", res.canaryObs)
		}
		for _, ph := range res.phases {
			if ph.requests == 0 {
				t.Fatalf("phase %q issued no requests", ph.label)
			}
			if ph.failed != 0 {
				t.Errorf("phase %q: %d of %d requests failed, want 0", ph.label, ph.failed, ph.requests)
			}
		}
		// Before the refresh, v1 misses all drifted traffic; after the
		// promotion, everything extracts.
		if pre := res.phases[0]; pre.okDocs != 0 {
			t.Errorf("phase %q: %d docs extracted on v1, want 0 (traffic drifted)", pre.label, pre.okDocs)
		}
		if post := res.phases[len(res.phases)-1]; post.okDocs != post.docs {
			t.Errorf("phase %q: %d/%d docs extracted after promotion, want all", post.label, post.okDocs, post.docs)
		}
	})

	t.Run("semantic break rolls back", func(t *testing.T) {
		res := runDriftBench(false, 30, 4, 1)
		if res.outcome != "rolled-back" {
			t.Fatalf("outcome = %q, want rolled-back", res.outcome)
		}
		if res.activeVersion != 1 {
			t.Errorf("active version = %d after rollback, want 1", res.activeVersion)
		}
		if res.deploys != 1 || res.promotes != 0 || res.rollbacks != 1 {
			t.Errorf("rollout counters deploys=%d promotes=%d rollbacks=%d, want 1/0/1",
				res.deploys, res.promotes, res.rollbacks)
		}
		if res.fallbacks == 0 {
			t.Error("no canary-miss fallbacks recorded — the bad canary never took traffic")
		}
		for _, ph := range res.phases {
			if ph.requests == 0 {
				t.Fatalf("phase %q issued no requests", ph.label)
			}
			if ph.failed != 0 {
				t.Errorf("phase %q: %d of %d requests failed, want 0", ph.label, ph.failed, ph.requests)
			}
			// Stronger than zero failed requests: the in-request fallback
			// means the bad canary never even costs an extraction.
			if ph.okDocs != ph.docs {
				t.Errorf("phase %q: %d/%d docs extracted, want all (canary misses must fall back)",
					ph.label, ph.okDocs, ph.docs)
			}
		}
	})
}
