package bench

import (
	"math/rand"
	"strings"
	"testing"

	"resilex/internal/extract"
	"resilex/internal/machine"
	"resilex/internal/wrapper"
)

func TestUnambiguousExprIsUnambiguous(t *testing.T) {
	e := NewEnv()
	rng := rand.New(rand.NewSource(5))
	for _, size := range []int{4, 8, 16, 32} {
		for i := 0; i < 10; i++ {
			x := e.UnambiguousExpr(size, rng)
			unamb, err := x.Unambiguous()
			if err != nil {
				t.Fatal(err)
			}
			if !unamb {
				t.Fatalf("generated expression (size %d) ambiguous: %s", size, x.String(e.Tab))
			}
		}
	}
}

func TestAmbiguousExprIsAmbiguous(t *testing.T) {
	e := NewEnv()
	rng := rand.New(rand.NewSource(5))
	for _, size := range []int{4, 8, 16} {
		for i := 0; i < 10; i++ {
			x := e.AmbiguousExpr(size, rng)
			unamb, err := x.Unambiguous()
			if err != nil {
				t.Fatal(err)
			}
			if unamb {
				t.Fatalf("generated expression (size %d) unambiguous: %s", size, x.String(e.Tab))
			}
		}
	}
}

func TestBoundedPExprFamily(t *testing.T) {
	e := NewEnv()
	for _, n := range []int{0, 1, 2, 4, 8} {
		x := e.BoundedPExpr(n)
		bound, bounded := x.Left().MaxOccurrences(e.P)
		if !bounded || bound != n {
			t.Fatalf("n=%d: MaxOccurrences = (%d, %v)", n, bound, bounded)
		}
		out, err := extract.LeftFilter(x)
		if err != nil {
			t.Fatalf("n=%d: LeftFilter: %v", n, err)
		}
		if m, err := out.Maximal(); err != nil || !m {
			t.Fatalf("n=%d: output not maximal (%v, %v)", n, m, err)
		}
	}
}

func TestPivotExprFamily(t *testing.T) {
	e := NewEnv()
	for _, k := range []int{1, 2, 3} {
		x := e.PivotExpr(k)
		if unamb, err := x.Unambiguous(); err != nil || !unamb {
			t.Fatalf("k=%d: family member not unambiguous (%v, %v)", k, unamb, err)
		}
		if _, bounded := x.Left().MaxOccurrences(e.P); bounded {
			t.Fatalf("k=%d: family member has bounded p — not the intended family", k)
		}
		out, err := extract.Pivot(x)
		if err != nil {
			t.Fatalf("k=%d: Pivot: %v", k, err)
		}
		if m, err := out.Maximal(); err != nil || !m {
			t.Fatalf("k=%d: not maximal (%v, %v)", k, m, err)
		}
	}
}

func TestPSPACEWitnessStates(t *testing.T) {
	e := NewEnv()
	for _, n := range []int{1, 3, 5} {
		expr, sigma := e.PSPACEWitness(n)
		nfa, err := machine.Compile(expr, sigma, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		d, err := machine.Determinize(nfa, machine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := machine.Minimize(d).NumStates(), 1<<(n+1); got != want {
			t.Errorf("n=%d: %d states, want %d", n, got, want)
		}
	}
}

func TestRandomRegexCompiles(t *testing.T) {
	e := NewEnv()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		n := e.RandomRegex(4, rng)
		if _, err := machine.Compile(n, e.Sigma, machine.Options{}); err != nil {
			t.Fatalf("compile failed: %v", err)
		}
	}
}

func TestSiteGenerator(t *testing.T) {
	e := NewEnv()
	g := NewSiteGenerator(e.Tab, 3)
	input := e.Tab.Intern("INPUT")
	for i := 0; i < 30; i++ {
		s := g.Generate(2 + i%3)
		if s.Tokens[s.Target] != input {
			t.Fatalf("site %d: target token is %s", i, e.Tab.Name(s.Tokens[s.Target]))
		}
		if len(s.HTML) == 0 || len(s.Tokens) < 5 {
			t.Fatalf("site %d degenerate: %d tokens", i, len(s.Tokens))
		}
	}
	// Determinism.
	a := NewSiteGenerator(e.Tab, 42).Generate(3)
	b := NewSiteGenerator(e.Tab, 42).Generate(3)
	if a.HTML != b.HTML || a.Target != b.Target {
		t.Error("same seed, different site")
	}
}

// End-to-end: sites from the generator train a working maximized wrapper.
func TestSiteGeneratorTrainsWrapper(t *testing.T) {
	e := NewEnv()
	g := NewSiteGenerator(e.Tab, 17)
	examples, sigma := g.TrainingSet(3, 4)
	w, err := wrapper.TrainTokens(e.Tab, examples, sigma, wrapper.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Score on fresh pages from the same generator.
	hits := 0
	const total = 50
	for i := 0; i < total; i++ {
		s := g.Generate(4)
		if pos, ok := w.ExtractTokens(s.Tokens); ok && pos == s.Target {
			hits++
		}
	}
	if hits < total*9/10 {
		t.Errorf("wrapper hit %d/%d fresh pages (strategy %s, expr %s)",
			hits, total, w.Strategy(), w.String())
	}
}

// Full-HTML integration: Train (not TrainTokens) on generated pages using
// index targets, then extract byte regions from fresh pages.
func TestSiteGeneratorHTMLTrain(t *testing.T) {
	e := NewEnv()
	g := NewSiteGenerator(e.Tab, 23)
	var samples []wrapper.Sample
	for i := 0; i < 3; i++ {
		s := g.Generate(4)
		samples = append(samples, wrapper.Sample{HTML: s.HTML, Target: wrapper.TargetIndex(s.Target)})
	}
	// Σ must cover the generator's full tag vocabulary, or fresh pages using
	// tags absent from the three samples would be unparseable by design.
	var extra []string
	for _, sym := range g.Alphabet().Symbols() {
		extra = append(extra, e.Tab.Name(sym))
	}
	w, err := wrapper.Train(samples, wrapper.Config{Skip: []string{"BR"}, ExtraTags: extra})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const total = 30
	for i := 0; i < total; i++ {
		s := g.Generate(4)
		r, err := w.Extract(s.HTML)
		if err != nil {
			continue
		}
		// The region must be the generator's target input tag.
		want := s.HTML[r.Span.Start:r.Span.End]
		if r.Source == want && r.Source != "" && r.Span.Start > 0 {
			// Confirm it is the second input of the form by name attribute.
			if strings.Contains(r.Source, `name="f1"`) {
				hits++
			}
		}
	}
	if hits < total*8/10 {
		t.Errorf("HTML-level wrapper hit %d/%d", hits, total)
	}
}
