package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestE3Shape(t *testing.T) {
	tab := E3Ambiguity([]int{4, 8}, 3, 1)
	if len(tab.Rows) != 2 || len(tab.Header) != 4 {
		t.Fatalf("table shape: %+v", tab)
	}
	if !strings.Contains(tab.Format(), "E3") {
		t.Error("Format missing id")
	}
}

func TestE4BlowupIsExponential(t *testing.T) {
	tab := E4Maximality([]int{2, 4, 6})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[2] != r[3] {
			t.Errorf("n=%s: min-dfa %s != predicted %s", r[0], r[2], r[3])
		}
	}
}

func TestE5TwoMaximals(t *testing.T) {
	tab := E5Nonunique()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] != "true" || r[2] != "true" {
			t.Errorf("row %v not maximal+unambiguous", r)
		}
	}
	if tab.Rows[1][3] != "true" {
		t.Error("the two maximizations should be distinct")
	}
}

func TestE6AllMaximal(t *testing.T) {
	tab := E6LeftFilter([]int{0, 1, 3})
	for _, r := range tab.Rows {
		if r[3] != "true" {
			t.Errorf("n=%s output not maximal", r[0])
		}
	}
}

func TestE7LeftFilterFailsPivotSucceeds(t *testing.T) {
	tab := E7Pivot([]int{1, 2})
	for _, r := range tab.Rows {
		if r[1] != "unbounded" {
			t.Errorf("k=%s: left-filter = %s, want unbounded", r[0], r[1])
		}
		if r[2] != "ok" {
			t.Errorf("k=%s: pivot = %s", r[0], r[2])
		}
	}
}

func TestE8Ordering(t *testing.T) {
	tab := E8Resilience([]int{1, 3}, 60, 5)
	for _, r := range tab.Rows {
		rigid, _ := strconv.ParseFloat(r[1], 64)
		merged, _ := strconv.ParseFloat(r[2], 64)
		maxed, _ := strconv.ParseFloat(r[3], 64)
		if !(rigid <= merged && merged <= maxed) {
			t.Errorf("edits=%s: ordering violated: %v ≤ %v ≤ %v", r[0], rigid, merged, maxed)
		}
		if maxed < 90 {
			t.Errorf("edits=%s: maximized too fragile: %v%%", r[0], maxed)
		}
	}
}

func TestE10Rows(t *testing.T) {
	tab := E10Factoring([]int{2, 3}, 5, 2)
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestE11FailsBeyondTraining(t *testing.T) {
	tab := E11MiddleRow(2, []int{3, 5, 7, 9})
	if len(tab.Rows) == 1 && strings.Contains(tab.Rows[0][2], "induction failed") {
		// Acceptable outcome: the training set is inherently ambiguous.
		return
	}
	sawFailure := false
	for _, r := range tab.Rows {
		rows, _ := strconv.Atoi(r[0])
		if rows > 2*2+1 && r[1] == "false" {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("wrapper tracked the middle of arbitrarily large tables — impossible for a regular device")
	}
}

func TestE8HTMLOrdering(t *testing.T) {
	tab := E8HTML(3, 40, 9)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	rate := func(i int) float64 {
		f, err := strconv.ParseFloat(tab.Rows[i][3], 64)
		if err != nil {
			t.Fatalf("row %d: %v (%v)", i, err, tab.Rows[i])
		}
		return f
	}
	if !(rate(0) <= rate(2) && rate(1) <= rate(2)) {
		t.Errorf("maximized should dominate: %v %v %v", rate(0), rate(1), rate(2))
	}
	if rate(2) < 80 {
		t.Errorf("maximized wrapper too weak on fresh layouts: %v%%", rate(2))
	}
}

func TestE13TupleRows(t *testing.T) {
	tab := E13Tuple(60, 4)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[1] != "true" {
			t.Errorf("%s not unambiguous", r[0])
		}
	}
	ind, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	maxed, _ := strconv.ParseFloat(tab.Rows[1][3], 64)
	if maxed < ind {
		t.Errorf("maximized tuple (%v%%) below induced (%v%%)", maxed, ind)
	}
	if maxed < 60 {
		t.Errorf("maximized tuple too fragile: %v%%", maxed)
	}
}

func TestE14DeclaredBeatsSamplesOnly(t *testing.T) {
	tab := E14Alphabet([]int{2, 4}, 80, 12)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		samplesOnly, _ := strconv.ParseFloat(r[1], 64)
		declared, _ := strconv.ParseFloat(r[2], 64)
		if declared < samplesOnly {
			t.Errorf("train=%s: declared Σ (%v%%) below samples-only (%v%%)", r[0], declared, samplesOnly)
		}
	}
	// At the largest training size both configurations converge high.
	last := tab.Rows[len(tab.Rows)-1]
	declared, _ := strconv.ParseFloat(last[2], 64)
	if declared < 90 {
		t.Errorf("declared-Σ wrapper too weak at train=%s: %v%%", last[0], declared)
	}
}
