package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"resilex/internal/faultinject"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// DefaultObserver, when set (cmd/resilience -metrics / -trace / -listen), is
// the observer the experiments record into: DefaultOptions carries it into
// every machine construction, and E15 feeds its supervisor telemetry through
// it. nil keeps the harness unobserved.
var DefaultObserver *obs.Observer

// PhaseDelta returns the phase-counter deltas between two registry
// snapshots — what one experiment cost in subset states explored,
// minimization passes, deadline polls, maximization rounds, rung entries,
// and so on. The result goes into the Table's Phases field and from there
// into the BENCH_*.json perf trajectory.
func PhaseDelta(before, after obs.Snapshot) map[string]int64 {
	out := map[string]int64{}
	for name, v := range after.Counters {
		if !phaseCounter(name) {
			continue
		}
		if d := v - before.Counters[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// phaseCounter reports whether a registry counter belongs to the
// construction/extraction/supervisor phase families the harness tracks.
func phaseCounter(name string) bool {
	for _, p := range []string{"machine_", "extract_", "supervisor_"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// WriteJSON writes the table — rows plus phase counters — to
// dir/BENCH_<ID>.json and returns the path.
func (t Table) WriteJSON(dir string) (string, error) {
	path := filepath.Join(dir, "BENCH_"+strings.ToUpper(t.ID)+".json")
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, data, 0o644)
}

// The Figure 1 pages at the HTML level (as in internal/wrapper's tests):
// two training layouts, a novel redesign the maximized wrapper still parses,
// and a future redesign it cannot — the refresh rung's territory.
const (
	e15Top = `<P>
<H1>Virtual Supplier, Inc.</H1>
<P>
<form method="post" action="search.cgi">
<input type="image" align="left" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<br />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form>`

	e15Bottom = `<table>
<tr><th><img src="supplier.gif"></th></tr>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
<input type="radio" name="attr" value="1" checked> Keywords<br />
<input type="radio" name="attr" value="2"> Manufacturer Part#
</form></td></tr>
</table>`

	e15Novel = `<table>
<tr><td><h1>Virtual Supplier, Inc.</h1></td></tr>
<tr><td><a href="deals.html">Hot Deals</a></td></tr>
<tr><td><a href="cust.html">Customer Service</a></td></tr>
<tr><td><form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" />
<input type="radio" name="attr" value="1"> Keywords
</form></td></tr>
</table>`

	e15Future = `<div class="search"><span>find parts</span>
<form method="post" action="search.cgi">
<input type="image" src="search.gif" />
<input type="text" size="15" name="value" data-target />
</form></div>`
)

// E15Supervisor drives the self-healing runtime through all four ladder
// rungs and a full breaker lifecycle under fault injection, and reports each
// site's telemetry snapshot — the resilience study's numbers read from the
// supervisor's observability surface rather than ad-hoc counters.
func E15Supervisor() Table {
	t := Table{
		ID:    "E15",
		Title: "supervisor telemetry across the degradation ladder",
		Claim: "runtime extension: every rung and breaker transition of the self-healing ladder is observable per site",
		Header: []string{"site", "breaker", "wrapper s/e", "refresh s/e",
			"probe s/e", "miss", "transitions"},
	}
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}, Options: DefaultOptions})
	if err != nil {
		panic(err)
	}
	fleet := wrapper.NewFleet()
	fleet.Add("vs", w)

	// A virtual clock makes the breaker transitions (and their timestamps)
	// deterministic.
	clock := time.Unix(1_000_000_000, 0).UTC()
	sup := wrapper.NewSupervisor(fleet, wrapper.SupervisorConfig{
		Observer:         DefaultObserver,
		BreakerThreshold: 2,
		Cooldown:         time.Minute,
		Marker: func(html string) (wrapper.Target, bool) {
			if strings.Contains(html, wrapper.MarkerAttr) {
				return wrapper.TargetMarker(), true
			}
			return wrapper.Target{}, false
		},
		Now:   func() time.Time { return clock },
		Sleep: func(time.Duration) {},
	})

	ctx := contextWithObserver()
	garbled := faultinject.GarbleTags(e15Novel, 1)
	// Rung 1: the trained wrapper serves a novel-but-parseable layout.
	sup.Extract(ctx, "vs", e15Novel)
	// Rung 2: the future redesign misses; the marker oracle refreshes.
	sup.Extract(ctx, "vs", e15Future)
	// Two garbled pages open the breaker; the third is quarantined (miss).
	sup.Extract(ctx, "vs", garbled)
	sup.Extract(ctx, "vs", garbled)
	sup.Extract(ctx, "vs", garbled)
	// Cooldown elapses: a half-open trial on a good page closes the breaker.
	clock = clock.Add(2 * time.Minute)
	sup.Extract(ctx, "vs", e15Novel)
	// Rung 3: an unknown key is served by the fleet probe.
	sup.Extract(ctx, "ghost", e15Novel)

	tel := sup.Telemetry()
	for _, site := range []string{"ghost", "vs"} {
		st := tel[site]
		se := func(rung string) string {
			return fmt.Sprintf("%d/%d", st.RungServes[rung], st.RungEntries[rung])
		}
		trs := make([]string, len(st.Transitions))
		for i, tr := range st.Transitions {
			trs[i] = tr.String()
		}
		t.Rows = append(t.Rows, []string{
			site, st.Breaker.String(),
			se("wrapper"), se("refresh"), se("probe"),
			fmt.Sprint(st.RungEntries["miss"]),
			strings.Join(trs, " "),
		})
	}
	return t
}

// contextWithObserver threads DefaultObserver into the experiment context so
// construction phases attribute to the same registry.
func contextWithObserver() context.Context {
	if DefaultObserver == nil {
		return context.Background()
	}
	return obs.NewContext(context.Background(), DefaultObserver)
}
