package bench

import (
	"fmt"
	"math/rand"
	"time"

	"resilex/internal/extract"
	"resilex/internal/obs"
	"resilex/internal/wrapper"
)

// E20TracingOverhead measures what end-to-end request tracing costs on the
// hot serving path: the E16 cached+batch workload (one cached fleet, batched
// parallel extraction) run twice over the identical document stream —
//
//	tracing off  the serving context carries an observer (metrics on, as in
//	             E16) but no trace: spans record with cheap counter IDs and
//	             no trace-store assembly
//	tracing on   every batch is one traced request: a fresh trace ID, a root
//	             span, child batch spans, trace-store assembly, and a
//	             trace-ID exemplar on the latency histogram
//
// The overhead column is the tracing-on p50 relative to tracing off; the
// acceptance bar for the instrumentation backbone is ≤5% on p50.
func E20TracingOverhead(docs, workers int, seed int64) Table {
	t := Table{
		ID:     "E20",
		Title:  "tracing overhead: end-to-end request tracing on the cached-batch serving path",
		Claim:  "runtime extension: distributed tracing (trace IDs, span assembly, exemplars) costs ≤5% p50 on the hot batch path",
		Header: []string{"mode", "docs/sec", "p50 µs", "p99 µs", "p50 overhead %"},
	}
	w, err := wrapper.Train([]wrapper.Sample{
		{HTML: e15Top, Target: wrapper.TargetMarker()},
		{HTML: e15Bottom, Target: wrapper.TargetMarker()},
	}, wrapper.Config{Skip: []string{"BR"}, Options: DefaultOptions})
	if err != nil {
		panic(err)
	}
	payload, err := w.MarshalJSON()
	if err != nil {
		panic(err)
	}

	// The identical seeded document stream for both modes.
	rng := rand.New(rand.NewSource(seed))
	layouts := []string{e15Top, e15Bottom, e15Novel}
	pages := make([]string, docs)
	for i := range pages {
		pages[i] = layouts[rng.Intn(len(layouts))]
	}

	// One warmed fleet shared by both modes: the compile happens once here,
	// so neither mode pays a cold-start artifact.
	o := obs.New()
	cache := extract.NewCache(16, o)
	fw, err := wrapper.LoadCached(payload, DefaultOptions, cache)
	if err != nil {
		panic(err)
	}
	fleet := wrapper.NewFleet()
	fleet.Add("vs", fw)

	// runMode replays the page stream through Fleet.ExtractBatch in
	// e16BatchSize batches, returning amortized per-document latencies and
	// the wall-clock total. With traced set, each batch is one traced
	// request: fresh trace ID, root span, exemplar observation — exactly what
	// the serve handler adds per request.
	baseCtx := obs.NewContext(contextWithObserver(), o)
	runMode := func(traced bool) ([]time.Duration, time.Duration) {
		durs := make([]time.Duration, 0, docs)
		batch := make([]wrapper.BatchDoc, 0, e16BatchSize)
		start := time.Now()
		for at := 0; at < len(pages); at += e16BatchSize {
			end := min(at+e16BatchSize, len(pages))
			batch = batch[:0]
			for _, page := range pages[at:end] {
				batch = append(batch, wrapper.BatchDoc{Key: "vs", HTML: page})
			}
			s := time.Now()
			ctx := baseCtx
			var sp *obs.Span
			var traceID string
			if traced {
				traceID = obs.NewTraceID()
				ctx = obs.ContextWithTrace(ctx, obs.TraceContext{TraceID: traceID})
				ctx, sp = o.StartSpan(ctx, "serve.extract")
				sp.SetAttr("docs", int64(len(batch)))
			}
			for _, res := range fleet.ExtractBatch(ctx, batch, wrapper.BatchOptions{Workers: workers}) {
				if res.Err != nil {
					panic(res.Err)
				}
			}
			elapsed := time.Since(s)
			if traced {
				sp.End()
				o.Histogram("serve_extract_duration_us").ObserveExemplar(elapsed.Microseconds(), traceID)
			}
			per := elapsed / time.Duration(len(batch))
			for range batch {
				durs = append(durs, per)
			}
		}
		return durs, time.Since(start)
	}

	// A short untimed warmup settles the pool and the page cache before
	// either timed mode runs.
	warm := pages
	if len(warm) > 2*e16BatchSize {
		warm = warm[:2*e16BatchSize]
	}
	for at := 0; at < len(warm); at += e16BatchSize {
		end := min(at+e16BatchSize, len(warm))
		b := make([]wrapper.BatchDoc, 0, end-at)
		for _, page := range warm[at:end] {
			b = append(b, wrapper.BatchDoc{Key: "vs", HTML: page})
		}
		fleet.ExtractBatch(baseCtx, b, wrapper.BatchOptions{Workers: workers})
	}

	// Alternating rounds cancel machine drift: a background load spike that
	// lands during one round hits both modes roughly equally instead of
	// charging the whole disturbance to whichever mode ran second.
	const rounds = 4
	var offDurs, onDurs []time.Duration
	var offTotal, onTotal time.Duration
	for i := 0; i < rounds; i++ {
		d, tot := runMode(false)
		offDurs = append(offDurs, d...)
		offTotal += tot
		d, tot = runMode(true)
		onDurs = append(onDurs, d...)
		onTotal += tot
	}

	offP50 := pctile(offDurs, 0.50)
	onP50 := pctile(onDurs, 0.50)
	overhead := "-"
	if offP50 > 0 {
		overhead = fmt.Sprintf("%.1f", 100*(float64(onP50)/float64(offP50)-1))
	}
	t.Rows = append(t.Rows, []string{
		"tracing off",
		fmt.Sprintf("%.0f", float64(len(offDurs))/offTotal.Seconds()),
		fmt.Sprint(offP50.Microseconds()),
		fmt.Sprint(pctile(offDurs, 0.99).Microseconds()),
		"-",
	})
	t.Rows = append(t.Rows, []string{
		"tracing on",
		fmt.Sprintf("%.0f", float64(len(onDurs))/onTotal.Seconds()),
		fmt.Sprint(onP50.Microseconds()),
		fmt.Sprint(pctile(onDurs, 0.99).Microseconds()),
		overhead,
	})
	return t
}
