// Package bench provides the parameterized workload generators behind the
// experiment harness (EXPERIMENTS.md): random extraction expressions for the
// complexity sweeps, the PSPACE witness family of Lemma 5.9, bounded-p
// families for Algorithm 6.2, pivot families, and a synthetic catalog-site
// generator standing in for the paper's live shopbot pages.
//
// Every generator is seeded and deterministic, so benchmark rows are
// reproducible.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"resilex/internal/extract"
	"resilex/internal/htmltok"
	"resilex/internal/learn"
	"resilex/internal/machine"
	"resilex/internal/rx"
	"resilex/internal/symtab"
)

// DefaultOptions is the construction budget/deadline every experiment runs
// under. cmd/resilience sets it from -max-states and -timeout; the zero
// value keeps the package default budget with no deadline. Experiments that
// exhaust it either report a degraded row (E4) or abort with a typed error
// the caller recovers.
var DefaultOptions machine.Options

// Env bundles a symbol table with a small abstract alphabet {p, q, r}.
type Env struct {
	Tab     *symtab.Table
	P, Q, R symtab.Symbol
	Sigma   symtab.Alphabet
}

// NewEnv builds the standard abstract environment.
func NewEnv() Env {
	tab := symtab.NewTable()
	p, q, r := tab.Intern("p"), tab.Intern("q"), tab.Intern("r")
	return Env{Tab: tab, P: p, Q: q, R: r, Sigma: symtab.NewAlphabet(p, q, r)}
}

// UnambiguousExpr generates a random extraction expression of roughly the
// requested AST size that is unambiguous by construction: a prefix of the
// form w₀·p·w₁·p·…·wₖ over (Σ−p)-words wᵢ with optional-q decorations, which
// keeps (E·p)\E empty, followed by Σ*. Used by the ambiguity-testing and
// maximization sweeps (E3, E6).
func (e Env) UnambiguousExpr(size int, rng *rand.Rand) extract.Expr {
	noP := []symtab.Symbol{e.Q, e.R}
	var parts []*rx.Node
	cur := 0
	for cur < size {
		switch rng.Intn(4) {
		case 0: // literal (Σ−p) symbol
			parts = append(parts, rx.Sym(noP[rng.Intn(len(noP))]))
			cur++
		case 1: // optional (Σ−p) symbol
			parts = append(parts, rx.Opt(rx.Sym(noP[rng.Intn(len(noP))])))
			cur += 2
		case 2: // a (Σ−p)-star block
			parts = append(parts, rx.Star(rx.AnyOf(noP...)))
			cur += 2
		case 3: // a p occurrence separated by mandatory q
			parts = append(parts, rx.Sym(e.P), rx.Sym(e.Q))
			cur += 2
		}
	}
	left := rx.Concat(parts...)
	x, err := extract.FromAST(left, e.P, rx.Star(rx.Class(e.Sigma)), e.Sigma, DefaultOptions)
	if err != nil {
		panic(err) // plain operators cannot fail over a fixed small Σ
	}
	return x
}

// AmbiguousExpr generates an ambiguous expression of roughly the requested
// size: p*-padding on both sides of the mark guarantees multiple splits.
func (e Env) AmbiguousExpr(size int, rng *rand.Rand) extract.Expr {
	var parts []*rx.Node
	parts = append(parts, rx.Star(rx.Sym(e.P)))
	for cur := 2; cur < size; cur += 2 {
		if rng.Intn(2) == 0 {
			parts = append(parts, rx.Opt(rx.Sym(e.Q)))
		} else {
			parts = append(parts, rx.Star(rx.AnyOf(e.Q, e.R)))
		}
	}
	left := rx.Concat(parts...)
	x, err := extract.FromAST(left, e.P, rx.Star(rx.Class(e.Sigma)), e.Sigma, DefaultOptions)
	if err != nil {
		panic(err)
	}
	return x
}

// BoundedPExpr generates an unambiguous expression whose prefix matches
// exactly n p's (each fenced by q's), the family Algorithm 6.2 is built for:
// the loop runs n+1 times (E6).
func (e Env) BoundedPExpr(n int) extract.Expr {
	var parts []*rx.Node
	parts = append(parts, rx.Star(rx.AnyOf(e.Q, e.R)))
	for i := 0; i < n; i++ {
		parts = append(parts, rx.Sym(e.P), rx.Sym(e.Q), rx.Star(rx.AnyOf(e.Q, e.R)))
	}
	left := rx.Concat(parts...)
	x, err := extract.FromAST(left, e.P, rx.Star(rx.Class(e.Sigma)), e.Sigma, DefaultOptions)
	if err != nil {
		panic(err)
	}
	return x
}

// PivotExpr generates the pivot family of experiment E7: k repetitions of
// an unbounded-p block (p q)* fenced by r pivots, ending in a bounded tail.
// Plain left-filtering fails on every member; pivot maximization succeeds.
func (e Env) PivotExpr(k int) extract.Expr {
	var parts []*rx.Node
	for i := 0; i < k; i++ {
		parts = append(parts, rx.Star(rx.Concat(rx.Sym(e.P), rx.Sym(e.Q))), rx.Sym(e.R))
	}
	parts = append(parts, rx.Sym(e.Q))
	left := rx.Concat(parts...)
	x, err := extract.FromAST(left, e.P, rx.Star(rx.Class(e.Sigma)), e.Sigma, DefaultOptions)
	if err != nil {
		panic(err)
	}
	return x
}

// PSPACEWitness builds the Lemma 5.9 / Theorem 5.12 hardness family over
// {p, q}: (p|q)*·p·(p|q)ⁿ, whose minimal DFA has 2^(n+1) states. Returned as
// a bare regex for universality-blowup measurements (E4).
func (e Env) PSPACEWitness(n int) (*rx.Node, symtab.Alphabet) {
	two := symtab.NewAlphabet(e.P, e.Q)
	parts := []*rx.Node{rx.Star(rx.Class(two)), rx.Sym(e.P)}
	for i := 0; i < n; i++ {
		parts = append(parts, rx.Class(two))
	}
	return rx.Concat(parts...), two
}

// RandomRegex draws a random plain regex of bounded depth for the factoring
// sweep (E10).
func (e Env) RandomRegex(depth int, rng *rand.Rand) *rx.Node {
	syms := []symtab.Symbol{e.P, e.Q, e.R}
	var gen func(d int) *rx.Node
	gen = func(d int) *rx.Node {
		if d <= 0 {
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
		switch rng.Intn(6) {
		case 0, 1:
			return rx.Concat(gen(d-1), gen(d-1))
		case 2:
			return rx.Union(gen(d-1), gen(d-1))
		case 3:
			return rx.Star(gen(d - 1))
		case 4:
			return rx.Opt(gen(d - 1))
		default:
			return rx.Sym(syms[rng.Intn(len(syms))])
		}
	}
	return gen(depth)
}

// Site is one synthetic catalog page with ground truth, produced by
// SiteGenerator.
type Site struct {
	HTML   string
	Tokens []symtab.Symbol
	Target int // token index of the target element (the form's n-th input)
}

// SiteGenerator produces synthetic "Virtual Supplier" catalog pages in the
// shape of the paper's Figure 1: a header area, optional navigation tables,
// one search form whose k-th input is the object of interest, and trailing
// content. It substitutes for the live vendor pages of the authors' system.
type SiteGenerator struct {
	Tab *symtab.Table
	rng *rand.Rand
	// TargetInput is the 0-based input of the form to mark (default 1 = the
	// second input, as in the paper).
	TargetInput int
}

// NewSiteGenerator returns a seeded generator over the table.
func NewSiteGenerator(tab *symtab.Table, seed int64) *SiteGenerator {
	return &SiteGenerator{Tab: tab, rng: rand.New(rand.NewSource(seed)), TargetInput: 1}
}

// Alphabet returns every tag symbol the generator can emit.
func (g *SiteGenerator) Alphabet() symtab.Alphabet {
	return symtab.NewAlphabet(g.Tab.InternAll(
		"HTML", "/HTML", "BODY", "/BODY", "P", "H1", "/H1", "H2", "/H2",
		"A", "/A", "IMG", "HR", "DIV", "/DIV",
		"TABLE", "/TABLE", "TR", "/TR", "TD", "/TD", "TH", "/TH",
		"FORM", "/FORM", "INPUT", "SELECT", "/SELECT", "OPTION", "/OPTION",
	)...)
}

// Generate produces one page. `inputs` is the number of inputs in the form
// (must exceed TargetInput); layout variation is driven by the seed.
func (g *SiteGenerator) Generate(inputs int) Site {
	if inputs <= g.TargetInput {
		panic(fmt.Sprintf("bench: form needs > %d inputs, got %d", g.TargetInput, inputs))
	}
	var b strings.Builder
	b.WriteString("<html><body>")
	// Header block.
	switch g.rng.Intn(3) {
	case 0:
		b.WriteString("<p><h1>Virtual Supplier, Inc.</h1><p>")
	case 1:
		b.WriteString("<h1>Virtual Supplier, Inc.</h1><hr>")
	case 2:
		b.WriteString("<div><img src=\"logo.gif\"><h2>Catalog</h2></div>")
	}
	// Navigation rows.
	nav := g.rng.Intn(4)
	if nav > 0 {
		b.WriteString("<table>")
		for i := 0; i < nav; i++ {
			b.WriteString("<tr><td><a href=\"x.html\">nav</a></td></tr>")
		}
		b.WriteString("</table>")
	}
	// The search form.
	inTable := g.rng.Intn(2) == 1
	if inTable {
		b.WriteString("<table><tr><td>")
	}
	b.WriteString(`<form method="post" action="search.cgi">`)
	for i := 0; i < inputs; i++ {
		kind := "text"
		if i > 0 {
			kind = []string{"radio", "checkbox", "hidden"}[g.rng.Intn(3)]
		}
		fmt.Fprintf(&b, `<input type=%q name="f%d">`, kind, i)
	}
	b.WriteString("</form>")
	if inTable {
		b.WriteString("</td></tr></table>")
	}
	// Trailing content.
	for i := g.rng.Intn(3); i > 0; i-- {
		b.WriteString("<p><a href=\"more.html\">more</a>")
	}
	b.WriteString("</body></html>")
	return g.finish(b.String())
}

func (g *SiteGenerator) finish(html string) Site {
	mapper := mapperFor(g.Tab)
	doc := mapper.Map(html)
	form := g.Tab.Intern("FORM")
	input := g.Tab.Intern("INPUT")
	// Target = TargetInput-th INPUT after the first FORM.
	target := -1
	seen := -1
	started := false
	for i, s := range doc.Syms {
		if s == form {
			started = true
		}
		if started && s == input {
			seen++
			if seen == g.TargetInput {
				target = i
				break
			}
		}
	}
	if target < 0 {
		panic("bench: generated page lacks the target input")
	}
	return Site{HTML: html, Tokens: doc.Syms, Target: target}
}

// TrainingSet generates n sites and returns them as learn examples plus the
// combined alphabet.
func (g *SiteGenerator) TrainingSet(n, inputs int) ([]learn.Example, symtab.Alphabet) {
	var out []learn.Example
	sigma := g.Alphabet()
	for i := 0; i < n; i++ {
		s := g.Generate(inputs)
		out = append(out, learn.Example{Doc: s.Tokens, Target: s.Target})
		sigma = sigma.Union(symtab.NewAlphabet(s.Tokens...))
	}
	return out, sigma
}

// mapperFor builds the standard tokenizer configuration used throughout the
// experiments (end tags kept, BR noise dropped).
func mapperFor(tab *symtab.Table) *htmltok.Mapper {
	m := htmltok.NewMapper(tab)
	m.Skip = map[string]bool{"BR": true}
	return m
}
